//===--- runner.h - Shared benchmark driver ---------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the benchmark corpora: verifies every `.dryad` module in a suite
/// directory and prints a Figure-6/7-style table comparing against the
/// paper's reported times.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_BENCH_RUNNER_H
#define DRYAD_BENCH_RUNNER_H

#include "lang/parser.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <cstdio>
#include <string>
#include <vector>

namespace dryad {
namespace bench {

struct SuiteFile {
  std::string Rel; ///< path under bench/suite/
  std::vector<PaperRow> Paper;
};

inline std::string suitePath(const std::string &Rel) {
  return std::string(DRYAD_SOURCE_DIR) + "/bench/suite/" + Rel;
}

inline int runSuite(const std::string &Title,
                    const std::vector<SuiteFile> &Files,
                    const VerifyOptions &Opts = {}) {
  std::printf("==== %s ====\n", Title.c_str());
  size_t Verified = 0, Total = 0;
  double Seconds = 0;
  for (const SuiteFile &F : Files) {
    Module M;
    DiagEngine Diags;
    if (!parseModuleFile(suitePath(F.Rel), M, Diags)) {
      std::printf("%s: PARSE ERROR\n%s", F.Rel.c_str(), Diags.str().c_str());
      continue;
    }
    Verifier V(M, Opts);
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    std::printf("%s", formatResults(F.Rel, Results, F.Paper).c_str());
    std::printf("\n");
    for (const ProcResult &R : Results) {
      ++Total;
      Verified += R.Verified;
      Seconds += R.Seconds;
    }
  }
  std::printf("==== %s total: %zu/%zu routines verified, %.1fs ====\n",
              Title.c_str(), Verified, Total, Seconds);
  return Verified == Total ? 0 : 1;
}

} // namespace bench
} // namespace dryad

#endif // DRYAD_BENCH_RUNNER_H
