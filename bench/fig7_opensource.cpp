//===--- fig7_opensource.cpp - Figure 7 reproduction --------------------------===//
//
// Reproduces Figure 7 of the paper: routines re-expressed from open-source
// code bases — Glib singly/doubly-linked lists (GTK+/GNOME), the OpenBSD
// <sys/queue.h> simple queue, ExpressOS page-cache and memory-region
// modules, and the Linux mmap virtual-memory-area routines. The originals
// are C; as in the paper, the heap-manipulating logic is transcribed into
// the verifier's input language with Dryad contracts.
//
//===----------------------------------------------------------------------===//

#include "runner.h"

using namespace dryad;
using namespace dryad::bench;

int main() {
  VerifyOptions Opts;
  Opts.TimeoutMs = 60000;

  std::vector<SuiteFile> Files = {
      {"fig7/glib_gslist.dryad",
       {{"gslist_free", -1},
        {"gslist_prepend", -1},
        {"gslist_concat", -1},
        {"gslist_remove_all", -1},
        {"gslist_copy", -1},
        {"gslist_reverse", -1},
        {"gslist_nth", -1},
        {"gslist_find", -1},
        {"gslist_position", -1},
        {"gslist_last", -1},
        {"gslist_length", -1},
        {"gslist_append", 4.9},
        {"gslist_insert_at_pos", 11.4},
        {"gslist_remove", 3.1},
        {"gslist_insert_sorted", 16.6},
        {"gslist_merge_sorted", 6.1},
        {"gslist_merge_sort", 3.0}}},
      {"fig7/glib_glist.dryad",
       {{"glist_free", -1},
        {"glist_prepend", -1},
        {"glist_reverse", -1},
        {"glist_nth", -1},
        {"glist_position", -1},
        {"glist_find", -1},
        {"glist_last", -1},
        {"glist_length", -1}}},
      {"fig7/openbsd_queue.dryad",
       {{"simpleq_init", -1},
        {"simpleq_insert_head", 1.6},
        {"simpleq_insert_tail", 3.6},
        {"simpleq_insert_after", 18.3},
        {"simpleq_remove_head", 2.1},
        {"simpleq_remove_after", -1}}},
      {"fig7/expressos_cachepage.dryad",
       {{"lookup_prev", 2.4}, {"add_cachepage", 6.4}}},
      {"fig7/expressos_memregion.dryad",
       {{"memory_region_init", -1},
        {"create_user_space_region", 3.6},
        {"split_memory_region", 5.8}}},
      {"fig7/linux_mmap.dryad",
       {{"find_vma", -1},
        {"remove_vma", -1},
        {"remove_vma_list", -1},
        {"insert_vm_struct", 11.6}}},
  };
  return runSuite("Figure 7: open-source routines", Files, Opts);
}
