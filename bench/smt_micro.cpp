//===--- smt_micro.cpp - Pipeline-phase microbenchmarks -----------------------===//
//
// google-benchmark microbenchmarks for the pipeline phases: parsing,
// basic-path extraction, VC generation, natural-proof assembly, and solving
// — the latency profile behind the per-routine times in Figures 6/7.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "lang/paths.h"
#include "natural/engine.h"
#include "smt/solver.h"
#include "vcgen/vc.h"
#include "verifier/verifier.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace dryad;

static std::string readSuite(const std::string &Rel) {
  std::ifstream In(std::string(DRYAD_SOURCE_DIR) + "/bench/suite/" + Rel);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

static void BM_ParseModule(benchmark::State &State) {
  std::string Text = readSuite("fig6/sll.dryad");
  for (auto _ : State) {
    Module M;
    DiagEngine D;
    benchmark::DoNotOptimize(parseModule(Text, M, D));
  }
}
BENCHMARK(BM_ParseModule);

static void BM_ExtractPaths(benchmark::State &State) {
  Module M;
  DiagEngine D;
  parseModule(readSuite("fig6/sll.dryad"), M, D);
  for (auto _ : State)
    for (const Procedure &P : M.Procs)
      benchmark::DoNotOptimize(extractPaths(M, P, D));
}
BENCHMARK(BM_ExtractPaths);

static void BM_GenerateVC(benchmark::State &State) {
  Module M;
  DiagEngine D;
  parseModule(readSuite("fig6/sll.dryad"), M, D);
  const Procedure &P = M.Procs.back(); // reverse_iter: loop, three paths
  std::vector<BasicPath> Paths = extractPaths(M, P, D);
  VCGen Gen(M);
  for (auto _ : State)
    for (const BasicPath &BP : Paths)
      benchmark::DoNotOptimize(Gen.generate(P, BP, D));
}
BENCHMARK(BM_GenerateVC);

static void BM_NaturalProof(benchmark::State &State) {
  Module M;
  DiagEngine D;
  parseModule(readSuite("fig6/sll.dryad"), M, D);
  const Procedure &P = M.Procs.back();
  std::vector<BasicPath> Paths = extractPaths(M, P, D);
  VCGen Gen(M);
  std::optional<VCond> VC = Gen.generate(P, Paths.front(), D);
  for (auto _ : State)
    benchmark::DoNotOptimize(buildNaturalProof(M, *VC));
}
BENCHMARK(BM_NaturalProof);

static void BM_SolveListInsert(benchmark::State &State) {
  Module M;
  DiagEngine D;
  parseModule(readSuite("fig6/sll.dryad"), M, D);
  const Procedure *P = M.findProc("insert_front");
  std::vector<BasicPath> Paths = extractPaths(M, *P, D);
  VCGen Gen(M);
  std::optional<VCond> VC = Gen.generate(*P, Paths.front(), D);
  NaturalProof NP = buildNaturalProof(M, *VC);
  for (auto _ : State) {
    SmtSolver S;
    S.setTimeoutMs(30000);
    for (const Formula *F : VC->Assumptions)
      S.add(F);
    for (const Formula *F : NP.Assertions)
      S.add(F);
    S.addNegated(VC->Goal);
    SmtResult R = S.check();
    if (R.Status != SmtStatus::Unsat)
      State.SkipWithError("expected unsat");
  }
}
BENCHMARK(BM_SolveListInsert)->Unit(benchmark::kMillisecond);

static void BM_EndToEndVerifyModule(benchmark::State &State) {
  std::string Text = readSuite("fig6/sll.dryad");
  for (auto _ : State) {
    Module M;
    DiagEngine D;
    parseModule(Text, M, D);
    VerifyOptions Opts;
    Opts.TimeoutMs = 60000;
    Verifier V(M, Opts);
    benchmark::DoNotOptimize(V.verifyAll(D));
  }
}
BENCHMARK(BM_EndToEndVerifyModule)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
