//===--- fig6_datastructures.cpp - Figure 6 reproduction ---------------------===//
//
// Reproduces Figure 6 of the paper: verification of textbook data-structure
// routines (singly-linked lists, sorted lists, doubly-linked lists, cyclic
// lists, max-heaps, BSTs, treaps, AVL trees, tree traversals,
// Schorr-Waite-style marking). The "paper" column shows the wall-clock the
// paper reported on 2009-era hardware; shapes (which routines are the slow
// outliers) are the comparison target, not absolute numbers.
//
//===----------------------------------------------------------------------===//

#include "runner.h"

using namespace dryad;
using namespace dryad::bench;

int main() {
  VerifyOptions Opts;
  Opts.TimeoutMs = 60000;

  std::vector<SuiteFile> Files = {
      {"fig6/sll.dryad",
       {{"find_rec", -1},
        {"insert_front", -1},
        {"insert_back_rec", -1},
        {"delete_all_rec", -1},
        {"copy_rec", -1},
        {"append_rec", -1},
        {"reverse_iter", -1}}},
      {"fig6/sorted_list.dryad",
       {{"find_rec", -1},
        {"insert_rec", -1},
        {"merge_rec", -1},
        {"delete_all_rec", -1},
        {"insert_sort_rec", -1},
        {"find_last_iter", -1},
        {"insert_iter", 1.4}}},
      {"fig6/dll.dryad",
       {{"insert_front", -1},
        {"insert_back_rec", -1},
        {"delete_all_rec", -1},
        {"append_rec", -1},
        {"mid_insert", -1},
        {"mid_delete", -1},
        {"meld", -1}}},
      {"fig6/cyclic.dryad",
       {{"insert_front", -1},
        {"insert_back_rec", -1},
        {"delete_front", -1},
        {"delete_back_rec", -1}}},
      {"fig6/maxheap.dryad", {{"heapify", 8.8}}},
      {"fig6/bst.dryad",
       {{"find_rec", -1},
        {"find_iter", -1},
        {"insert_rec", -1},
        {"remove_root_rec", -1},
        {"delete_rec", -1},
        {"find_leftmost_iter", 4.7}}},
      {"fig6/treap.dryad",
       {{"find_rec", -1},
        {"treap_merge", -1},
        {"delete_rec", -1},
        {"insert_root", 12.7}}},
      {"fig6/avl.dryad",
       {{"balance", -1},
        {"leftmost_rec", -1},
        {"rotate_right", 4.1},
        {"insert_unbalanced_rec", 4.1}}},
      {"fig6/rbt.dryad",
       {{"find_rec", -1},
        {"leftmost_rec", -1},
        {"insert_rec", 73.9},
        {"rbt_merge", -1},
        {"delete_rec", 12.1}}},
      {"fig6/traversals.dryad",
       {{"inorder_tree_to_list_rec", 2.4},
        {"preorder_rec", -1},
        {"postorder_rec", -1},
        {"inorder_rec", 3.76}}},
      {"fig6/schorr_waite.dryad", {{"marking", -1}}},
  };
  return runSuite("Figure 6: data-structure routines", Files, Opts);
}
