//===--- ablation_tactics.cpp - Natural-proof tactic ablation -----------------===//
//
// DESIGN.md calls out the proof tactics of §6.2/6.3 as the design choices
// to ablate: unfolding across the footprint, frame instantiation, and user
// axioms. This bench re-runs a representative slice of the Figure 6 corpus
// with each tactic disabled and reports how many routines still verify —
// demonstrating that the tactics, not raw solver power, carry the proofs.
//
//===----------------------------------------------------------------------===//

#include "runner.h"

using namespace dryad;
using namespace dryad::bench;

namespace {
struct Config {
  const char *Name;
  NaturalOptions Natural;
};
} // namespace

int main() {
  // A small slice keeps the degraded configurations (which time out on
  // nearly every obligation by design) affordable.
  std::vector<std::string> Slice = {"fig6/sll.dryad", "fig6/maxheap.dryad"};
  Config Configs[] = {
      {"full natural proofs", {true, true, true}},
      {"no unfolding", {false, true, true}},
      {"no frames", {true, false, true}},
      {"no axioms", {true, true, false}},
  };

  std::printf("%-24s %10s %10s\n", "configuration", "verified", "total");
  for (const Config &C : Configs) {
    VerifyOptions Opts;
    Opts.TimeoutMs = 8000;
    Opts.CheckVacuity = false;
    Opts.Natural = C.Natural;
    size_t Verified = 0, Total = 0;
    for (const std::string &Rel : Slice) {
      Module M;
      DiagEngine Diags;
      if (!parseModuleFile(suitePath(Rel), M, Diags))
        continue;
      Verifier V(M, Opts);
      for (const ProcResult &R : V.verifyAll(Diags)) {
        ++Total;
        Verified += R.Verified;
      }
    }
    std::printf("%-24s %10zu %10zu\n", C.Name, Verified, Total);
  }
  return 0;
}
