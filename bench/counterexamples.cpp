//===--- counterexamples.cpp - The paper's debugging claim --------------------===//
//
// §7 reports that wrong annotations or buggy code yield SMT models that
// pinpoint the bug ("Z3 provided counter-examples ... very helpful for us
// to debug the specification"). This bench runs a corpus of seeded-bug
// routines and reports how many are (correctly) rejected with a model.
//
//===----------------------------------------------------------------------===//

#include "runner.h"

using namespace dryad;
using namespace dryad::bench;

int main() {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;

  Module M;
  DiagEngine Diags;
  if (!parseModuleFile(suitePath("negative/seeded_bugs.dryad"), M, Diags)) {
    std::printf("parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  Verifier V(M, Opts);
  std::vector<ProcResult> Results = V.verifyAll(Diags);

  std::printf("==== Seeded-bug corpus: every routine must FAIL with a "
              "counterexample ====\n");
  size_t Rejected = 0, WithModel = 0;
  for (const ProcResult &R : Results) {
    bool SawModel = false;
    for (const ObligationResult &O : R.Obligations)
      if (O.Status == SmtStatus::Sat && !O.Model.empty())
        SawModel = true;
    std::printf("%-32s %-10s %s\n", R.Proc.c_str(),
                R.Verified ? "VERIFIED?!" : "rejected",
                SawModel ? "(counterexample)" : "");
    Rejected += !R.Verified;
    WithModel += SawModel;
  }
  std::printf("%zu/%zu rejected, %zu with concrete counterexample\n",
              Rejected, Results.size(), WithModel);
  return Rejected == Results.size() ? 0 : 1;
}
