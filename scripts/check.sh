#!/usr/bin/env bash
# Tier-1 verification plus a fault-injection smoke test of the resilient
# dispatch layer. Intended for CI and as the pre-merge gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

SLL=bench/suite/fig6/sll.dryad
DRYADV=build/src/dryadv

echo "== smoke: retry path absorbs an injected first-attempt timeout =="
# Every obligation's first check() times out (injected); the retry ladder
# must still verify every routine.
"$DRYADV" --inject timeout@1 --timeout 30000 "$SLL"

echo "== smoke: single-shot dispatch reports the timeout and exits 3 =="
# With --attempts 1 the same injection is final: the run must fail, and it
# must fail with the *infrastructure* exit code (3) — these are flakes, not
# disproofs — and do so promptly (injected faults never wait on a solver).
rc=0
"$DRYADV" --inject timeout@1 --attempts 1 --proc-budget-ms 60000 \
    "$SLL" > /tmp/dryadv-inject.out 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 (infrastructure) under injected timeouts, got $rc" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
fi
grep -q "timeout" /tmp/dryadv-inject.out || {
  echo "expected the report to name the timeout failure kind" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
}

echo "== smoke: genuine refutations still exit 1 =="
rc=0
"$DRYADV" --attempts 1 --no-degrade --timeout 30000 \
    bench/suite/negative/seeded_bugs.dryad > /tmp/dryadv-neg.out 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "expected exit 1 (genuine failure) on the seeded-bug corpus, got $rc" >&2
  cat /tmp/dryadv-neg.out >&2
  exit 1
fi

echo "== smoke: isolated worker survives an injected crash and proves =="
# Attempt 1's forked worker really segfaults (crash@1 under --isolate); the
# parent must classify the signal death, retry, and verify everything.
"$DRYADV" --isolate --inject crash@1 --attempts 2 --timeout 30000 "$SLL"

echo "== smoke: --jobs 4 verdicts and exit code match --jobs 1 =="
# The full example suite through the parallel scheduler: per-routine
# verdicts and the process exit code must be identical to the sequential
# run. Timing columns and the infrastructure-failure tally are
# load-dependent (an oversubscribed pool retries more), so the comparison
# normalizes to "routine verdict" pairs.
SUITE=(bench/suite/fig6/*.dryad bench/suite/fig7/*.dryad)
verdicts() { awk '$2 == "verified" || $2 == "FAILED" { print $1, $2 }' "$1"; }
rc1=0
"$DRYADV" --timeout 30000 "${SUITE[@]}" > /tmp/dryadv-jobs1.out 2>&1 || rc1=$?
rc4=0
"$DRYADV" --jobs 4 --timeout 30000 "${SUITE[@]}" > /tmp/dryadv-jobs4.out 2>&1 || rc4=$?
if [ "$rc1" -ne "$rc4" ]; then
  echo "exit codes diverge: --jobs 1 -> $rc1, --jobs 4 -> $rc4" >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-jobs1.out) <(verdicts /tmp/dryadv-jobs4.out); then
  echo "per-routine verdicts diverge between --jobs 1 and --jobs 4" >&2
  exit 1
fi

echo "== smoke: a pool of 4 absorbs injected worker crashes =="
# crash@1 segfaults attempt 1 of every obligation inside its sandboxed
# worker; with four workers in flight the parent must classify each death,
# retry, and still verify everything — one crash never takes down siblings.
"$DRYADV" --jobs 4 --inject crash@1 --timeout 30000 "$SLL"

echo "== smoke: warm --jobs 4 verdicts and exit code match --cold --jobs 1 =="
# The warm fleet (persistent workers, the default) against the historical
# fork-per-obligation sandbox at one slot: verdicts and exit code must be
# identical — the worker lifecycle must never show through in the report.
rcc=0
"$DRYADV" --cold --isolate --timeout 30000 "${SUITE[@]}" \
    > /tmp/dryadv-cold1.out 2>&1 || rcc=$?
if [ "$rcc" -ne "$rc4" ]; then
  echo "exit codes diverge: --cold --jobs 1 -> $rcc, warm --jobs 4 -> $rc4" >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-cold1.out) <(verdicts /tmp/dryadv-jobs4.out); then
  echo "per-routine verdicts diverge between --cold --jobs 1 and warm --jobs 4" >&2
  exit 1
fi

echo "== smoke: warm fleet absorbs an injected crash mid-queue =="
# crash@1 kills attempt 1 of every obligation inside its warm worker; the
# pool must reap each corpse, replace it with a fresh fork, retry the
# in-flight obligation, and still verify everything — queued obligations
# are never poisoned by a predecessor's death.
"$DRYADV" --isolate --inject crash@1 --attempts 2 --timeout 30000 \
    "$SLL" 2> /tmp/dryadv-warmcrash.err
grep -q "crash=[1-9]" /tmp/dryadv-warmcrash.err || {
  echo "expected the workers stats line to record crash recycles" >&2
  cat /tmp/dryadv-warmcrash.err >&2
  exit 1
}

echo "== smoke: journal resume skips already-proved obligations =="
JRNL=/tmp/dryadv-journal.jsonl
rm -f "$JRNL"
"$DRYADV" --journal "$JRNL" --timeout 30000 "$SLL" > /dev/null
"$DRYADV" --journal "$JRNL" --resume --timeout 30000 "$SLL" \
    > /tmp/dryadv-resume.out
grep -q "reused from the journal" /tmp/dryadv-resume.out || {
  echo "expected the resumed run to reuse journaled proofs" >&2
  cat /tmp/dryadv-resume.out >&2
  exit 1
}

echo "== smoke: --shards 2 verdicts and exit code match the unsharded run =="
# The sharded supervisor (fork two shard drivers, merge their journals,
# assemble the report from the merged journal) must reproduce the unsharded
# run verdict for verdict and exit code for exit code. Advisory lines (the
# infrastructure-failure tally) are load-dependent just like in the --jobs
# smoke above, so the comparison again normalizes to "routine verdict"
# pairs; /tmp/dryadv-jobs1.out is the unsharded baseline.
SHJRNL=/tmp/dryadv-shards.jsonl
rm -f "$SHJRNL" "$SHJRNL".shard*
rcs=0
"$DRYADV" --shards 2 --journal "$SHJRNL" --timeout 30000 "${SUITE[@]}" \
    > /tmp/dryadv-shards.out 2> /tmp/dryadv-shards.err || rcs=$?
if [ "$rc1" -ne "$rcs" ]; then
  echo "exit codes diverge: unsharded -> $rc1, --shards 2 -> $rcs" >&2
  cat /tmp/dryadv-shards.err >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-jobs1.out) <(verdicts /tmp/dryadv-shards.out); then
  echo "per-routine verdicts diverge between unsharded and --shards 2" >&2
  cat /tmp/dryadv-shards.err >&2
  exit 1
fi

echo "== smoke: --shards 2 recovers a crash-killed shard without re-solving =="
# crash@1 is consumed by the supervisor: it SIGKILLs shard 1 once, right
# after its first journal record lands. The retry must resume from the
# surviving journal (recovered > 0 in the stats line) and the final report
# must still match an unsharded run of the same file.
rm -f "$SHJRNL" "$SHJRNL".shard*
rcu=0
"$DRYADV" --timeout 30000 "$SLL" > /tmp/dryadv-sll.out 2>&1 || rcu=$?
rcc=0
"$DRYADV" --shards 2 --inject crash@1 --journal "$SHJRNL" --timeout 30000 \
    "$SLL" > /tmp/dryadv-crash.out 2> /tmp/dryadv-crash.err || rcc=$?
if [ "$rcu" -ne "$rcc" ]; then
  echo "exit codes diverge after shard crash recovery: $rcu vs $rcc" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-sll.out) <(verdicts /tmp/dryadv-crash.out); then
  echo "verdicts diverge after shard crash recovery" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
fi
grep -q "crashes=1" /tmp/dryadv-crash.err || {
  echo "expected the supervisor stats to record exactly one injected crash" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
}
grep -Eq "recovered=[1-9]" /tmp/dryadv-crash.err || {
  echo "expected the retried shard to recover journaled work" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
}

echo "== smoke: --store warm run is all hits with byte-identical stdout =="
# The persistent proof store: a second run over an unchanged file must
# re-solve nothing (misses=0) and print byte-for-byte the same report —
# hits replay the recorded solve times, so the cache never shows through
# on stdout. (--no-vacuity keeps the smoke deterministic: hard vacuity
# probes time out advisory-unknown and re-probe every run by design.)
STORE=/tmp/dryadv-store.seg
rm -f "$STORE" "$STORE".stale
"$DRYADV" --store "$STORE" --no-vacuity --timeout 30000 "$SLL" \
    > /tmp/dryadv-store-cold.out 2> /dev/null
"$DRYADV" --store "$STORE" --no-vacuity --timeout 30000 "$SLL" \
    > /tmp/dryadv-store-warm.out 2> /tmp/dryadv-store-warm.err
cmp /tmp/dryadv-store-cold.out /tmp/dryadv-store-warm.out || {
  echo "store-warm stdout diverges from the cold run" >&2
  exit 1
}
grep -q "store: hits=[1-9][0-9]* misses=0 " /tmp/dryadv-store-warm.err || {
  echo "expected the warm run to be all store hits" >&2
  cat /tmp/dryadv-store-warm.err >&2
  exit 1
}
"$DRYADV" --store-verify "$STORE" > /dev/null || {
  echo "expected a clean fsck after two store runs" >&2
  exit 1
}

echo "== smoke: corrupted store record is quarantined and re-solved =="
# storecrc@1 lands one record with a bad CRC. The next run must quarantine
# it (counted on stderr), re-solve that obligation, exit 0 — corruption is
# never fatal and never exit 1 — and compaction must drop the bad bytes.
rm -f "$STORE" "$STORE".stale
"$DRYADV" --store "$STORE" --inject storecrc@1 --no-vacuity --timeout 30000 \
    "$SLL" > /dev/null 2>&1
rc=0
"$DRYADV" --store-verify "$STORE" > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected fsck exit 3 on a CRC-corrupted store, got $rc" >&2
  exit 1
fi
"$DRYADV" --store "$STORE" --no-vacuity --timeout 30000 "$SLL" \
    > /dev/null 2> /tmp/dryadv-store-crc.err
grep -q "quarantined=1" /tmp/dryadv-store-crc.err || {
  echo "expected exactly one quarantined record on the recovery run" >&2
  cat /tmp/dryadv-store-crc.err >&2
  exit 1
}
"$DRYADV" --store-compact "$STORE" > /dev/null
"$DRYADV" --store-verify "$STORE" > /dev/null || {
  echo "expected a clean fsck after compaction" >&2
  exit 1
}

echo "== smoke: --serve daemon answers --remote, warm and byte-identical =="
# The incremental daemon: populate the store locally (the cold baseline),
# serve it, and verify twice via --remote. Both remote runs must be all
# hits and byte-identical to the cold local run's stdout.
SOCK=/tmp/dryadv-check.sock
rm -f "$STORE" "$STORE".stale "$SOCK"
"$DRYADV" --store "$STORE" --no-vacuity --timeout 30000 "$SLL" \
    > /tmp/dryadv-serve-cold.out 2> /dev/null
{ "$DRYADV" --serve "$SOCK" --store "$STORE" --no-vacuity --timeout 30000 \
    --jobs 2 --serve-jobs 4 2> /tmp/dryadv-serve.err & }
SERVEPID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK" >&2; exit 1; }
"$DRYADV" --remote "$SOCK" --json /tmp/dryadv-remote1.json "$SLL" \
    > /tmp/dryadv-remote1.out 2> /dev/null
"$DRYADV" --remote "$SOCK" --json /tmp/dryadv-remote2.json "$SLL" \
    > /tmp/dryadv-remote2.out 2> /dev/null
cmp /tmp/dryadv-serve-cold.out /tmp/dryadv-remote1.out || {
  echo "--remote stdout diverges from the cold local run" >&2
  exit 1
}
cmp /tmp/dryadv-remote1.out /tmp/dryadv-remote2.out || {
  echo "the two --remote runs diverge on stdout" >&2
  exit 1
}
grep -q '"misses": 0' /tmp/dryadv-remote2.json || {
  echo "expected the second remote run to be all store hits" >&2
  cat /tmp/dryadv-remote2.json >&2
  exit 1
}

echo "== smoke: an edit re-solves only the dirtied obligations =="
# Append one procedure to a copy of the file: the daemon must answer every
# old obligation from the store and solve only the new ones.
EDITED=/tmp/dryadv-edited.dryad
cp "$SLL" "$EDITED"
cat >> "$EDITED" <<'EOF'

proc check_id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
EOF
"$DRYADV" --remote "$SOCK" --json /tmp/dryadv-edit.json "$EDITED" \
    > /tmp/dryadv-edit.out 2> /dev/null
grep -q "check_id" /tmp/dryadv-edit.out || {
  echo "expected the edited file's report to include the new procedure" >&2
  exit 1
}
hits=$(sed -n 's/.*"hits": \([0-9]*\).*/\1/p' /tmp/dryadv-edit.json | head -1)
misses=$(sed -n 's/.*"misses": \([0-9]*\).*/\1/p' /tmp/dryadv-edit.json | head -1)
if [ "$hits" -eq 0 ] || [ "$misses" -eq 0 ]; then
  echo "expected a mixed hit/miss split after the edit (hits=$hits misses=$misses)" >&2
  cat /tmp/dryadv-edit.json >&2
  exit 1
fi
if [ "$misses" -ge "$hits" ]; then
  echo "the edit dirtied too much: hits=$hits misses=$misses" >&2
  exit 1
fi

echo "== smoke: 4 concurrent clients get byte-identical answers =="
# The concurrent daemon: four --remote clients at once, each must produce
# stdout byte-identical to the cold local baseline. A fifth, slow-loris
# connection (opened first, sends a few junk bytes, then stalls) must cost
# the daemon a file descriptor, never a session — the real clients are
# served while it dangles.
python3 - "$SOCK" <<'EOF' &
import socket, sys, time
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b"DRY")          # a frame prefix, never completed
time.sleep(20)
EOF
LORISPID=$!
CONCPIDS=()
for i in 1 2 3 4; do
  "$DRYADV" --remote "$SOCK" "$SLL" \
      > /tmp/dryadv-conc$i.out 2> /dev/null &
  CONCPIDS+=($!)
done
for pid in "${CONCPIDS[@]}"; do
  wait "$pid" || { echo "a concurrent remote client failed" >&2; exit 1; }
done
for i in 1 2 3 4; do
  cmp /tmp/dryadv-serve-cold.out /tmp/dryadv-conc$i.out || {
    echo "concurrent client $i diverges from the cold local run" >&2
    exit 1
  }
done
kill "$LORISPID" 2>/dev/null || true
wait "$LORISPID" 2>/dev/null || true

echo "== smoke: --ping reports daemon health without touching the store =="
"$DRYADV" --remote "$SOCK" --ping > /tmp/dryadv-ping.out || {
  echo "--ping against a live daemon failed" >&2
  exit 1
}
grep -q "^daemon: up " /tmp/dryadv-ping.out || {
  echo "ping output missing the uptime line" >&2
  cat /tmp/dryadv-ping.out >&2
  exit 1
}
grep -q "served=" /tmp/dryadv-ping.out || {
  echo "ping output missing the served count" >&2
  cat /tmp/dryadv-ping.out >&2
  exit 1
}

echo "== smoke: SIGTERM daemon leaves no orphans, no socket, a clean store =="
kill -TERM "$SERVEPID"
wait "$SERVEPID" 2>/dev/null || true
for _ in $(seq 50); do [ ! -S "$SOCK" ] && break; sleep 0.1; done
[ ! -S "$SOCK" ] || { echo "daemon left its socket behind" >&2; exit 1; }
if pgrep -f "dryadv --serve $SOCK" > /dev/null; then
  echo "daemon processes survived SIGTERM" >&2
  exit 1
fi
"$DRYADV" --store-verify "$STORE" > /dev/null || {
  echo "expected a clean store after daemon shutdown" >&2
  exit 1
}

echo "== smoke: unreachable daemon falls back locally, or exits 3 =="
# The exit taxonomy for remote trouble: with fallback (the default) the run
# solves locally and succeeds; with --no-remote-fallback it must exit 3 —
# an unreachable daemon is infrastructure, never a disproof (exit 1).
rc=0
"$DRYADV" --remote /tmp/dryadv-nobody.sock --no-remote-fallback \
    --connect-timeout-ms 300 --remote-retries 0 "$SLL" \
    > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 for an unreachable daemon without fallback, got $rc" >&2
  exit 1
fi
"$DRYADV" --remote /tmp/dryadv-nobody.sock --no-vacuity --timeout 30000 \
    --connect-timeout-ms 300 --remote-retries 0 "$SLL" \
    > /tmp/dryadv-fallback.out 2> /dev/null || {
  echo "expected the fallback run to solve locally and succeed" >&2
  exit 1
}
if ! diff <(verdicts /tmp/dryadv-serve-cold.out) <(verdicts /tmp/dryadv-fallback.out); then
  echo "fallback verdicts diverge from the local run" >&2
  exit 1
fi

echo "== smoke: a missing backend degrades with a warning, never an error =="
# --backends z3,cvc5 on a host without cvc5 must warn once, drop the rung,
# and verify exactly like the z3-only baseline with an unchanged exit code.
# On a host that does have cvc5 this runs the real cross-solver portfolio,
# which must also match the baseline (first conclusive answer wins; both
# solvers agree on this suite).
rc=0
"$DRYADV" --backends z3,cvc5 --timeout 30000 "$SLL" \
    > /tmp/dryadv-degrade.out 2> /tmp/dryadv-degrade.err || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "expected exit 0 from --backends z3,cvc5 regardless of cvc5, got $rc" >&2
  cat /tmp/dryadv-degrade.err >&2
  exit 1
fi
if ! command -v cvc5 > /dev/null; then
  grep -q "backend 'cvc5' unavailable" /tmp/dryadv-degrade.err || {
    echo "expected a warning naming the dropped cvc5 backend" >&2
    cat /tmp/dryadv-degrade.err >&2
    exit 1
  }
fi
if ! diff <(verdicts /tmp/dryadv-sll.out) <(verdicts /tmp/dryadv-degrade.out); then
  echo "verdicts diverge between the z3 baseline and --backends z3,cvc5" >&2
  exit 1
fi
"$DRYADV" --list-backends | grep -q "^z3" || {
  echo "expected --list-backends to report the in-process z3 backend" >&2
  exit 1
}

echo "== smoke: cross-backend portfolio agrees with the z3 baseline =="
# A fake pipe backend that answers unsat to everything races z3 as a
# cross-check; verdicts must match the baseline (both agree on this file)
# and the stats line must grow the per-backend tail.
FAKE=/tmp/dryadv-fakesolver
cat > "$FAKE" <<'EOF'
#!/bin/sh
cat >/dev/null
echo unsat
EOF
chmod +x "$FAKE"
"$DRYADV" --backends z3,fake:"$FAKE" --jobs 4 --timeout 30000 "$SLL" \
    > /tmp/dryadv-fake.out 2> /tmp/dryadv-fake.err || {
  echo "the z3+fake portfolio run failed" >&2
  cat /tmp/dryadv-fake.err >&2
  exit 1
}
if ! diff <(verdicts /tmp/dryadv-sll.out) <(verdicts /tmp/dryadv-fake.out); then
  echo "verdicts diverge between the z3 baseline and the z3+fake portfolio" >&2
  exit 1
fi
grep -q "backends: fake served=" /tmp/dryadv-fake.err || {
  echo "expected the workers stats line to grow a per-backend tail" >&2
  cat /tmp/dryadv-fake.err >&2
  exit 1
}

echo "== smoke: a forced cross-backend disagreement exits 3, never silent =="
# diverge@1 flips each worker's first in-worker verdict, so z3 and the fake
# contradict each other on identical formulas. The run must report both
# answers, write the divergence dump, and exit 3 (infrastructure) — a
# solver contradiction is never a trustworthy verdict, in either direction.
rc=0
rm -f /tmp/dryadv-divdump/dryadv-divergence.log
mkdir -p /tmp/dryadv-divdump
"$DRYADV" --backends z3,fake:"$FAKE" --jobs 4 --no-vacuity \
    --inject diverge@1 --dump-smt2 /tmp/dryadv-divdump --timeout 30000 \
    "$SLL" > /tmp/dryadv-div.out 2> /tmp/dryadv-div.err || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 on a cross-backend divergence, got $rc" >&2
  cat /tmp/dryadv-div.err >&2
  exit 1
fi
grep -q "backend divergence" /tmp/dryadv-div.err || {
  echo "expected stderr to report the divergence" >&2
  cat /tmp/dryadv-div.err >&2
  exit 1
}
grep -Eq "answered (sat|unsat), .* answered (sat|unsat)" /tmp/dryadv-div.err || {
  echo "expected both backends' answers in the divergence report" >&2
  cat /tmp/dryadv-div.err >&2
  exit 1
}
[ -s /tmp/dryadv-divdump/dryadv-divergence.log ] || {
  echo "expected a non-empty divergence dump next to the smt2 dumps" >&2
  exit 1
}

echo "check.sh: all gates passed"
