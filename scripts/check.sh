#!/usr/bin/env bash
# Tier-1 verification plus a fault-injection smoke test of the resilient
# dispatch layer. Intended for CI and as the pre-merge gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

SLL=bench/suite/fig6/sll.dryad
DRYADV=build/src/dryadv

echo "== smoke: retry path absorbs an injected first-attempt timeout =="
# Every obligation's first check() times out (injected); the retry ladder
# must still verify every routine.
"$DRYADV" --inject timeout@1 --timeout 30000 "$SLL"

echo "== smoke: single-shot dispatch reports the timeout and exits 3 =="
# With --attempts 1 the same injection is final: the run must fail, and it
# must fail with the *infrastructure* exit code (3) — these are flakes, not
# disproofs — and do so promptly (injected faults never wait on a solver).
rc=0
"$DRYADV" --inject timeout@1 --attempts 1 --proc-budget-ms 60000 \
    "$SLL" > /tmp/dryadv-inject.out 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 (infrastructure) under injected timeouts, got $rc" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
fi
grep -q "timeout" /tmp/dryadv-inject.out || {
  echo "expected the report to name the timeout failure kind" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
}

echo "== smoke: genuine refutations still exit 1 =="
rc=0
"$DRYADV" --attempts 1 --no-degrade --timeout 30000 \
    bench/suite/negative/seeded_bugs.dryad > /tmp/dryadv-neg.out 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "expected exit 1 (genuine failure) on the seeded-bug corpus, got $rc" >&2
  cat /tmp/dryadv-neg.out >&2
  exit 1
fi

echo "== smoke: isolated worker survives an injected crash and proves =="
# Attempt 1's forked worker really segfaults (crash@1 under --isolate); the
# parent must classify the signal death, retry, and verify everything.
"$DRYADV" --isolate --inject crash@1 --attempts 2 --timeout 30000 "$SLL"

echo "== smoke: --jobs 4 verdicts and exit code match --jobs 1 =="
# The full example suite through the parallel scheduler: per-routine
# verdicts and the process exit code must be identical to the sequential
# run. Timing columns and the infrastructure-failure tally are
# load-dependent (an oversubscribed pool retries more), so the comparison
# normalizes to "routine verdict" pairs.
SUITE=(bench/suite/fig6/*.dryad bench/suite/fig7/*.dryad)
verdicts() { awk '$2 == "verified" || $2 == "FAILED" { print $1, $2 }' "$1"; }
rc1=0
"$DRYADV" --timeout 30000 "${SUITE[@]}" > /tmp/dryadv-jobs1.out 2>&1 || rc1=$?
rc4=0
"$DRYADV" --jobs 4 --timeout 30000 "${SUITE[@]}" > /tmp/dryadv-jobs4.out 2>&1 || rc4=$?
if [ "$rc1" -ne "$rc4" ]; then
  echo "exit codes diverge: --jobs 1 -> $rc1, --jobs 4 -> $rc4" >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-jobs1.out) <(verdicts /tmp/dryadv-jobs4.out); then
  echo "per-routine verdicts diverge between --jobs 1 and --jobs 4" >&2
  exit 1
fi

echo "== smoke: a pool of 4 absorbs injected worker crashes =="
# crash@1 segfaults attempt 1 of every obligation inside its sandboxed
# worker; with four workers in flight the parent must classify each death,
# retry, and still verify everything — one crash never takes down siblings.
"$DRYADV" --jobs 4 --inject crash@1 --timeout 30000 "$SLL"

echo "== smoke: warm --jobs 4 verdicts and exit code match --cold --jobs 1 =="
# The warm fleet (persistent workers, the default) against the historical
# fork-per-obligation sandbox at one slot: verdicts and exit code must be
# identical — the worker lifecycle must never show through in the report.
rcc=0
"$DRYADV" --cold --isolate --timeout 30000 "${SUITE[@]}" \
    > /tmp/dryadv-cold1.out 2>&1 || rcc=$?
if [ "$rcc" -ne "$rc4" ]; then
  echo "exit codes diverge: --cold --jobs 1 -> $rcc, warm --jobs 4 -> $rc4" >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-cold1.out) <(verdicts /tmp/dryadv-jobs4.out); then
  echo "per-routine verdicts diverge between --cold --jobs 1 and warm --jobs 4" >&2
  exit 1
fi

echo "== smoke: warm fleet absorbs an injected crash mid-queue =="
# crash@1 kills attempt 1 of every obligation inside its warm worker; the
# pool must reap each corpse, replace it with a fresh fork, retry the
# in-flight obligation, and still verify everything — queued obligations
# are never poisoned by a predecessor's death.
"$DRYADV" --isolate --inject crash@1 --attempts 2 --timeout 30000 \
    "$SLL" 2> /tmp/dryadv-warmcrash.err
grep -q "crash=[1-9]" /tmp/dryadv-warmcrash.err || {
  echo "expected the workers stats line to record crash recycles" >&2
  cat /tmp/dryadv-warmcrash.err >&2
  exit 1
}

echo "== smoke: journal resume skips already-proved obligations =="
JRNL=/tmp/dryadv-journal.jsonl
rm -f "$JRNL"
"$DRYADV" --journal "$JRNL" --timeout 30000 "$SLL" > /dev/null
"$DRYADV" --journal "$JRNL" --resume --timeout 30000 "$SLL" \
    > /tmp/dryadv-resume.out
grep -q "reused from the journal" /tmp/dryadv-resume.out || {
  echo "expected the resumed run to reuse journaled proofs" >&2
  cat /tmp/dryadv-resume.out >&2
  exit 1
}

echo "== smoke: --shards 2 verdicts and exit code match the unsharded run =="
# The sharded supervisor (fork two shard drivers, merge their journals,
# assemble the report from the merged journal) must reproduce the unsharded
# run verdict for verdict and exit code for exit code. Advisory lines (the
# infrastructure-failure tally) are load-dependent just like in the --jobs
# smoke above, so the comparison again normalizes to "routine verdict"
# pairs; /tmp/dryadv-jobs1.out is the unsharded baseline.
SHJRNL=/tmp/dryadv-shards.jsonl
rm -f "$SHJRNL" "$SHJRNL".shard*
rcs=0
"$DRYADV" --shards 2 --journal "$SHJRNL" --timeout 30000 "${SUITE[@]}" \
    > /tmp/dryadv-shards.out 2> /tmp/dryadv-shards.err || rcs=$?
if [ "$rc1" -ne "$rcs" ]; then
  echo "exit codes diverge: unsharded -> $rc1, --shards 2 -> $rcs" >&2
  cat /tmp/dryadv-shards.err >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-jobs1.out) <(verdicts /tmp/dryadv-shards.out); then
  echo "per-routine verdicts diverge between unsharded and --shards 2" >&2
  cat /tmp/dryadv-shards.err >&2
  exit 1
fi

echo "== smoke: --shards 2 recovers a crash-killed shard without re-solving =="
# crash@1 is consumed by the supervisor: it SIGKILLs shard 1 once, right
# after its first journal record lands. The retry must resume from the
# surviving journal (recovered > 0 in the stats line) and the final report
# must still match an unsharded run of the same file.
rm -f "$SHJRNL" "$SHJRNL".shard*
rcu=0
"$DRYADV" --timeout 30000 "$SLL" > /tmp/dryadv-sll.out 2>&1 || rcu=$?
rcc=0
"$DRYADV" --shards 2 --inject crash@1 --journal "$SHJRNL" --timeout 30000 \
    "$SLL" > /tmp/dryadv-crash.out 2> /tmp/dryadv-crash.err || rcc=$?
if [ "$rcu" -ne "$rcc" ]; then
  echo "exit codes diverge after shard crash recovery: $rcu vs $rcc" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-sll.out) <(verdicts /tmp/dryadv-crash.out); then
  echo "verdicts diverge after shard crash recovery" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
fi
grep -q "crashes=1" /tmp/dryadv-crash.err || {
  echo "expected the supervisor stats to record exactly one injected crash" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
}
grep -Eq "recovered=[1-9]" /tmp/dryadv-crash.err || {
  echo "expected the retried shard to recover journaled work" >&2
  cat /tmp/dryadv-crash.err >&2
  exit 1
}

echo "check.sh: all gates passed"
