#!/usr/bin/env bash
# Tier-1 verification plus a fault-injection smoke test of the resilient
# dispatch layer. Intended for CI and as the pre-merge gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

SLL=bench/suite/fig6/sll.dryad
DRYADV=build/src/dryadv

echo "== smoke: retry path absorbs an injected first-attempt timeout =="
# Every obligation's first check() times out (injected); the retry ladder
# must still verify every routine.
"$DRYADV" --inject timeout@1 --timeout 30000 "$SLL"

echo "== smoke: single-shot dispatch reports the timeout and fails =="
# With --attempts 1 the same injection is final: the run must exit nonzero
# (and do so promptly — injected faults never wait on a real solver).
if "$DRYADV" --inject timeout@1 --attempts 1 --proc-budget-ms 60000 \
    "$SLL" > /tmp/dryadv-inject.out 2>&1; then
  echo "expected nonzero exit under --attempts 1 with injected timeouts" >&2
  exit 1
fi
grep -q "timeout" /tmp/dryadv-inject.out || {
  echo "expected the report to name the timeout failure kind" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
}

echo "check.sh: all gates passed"
