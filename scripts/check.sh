#!/usr/bin/env bash
# Tier-1 verification plus a fault-injection smoke test of the resilient
# dispatch layer. Intended for CI and as the pre-merge gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

SLL=bench/suite/fig6/sll.dryad
DRYADV=build/src/dryadv

echo "== smoke: retry path absorbs an injected first-attempt timeout =="
# Every obligation's first check() times out (injected); the retry ladder
# must still verify every routine.
"$DRYADV" --inject timeout@1 --timeout 30000 "$SLL"

echo "== smoke: single-shot dispatch reports the timeout and exits 3 =="
# With --attempts 1 the same injection is final: the run must fail, and it
# must fail with the *infrastructure* exit code (3) — these are flakes, not
# disproofs — and do so promptly (injected faults never wait on a solver).
rc=0
"$DRYADV" --inject timeout@1 --attempts 1 --proc-budget-ms 60000 \
    "$SLL" > /tmp/dryadv-inject.out 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "expected exit 3 (infrastructure) under injected timeouts, got $rc" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
fi
grep -q "timeout" /tmp/dryadv-inject.out || {
  echo "expected the report to name the timeout failure kind" >&2
  cat /tmp/dryadv-inject.out >&2
  exit 1
}

echo "== smoke: genuine refutations still exit 1 =="
rc=0
"$DRYADV" --attempts 1 --no-degrade --timeout 30000 \
    bench/suite/negative/seeded_bugs.dryad > /tmp/dryadv-neg.out 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "expected exit 1 (genuine failure) on the seeded-bug corpus, got $rc" >&2
  cat /tmp/dryadv-neg.out >&2
  exit 1
fi

echo "== smoke: isolated worker survives an injected crash and proves =="
# Attempt 1's forked worker really segfaults (crash@1 under --isolate); the
# parent must classify the signal death, retry, and verify everything.
"$DRYADV" --isolate --inject crash@1 --attempts 2 --timeout 30000 "$SLL"

echo "== smoke: --jobs 4 verdicts and exit code match --jobs 1 =="
# The full example suite through the parallel scheduler: per-routine
# verdicts and the process exit code must be identical to the sequential
# run. Timing columns and the infrastructure-failure tally are
# load-dependent (an oversubscribed pool retries more), so the comparison
# normalizes to "routine verdict" pairs.
SUITE=(bench/suite/fig6/*.dryad bench/suite/fig7/*.dryad)
verdicts() { awk '$2 == "verified" || $2 == "FAILED" { print $1, $2 }' "$1"; }
rc1=0
"$DRYADV" --timeout 30000 "${SUITE[@]}" > /tmp/dryadv-jobs1.out 2>&1 || rc1=$?
rc4=0
"$DRYADV" --jobs 4 --timeout 30000 "${SUITE[@]}" > /tmp/dryadv-jobs4.out 2>&1 || rc4=$?
if [ "$rc1" -ne "$rc4" ]; then
  echo "exit codes diverge: --jobs 1 -> $rc1, --jobs 4 -> $rc4" >&2
  exit 1
fi
if ! diff <(verdicts /tmp/dryadv-jobs1.out) <(verdicts /tmp/dryadv-jobs4.out); then
  echo "per-routine verdicts diverge between --jobs 1 and --jobs 4" >&2
  exit 1
fi

echo "== smoke: a pool of 4 absorbs injected worker crashes =="
# crash@1 segfaults attempt 1 of every obligation inside its sandboxed
# worker; with four workers in flight the parent must classify each death,
# retry, and still verify everything — one crash never takes down siblings.
"$DRYADV" --jobs 4 --inject crash@1 --timeout 30000 "$SLL"

echo "== smoke: journal resume skips already-proved obligations =="
JRNL=/tmp/dryadv-journal.jsonl
rm -f "$JRNL"
"$DRYADV" --journal "$JRNL" --timeout 30000 "$SLL" > /dev/null
"$DRYADV" --journal "$JRNL" --resume --timeout 30000 "$SLL" \
    > /tmp/dryadv-resume.out
grep -q "reused from the journal" /tmp/dryadv-resume.out || {
  echo "expected the resumed run to reuse journaled proofs" >&2
  cat /tmp/dryadv-resume.out >&2
  exit 1
}

echo "check.sh: all gates passed"
