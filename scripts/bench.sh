#!/usr/bin/env bash
# Benchmarks the parallel proof scheduler: runs each benchmark suite at
# --jobs 1 and --jobs $(nproc) and writes BENCH_sched.json with per-suite
# wall time, obligation throughput, and the parallel speedup. Then
# benchmarks the sharded supervisor on fig6 at --shards 1/2/$(nproc) —
# including the recovery overhead of one injected shard crash — and writes
# BENCH_shard.json.
#
# The speedup is bounded by the host's parallelism (recorded in the output):
# on a single-core box the two runs are the same schedule and the speedup is
# ~1.0 by construction.
#
# Dispatch is single-shot (--attempts 1 --no-degrade): the retry ladder can
# spend ~100s per stubborn obligation, which measures Z3's escalation
# schedule rather than the scheduler's throughput. check.sh gates verdicts.
set -euo pipefail

cd "$(dirname "$0")/.."

DRYADV=build/src/dryadv
OUT=BENCH_sched.json
TIMEOUT_MS=${TIMEOUT_MS:-10000}
JOBS_N=$(nproc)

[ -x "$DRYADV" ] || { echo "build dryadv first: cmake --build build" >&2; exit 1; }

# One suite run; prints "<wall-seconds> <obligations>".
run_suite() { # <jobs> <file...>
  local jobs=$1; shift
  local t0 t1 out
  out=$(mktemp)
  t0=$(date +%s.%N)
  # The negative corpus exits 1 by design and infrastructure flakes exit 3;
  # the benchmark measures throughput, not verdicts (check.sh gates those).
  "$DRYADV" --jobs "$jobs" --timeout "$TIMEOUT_MS" --attempts 1 --no-degrade \
      --verbose "$@" > "$out" 2>&1 || true
  t1=$(date +%s.%N)
  # --verbose prints one indented row per obligation: "  <name> <verdict>
  # (N attempts, T s)".
  local obs
  obs=$(grep -c 'attempt' "$out" || true)
  rm -f "$out"
  awk -v a="$t0" -v b="$t1" -v n="$obs" 'BEGIN { printf "%.2f %d\n", b - a, n }'
}

json_entries=""
for suite in fig6 fig7; do
  files=(bench/suite/$suite/*.dryad)
  echo "== $suite: --jobs 1 ==" >&2
  read -r wall1 obs1 < <(run_suite 1 "${files[@]}")
  echo "== $suite: --jobs $JOBS_N ==" >&2
  read -r walln obsn < <(run_suite "$JOBS_N" "${files[@]}")
  entry=$(awk -v suite="$suite" -v w1="$wall1" -v o1="$obs1" \
              -v wn="$walln" -v on="$obsn" -v jn="$JOBS_N" 'BEGIN {
    printf "    {\"suite\": \"%s\", \"obligations\": %d,\n", suite, o1
    printf "     \"sequential\": {\"jobs\": 1, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
           w1, (w1 > 0 ? o1 / w1 : 0)
    printf "     \"parallel\": {\"jobs\": %d, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
           jn, wn, (wn > 0 ? on / wn : 0)
    printf "     \"speedup\": %.2f}", (wn > 0 ? w1 / wn : 0)
  }')
  json_entries+="${json_entries:+,$'\n'}$entry"
done

cat > "$OUT" <<EOF
{
  "bench": "parallel proof scheduler (--jobs)",
  "host_parallelism": $JOBS_N,
  "timeout_ms": $TIMEOUT_MS,
  "suites": [
$json_entries
  ]
}
EOF
echo "wrote $OUT" >&2
cat "$OUT"

# ---------------------------------------------------------------------------
# Sharded supervisor bench: fig6 at --shards 1/2/$(nproc), plus the recovery
# overhead of one injected shard crash (SIGKILL after the first journal
# record; the retry resumes from the surviving journal). Writes
# BENCH_shard.json. --shards 1 degenerates to the plain driver, so it is the
# honest sequential baseline including journal writes.
# ---------------------------------------------------------------------------
SHARD_OUT=BENCH_shard.json
SHARD_FILES=(bench/suite/fig6/*.dryad)

# One supervised run; prints "<wall-seconds>". Extra flags (e.g. --inject
# crash@1) pass through after the shard count.
run_shards() { # <shards> [extra-flags...]
  local shards=$1; shift
  local jrnl t0 t1
  jrnl=$(mktemp -u /tmp/dryadv-bench-shard.XXXXXX.jsonl)
  t0=$(date +%s.%N)
  "$DRYADV" --shards "$shards" --journal "$jrnl" --timeout "$TIMEOUT_MS" \
      --attempts 1 --no-degrade "$@" "${SHARD_FILES[@]}" \
      > /dev/null 2>&1 || true
  t1=$(date +%s.%N)
  rm -f "$jrnl" "$jrnl".shard*
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f\n", b - a }'
}

echo "== shard bench: --shards 1 ==" >&2
wall_s1=$(run_shards 1)
echo "== shard bench: --shards 2 ==" >&2
wall_s2=$(run_shards 2)
echo "== shard bench: --shards $JOBS_N ==" >&2
wall_sn=$(run_shards "$JOBS_N")
echo "== shard bench: --shards 2 with one injected shard crash ==" >&2
wall_crash=$(run_shards 2 --inject crash@1)

awk -v w1="$wall_s1" -v w2="$wall_s2" -v wn="$wall_sn" -v wc="$wall_crash" \
    -v jn="$JOBS_N" -v tmo="$TIMEOUT_MS" 'BEGIN {
  printf "{\n"
  printf "  \"bench\": \"sharded supervisor (--shards)\",\n"
  printf "  \"suite\": \"fig6\",\n"
  printf "  \"host_parallelism\": %d,\n", jn
  printf "  \"timeout_ms\": %d,\n", tmo
  printf "  \"shards\": [\n"
  printf "    {\"shards\": 1, \"wall_s\": %.2f, \"speedup\": 1.00},\n", w1
  printf "    {\"shards\": 2, \"wall_s\": %.2f, \"speedup\": %.2f},\n", \
         w2, (w2 > 0 ? w1 / w2 : 0)
  printf "    {\"shards\": %d, \"wall_s\": %.2f, \"speedup\": %.2f}\n", \
         jn, wn, (wn > 0 ? w1 / wn : 0)
  printf "  ],\n"
  printf "  \"crash_recovery\": {\"shards\": 2, \"injected_crashes\": 1,\n"
  printf "    \"wall_s\": %.2f, \"overhead_s\": %.2f, \"overhead_x\": %.2f}\n", \
         wc, wc - w2, (w2 > 0 ? wc / w2 : 0)
  printf "}\n"
}' > "$SHARD_OUT"
echo "wrote $SHARD_OUT" >&2
cat "$SHARD_OUT"
