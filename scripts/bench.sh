#!/usr/bin/env bash
# Benchmarks the parallel proof scheduler: runs each benchmark suite at
# --jobs 1 and --jobs $(nproc) and writes BENCH_sched.json with per-suite
# wall time, obligation throughput, and the parallel speedup.
#
# The speedup is bounded by the host's parallelism (recorded in the output):
# on a single-core box the two runs are the same schedule and the speedup is
# ~1.0 by construction.
#
# Dispatch is single-shot (--attempts 1 --no-degrade): the retry ladder can
# spend ~100s per stubborn obligation, which measures Z3's escalation
# schedule rather than the scheduler's throughput. check.sh gates verdicts.
set -euo pipefail

cd "$(dirname "$0")/.."

DRYADV=build/src/dryadv
OUT=BENCH_sched.json
TIMEOUT_MS=${TIMEOUT_MS:-10000}
JOBS_N=$(nproc)

[ -x "$DRYADV" ] || { echo "build dryadv first: cmake --build build" >&2; exit 1; }

# One suite run; prints "<wall-seconds> <obligations>".
run_suite() { # <jobs> <file...>
  local jobs=$1; shift
  local t0 t1 out
  out=$(mktemp)
  t0=$(date +%s.%N)
  # The negative corpus exits 1 by design and infrastructure flakes exit 3;
  # the benchmark measures throughput, not verdicts (check.sh gates those).
  "$DRYADV" --jobs "$jobs" --timeout "$TIMEOUT_MS" --attempts 1 --no-degrade \
      --verbose "$@" > "$out" 2>&1 || true
  t1=$(date +%s.%N)
  # --verbose prints one indented row per obligation: "  <name> <verdict>
  # (N attempts, T s)".
  local obs
  obs=$(grep -c 'attempt' "$out" || true)
  rm -f "$out"
  awk -v a="$t0" -v b="$t1" -v n="$obs" 'BEGIN { printf "%.2f %d\n", b - a, n }'
}

json_entries=""
for suite in fig6 fig7; do
  files=(bench/suite/$suite/*.dryad)
  echo "== $suite: --jobs 1 ==" >&2
  read -r wall1 obs1 < <(run_suite 1 "${files[@]}")
  echo "== $suite: --jobs $JOBS_N ==" >&2
  read -r walln obsn < <(run_suite "$JOBS_N" "${files[@]}")
  entry=$(awk -v suite="$suite" -v w1="$wall1" -v o1="$obs1" \
              -v wn="$walln" -v on="$obsn" -v jn="$JOBS_N" 'BEGIN {
    printf "    {\"suite\": \"%s\", \"obligations\": %d,\n", suite, o1
    printf "     \"sequential\": {\"jobs\": 1, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
           w1, (w1 > 0 ? o1 / w1 : 0)
    printf "     \"parallel\": {\"jobs\": %d, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
           jn, wn, (wn > 0 ? on / wn : 0)
    printf "     \"speedup\": %.2f}", (wn > 0 ? w1 / wn : 0)
  }')
  json_entries+="${json_entries:+,$'\n'}$entry"
done

cat > "$OUT" <<EOF
{
  "bench": "parallel proof scheduler (--jobs)",
  "host_parallelism": $JOBS_N,
  "timeout_ms": $TIMEOUT_MS,
  "suites": [
$json_entries
  ]
}
EOF
echo "wrote $OUT" >&2
cat "$OUT"
