#!/usr/bin/env bash
# Benchmarks the proof scheduler and worker lifecycle:
#
#   BENCH_sched.json  — each suite at --jobs 1 and --jobs $(nproc)
#   BENCH_warm.json   — warm (persistent) vs cold (fork-per-obligation)
#                       workers under --isolate, with spawn counts and
#                       per-obligation cost from the workers stderr line
#   BENCH_shard.json  — the sharded supervisor on fig6, including the
#                       recovery overhead of one injected shard crash
#
# HONESTY RULES (all three files):
#  * host_parallelism is always recorded;
#  * a speedup field is only stamped when nproc > 1 — on a single-core box
#    "--jobs N" and "--jobs 1" are the same schedule and a speedup would be
#    1.0 by construction, which is a measurement of nothing;
#  * runs that would be literal duplicates on this host (jobs nproc == jobs
#    1) are not re-run; the JSON says so instead of pretending otherwise.
#
# Dispatch is single-shot (--attempts 1 --no-degrade): the retry ladder can
# spend ~100s per stubborn obligation, which measures Z3's escalation
# schedule rather than the scheduler's throughput. check.sh gates verdicts.
set -euo pipefail

cd "$(dirname "$0")/.."

DRYADV=build/src/dryadv
OUT=BENCH_sched.json
TIMEOUT_MS=${TIMEOUT_MS:-10000}
JOBS_N=$(nproc)

# Provenance, stamped into every BENCH json: the exact tree and the flag
# set the numbers were measured under, so two BENCH files are comparable
# only when these match.
GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
BASE_FLAGS="--timeout $TIMEOUT_MS --attempts 1 --no-degrade"

[ -x "$DRYADV" ] || { echo "build dryadv first: cmake --build build" >&2; exit 1; }

# Backend provenance, stamped into every BENCH json: solver numbers are
# meaningless without knowing which solver (and which build of it)
# produced them. Probes z3 plus cvc5 so the record also says what this
# host could NOT run.
BACKENDS_PROV=$("$DRYADV" --list-backends --backends z3,cvc5 | awk -F'\t' '{
  printf "%s{\"name\": \"%s\", \"available\": %s, \"version\": \"%s\"}", \
         (NR > 1 ? ", " : ""), $1, ($2 == "available" ? "true" : "false"), \
         ($2 == "available" ? $3 : "")
}')
CVC5_OK=$("$DRYADV" --list-backends --backends z3,cvc5 |
  awk -F'\t' '$1 == "cvc5" { print ($2 == "available" ? 1 : 0) }')

# One suite run; prints "<wall-seconds> <obligations>". Extra flags (e.g.
# --isolate --cold) go after the jobs count; stderr (the workers line) is
# appended to $ERRFILE when set.
run_suite() { # <jobs> [extra-flags...] -- <file...>
  local jobs=$1; shift
  local flags=()
  while [ "$1" != "--" ]; do flags+=("$1"); shift; done
  shift
  local t0 t1 out err
  out=$(mktemp); err=$(mktemp)
  t0=$(date +%s.%N)
  # The negative corpus exits 1 by design and infrastructure flakes exit 3;
  # the benchmark measures throughput, not verdicts (check.sh gates those).
  "$DRYADV" --jobs "$jobs" --timeout "$TIMEOUT_MS" --attempts 1 --no-degrade \
      --verbose ${flags[@]+"${flags[@]}"} "$@" > "$out" 2> "$err" || true
  t1=$(date +%s.%N)
  [ -n "${ERRFILE:-}" ] && cat "$err" >> "$ERRFILE"
  # --verbose prints one indented row per obligation: "  <name> <verdict>
  # (N attempts, T s)".
  local obs
  obs=$(grep -c 'attempt' "$out" || true)
  rm -f "$out" "$err"
  awk -v a="$t0" -v b="$t1" -v n="$obs" 'BEGIN { printf "%.2f %d\n", b - a, n }'
}

json_entries=""
for suite in fig6 fig7; do
  files=(bench/suite/$suite/*.dryad)
  echo "== $suite: --jobs 1 ==" >&2
  read -r wall1 obs1 < <(run_suite 1 -- "${files[@]}")
  if [ "$JOBS_N" -gt 1 ]; then
    echo "== $suite: --jobs $JOBS_N ==" >&2
    read -r walln obsn < <(run_suite "$JOBS_N" -- "${files[@]}")
    entry=$(awk -v suite="$suite" -v w1="$wall1" -v o1="$obs1" \
                -v wn="$walln" -v on="$obsn" -v jn="$JOBS_N" 'BEGIN {
      printf "    {\"suite\": \"%s\", \"obligations\": %d,\n", suite, o1
      printf "     \"sequential\": {\"jobs\": 1, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
             w1, (w1 > 0 ? o1 / w1 : 0)
      printf "     \"parallel\": {\"jobs\": %d, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
             jn, wn, (wn > 0 ? on / wn : 0)
      printf "     \"speedup\": %.2f}", (wn > 0 ? w1 / wn : 0)
    }')
  else
    # nproc == 1: --jobs $(nproc) IS --jobs 1. No second run, no speedup.
    entry=$(awk -v suite="$suite" -v w1="$wall1" -v o1="$obs1" 'BEGIN {
      printf "    {\"suite\": \"%s\", \"obligations\": %d,\n", suite, o1
      printf "     \"sequential\": {\"jobs\": 1, \"wall_s\": %.2f, \"obligations_per_s\": %.2f},\n", \
             w1, (w1 > 0 ? o1 / w1 : 0)
      printf "     \"note\": \"host_parallelism is 1: jobs nproc duplicates jobs 1, speedup unmeasurable\"}"
    }')
  fi
  json_entries+="${json_entries:+,$'\n'}$entry"
done

cat > "$OUT" <<EOF
{
  "bench": "parallel proof scheduler (--jobs)",
  "git_rev": "$GIT_REV",
  "backends": [$BACKENDS_PROV],
  "flags": "$BASE_FLAGS --verbose",
  "host_parallelism": $JOBS_N,
  "timeout_ms": $TIMEOUT_MS,
  "suites": [
$json_entries
  ]
}
EOF
echo "wrote $OUT" >&2
cat "$OUT"

# ---------------------------------------------------------------------------
# Warm-worker bench: cold (fork-per-obligation) vs warm (persistent fleet)
# under --isolate, at --jobs 1 (pure init-amortization) and --jobs $(nproc).
# Spawn/served counts come from the "workers:" stderr line, so the
# amortization claim (spawns << obligations) is measured, not assumed.
# Writes BENCH_warm.json.
# ---------------------------------------------------------------------------
WARM_OUT=BENCH_warm.json

# Sums a field like "spawns=" or "served=" across every workers: line.
stat_sum() { # <file> <field>
  grep -o "$2[0-9]*" "$1" | sed "s/$2//" | awk '{ s += $1 } END { print s + 0 }'
}

warm_entries=""
for suite in fig6 fig7; do
  files=(bench/suite/$suite/*.dryad)

  ERRFILE=$(mktemp)
  echo "== warm bench $suite: --cold --jobs 1 ==" >&2
  read -r wall_cold obs < <(run_suite 1 --isolate --cold -- "${files[@]}")
  cold_spawns=$(stat_sum "$ERRFILE" "spawns=")
  rm -f "$ERRFILE"

  ERRFILE=$(mktemp)
  echo "== warm bench $suite: warm --jobs 1 ==" >&2
  read -r wall_warm obs_w < <(run_suite 1 --isolate -- "${files[@]}")
  warm_spawns=$(stat_sum "$ERRFILE" "spawns=")
  warm_served=$(stat_sum "$ERRFILE" "served=")
  rm -f "$ERRFILE"

  if [ "$JOBS_N" -gt 1 ]; then
    ERRFILE=$(mktemp)
    echo "== warm bench $suite: --cold --jobs $JOBS_N ==" >&2
    read -r wall_cold_n _ < <(run_suite "$JOBS_N" --isolate --cold -- "${files[@]}")
    rm -f "$ERRFILE"
    ERRFILE=$(mktemp)
    echo "== warm bench $suite: warm --jobs $JOBS_N ==" >&2
    read -r wall_warm_n _ < <(run_suite "$JOBS_N" --isolate -- "${files[@]}")
    rm -f "$ERRFILE"
    njobs_json=$(awk -v jc="$wall_cold_n" -v jw="$wall_warm_n" -v jn="$JOBS_N" 'BEGIN {
      printf "     \"jobs_nproc\": {\"jobs\": %d, \"cold_wall_s\": %.2f, \"warm_wall_s\": %.2f},", \
             jn, jc, jw
    }')
  else
    njobs_json='     "jobs_nproc": "host_parallelism is 1: identical to jobs 1, not re-run",'
  fi

  entry=$(awk -v suite="$suite" -v obs="$obs" \
              -v wc="$wall_cold" -v ww="$wall_warm" \
              -v cs="$cold_spawns" -v ws="$warm_spawns" -v srv="$warm_served" \
              -v extra="$njobs_json" 'BEGIN {
    printf "    {\"suite\": \"%s\", \"obligations\": %d,\n", suite, obs
    printf "     \"cold\": {\"jobs\": 1, \"wall_s\": %.2f, \"spawns\": %d, \"per_obligation_ms\": %.1f},\n", \
           wc, cs, (obs > 0 ? wc * 1000 / obs : 0)
    printf "     \"warm\": {\"jobs\": 1, \"wall_s\": %.2f, \"spawns\": %d, \"served\": %d, \"per_obligation_ms\": %.1f},\n", \
           ww, ws, srv, (obs > 0 ? ww * 1000 / obs : 0)
    printf "%s\n", extra
    printf "     \"saved_wall_s\": %.2f, \"saved_per_obligation_ms\": %.1f,\n", \
           wc - ww, (obs > 0 ? (wc - ww) * 1000 / obs : 0)
    printf "     \"spawns_avoided\": %d}", cs - ws
  }')
  warm_entries+="${warm_entries:+,$'\n'}$entry"
done

cat > "$WARM_OUT" <<EOF
{
  "bench": "warm solver workers (--warm-workers vs --cold)",
  "git_rev": "$GIT_REV",
  "backends": [$BACKENDS_PROV],
  "flags": "$BASE_FLAGS --verbose --isolate",
  "host_parallelism": $JOBS_N,
  "timeout_ms": $TIMEOUT_MS,
  "suites": [
$warm_entries
  ]
}
EOF
echo "wrote $WARM_OUT" >&2
cat "$WARM_OUT"

# ---------------------------------------------------------------------------
# Sharded supervisor bench: fig6 at --shards 1/2 (and $(nproc) when that is
# not a duplicate), plus the recovery overhead of one injected shard crash
# (SIGKILL after the first journal record; the retry resumes from the
# surviving journal). Writes BENCH_shard.json. --shards 1 degenerates to
# the plain driver, so it is the honest sequential baseline including
# journal writes. Shard wall-clock ratios are only stamped as "speedup"
# when the host can actually run shards in parallel.
# ---------------------------------------------------------------------------
SHARD_OUT=BENCH_shard.json
SHARD_FILES=(bench/suite/fig6/*.dryad)

# One supervised run; prints "<wall-seconds>". Extra flags (e.g. --inject
# crash@1) pass through after the shard count.
run_shards() { # <shards> [extra-flags...]
  local shards=$1; shift
  local jrnl t0 t1
  jrnl=$(mktemp -u /tmp/dryadv-bench-shard.XXXXXX.jsonl)
  t0=$(date +%s.%N)
  "$DRYADV" --shards "$shards" --journal "$jrnl" --timeout "$TIMEOUT_MS" \
      --attempts 1 --no-degrade "$@" "${SHARD_FILES[@]}" \
      > /dev/null 2>&1 || true
  t1=$(date +%s.%N)
  rm -f "$jrnl" "$jrnl".shard*
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f\n", b - a }'
}

echo "== shard bench: --shards 1 ==" >&2
wall_s1=$(run_shards 1)
echo "== shard bench: --shards 2 ==" >&2
wall_s2=$(run_shards 2)
if [ "$JOBS_N" -gt 2 ]; then
  echo "== shard bench: --shards $JOBS_N ==" >&2
  wall_sn=$(run_shards "$JOBS_N")
else
  wall_sn=""
fi
echo "== shard bench: --shards 2 with one injected shard crash ==" >&2
wall_crash=$(run_shards 2 --inject crash@1)

awk -v w1="$wall_s1" -v w2="$wall_s2" -v wn="$wall_sn" -v wc="$wall_crash" \
    -v jn="$JOBS_N" -v tmo="$TIMEOUT_MS" -v rev="$GIT_REV" -v prov="$BACKENDS_PROV" \
    -v flags="$BASE_FLAGS --journal <tmp>" 'BEGIN {
  printf "{\n"
  printf "  \"bench\": \"sharded supervisor (--shards)\",\n"
  printf "  \"git_rev\": \"%s\",\n", rev
  printf "  \"backends\": [%s],\n", prov
  printf "  \"flags\": \"%s\",\n", flags
  printf "  \"suite\": \"fig6\",\n"
  printf "  \"host_parallelism\": %d,\n", jn
  printf "  \"timeout_ms\": %d,\n", tmo
  printf "  \"shards\": [\n"
  printf "    {\"shards\": 1, \"wall_s\": %.2f}", w1
  if (jn > 1) {
    printf ",\n    {\"shards\": 2, \"wall_s\": %.2f, \"speedup\": %.2f}", \
           w2, (w2 > 0 ? w1 / w2 : 0)
  } else {
    printf ",\n    {\"shards\": 2, \"wall_s\": %.2f,", w2
    printf " \"note\": \"host_parallelism is 1: both shards share one core, speedup unmeasurable\"}"
  }
  if (wn != "") {
    printf ",\n    {\"shards\": %d, \"wall_s\": %.2f", jn, wn
    if (jn > 1) printf ", \"speedup\": %.2f", (wn > 0 ? w1 / wn : 0)
    printf "}"
  }
  printf "\n  ],\n"
  printf "  \"crash_recovery\": {\"shards\": 2, \"injected_crashes\": 1,\n"
  printf "    \"wall_s\": %.2f, \"overhead_s\": %.2f, \"overhead_x\": %.2f}\n", \
         wc, wc - w2, (w2 > 0 ? wc / w2 : 0)
  printf "}\n"
}' > "$SHARD_OUT"
echo "wrote $SHARD_OUT" >&2
cat "$SHARD_OUT"

# ---------------------------------------------------------------------------
# Persistent proof store bench: fig6 cold (empty store, everything solved)
# vs warm (unchanged files, everything answered from the store). The warm
# run's hit rate comes from the measured store counters, not assumption;
# --no-vacuity keeps the runs comparable (hard vacuity probes time out
# advisory-unknown and would re-probe — a by-design persistent miss).
# Writes BENCH_store.json.
# ---------------------------------------------------------------------------
STORE_OUT=BENCH_store.json
STORE_SEG=$(mktemp -u /tmp/dryadv-bench-store.XXXXXX.seg)
STORE_FILES=(bench/suite/fig6/*.dryad)
STORE_FLAGS=(--no-vacuity --store "$STORE_SEG")

run_store() { # prints "<wall-seconds> <hits> <misses>"
  local t0 t1 err
  err=$(mktemp)
  t0=$(date +%s.%N)
  "$DRYADV" --timeout "$TIMEOUT_MS" --attempts 1 --no-degrade \
      "${STORE_FLAGS[@]}" "${STORE_FILES[@]}" > /dev/null 2> "$err" || true
  t1=$(date +%s.%N)
  local hits misses
  hits=$(stat_sum "$err" "hits=")
  misses=$(stat_sum "$err" "misses=")
  rm -f "$err"
  awk -v a="$t0" -v b="$t1" -v h="$hits" -v m="$misses" \
      'BEGIN { printf "%.2f %d %d\n", b - a, h, m }'
}

rm -f "$STORE_SEG" "$STORE_SEG".stale
echo "== store bench: cold (empty store) ==" >&2
read -r wall_cold hits_cold misses_cold < <(run_store)
echo "== store bench: warm (unchanged files) ==" >&2
read -r wall_warm hits_warm misses_warm < <(run_store)
rm -f "$STORE_SEG" "$STORE_SEG".stale

awk -v wc="$wall_cold" -v hc="$hits_cold" -v mc="$misses_cold" \
    -v ww="$wall_warm" -v hw="$hits_warm" -v mw="$misses_warm" \
    -v jn="$JOBS_N" -v tmo="$TIMEOUT_MS" -v rev="$GIT_REV" -v prov="$BACKENDS_PROV" \
    -v flags="--timeout $TIMEOUT_MS --attempts 1 --no-degrade --no-vacuity --store <tmp>" 'BEGIN {
  printf "{\n"
  printf "  \"bench\": \"persistent proof store (--store)\",\n"
  printf "  \"git_rev\": \"%s\",\n", rev
  printf "  \"backends\": [%s],\n", prov
  printf "  \"flags\": \"%s\",\n", flags
  printf "  \"suite\": \"fig6\",\n"
  printf "  \"host_parallelism\": %d,\n", jn
  printf "  \"timeout_ms\": %d,\n", tmo
  printf "  \"cold\": {\"wall_s\": %.2f, \"hits\": %d, \"misses\": %d},\n", \
         wc, hc, mc
  printf "  \"warm\": {\"wall_s\": %.2f, \"hits\": %d, \"misses\": %d,\n", \
         ww, hw, mw
  printf "    \"hit_rate\": %.3f},\n", (hw + mw > 0 ? hw / (hw + mw) : 0)
  printf "  \"speedup\": %.1f\n", (ww > 0 ? wc / ww : 0)
  printf "}\n"
}' > "$STORE_OUT"
echo "wrote $STORE_OUT" >&2
cat "$STORE_OUT"

# ---------------------------------------------------------------------------
# Backend portfolio bench: fig6 single-backend (the in-process z3 API) vs
# the cross-solver portfolio (--backends z3,cvc5 --portfolio), with the
# per-rung win counts parsed from the measured "backends:" stderr tail.
# HONESTY RULES: on a host without cvc5 the portfolio run degenerates to a
# z3-only rung race; the JSON says so (cvc5.available=false, wins absent)
# instead of inventing a cross-solver number. Writes BENCH_backend.json.
# ---------------------------------------------------------------------------
BACKEND_OUT=BENCH_backend.json
BACKEND_FILES=(bench/suite/fig6/*.dryad)

# Win count for one backend name out of the stderr tail
# ("... backends: z3 served=12 crashes=0 wins=9; cvc5 ..."). A degraded
# plain-z3 fleet prints no tail at all, so zero matches means zero wins,
# not a failure (grep's exit 1 would otherwise trip pipefail).
wins_for() { # <file> <name>
  { grep -o "$2 served=[0-9]* crashes=[0-9]* wins=[0-9]*" "$1" || true; } |
    sed 's/.*wins=//' | awk '{ s += $1 } END { print s + 0 }'
}

ERRFILE=$(mktemp)
echo "== backend bench: single backend (z3), --jobs $JOBS_N ==" >&2
read -r wall_single _ < <(run_suite "$JOBS_N" -- "${BACKEND_FILES[@]}")
rm -f "$ERRFILE"

ERRFILE=$(mktemp)
echo "== backend bench: --backends z3,cvc5 portfolio, --jobs $JOBS_N ==" >&2
read -r wall_port _ < <(run_suite "$JOBS_N" --backends z3,cvc5 --portfolio \
    -- "${BACKEND_FILES[@]}")
wins_z3=$(wins_for "$ERRFILE" "z3")
wins_cvc5=$(wins_for "$ERRFILE" "cvc5")
rm -f "$ERRFILE"

awk -v ws="$wall_single" -v wp="$wall_port" -v wz="$wins_z3" \
    -v wc="$wins_cvc5" -v ok="$CVC5_OK" -v jn="$JOBS_N" -v tmo="$TIMEOUT_MS" \
    -v rev="$GIT_REV" -v prov="$BACKENDS_PROV" \
    -v flags="$BASE_FLAGS --verbose --backends z3,cvc5 --portfolio" 'BEGIN {
  printf "{\n"
  printf "  \"bench\": \"solver backends (--backends portfolio)\",\n"
  printf "  \"git_rev\": \"%s\",\n", rev
  printf "  \"backends\": [%s],\n", prov
  printf "  \"flags\": \"%s\",\n", flags
  printf "  \"suite\": \"fig6\",\n"
  printf "  \"host_parallelism\": %d,\n", jn
  printf "  \"timeout_ms\": %d,\n", tmo
  printf "  \"single\": {\"backend\": \"z3\", \"jobs\": %d, \"wall_s\": %.2f},\n", \
         jn, ws
  if (ok == 1) {
    printf "  \"portfolio\": {\"backends\": \"z3,cvc5\", \"jobs\": %d, \"wall_s\": %.2f,\n", \
           jn, wp
    printf "    \"wins\": {\"z3\": %d, \"cvc5\": %d},\n", wz, wc
    printf "    \"win_rate_cvc5\": %.3f},\n", (wz + wc > 0 ? wc / (wz + wc) : 0)
  } else {
    printf "  \"portfolio\": {\"backends\": \"z3,cvc5\", \"jobs\": %d, \"wall_s\": %.2f,\n", \
           jn, wp
    printf "    \"note\": \"cvc5 unavailable on this host: the portfolio degenerated to a z3-only rung race, per-backend wins unmeasurable\"},\n"
  }
  printf "  \"portfolio_overhead_x\": %.2f\n", (ws > 0 ? wp / ws : 0)
  printf "}\n"
}' > "$BACKEND_OUT"
echo "wrote $BACKEND_OUT" >&2
cat "$BACKEND_OUT"
