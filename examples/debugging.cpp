//===--- debugging.cpp - Counterexamples from wrong annotations ---------------===//
//
// §7: "in several cases, when the annotations supplied were incorrect, the
// model provided by the SMT solver ... was useful in detecting errors and
// correcting the invariants/program." This example makes the two classic
// mistakes the paper mentions — forgetting to free a deleted node, and
// writing && instead of * between disjoint heaplets — and shows the models.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "verifier/verifier.h"

#include <cstdio>

using namespace dryad;

static const char *Mistakes = R"(
fields ptr next;
fields data key;

pred list[ptr next](x) :=
  (x == nil && emp) || (x |-> (next: n) * list(n));

func keys[ptr next](x) : intset :=
  case (x == nil && emp) -> {};
  case (x |-> (next: n, key: k) * true) -> union(keys(n), {k});
  default -> {};

// Mistake 1: delete the head but forget to free it. The heaplet of the
// postcondition no longer matches the procedure's heaplet: strictness
// catches leaks.
proc delete_head_forgot_free(x: loc) returns (ret: loc)
  spec (K: intset)
  requires (list(x) && keys(x) == K) && x != nil
  ensures  list(ret)
{
  var n: loc;
  n := x.next;
  return n;
}

// Mistake 2: using && instead of * between two structures that must be
// disjoint. With &&, both formulas claim the same heaplet, which is
// unsatisfiable for two non-empty lists; the copy routine then cannot
// establish its postcondition for any non-trivial input.
proc concat_with_wrong_conjunction(a: loc, b: loc) returns (ret: loc)
  spec (A: intset, B: intset)
  requires (list(a) * list(b)) && keys(a) == A && keys(b) == B
  ensures  (list(ret) && list(b)) && keys(ret) == A
{
  return a;
}
)";

int main() {
  Module M;
  DiagEngine Diags;
  if (!parseModule(Mistakes, M, Diags)) {
    std::printf("parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Verifier V(M, Opts);
  for (const ProcResult &R : V.verifyAll(Diags)) {
    std::printf("== %s: %s ==\n", R.Proc.c_str(),
                R.Verified ? "verified (unexpected!)" : "rejected");
    for (const ObligationResult &O : R.Obligations)
      if (O.Status == SmtStatus::Sat)
        std::printf("  counterexample: %s\n", O.Model.c_str());
    if (R.Verified)
      return 1;
  }
  std::printf("\nBoth annotation bugs were caught with concrete models.\n");
  return 0;
}
