//===--- quickstart.cpp - Verify your first routine ---------------------------===//
//
// The five-minute tour: write a Dryad-annotated routine as a string, parse
// it, verify it, and inspect the per-obligation results. See README.md for
// the walkthrough.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <cstdio>

using namespace dryad;

static const char *Program = R"(
// Declare the record layout: one pointer field, one data field.
fields ptr next;
fields data key;

// Structure: x points to an acyclic singly-linked list.
pred list[ptr next](x) :=
  (x == nil && emp) || (x |-> (next: n) * list(n));

// Data: the set of keys stored in the list.
func keys[ptr next](x) : intset :=
  case (x == nil && emp) -> {};
  case (x |-> (next: n, key: k) * true) -> union(keys(n), {k});
  default -> {};

// Full functional correctness of insertion at the front: the result is a
// list whose keys are exactly the old keys plus k. The heaplet semantics
// gives separation for free: nothing else in the heap is touched.
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)";

int main() {
  Module M;
  DiagEngine Diags;
  if (!parseModule(Program, M, Diags)) {
    std::printf("parse error:\n%s", Diags.str().c_str());
    return 1;
  }

  Verifier V(M);
  std::vector<ProcResult> Results = V.verifyAll(Diags);
  std::printf("%s", formatResults("quickstart", Results).c_str());

  for (const ProcResult &R : Results)
    if (!R.Verified)
      return 1;
  std::printf("\ninsert_front is fully functionally correct.\n");
  return 0;
}
