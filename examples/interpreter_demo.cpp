//===--- interpreter_demo.cpp - Executing verified routines --------------------===//
//
// The library is not just a prover: modules are executable. This example
// builds a concrete heap, runs the (verified) sorted-list insert on it with
// the interpreter, and re-checks the postcondition with the Dryad
// evaluator — the same closed loop the soundness property tests use.
//
//===----------------------------------------------------------------------===//

#include "interp/gen.h"
#include "interp/interp.h"
#include "lang/parser.h"
#include "sem/eval.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dryad;

int main() {
  std::ifstream In(std::string(DRYAD_SOURCE_DIR) +
                   "/bench/suite/fig6/sorted_list.dryad");
  std::stringstream SS;
  SS << In.rdbuf();

  Module M;
  DiagEngine Diags;
  if (!parseModule(SS.str(), M, Diags)) {
    std::printf("parse error:\n%s", Diags.str().c_str());
    return 1;
  }

  ProgramState St(M.Fields);
  HeapGen Gen(St, /*Seed=*/42);
  int64_t Head = Gen.makeSortedList(6);
  std::printf("== before ==\n%s\n", St.str().c_str());

  Interpreter Interp(M);
  auto R = Interp.call("insert_rec", {Value::mkLoc(Head), Value::mkInt(7)},
                       St);
  if (!R.Ok) {
    std::printf("execution failed: %s\n", R.Error.c_str());
    return 1;
  }
  int64_t NewHead = R.Ret->I;
  std::printf("== after insert_rec(head, 7) ==\n%s\n", St.str().c_str());

  // Check the postcondition concretely: the result is a sorted list.
  Evaluator Eval(St, M.Defs, EvalMode::Heaplet);
  const RecDef *Slist = M.Defs.lookup("slist");
  Value Holds = Eval.recValue(Slist, {}, NewHead);
  std::printf("slist(result) evaluates to: %s\n", Holds.str().c_str());
  return Holds.B ? 0 : 1;
}
