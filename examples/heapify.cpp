//===--- heapify.cpp - The paper's motivating example (Figure 1) --------------===//
//
// Runs the paper's §3 example end-to-end: the max-heap definitions
// mheap/keys written in Dryad, the recursive heapify routine, and the
// natural-proof pipeline (translation to classical logic, unfolding across
// the footprint, frame instantiation, formula abstraction, Z3). Prints the
// basic paths and the discharge result of each obligation.
//
//===----------------------------------------------------------------------===//

#include "dryad/printer.h"
#include "lang/parser.h"
#include "lang/paths.h"
#include "natural/engine.h"
#include "vcgen/vc.h"
#include "verifier/verifier.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dryad;

int main() {
  std::ifstream In(std::string(DRYAD_SOURCE_DIR) +
                   "/bench/suite/fig6/maxheap.dryad");
  std::stringstream SS;
  SS << In.rdbuf();

  Module M;
  DiagEngine Diags;
  if (!parseModule(SS.str(), M, Diags)) {
    std::printf("parse error:\n%s", Diags.str().c_str());
    return 1;
  }

  const Procedure *P = M.findProc("heapify");
  std::printf("== Contract ==\nrequires %s\nensures  %s\n\n",
              print(P->Pre).c_str(), print(P->Post).c_str());

  std::vector<BasicPath> Paths = extractPaths(M, *P, Diags);
  std::printf("== %zu basic paths ==\n", Paths.size());
  for (const BasicPath &BP : Paths)
    std::printf("  %s (%zu statements)\n", BP.Desc.c_str(), BP.Stmts.size());

  // Show the size of the natural proof for the first path.
  VCGen Gen(M);
  std::optional<VCond> VC = Gen.generate(*P, Paths.front(), Diags);
  NaturalProof NP = buildNaturalProof(M, *VC);
  std::printf("\n== Natural proof for '%s' ==\n", VC->Name.c_str());
  std::printf("  %zu path assumptions, %zu unfold/frame/axiom assertions, "
              "%zu definition instances, %zu footprint terms\n\n",
              VC->Assumptions.size(), NP.Assertions.size(),
              NP.Instances.size(), VC->LocTerms.size());

  VerifyOptions Opts;
  Opts.TimeoutMs = 120000;
  Verifier V(M, Opts);
  ProcResult R = V.verifyProc(*P, Diags);
  for (const ObligationResult &O : R.Obligations)
    std::printf("%-52s %-8s %.2fs\n", O.Name.c_str(),
                O.Status == SmtStatus::Unsat  ? "proved"
                : O.Status == SmtStatus::Sat ? "cex"
                                             : "unknown",
                O.Seconds);
  std::printf("\nheapify %s (paper: 8.8s on 2009 hardware)\n",
              R.Verified ? "VERIFIED" : "NOT VERIFIED");
  return R.Verified ? 0 : 1;
}
