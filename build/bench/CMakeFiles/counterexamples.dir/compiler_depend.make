# Empty compiler generated dependencies file for counterexamples.
# This may be replaced when dependencies are built.
