file(REMOVE_RECURSE
  "CMakeFiles/counterexamples.dir/counterexamples.cpp.o"
  "CMakeFiles/counterexamples.dir/counterexamples.cpp.o.d"
  "counterexamples"
  "counterexamples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterexamples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
