# Empty dependencies file for counterexamples.
# This may be replaced when dependencies are built.
