# Empty compiler generated dependencies file for ablation_tactics.
# This may be replaced when dependencies are built.
