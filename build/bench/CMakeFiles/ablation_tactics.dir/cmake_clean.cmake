file(REMOVE_RECURSE
  "CMakeFiles/ablation_tactics.dir/ablation_tactics.cpp.o"
  "CMakeFiles/ablation_tactics.dir/ablation_tactics.cpp.o.d"
  "ablation_tactics"
  "ablation_tactics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tactics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
