file(REMOVE_RECURSE
  "CMakeFiles/fig6_datastructures.dir/fig6_datastructures.cpp.o"
  "CMakeFiles/fig6_datastructures.dir/fig6_datastructures.cpp.o.d"
  "fig6_datastructures"
  "fig6_datastructures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_datastructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
