# Empty dependencies file for fig6_datastructures.
# This may be replaced when dependencies are built.
