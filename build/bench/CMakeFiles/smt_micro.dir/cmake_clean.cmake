file(REMOVE_RECURSE
  "CMakeFiles/smt_micro.dir/smt_micro.cpp.o"
  "CMakeFiles/smt_micro.dir/smt_micro.cpp.o.d"
  "smt_micro"
  "smt_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
