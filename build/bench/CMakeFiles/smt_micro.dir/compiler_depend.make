# Empty compiler generated dependencies file for smt_micro.
# This may be replaced when dependencies are built.
