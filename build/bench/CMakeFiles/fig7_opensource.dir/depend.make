# Empty dependencies file for fig7_opensource.
# This may be replaced when dependencies are built.
