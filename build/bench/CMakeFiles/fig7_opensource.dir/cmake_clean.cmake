file(REMOVE_RECURSE
  "CMakeFiles/fig7_opensource.dir/fig7_opensource.cpp.o"
  "CMakeFiles/fig7_opensource.dir/fig7_opensource.cpp.o.d"
  "fig7_opensource"
  "fig7_opensource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_opensource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
