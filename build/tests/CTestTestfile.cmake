# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/state_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/scope_test[1]_include.cmake")
include("/root/repo/build/tests/translate_test[1]_include.cmake")
include("/root/repo/build/tests/theorem51_test[1]_include.cmake")
include("/root/repo/build/tests/delta_elim_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/vcgen_test[1]_include.cmake")
include("/root/repo/build/tests/natural_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/suite_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
