file(REMOVE_RECURSE
  "CMakeFiles/vcgen_test.dir/vcgen_test.cpp.o"
  "CMakeFiles/vcgen_test.dir/vcgen_test.cpp.o.d"
  "vcgen_test"
  "vcgen_test.pdb"
  "vcgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
