# Empty dependencies file for vcgen_test.
# This may be replaced when dependencies are built.
