file(REMOVE_RECURSE
  "CMakeFiles/smt_test.dir/smt_test.cpp.o"
  "CMakeFiles/smt_test.dir/smt_test.cpp.o.d"
  "smt_test"
  "smt_test.pdb"
  "smt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
