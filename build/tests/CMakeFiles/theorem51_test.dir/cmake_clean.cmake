file(REMOVE_RECURSE
  "CMakeFiles/theorem51_test.dir/theorem51_test.cpp.o"
  "CMakeFiles/theorem51_test.dir/theorem51_test.cpp.o.d"
  "theorem51_test"
  "theorem51_test.pdb"
  "theorem51_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem51_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
