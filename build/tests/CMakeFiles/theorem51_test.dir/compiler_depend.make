# Empty compiler generated dependencies file for theorem51_test.
# This may be replaced when dependencies are built.
