# Empty dependencies file for delta_elim_test.
# This may be replaced when dependencies are built.
