file(REMOVE_RECURSE
  "CMakeFiles/delta_elim_test.dir/delta_elim_test.cpp.o"
  "CMakeFiles/delta_elim_test.dir/delta_elim_test.cpp.o.d"
  "delta_elim_test"
  "delta_elim_test.pdb"
  "delta_elim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_elim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
