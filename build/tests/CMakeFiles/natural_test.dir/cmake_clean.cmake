file(REMOVE_RECURSE
  "CMakeFiles/natural_test.dir/natural_test.cpp.o"
  "CMakeFiles/natural_test.dir/natural_test.cpp.o.d"
  "natural_test"
  "natural_test.pdb"
  "natural_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
