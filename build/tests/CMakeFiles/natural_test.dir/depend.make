# Empty dependencies file for natural_test.
# This may be replaced when dependencies are built.
