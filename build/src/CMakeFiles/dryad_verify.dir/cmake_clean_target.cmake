file(REMOVE_RECURSE
  "libdryad_verify.a"
)
