file(REMOVE_RECURSE
  "CMakeFiles/dryad_verify.dir/interp/gen.cpp.o"
  "CMakeFiles/dryad_verify.dir/interp/gen.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/interp/interp.cpp.o"
  "CMakeFiles/dryad_verify.dir/interp/interp.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/lang/ast.cpp.o"
  "CMakeFiles/dryad_verify.dir/lang/ast.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/lang/parser.cpp.o"
  "CMakeFiles/dryad_verify.dir/lang/parser.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/lang/paths.cpp.o"
  "CMakeFiles/dryad_verify.dir/lang/paths.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/natural/axioms.cpp.o"
  "CMakeFiles/dryad_verify.dir/natural/axioms.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/natural/engine.cpp.o"
  "CMakeFiles/dryad_verify.dir/natural/engine.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/natural/footprint.cpp.o"
  "CMakeFiles/dryad_verify.dir/natural/footprint.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/natural/frames.cpp.o"
  "CMakeFiles/dryad_verify.dir/natural/frames.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/natural/unfold.cpp.o"
  "CMakeFiles/dryad_verify.dir/natural/unfold.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/smt/z3solver.cpp.o"
  "CMakeFiles/dryad_verify.dir/smt/z3solver.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/vcgen/vc.cpp.o"
  "CMakeFiles/dryad_verify.dir/vcgen/vc.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/verifier/report.cpp.o"
  "CMakeFiles/dryad_verify.dir/verifier/report.cpp.o.d"
  "CMakeFiles/dryad_verify.dir/verifier/verifier.cpp.o"
  "CMakeFiles/dryad_verify.dir/verifier/verifier.cpp.o.d"
  "libdryad_verify.a"
  "libdryad_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dryad_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
