# Empty compiler generated dependencies file for dryad_verify.
# This may be replaced when dependencies are built.
