
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/gen.cpp" "src/CMakeFiles/dryad_verify.dir/interp/gen.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/interp/gen.cpp.o.d"
  "/root/repo/src/interp/interp.cpp" "src/CMakeFiles/dryad_verify.dir/interp/interp.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/interp/interp.cpp.o.d"
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/dryad_verify.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/dryad_verify.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/paths.cpp" "src/CMakeFiles/dryad_verify.dir/lang/paths.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/lang/paths.cpp.o.d"
  "/root/repo/src/natural/axioms.cpp" "src/CMakeFiles/dryad_verify.dir/natural/axioms.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/natural/axioms.cpp.o.d"
  "/root/repo/src/natural/engine.cpp" "src/CMakeFiles/dryad_verify.dir/natural/engine.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/natural/engine.cpp.o.d"
  "/root/repo/src/natural/footprint.cpp" "src/CMakeFiles/dryad_verify.dir/natural/footprint.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/natural/footprint.cpp.o.d"
  "/root/repo/src/natural/frames.cpp" "src/CMakeFiles/dryad_verify.dir/natural/frames.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/natural/frames.cpp.o.d"
  "/root/repo/src/natural/unfold.cpp" "src/CMakeFiles/dryad_verify.dir/natural/unfold.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/natural/unfold.cpp.o.d"
  "/root/repo/src/smt/z3solver.cpp" "src/CMakeFiles/dryad_verify.dir/smt/z3solver.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/smt/z3solver.cpp.o.d"
  "/root/repo/src/vcgen/vc.cpp" "src/CMakeFiles/dryad_verify.dir/vcgen/vc.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/vcgen/vc.cpp.o.d"
  "/root/repo/src/verifier/report.cpp" "src/CMakeFiles/dryad_verify.dir/verifier/report.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/verifier/report.cpp.o.d"
  "/root/repo/src/verifier/verifier.cpp" "src/CMakeFiles/dryad_verify.dir/verifier/verifier.cpp.o" "gcc" "src/CMakeFiles/dryad_verify.dir/verifier/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dryad_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
