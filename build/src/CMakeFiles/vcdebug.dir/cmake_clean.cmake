file(REMOVE_RECURSE
  "CMakeFiles/vcdebug.dir/tools/vcdebug.cpp.o"
  "CMakeFiles/vcdebug.dir/tools/vcdebug.cpp.o.d"
  "vcdebug"
  "vcdebug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdebug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
