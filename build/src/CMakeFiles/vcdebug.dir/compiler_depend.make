# Empty compiler generated dependencies file for vcdebug.
# This may be replaced when dependencies are built.
