file(REMOVE_RECURSE
  "CMakeFiles/dryadv.dir/tools/dryadv.cpp.o"
  "CMakeFiles/dryadv.dir/tools/dryadv.cpp.o.d"
  "dryadv"
  "dryadv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dryadv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
