# Empty dependencies file for dryadv.
# This may be replaced when dependencies are built.
