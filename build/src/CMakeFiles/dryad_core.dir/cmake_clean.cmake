file(REMOVE_RECURSE
  "CMakeFiles/dryad_core.dir/dryad/ast.cpp.o"
  "CMakeFiles/dryad_core.dir/dryad/ast.cpp.o.d"
  "CMakeFiles/dryad_core.dir/dryad/defs.cpp.o"
  "CMakeFiles/dryad_core.dir/dryad/defs.cpp.o.d"
  "CMakeFiles/dryad_core.dir/dryad/lexer.cpp.o"
  "CMakeFiles/dryad_core.dir/dryad/lexer.cpp.o.d"
  "CMakeFiles/dryad_core.dir/dryad/parser.cpp.o"
  "CMakeFiles/dryad_core.dir/dryad/parser.cpp.o.d"
  "CMakeFiles/dryad_core.dir/dryad/printer.cpp.o"
  "CMakeFiles/dryad_core.dir/dryad/printer.cpp.o.d"
  "CMakeFiles/dryad_core.dir/dryad/typecheck.cpp.o"
  "CMakeFiles/dryad_core.dir/dryad/typecheck.cpp.o.d"
  "CMakeFiles/dryad_core.dir/sem/classical_eval.cpp.o"
  "CMakeFiles/dryad_core.dir/sem/classical_eval.cpp.o.d"
  "CMakeFiles/dryad_core.dir/sem/eval.cpp.o"
  "CMakeFiles/dryad_core.dir/sem/eval.cpp.o.d"
  "CMakeFiles/dryad_core.dir/sem/state.cpp.o"
  "CMakeFiles/dryad_core.dir/sem/state.cpp.o.d"
  "CMakeFiles/dryad_core.dir/sem/value.cpp.o"
  "CMakeFiles/dryad_core.dir/sem/value.cpp.o.d"
  "CMakeFiles/dryad_core.dir/support/diag.cpp.o"
  "CMakeFiles/dryad_core.dir/support/diag.cpp.o.d"
  "CMakeFiles/dryad_core.dir/translate/delta_elim.cpp.o"
  "CMakeFiles/dryad_core.dir/translate/delta_elim.cpp.o.d"
  "CMakeFiles/dryad_core.dir/translate/scope.cpp.o"
  "CMakeFiles/dryad_core.dir/translate/scope.cpp.o.d"
  "CMakeFiles/dryad_core.dir/translate/translate.cpp.o"
  "CMakeFiles/dryad_core.dir/translate/translate.cpp.o.d"
  "libdryad_core.a"
  "libdryad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dryad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
