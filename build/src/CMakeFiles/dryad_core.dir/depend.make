# Empty dependencies file for dryad_core.
# This may be replaced when dependencies are built.
