
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dryad/ast.cpp" "src/CMakeFiles/dryad_core.dir/dryad/ast.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/dryad/ast.cpp.o.d"
  "/root/repo/src/dryad/defs.cpp" "src/CMakeFiles/dryad_core.dir/dryad/defs.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/dryad/defs.cpp.o.d"
  "/root/repo/src/dryad/lexer.cpp" "src/CMakeFiles/dryad_core.dir/dryad/lexer.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/dryad/lexer.cpp.o.d"
  "/root/repo/src/dryad/parser.cpp" "src/CMakeFiles/dryad_core.dir/dryad/parser.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/dryad/parser.cpp.o.d"
  "/root/repo/src/dryad/printer.cpp" "src/CMakeFiles/dryad_core.dir/dryad/printer.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/dryad/printer.cpp.o.d"
  "/root/repo/src/dryad/typecheck.cpp" "src/CMakeFiles/dryad_core.dir/dryad/typecheck.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/dryad/typecheck.cpp.o.d"
  "/root/repo/src/sem/classical_eval.cpp" "src/CMakeFiles/dryad_core.dir/sem/classical_eval.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/sem/classical_eval.cpp.o.d"
  "/root/repo/src/sem/eval.cpp" "src/CMakeFiles/dryad_core.dir/sem/eval.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/sem/eval.cpp.o.d"
  "/root/repo/src/sem/state.cpp" "src/CMakeFiles/dryad_core.dir/sem/state.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/sem/state.cpp.o.d"
  "/root/repo/src/sem/value.cpp" "src/CMakeFiles/dryad_core.dir/sem/value.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/sem/value.cpp.o.d"
  "/root/repo/src/support/diag.cpp" "src/CMakeFiles/dryad_core.dir/support/diag.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/support/diag.cpp.o.d"
  "/root/repo/src/translate/delta_elim.cpp" "src/CMakeFiles/dryad_core.dir/translate/delta_elim.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/translate/delta_elim.cpp.o.d"
  "/root/repo/src/translate/scope.cpp" "src/CMakeFiles/dryad_core.dir/translate/scope.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/translate/scope.cpp.o.d"
  "/root/repo/src/translate/translate.cpp" "src/CMakeFiles/dryad_core.dir/translate/translate.cpp.o" "gcc" "src/CMakeFiles/dryad_core.dir/translate/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
