file(REMOVE_RECURSE
  "libdryad_core.a"
)
