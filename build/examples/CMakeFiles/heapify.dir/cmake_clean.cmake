file(REMOVE_RECURSE
  "CMakeFiles/heapify.dir/heapify.cpp.o"
  "CMakeFiles/heapify.dir/heapify.cpp.o.d"
  "heapify"
  "heapify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
