# Empty compiler generated dependencies file for heapify.
# This may be replaced when dependencies are built.
