# Empty compiler generated dependencies file for interpreter_demo.
# This may be replaced when dependencies are built.
