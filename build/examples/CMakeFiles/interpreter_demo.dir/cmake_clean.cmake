file(REMOVE_RECURSE
  "CMakeFiles/interpreter_demo.dir/interpreter_demo.cpp.o"
  "CMakeFiles/interpreter_demo.dir/interpreter_demo.cpp.o.d"
  "interpreter_demo"
  "interpreter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
