file(REMOVE_RECURSE
  "CMakeFiles/debugging.dir/debugging.cpp.o"
  "CMakeFiles/debugging.dir/debugging.cpp.o.d"
  "debugging"
  "debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
