# Empty dependencies file for debugging.
# This may be replaced when dependencies are built.
