//===--- paths_test.cpp - Basic-path extraction tests --------------------------===//

#include "lang/paths.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

static std::vector<BasicPath> pathsOf(Module &M, const char *Name) {
  DiagEngine D;
  const Procedure *P = M.findProc(Name);
  EXPECT_NE(P, nullptr);
  std::vector<BasicPath> Out = extractPaths(M, *P, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return Out;
}

TEST(Paths, StraightLineIsOnePath) {
  auto M = parsePrelude(R"(
proc f(x: loc) returns (ret: loc)
  requires list(x)
  ensures list(ret)
{
  return x;
}
)");
  std::vector<BasicPath> Ps = pathsOf(*M, "f");
  ASSERT_EQ(Ps.size(), 1u);
  EXPECT_TRUE(Ps[0].EndIsPost);
  // `return x` becomes `ret := x`.
  ASSERT_EQ(Ps[0].Stmts.size(), 1u);
  EXPECT_EQ(Ps[0].Stmts[0].K, Stmt::Assign);
  EXPECT_EQ(Ps[0].Stmts[0].Var, "ret");
}

TEST(Paths, IfForksIntoTwoPathsWithAssumes) {
  auto M = parsePrelude(R"(
proc f(x: loc) returns (ret: loc)
  requires list(x)
  ensures list(ret)
{
  if (x == nil) {
    return nil;
  }
  return x;
}
)");
  std::vector<BasicPath> Ps = pathsOf(*M, "f");
  ASSERT_EQ(Ps.size(), 2u);
  EXPECT_EQ(Ps[0].Stmts[0].K, Stmt::Assume);
  EXPECT_EQ(Ps[1].Stmts[0].K, Stmt::Assume);
}

TEST(Paths, WhileCutsAtInvariant) {
  auto M = parsePrelude(R"(
proc f(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures list(ret) && keys(ret) == K
{
  var c: loc;
  c := x;
  while (c != nil)
    invariant list(x) && keys(x) == K
  {
    c := c.next;
  }
  return x;
}
)");
  std::vector<BasicPath> Ps = pathsOf(*M, "f");
  // pre->inv, inv->inv (around), inv->post (exit).
  ASSERT_EQ(Ps.size(), 3u);
  EXPECT_FALSE(Ps[0].EndIsPost);
  EXPECT_FALSE(Ps[1].EndIsPost);
  EXPECT_TRUE(Ps[2].EndIsPost);
  // Around-the-loop path starts with assume(cond).
  EXPECT_EQ(Ps[1].Stmts.front().K, Stmt::Assume);
}

TEST(Paths, NestedLoopsProduceAllSegments) {
  auto M = parsePrelude(R"(
proc f(x: loc)
  requires list(x)
  ensures list(x)
{
  var c: loc;
  var d: loc;
  c := x;
  while (c != nil)
    invariant list(x)
  {
    d := c;
    while (d != nil)
      invariant list(x)
    {
      d := d.next;
    }
    c := c.next;
  }
}
)");
  std::vector<BasicPath> Ps = pathsOf(*M, "f");
  // pre->outer, outer->inner, inner->inner, inner->outer, outer->post.
  EXPECT_EQ(Ps.size(), 5u);
}

TEST(Paths, EarlyReturnInsideLoopGoesToPost) {
  auto M = parsePrelude(R"(
proc f(x: loc) returns (ret: loc)
  requires list(x)
  ensures list(x)
{
  var c: loc;
  c := x;
  while (c != nil)
    invariant list(x)
  {
    return c;
  }
  return nil;
}
)");
  std::vector<BasicPath> Ps = pathsOf(*M, "f");
  bool SawLoopToPost = false;
  for (const BasicPath &P : Ps)
    if (P.EndIsPost && P.Desc.find("inv") == 0)
      SawLoopToPost = true;
  EXPECT_TRUE(SawLoopToPost);
}

TEST(Paths, ElseBranchGetsNegatedCondition) {
  auto M = parsePrelude(R"(
proc f(j: int) returns (ret: int)
  requires true
  ensures true
{
  if (j > 0) {
    return 1;
  } else {
    return 0;
  }
}
)");
  std::vector<BasicPath> Ps = pathsOf(*M, "f");
  ASSERT_EQ(Ps.size(), 2u);
  EXPECT_EQ(Ps[1].Stmts[0].Cond->kind(), Formula::FK_Not);
}
