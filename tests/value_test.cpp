//===--- value_test.cpp - Lattice value tests --------------------------------===//

#include "sem/value.h"

#include <gtest/gtest.h>

using namespace dryad;

TEST(Value, BottomElements) {
  EXPECT_FALSE(Value::bottom(Sort::Bool).B);
  EXPECT_EQ(Value::bottom(Sort::Int).IK, Value::NegInf);
  EXPECT_TRUE(Value::bottom(Sort::IntSet).Set.empty());
  EXPECT_TRUE(Value::bottom(Sort::IntMSet).MSet.empty());
}

TEST(Value, IntLatticeArithmeticSaturates) {
  Value NI = Value::mkInf(false), PI = Value::mkInf(true);
  Value Five = Value::mkInt(5);
  EXPECT_EQ(intAdd(NI, Five).IK, Value::NegInf);
  EXPECT_EQ(intAdd(Five, PI).IK, Value::PosInf);
  EXPECT_EQ(intAdd(Five, Five).I, 10);
  EXPECT_EQ(intSub(Five, PI).IK, Value::NegInf);
}

TEST(Value, IntLatticeOrder) {
  Value NI = Value::mkInf(false), PI = Value::mkInf(true);
  Value A = Value::mkInt(-3), B = Value::mkInt(4);
  EXPECT_TRUE(intLe(NI, A));
  EXPECT_TRUE(intLe(A, B));
  EXPECT_TRUE(intLe(B, PI));
  EXPECT_FALSE(intLe(PI, B));
  EXPECT_TRUE(intLt(A, B));
  EXPECT_FALSE(intLt(A, A));
}

TEST(Value, JoinIsLub) {
  Value A = Value::mkInt(3), B = Value::mkInt(7);
  EXPECT_EQ(Value::join(A, B).I, 7);
  Value SA = Value::mkSet(Sort::IntSet, {1, 2});
  Value SB = Value::mkSet(Sort::IntSet, {2, 3});
  EXPECT_EQ(Value::join(SA, SB).Set, (std::set<int64_t>{1, 2, 3}));
}

TEST(Value, SetOperations) {
  Value A = Value::mkSet(Sort::IntSet, {1, 2, 3});
  Value B = Value::mkSet(Sort::IntSet, {3, 4});
  EXPECT_EQ(setUnion(A, B).Set, (std::set<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(setInter(A, B).Set, (std::set<int64_t>{3}));
  EXPECT_EQ(setDiff(A, B).Set, (std::set<int64_t>{1, 2}));
  EXPECT_TRUE(setSubset(setInter(A, B), A));
  EXPECT_FALSE(setSubset(A, B));
  EXPECT_TRUE(setMember(Value::mkInt(2), A));
  EXPECT_FALSE(setMember(Value::mkInt(9), A));
}

TEST(Value, MultisetUnionAddsMultiplicities) {
  Value A = Value::mkMSet({{1, 2}, {5, 1}});
  Value B = Value::mkMSet({{1, 1}});
  Value U = setUnion(A, B);
  EXPECT_EQ(U.MSet.at(1), 3);
  EXPECT_EQ(U.MSet.at(5), 1);
}

TEST(Value, MultisetDiffSaturates) {
  Value A = Value::mkMSet({{1, 1}});
  Value B = Value::mkMSet({{1, 5}});
  EXPECT_TRUE(setDiff(A, B).MSet.empty());
}

TEST(Value, SetAllCompare) {
  Value A = Value::mkSet(Sort::IntSet, {1, 2});
  Value B = Value::mkSet(Sort::IntSet, {2, 3});
  Value C = Value::mkSet(Sort::IntSet, {5, 6});
  Value Empty = Value::mkSet(Sort::IntSet);
  EXPECT_TRUE(setAllLe(A, B));
  EXPECT_FALSE(setAllLt(A, B)); // 2 < 2 fails
  EXPECT_TRUE(setAllLt(A, C));
  EXPECT_TRUE(setAllLe(Empty, A));  // vacuous
  EXPECT_TRUE(setAllLt(A, Empty));  // vacuous
}

TEST(Value, MultisetTopBehaviour) {
  Value Top = Value::mkMSet();
  Top.MSTop = true;
  Value A = Value::mkMSet({{1, 1}});
  EXPECT_TRUE(setSubset(A, Top));
  EXPECT_FALSE(setSubset(Top, A));
  EXPECT_TRUE(setMember(Value::mkInt(42), Top));
  EXPECT_EQ(Value::join(A, Top).MSTop, true);
}

TEST(Value, Printing) {
  EXPECT_EQ(Value::mkBool(true).str(), "true");
  EXPECT_EQ(Value::mkInf(false).str(), "-inf");
  EXPECT_EQ(Value::mkLoc(0).str(), "nil");
  EXPECT_EQ(Value::mkSet(Sort::IntSet, {1, 2}).str(), "{1, 2}");
}
