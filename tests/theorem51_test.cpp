//===--- theorem51_test.cpp - Property test for Theorem 5.1 --------------------===//
//
// Theorem 5.1: for a program state C with global heap and any heaplet G,
//   (C, I) |= T(ϕ, G)   iff   (C|G, I) |= ϕ.
// We check this on a library of Dryad formulas over randomly generated
// program states (lists, trees, garbage), evaluating the left side with the
// classical evaluator and the right side with the Dryad evaluator.
//
//===----------------------------------------------------------------------===//

#include "interp/gen.h"
#include "sem/classical_eval.h"
#include "translate/translate.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct Scenario {
  const char *Name;
  const char *FormulaText; ///< over vars a (loc), b (loc), K (intset)
};

// Formulas exercising every Dryad construct: emp, points-to, *,
// recursive predicates and functions, set comparisons, negation.
const Scenario Scenarios[] = {
    {"emp", "emp"},
    {"list", "list(a)"},
    {"two-lists", "list(a) * list(b)"},
    {"list-true", "list(a) * true"},
    {"keys", "keys(a) == K"},
    {"list-and-keys", "list(a) && keys(a) == K"},
    {"pointsto", "a |-> (next: b)"},
    {"pointsto-rest", "(a |-> (next: b)) * list(b)"},
    {"slist", "slist(a)"},
    {"sorted-pair", "slist(a) * slist(b)"},
    {"tree", "tree(a)"},
    {"bst", "bst(a)"},
    {"mheap", "mheap(a)"},
    {"negation", "!(a == nil) && list(a)"},
    {"disjunction", "(a == nil && emp) || (a |-> (next: b) * list(b))"},
    {"lseg", "lseg(a, b) * list(b)"},
    {"member", "list(a) && 3 in keys(a)"},
    {"setle", "(slist(a) * slist(b)) && keys(a) <= keys(b)"},
};

struct Theorem51 : ::testing::TestWithParam<std::tuple<int, int>> {};
} // namespace

TEST_P(Theorem51, DryadAgreesWithTranslation) {
  auto [Seed, Shape] = GetParam();
  auto M = parsePrelude();
  ProgramState St(M->Fields);
  HeapGen Gen(St, static_cast<uint64_t>(Seed));

  int64_t A = 0, B = 0;
  switch (Shape) {
  case 0:
    A = Gen.makeList(Seed % 5);
    B = Gen.makeList((Seed / 2) % 4);
    break;
  case 1:
    A = Gen.makeSortedList(Seed % 6);
    B = Gen.makeSortedList((Seed / 3) % 3);
    break;
  case 2:
    A = Gen.makeBst(Seed % 7);
    B = Gen.makeTree((Seed / 2) % 5);
    break;
  case 3:
    A = Gen.makeMaxHeap(Seed % 6);
    B = A ? St.read(A, "left") : 0;
    break;
  case 4:
    A = Gen.makeList(Seed % 4);
    B = Gen.makeList(2);
    Gen.addGarbage(2);
    break;
  default:
    A = Gen.makeCyclic(Seed % 4);
    B = A;
    break;
  }

  // Interpretation shared by both sides.
  std::map<std::string, Value> Env;
  Env["a"] = Value::mkLoc(A);
  Env["b"] = Value::mkLoc(B);
  Evaluator KeysEval(St, M->Defs, EvalMode::Heaplet);
  Env["K"] = KeysEval.recValue(M->Defs.lookup("keys"), {}, A);

  for (const Scenario &Sc : Scenarios) {
    // Parse the scenario formula inside a probe contract.
    auto Probe = parsePrelude(std::string("proc probe(a: loc, b: loc)\n") +
                              "  spec (K: intset)\n  requires " +
                              Sc.FormulaText + "\n  ensures true\n{\n}\n");
    const Formula *Phi = Probe->findProc("probe")->Pre;

    // Right side: Dryad semantics on the heaplet C|G with G := R.
    Evaluator DryadEval(St, Probe->Defs, EvalMode::Heaplet);
    DryadEval.Env = Env;
    bool DryadHolds = DryadEval.holds(Phi, St.R);

    // Left side: classical semantics of T(ϕ, G) over the global heap.
    const Term *G = Probe->Ctx.var("G", Sort::LocSet);
    const Formula *Classical =
        translateDryad(Probe->Ctx, Probe->Fields, Phi, G);
    bool ClassicalHolds =
        evalClassical(St, Probe->Defs, Classical, "G", St.R, Env);

    EXPECT_EQ(DryadHolds, ClassicalHolds)
        << "Theorem 5.1 violated for '" << Sc.Name << "' (seed " << Seed
        << ", shape " << Shape << ")\nstate:\n"
        << St.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStates, Theorem51,
    ::testing::Combine(::testing::Range(1, 13), ::testing::Range(0, 6)),
    [](const auto &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "shape" +
             std::to_string(std::get<1>(Info.param));
    });
