//===--- backend_test.cpp - Pluggable solver backend tests -------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// The backend-layer contract under test (backend/backend.h):
//  * `NAME[:PATH]` designators parse, round-trip, and reject names that
//    could not be embedded in store keys; duplicate names are refused;
//  * the startup probe reports the in-process Z3 API as always available
//    and a missing binary as unavailable-with-reason, never a crash;
//  * a PipeBackend turns an external solver's sat/unsat/unknown line into
//    the same SmtResult taxonomy the in-process path produces, and a
//    solver that prints no verdict classifies as SolverCrash;
//  * backend identity is baked into store keys: switching `--backend`
//    re-solves instead of replaying another solver's proofs, and a store
//    holding contradictory verdicts for one formula under two backends is
//    flagged DIVERGENT by fsck.
//
//===----------------------------------------------------------------------===//

#include "backend/backend.h"
#include "store/store.h"
#include "verifier/verifier.h"

#include "testutil.h"

#include <cstdio>
#include <fstream>

#include <sys/stat.h>

using namespace dryad;
using namespace dryad::test;

namespace {

/// Writes an executable fake-solver script that ignores its input and
/// prints \p Output, returning its path.
std::string fakeSolver(const std::string &Name, const std::string &Output) {
  std::string Path = ::testing::TempDir() + "dryad-fake-" + Name;
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "#!/bin/sh\ncat >/dev/null\nprintf '%s\\n' '" << Output << "'\n";
  }
  chmod(Path.c_str(), 0755);
  return Path;
}

SandboxRequest trivialRequest(const char *Smt2) {
  SandboxRequest Req;
  Req.Smt2 = Smt2;
  Req.TimeoutMs = 10000;
  return Req;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(BackendSpecParse, NameAndOptionalPath) {
  BackendSpec B;
  std::string Err;
  ASSERT_TRUE(BackendSpec::parse("z3", B, Err)) << Err;
  EXPECT_EQ(B.Name, "z3");
  EXPECT_TRUE(B.Path.empty());
  EXPECT_TRUE(B.isZ3Api());
  EXPECT_EQ(B.str(), "z3");

  ASSERT_TRUE(BackendSpec::parse("cvc5:/opt/cvc5/bin/cvc5", B, Err)) << Err;
  EXPECT_EQ(B.Name, "cvc5");
  EXPECT_EQ(B.Path, "/opt/cvc5/bin/cvc5");
  EXPECT_FALSE(B.isZ3Api());
  EXPECT_EQ(B.str(), "cvc5:/opt/cvc5/bin/cvc5");

  // A pinned z3 *binary* is a pipe backend, not the in-process API.
  ASSERT_TRUE(BackendSpec::parse("z3:/usr/bin/z3", B, Err)) << Err;
  EXPECT_FALSE(B.isZ3Api());
}

TEST(BackendSpecParse, RejectsKeyHostileNames) {
  BackendSpec B;
  std::string Err;
  // '@' and ':' are the store key separators; whitespace would tear the
  // wire frame. None of these may survive into a backend name.
  for (const char *Bad : {"", "has space", "at@sign", ":pathonly", "z3:"}) {
    EXPECT_FALSE(BackendSpec::parse(Bad, B, Err)) << "accepted: " << Bad;
    EXPECT_FALSE(Err.empty());
  }
}

TEST(BackendSpecParse, ListSplitsAndRejectsDuplicates) {
  std::vector<BackendSpec> L;
  std::string Err;
  ASSERT_TRUE(BackendSpec::parseList("z3,cvc5,alt:/usr/bin/z3", L, Err))
      << Err;
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0].Name, "z3");
  EXPECT_EQ(L[1].Name, "cvc5");
  EXPECT_EQ(L[2].Name, "alt");
  EXPECT_EQ(L[2].Path, "/usr/bin/z3");

  // Two backends sharing one name would share journal/store keys — a
  // cached proof from one would silently answer for the other.
  EXPECT_FALSE(BackendSpec::parseList("z3,z3:/usr/bin/z3", L, Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Availability probe
//===----------------------------------------------------------------------===//

TEST(BackendProbe, Z3ApiIsAlwaysAvailableWithAVersion) {
  ProbedBackend P = probeBackend(BackendSpec{"z3", ""});
  EXPECT_TRUE(P.Available);
  EXPECT_FALSE(P.Version.empty());
}

TEST(BackendProbe, MissingBinaryIsUnavailableWithAReason) {
  ProbedBackend P =
      probeBackend(BackendSpec{"cvc5", "/nonexistent/definitely/cvc5"});
  EXPECT_FALSE(P.Available);
  EXPECT_FALSE(P.Error.empty());

  // Name-only resolution walks $PATH; a name nothing provides is
  // unavailable, not a crash.
  P = probeBackend(BackendSpec{"no-such-solver-xyzzy", ""});
  EXPECT_FALSE(P.Available);
}

//===----------------------------------------------------------------------===//
// PipeBackend verdict mapping
//===----------------------------------------------------------------------===//

TEST(PipeBackend, MapsSolverOutputToTheVerdictTaxonomy) {
  const char *Smt2 = "(assert false)\n(check-sat)\n";

  std::string Unsat = fakeSolver("unsat", "unsat");
  SmtResult R = solveWithBackend("fake:" + Unsat, trivialRequest(Smt2));
  EXPECT_EQ(R.Status, SmtStatus::Unsat);

  std::string Sat = fakeSolver("sat", "sat");
  R = solveWithBackend("fake:" + Sat, trivialRequest(Smt2));
  EXPECT_EQ(R.Status, SmtStatus::Sat);
  EXPECT_FALSE(R.ModelText.empty())
      << "pipe backends must say why no model values are attached";

  std::string Unknown = fakeSolver("unknown", "unknown");
  R = solveWithBackend("fake:" + Unknown, trivialRequest(Smt2));
  EXPECT_EQ(R.Status, SmtStatus::Unknown);

  // A solver that prints no verdict at all is a crash, not an answer.
  std::string Garbage = fakeSolver("garbage", "segmentation fault (core)");
  R = solveWithBackend("fake:" + Garbage, trivialRequest(Smt2));
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::SolverCrash);
}

TEST(PipeBackend, EmptySpecIsTheInProcessZ3Api) {
  SmtResult R = solveWithBackend("", trivialRequest("(assert false)\n"));
  EXPECT_EQ(R.Status, SmtStatus::Unsat);
  R = solveWithBackend("", trivialRequest("(assert true)\n"));
  EXPECT_EQ(R.Status, SmtStatus::Sat);
}

//===----------------------------------------------------------------------===//
// Store key separation across backends
//===----------------------------------------------------------------------===//

namespace {

const char *OneProc = R"(
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
)";

std::string cleanStorePath(const std::string &Name) {
  std::string P = ::testing::TempDir() + "dryad-backend-" + Name + ".seg";
  std::remove(P.c_str());
  std::remove((P + ".stale").c_str());
  return P;
}

PoolStats verifyWith(VerifyOptions Opts) {
  auto M = parsePrelude(OneProc);
  Verifier V(*M, Opts);
  EXPECT_TRUE(V.storeError().empty()) << V.storeError();
  DiagEngine D;
  auto R = V.verifyAll(D);
  EXPECT_EQ(R.size(), 1u);
  if (!R.empty()) {
    EXPECT_TRUE(R[0].Verified);
  }
  return V.poolStats();
}

} // namespace

TEST(BackendStoreKeys, SwitchingBackendsResolvesInsteadOfReplaying) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.CheckVacuity = false; // vacuity probes would consult the fake too
  Opts.StorePath = cleanStorePath("switch");

  // Cold z3 run: everything misses, proofs land under "...@z3".
  PoolStats Cold = verifyWith(Opts);
  EXPECT_EQ(Cold.StoreHits, 0u);
  EXPECT_GE(Cold.StoreMisses, 1u);

  // Same module, same backend: all hits.
  PoolStats Warm = verifyWith(Opts);
  EXPECT_EQ(Warm.StoreMisses, 0u);
  EXPECT_GE(Warm.StoreHits, 1u);

  // Same module, different backend: the z3 proofs must NOT answer — the
  // fake's keys carry "@fake", so everything re-solves.
  VerifyOptions Switched = Opts;
  Switched.Backends = {BackendSpec{"fake", fakeSolver("store", "unsat")}};
  PoolStats Other = verifyWith(Switched);
  EXPECT_EQ(Other.StoreHits, 0u)
      << "a proof cached under z3 must never replay under another backend";
  EXPECT_GE(Other.StoreMisses, 1u);

  // And back to z3: the original proofs still answer.
  PoolStats Back = verifyWith(Opts);
  EXPECT_EQ(Back.StoreMisses, 0u);
  EXPECT_GE(Back.StoreHits, 1u);
}

TEST(BackendStoreKeys, FsckFlagsCrossBackendDivergence) {
  std::string Path = cleanStorePath("fsck");
  JournalRecord Proof;
  Proof.Key = "v1-00000000000000aa@z3";
  Proof.Name = "p [path 1]";
  Proof.Status = SmtStatus::Unsat;
  Proof.Attempts = 1;
  JournalRecord Refutation = Proof;
  Refutation.Key = "v1-00000000000000aa@cvc5";
  Refutation.Status = SmtStatus::Sat;
  // A third backend agreeing with the first must not mask the divergence.
  JournalRecord Agree = Proof;
  Agree.Key = "v1-00000000000000aa@alt";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << ProofStore::headerLine();
    Out << ProofStore::encodeRecord(Proof);
    Out << ProofStore::encodeRecord(Refutation);
    Out << ProofStore::encodeRecord(Agree);
  }
  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_EQ(F.DistinctKeys, 3u) << "per-backend keys stay distinct records";
  ASSERT_EQ(F.DivergentKeys.size(), 1u)
      << "one formula proved under z3 and refuted under cvc5 means one of "
         "the solvers (or our translation) is unsound";
  EXPECT_EQ(F.DivergentKeys[0], "v1-00000000000000aa");
  EXPECT_FALSE(F.clean());
  EXPECT_NE(ProofStore::formatFsck(F).find("DIVERGENT"), std::string::npos);
}
