//===--- eval_test.cpp - Dryad evaluator tests ---------------------------------===//

#include "interp/gen.h"
#include "sem/eval.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct EvalTest : ::testing::Test {
  EvalTest() : M(parsePrelude()), St(M->Fields) {}

  bool holdsOn(const std::string &Pred, int64_t L) {
    Evaluator E(St, M->Defs, EvalMode::Heaplet);
    return E.recValue(M->Defs.lookup(Pred), {}, L).B;
  }

  std::unique_ptr<Module> M;
  ProgramState St;
};
} // namespace

TEST_F(EvalTest, EmptyStructuresHold) {
  EXPECT_TRUE(holdsOn("list", 0));
  EXPECT_TRUE(holdsOn("slist", 0));
  EXPECT_TRUE(holdsOn("tree", 0));
  EXPECT_TRUE(holdsOn("bst", 0));
}

TEST_F(EvalTest, GeneratedListSatisfiesList) {
  HeapGen Gen(St, 7);
  int64_t Head = Gen.makeList(5);
  EXPECT_TRUE(holdsOn("list", Head));
}

TEST_F(EvalTest, CycleIsNotAList) {
  HeapGen Gen(St, 8);
  int64_t Head = Gen.makeCyclic(4);
  EXPECT_FALSE(holdsOn("list", Head));
}

TEST_F(EvalTest, SortednessDistinguishesSlist) {
  HeapGen Gen(St, 9);
  int64_t S = Gen.makeSortedList(6);
  EXPECT_TRUE(holdsOn("slist", S));
  int64_t U = Gen.makeList(6, {5, 3, 9, 1, 7, 2});
  EXPECT_TRUE(holdsOn("list", U));
  EXPECT_FALSE(holdsOn("slist", U));
}

TEST_F(EvalTest, KeysComputesTheKeySet) {
  HeapGen Gen(St, 10);
  int64_t Head = Gen.makeList(3, {4, 8, 15});
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  Value V = E.recValue(M->Defs.lookup("keys"), {}, Head);
  EXPECT_EQ(V.Set, (std::set<int64_t>{4, 8, 15}));
}

TEST_F(EvalTest, LenComputesLength) {
  HeapGen Gen(St, 11);
  int64_t Head = Gen.makeList(7);
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  Value V = E.recValue(M->Defs.lookup("len"), {}, Head);
  EXPECT_EQ(V.I, 7);
}

TEST_F(EvalTest, BstAndMaxHeapShapes) {
  HeapGen Gen(St, 12);
  int64_t B = Gen.makeBst(9);
  EXPECT_TRUE(holdsOn("bst", B));
  ProgramState St2(M->Fields);
  HeapGen Gen2(St2, 13);
  int64_t H = Gen2.makeMaxHeap(9);
  Evaluator E2(St2, M->Defs, EvalMode::Heaplet);
  EXPECT_TRUE(E2.recValue(M->Defs.lookup("mheap"), {}, H).B);
}

TEST_F(EvalTest, LsegStopsAtStopLocation) {
  HeapGen Gen(St, 14);
  int64_t Head = Gen.makeCyclic(5);
  int64_t Second = St.read(Head, "next");
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  EXPECT_TRUE(E.recValue(M->Defs.lookup("lseg"), {Head}, Second).B);
  EXPECT_FALSE(holdsOn("list", Head));
}

TEST_F(EvalTest, HeapletSemanticsOfSep) {
  HeapGen Gen(St, 15);
  int64_t A = Gen.makeList(3);
  int64_t B = Gen.makeList(2);
  AstContext &Ctx = M->Ctx;
  const RecDef *List = M->Defs.lookup("list");
  const Formula *F = Ctx.sep({Ctx.recPred(List, Ctx.var("a", Sort::Loc), {}),
                              Ctx.recPred(List, Ctx.var("b", Sort::Loc), {})});
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  E.Env["a"] = Value::mkLoc(A);
  E.Env["b"] = Value::mkLoc(B);
  EXPECT_TRUE(E.holds(F, St.R));

  St.allocate(); // garbage outside both lists
  Evaluator E2(St, M->Defs, EvalMode::Heaplet);
  E2.Env["a"] = Value::mkLoc(A);
  E2.Env["b"] = Value::mkLoc(B);
  EXPECT_FALSE(E2.holds(F, St.R)) << "heaplet must be covered exactly";
}

TEST_F(EvalTest, PointsToIsStrict) {
  HeapGen Gen(St, 16);
  int64_t A = Gen.makeList(2);
  AstContext &Ctx = M->Ctx;
  const Formula *F = Ctx.pointsTo(Ctx.var("a", Sort::Loc),
                                  {{"next", Ctx.var("b", Sort::Loc)}});
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  E.Env["a"] = Value::mkLoc(A);
  E.Env["b"] = Value::mkLoc(St.read(A, "next"));
  EXPECT_TRUE(E.holds(F, {A}));
  EXPECT_FALSE(E.holds(F, St.R)) << "points-to requires a singleton heaplet";
}

TEST_F(EvalTest, EmpOnlyOnEmptyHeaplet) {
  AstContext &Ctx = M->Ctx;
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  EXPECT_TRUE(E.holds(Ctx.emp(), {}));
  int64_t A = St.allocate();
  EXPECT_FALSE(E.holds(Ctx.emp(), {A}));
}

TEST_F(EvalTest, RecPredFalseOffItsHeaplet) {
  HeapGen Gen(St, 17);
  int64_t A = Gen.makeList(3);
  St.allocate(); // extra location outside reach(A)
  AstContext &Ctx = M->Ctx;
  const Formula *F =
      Ctx.recPred(M->Defs.lookup("list"), Ctx.var("a", Sort::Loc), {});
  Evaluator E(St, M->Defs, EvalMode::Heaplet);
  E.Env["a"] = Value::mkLoc(A);
  EXPECT_FALSE(E.holds(F, St.R));
  EXPECT_TRUE(E.holds(F, St.reachset(A, {"next"}, {})));
}
