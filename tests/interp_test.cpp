//===--- interp_test.cpp - Concrete interpreter tests --------------------------===//

#include "interp/gen.h"
#include "interp/interp.h"
#include "sem/eval.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
const char *ListOps = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}

proc sum_keys(x: loc) returns (ret: int)
  requires list(x)
  ensures  list(x)
{
  var c: loc;
  var s: int;
  var ck: int;
  c := x;
  s := 0;
  while (c != nil)
    invariant list(x)
  {
    ck := c.key;
    s := s + ck;
    c := c.next;
  }
  return s;
}

proc len_rec(x: loc) returns (ret: int)
  requires list(x)
  ensures  list(x)
{
  var n: loc;
  var r: int;
  if (x == nil) {
    return 0;
  }
  n := x.next;
  r := len_rec(n);
  return r + 1;
}

proc spin()
  requires true
  ensures  true
{
  var i: int;
  i := 0;
  while (i == 0)
    invariant true
  {
    skip;
  }
}
)";
} // namespace

TEST(Interp, InsertFrontMutatesHeap) {
  auto M = parsePrelude(ListOps);
  ProgramState St(M->Fields);
  HeapGen Gen(St, 1);
  int64_t Head = Gen.makeList(3, {1, 2, 3});
  Interpreter I(*M);
  auto R = I.call("insert_front", {Value::mkLoc(Head), Value::mkInt(9)}, St);
  ASSERT_TRUE(R.Ok) << R.Error;
  int64_t NewHead = R.Ret->I;
  EXPECT_EQ(St.read(NewHead, "key"), 9);
  EXPECT_EQ(St.read(NewHead, "next"), Head);
  EXPECT_EQ(St.R.size(), 4u);
}

TEST(Interp, WhileLoopsExecute) {
  auto M = parsePrelude(ListOps);
  ProgramState St(M->Fields);
  HeapGen Gen(St, 2);
  int64_t Head = Gen.makeList(4, {10, 20, 30, 40});
  Interpreter I(*M);
  auto R = I.call("sum_keys", {Value::mkLoc(Head)}, St);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Ret->I, 100);
}

TEST(Interp, RecursionExecutes) {
  auto M = parsePrelude(ListOps);
  ProgramState St(M->Fields);
  HeapGen Gen(St, 3);
  int64_t Head = Gen.makeList(6);
  Interpreter I(*M);
  auto R = I.call("len_rec", {Value::mkLoc(Head)}, St);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Ret->I, 6);
}

TEST(Interp, NilDereferenceReported) {
  auto M = parsePrelude(R"(
proc bad(x: loc) returns (ret: loc)
  requires true
  ensures  true
{
  var n: loc;
  n := x.next;
  return n;
}
)");
  ProgramState St(M->Fields);
  Interpreter I(*M);
  auto R = I.call("bad", {Value::mkLoc(0)}, St);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("nil"), std::string::npos);
}

TEST(Interp, DivergenceHitsFuel) {
  auto M = parsePrelude(ListOps);
  ProgramState St(M->Fields);
  Interpreter I(*M);
  I.MaxSteps = 1000;
  auto R = I.call("spin", {}, St);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(Interp, FreeRemovesFromHeaplet) {
  auto M = parsePrelude(R"(
proc drop(x: loc) returns (ret: loc)
  requires (list(x)) && x != nil
  ensures  true
{
  var n: loc;
  n := x.next;
  free x;
  return n;
}
)");
  ProgramState St(M->Fields);
  HeapGen Gen(St, 4);
  int64_t Head = Gen.makeList(2);
  Interpreter I(*M);
  auto R = I.call("drop", {Value::mkLoc(Head)}, St);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(St.R.count(Head));
  EXPECT_EQ(St.R.size(), 1u);
}
