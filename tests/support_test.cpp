//===--- support_test.cpp - Diagnostics tests --------------------------------===//

#include "support/diag.h"

#include <gtest/gtest.h>

using namespace dryad;

TEST(Diag, EmptyEngineHasNoErrors) {
  DiagEngine D;
  EXPECT_FALSE(D.hasErrors());
  EXPECT_EQ(D.str(), "");
}

TEST(Diag, ErrorsAreRecordedInOrder) {
  DiagEngine D;
  D.warning({1, 2}, "w");
  D.error({3, 4}, "e");
  D.note({5, 6}, "n");
  ASSERT_EQ(D.diagnostics().size(), 3u);
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.diagnostics()[1].Message, "e");
  EXPECT_EQ(D.diagnostics()[1].Loc.Line, 3);
}

TEST(Diag, WarningAloneIsNotError) {
  DiagEngine D;
  D.warning({1, 1}, "only warning");
  EXPECT_FALSE(D.hasErrors());
}

TEST(Diag, Rendering) {
  DiagEngine D;
  D.error({7, 9}, "bad thing");
  EXPECT_EQ(D.str(), "7:9: error: bad thing\n");
}

TEST(SourceLoc, InvalidPrintsUnknown) {
  SourceLoc L;
  EXPECT_FALSE(L.isValid());
  EXPECT_EQ(L.str(), "<unknown>");
}

TEST(SourceLoc, ValidPrintsLineCol) {
  SourceLoc L{12, 34};
  EXPECT_TRUE(L.isValid());
  EXPECT_EQ(L.str(), "12:34");
}
