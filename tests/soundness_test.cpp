//===--- soundness_test.cpp - End-to-end soundness property test ----------------===//
//
// Closes the loop between prover and semantics: routines that the verifier
// proves are executed concretely on generated valid inputs, and the
// postcondition is re-checked with the Dryad evaluator on the final state.
// A verified routine whose execution breaks its postcondition would expose
// an unsoundness anywhere in the pipeline.
//
//===----------------------------------------------------------------------===//

#include "interp/gen.h"
#include "interp/interp.h"
#include "sem/eval.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct Soundness : ::testing::TestWithParam<int> {};
} // namespace

TEST_P(Soundness, VerifiedSllRoutinesBehave) {
  int Seed = GetParam();
  Module M;
  DiagEngine D;
  ASSERT_TRUE(parseModuleFile(suitePath("fig6/sll.dryad"), M, D)) << D.str();

  // Verify once (cheap for this module).
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Verifier V(M, Opts);
  std::set<std::string> Proved;
  for (const ProcResult &R : V.verifyAll(D))
    if (R.Verified)
      Proved.insert(R.Proc);
  ASSERT_TRUE(Proved.count("insert_front"));
  ASSERT_TRUE(Proved.count("reverse_iter"));
  ASSERT_TRUE(Proved.count("delete_all_rec"));

  const RecDef *List = M.Defs.lookup("list");
  const RecDef *Keys = M.Defs.lookup("keys");

  auto KeysOf = [&](ProgramState &St, int64_t L) {
    Evaluator E(St, M.Defs, EvalMode::Heaplet);
    return E.recValue(Keys, {}, L).Set;
  };
  auto IsList = [&](ProgramState &St, int64_t L) {
    Evaluator E(St, M.Defs, EvalMode::Heaplet);
    return E.recValue(List, {}, L).B &&
           St.reachset(L, {"next"}, {}) == St.R;
  };

  // insert_front: keys grow by {k}; still a list; heaplet exact.
  {
    ProgramState St(M.Fields);
    HeapGen Gen(St, Seed);
    int64_t Head = Gen.makeList(Seed % 6);
    std::set<int64_t> Before = KeysOf(St, Head);
    Interpreter I(M);
    auto R = I.call("insert_front", {Value::mkLoc(Head), Value::mkInt(7)}, St);
    ASSERT_TRUE(R.Ok) << R.Error;
    std::set<int64_t> Expected = Before;
    Expected.insert(7);
    EXPECT_TRUE(IsList(St, R.Ret->I));
    EXPECT_EQ(KeysOf(St, R.Ret->I), Expected);
  }

  // reverse_iter: same keys, still a list.
  {
    ProgramState St(M.Fields);
    HeapGen Gen(St, Seed + 100);
    int64_t Head = Gen.makeList(Seed % 7);
    std::set<int64_t> Before = KeysOf(St, Head);
    Interpreter I(M);
    auto R = I.call("reverse_iter", {Value::mkLoc(Head)}, St);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(IsList(St, R.Ret->I));
    EXPECT_EQ(KeysOf(St, R.Ret->I), Before);
  }

  // delete_all_rec: key k gone, everything else kept (set view).
  {
    ProgramState St(M.Fields);
    HeapGen Gen(St, Seed + 200);
    int64_t Head = Gen.makeList(5, {1, 2, 1, 3, 1});
    Interpreter I(M);
    auto R = I.call("delete_all_rec", {Value::mkLoc(Head), Value::mkInt(1)},
                    St);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(IsList(St, R.Ret->I));
    EXPECT_EQ(KeysOf(St, R.Ret->I), (std::set<int64_t>{2, 3}));
  }
}

TEST_P(Soundness, VerifiedHeapifyRestoresMaxHeap) {
  int Seed = GetParam();
  Module M;
  DiagEngine D;
  ASSERT_TRUE(parseModuleFile(suitePath("fig6/maxheap.dryad"), M, D))
      << D.str();

  ProgramState St(M.Fields);
  HeapGen Gen(St, Seed);
  int64_t Root = Gen.makeMaxHeap(7);
  if (Root == 0)
    return;
  // Break the heap property at the root (heapify's precondition).
  St.write(Root, "key", -1000);

  Interpreter I(M);
  auto R = I.call("heapify", {Value::mkLoc(Root)}, St);
  ASSERT_TRUE(R.Ok) << R.Error;

  Evaluator E(St, M.Defs, EvalMode::Heaplet);
  EXPECT_TRUE(E.recValue(M.Defs.lookup("mheap"), {}, Root).B)
      << "heapify must restore the max-heap property\n"
      << St.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soundness, ::testing::Range(1, 7));
