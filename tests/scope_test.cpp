//===--- scope_test.cpp - Domain-exact / scope (Fig. 3) tests ------------------===//

#include "dryad/printer.h"
#include "translate/scope.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct ScopeTest : ::testing::Test {
  ScopeTest() : M(parsePrelude()) {}
  std::unique_ptr<Module> M;

  const Formula *contract(const std::string &Body) {
    auto M2 = parsePrelude("proc probe(x: loc, y: loc, k: int)\n"
                           "  spec (K: intset)\n"
                           "  requires " +
                           Body + "\n  ensures true\n{\n}\n");
    ProbeModule = std::move(M2);
    return ProbeModule->findProc("probe")->Pre;
  }

  std::unique_ptr<Module> ProbeModule;
};
} // namespace

TEST_F(ScopeTest, AtomScopes) {
  const Formula *F = contract("emp");
  SynScope S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(print(S.Scope), "{}");

  F = contract("x |-> (next: y)");
  S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(print(S.Scope), "{x}");

  F = contract("list(x)");
  S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(print(S.Scope), "reach_list(x)");
}

TEST_F(ScopeTest, PureFormulasAreNotDomainExact) {
  const Formula *F = contract("x == nil && k <= 3");
  SynScope S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_FALSE(S.Exact);
  EXPECT_EQ(print(S.Scope), "{}");
}

TEST_F(ScopeTest, ImpureComparisonIsDomainExact) {
  const Formula *F = contract("keys(x) == K");
  SynScope S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(print(S.Scope), "reach_keys(x)");
}

TEST_F(ScopeTest, SepIsExactOnlyWhenAllPartsAre) {
  const Formula *F = contract("list(x) * list(y)");
  SynScope S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(print(S.Scope), "union(reach_list(x), reach_list(y))");

  F = contract("list(x) * true");
  S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_FALSE(S.Exact) << "ϕ * true is not domain-exact (Fig. 3)";
}

TEST_F(ScopeTest, AndIsExactWhenAnyPartIs) {
  const Formula *F = contract("list(x) && x != nil");
  SynScope S = scopeOfFormula(ProbeModule->Ctx, F);
  EXPECT_TRUE(S.Exact);
}

TEST_F(ScopeTest, LiftDisjunctionDistributesOverSep) {
  const Formula *F = contract("(emp || x |-> (next: y)) * list(y)");
  std::vector<const Formula *> Ds = liftDisjunction(ProbeModule->Ctx, F);
  ASSERT_EQ(Ds.size(), 2u);
  EXPECT_EQ(print(Ds[0]), "emp * list(y)");
  EXPECT_EQ(print(Ds[1]), "x |-> (next: y) * list(y)");
}

TEST_F(ScopeTest, LiftDisjunctionCartesianProduct) {
  const Formula *F = contract("(emp || emp) * (emp || emp)");
  EXPECT_EQ(liftDisjunction(ProbeModule->Ctx, F).size(), 4u);
}
