//===--- vcgen_test.cpp - VC generation tests ----------------------------------===//

#include "dryad/printer.h"
#include "lang/paths.h"
#include "vcgen/vc.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
std::optional<VCond> vcFor(Module &M, const char *Proc, size_t PathIdx = 0) {
  DiagEngine D;
  const Procedure *P = M.findProc(Proc);
  EXPECT_NE(P, nullptr);
  std::vector<BasicPath> Paths = extractPaths(M, *P, D);
  EXPECT_LT(PathIdx, Paths.size());
  VCGen Gen(M);
  auto VC = Gen.generate(*P, Paths[PathIdx], D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return VC;
}

std::string joined(const VCond &VC) {
  std::string S;
  for (const Formula *F : VC.Assumptions)
    S += print(F) + "\n";
  return S;
}
} // namespace

TEST(VCGen, SsaRenamingAndStoreChains) {
  auto M = parsePrelude(R"(
proc f(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)");
  auto VC = vcFor(*M, "f");
  ASSERT_TRUE(VC);
  std::string S = joined(*VC);
  // Fresh allocation: distinct from nil and outside the heaplet.
  EXPECT_NE(S.find("u!1 != nil"), std::string::npos) << S;
  EXPECT_NE(S.find("u!1 !in G!0"), std::string::npos) << S;
  // Stores become array updates.
  EXPECT_NE(S.find("next@1 = store(next@0, u!1, x!0)"), std::string::npos)
      << S;
  EXPECT_NE(S.find("key@1 = store(key@0, u!1, k!0)"), std::string::npos) << S;
  // The goal's heaplet includes the new cell.
  EXPECT_NE(print(VC->Goal).find("union(G!0, {u!1})"), std::string::npos)
      << print(VC->Goal);
}

TEST(VCGen, BoundariesCollapseWithoutWrites) {
  auto M = parsePrelude(R"(
proc f(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == K
{
  var n: loc;
  n := x.next;
  return x;
}
)");
  auto VC = vcFor(*M, "f");
  ASSERT_TRUE(VC);
  // Loads do not advance time: one boundary, no segments with content.
  EXPECT_EQ(VC->Boundaries.size(), 1u);
}

TEST(VCGen, CallsHavocAndFrame) {
  auto M = parsePrelude(R"(
proc callee(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == K
{
  return x;
}
proc caller(x: loc, y: loc) returns (ret: loc)
  spec (A: intset, B: intset)
  requires (list(x) * list(y)) && keys(x) == A && keys(y) == B
  ensures  (list(ret) * list(y)) && keys(ret) == A && keys(y) == B
{
  var r: loc;
  r := callee(x);
  return r;
}
)");
  auto VC = vcFor(*M, "caller");
  ASSERT_TRUE(VC);
  // Pre-call and post-call boundaries.
  EXPECT_EQ(VC->Boundaries.size(), 2u);
  ASSERT_EQ(VC->Segments.size(), 1u);
  EXPECT_TRUE(VC->Segments[0].IsCall);
  ASSERT_NE(VC->Segments[0].CalleeHeaplet, nullptr);
  std::string H = print(VC->Segments[0].CalleeHeaplet);
  EXPECT_NE(H.find("reach_list@0(x!0)"), std::string::npos) << H;
  EXPECT_NE(H.find("reach_keys@0(x!0)"), std::string::npos) << H;
  // One side obligation: the callee's precondition.
  ASSERT_EQ(VC->CallChecks.size(), 1u);
  // Spec var K witnessed from keys(x) == K.
  std::string S = joined(*VC);
  EXPECT_NE(S.find("keys@1(r!1) == keys@0(x!0)"), std::string::npos) << S;
}

TEST(VCGen, CallCheckUsesOnlyPrefixAssumptions) {
  auto M = parsePrelude(R"(
proc callee(x: loc)
  requires list(x) && x != nil
  ensures  list(x)
{
}
proc caller(x: loc)
  requires list(x)
  ensures  list(x)
{
  callee(x);
  assume x != nil;
}
)");
  auto VC = vcFor(*M, "caller");
  ASSERT_TRUE(VC);
  ASSERT_EQ(VC->CallChecks.size(), 1u);
  // The later assume must not be usable for the call check.
  EXPECT_LT(VC->CallChecks[0].NumAssumptions, VC->Assumptions.size());
}

TEST(VCGen, SpatialBranchConditionRejected) {
  auto M = parsePrelude(R"(
proc f(x: loc)
  requires list(x)
  ensures  list(x)
{
  assume list(x);
}
)");
  DiagEngine D;
  const Procedure *P = M->findProc("f");
  std::vector<BasicPath> Paths = extractPaths(*M, *P, D);
  VCGen Gen(*M);
  EXPECT_FALSE(Gen.generate(*P, Paths[0], D).has_value());
  EXPECT_TRUE(D.hasErrors());
}

TEST(VCGen, FootprintContainsDereferencedAndContractRoots) {
  auto M = parsePrelude(R"(
proc f(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == K
{
  var n: loc;
  n := x.next;
  return n;
}
)");
  auto VC = vcFor(*M, "f");
  ASSERT_TRUE(VC);
  std::set<std::string> Terms;
  for (const Term *T : VC->LocTerms)
    Terms.insert(print(T));
  EXPECT_TRUE(Terms.count("nil"));
  EXPECT_TRUE(Terms.count("x!0")) << "dereferenced base";
  EXPECT_TRUE(Terms.count("ret!1")) << "contract root";
}

TEST(VCGen, FreeShrinksHeaplet) {
  auto M = parsePrelude(R"(
proc f(x: loc)
  requires x |-> (next: nil)
  ensures  emp
{
  free x;
}
)");
  auto VC = vcFor(*M, "f");
  ASSERT_TRUE(VC);
  EXPECT_NE(print(VC->Goal).find("diff(G!0, {x!0}) == {}"),
            std::string::npos)
      << print(VC->Goal);
}
