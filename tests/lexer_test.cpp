//===--- lexer_test.cpp - Tokenizer tests -------------------------------------===//

#include "dryad/lexer.h"

#include <gtest/gtest.h>

using namespace dryad;

static std::vector<Token> lex(const std::string &S) {
  DiagEngine D;
  std::vector<Token> T = tokenize(S, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return T;
}

TEST(Lexer, EmptyInputYieldsEof) {
  std::vector<Token> T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(Token::EndOfFile));
}

TEST(Lexer, IdentifiersAndIntegers) {
  std::vector<Token> T = lex("foo bar_1 42");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_TRUE(T[0].isIdent("foo"));
  EXPECT_TRUE(T[1].isIdent("bar_1"));
  EXPECT_TRUE(T[2].is(Token::IntLit));
  EXPECT_EQ(T[2].Value, 42);
}

TEST(Lexer, CompositeOperators) {
  std::vector<Token> T = lex(":= == != <= >= && || |-> -> =>");
  Token::Kind Expected[] = {Token::ColonEq,  Token::EqEq,   Token::NotEq,
                            Token::LessEq,   Token::GreaterEq, Token::AndAnd,
                            Token::OrOr,     Token::PointsToSym, Token::Arrow,
                            Token::FatArrow, Token::EndOfFile};
  ASSERT_EQ(T.size(), std::size(Expected));
  for (size_t I = 0; I != T.size(); ++I)
    EXPECT_EQ(T[I].K, Expected[I]) << "token " << I;
}

TEST(Lexer, PunctuationAndSingleChars) {
  std::vector<Token> T = lex("( ) { } [ ] , ; : . + - * < > !");
  EXPECT_EQ(T.size(), 17u);
  EXPECT_TRUE(T[0].is(Token::LParen));
  EXPECT_TRUE(T[12].is(Token::Star));
  EXPECT_TRUE(T[15].is(Token::Bang));
}

TEST(Lexer, LineAndBlockComments) {
  std::vector<Token> T = lex("a // comment to eol\nb /* block\nstill */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_TRUE(T[0].isIdent("a"));
  EXPECT_TRUE(T[1].isIdent("b"));
  EXPECT_TRUE(T[2].isIdent("c"));
}

TEST(Lexer, TracksLineAndColumn) {
  std::vector<Token> T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1);
  EXPECT_EQ(T[0].Loc.Col, 1);
  EXPECT_EQ(T[1].Loc.Line, 2);
  EXPECT_EQ(T[1].Loc.Col, 3);
}

TEST(Lexer, ReportsUnterminatedBlockComment) {
  DiagEngine D;
  tokenize("a /* never closed", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, ReportsStrayCharacters) {
  DiagEngine D;
  std::vector<Token> T = tokenize("a $ b", D);
  EXPECT_TRUE(D.hasErrors());
  ASSERT_GE(T.size(), 3u);
  EXPECT_TRUE(T[0].isIdent("a"));
  EXPECT_TRUE(T[1].isIdent("b"));
}

TEST(Lexer, SingleEqualsIsAnError) {
  DiagEngine D;
  tokenize("a = b", D);
  EXPECT_TRUE(D.hasErrors());
}
