//===--- sandbox_test.cpp - Process-isolated solver workers --------------------===//
//
// Exercises smt/sandbox.*: worker exit classification (normal answers,
// signal deaths, rlimit kills, deadline SIGKILL) — each fate driven
// deterministically through SandboxFault — and the integration with the
// resilient dispatch layer and the verifier (`crash@N` / `oom@N` under
// isolation retry like timeouts and cannot take down the run).
//
//===----------------------------------------------------------------------===//

#include "smt/inject.h"
#include "smt/resilient.h"
#include "smt/sandbox.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>

#include <sys/wait.h>
#include <unistd.h>

using namespace dryad;
using namespace dryad::test;

namespace {
const char *UnsatSmt2 = R"((declare-fun x () Int)
(assert (< x 3))
(assert (> x 5))
(check-sat)
)";

const char *SatSmt2 = R"((declare-fun x () Int)
(assert (= x 42))
(check-sat)
)";
} // namespace

//===----------------------------------------------------------------------===//
// solveInSandbox: worker fates and their classification
//===----------------------------------------------------------------------===//

TEST(Sandbox, UnsatRoundTripsThroughWorker) {
  SandboxRequest Req;
  Req.Smt2 = UnsatSmt2;
  Req.TimeoutMs = 10000;
  SmtResult R = solveInSandbox(Req);
  EXPECT_EQ(R.Status, SmtStatus::Unsat);
  EXPECT_EQ(R.Failure, FailureKind::None);
}

TEST(Sandbox, SatReportsModelFromWorker) {
  SandboxRequest Req;
  Req.Smt2 = SatSmt2;
  Req.TimeoutMs = 10000;
  SmtResult R = solveInSandbox(Req);
  EXPECT_EQ(R.Status, SmtStatus::Sat);
  EXPECT_NE(R.ModelText.find("x = 42"), std::string::npos)
      << "counterexample must cross the pipe: " << R.ModelText;
}

TEST(Sandbox, ParseErrorSurfacesDetail) {
  SandboxRequest Req;
  Req.Smt2 = "(this is not smt2";
  Req.TimeoutMs = 10000;
  SmtResult R = solveInSandbox(Req);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_NE(R.Failure, FailureKind::None);
  EXPECT_FALSE(R.Detail.empty());
}

TEST(Sandbox, SignalDeathClassifiedAsSolverCrash) {
  SandboxRequest Req;
  Req.Smt2 = UnsatSmt2;
  Req.TimeoutMs = 10000;
  Req.Fault = SandboxFault::Crash;
  SmtResult R = solveInSandbox(Req);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::SolverCrash);
  EXPECT_NE(R.Detail.find("signal"), std::string::npos) << R.Detail;
}

TEST(Sandbox, RlimitDeathClassifiedAsResourceOut) {
  SandboxRequest Req;
  Req.Smt2 = UnsatSmt2;
  Req.TimeoutMs = 30000;
  Req.MemLimitMb = 64;
  Req.Fault = SandboxFault::Oom;
  SmtResult R = solveInSandbox(Req);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::ResourceOut);
  EXPECT_NE(R.Detail.find("memory"), std::string::npos) << R.Detail;
}

TEST(Sandbox, WedgedWorkerKilledAtWallDeadline) {
  SandboxRequest Req;
  Req.Smt2 = UnsatSmt2;
  Req.TimeoutMs = 300; // the stalling worker never answers
  Req.Fault = SandboxFault::Stall;
  SmtResult R = solveInSandbox(Req);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::Timeout);
  EXPECT_NE(R.Detail.find("deadline"), std::string::npos) << R.Detail;
  EXPECT_LT(R.Seconds, 10.0) << "SIGKILL must fire near the deadline";
}

//===----------------------------------------------------------------------===//
// FaultPlan: the sandbox-realized kinds
//===----------------------------------------------------------------------===//

TEST(Sandbox, FaultPlanParsesCrashAndOom) {
  std::string Err;
  auto Plan = FaultPlan::parse("crash@1,oom@2", Err);
  ASSERT_TRUE(Plan) << Err;
  auto F1 = Plan->faultFor(1);
  ASSERT_TRUE(F1);
  EXPECT_EQ(F1->Kind, FailureKind::SolverCrash);
  EXPECT_TRUE(F1->InWorker);
  auto F2 = Plan->faultFor(2);
  ASSERT_TRUE(F2);
  EXPECT_EQ(F2->Kind, FailureKind::ResourceOut);
  EXPECT_TRUE(F2->InWorker);
  EXPECT_EQ(Plan->describe(), "crash@1,oom@2");
  // Plain resourceout remains a dispatch-level short-circuit.
  auto Plan2 = FaultPlan::parse("resourceout@1", Err);
  ASSERT_TRUE(Plan2) << Err;
  EXPECT_FALSE(Plan2->faultFor(1)->InWorker);
  EXPECT_EQ(Plan2->describe(), "resourceout@1");
}

//===----------------------------------------------------------------------===//
// ResilientSolver integration
//===----------------------------------------------------------------------===//

namespace {
struct SandboxDispatchTest : ::testing::Test {
  SandboxDispatchTest() : M(parsePrelude()) {}
  std::unique_ptr<Module> M;

  ResilientSolver::Builder provable() {
    return [this](SmtSolver &S, const AttemptInfo &) {
      AstContext &Ctx = M->Ctx;
      const Term *X = Ctx.var("x", Sort::Int);
      S.add(Ctx.cmp(CmpFormula::Lt, X, Ctx.intConst(3)));
      S.add(Ctx.cmp(CmpFormula::Gt, X, Ctx.intConst(5)));
    };
  }
};
} // namespace

TEST_F(SandboxDispatchTest, IsolatedDispatchProves) {
  RetryPolicy Pol;
  DeadlineBudget Budget;
  FaultPlan NoFaults;
  ResilientSolver RS(Pol, Budget, NoFaults);
  RS.setSandbox({/*Enabled=*/true, /*MemLimitMb=*/0});
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unsat);
  EXPECT_EQ(D.Attempts, 1u);
}

TEST_F(SandboxDispatchTest, WorkerCrashRetriesLikeATimeout) {
  std::string Err;
  auto Plan = FaultPlan::parse("crash@1", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  DeadlineBudget Budget;
  ResilientSolver RS(Pol, Budget, *Plan);
  RS.setSandbox({/*Enabled=*/true, /*MemLimitMb=*/0});
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unsat)
      << "a fresh worker must absorb the crash: " << D.Detail;
  EXPECT_EQ(D.Attempts, 2u) << "attempt 1 died in the sandbox, attempt 2 real";
}

TEST_F(SandboxDispatchTest, WorkerOomRetriesLikeATimeout) {
  std::string Err;
  auto Plan = FaultPlan::parse("oom@1", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  DeadlineBudget Budget;
  ResilientSolver RS(Pol, Budget, *Plan);
  RS.setSandbox({/*Enabled=*/true, /*MemLimitMb=*/128});
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unsat) << D.Detail;
  EXPECT_EQ(D.Attempts, 2u);
}

TEST_F(SandboxDispatchTest, InjectedCrashWithoutSandboxShortCircuits) {
  std::string Err;
  auto Plan = FaultPlan::parse("crash@*", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  Pol.MaxAttempts = 2;
  Pol.DegradeTactics = false;
  DeadlineBudget Budget;
  ResilientSolver RS(Pol, Budget, *Plan); // no sandbox
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unknown);
  EXPECT_EQ(D.Failure, FailureKind::SolverCrash);
  EXPECT_EQ(D.Attempts, 2u) << "crashes must be retried";
  EXPECT_NE(D.Detail.find("injected"), std::string::npos);
}

TEST_F(SandboxDispatchTest, LoweringErrorSkipsTheFork) {
  RetryPolicy Pol;
  DeadlineBudget Budget;
  FaultPlan NoFaults;
  ResilientSolver RS(Pol, Budget, NoFaults);
  RS.setSandbox({/*Enabled=*/true, /*MemLimitMb=*/0});
  DispatchResult D = RS.dispatch([&](SmtSolver &S, const AttemptInfo &) {
    AstContext &Ctx = M->Ctx;
    S.add(Ctx.cmp(CmpFormula::Eq, Ctx.inf(true), Ctx.intConst(0)));
  });
  EXPECT_EQ(D.Status, SmtStatus::Unknown);
  EXPECT_EQ(D.Failure, FailureKind::LoweringError);
  EXPECT_EQ(D.Attempts, 1u);
}

//===----------------------------------------------------------------------===//
// Verifier end-to-end (the acceptance path of dryadv --isolate)
//===----------------------------------------------------------------------===//

namespace {
const char *InsertFront = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)";
} // namespace

TEST(VerifierSandbox, IsolatedRunVerifies) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Isolate = true;
  Opts.CheckVacuity = false;
  auto M = parsePrelude(InsertFront);
  Verifier V(*M, Opts);
  DiagEngine D;
  auto R = V.verifyAll(D);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified);
}

TEST(VerifierSandbox, SurvivesInjectedWorkerCrashAndProves) {
  // dryadv --isolate --inject crash@1 --attempts 2: the first attempt's
  // worker really segfaults; the retry proves the routine.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Isolate = true;
  Opts.Attempts = 2;
  Opts.CheckVacuity = false;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("crash@1", Err);
  auto M = parsePrelude(InsertFront);
  Verifier V(*M, Opts);
  DiagEngine D;
  auto R = V.verifyAll(D);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified) << "one crashed worker must not fail the run";
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Status, SmtStatus::Unsat);
    EXPECT_EQ(O.Attempts, 2u);
  }
}

TEST(VerifierSandbox, UnabsorbedCrashesReportSolverCrashTaxonomy) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Isolate = true;
  Opts.Attempts = 1;
  Opts.DegradeTactics = false;
  Opts.CheckVacuity = false;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("crash@*", Err);
  auto M = parsePrelude(InsertFront);
  Verifier V(*M, Opts);
  DiagEngine D;
  auto R = V.verifyAll(D);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Status, SmtStatus::Unknown);
    EXPECT_EQ(O.Failure, FailureKind::SolverCrash)
        << "the wait-status classification must reach the report";
  }
}

//===----------------------------------------------------------------------===//
// Termination handlers: SIGTERM mid-pool leaves no orphans, no zombies
//===----------------------------------------------------------------------===//

TEST(Termination, SigtermMidPoolKillsWorkersAndExits130) {
  // A driver process with two live stalling workers receives SIGTERM. The
  // handler must SIGKILL and reap both workers (no orphans keep burning the
  // solver deadline in the background) and _exit(130).
  int PidPipe[2];
  ASSERT_EQ(pipe(PidPipe), 0);

  pid_t Driver = fork();
  ASSERT_GE(Driver, 0);
  if (Driver == 0) {
    close(PidPipe[0]);
    installTerminationHandlers(/*JournalFd=*/-1);
    SandboxRequest Req;
    Req.Smt2 = UnsatSmt2;
    Req.TimeoutMs = 60000; // far past the test horizon: only SIGKILL ends them
    Req.Fault = SandboxFault::Stall;
    WorkerHandle W1 = spawnWorker(Req);
    WorkerHandle W2 = spawnWorker(Req);
    if (W1.SpawnFailed || W2.SpawnFailed)
      _exit(99);
    pid_t Pids[2] = {W1.Pid, W2.Pid};
    if (write(PidPipe[1], Pids, sizeof(Pids)) != sizeof(Pids))
      _exit(98);
    close(PidPipe[1]);
    for (;;)
      pause(); // the SIGTERM handler is the only way out
  }

  close(PidPipe[1]);
  pid_t Workers[2] = {-1, -1};
  ASSERT_EQ(read(PidPipe[0], Workers, sizeof(Workers)),
            static_cast<ssize_t>(sizeof(Workers)));
  close(PidPipe[0]);
  ASSERT_GT(Workers[0], 0);
  ASSERT_GT(Workers[1], 0);

  ASSERT_EQ(kill(Driver, SIGTERM), 0);
  int St = 0;
  ASSERT_EQ(waitpid(Driver, &St, 0), Driver);
  ASSERT_TRUE(WIFEXITED(St)) << "handler must _exit, not die on the signal";
  EXPECT_EQ(WEXITSTATUS(St), 130);

  // The workers were the driver's children; the handler reaped them before
  // exiting, so their pids must be gone (not zombies owned by anyone).
  for (pid_t P : Workers) {
    for (int I = 0; I != 100 && kill(P, 0) == 0; ++I)
      usleep(10 * 1000); // allow kernel teardown to finish
    EXPECT_EQ(kill(P, 0), -1) << "worker " << P << " survived the handler";
    EXPECT_EQ(errno, ESRCH);
  }
}

//===----------------------------------------------------------------------===//
// Warm workers: one process, many requests, same isolation
//===----------------------------------------------------------------------===//

TEST(WarmWorker, OnePidServesManyRequests) {
  WarmWorker W = spawnWarmWorker();
  ASSERT_FALSE(W.SpawnFailed) << W.FailReason;
  pid_t Pid = W.Pid;

  SandboxRequest Unsat;
  Unsat.Smt2 = UnsatSmt2;
  Unsat.TimeoutMs = 10000;
  SandboxRequest Sat;
  Sat.Smt2 = SatSmt2;
  Sat.TimeoutMs = 10000;

  SmtResult R1 = solveOnWarmWorker(W, Unsat);
  EXPECT_EQ(R1.Status, SmtStatus::Unsat);
  SmtResult R2 = solveOnWarmWorker(W, Sat);
  EXPECT_EQ(R2.Status, SmtStatus::Sat);
  EXPECT_NE(R2.ModelText.find("x = 42"), std::string::npos)
      << "the model must cross the framed pipe: " << R2.ModelText;
  SmtResult R3 = solveOnWarmWorker(W, Unsat);
  EXPECT_EQ(R3.Status, SmtStatus::Unsat);

  EXPECT_EQ(W.Pid, Pid) << "one process must have served all three requests";
  EXPECT_EQ(W.Served, 3u);
  EXPECT_TRUE(W.usable());
  EXPECT_GT(W.RssKb, 0u) << "RSS sampling feeds the recycle policy";
  retireWarmWorker(W);
}

TEST(WarmWorker, RlimitsReappliedPerRequest) {
  // The first request runs uncapped; the second's RLIMIT_AS must still
  // bite — per-request soft-limit refresh, not spawn-time configuration.
  WarmWorker W = spawnWarmWorker();
  ASSERT_FALSE(W.SpawnFailed) << W.FailReason;

  SandboxRequest Plain;
  Plain.Smt2 = UnsatSmt2;
  Plain.TimeoutMs = 10000;
  EXPECT_EQ(solveOnWarmWorker(W, Plain).Status, SmtStatus::Unsat);

  SandboxRequest Oom = Plain;
  Oom.TimeoutMs = 30000;
  Oom.MemLimitMb = 64;
  Oom.Fault = SandboxFault::Oom;
  SmtResult R = solveOnWarmWorker(W, Oom);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::ResourceOut);
  EXPECT_NE(R.Detail.find("memory"), std::string::npos) << R.Detail;
  EXPECT_FALSE(W.usable()) << "the rlimit death must retire the worker";
  retireWarmWorker(W);
}

TEST(WarmWorker, CrashMidRequestClassifiedAndWorkerReaped) {
  WarmWorker W = spawnWarmWorker();
  ASSERT_FALSE(W.SpawnFailed) << W.FailReason;
  SandboxRequest Crash;
  Crash.Smt2 = UnsatSmt2;
  Crash.TimeoutMs = 10000;
  Crash.Fault = SandboxFault::Crash;
  SmtResult R = solveOnWarmWorker(W, Crash);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::SolverCrash);
  EXPECT_NE(R.Detail.find("signal"), std::string::npos) << R.Detail;
  EXPECT_EQ(W.Pid, -1) << "the dead worker must be reaped in finish";

  // The obligation retries on a fresh worker, unaffected by the corpse.
  WarmWorker W2 = spawnWarmWorker();
  ASSERT_FALSE(W2.SpawnFailed) << W2.FailReason;
  SandboxRequest Req;
  Req.Smt2 = UnsatSmt2;
  Req.TimeoutMs = 10000;
  EXPECT_EQ(solveOnWarmWorker(W2, Req).Status, SmtStatus::Unsat);
  retireWarmWorker(W2);
}

TEST(WarmWorker, WedgedRequestKilledAtWallDeadline) {
  WarmWorker W = spawnWarmWorker();
  ASSERT_FALSE(W.SpawnFailed) << W.FailReason;
  SandboxRequest Stall;
  Stall.Smt2 = UnsatSmt2;
  Stall.TimeoutMs = 300; // the stalling worker never answers
  Stall.Fault = SandboxFault::Stall;
  SmtResult R = solveOnWarmWorker(W, Stall);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::Timeout);
  EXPECT_NE(R.Detail.find("deadline"), std::string::npos) << R.Detail;
  EXPECT_LT(R.Seconds, 10.0) << "SIGKILL must fire near the deadline";
  EXPECT_FALSE(W.usable());
  retireWarmWorker(W);
}

TEST(Termination, SigtermIdleWarmFleetLeavesNoOrphans) {
  // Warm workers are registered in the pid registry at SPAWN, not at first
  // request: a SIGTERM that lands while the whole fleet is idle (blocked
  // reading its request pipe) must still kill and reap every worker.
  int PidPipe[2];
  ASSERT_EQ(pipe(PidPipe), 0);

  pid_t Driver = fork();
  ASSERT_GE(Driver, 0);
  if (Driver == 0) {
    close(PidPipe[0]);
    installTerminationHandlers(/*JournalFd=*/-1);
    WarmWorker W1 = spawnWarmWorker();
    WarmWorker W2 = spawnWarmWorker();
    if (W1.SpawnFailed || W2.SpawnFailed)
      _exit(99);
    // No request is ever started: both workers sit idle.
    pid_t Pids[2] = {W1.Pid, W2.Pid};
    if (write(PidPipe[1], Pids, sizeof(Pids)) != sizeof(Pids))
      _exit(98);
    close(PidPipe[1]);
    for (;;)
      pause(); // the SIGTERM handler is the only way out
  }

  close(PidPipe[1]);
  pid_t Workers[2] = {-1, -1};
  ASSERT_EQ(read(PidPipe[0], Workers, sizeof(Workers)),
            static_cast<ssize_t>(sizeof(Workers)));
  close(PidPipe[0]);
  ASSERT_GT(Workers[0], 0);
  ASSERT_GT(Workers[1], 0);

  ASSERT_EQ(kill(Driver, SIGTERM), 0);
  int St = 0;
  ASSERT_EQ(waitpid(Driver, &St, 0), Driver);
  ASSERT_TRUE(WIFEXITED(St)) << "handler must _exit, not die on the signal";
  EXPECT_EQ(WEXITSTATUS(St), 130);

  for (pid_t P : Workers) {
    for (int I = 0; I != 100 && kill(P, 0) == 0; ++I)
      usleep(10 * 1000); // allow kernel teardown to finish
    EXPECT_EQ(kill(P, 0), -1)
        << "idle warm worker " << P << " survived the handler";
    EXPECT_EQ(errno, ESRCH);
  }
}
