//===--- suite_test.cpp - Benchmark-corpus smoke tests --------------------------===//
//
// Fast integration coverage over the shipped corpus: a representative
// routine from each module must verify, and every seeded bug must be
// rejected. (The full corpus runs in bench/fig6_datastructures and
// bench/fig7_opensource.)
//
//===----------------------------------------------------------------------===//

#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct SuiteCase {
  const char *File;
  const char *Proc;
  bool ExpectVerified;
};

const SuiteCase Cases[] = {
    {"fig6/sll.dryad", "insert_front", true},
    {"fig6/sll.dryad", "reverse_iter", true},
    {"fig6/sll.dryad", "insert_back_rec", true},
    {"fig6/sorted_list.dryad", "insert_rec", true},
    {"fig6/sorted_list.dryad", "merge_rec", true},
    {"fig6/maxheap.dryad", "heapify", true},
    {"fig6/bst.dryad", "find_rec", true},
    {"fig6/traversals.dryad", "inorder_rec", true},
    {"fig6/schorr_waite.dryad", "marking", true},
    {"fig7/glib_gslist.dryad", "gslist_length", true},
    {"fig7/expressos_cachepage.dryad", "add_cachepage", true},
    {"fig7/linux_mmap.dryad", "find_vma", true},
    {"negative/seeded_bugs.dryad", "bug_insert_claims_same_keys", false},
    {"negative/seeded_bugs.dryad", "bug_forgot_link", false},
    {"negative/seeded_bugs.dryad", "bug_delete_no_free", false},
    {"negative/seeded_bugs.dryad", "bug_sorted_insert_front", false},
    {"negative/seeded_bugs.dryad", "bug_weak_invariant", false},
    {"negative/seeded_bugs.dryad", "bug_find_inverted", false},
};

struct SuiteSmoke : ::testing::TestWithParam<SuiteCase> {};
} // namespace

TEST_P(SuiteSmoke, RoutineHasExpectedOutcome) {
  const SuiteCase &C = GetParam();
  Module M;
  DiagEngine D;
  ASSERT_TRUE(parseModuleFile(suitePath(C.File), M, D)) << D.str();
  const Procedure *P = M.findProc(C.Proc);
  ASSERT_NE(P, nullptr) << C.Proc;
  VerifyOptions Opts;
  Opts.TimeoutMs = 60000;
  Verifier V(M, Opts);
  ProcResult R = V.verifyProc(*P, D);
  EXPECT_EQ(R.Verified, C.ExpectVerified) << C.File << " / " << C.Proc;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SuiteSmoke, ::testing::ValuesIn(Cases),
                         [](const auto &Info) {
                           std::string N = Info.param.Proc;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });
