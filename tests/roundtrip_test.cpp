//===--- roundtrip_test.cpp - Corpus-wide structural sweeps --------------------===//
//
// Parameterized sweeps over every shipped corpus module: contracts print to
// parseable text (printer/parser agreement), every definition passes
// well-formedness, every procedure yields basic paths whose statements are
// simple, and VC generation succeeds for every path.
//
//===----------------------------------------------------------------------===//

#include "dryad/printer.h"
#include "dryad/typecheck.h"
#include "lang/paths.h"
#include "vcgen/vc.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
const char *Modules[] = {
    "fig6/sll.dryad",
    "fig6/sorted_list.dryad",
    "fig6/dll.dryad",
    "fig6/cyclic.dryad",
    "fig6/maxheap.dryad",
    "fig6/bst.dryad",
    "fig6/treap.dryad",
    "fig6/avl.dryad",
    "fig6/rbt.dryad",
    "fig6/traversals.dryad",
    "fig6/schorr_waite.dryad",
    "fig7/glib_gslist.dryad",
    "fig7/glib_glist.dryad",
    "fig7/openbsd_queue.dryad",
    "fig7/expressos_cachepage.dryad",
    "fig7/expressos_memregion.dryad",
    "fig7/linux_mmap.dryad",
    "negative/seeded_bugs.dryad",
};

struct CorpusSweep : ::testing::TestWithParam<const char *> {};

std::string testName(const ::testing::TestParamInfo<const char *> &Info) {
  std::string N = Info.param;
  for (char &C : N)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}
} // namespace

TEST_P(CorpusSweep, DefinitionsAreWellFormed) {
  Module M;
  DiagEngine D;
  ASSERT_TRUE(parseModuleFile(suitePath(GetParam()), M, D)) << D.str();
  EXPECT_TRUE(checkDefs(M.Defs, D)) << D.str();
  EXPECT_FALSE(M.Defs.all().empty());
}

TEST_P(CorpusSweep, ContractsRoundTripThroughPrinter) {
  Module M;
  DiagEngine D;
  ASSERT_TRUE(parseModuleFile(suitePath(GetParam()), M, D)) << D.str();

  for (const Procedure &P : M.Procs) {
    for (const Formula *F : {P.Pre, P.Post}) {
      ASSERT_NE(F, nullptr) << P.Name;
      std::string Printed = print(F);
      // Reparse the printed contract in the same module environment.
      DiagEngine D2;
      std::vector<Token> Toks = tokenize(Printed, D2);
      ASSERT_FALSE(D2.hasErrors()) << P.Name << ": " << Printed;
      TokenCursor Cur;
      Cur.Toks = &Toks;
      SpecParser SP(M.Ctx, M.Fields, M.Defs, D2, Cur);
      VarEnv Env;
      for (const VarDecl &V : P.Params)
        Env[V.Name] = V.S;
      for (const VarDecl &V : P.SpecVars)
        Env[V.Name] = V.S;
      if (P.HasRet)
        Env[P.Ret.Name] = P.Ret.S;
      const Formula *Reparsed = SP.parseFormula(Env);
      ASSERT_NE(Reparsed, nullptr) << P.Name << ": " << Printed << "\n"
                                   << D2.str();
      EXPECT_FALSE(D2.hasErrors()) << P.Name << ": " << D2.str();
      // Printing again is a fixed point.
      EXPECT_EQ(print(Reparsed), Printed) << P.Name;
    }
  }
}

TEST_P(CorpusSweep, EveryPathGeneratesAVC) {
  Module M;
  DiagEngine D;
  ASSERT_TRUE(parseModuleFile(suitePath(GetParam()), M, D)) << D.str();
  VCGen Gen(M);
  size_t Paths = 0;
  for (const Procedure &P : M.Procs) {
    if (!P.HasBody)
      continue;
    for (const BasicPath &BP : extractPaths(M, P, D)) {
      ++Paths;
      // Only simple statements appear in paths.
      for (const Stmt &S : BP.Stmts) {
        EXPECT_NE(S.K, Stmt::If);
        EXPECT_NE(S.K, Stmt::While);
      }
      std::optional<VCond> VC = Gen.generate(P, BP, D);
      ASSERT_TRUE(VC.has_value()) << P.Name << " [" << BP.Desc << "]\n"
                                  << D.str();
      EXPECT_FALSE(VC->Assumptions.empty());
      ASSERT_NE(VC->Goal, nullptr);
      EXPECT_FALSE(VC->Boundaries.empty());
      EXPECT_GE(VC->LocTerms.size(), 1u);
      // Boundary times are exactly 0..n-1.
      for (size_t I = 0; I != VC->Boundaries.size(); ++I)
        EXPECT_EQ(VC->Boundaries[I].Time, static_cast<int>(I));
    }
  }
  EXPECT_GT(Paths, 0u);
  EXPECT_FALSE(D.hasErrors()) << D.str();
}

INSTANTIATE_TEST_SUITE_P(AllModules, CorpusSweep, ::testing::ValuesIn(Modules),
                         testName);
