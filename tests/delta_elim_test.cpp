//===--- delta_elim_test.cpp - Classical unfolding goldens ---------------------===//

#include "dryad/printer.h"
#include "translate/delta_elim.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct DeltaElimTest : ::testing::Test {
  DeltaElimTest() : M(parsePrelude()), U(M->Ctx, M->Fields) {}
  std::unique_ptr<Module> M;
  DefUnfolder U;
};
} // namespace

TEST_F(DeltaElimTest, ReachUnfoldingShape) {
  const RecDef *List = M->Defs.lookup("list");
  const Term *X = M->Ctx.var("x", Sort::Loc);
  const Formula *F = U.unfoldReach(List, X, {});
  EXPECT_EQ(print(F),
            "reach_list(x) == ite(x == nil, {}, union({x}, "
            "reach_list(next(x))))");
}

TEST_F(DeltaElimTest, ReachUnfoldingWithStops) {
  const RecDef *Lseg = M->Defs.lookup("lseg");
  const Term *X = M->Ctx.var("x", Sort::Loc);
  const Term *U2 = M->Ctx.var("u", Sort::Loc);
  const Formula *F = U.unfoldReach(Lseg, X, {U2});
  EXPECT_EQ(print(F),
            "reach_lseg(x, u) == ite(x == nil || x == u, {}, union({x}, "
            "reach_lseg(next(x), u)))");
}

TEST_F(DeltaElimTest, PredicateUnfoldsToIff) {
  const RecDef *List = M->Defs.lookup("list");
  const Term *X = M->Ctx.var("x", Sort::Loc);
  std::string S = print(U.unfoldDef(List, X, {}));
  // p(x) <-> T(body): encoded as (p && B) || (!p && !B).
  EXPECT_NE(S.find("list(x) && (x == nil && reach_list(x) == {}"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("!(list(x))"), std::string::npos) << S;
  // The unrolled body relates the node to its frontier successor.
  EXPECT_NE(S.find("list(next(x))"), std::string::npos) << S;
  // Strictness: x is not in its tail's heaplet.
  EXPECT_NE(S.find("inter({x}, reach_list(next(x))) == {}"),
            std::string::npos)
      << S;
}

TEST_F(DeltaElimTest, FunctionUnfoldsToIteChain) {
  const RecDef *Keys = M->Defs.lookup("keys");
  const Term *X = M->Ctx.var("x", Sort::Loc);
  std::string S = print(U.unfoldDef(Keys, X, {}));
  EXPECT_EQ(S.rfind("keys(x) == ite(", 0), 0u) << S;
  // The ~s are replaced by field reads of x.
  EXPECT_NE(S.find("union(keys(next(x)), {key(x)})"), std::string::npos) << S;
  // Default case value terminates the chain.
  EXPECT_EQ(S.back(), ')');
}

TEST_F(DeltaElimTest, TreeUnfoldingCoversBothChildren) {
  const RecDef *Tree = M->Defs.lookup("tree");
  const Term *X = M->Ctx.var("x", Sort::Loc);
  std::string S = print(U.unfoldDef(Tree, X, {}));
  EXPECT_NE(S.find("tree(left(x))"), std::string::npos) << S;
  EXPECT_NE(S.find("tree(right(x))"), std::string::npos) << S;
  // The subtree heaplets are disjoint.
  EXPECT_NE(S.find("inter(reach_tree(left(x)), reach_tree(right(x)))"),
            std::string::npos)
      << S;
}

TEST_F(DeltaElimTest, UnfoldingAtStampedTermKeepsStamps) {
  const RecDef *List = M->Defs.lookup("list");
  const Term *X = M->Ctx.var("x", Sort::Loc);
  const Formula *F = U.unfoldReach(List, X, {});
  StampMap SM;
  SM.FieldVersions["next"] = 2;
  SM.FieldVersions["prev"] = 0;
  SM.FieldVersions["left"] = 0;
  SM.FieldVersions["right"] = 0;
  SM.FieldVersions["key"] = 1;
  SM.Time = 3;
  EXPECT_EQ(print(stamp(M->Ctx, F, SM)),
            "reach_list@3(x) == ite(x == nil, {}, union({x}, "
            "reach_list@3(next@2(x))))");
}
