//===--- ast_test.cpp - AST construction and utilities -----------------------===//

#include "dryad/ast.h"
#include "dryad/defs.h"
#include "dryad/printer.h"

#include <gtest/gtest.h>

using namespace dryad;

namespace {
struct AstTest : ::testing::Test {
  AstContext Ctx;
};
} // namespace

TEST_F(AstTest, ConjunctionFlattensAndSimplifies) {
  const Formula *A = Ctx.cmp(CmpFormula::Eq, Ctx.var("x", Sort::Loc), Ctx.nil());
  const Formula *B = Ctx.cmp(CmpFormula::Ne, Ctx.var("y", Sort::Loc), Ctx.nil());
  const Formula *Inner = Ctx.conj({A, B});
  const Formula *Outer = Ctx.conj({Inner, Ctx.trueF()});
  ASSERT_EQ(Outer->kind(), Formula::FK_And);
  EXPECT_EQ(cast<NaryFormula>(Outer)->operands().size(), 2u);

  EXPECT_EQ(Ctx.conj({Ctx.trueF(), Ctx.trueF()})->kind(),
            Formula::FK_BoolConst);
  EXPECT_FALSE(
      cast<BoolConstFormula>(Ctx.conj({A, Ctx.falseF()}))->value());
}

TEST_F(AstTest, DisjunctionAbsorbsTrue) {
  const Formula *A = Ctx.cmp(CmpFormula::Eq, Ctx.var("x", Sort::Loc), Ctx.nil());
  const Formula *D = Ctx.disj({A, Ctx.trueF()});
  ASSERT_EQ(D->kind(), Formula::FK_BoolConst);
  EXPECT_TRUE(cast<BoolConstFormula>(D)->value());
  EXPECT_EQ(Ctx.disj({A, Ctx.falseF()}), A);
}

TEST_F(AstTest, NegationCancels) {
  const Formula *A = Ctx.cmp(CmpFormula::Eq, Ctx.var("x", Sort::Loc), Ctx.nil());
  EXPECT_EQ(Ctx.neg(Ctx.neg(A)), A);
  EXPECT_FALSE(cast<BoolConstFormula>(Ctx.neg(Ctx.trueF()))->value());
}

TEST_F(AstTest, UnionWithEmptySetSimplifies) {
  const Term *E = Ctx.emptySet(Sort::IntSet);
  const Term *S = Ctx.singleton(Ctx.intConst(3), Sort::IntSet);
  EXPECT_EQ(Ctx.setUnion(E, S), S);
  EXPECT_EQ(Ctx.setUnion(S, E), S);
  EXPECT_EQ(Ctx.setBin(SetBinTerm::Diff, S, E), S);
}

TEST_F(AstTest, StructuralEquality) {
  const Term *X1 = Ctx.var("x", Sort::Loc);
  const Term *X2 = Ctx.var("x", Sort::Loc);
  const Term *Y = Ctx.var("y", Sort::Loc);
  EXPECT_TRUE(structEq(X1, X2));
  EXPECT_FALSE(structEq(X1, Y));

  const Formula *F1 = Ctx.cmp(CmpFormula::Eq, X1, Ctx.nil());
  const Formula *F2 = Ctx.cmp(CmpFormula::Eq, X2, Ctx.nil());
  const Formula *F3 = Ctx.cmp(CmpFormula::Ne, X1, Ctx.nil());
  EXPECT_TRUE(structEq(F1, F2));
  EXPECT_FALSE(structEq(F1, F3));
}

TEST_F(AstTest, SubstitutionReplacesVariables) {
  const Term *X = Ctx.var("x", Sort::Loc);
  const Formula *F =
      Ctx.cmp(CmpFormula::Eq, Ctx.fieldRead("next", X, Sort::Loc), Ctx.nil());
  Subst S;
  S["x"] = Ctx.var("y", Sort::Loc);
  const Formula *G = substitute(Ctx, F, S);
  EXPECT_EQ(print(G), "next(y) == nil");
  // Original untouched.
  EXPECT_EQ(print(F), "next(x) == nil");
}

TEST_F(AstTest, CollectVarsFindsAllFreeVariables) {
  const Term *X = Ctx.var("x", Sort::Loc);
  const Term *K = Ctx.var("K", Sort::IntSet);
  const Formula *F = Ctx.conj2(
      Ctx.cmp(CmpFormula::Eq, Ctx.var("j", Sort::Int), Ctx.intConst(1)),
      Ctx.cmp(CmpFormula::SubsetEq, Ctx.singleton(Ctx.intConst(2), Sort::IntSet),
              K));
  (void)X;
  std::map<std::string, Sort> Vars;
  collectVars(F, Vars);
  EXPECT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars.at("j"), Sort::Int);
  EXPECT_EQ(Vars.at("K"), Sort::IntSet);
}

TEST_F(AstTest, StampSetsVersionsAndTimes) {
  RecDef Def;
  Def.Name = "list";
  Def.Result = Sort::Bool;
  Def.PtrFields = {"next"};
  const Term *X = Ctx.var("x", Sort::Loc);
  const Formula *F = Ctx.conj2(
      Ctx.recPred(&Def, X, {}),
      Ctx.cmp(CmpFormula::Eq, Ctx.fieldRead("next", X, Sort::Loc), Ctx.nil()));
  StampMap SM;
  SM.FieldVersions["next"] = 3;
  SM.Time = 2;
  const Formula *G = stamp(Ctx, F, SM);
  EXPECT_EQ(print(G), "list@2(x) && next@3(x) == nil");

  // Stamping twice does not re-stamp.
  StampMap SM2;
  SM2.FieldVersions["next"] = 9;
  SM2.Time = 9;
  EXPECT_EQ(print(stamp(Ctx, G, SM2)), "list@2(x) && next@3(x) == nil");
}

TEST_F(AstTest, SepKeepsTrueOperand) {
  const Formula *S = Ctx.sep({Ctx.emp(), Ctx.trueF()});
  ASSERT_EQ(S->kind(), Formula::FK_Sep);
  EXPECT_EQ(cast<NaryFormula>(S)->operands().size(), 2u);
}
