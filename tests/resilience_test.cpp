//===--- resilience_test.cpp - Resilient dispatch and fault injection ----------===//
//
// Exercises the retry/escalation layer (smt/resilient.*) and the
// deterministic fault-injection hook (smt/inject.*) end to end: retry then
// succeed, budget exhaustion, tactic-degradation fallback, and failure
// taxonomy reporting — all without a real flaky solver.
//
//===----------------------------------------------------------------------===//

#include "smt/inject.h"
#include "smt/resilient.h"
#include "verifier/report.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace dryad;
using namespace dryad::test;

//===----------------------------------------------------------------------===//
// FaultPlan parsing
//===----------------------------------------------------------------------===//

TEST(FaultPlan, ParsesKindsAndAttempts) {
  std::string Err;
  auto Plan = FaultPlan::parse("timeout@1,unknown@2,lowering@*", Err);
  ASSERT_TRUE(Plan) << Err;
  auto F1 = Plan->faultFor(1);
  ASSERT_TRUE(F1);
  EXPECT_EQ(F1->Kind, FailureKind::Timeout);
  auto F2 = Plan->faultFor(2);
  ASSERT_TRUE(F2);
  EXPECT_EQ(F2->Kind, FailureKind::SolverUnknown);
  // @* matches attempts no earlier entry claimed.
  auto F9 = Plan->faultFor(9);
  ASSERT_TRUE(F9);
  EXPECT_EQ(F9->Kind, FailureKind::LoweringError);
  EXPECT_EQ(Plan->describe(), "timeout@1,unknown@2,lowering@*");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(FaultPlan::parse("timeout", Err));
  EXPECT_FALSE(FaultPlan::parse("frobnicate@1", Err));
  EXPECT_FALSE(FaultPlan::parse("timeout@0", Err));
  EXPECT_FALSE(FaultPlan::parse("timeout@x", Err));
  EXPECT_FALSE(FaultPlan::parse("", Err));
  EXPECT_FALSE(Err.empty());
}

TEST(FaultPlan, GenericFaultIsInjectedKind) {
  std::string Err;
  auto Plan = FaultPlan::parse("fault@1", Err);
  ASSERT_TRUE(Plan) << Err;
  SmtResult R = injectedResult(*Plan->faultFor(1), 1);
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::Injected);
  EXPECT_NE(R.Detail.find("injected"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// DeadlineBudget and RetryPolicy
//===----------------------------------------------------------------------===//

TEST(DeadlineBudget, UnlimitedByDefault) {
  DeadlineBudget B;
  EXPECT_TRUE(B.unlimited());
  EXPECT_FALSE(B.exhausted());
  B.charge(1u << 30);
  EXPECT_FALSE(B.exhausted());
}

TEST(DeadlineBudget, ChargeExhaustsDeterministically) {
  DeadlineBudget B(1000);
  EXPECT_FALSE(B.exhausted());
  B.charge(400);
  EXPECT_FALSE(B.exhausted());
  EXPECT_LE(B.remainingMs(), 600u);
  B.charge(600);
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.remainingMs(), 0u);
}

TEST(RetryPolicy, TimeoutEscalation) {
  RetryPolicy P; // 2s -> 10s -> full deadline
  P.MaxAttempts = 3;
  P.InitialTimeoutMs = 2000;
  P.BackoffFactor = 5;
  P.MaxTimeoutMs = 60000;
  EXPECT_EQ(P.timeoutForAttempt(1), 2000u);
  EXPECT_EQ(P.timeoutForAttempt(2), 10000u);
  EXPECT_EQ(P.timeoutForAttempt(3), 60000u);
  // Single-shot dispatch gets the whole deadline immediately.
  P.MaxAttempts = 1;
  EXPECT_EQ(P.timeoutForAttempt(1), 60000u);
  // Escalation saturates at the ceiling.
  P.MaxAttempts = 10;
  EXPECT_EQ(P.timeoutForAttempt(5), 60000u);
}

TEST(RetryPolicy, DegenerateConfigsStayWellDefined) {
  RetryPolicy P;
  P.InitialTimeoutMs = 2000;
  P.BackoffFactor = 5;
  P.MaxTimeoutMs = 60000;
  // MaxAttempts == 0 is treated as single-shot: the one attempt that runs
  // gets the whole deadline, never a division-by-zero or a zero deadline.
  P.MaxAttempts = 0;
  EXPECT_EQ(P.timeoutForAttempt(1), 60000u);
  // BackoffFactor == 0 degenerates to no escalation, not to a 0ms deadline.
  P.MaxAttempts = 3;
  P.BackoffFactor = 0;
  EXPECT_EQ(P.timeoutForAttempt(1), 2000u);
  EXPECT_EQ(P.timeoutForAttempt(2), 2000u);
  EXPECT_EQ(P.timeoutForAttempt(3), 60000u) << "the last attempt still "
                                               "gets the full deadline";
  // A zero initial deadline is clamped to something Z3 accepts.
  P.BackoffFactor = 5;
  P.InitialTimeoutMs = 0;
  EXPECT_GE(P.timeoutForAttempt(1), 1u);
  // Saturation can hit mid-schedule, well before the final attempt.
  P.InitialTimeoutMs = 2000;
  P.BackoffFactor = 1000;
  P.MaxAttempts = 5;
  EXPECT_EQ(P.timeoutForAttempt(2), 60000u);
  EXPECT_EQ(P.timeoutForAttempt(3), 60000u);
}

//===----------------------------------------------------------------------===//
// ResilientSolver dispatch
//===----------------------------------------------------------------------===//

namespace {
struct DispatchTest : ::testing::Test {
  DispatchTest() : M(parsePrelude()) {}
  std::unique_ptr<Module> M;

  /// Builder asserting an obviously-unsat stack (x < 3 && x > 5), i.e. a
  /// "provable obligation" for the dispatch layer.
  ResilientSolver::Builder provable() {
    return [this](SmtSolver &S, const AttemptInfo &) {
      AstContext &Ctx = M->Ctx;
      const Term *X = Ctx.var("x", Sort::Int);
      S.add(Ctx.cmp(CmpFormula::Lt, X, Ctx.intConst(3)));
      S.add(Ctx.cmp(CmpFormula::Gt, X, Ctx.intConst(5)));
    };
  }
};
} // namespace

TEST_F(DispatchTest, FirstAttemptSucceedsWithoutRetries) {
  RetryPolicy Pol;
  DeadlineBudget Budget;
  FaultPlan NoFaults;
  ResilientSolver RS(Pol, Budget, NoFaults);
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unsat);
  EXPECT_EQ(D.Attempts, 1u);
  EXPECT_EQ(D.DegradeLevel, 0u);
}

TEST_F(DispatchTest, RetryAfterInjectedTimeoutSucceeds) {
  std::string Err;
  auto Plan = FaultPlan::parse("timeout@1", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  DeadlineBudget Budget;
  ResilientSolver RS(Pol, Budget, *Plan);
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unsat);
  EXPECT_EQ(D.Attempts, 2u) << "attempt 1 injected, attempt 2 real";
  EXPECT_EQ(D.DegradeLevel, 0u);
}

TEST_F(DispatchTest, AttemptsExhaustedReportsTimeoutTaxonomy) {
  std::string Err;
  auto Plan = FaultPlan::parse("timeout@*", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  Pol.MaxAttempts = 2;
  Pol.DegradeTactics = false;
  DeadlineBudget Budget;
  ResilientSolver RS(Pol, Budget, *Plan);
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unknown);
  EXPECT_EQ(D.Failure, FailureKind::Timeout);
  EXPECT_EQ(D.Attempts, 2u);
  EXPECT_NE(D.Detail.find("injected"), std::string::npos);
}

TEST_F(DispatchTest, BudgetExhaustionStopsDispatch) {
  // Every attempt "stalls" for its whole deadline (injected timeouts charge
  // the budget), so a 3s budget admits only the 2s first attempt.
  std::string Err;
  auto Plan = FaultPlan::parse("timeout@*", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  Pol.MaxAttempts = 10;
  Pol.InitialTimeoutMs = 2000;
  DeadlineBudget Budget(3000);
  ResilientSolver RS(Pol, Budget, *Plan);
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unknown);
  EXPECT_EQ(D.Failure, FailureKind::Timeout);
  EXPECT_LT(D.Attempts, 10u) << "budget must cut the schedule short";
  EXPECT_NE(D.Detail.find("budget exhausted"), std::string::npos);
  EXPECT_TRUE(Budget.exhausted());
}

TEST_F(DispatchTest, DegradedAttemptRunsAfterScheduleExhausts) {
  std::string Err;
  auto Plan = FaultPlan::parse("unknown@1", Err);
  ASSERT_TRUE(Plan) << Err;
  RetryPolicy Pol;
  Pol.MaxAttempts = 1;
  Pol.DegradeTactics = true;
  Pol.DegradeLevels = 2;
  DeadlineBudget Budget;
  ResilientSolver RS(Pol, Budget, *Plan);
  unsigned SeenLevel = 0;
  DispatchResult D = RS.dispatch([&](SmtSolver &S, const AttemptInfo &Info) {
    SeenLevel = Info.DegradeLevel;
    provable()(S, Info);
  });
  EXPECT_EQ(D.Status, SmtStatus::Unsat);
  EXPECT_EQ(D.Attempts, 2u);
  EXPECT_EQ(D.DegradeLevel, 1u);
  EXPECT_EQ(SeenLevel, 1u) << "builder must see the reduced-tactics level";
}

TEST_F(DispatchTest, LoweringErrorIsNotRetried) {
  RetryPolicy Pol;
  Pol.MaxAttempts = 3;
  DeadlineBudget Budget;
  FaultPlan NoFaults;
  ResilientSolver RS(Pol, Budget, NoFaults);
  DispatchResult D = RS.dispatch([&](SmtSolver &S, const AttemptInfo &) {
    AstContext &Ctx = M->Ctx;
    // IntL infinities are rejected by the lowering — a deterministic error.
    S.add(Ctx.cmp(CmpFormula::Eq, Ctx.inf(true), Ctx.intConst(0)));
  });
  EXPECT_EQ(D.Status, SmtStatus::Unknown);
  EXPECT_EQ(D.Failure, FailureKind::LoweringError);
  EXPECT_EQ(D.Attempts, 1u) << "deterministic failures must not be retried";
  EXPECT_NE(D.Detail.find("infinities"), std::string::npos);
}

TEST(TacticDegradation, DropsAxiomsThenFramesNeverUnfolding) {
  NaturalOptions Full;
  EXPECT_EQ(maxDegradeLevels(Full), 2u);
  NaturalOptions L1 = degradeTactics(Full, 1);
  EXPECT_TRUE(L1.Unfold);
  EXPECT_TRUE(L1.Frames);
  EXPECT_FALSE(L1.Axioms);
  NaturalOptions L2 = degradeTactics(Full, 2);
  EXPECT_TRUE(L2.Unfold);
  EXPECT_FALSE(L2.Frames);
  EXPECT_FALSE(L2.Axioms);
  // Past the last droppable tactic the options saturate.
  NaturalOptions L9 = degradeTactics(Full, 9);
  EXPECT_TRUE(L9.Unfold);
  // A config that already dropped axioms degrades straight to frames.
  NaturalOptions NoAx = Full;
  NoAx.Axioms = false;
  EXPECT_EQ(maxDegradeLevels(NoAx), 1u);
  EXPECT_FALSE(degradeTactics(NoAx, 1).Frames);
}

TEST_F(DispatchTest, MaxAttemptsZeroDispatchesExactlyOnce) {
  RetryPolicy Pol;
  Pol.MaxAttempts = 0;
  Pol.DegradeTactics = false;
  DeadlineBudget Budget;
  FaultPlan NoFaults;
  ResilientSolver RS(Pol, Budget, NoFaults);
  DispatchResult D = RS.dispatch(provable());
  EXPECT_EQ(D.Status, SmtStatus::Unsat);
  EXPECT_EQ(D.Attempts, 1u);
}

TEST(ResilientSolverStatics, RetryableKinds) {
  EXPECT_TRUE(ResilientSolver::retryable(FailureKind::Timeout));
  EXPECT_TRUE(ResilientSolver::retryable(FailureKind::SolverUnknown));
  EXPECT_TRUE(ResilientSolver::retryable(FailureKind::ResourceOut));
  EXPECT_TRUE(ResilientSolver::retryable(FailureKind::SolverCrash))
      << "a fresh worker may survive what killed the last one";
  EXPECT_TRUE(ResilientSolver::retryable(FailureKind::Injected));
  EXPECT_FALSE(ResilientSolver::retryable(FailureKind::LoweringError));
  EXPECT_FALSE(ResilientSolver::retryable(FailureKind::None));
}

//===----------------------------------------------------------------------===//
// Verifier integration: taxonomy threading and report rendering
//===----------------------------------------------------------------------===//

namespace {
const char *InsertFront = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)";

std::vector<ProcResult> verifyWith(VerifyOptions Opts) {
  auto M = parsePrelude(InsertFront);
  Verifier V(*M, Opts);
  DiagEngine D;
  return V.verifyAll(D);
}
} // namespace

TEST(VerifierResilience, RetriesPastInjectedTimeoutAndVerifies) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("timeout@1", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified) << "retry path must absorb one injected timeout";
  for (const ObligationResult &O : R[0].Obligations)
    if (O.Name.find("[vacuity]") == std::string::npos) {
      EXPECT_EQ(O.Status, SmtStatus::Unsat);
      EXPECT_EQ(O.Failure, FailureKind::None);
      EXPECT_EQ(O.Attempts, 2u);
    }
}

TEST(VerifierResilience, SingleAttemptReportsTimeoutNotUnknown) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 1;
  Opts.DegradeTactics = false;
  Opts.CheckVacuity = false;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("timeout@*", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  ASSERT_FALSE(R[0].Obligations.empty());
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Status, SmtStatus::Unknown);
    EXPECT_EQ(O.Failure, FailureKind::Timeout)
        << "must report Timeout, not bare Unknown";
  }
  // The report renders the taxonomy, not "unknown", and flags the failures
  // as infrastructure rather than disproofs.
  std::string Table = formatResults("t", R);
  EXPECT_NE(Table.find("timeout"), std::string::npos);
  EXPECT_NE(Table.find("infrastructure"), std::string::npos);
  EXPECT_EQ(Table.find("unknown:"), std::string::npos);
}

TEST(VerifierResilience, SingleShotDisablesWholeResilienceLadder) {
  // Attempts == 1 means classic single-shot dispatch: no retry AND no
  // degraded re-dispatch, even with degradation left at its default. An
  // injected first-attempt timeout must therefore be final.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 1;
  Opts.CheckVacuity = false;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("timeout@1", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Failure, FailureKind::Timeout);
    EXPECT_EQ(O.Attempts, 1u);
  }
}

TEST(VerifierResilience, DegradedTacticsProveAfterInjectedUnknowns) {
  // All scheduled attempts fail; the degraded re-dispatch (axioms dropped)
  // still proves this recursive routine.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 2;
  Opts.DegradeTactics = true;
  Opts.CheckVacuity = false;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("unknown@1,unknown@2", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified);
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Status, SmtStatus::Unsat);
    EXPECT_GE(O.DegradeLevel, 1u) << "proof must come from a degraded attempt";
  }
}

TEST(VerifierResilience, ProcBudgetBoundsInjectedStalls) {
  // Injected timeouts charge their virtual stall to the procedure budget:
  // with a 3s budget and 2s first-attempt deadlines, the first obligation
  // exhausts the budget and every later obligation fails fast instead of
  // hanging for attempts x timeout.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 10;
  Opts.DegradeTactics = false;
  Opts.CheckVacuity = false;
  Opts.ProcBudgetMs = 3000;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("timeout@*", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  unsigned TotalAttempts = 0;
  bool SawBudgetNote = false;
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Failure, FailureKind::Timeout);
    TotalAttempts += O.Attempts;
    SawBudgetNote |=
        O.FailureDetail.find("budget exhausted") != std::string::npos;
  }
  EXPECT_TRUE(SawBudgetNote);
  EXPECT_LT(TotalAttempts, 10u * R[0].Obligations.size())
      << "budget must stop the retry schedule across obligations";
}

TEST(VerifierResilience, InjectedLoweringErrorSurfacesDetail) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.CheckVacuity = false;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("lowering@*", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  for (const ObligationResult &O : R[0].Obligations) {
    EXPECT_EQ(O.Failure, FailureKind::LoweringError);
    EXPECT_EQ(O.Attempts, 1u) << "lowering errors are deterministic";
    EXPECT_FALSE(O.FailureDetail.empty());
  }
  std::string Table = formatResults("t", R);
  EXPECT_NE(Table.find("lowering-error"), std::string::npos);
}

TEST(VerifierResilience, VacuityProbeRidesResilientDispatchAndFailsOpen) {
  // The probe shares the dispatch layer with real obligations, so the fault
  // plan hits it too. Two injected crashes exhaust the probe's (capped)
  // attempts while the main obligation survives via a degraded re-dispatch:
  // the proof must stand, and the unanswered probe must be recorded as a
  // "[vacuity skipped]" note rather than silently dropped.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 2;
  Opts.DegradeTactics = true;
  Opts.CheckVacuity = true;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("crash@1,crash@2", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified) << "an unanswered probe must not fail the proof";
  bool SawSkipNote = false;
  for (const ObligationResult &O : R[0].Obligations)
    if (O.Name.find("[vacuity skipped]") != std::string::npos) {
      SawSkipNote = true;
      EXPECT_EQ(O.Status, SmtStatus::Unknown);
      EXPECT_EQ(O.Failure, FailureKind::SolverCrash);
      EXPECT_NE(O.FailureDetail.find("vacuity probe unanswered"),
                std::string::npos);
      EXPECT_EQ(O.Attempts, 2u) << "the probe retries like an obligation";
    }
  EXPECT_TRUE(SawSkipNote);
}

TEST(VerifierResilience, DumpSmt2WritesEveryAttempt) {
  // A degraded re-dispatch runs a *different* query; debugging a flaky
  // obligation needs every attempt's benchmark, suffixed by attempt index
  // and degrade level, under a collision-free stem.
  std::string Dir = ::testing::TempDir() + "dryad-dump-test";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 2;
  Opts.DegradeTactics = true;
  Opts.CheckVacuity = false;
  Opts.DumpSmt2Dir = Dir;
  // Worker-realized crashes (unlike short-circuited injections) build the
  // query before the attempt dies, so every attempt produces a dump: the
  // bare stem, .a2, and the degraded .a3.d1 that finally proves.
  Opts.Isolate = true;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("crash@1,crash@2", Err);
  auto R = verifyWith(Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified);
  unsigned Plain = 0, Suffixed = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    std::string Name = E.path().filename().string();
    if (Name.find(".a") != std::string::npos)
      ++Suffixed;
    else
      ++Plain;
  }
  EXPECT_EQ(Plain, 1u) << "attempt 1 dumps under the bare stem";
  EXPECT_GE(Suffixed, 2u)
      << "retries and degraded attempts must be dumped too";
  // The degraded attempt carries its tactic level in the name.
  bool SawDegradeSuffix = false;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    SawDegradeSuffix |=
        E.path().filename().string().find(".d1") != std::string::npos;
  EXPECT_TRUE(SawDegradeSuffix);
}

TEST(VerifierResilience, ReportPrintsLoweringDetailText) {
  // FailureDetail must reach the rendered report verbatim (satellite:
  // lowering errors are no longer buried as a bare "unknown").
  ProcResult PR;
  PR.Proc = "p";
  PR.Verified = false;
  ObligationResult O;
  O.Name = "p [path 1]";
  O.Status = SmtStatus::Unknown;
  O.Failure = FailureKind::LoweringError;
  O.FailureDetail = "IntL infinities are not supported in VCs in: inf == 0";
  O.Attempts = 1;
  PR.Obligations.push_back(O);
  std::string Table = formatResults("t", {PR});
  EXPECT_NE(Table.find("lowering-error"), std::string::npos);
  EXPECT_NE(Table.find("IntL infinities"), std::string::npos);
}
