//===--- store_test.cpp - Persistent proof store tests ------------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// The crash-safety contract under test (store/store.h):
//  * a kill -9 mid-append costs at most the one torn tail record, which
//    fsck reports precisely and the next writer-open repairs;
//  * a complete line with a bad CRC is quarantined — skipped, counted,
//    re-solved — never trusted and never fatal;
//  * compaction is verdict-preserving and drops superseded/corrupt bytes;
//  * a store written by another engine version is rebuilt, not misread;
//  * cached proofs follow the journal's `:vacuity` sub-key protocol, so a
//    store hit can never mask a vacuous contract.
//
//===----------------------------------------------------------------------===//

#include "store/store.h"
#include "support/crc32.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include "testutil.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dryad;
using namespace dryad::test;

namespace {

std::string storePath(const std::string &Name) {
  std::string P = ::testing::TempDir() + "dryad-store-" + Name + ".seg";
  std::remove(P.c_str());
  std::remove((P + ".stale").c_str());
  return P;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

JournalRecord mkRecord(const std::string &Key, SmtStatus S,
                       double Seconds = 0.5) {
  JournalRecord R;
  R.Key = Key;
  R.Name = "p [path 1]";
  R.Status = S;
  R.Attempts = 1;
  R.Seconds = Seconds;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

TEST(Crc32, KnownAnswerAndSensitivity) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xcbf43926. Matching
  // it pins our table to the standard reflected polynomial — a store
  // written here stays checkable by any stock CRC tool.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32Hex(crc32("123456789")), "cbf43926");
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
  EXPECT_EQ(crc32Hex(0), "00000000") << "fixed width, zero padded";
}

//===----------------------------------------------------------------------===//
// Record encoding and the segment header
//===----------------------------------------------------------------------===//

TEST(StoreFormat, EncodeRecordIsCrcThenJournalLine) {
  JournalRecord R = mkRecord("v1-0000000000000001", SmtStatus::Unsat);
  std::string Line = ProofStore::encodeRecord(R);
  ASSERT_GT(Line.size(), 10u);
  EXPECT_EQ(Line[8], ' ') << "8 hex CRC digits, then one space";
  EXPECT_EQ(Line.back(), '\n');
  std::string Payload = Line.substr(9, Line.size() - 10);
  EXPECT_EQ(Line.substr(0, 8), crc32Hex(crc32(Payload)))
      << "CRC must cover exactly the journal JSON bytes";
  auto P = Journal::parseLine(Payload);
  ASSERT_TRUE(P) << "payload must stay journal-schema compatible";
  EXPECT_EQ(P->Key, R.Key);
}

TEST(StoreFormat, HeaderNamesSchemaAndEngine) {
  std::string H = ProofStore::headerLine();
  EXPECT_EQ(H.find("DRYADSTORE v1 engine="), 0u);
  EXPECT_NE(H.find(StoreEngineVersion), std::string::npos);
  EXPECT_EQ(H.back(), '\n');
}

//===----------------------------------------------------------------------===//
// Open / put / reopen durability
//===----------------------------------------------------------------------===//

TEST(StoreFile, PutSurvivesReopen) {
  std::string Path = storePath("reopen");
  {
    ProofStore S;
    std::string Err;
    ASSERT_TRUE(S.open(Path, Err)) << Err;
    EXPECT_EQ(S.size(), 0u);
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat, 1.25));
    S.put(mkRecord("v1-0000000000000002", SmtStatus::Sat));
    EXPECT_FALSE(S.degraded());
  }
  ProofStore S2;
  std::string Err;
  ASSERT_TRUE(S2.open(Path, Err)) << Err;
  EXPECT_EQ(S2.size(), 2u);
  EXPECT_EQ(S2.quarantinedOnLoad(), 0u);
  const JournalRecord *Hit = S2.lookup("v1-0000000000000001");
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Status, SmtStatus::Unsat);
  EXPECT_NEAR(Hit->Seconds, 1.25, 1e-9)
      << "the recorded solve time is what store hits replay";
  EXPECT_EQ(S2.lookup("v1-00000000000000ff"), nullptr);
}

TEST(StoreFile, LaterRecordsWin) {
  std::string Path = storePath("laterwins");
  ProofStore S;
  std::string Err;
  ASSERT_TRUE(S.open(Path, Err)) << Err;
  S.put(mkRecord("v1-0000000000000001", SmtStatus::Unknown));
  S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat)); // the retry won
  EXPECT_EQ(S.size(), 1u);
  ASSERT_NE(S.lookup("v1-0000000000000001"), nullptr);
  EXPECT_EQ(S.lookup("v1-0000000000000001")->Status, SmtStatus::Unsat);

  ProofStore S2;
  ASSERT_TRUE(S2.open(Path, Err)) << Err;
  ASSERT_NE(S2.lookup("v1-0000000000000001"), nullptr);
  EXPECT_EQ(S2.lookup("v1-0000000000000001")->Status, SmtStatus::Unsat)
      << "later-records-win must hold across reload";
}

//===----------------------------------------------------------------------===//
// Torn tails: fsck reports exactly the tear, writer-open repairs it
//===----------------------------------------------------------------------===//

TEST(StoreCrash, FsckReportsTornTailAndOpenRepairsIt) {
  std::string Path = storePath("torn");
  {
    ProofStore S;
    std::string Err;
    ASSERT_TRUE(S.open(Path, Err)) << Err;
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat));
  }
  // The kill -9 mid-append: half a record, no newline.
  std::string HalfLine =
      ProofStore::encodeRecord(mkRecord("v1-0000000000000002", SmtStatus::Unsat));
  HalfLine.resize(HalfLine.size() / 2);
  {
    std::ofstream Out(Path, std::ios::app | std::ios::binary);
    Out << HalfLine;
  }

  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_TRUE(F.HeaderOk && F.EngineMatch);
  EXPECT_EQ(F.ValidRecords, 1u);
  EXPECT_TRUE(F.TornTail);
  EXPECT_EQ(F.TornTailBytes, HalfLine.size())
      << "fsck must report exactly the torn bytes, nothing more";
  EXPECT_FALSE(F.clean());

  // Writer-open truncates the tear so the next append cannot merge into it.
  ProofStore S;
  std::string Err;
  ASSERT_TRUE(S.open(Path, Err)) << Err;
  EXPECT_EQ(S.size(), 1u) << "only the torn record is lost";
  S.put(mkRecord("v1-0000000000000003", SmtStatus::Unsat));

  StoreFsck F2 = ProofStore::verifySegment(Path);
  EXPECT_TRUE(F2.clean()) << ProofStore::formatFsck(F2);
  EXPECT_EQ(F2.ValidRecords, 2u);
}

TEST(StoreCrash, InjectedTornPutKillsWriterButNotLookups) {
  std::string Path = storePath("injtorn");
  std::string Err;
  FaultPlan Plan = *FaultPlan::parse("storetorn@2", Err);
  {
    ProofStore S;
    ASSERT_TRUE(S.open(Path, Err)) << Err;
    S.setInject(Plan);
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat));
    EXPECT_FALSE(S.degraded());
    S.put(mkRecord("v1-0000000000000002", SmtStatus::Unsat)); // torn here
    EXPECT_TRUE(S.degraded()) << "the writer died mid-append";
    S.put(mkRecord("v1-0000000000000003", SmtStatus::Unsat));
    EXPECT_EQ(S.lookup("v1-0000000000000003"), nullptr)
        << "a degraded store drops puts";
    EXPECT_NE(S.lookup("v1-0000000000000001"), nullptr)
        << "lookups keep working after the writer dies";
  }
  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_TRUE(F.TornTail) << "the injected tear is on disk";
  EXPECT_EQ(F.ValidRecords, 1u);

  ProofStore S2;
  ASSERT_TRUE(S2.open(Path, Err)) << Err;
  EXPECT_EQ(S2.size(), 1u);
  EXPECT_TRUE(ProofStore::verifySegment(Path).clean())
      << "writer-open must have repaired the tear";
}

TEST(StoreCrash, Kill9WriterLosesAtMostTheTailRecord) {
  // The real thing, not an emulation: a child appends records as fast as it
  // can, the parent SIGKILLs it mid-stream. Invariant: the segment holds
  // some prefix of the child's appends plus at most one torn tail — never a
  // bad-CRC line, never an unparseable complete line.
  std::string Path = storePath("kill9");
  {
    ProofStore S;
    std::string Err;
    ASSERT_TRUE(S.open(Path, Err)) << Err; // header written before the fork
  }
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    ProofStore S;
    std::string Err;
    if (!S.open(Path, Err))
      _exit(1);
    for (unsigned I = 1;; ++I) {
      char Key[32];
      std::snprintf(Key, sizeof(Key), "v1-%016x", I);
      S.put(mkRecord(Key, SmtStatus::Unsat));
    }
  }
  usleep(50 * 1000); // let some appends land
  kill(Child, SIGKILL);
  waitpid(Child, nullptr, 0);

  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_TRUE(F.HeaderOk && F.EngineMatch);
  EXPECT_EQ(F.BadCrc, 0u) << "a kill -9 must never fabricate a bad CRC line";
  EXPECT_EQ(F.Malformed, 0u);
  EXPECT_GE(F.ValidRecords, 1u) << "the child had 50ms of fsync'd appends";

  ProofStore S;
  std::string Err;
  ASSERT_TRUE(S.open(Path, Err)) << Err;
  EXPECT_EQ(S.size(), F.ValidRecords)
      << "recovery must keep every durable record";
  EXPECT_TRUE(ProofStore::verifySegment(Path).clean())
      << ProofStore::formatFsck(ProofStore::verifySegment(Path));
}

//===----------------------------------------------------------------------===//
// CRC corruption: quarantined, counted, re-solved — never trusted
//===----------------------------------------------------------------------===//

TEST(StoreCorruption, BadCrcLineIsQuarantinedOnLoad) {
  std::string Path = storePath("badcrc");
  {
    ProofStore S;
    std::string Err;
    ASSERT_TRUE(S.open(Path, Err)) << Err;
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat));
    S.put(mkRecord("v1-0000000000000002", SmtStatus::Unsat));
  }
  // Flip one payload byte of the second record: its CRC no longer matches.
  std::string Bytes = slurp(Path);
  size_t Pos = Bytes.rfind("unsat");
  ASSERT_NE(Pos, std::string::npos);
  Bytes[Pos] = 'X';
  {
    std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
    Out << Bytes;
  }

  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_EQ(F.BadCrc, 1u);
  EXPECT_EQ(F.ValidRecords, 1u);
  EXPECT_FALSE(F.clean());

  ProofStore S;
  std::string Err;
  ASSERT_TRUE(S.open(Path, Err)) << Err << " (corruption must not be fatal)";
  EXPECT_EQ(S.quarantinedOnLoad(), 1u);
  EXPECT_EQ(S.lookup("v1-0000000000000002"), nullptr)
      << "a quarantined record must be invisible: its obligation re-solves";
  EXPECT_NE(S.lookup("v1-0000000000000001"), nullptr);
}

TEST(StoreCorruption, InjectedCrcFaultIsInvisibleToLookupsAndCompactsAway) {
  std::string Path = storePath("injcrc");
  std::string Err;
  {
    ProofStore S;
    ASSERT_TRUE(S.open(Path, Err)) << Err;
    S.setInject(*FaultPlan::parse("storecrc@1", Err));
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat)); // corrupted
    S.put(mkRecord("v1-0000000000000002", SmtStatus::Unsat)); // clean
    EXPECT_EQ(S.lookup("v1-0000000000000001"), nullptr)
        << "the writer must not trust in memory what it corrupted on disk";
    EXPECT_FALSE(S.degraded()) << "CRC corruption is silent, unlike a tear";
  }
  EXPECT_EQ(ProofStore::verifySegment(Path).BadCrc, 1u);

  ASSERT_TRUE(ProofStore::compact(Path, Err)) << Err;
  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_TRUE(F.clean()) << ProofStore::formatFsck(F);
  EXPECT_EQ(F.ValidRecords, 1u) << "compaction drops the quarantined line";
}

//===----------------------------------------------------------------------===//
// Compaction: verdict-identical, later-records-win, crash-safe rename
//===----------------------------------------------------------------------===//

TEST(StoreCompact, RoundTripPreservesWinningVerdicts) {
  std::string Path = storePath("compact");
  std::string Err;
  {
    ProofStore S;
    ASSERT_TRUE(S.open(Path, Err)) << Err;
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unknown));
    S.put(mkRecord("v1-0000000000000002", SmtStatus::Unsat, 2.0));
    S.put(mkRecord("v1-0000000000000001", SmtStatus::Unsat, 3.0)); // supersedes
  }
  ASSERT_TRUE(ProofStore::compact(Path, Err)) << Err;

  StoreFsck F = ProofStore::verifySegment(Path);
  EXPECT_TRUE(F.clean()) << ProofStore::formatFsck(F);
  EXPECT_EQ(F.ValidRecords, 2u) << "one winner per key";
  EXPECT_EQ(F.DistinctKeys, 2u);

  ProofStore S;
  ASSERT_TRUE(S.open(Path, Err)) << Err;
  ASSERT_NE(S.lookup("v1-0000000000000001"), nullptr);
  EXPECT_EQ(S.lookup("v1-0000000000000001")->Status, SmtStatus::Unsat);
  EXPECT_NEAR(S.lookup("v1-0000000000000001")->Seconds, 3.0, 1e-9)
      << "the WINNING record's payload, not the superseded one's";
  ASSERT_NE(S.lookup("v1-0000000000000002"), nullptr);
  EXPECT_EQ(S.lookup("v1-0000000000000002")->Status, SmtStatus::Unsat);
}

TEST(StoreCompact, MissingFileIsAnError) {
  std::string Err;
  EXPECT_FALSE(ProofStore::compact(storePath("nosuch"), Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Stale engine versions rotate aside; divergence is surfaced
//===----------------------------------------------------------------------===//

TEST(StoreSchema, StaleEngineIsRotatedAndRebuilt) {
  std::string Path = storePath("stale");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "DRYADSTORE v1 engine=999\n";
    Out << ProofStore::encodeRecord(
        mkRecord("v1-0000000000000001", SmtStatus::Unsat));
  }
  StoreFsck Pre = ProofStore::verifySegment(Path);
  EXPECT_TRUE(Pre.HeaderOk);
  EXPECT_FALSE(Pre.EngineMatch);
  EXPECT_EQ(Pre.HeaderEngine, "999");

  ProofStore S;
  std::string Err;
  ASSERT_TRUE(S.open(Path, Err)) << Err;
  EXPECT_EQ(S.size(), 0u)
      << "another engine's verdicts must never be reused under this one";
  StoreFsck Post = ProofStore::verifySegment(Path);
  EXPECT_TRUE(Post.EngineMatch) << "rebuilt with our header";
  EXPECT_FALSE(slurp(Path + ".stale").empty())
      << "the stale segment is kept aside for forensics, not destroyed";
}

TEST(StoreSchema, FsckFlagsSatUnsatDivergence) {
  std::string Path = storePath("diverge");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << ProofStore::headerLine();
    Out << ProofStore::encodeRecord(
        mkRecord("v1-0000000000000001", SmtStatus::Unsat));
    Out << ProofStore::encodeRecord(
        mkRecord("v1-0000000000000001", SmtStatus::Sat));
    Out << ProofStore::encodeRecord(
        mkRecord("v1-0000000000000002", SmtStatus::Unknown));
    Out << ProofStore::encodeRecord(
        mkRecord("v1-0000000000000002", SmtStatus::Unsat));
  }
  StoreFsck F = ProofStore::verifySegment(Path);
  ASSERT_EQ(F.DivergentKeys.size(), 1u)
      << "a proof and a refutation of one key is the alarm; "
         "unknown->unsat is a normal retry upgrade";
  EXPECT_EQ(F.DivergentKeys[0], "v1-0000000000000001");
  EXPECT_FALSE(F.clean());
  EXPECT_NE(ProofStore::formatFsck(F).find("DIVERGENT"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Verifier integration: hits, misses, vacuity soundness
//===----------------------------------------------------------------------===//

namespace {
const char *TwoProcs = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
)";

/// keys(x) == K scopes only x's list under a two-structure heaplet, so the
/// precondition is unsatisfiable: every proof of this proc is vacuous.
const char *VacuousProc = R"(
proc vac(x: loc, y: loc) returns (ret: loc)
  spec (A: intset)
  requires ((list(x) * list(y)) && keys(x) == A) && y != nil
  ensures  list(ret)
{
  return x;
}
)";

std::vector<ProcResult> verifyStored(const char *Text, VerifyOptions Opts,
                                     PoolStats *Stats = nullptr) {
  auto M = parsePrelude(Text);
  Verifier V(*M, Opts);
  EXPECT_TRUE(V.storeError().empty()) << V.storeError();
  DiagEngine D;
  auto R = V.verifyAll(D);
  if (Stats)
    *Stats = V.poolStats();
  return R;
}
} // namespace

TEST(VerifierStore, SecondRunAnswersEverythingFromTheStore) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.StorePath = storePath("verifier");

  PoolStats Cold;
  auto First = verifyStored(TwoProcs, Opts, &Cold);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(First[0].Verified && First[1].Verified);
  EXPECT_EQ(Cold.StoreHits, 0u);
  EXPECT_GE(Cold.StoreMisses, 2u) << "every obligation missed the cold store";

  PoolStats Warm;
  auto Second = verifyStored(TwoProcs, Opts, &Warm);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  EXPECT_EQ(Warm.StoreMisses, 0u) << "an unchanged module re-solves nothing";
  EXPECT_GE(Warm.StoreHits, 2u);
  for (size_t I = 0; I != Second.size(); ++I) {
    // 1e-6: the journal serializes seconds at microsecond precision, far
    // finer than the report ever prints — byte-identity is intact.
    EXPECT_NEAR(Second[I].Seconds, First[I].Seconds, 1e-6)
        << Second[I].Proc
        << ": store hits must replay the recorded solve time";
    ASSERT_EQ(Second[I].Obligations.size(), First[I].Obligations.size());
    for (size_t J = 0; J != Second[I].Obligations.size(); ++J) {
      const ObligationResult &O = Second[I].Obligations[J];
      EXPECT_TRUE(O.FromStore) << O.Name;
      EXPECT_FALSE(O.FromJournal)
          << O.Name << ": store hits must not print the --resume summary";
      EXPECT_EQ(O.Attempts, First[I].Obligations[J].Attempts)
          << O.Name << ": stdout byte-identity needs the recorded attempts";
      EXPECT_EQ(O.Status, SmtStatus::Unsat);
    }
  }
}

TEST(VerifierStore, EditDirtiesOnlyTheEditedProcedure) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.CheckVacuity = false;
  Opts.StorePath = storePath("dirty");

  auto First = verifyStored(TwoProcs, Opts);
  ASSERT_EQ(First.size(), 2u);

  // Weaken id's contract: its obligation keys change, insert_front's don't.
  std::string Edited(TwoProcs);
  size_t Pos = Edited.find("ensures  list(ret)\n{\n  return x;");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, std::strlen("ensures  list(ret)"),
                 "ensures  list(ret) && keys(ret) == keys(ret)");

  PoolStats Incr;
  auto Second = verifyStored(Edited.c_str(), Opts, &Incr);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  EXPECT_GE(Incr.StoreHits, 1u) << "the untouched procedure stays cached";
  EXPECT_GE(Incr.StoreMisses, 1u) << "the edited procedure re-solves";
  for (const ObligationResult &O : Second[0].Obligations)
    EXPECT_TRUE(O.FromStore) << O.Name << ": untouched proc must be all hits";
  for (const ObligationResult &O : Second[1].Obligations)
    EXPECT_FALSE(O.FromStore) << O.Name << ": edited proc must re-solve";
}

TEST(VerifierStore, StoredVacuityRefutationReplays) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.VacuityTimeoutMs = 30000;
  Opts.StorePath = storePath("vacuous");

  auto First = verifyStored(VacuousProc, Opts);
  ASSERT_EQ(First.size(), 1u);
  EXPECT_FALSE(First[0].Verified) << "the vacuous contract must fail the run";

  PoolStats Warm;
  auto Second = verifyStored(VacuousProc, Opts, &Warm);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_FALSE(Second[0].Verified)
      << "SOUNDNESS: a store hit must never flip a vacuous contract to "
         "verified";
  EXPECT_EQ(Warm.StoreMisses, 0u)
      << "both the proof and its refutation replay from the store";
}

TEST(VerifierStore, MissingVacuityRecordForcesReprobe) {
  // Strip the :vacuity records from a populated store: a run killed between
  // recording the proof and probing it. The next run must re-probe, not
  // trust the bare proof.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.VacuityTimeoutMs = 30000;
  Opts.StorePath = storePath("novac");

  auto First = verifyStored(VacuousProc, Opts);
  ASSERT_EQ(First.size(), 1u);
  EXPECT_FALSE(First[0].Verified);

  std::string Bytes = slurp(Opts.StorePath), Kept;
  size_t Start = 0;
  while (Start < Bytes.size()) {
    size_t Eol = Bytes.find('\n', Start);
    if (Eol == std::string::npos)
      break;
    std::string Line = Bytes.substr(Start, Eol + 1 - Start);
    if (Line.find(":vacuity") == std::string::npos)
      Kept += Line;
    Start = Eol + 1;
  }
  ASSERT_LT(Kept.size(), Bytes.size()) << "there was a probe record to strip";
  {
    std::ofstream Out(Opts.StorePath, std::ios::trunc | std::ios::binary);
    Out << Kept;
  }

  PoolStats Stats;
  auto Second = verifyStored(VacuousProc, Opts, &Stats);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_FALSE(Second[0].Verified)
      << "SOUNDNESS: a proof without its probe verdict must be re-probed";
  EXPECT_GE(Stats.StoreMisses, 1u) << "the re-probe is a miss";
}

//===----------------------------------------------------------------------===//
// Exit taxonomy: infrastructure trouble must never read as a disproof
//===----------------------------------------------------------------------===//

namespace {
ProcResult procWith(ObligationResult O, bool Verified = false) {
  ProcResult R;
  R.Proc = "p";
  R.Verified = Verified;
  R.Obligations.push_back(std::move(O));
  return R;
}
} // namespace

TEST(ExitTaxonomy, ClassifyResultsSplitsGenuineFromInfra) {
  // Counterexample: genuine.
  {
    ObligationResult O;
    O.Name = "p [path 1]";
    O.Status = SmtStatus::Sat;
    bool All = true, Genuine = false;
    classifyResults({procWith(O)}, All, Genuine);
    EXPECT_FALSE(All);
    EXPECT_TRUE(Genuine);
  }
  // Timeout: infra.
  {
    ObligationResult O;
    O.Name = "p [path 1]";
    O.Status = SmtStatus::Unknown;
    O.Failure = FailureKind::Timeout;
    bool All = true, Genuine = false;
    classifyResults({procWith(O)}, All, Genuine);
    EXPECT_FALSE(All);
    EXPECT_FALSE(Genuine) << "a timeout is exit 3, never exit 1";
  }
  // Solver honestly unknown: genuine (unproved is unproved).
  {
    ObligationResult O;
    O.Name = "p [path 1]";
    O.Status = SmtStatus::Unknown;
    O.Failure = FailureKind::SolverUnknown;
    bool All = true, Genuine = false;
    classifyResults({procWith(O)}, All, Genuine);
    EXPECT_TRUE(Genuine);
  }
  // Vacuous contract: genuine (a spec bug).
  {
    ObligationResult O;
    O.Name = "p [path 1] [vacuity]";
    O.Status = SmtStatus::Unsat;
    bool All = true, Genuine = false;
    classifyResults({procWith(O)}, All, Genuine);
    EXPECT_TRUE(Genuine);
  }
  // Advisory skipped probe alongside an infra failure: still infra.
  {
    ObligationResult Skip;
    Skip.Name = "p [path 1] [vacuity skipped]";
    Skip.Status = SmtStatus::Unknown;
    Skip.Failure = FailureKind::Timeout;
    ObligationResult Infra;
    Infra.Name = "p [path 1]";
    Infra.Status = SmtStatus::Unknown;
    Infra.Failure = FailureKind::SolverCrash;
    ProcResult R;
    R.Proc = "p";
    R.Verified = false;
    R.Obligations = {Skip, Infra};
    bool All = true, Genuine = false;
    classifyResults({R}, All, Genuine);
    EXPECT_FALSE(Genuine)
        << "the advisory record must not color the exit code";
  }
  // All verified: nothing flips.
  {
    ObligationResult O;
    O.Name = "p [path 1]";
    O.Status = SmtStatus::Unsat;
    bool All = true, Genuine = false;
    classifyResults({procWith(O, /*Verified=*/true)}, All, Genuine);
    EXPECT_TRUE(All);
    EXPECT_FALSE(Genuine);
  }
}

TEST(ExitTaxonomy, QuarantinedStoreStillVerifiesCleanly) {
  // A corrupt store must cost a re-solve, never a failed run: quarantine is
  // counted, the verdict is still exit-0 verified.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.StorePath = storePath("quarantine-taxonomy");

  auto First = verifyStored(TwoProcs, Opts);
  ASSERT_EQ(First.size(), 2u);

  std::string Bytes = slurp(Opts.StorePath);
  size_t Pos = Bytes.rfind("unsat");
  ASSERT_NE(Pos, std::string::npos);
  Bytes[Pos] = 'X';
  {
    std::ofstream Out(Opts.StorePath, std::ios::trunc | std::ios::binary);
    Out << Bytes;
  }

  PoolStats Stats;
  auto Second = verifyStored(TwoProcs, Opts, &Stats);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified)
      << "corruption re-solves; it must never fail the run";
  EXPECT_EQ(Stats.StoreQuarantined, 1u);
  EXPECT_GE(Stats.StoreMisses, 1u) << "the quarantined obligation re-solved";
  bool All = true, Genuine = false;
  classifyResults(Second, All, Genuine);
  EXPECT_TRUE(All) << "exit 0, not 1: quarantine is not a disproof";
}

//===----------------------------------------------------------------------===//
// Concurrency: one store, many threads (the serve daemon's usage)
//===----------------------------------------------------------------------===//

TEST(StoreConcurrency, ParallelAppendersAndReaderNoTornRecordsLaterWins) {
  std::string P = storePath("threads");
  {
    ProofStore S;
    std::string Err;
    ASSERT_TRUE(S.open(P, Err)) << Err;

    // Two writer threads appending through ONE ProofStore — the daemon's
    // session threads — while a reader replays lookups concurrently.
    // Writers share 8 keys and each writes distinct timings, so the
    // survivor of every key must be SOME complete record (no hybrids).
    constexpr unsigned Keys = 8, Rounds = 50;
    auto Writer = [&S](unsigned Which) {
      for (unsigned R = 0; R != Rounds; ++R)
        for (unsigned K = 0; K != Keys; ++K) {
          JournalRecord Rec = mkRecord(
              "v1-th" + std::to_string(K), SmtStatus::Unsat,
              /*Seconds=*/static_cast<double>(Which * 1000 + R));
          Rec.Attempts = Which;
          S.put(Rec);
        }
    };
    std::thread W1(Writer, 1), W2(Writer, 2);
    // The reader: every hit it sees mid-flight must already be a complete,
    // self-consistent record — a Seconds value one of the writers actually
    // wrote, never a mix.
    for (unsigned Spin = 0; Spin != 2000; ++Spin) {
      const JournalRecord *Hit = S.lookup("v1-th3");
      if (!Hit)
        continue;
      unsigned Which = static_cast<unsigned>(Hit->Seconds) / 1000;
      ASSERT_TRUE(Which == 1 || Which == 2) << Hit->Seconds;
      ASSERT_EQ(Hit->Attempts, Which) << "torn record: fields from two puts";
    }
    W1.join();
    W2.join();
    EXPECT_EQ(S.size(), Keys);
  }

  // Durability: the reopened segment is fsck-clean and later-records-win
  // yields exactly the shared keys.
  StoreFsck F = ProofStore::verifySegment(P);
  EXPECT_EQ(F.TornTail, false);
  EXPECT_EQ(F.BadCrc, 0u);
  ProofStore S2;
  std::string Err;
  ASSERT_TRUE(S2.open(P, Err)) << Err;
  EXPECT_EQ(S2.quarantinedOnLoad(), 0u);
  EXPECT_EQ(S2.size(), 8u);
  for (unsigned K = 0; K != 8; ++K) {
    const JournalRecord *Hit = S2.lookup("v1-th" + std::to_string(K));
    ASSERT_NE(Hit, nullptr) << K;
    unsigned Which = static_cast<unsigned>(Hit->Seconds) / 1000;
    EXPECT_TRUE(Which == 1 || Which == 2);
    EXPECT_EQ(Hit->Attempts, Which);
  }
  std::remove(P.c_str());
}

TEST(StoreConcurrency, ReaderNeverBlocksOnOrSeesUnpublishedAppends) {
  // A lookup on a fresh thread must observe every record published before
  // the thread started (the release/acquire pair on AppendSeq), and the
  // overlay must win over the base index for re-put keys.
  std::string P = storePath("overlay");
  ProofStore S;
  std::string Err;
  ASSERT_TRUE(S.open(P, Err)) << Err;
  S.put(mkRecord("v1-ov", SmtStatus::Unsat, 1.0));
  S.put(mkRecord("v1-ov", SmtStatus::Unsat, 2.0));

  double Seen = 0;
  std::thread Reader([&] {
    const JournalRecord *Hit = S.lookup("v1-ov");
    if (Hit)
      Seen = Hit->Seconds;
  });
  Reader.join();
  EXPECT_EQ(Seen, 2.0) << "later put must win on a thread that never read "
                          "the earlier one";
  std::remove(P.c_str());
}
