//===--- journal_test.cpp - Crash-safe obligation journal ----------------------===//
//
// Exercises verifier/journal.*: JSONL record round-tripping (including the
// escaping needed for counterexample text), torn-tail tolerance, content
// keys, and the verifier's --journal/--resume behaviour — a resumed run
// must reuse journaled proofs with zero attempts and replay everything the
// journal does not prove.
//
//===----------------------------------------------------------------------===//

#include "verifier/journal.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace dryad;
using namespace dryad::test;

namespace {
/// A per-test journal path under the gtest temp dir, removed up front so
/// reruns never see a stale file.
std::string journalPath(const std::string &Name) {
  std::string P = ::testing::TempDir() + "dryad-journal-" + Name + ".jsonl";
  std::remove(P.c_str());
  return P;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}
} // namespace

//===----------------------------------------------------------------------===//
// Record serialization
//===----------------------------------------------------------------------===//

TEST(JournalRecordIO, SerializeParseRoundTrip) {
  JournalRecord R;
  R.Key = "v1-00deadbeef00cafe";
  R.Name = "insert_front [path 1]";
  R.Status = SmtStatus::Sat;
  R.Failure = FailureKind::None;
  R.Attempts = 3;
  R.DegradeLevel = 1;
  R.Seconds = 0.25;
  R.Detail = "x = 42\nk = \"quoted\\here\"\ttab\x01";

  std::string Line = Journal::serialize(R);
  EXPECT_EQ(Line.back(), '\n') << "one record per line";
  EXPECT_EQ(Line.find('\n'), Line.size() - 1)
      << "embedded newlines must be escaped, or the journal is not JSONL";

  auto P = Journal::parseLine(Line);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Key, R.Key);
  EXPECT_EQ(P->Name, R.Name);
  EXPECT_EQ(P->Status, SmtStatus::Sat);
  EXPECT_EQ(P->Failure, FailureKind::None);
  EXPECT_EQ(P->Attempts, 3u);
  EXPECT_EQ(P->DegradeLevel, 1u);
  EXPECT_NEAR(P->Seconds, 0.25, 1e-9);
  EXPECT_EQ(P->Detail, R.Detail);
}

TEST(JournalRecordIO, FailureKindRoundTrips) {
  for (FailureKind K :
       {FailureKind::None, FailureKind::Timeout, FailureKind::SolverUnknown,
        FailureKind::LoweringError, FailureKind::ResourceOut,
        FailureKind::SolverCrash, FailureKind::Injected}) {
    JournalRecord R;
    R.Key = "v1-0000000000000001";
    R.Status = SmtStatus::Unknown;
    R.Failure = K;
    auto P = Journal::parseLine(Journal::serialize(R));
    ASSERT_TRUE(P) << failureKindName(K);
    EXPECT_EQ(P->Failure, K);
  }
}

TEST(JournalRecordIO, RejectsTornAndMalformedLines) {
  JournalRecord R;
  R.Key = "v1-00deadbeef00cafe";
  R.Name = "p";
  R.Status = SmtStatus::Unsat;
  std::string Line = Journal::serialize(R);

  // Every strict prefix is a torn write and must be rejected, not
  // half-parsed: the loader's whole crash-safety story rests on this.
  for (size_t N = 0; N + 1 < Line.size(); ++N)
    EXPECT_FALSE(Journal::parseLine(Line.substr(0, N))) << "prefix len " << N;

  EXPECT_FALSE(Journal::parseLine(""));
  EXPECT_FALSE(Journal::parseLine("not json"));
  EXPECT_FALSE(Journal::parseLine("{\"status\":\"unsat\"}")) << "key required";
  EXPECT_FALSE(Journal::parseLine("{\"key\":\"v1-1\"}")) << "status required";
}

//===----------------------------------------------------------------------===//
// Content keys
//===----------------------------------------------------------------------===//

TEST(JournalKeys, StableAndSensitive) {
  std::string A = Journal::contentKey("(assert true)", "solver=z3;tactics=ufa");
  EXPECT_EQ(A, Journal::contentKey("(assert true)", "solver=z3;tactics=ufa"))
      << "same query + config must hash identically across runs";
  EXPECT_EQ(A.substr(0, 3), "v1-") << "keys are versioned";
  EXPECT_NE(A, Journal::contentKey("(assert false)", "solver=z3;tactics=ufa"))
      << "query text must contribute";
  EXPECT_NE(A, Journal::contentKey("(assert true)", "solver=z3;tactics=uf-"))
      << "tactic config must contribute";
  // The separator between the two halves is load-bearing: moving a byte
  // across the boundary must change the key.
  EXPECT_NE(Journal::contentKey("ab", "c"), Journal::contentKey("a", "bc"));
}

//===----------------------------------------------------------------------===//
// File behaviour: durability, torn tails, later-record-wins
//===----------------------------------------------------------------------===//

TEST(JournalFile, AppendSurvivesReopen) {
  std::string Path = journalPath("reopen");
  JournalRecord R;
  R.Key = "v1-000000000000abcd";
  R.Name = "p [path 1]";
  R.Status = SmtStatus::Unsat;
  R.Attempts = 2;
  {
    Journal J;
    std::string Err;
    ASSERT_TRUE(J.open(Path, /*LoadExisting=*/false, Err)) << Err;
    J.append(R);
  } // closed here; a real crash would be no worse thanks to the flush
  Journal J2;
  std::string Err;
  ASSERT_TRUE(J2.open(Path, /*LoadExisting=*/true, Err)) << Err;
  EXPECT_EQ(J2.size(), 1u);
  const JournalRecord *Hit = J2.lookup(R.Key);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Status, SmtStatus::Unsat);
  EXPECT_EQ(Hit->Attempts, 2u);
}

TEST(JournalFile, LoadSkipsTornTailAndLaterRecordsWin) {
  std::string Path = journalPath("torn");
  JournalRecord R1;
  R1.Key = "v1-0000000000000001";
  R1.Status = SmtStatus::Unknown;
  R1.Failure = FailureKind::Timeout;
  JournalRecord R2 = R1;
  R2.Status = SmtStatus::Unsat; // the retry that succeeded
  {
    std::ofstream Out(Path);
    Out << Journal::serialize(R1) << Journal::serialize(R2);
    Out << "{\"key\":\"v1-0000000000000002\",\"status\":\"uns"; // killed here
  }
  Journal J;
  std::string Err;
  ASSERT_TRUE(J.open(Path, /*LoadExisting=*/true, Err)) << Err;
  EXPECT_EQ(J.size(), 1u) << "the torn tail must be ignored";
  const JournalRecord *Hit = J.lookup(R1.Key);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Status, SmtStatus::Unsat) << "the later record wins";
}

//===----------------------------------------------------------------------===//
// Verifier integration: --journal / --resume
//===----------------------------------------------------------------------===//

namespace {
const char *TwoProcs = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
)";

std::vector<ProcResult> verifyJournaled(VerifyOptions Opts) {
  auto M = parsePrelude(TwoProcs);
  Verifier V(*M, Opts);
  EXPECT_TRUE(V.journalError().empty()) << V.journalError();
  DiagEngine D;
  return V.verifyAll(D);
}
} // namespace

TEST(VerifierJournal, ResumeReusesProofsWithZeroAttempts) {
  std::string Path = journalPath("resume");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.JournalPath = Path;

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(First[0].Verified && First[1].Verified);

  Opts.Resume = true;
  auto Second = verifyJournaled(Opts);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  size_t Obligations = 0;
  for (const ProcResult &PR : Second)
    for (const ObligationResult &O : PR.Obligations) {
      ++Obligations;
      EXPECT_TRUE(O.FromJournal) << O.Name;
      EXPECT_EQ(O.Attempts, 0u)
          << O.Name << ": a journaled proof must not be re-dispatched";
      EXPECT_EQ(O.Status, SmtStatus::Unsat);
    }
  EXPECT_GE(Obligations, 2u);
}

TEST(VerifierJournal, PartialJournalRechecksOnlyUndischarged) {
  // Simulate a run killed mid-way: journal the full module, then truncate
  // the journal to its first record. Resume must reuse exactly that proof
  // and re-dispatch the rest.
  std::string Path = journalPath("partial");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.CheckVacuity = false;
  Opts.JournalPath = Path;

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);

  std::string All = slurp(Path);
  size_t Eol = All.find('\n');
  ASSERT_NE(Eol, std::string::npos);
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << All.substr(0, Eol + 1);
  }

  Opts.Resume = true;
  auto Second = verifyJournaled(Opts);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  unsigned Reused = 0, Redispatched = 0;
  for (const ProcResult &PR : Second)
    for (const ObligationResult &O : PR.Obligations) {
      if (O.FromJournal) {
        ++Reused;
        EXPECT_EQ(O.Attempts, 0u) << O.Name;
      } else {
        ++Redispatched;
        EXPECT_GE(O.Attempts, 1u) << O.Name;
      }
    }
  EXPECT_EQ(Reused, 1u) << "only the surviving record may be reused";
  EXPECT_GE(Redispatched, 1u) << "lost obligations must be re-proved";
}

TEST(VerifierJournal, ResumeReplaysUnknownsAndUpgradesThem) {
  // First run: every dispatch is an injected timeout, so the journal holds
  // only failures. Resume must replay (not reuse) them; once re-proved, a
  // third resumed run reuses the upgraded records.
  std::string Path = journalPath("replay");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 1;
  Opts.DegradeTactics = false;
  Opts.CheckVacuity = false;
  Opts.JournalPath = Path;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("timeout@*", Err);

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_FALSE(First[0].Verified || First[1].Verified);

  Opts.Inject = FaultPlan();
  Opts.Attempts = 3;
  Opts.Resume = true;
  auto Second = verifyJournaled(Opts);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  for (const ProcResult &PR : Second)
    for (const ObligationResult &O : PR.Obligations) {
      EXPECT_FALSE(O.FromJournal)
          << O.Name << ": journaled failures must be replayed, not reused";
      EXPECT_GE(O.Attempts, 1u);
    }

  auto Third = verifyJournaled(Opts);
  for (const ProcResult &PR : Third)
    for (const ObligationResult &O : PR.Obligations)
      EXPECT_TRUE(O.FromJournal && O.Attempts == 0)
          << O.Name << ": the replay must have upgraded the journal";
}

TEST(VerifierJournal, TacticConfigChangeInvalidatesJournalHits) {
  std::string Path = journalPath("config");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.CheckVacuity = false;
  Opts.JournalPath = Path;

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);

  // Same files, different tactic set: every key changes, nothing is reused.
  Opts.Resume = true;
  Opts.Natural.Axioms = false;
  auto Second = verifyJournaled(Opts);
  for (const ProcResult &PR : Second)
    for (const ObligationResult &O : PR.Obligations)
      EXPECT_FALSE(O.FromJournal)
          << O.Name << ": a tactic change must invalidate the journal hit";
}

//===----------------------------------------------------------------------===//
// Vacuity probes across --resume
//===----------------------------------------------------------------------===//
//
// The main proof is journaled before its vacuity probe runs, so the probe's
// verdict must be journaled separately (key suffix ":vacuity") or a resumed
// run could reuse an unsat whose probe refuted the contract — flipping a
// failing run to "verified".

namespace {
/// keys(x) == K scopes only x's list under a two-structure heaplet, so the
/// precondition is unsatisfiable: every proof of this proc is vacuous.
const char *VacuousProc = R"(
proc vac(x: loc, y: loc) returns (ret: loc)
  spec (A: intset)
  requires ((list(x) * list(y)) && keys(x) == A) && y != nil
  ensures  list(ret)
{
  return x;
}
)";

size_t countProbeRecords(const std::string &Path) {
  std::ifstream In(Path);
  std::string Line;
  size_t N = 0;
  while (std::getline(In, Line))
    if (Line.find(":vacuity\"") != std::string::npos)
      ++N;
  return N;
}
} // namespace

TEST(VerifierJournalVacuity, RefutationSurvivesResume) {
  std::string Path = journalPath("vacuity-replay");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.JournalPath = Path;

  auto M = parsePrelude(VacuousProc);
  DiagEngine D1;
  auto First = Verifier(*M, Opts).verifyAll(D1);
  ASSERT_EQ(First.size(), 1u);
  EXPECT_FALSE(First[0].Verified);
  EXPECT_GE(countProbeRecords(Path), 1u)
      << "the probe's refutation must be journaled";

  Opts.Resume = true;
  DiagEngine D2;
  auto Second = Verifier(*M, Opts).verifyAll(D2);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_FALSE(Second[0].Verified)
      << "--resume must not flip a vacuous contract to verified";
  bool SawReplayed = false;
  for (const ObligationResult &O : Second[0].Obligations)
    if (O.Name.size() > 9 &&
        O.Name.compare(O.Name.size() - 9, 9, "[vacuity]") == 0) {
      SawReplayed = true;
      EXPECT_TRUE(O.FromJournal) << "the verdict is replayed, not re-probed";
      EXPECT_EQ(O.Attempts, 0u);
      EXPECT_FALSE(O.Model.empty()) << "the stored explanation must survive";
    }
  EXPECT_TRUE(SawReplayed);
}

TEST(VerifierJournalVacuity, MissingProbeRecordIsReprobedOnResume) {
  // Simulate a run killed between journaling the main unsat and probing:
  // strip the probe records, keep the proofs. Resume must re-probe and
  // re-discover the vacuous contract.
  std::string Path = journalPath("vacuity-killed");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.JournalPath = Path;

  auto M = parsePrelude(VacuousProc);
  DiagEngine D1;
  Verifier(*M, Opts).verifyAll(D1);

  std::string Kept;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find(":vacuity\"") == std::string::npos)
        Kept += Line + "\n";
  }
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << Kept;
  }
  ASSERT_EQ(countProbeRecords(Path), 0u);

  Opts.Resume = true;
  DiagEngine D2;
  auto Second = Verifier(*M, Opts).verifyAll(D2);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_FALSE(Second[0].Verified);
  bool SawReprobed = false;
  for (const ObligationResult &O : Second[0].Obligations)
    if (O.Name.size() > 9 &&
        O.Name.compare(O.Name.size() - 9, 9, "[vacuity]") == 0) {
      SawReprobed = true;
      EXPECT_FALSE(O.FromJournal)
          << "with no journaled verdict the probe must actually run";
      EXPECT_GE(O.Attempts, 1u);
    }
  EXPECT_TRUE(SawReprobed);
  EXPECT_GE(countProbeRecords(Path), 1u)
      << "the re-run probe must journal its verdict";
}

TEST(VerifierJournalVacuity, PassedProbeIsSkippedOnResume) {
  std::string Path = journalPath("vacuity-skip");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.JournalPath = Path;

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(First[0].Verified && First[1].Verified);
  size_t Before = countProbeRecords(Path);
  EXPECT_GE(Before, 1u) << "passing probes must be journaled too";

  Opts.Resume = true;
  auto Second = verifyJournaled(Opts);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  EXPECT_EQ(countProbeRecords(Path), Before)
      << "a journaled passed probe must not be re-dispatched on --resume";
}

//===----------------------------------------------------------------------===//
// Parallel runs: out-of-order completion, single-writer appends
//===----------------------------------------------------------------------===//
//
// At --jobs N obligations complete in worker-finish order, not plan order.
// Appends still happen only from the event-loop thread, so every line must
// stay parseable, and the content-keyed later-records-win format must make
// the completion order irrelevant to --resume.

TEST(VerifierJournalParallel, OutOfOrderCompletionsStayParseable) {
  std::string Path = journalPath("parallel");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.VacuityTimeoutMs = 30000;
  Opts.JournalPath = Path;
  Opts.Jobs = 4;

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(First[0].Verified && First[1].Verified);

  // Every line of the journal a 4-wide run wrote must parse on its own —
  // no interleaved or torn records.
  std::ifstream In(Path);
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(Journal::parseLine(Line + "\n")) << "unparseable: " << Line;
  }
  EXPECT_GE(Lines, 3u) << "a run of two procs journals at least 3 records";
}

TEST(VerifierJournalParallel, ResumeWithJobsReusesEveryJournaledUnsat) {
  std::string Path = journalPath("parallel-resume");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  // Oversubscribed workers must not flake the probes into advisory
  // "[vacuity skipped]" records — those would (correctly) be re-probed on
  // resume and fail the every-obligation-reused assertion below.
  Opts.VacuityTimeoutMs = 30000;
  Opts.JournalPath = Path;
  Opts.Jobs = 4;

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_TRUE(First[0].Verified && First[1].Verified);

  Opts.Resume = true;
  auto Second = verifyJournaled(Opts);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  for (const ProcResult &PR : Second)
    for (const ObligationResult &O : PR.Obligations) {
      EXPECT_TRUE(O.FromJournal)
          << O.Name << ": every unsat a parallel run journaled must be reused";
      EXPECT_EQ(O.Attempts, 0u) << O.Name;
    }
}

TEST(VerifierJournalParallel, LaterRecordsWinAcrossAnUpgradeCycle) {
  // Run 1 (4-wide): every dispatch is an injected timeout, so the journal
  // holds only failures, appended in whatever order they completed. Run 2
  // (4-wide, resumed): replays them all and appends the proofs after the
  // failures under the same keys. Run 3: the later records — the proofs —
  // must win.
  std::string Path = journalPath("parallel-upgrade");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Attempts = 1;
  Opts.DegradeTactics = false;
  Opts.CheckVacuity = false;
  Opts.JournalPath = Path;
  Opts.Jobs = 4;
  std::string Err;
  Opts.Inject = *FaultPlan::parse("timeout@*", Err);

  auto First = verifyJournaled(Opts);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_FALSE(First[0].Verified || First[1].Verified);

  Opts.Inject = FaultPlan();
  Opts.Attempts = 3;
  Opts.Resume = true;
  auto Second = verifyJournaled(Opts);
  ASSERT_EQ(Second.size(), 2u);
  EXPECT_TRUE(Second[0].Verified && Second[1].Verified);
  for (const ProcResult &PR : Second)
    for (const ObligationResult &O : PR.Obligations)
      EXPECT_FALSE(O.FromJournal)
          << O.Name << ": journaled failures must be replayed, not reused";

  auto Third = verifyJournaled(Opts);
  for (const ProcResult &PR : Third)
    for (const ObligationResult &O : PR.Obligations)
      EXPECT_TRUE(O.FromJournal && O.Attempts == 0)
          << O.Name << ": the upgraded (later) record must win on reload";
}

//===----------------------------------------------------------------------===//
// Journal merge (sharded runs)
//===----------------------------------------------------------------------===//

namespace {
JournalRecord mkRecord(const std::string &Key, SmtStatus St,
                       const std::string &Name = "p") {
  JournalRecord R;
  R.Key = Key;
  R.Name = Name;
  R.Status = St;
  if (St == SmtStatus::Unknown)
    R.Failure = FailureKind::Timeout;
  return R;
}

void writeLines(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Content;
}
} // namespace

TEST(JournalMerge, LaterRecordsWinWithinAndAcrossFiles) {
  std::string A = journalPath("merge-a"), B = journalPath("merge-b");
  std::string Out = journalPath("merge-out");
  // A: key1 fails then succeeds (retry within one shard run); key2 fails.
  writeLines(A, Journal::serialize(mkRecord("v1-0000000000000001",
                                            SmtStatus::Unknown)) +
                    Journal::serialize(
                        mkRecord("v1-0000000000000001", SmtStatus::Unsat)) +
                    Journal::serialize(
                        mkRecord("v1-0000000000000002", SmtStatus::Unknown)));
  // B (read later, so it wins conflicts): key2 succeeded here.
  writeLines(B, Journal::serialize(
                    mkRecord("v1-0000000000000002", SmtStatus::Unsat)));

  std::string Err;
  ASSERT_TRUE(Journal::mergeFiles({A, B}, Out, Err)) << Err;
  Journal J;
  ASSERT_TRUE(J.openReadOnly(Out, Err)) << Err;
  EXPECT_EQ(J.size(), 2u);
  ASSERT_NE(J.lookup("v1-0000000000000001"), nullptr);
  EXPECT_EQ(J.lookup("v1-0000000000000001")->Status, SmtStatus::Unsat)
      << "within a file, the later (retried) record wins";
  ASSERT_NE(J.lookup("v1-0000000000000002"), nullptr);
  EXPECT_EQ(J.lookup("v1-0000000000000002")->Status, SmtStatus::Unsat)
      << "across files, the later file's record wins";
}

TEST(JournalMerge, TornTailDoesNotPoisonMerge) {
  std::string A = journalPath("merge-torn-a"), B = journalPath("merge-torn-b");
  std::string Out = journalPath("merge-torn-out");
  // A crashed mid-append: a good record, then a torn half-line.
  writeLines(A, Journal::serialize(
                    mkRecord("v1-00000000000000a1", SmtStatus::Unsat)) +
                    "{\"key\":\"v1-00000000000000a2\",\"status\":\"uns");
  writeLines(B, Journal::serialize(
                    mkRecord("v1-00000000000000b1", SmtStatus::Unsat)));

  std::string Err;
  ASSERT_TRUE(Journal::mergeFiles({A, B}, Out, Err)) << Err;

  // Every line of the merged journal must parse; the torn record is gone.
  std::ifstream In(Out);
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(Journal::parseLine(Line + "\n")) << "unparseable: " << Line;
  }
  EXPECT_EQ(Lines, 2u);
  Journal J;
  ASSERT_TRUE(J.openReadOnly(Out, Err)) << Err;
  EXPECT_NE(J.lookup("v1-00000000000000a1"), nullptr);
  EXPECT_NE(J.lookup("v1-00000000000000b1"), nullptr);
  EXPECT_EQ(J.lookup("v1-00000000000000a2"), nullptr)
      << "a torn record must be dropped, not resurrected";
}

TEST(JournalMerge, VacuityRecordsSurviveTheMerge) {
  std::string A = journalPath("merge-vac-a");
  std::string Out = journalPath("merge-vac-out");
  JournalRecord Probe = mkRecord("v1-00000000000000c1:vacuity",
                                 SmtStatus::Sat, "p [vacuity]");
  writeLines(A, Journal::serialize(
                    mkRecord("v1-00000000000000c1", SmtStatus::Unsat)) +
                    Journal::serialize(Probe));
  std::string Err;
  ASSERT_TRUE(Journal::mergeFiles({A}, Out, Err)) << Err;
  Journal J;
  ASSERT_TRUE(J.openReadOnly(Out, Err)) << Err;
  ASSERT_NE(J.lookup("v1-00000000000000c1:vacuity"), nullptr)
      << "probe verdicts must survive the merge or assembly would distrust "
         "every proof";
  EXPECT_EQ(J.lookup("v1-00000000000000c1:vacuity")->Status, SmtStatus::Sat);
}

TEST(JournalMerge, MissingInputCountsAsEmpty) {
  std::string A = journalPath("merge-missing-a"); // never created
  std::string B = journalPath("merge-missing-b");
  std::string Out = journalPath("merge-missing-out");
  writeLines(B, Journal::serialize(
                    mkRecord("v1-00000000000000d1", SmtStatus::Unsat)));
  std::string Err;
  ASSERT_TRUE(Journal::mergeFiles({A, B}, Out, Err))
      << "a shard that died before its first append must not fail the "
         "merge: "
      << Err;
  Journal J;
  ASSERT_TRUE(J.openReadOnly(Out, Err)) << Err;
  EXPECT_EQ(J.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Concurrent writers (flock) and fsync
//===----------------------------------------------------------------------===//

TEST(JournalConcurrency, ForkedWritersNeverInterleaveRecords) {
  // Several processes appending to one journal file — the hand-run
  // multi-writer case flock(2) exists for. Large details maximize the
  // chance un-locked appends would tear.
  std::string Path = journalPath("flock");
  constexpr int Writers = 4, Each = 25;
  std::vector<pid_t> Pids;
  for (int W = 0; W != Writers; ++W) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      Journal J;
      std::string Err;
      if (!J.open(Path, /*LoadExisting=*/false, Err))
        _exit(1);
      for (int I = 0; I != Each; ++I) {
        JournalRecord R;
        R.Key = "v1-w" + std::to_string(W) + "-" + std::to_string(I);
        R.Name = "writer " + std::to_string(W);
        R.Status = SmtStatus::Unsat;
        R.Detail = std::string(2048, 'a' + static_cast<char>(W));
        J.append(R);
      }
      _exit(0);
    }
    Pids.push_back(Pid);
  }
  for (pid_t P : Pids) {
    int St = 0;
    ASSERT_EQ(waitpid(P, &St, 0), P);
    EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
  }

  std::ifstream In(Path);
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    ASSERT_TRUE(Journal::parseLine(Line + "\n"))
        << "interleaved/torn line: " << Line.substr(0, 80);
  }
  EXPECT_EQ(Lines, static_cast<size_t>(Writers * Each));
  Journal J;
  std::string Err;
  ASSERT_TRUE(J.openReadOnly(Path, Err)) << Err;
  EXPECT_EQ(J.size(), static_cast<size_t>(Writers * Each))
      << "every record from every writer must be present and distinct";
}

TEST(JournalFile, FsyncedAppendsReloadIdentically) {
  std::string Path = journalPath("fsync");
  {
    Journal J;
    std::string Err;
    ASSERT_TRUE(J.open(Path, /*LoadExisting=*/false, Err)) << Err;
    J.setFsync(true);
    EXPECT_GE(J.writerFd(), 0) << "the termination handler needs the raw fd";
    for (int I = 0; I != 3; ++I)
      J.append(mkRecord("v1-00000000000000e" + std::to_string(I),
                        SmtStatus::Unsat));
  }
  Journal J2;
  std::string Err;
  ASSERT_TRUE(J2.open(Path, /*LoadExisting=*/true, Err)) << Err;
  EXPECT_EQ(J2.size(), 3u);
}

TEST(VerifierJournal, UnwritableJournalIsNonFatal) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.CheckVacuity = false;
  Opts.JournalPath = "/nonexistent-dir-for-dryad-tests/j.jsonl";
  auto M = parsePrelude(TwoProcs);
  Verifier V(*M, Opts);
  EXPECT_FALSE(V.journalError().empty())
      << "the open failure must be reportable";
  DiagEngine D;
  auto R = V.verifyAll(D);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_TRUE(R[0].Verified && R[1].Verified)
      << "verification must proceed without a journal";
}
