//===--- lang_test.cpp - Program AST and module-level checks -------------------===//

#include "lang/parser.h"
#include "dryad/printer.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

TEST(Lang, FieldTableClassifiesFields) {
  auto M = parsePrelude();
  EXPECT_TRUE(M->Fields.isPointerField("next"));
  EXPECT_TRUE(M->Fields.isDataField("key"));
  EXPECT_FALSE(M->Fields.isField("nope"));
  EXPECT_EQ(M->Fields.fieldSort("next"), Sort::Loc);
  EXPECT_EQ(M->Fields.fieldSort("key"), Sort::Int);
}

TEST(Lang, FindProcByName) {
  auto M = parsePrelude(R"(
proc a(x: loc) requires true ensures true { }
proc b(x: loc) requires true ensures true { }
)");
  EXPECT_NE(M->findProc("a"), nullptr);
  EXPECT_NE(M->findProc("b"), nullptr);
  EXPECT_EQ(M->findProc("c"), nullptr);
}

TEST(Lang, ContractOnlyDeclaration) {
  auto M = parsePrelude(R"(
proc external(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret);
)");
  const Procedure *P = M->findProc("external");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->Body.empty());
}

TEST(Lang, CallStatementsParse) {
  auto M = parsePrelude(R"(
proc callee(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
proc caller(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  var r: loc;
  r := callee(x);
  callee(r);
  return r;
}
)");
  const Procedure *P = M->findProc("caller");
  ASSERT_NE(P, nullptr);
  ASSERT_GE(P->Body.size(), 3u);
  EXPECT_EQ(P->Body[0].K, Stmt::Call);
  EXPECT_EQ(P->Body[0].Var, "r");
  EXPECT_EQ(P->Body[1].K, Stmt::Call);
  EXPECT_TRUE(P->Body[1].Var.empty());
}

TEST(Lang, DuplicateDefinitionRejected) {
  Module M;
  DiagEngine D;
  bool Ok = parseModule(R"(
fields ptr next;
pred p[ptr next](x) := x == nil && emp;
pred p[ptr next](x) := x == nil && emp;
)",
                        M, D);
  EXPECT_FALSE(Ok);
}

TEST(Lang, UnknownFieldInStoreRejected) {
  Module M;
  DiagEngine D;
  bool Ok = parseModule(R"(
fields ptr next;
proc f(x: loc) requires true ensures true {
  x.bogus := nil;
}
)",
                        M, D);
  EXPECT_FALSE(Ok);
}

TEST(Lang, SuiteModulesAllParse) {
  const char *Files[] = {
      "fig6/sll.dryad",          "fig6/sorted_list.dryad",
      "fig6/dll.dryad",          "fig6/cyclic.dryad",
      "fig6/maxheap.dryad",      "fig6/bst.dryad",
      "fig6/traversals.dryad",   "fig6/schorr_waite.dryad",
      "fig7/glib_gslist.dryad",  "fig7/glib_glist.dryad",
      "fig7/openbsd_queue.dryad", "fig7/expressos_cachepage.dryad",
      "fig7/expressos_memregion.dryad", "fig7/linux_mmap.dryad",
      "negative/seeded_bugs.dryad",
  };
  for (const char *F : Files) {
    Module M;
    DiagEngine D;
    EXPECT_TRUE(parseModuleFile(suitePath(F), M, D))
        << F << ":\n"
        << D.str();
    EXPECT_FALSE(M.Procs.empty()) << F;
  }
}
