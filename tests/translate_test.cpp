//===--- translate_test.cpp - Translation T(ϕ,G) goldens ----------------------===//

#include "dryad/printer.h"
#include "translate/translate.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct TranslateTest : ::testing::Test {
  TranslateTest() : M(parsePrelude()) {}

  std::string tr(const std::string &Body) {
    Probe = parsePrelude("proc probe(x: loc, y: loc, k: int)\n"
                         "  spec (K: intset)\n"
                         "  requires " +
                         Body + "\n  ensures true\n{\n}\n");
    const Term *G = Probe->Ctx.var("G", Sort::LocSet);
    return print(
        translateDryad(Probe->Ctx, Probe->Fields, Probe->findProc("probe")->Pre, G));
  }

  std::unique_ptr<Module> M;
  std::unique_ptr<Module> Probe;
};
} // namespace

TEST_F(TranslateTest, EmpBecomesEmptyHeaplet) {
  EXPECT_EQ(tr("emp"), "G == {}");
}

TEST_F(TranslateTest, PointsToPinsSingletonHeaplet) {
  EXPECT_EQ(tr("x |-> (next: y)"),
            "G == {x} && x != nil && next(x) == y");
}

TEST_F(TranslateTest, RecursivePredicatePinsReachSet) {
  EXPECT_EQ(tr("list(x)"), "list(x) && G == reach_list(x)");
}

TEST_F(TranslateTest, PureFormulaUnchanged) {
  EXPECT_EQ(tr("x == nil && k <= 3"), "x == nil && k <= 3");
}

TEST_F(TranslateTest, ImpureComparisonPinsScope) {
  EXPECT_EQ(tr("keys(x) == K"), "keys(x) == K && G == reach_keys(x)");
}

TEST_F(TranslateTest, SepBothExactSplitsExactly) {
  std::string S = tr("list(x) * list(y)");
  EXPECT_NE(S.find("list(x) && reach_list(x) == reach_list(x)"),
            std::string::npos)
      << S; // each side evaluated on its own scope
  EXPECT_NE(S.find("union(reach_list(x), reach_list(y)) == G"),
            std::string::npos)
      << S; // exact cover of the heaplet
  EXPECT_NE(S.find("inter(reach_list(x), reach_list(y)) == {}"),
            std::string::npos)
      << S; // disjointness
}

TEST_F(TranslateTest, SepWithTrueGivesRemainderToTrue) {
  // ϕ * true: ϕ on its scope, true on the rest, scope contained in G.
  std::string S = tr("x |-> (next: y) * true");
  EXPECT_NE(S.find("{x} subset G"), std::string::npos) << S;
  EXPECT_NE(S.find("next(x) == y"), std::string::npos) << S;
}

TEST_F(TranslateTest, DisjunctionTranslatedPerDisjunct) {
  std::string S = tr("(x == nil && emp) || x |-> (next: y)");
  EXPECT_NE(S.find("x == nil && G == {}"), std::string::npos) << S;
  EXPECT_NE(S.find("G == {x}"), std::string::npos) << S;
}

TEST_F(TranslateTest, NegationPassesThrough) {
  EXPECT_EQ(tr("!(x == nil)"), "!(x == nil)");
}

TEST_F(TranslateTest, SepTranslationUsesDifferenceForNonExactTail) {
  std::string S = tr("list(x) * (keys(y) == K && true)");
  // The second operand is domain-exact via the keys comparison.
  EXPECT_NE(S.find("reach_keys(y)"), std::string::npos) << S;
}
