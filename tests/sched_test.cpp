//===--- sched_test.cpp - Parallel proof scheduler ---------------------------===//
//
// Exercises sched/pool.* and sched/dispatch.*: worker fates in a pool of 4
// are classified exactly as in sequential dispatch, one worker's death
// never takes down its siblings, deadlines are enforced from the event
// loop, queue-jumping and cancellation behave, and the verifier's `--jobs`
// / `--portfolio` paths agree with `--jobs 1` verdict for verdict.
//
//===----------------------------------------------------------------------===//

#include "sched/dispatch.h"
#include "sched/pool.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace dryad;
using namespace dryad::test;

namespace {
const char *UnsatSmt2 = R"((declare-fun x () Int)
(assert (< x 3))
(assert (> x 5))
(check-sat)
)";

const char *SatSmt2 = R"((declare-fun x () Int)
(assert (= x 42))
(check-sat)
)";

SandboxRequest quickUnsat() {
  SandboxRequest Req;
  Req.Smt2 = UnsatSmt2;
  Req.TimeoutMs = 10000;
  return Req;
}
} // namespace

//===----------------------------------------------------------------------===//
// Scheduler: fates in a pool of 4 classified exactly as sequential
//===----------------------------------------------------------------------===//

TEST(SchedPool, PoolOfFourClassifiesEveryFateLikeSequential) {
  // One crash, one rlimit death, one wedged-until-deadline worker, and one
  // honest unsat, all in flight together. Each must classify exactly as
  // solveInSandbox classifies it alone — the pool shares finishWorker with
  // the sequential path, and this pins that down.
  Scheduler Pool(4);

  SandboxRequest Crash = quickUnsat();
  Crash.Fault = SandboxFault::Crash;
  SandboxRequest Oom = quickUnsat();
  Oom.TimeoutMs = 30000;
  Oom.MemLimitMb = 64;
  Oom.Fault = SandboxFault::Oom;
  SandboxRequest Stall = quickUnsat();
  Stall.TimeoutMs = 300; // the stalling worker never answers
  Stall.Fault = SandboxFault::Stall;

  SmtResult RCrash, ROom, RStall, RUnsat;
  unsigned Fired = 0;
  Pool.submit(std::move(Crash), [&](const SmtResult &R) { RCrash = R; ++Fired; });
  Pool.submit(std::move(Oom), [&](const SmtResult &R) { ROom = R; ++Fired; });
  Pool.submit(std::move(Stall), [&](const SmtResult &R) { RStall = R; ++Fired; });
  Pool.submit(quickUnsat(), [&](const SmtResult &R) { RUnsat = R; ++Fired; });
  Pool.run();

  EXPECT_EQ(Fired, 4u);
  EXPECT_TRUE(Pool.idle());

  EXPECT_EQ(RCrash.Status, SmtStatus::Unknown);
  EXPECT_EQ(RCrash.Failure, FailureKind::SolverCrash);
  EXPECT_NE(RCrash.Detail.find("signal"), std::string::npos) << RCrash.Detail;

  EXPECT_EQ(ROom.Status, SmtStatus::Unknown);
  EXPECT_EQ(ROom.Failure, FailureKind::ResourceOut);

  EXPECT_EQ(RStall.Status, SmtStatus::Unknown);
  EXPECT_EQ(RStall.Failure, FailureKind::Timeout);
  EXPECT_NE(RStall.Detail.find("deadline"), std::string::npos) << RStall.Detail;

  // The load-bearing part: the siblings' SIGSEGV/SIGKILL changed nothing
  // for the healthy worker.
  EXPECT_EQ(RUnsat.Status, SmtStatus::Unsat);
  EXPECT_EQ(RUnsat.Failure, FailureKind::None);
}

TEST(SchedPool, SiblingCrashNeverTakesDownHealthyWorkers) {
  Scheduler Pool(4);
  SandboxRequest Crash = quickUnsat();
  Crash.Fault = SandboxFault::Crash;

  unsigned Healthy = 0;
  Pool.submit(std::move(Crash), [](const SmtResult &) {});
  for (int I = 0; I != 3; ++I) {
    SandboxRequest Req;
    Req.Smt2 = I == 0 ? SatSmt2 : UnsatSmt2;
    Req.TimeoutMs = 10000;
    SmtStatus Want = I == 0 ? SmtStatus::Sat : SmtStatus::Unsat;
    Pool.submit(std::move(Req), [&Healthy, Want](const SmtResult &R) {
      if (R.Status == Want)
        ++Healthy;
    });
  }
  Pool.run();
  EXPECT_EQ(Healthy, 3u)
      << "a SIGSEGV in one worker process must not disturb its siblings";
}

TEST(SchedPool, DeadlineEnforcedFromEventLoopWhileSiblingsRun) {
  // The wedged worker ignores its soft timeout; only the parent's event
  // loop can kill it. A healthy sibling in the same poll set must still
  // complete, and the whole run must end near the stall's deadline, not
  // hang.
  Scheduler Pool(2);
  SandboxRequest Stall = quickUnsat();
  Stall.TimeoutMs = 300;
  Stall.Fault = SandboxFault::Stall;

  SmtResult RStall, RUnsat;
  auto T0 = std::chrono::steady_clock::now();
  Pool.submit(std::move(Stall), [&](const SmtResult &R) { RStall = R; });
  Pool.submit(quickUnsat(), [&](const SmtResult &R) { RUnsat = R; });
  Pool.run();
  double Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
                    .count();

  EXPECT_EQ(RStall.Failure, FailureKind::Timeout);
  EXPECT_EQ(RUnsat.Status, SmtStatus::Unsat);
  EXPECT_LT(Secs, 10.0) << "SIGKILL must fire near the 300ms deadline";
}

TEST(SchedPool, QueueDeeperThanSlotsDrainsCompletely) {
  Scheduler Pool(2);
  unsigned Done = 0;
  for (int I = 0; I != 6; ++I)
    Pool.submit(quickUnsat(), [&Done](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
  Pool.run();
  EXPECT_EQ(Done, 6u);
  EXPECT_TRUE(Pool.idle());
}

TEST(SchedPool, SubmitFrontJumpsQueueAtOneSlot) {
  // At one slot the front-submitted follow-up must run before earlier
  // pending work — this is what makes retries and vacuity probes reproduce
  // the sequential schedule.
  Scheduler Pool(1);
  std::vector<char> Order;
  Pool.submit(quickUnsat(), [&](const SmtResult &) {
    Order.push_back('A');
    Pool.submitFront(quickUnsat(), [&](const SmtResult &) { Order.push_back('C'); });
  });
  Pool.submit(quickUnsat(), [&](const SmtResult &) { Order.push_back('B'); });
  Pool.run();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], 'A');
  EXPECT_EQ(Order[1], 'C') << "submitFront must run before older pending work";
  EXPECT_EQ(Order[2], 'B');
}

TEST(SchedPool, CancelRevokesQueuedAndKillsRunning) {
  // Queued cancel: B is revoked before it ever spawns.
  {
    Scheduler Pool(1);
    bool ACompleted = false, BCompleted = false;
    TaskId B = 0;
    Pool.submit(quickUnsat(), [&](const SmtResult &) {
      ACompleted = true;
      EXPECT_TRUE(Pool.cancel(B));
    });
    B = Pool.submit(quickUnsat(), [&BCompleted](const SmtResult &) {
      BCompleted = true;
    });
    Pool.run();
    EXPECT_TRUE(ACompleted);
    EXPECT_FALSE(BCompleted) << "a cancelled task's completion must not run";
    EXPECT_FALSE(Pool.cancel(B)) << "cancelling twice must report failure";
  }

  // Running cancel: the wedged worker is SIGKILLed mid-flight; run()
  // returns promptly instead of waiting out its 30s deadline.
  {
    Scheduler Pool(2);
    bool StallCompleted = false;
    SandboxRequest Stall = quickUnsat();
    Stall.TimeoutMs = 30000;
    Stall.Fault = SandboxFault::Stall;
    TaskId StallId = Pool.submit(
        std::move(Stall), [&StallCompleted](const SmtResult &) {
          StallCompleted = true;
        });
    Pool.submit(quickUnsat(), [&](const SmtResult &) {
      EXPECT_TRUE(Pool.cancel(StallId));
    });
    auto T0 = std::chrono::steady_clock::now();
    Pool.run();
    double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    EXPECT_FALSE(StallCompleted);
    EXPECT_LT(Secs, 10.0) << "cancel must kill the worker, not wait it out";
  }
}

//===----------------------------------------------------------------------===//
// Verifier integration: --jobs N agrees with --jobs 1, fault for fault
//===----------------------------------------------------------------------===//

namespace {
const char *ThreeProcs = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
proc drop_key(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == K
{
  var u: loc;
  u := new;
  u.next := x;
  return u;
}
)";

std::vector<ProcResult> verifyWith(VerifyOptions Opts) {
  // A 4-wide pool on a small CI box oversubscribes the CPU, and a vacuity
  // probe that times out adds an advisory "[vacuity skipped]" record that a
  // sequential run would not have. Give probes the full deadline so the
  // comparison tests compare schedules, not machine load.
  Opts.VacuityTimeoutMs = Opts.TimeoutMs;
  auto M = parsePrelude(ThreeProcs);
  DiagEngine D;
  return Verifier(*M, Opts).verifyAll(D);
}

/// Obligation-by-obligation comparison of two runs: same plan order, same
/// verdicts, same failure taxonomy.
void expectSameVerdicts(const std::vector<ProcResult> &A,
                        const std::vector<ProcResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t P = 0; P != A.size(); ++P) {
    EXPECT_EQ(A[P].Verified, B[P].Verified) << A[P].Proc;
    ASSERT_EQ(A[P].Obligations.size(), B[P].Obligations.size()) << A[P].Proc;
    for (size_t I = 0; I != A[P].Obligations.size(); ++I) {
      const ObligationResult &OA = A[P].Obligations[I];
      const ObligationResult &OB = B[P].Obligations[I];
      EXPECT_EQ(OA.Name, OB.Name) << "report order must not depend on --jobs";
      EXPECT_EQ(OA.Status, OB.Status) << OA.Name;
      EXPECT_EQ(OA.Failure, OB.Failure) << OA.Name;
    }
  }
}
} // namespace

TEST(SchedVerifier, ParallelVerdictsAndOrderMatchSequential) {
  VerifyOptions Seq;
  Seq.TimeoutMs = 30000;
  auto A = verifyWith(Seq);

  VerifyOptions Par = Seq;
  Par.Jobs = 4;
  auto B = verifyWith(Par);

  expectSameVerdicts(A, B);
  // drop_key's postcondition is genuinely false (the new head's key joins
  // the set): both schedules must agree on the refutation, not just on the
  // proofs.
  ASSERT_EQ(A.size(), 3u);
  EXPECT_TRUE(A[0].Verified && A[1].Verified);
  EXPECT_FALSE(A[2].Verified);
}

TEST(SchedVerifier, InjectedWorkerCrashClassifiedSameInPoolOfFour) {
  // crash@1 makes attempt 1 of every obligation die on a real SIGSEGV
  // inside its sandboxed worker; attempt 2 proves. A pool of 4 must
  // classify and retry exactly like the sequential sandbox run.
  std::string Err;
  VerifyOptions Seq;
  Seq.TimeoutMs = 30000;
  Seq.Isolate = true;
  Seq.Inject = *FaultPlan::parse("crash@1", Err);
  auto A = verifyWith(Seq);

  VerifyOptions Par = Seq;
  Par.Jobs = 4;
  auto B = verifyWith(Par);

  expectSameVerdicts(A, B);
  for (const std::vector<ProcResult> *Run : {&A, &B})
    for (const ProcResult &PR : *Run)
      for (const ObligationResult &O : PR.Obligations)
        if (O.Attempts != 0) // vacuity replays aside, every dispatch retried
          EXPECT_GE(O.Attempts, 2u)
              << O.Name << ": the crashed first attempt must be retried";
}

TEST(SchedVerifier, InjectedTimeoutEverywhereFailsIdentically) {
  // timeout@* is a dispatch-level short-circuit: no worker ever runs, the
  // ladder exhausts deterministically. Sequential and pooled runs must
  // produce identical attempt counts and taxonomy.
  std::string Err;
  VerifyOptions Seq;
  Seq.TimeoutMs = 30000;
  Seq.Attempts = 2;
  Seq.DegradeTactics = false;
  Seq.CheckVacuity = false;
  Seq.Inject = *FaultPlan::parse("timeout@*", Err);
  auto A = verifyWith(Seq);

  VerifyOptions Par = Seq;
  Par.Jobs = 4;
  auto B = verifyWith(Par);

  expectSameVerdicts(A, B);
  for (size_t P = 0; P != A.size(); ++P)
    for (size_t I = 0; I != A[P].Obligations.size(); ++I)
      EXPECT_EQ(A[P].Obligations[I].Attempts, B[P].Obligations[I].Attempts)
          << A[P].Obligations[I].Name;
  for (const ProcResult &PR : B) {
    EXPECT_FALSE(PR.Verified);
    for (const ObligationResult &O : PR.Obligations)
      EXPECT_EQ(O.Failure, FailureKind::Timeout) << O.Name;
  }
}

TEST(SchedVerifier, PortfolioProvesAndAgreesWithLadder) {
  VerifyOptions Seq;
  Seq.TimeoutMs = 30000;
  auto A = verifyWith(Seq);

  VerifyOptions Port = Seq;
  Port.Portfolio = true;
  auto B = verifyWith(Port);

  // The racing schedule may answer from any rung, so attempt counts are
  // not comparable — verdicts and report order are.
  expectSameVerdicts(A, B);
}

//===----------------------------------------------------------------------===//
// Warm fleet: amortization, recycling policy, warm-vs-cold parity
//===----------------------------------------------------------------------===//

TEST(SchedPool, WarmWorkerAmortizesSpawnsAcrossQueue) {
  Scheduler Pool(1); // warm by default
  unsigned Done = 0;
  for (int I = 0; I != 6; ++I)
    Pool.submit(quickUnsat(), [&Done](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
  Pool.run();
  EXPECT_EQ(Done, 6u);
  const PoolStats &S = Pool.stats();
  EXPECT_EQ(S.Served, 6u);
  EXPECT_EQ(S.WarmSpawns, 1u) << "one process must serve the whole queue";
  EXPECT_EQ(S.ColdSpawns, 0u);
  EXPECT_EQ(S.recycles(), 0u);
}

TEST(SchedPool, RecycleAfterCountReplacesWorker) {
  WarmPoolOptions WO;
  WO.RecycleAfter = 2;
  Scheduler Pool(1, WO);
  unsigned Done = 0;
  for (int I = 0; I != 5; ++I)
    Pool.submit(quickUnsat(), [&Done](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
  Pool.run();
  EXPECT_EQ(Done, 5u);
  const PoolStats &S = Pool.stats();
  // Workers retire after their 2nd answer: 2 + 2 + 1 answers = 3 spawns,
  // 2 count-recycles (the last worker retires idle, uncounted).
  EXPECT_EQ(S.WarmSpawns, 3u);
  EXPECT_EQ(S.RecycledCount, 2u);
  EXPECT_EQ(S.RecycledCrash, 0u);
  EXPECT_EQ(S.RecycledRss, 0u);
}

TEST(SchedPool, RssHighWaterReplacesWorker) {
  WarmPoolOptions WO;
  WO.RssHighWaterKb = 1; // any live process exceeds 1 KiB resident
  Scheduler Pool(1, WO);
  unsigned Done = 0;
  for (int I = 0; I != 3; ++I)
    Pool.submit(quickUnsat(), [&Done](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
  Pool.run();
  EXPECT_EQ(Done, 3u);
  const PoolStats &S = Pool.stats();
  EXPECT_EQ(S.RecycledRss, 3u)
      << "every answer must trip the 1 KiB high-water mark";
  EXPECT_EQ(S.WarmSpawns, 3u);
}

TEST(SchedPool, CrashMidRequestDoesNotPoisonQueuedObligations) {
  Scheduler Pool(1);
  SandboxRequest Crash = quickUnsat();
  Crash.Fault = SandboxFault::Crash;

  SmtResult RCrash;
  unsigned Healthy = 0;
  Pool.submit(std::move(Crash), [&RCrash](const SmtResult &R) { RCrash = R; });
  for (int I = 0; I != 3; ++I)
    Pool.submit(quickUnsat(), [&Healthy](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Healthy;
    });
  Pool.run();

  EXPECT_EQ(RCrash.Failure, FailureKind::SolverCrash);
  EXPECT_EQ(Healthy, 3u)
      << "obligations queued behind a crash must solve on a fresh worker";
  const PoolStats &S = Pool.stats();
  EXPECT_GE(S.RecycledCrash, 1u);
  EXPECT_GE(S.WarmSpawns, 2u) << "the dead worker must have been replaced";
}

TEST(SchedVerifier, WarmAndColdVerdictsMatchAtJobsFour) {
  VerifyOptions Cold;
  Cold.TimeoutMs = 30000;
  Cold.Jobs = 4;
  Cold.WarmWorkers = false;
  auto A = verifyWith(Cold);

  VerifyOptions Warm = Cold;
  Warm.WarmWorkers = true;
  auto B = verifyWith(Warm);

  expectSameVerdicts(A, B);
  ASSERT_EQ(B.size(), 3u);
  EXPECT_TRUE(B[0].Verified && B[1].Verified);
  EXPECT_FALSE(B[2].Verified) << "warm workers must preserve the refutation";
}

TEST(SchedVerifier, InjectedOomAbsorbedByWarmFleet) {
  // oom@1 kills attempt 1 of every obligation with a real rlimit death
  // inside its warm worker; the retry ladder must absorb it and converge on
  // the clean run's verdicts, with the pool replacing workers as they die.
  std::string Err;
  VerifyOptions Clean;
  Clean.TimeoutMs = 30000;
  Clean.Isolate = true;
  auto A = verifyWith(Clean);

  VerifyOptions Oom = Clean;
  Oom.Inject = *FaultPlan::parse("oom@1", Err);
  auto B = verifyWith(Oom);

  expectSameVerdicts(A, B);
}

TEST(SchedVerifier, WarmFleetAmortizationVisibleInStats) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Isolate = true;
  Opts.VacuityTimeoutMs = Opts.TimeoutMs;
  auto M = parsePrelude(ThreeProcs);
  DiagEngine D;
  Verifier V(*M, Opts);
  V.verifyAll(D);
  const PoolStats &S = V.poolStats();
  EXPECT_GT(S.Served, 0u);
  EXPECT_GT(S.WarmSpawns, 0u);
  EXPECT_LT(S.WarmSpawns, S.Served)
      << "fork count must amortize below the obligation count";
  EXPECT_EQ(S.ColdSpawns, 0u);
  EXPECT_GT(S.SolveSeconds, 0.0);
}

//===----------------------------------------------------------------------===//
// WarmFleet and the cross-thread abort machinery (the serve daemon's glue)
//===----------------------------------------------------------------------===//

TEST(SchedFleet, WorkersStayWarmAcrossSchedulersWithinAPartition) {
  WarmFleet Fleet(2);
  {
    Scheduler Pool(1, {}, &Fleet, /*Partition=*/0);
    unsigned Done = 0;
    Pool.submit(quickUnsat(), [&](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
    Pool.run();
    EXPECT_EQ(Done, 1u);
    EXPECT_EQ(Pool.stats().WarmSpawns, 1u);
  } // destruction parks the survivor in partition 0
  EXPECT_EQ(Fleet.idleCount(), 1u);

  {
    // The next scheduler on the same slot leases the parked worker: zero
    // spawns — the daemon's cross-request warmth.
    Scheduler Pool(1, {}, &Fleet, /*Partition=*/0);
    unsigned Done = 0;
    Pool.submit(quickUnsat(), [&](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
    Pool.run();
    EXPECT_EQ(Done, 1u);
    EXPECT_EQ(Pool.stats().WarmSpawns, 0u)
        << "the fleet's parked worker must be reused, not respawned";
  }

  {
    // Partition isolation: a scheduler on slot 1 must NOT see slot 0's
    // worker — worker pipes are single-owner by construction.
    Scheduler Pool(1, {}, &Fleet, /*Partition=*/1);
    unsigned Done = 0;
    Pool.submit(quickUnsat(), [&](const SmtResult &R) {
      if (R.Status == SmtStatus::Unsat)
        ++Done;
    });
    Pool.run();
    EXPECT_EQ(Pool.stats().WarmSpawns, 1u)
        << "partitions must not share worker processes";
  }

  EXPECT_EQ(Fleet.idleCount(), 2u);
  Fleet.retireAll();
  EXPECT_EQ(Fleet.idleCount(), 0u);
}

TEST(SchedAbort, CrossThreadRequestAbortStopsAStalledRunWithoutCompletions) {
  // The daemon's drain path: another thread asks a wedged run to stop. The
  // stalled worker ignores its soft timeout, so only the abort can end
  // this before the 60s deadline — and no completion may run afterwards.
  Scheduler Pool(1);
  SandboxRequest Stall = quickUnsat();
  Stall.TimeoutMs = 60000;
  Stall.Fault = SandboxFault::Stall;
  bool CompletionRan = false;
  Pool.submit(std::move(Stall),
              [&](const SmtResult &) { CompletionRan = true; });

  std::thread Aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Pool.requestAbort();
  });
  auto T0 = std::chrono::steady_clock::now();
  Pool.run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Aborter.join();

  EXPECT_EQ(Pool.abortCause(), Scheduler::AbortCause::External);
  EXPECT_FALSE(CompletionRan)
      << "an aborted task's completion must never run";
  EXPECT_LT(Secs, 10.0) << "the abort pipe must wake the poll immediately";
  EXPECT_TRUE(Pool.idle()) << "aborted work is discarded, not requeued";
}

TEST(SchedAbort, WatchedClientEofAbortsAsClientGone) {
  // The session-side half of disconnect cancellation: the scheduler polls
  // the client fd it was told to watch; EOF there kills the run.
  int Sp[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  close(Sp[1]); // the "client" hangs up before the solve finishes

  Scheduler Pool(1);
  Pool.watchClient(Sp[0]);
  SandboxRequest Stall = quickUnsat();
  Stall.TimeoutMs = 60000;
  Stall.Fault = SandboxFault::Stall;
  Pool.submit(std::move(Stall), [](const SmtResult &) {});
  auto T0 = std::chrono::steady_clock::now();
  Pool.run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  EXPECT_EQ(Pool.abortCause(), Scheduler::AbortCause::ClientGone);
  EXPECT_LT(Secs, 10.0);
  close(Sp[0]);
}

TEST(SchedAbort, AbortDeadlineBoundsARunawayRequest) {
  Scheduler Pool(1);
  Pool.setAbortDeadline(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(200));
  SandboxRequest Stall = quickUnsat();
  Stall.TimeoutMs = 60000;
  Stall.Fault = SandboxFault::Stall;
  Pool.submit(std::move(Stall), [](const SmtResult &) {});
  auto T0 = std::chrono::steady_clock::now();
  Pool.run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  EXPECT_EQ(Pool.abortCause(), Scheduler::AbortCause::Deadline);
  EXPECT_LT(Secs, 10.0) << "the per-request wall deadline must bound run()";
}
