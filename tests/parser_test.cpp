//===--- parser_test.cpp - Spec parser tests ----------------------------------===//

#include "dryad/parser.h"
#include "dryad/printer.h"
#include "dryad/typecheck.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct SpecParserTest : ::testing::Test {
  AstContext Ctx;
  FieldTable Fields;
  DefRegistry Defs;
  DiagEngine Diags;

  SpecParserTest() {
    Fields.addPointerField("next");
    Fields.addPointerField("left");
    Fields.addPointerField("right");
    Fields.addDataField("key");
  }

  const Formula *parseF(const std::string &S, VarEnv Env,
                        bool ExpectOk = true) {
    Toks = tokenize(S, Diags);
    Cur = {};
    Cur.Toks = &Toks;
    SpecParser P(Ctx, Fields, Defs, Diags, Cur);
    const Formula *F = P.parseFormula(Env);
    if (ExpectOk)
      EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    return F;
  }

  std::vector<Token> Toks;
  TokenCursor Cur;
};
} // namespace

TEST_F(SpecParserTest, ComparisonPrecedenceAndRoundTrip) {
  VarEnv Env{{"x", Sort::Loc}, {"j", Sort::Int}};
  const Formula *F = parseF("x == nil && j + 1 <= 5 || x != nil", Env);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(print(F), "x == nil && (j + 1) <= 5 || x != nil");
}

TEST_F(SpecParserTest, PointsToParses) {
  VarEnv Env{{"x", Sort::Loc}, {"y", Sort::Loc}, {"k", Sort::Int}};
  const Formula *F = parseF("x |-> (next: y, key: k)", Env);
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->kind(), Formula::FK_PointsTo);
  EXPECT_EQ(print(F), "x |-> (next: y, key: k)");
}

TEST_F(SpecParserTest, SetLiteralAndOps) {
  VarEnv Env{{"K", Sort::IntSet}, {"k", Sort::Int}};
  const Formula *F = parseF("union(K, {k}) == K && k in K", Env);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(print(F), "union(K, {k}) == K && k in K");
}

TEST_F(SpecParserTest, ScalarSetComparisonLiftsToSingleton) {
  VarEnv Env{{"K", Sort::IntSet}, {"k", Sort::Int}};
  const Formula *F = parseF("k <= K", Env);
  ASSERT_NE(F, nullptr);
  const auto *C = cast<CmpFormula>(F);
  EXPECT_EQ(C->op(), CmpFormula::SetLe);
  EXPECT_EQ(C->lhs()->kind(), Term::TK_Singleton);
}

TEST_F(SpecParserTest, MembershipKeepsScalarElement) {
  VarEnv Env{{"K", Sort::IntSet}, {"k", Sort::Int}};
  const Formula *F = parseF("k in K", Env);
  const auto *C = cast<CmpFormula>(F);
  EXPECT_EQ(C->op(), CmpFormula::In);
  EXPECT_EQ(C->lhs()->kind(), Term::TK_Var);
}

TEST_F(SpecParserTest, MixedAndStarRequiresParens) {
  VarEnv Env;
  parseF("emp && emp * emp", Env, /*ExpectOk=*/false);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(SpecParserTest, UndeclaredVariableIsAnError) {
  VarEnv Env;
  parseF("zork == nil", Env, /*ExpectOk=*/false);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(SpecParserTest, MaxMinParse) {
  VarEnv Env{{"a", Sort::Int}, {"b", Sort::Int}};
  const Formula *F = parseF("max(a, b) + min(a, 0) <= 7", Env);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(print(F), "(max(a, b) + min(a, 0)) <= 7");
}

TEST(ModuleParser, PreludeParsesAndChecks) {
  auto M = parsePrelude();
  EXPECT_NE(M->Defs.lookup("list"), nullptr);
  EXPECT_NE(M->Defs.lookup("keys"), nullptr);
  EXPECT_NE(M->Defs.lookup("bst"), nullptr);
  EXPECT_EQ(M->Defs.lookup("keys")->Result, Sort::IntSet);
  EXPECT_EQ(M->Defs.lookup("lseg")->StopParams.size(), 1u);
  DiagEngine D;
  EXPECT_TRUE(checkDefs(M->Defs, D)) << D.str();
}

TEST(ModuleParser, ProcedureBodiesAndContracts) {
  auto M = parsePrelude(R"(
proc id(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == K
{
  return x;
}
)");
  const Procedure *P = M->findProc("id");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->HasRet);
  ASSERT_EQ(P->SpecVars.size(), 1u);
  EXPECT_EQ(P->SpecVars[0].S, Sort::IntSet);
  ASSERT_EQ(P->Body.size(), 1u);
  EXPECT_EQ(P->Body[0].K, Stmt::Return);
}

TEST(ModuleParser, WhileRequiresInvariant) {
  Module M;
  DiagEngine D;
  bool Ok = parseModule(R"(
fields ptr next;
proc f(x: loc)
  requires true
  ensures true
{
  var c: loc;
  c := x;
  while (c != nil) {
    c := c.next;
  }
}
)",
                        M, D);
  EXPECT_FALSE(Ok);
}

TEST(ModuleParser, AxiomParses) {
  auto M = parsePrelude(R"(
axiom (x: loc, y: loc) : lseg(x, y) * list(y) => list(x);
)");
  ASSERT_EQ(M->Axioms.size(), 1u);
  EXPECT_EQ(M->Axioms[0].Params.size(), 2u);
  EXPECT_EQ(print(M->Axioms[0].Lhs), "lseg(x, y) * list(y)");
}

TEST(ModuleParser, StatementFormsParse) {
  auto M = parsePrelude(R"(
proc forms(x: loc, j: int) returns (ret: loc)
  requires list(x)
  ensures true
{
  var u: loc;
  var n: loc;
  var k: int;
  u := new;
  u.next := x;
  u.key := j + 1;
  n := u.next;
  k := u.key;
  free u;
  skip;
  assume n != nil;
  if (k <= 0) {
    return n;
  } else if (k == 1) {
    return nil;
  }
  return x;
}
)");
  const Procedure *P = M->findProc("forms");
  ASSERT_NE(P, nullptr);
  EXPECT_GE(P->Locals.size(), 3u);
}

TEST(ModuleParser, UnboundDefVariableIsAnError) {
  Module M;
  DiagEngine D;
  bool Ok = parseModule(R"(
fields ptr next;
fields data key;
pred bad[ptr next](x) := (x == nil && emp) || (x |-> (next: n) * bad(m));
)",
                        M, D);
  EXPECT_FALSE(Ok);
}

TEST(ModuleParser, SepUnderNegationRejected) {
  Module M;
  DiagEngine D;
  bool Ok = parseModule(R"(
fields ptr next;
pred list[ptr next](x) := (x == nil && emp) || (x |-> (next: n) * list(n));
proc f(x: loc)
  requires !(list(x) * list(x))
  ensures true
{
}
)",
                        M, D);
  EXPECT_FALSE(Ok);
}
