//===--- serve_test.cpp - Serve protocol and daemon tests ---------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// Three layers under test:
//  * the DRYS1/DRYT1 wire codec (store/wire.h): byte-counted framing that
//    round-trips arbitrary module bytes, and an incremental parser that
//    never misreads a partial or foreign buffer;
//  * the thin client (store/remote.h): bounded connect/request timeouts,
//    the retry ladder, and DRYE1 busy backoff, so a dead, wedged, or
//    saturated daemon costs milliseconds, not a hang — and never a wrong
//    verdict;
//  * the daemon itself (store/serve.h), forked as a real process: warm
//    store across requests, byte-identical reports, servedrop recovery,
//    concurrent sessions, admission control, per-request deadlines, and
//    DRYP1 health pings.
//
//===----------------------------------------------------------------------===//

#include "smt/inject.h"
#include "store/remote.h"
#include "store/serve.h"
#include "store/store.h"
#include "store/wire.h"

#include "testutil.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dryad;
using namespace dryad::test;

namespace {

std::string sockPath(const std::string &Name) {
  // Socket paths have a ~108 byte limit; TempDir may be long, so anchor the
  // names in /tmp directly.
  std::string P = "/tmp/dryad-serve-" + Name + "-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  std::remove(P.c_str());
  return P;
}

std::string tmpStore(const std::string &Name) {
  std::string P = ::testing::TempDir() + "dryad-serve-" + Name + ".seg";
  std::remove(P.c_str());
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(Wire, RequestRoundTripsArbitraryBytes) {
  ServeRequest Q;
  Q.File = "dir with spaces/m.dryad";
  // Embedded newlines, a NUL, and the frame magics themselves: byte-counted
  // framing must not care.
  Q.Source = std::string("proc p()\nDRYS1\nDRYT1\n\0tail", 25);

  std::string Frame = frameServeRequest(Q);
  EXPECT_EQ(Frame.find("DRYS1\n"), 0u);

  std::string Payload;
  size_t Consumed = 0;
  ASSERT_EQ(tryParseFrame(Frame, "DRYS1", Payload, Consumed), 1);
  EXPECT_EQ(Consumed, Frame.size());

  ServeRequest Back;
  ASSERT_TRUE(decodeServeRequest(Payload, Back));
  EXPECT_EQ(Back.File, Q.File);
  EXPECT_EQ(Back.Source, Q.Source) << "NULs and magics must survive";
}

TEST(Wire, ResponseRoundTripsEveryField) {
  ServeResponse R;
  R.Exit = 3;
  R.StoreHits = 41;
  R.StoreMisses = 7;
  R.StoreQuarantined = 2;
  R.Report = "m.dryad: 7/7 procedures verified\n";
  R.Json = "{\"exit\": 3}\n";
  R.Diag = "warning: something\n";

  std::string Payload;
  size_t Consumed = 0;
  std::string Frame = frameServeResponse(R);
  ASSERT_EQ(tryParseFrame(Frame, "DRYT1", Payload, Consumed), 1);

  ServeResponse Back;
  ASSERT_TRUE(decodeServeResponse(Payload, Back));
  EXPECT_EQ(Back.Exit, 3);
  EXPECT_EQ(Back.StoreHits, 41u);
  EXPECT_EQ(Back.StoreMisses, 7u);
  EXPECT_EQ(Back.StoreQuarantined, 2u);
  EXPECT_EQ(Back.Report, R.Report);
  EXPECT_EQ(Back.Json, R.Json);
  EXPECT_EQ(Back.Diag, R.Diag);
}

TEST(Wire, TryParseFrameIsIncremental) {
  ServeRequest Q{"f.dryad", "proc p() {}"};
  std::string Frame = frameServeRequest(Q);

  std::string Payload;
  size_t Consumed = 0;
  // Every strict prefix is "need more bytes", never an error: the reader
  // accumulates from a stream and must not give up on a short read.
  for (size_t Len = 0; Len < Frame.size(); ++Len)
    ASSERT_EQ(tryParseFrame(Frame.substr(0, Len), "DRYS1", Payload, Consumed),
              0)
        << "prefix of " << Len << " bytes";
  ASSERT_EQ(tryParseFrame(Frame, "DRYS1", Payload, Consumed), 1);

  // Trailing bytes after a complete frame are left for the next parse.
  std::string Two = Frame + "XYZ";
  ASSERT_EQ(tryParseFrame(Two, "DRYS1", Payload, Consumed), 1);
  EXPECT_EQ(Consumed, Frame.size());
}

TEST(Wire, TryParseFrameRejectsForeignBuffers) {
  std::string Payload;
  size_t Consumed = 0;
  EXPECT_EQ(tryParseFrame("GET / HTTP/1.1\r\n\r\n", "DRYS1", Payload, Consumed),
            -1)
      << "a non-protocol client must be rejected, not buffered forever";
  EXPECT_EQ(tryParseFrame("DRYT1\n4\nabcd", "DRYS1", Payload, Consumed), -1)
      << "a response frame is not a request frame";
  EXPECT_EQ(tryParseFrame("DRYS1\nnotanumber\nxx", "DRYS1", Payload, Consumed),
            -1);
}

TEST(Wire, DecodersRejectTruncation) {
  ServeRequest Q{"f.dryad", "proc p() {}"};
  std::string Frame = frameServeRequest(Q);
  std::string Payload;
  size_t Consumed = 0;
  ASSERT_EQ(tryParseFrame(Frame, "DRYS1", Payload, Consumed), 1);

  ServeRequest Back;
  for (size_t Len = 0; Len < Payload.size(); ++Len)
    EXPECT_FALSE(decodeServeRequest(Payload.substr(0, Len), Back))
        << "truncated to " << Len << " bytes: must not half-decode";
  EXPECT_FALSE(decodeServeRequest(Payload + "extra", Back))
      << "trailing garbage means a framing bug somewhere — reject it";
  ServeResponse RBack;
  EXPECT_FALSE(decodeServeResponse(Payload, RBack))
      << "a request payload is not a response payload";
}

//===----------------------------------------------------------------------===//
// Client failure ladder
//===----------------------------------------------------------------------===//

TEST(RemoteClient, DeadSocketFailsFastWithinTimeouts) {
  RemoteOptions RO;
  RO.SocketPath = sockPath("nobody-home");
  RO.ConnectTimeoutMs = 200;
  RO.RequestTimeoutMs = 200;
  RO.Retries = 1;

  struct timeval T0, T1;
  gettimeofday(&T0, nullptr);
  ServeResponse Resp;
  std::string Err;
  EXPECT_EQ(remoteVerify(RO, "f.dryad", "proc p() {}", Resp, Err),
            RemoteStatus::Error);
  gettimeofday(&T1, nullptr);
  EXPECT_FALSE(Err.empty());
  double Elapsed = (T1.tv_sec - T0.tv_sec) + (T1.tv_usec - T0.tv_usec) * 1e-6;
  EXPECT_LT(Elapsed, 2.0)
      << "2 connect attempts at 200ms each must not take seconds";
}

TEST(RemoteClient, SilentDaemonHitsTheRequestDeadline) {
  // A listener that accepts but never answers: the wedged-daemon case. The
  // client must hit RequestTimeoutMs per try, not hang.
  std::string Path = sockPath("silent");
  int LFd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(LFd, 0);
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  ASSERT_EQ(bind(LFd, reinterpret_cast<struct sockaddr *>(&Addr),
                 sizeof(Addr)),
            0)
      << strerror(errno);
  ASSERT_EQ(listen(LFd, 4), 0);

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.ConnectTimeoutMs = 500;
  RO.RequestTimeoutMs = 300;
  RO.Retries = 0;

  ServeResponse Resp;
  std::string Err;
  EXPECT_EQ(remoteVerify(RO, "f.dryad", "proc p() {}", Resp, Err),
            RemoteStatus::Error);
  EXPECT_NE(Err.find("daemon lost mid-request"), std::string::npos) << Err;

  close(LFd);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Daemon end-to-end (forked as a real process)
//===----------------------------------------------------------------------===//

namespace {

/// The daemon parses the raw source it is sent — unlike parsePrelude-based
/// tests, the request must carry its own predicate definitions.
std::string moduleText() {
  return std::string(preludeText()) + R"(
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
)";
}

/// Forks a daemon on \p Path answering \p MaxRequests requests and returns
/// its pid. The parent waits for the socket to accept before returning, so
/// tests don't race daemon startup. NOTE: that readiness probe is a real
/// accepted connection daemon-side, so serveslow@N ordinals start at 2 for
/// the first client connection.
pid_t spawnDaemon(const std::string &Path, const std::string &StorePath,
                  unsigned MaxRequests, const char *Inject = nullptr,
                  unsigned ServeJobs = 2, unsigned ReadTimeoutMs = 30000,
                  unsigned DeadlineMs = 0) {
  pid_t Pid = fork();
  if (Pid == 0) {
    ServeDaemonOptions SO;
    SO.SocketPath = Path;
    SO.MaxRequests = MaxRequests;
    SO.ServeJobs = ServeJobs;
    SO.ReadTimeoutMs = ReadTimeoutMs;
    SO.DeadlineMs = DeadlineMs;
    SO.Verify.StorePath = StorePath;
    SO.Verify.TimeoutMs = 30000;
    SO.Verify.Jobs = 2;
    if (Inject) {
      std::string Err;
      SO.Verify.Inject = *FaultPlan::parse(Inject, Err);
    }
    _exit(runServeDaemon(SO));
  }
  // Poll until the listener is up (the daemon binds before accepting).
  for (int I = 0; I < 200; ++I) {
    int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    int CR =
        connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr));
    close(Fd);
    if (CR == 0)
      return Pid;
    usleep(25 * 1000);
  }
  return Pid; // let the test fail on its own terms
}

int reapDaemon(pid_t Pid) {
  int Status = 0;
  waitpid(Pid, &Status, 0);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

TEST(ServeDaemon, WarmStoreAnswersTheSecondRequestInstantly) {
  std::string Path = sockPath("warm");
  std::string Store = tmpStore("warm");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/2);

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.Retries = 2;

  ServeResponse R1, R2;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R1, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(R1.Exit, 0) << R1.Report << R1.Diag;
  EXPECT_EQ(R1.StoreHits, 0u) << "request 1 hits a cold store";
  EXPECT_GE(R1.StoreMisses, 1u);
  EXPECT_NE(R1.Report.find("verified"), std::string::npos);

  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R2, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(R2.Exit, 0);
  EXPECT_EQ(R2.StoreMisses, 0u)
      << "the unchanged module must be answered wholly from the warm store";
  EXPECT_GE(R2.StoreHits, 1u);
  EXPECT_EQ(R2.Report, R1.Report)
      << "store hits replay recorded timings: stdout must be byte-identical";

  EXPECT_EQ(reapDaemon(Pid), 0) << "--serve-max-requests exit is clean";
  EXPECT_NE(access(Path.c_str(), F_OK), 0)
      << "the daemon must unlink its socket on the way out";
  std::remove(Store.c_str());
}

TEST(ServeDaemon, ParseErrorIsAGenuineFailureNotACrash) {
  std::string Path = sockPath("parse");
  std::string Store = tmpStore("parse");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/2);

  RemoteOptions RO;
  RO.SocketPath = Path;

  ServeResponse Bad;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "bad.dryad", "proc oops(", Bad, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(Bad.Exit, 1) << "a module that does not parse is the user's bug";
  EXPECT_FALSE(Bad.Diag.empty()) << "the parse diagnostic must reach the client";

  // The daemon survives the bad request and still serves good ones.
  ServeResponse Good;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), Good, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(Good.Exit, 0);

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, ServedropIsAbsorbedByTheClientRetryLadder) {
  std::string Path = sockPath("drop");
  std::string Store = tmpStore("drop");
  // The daemon drops request 1 on the floor; the client's retry becomes
  // request 2 and succeeds.
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/2, "servedrop@1");

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.RequestTimeoutMs = 30000;
  RO.Retries = 2;

  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << "one dropped connection must not fail the client: " << Err;
  EXPECT_EQ(R.Exit, 0);

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, SigtermUnlinksSocketAndLeavesStoreClean) {
  std::string Path = sockPath("term");
  std::string Store = tmpStore("term");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/0);

  // Populate the store through a real request first, so the flush-on-exit
  // path has bytes to lose if it is wrong.
  RemoteOptions RO;
  RO.SocketPath = Path;
  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << Err;

  kill(Pid, SIGTERM);
  int Status = 0;
  waitpid(Pid, &Status, 0);
  EXPECT_TRUE(WIFEXITED(Status))
      << "SIGTERM takes the handler's _exit path, not a signal death";

  EXPECT_NE(access(Path.c_str(), F_OK), 0)
      << "no stale socket after SIGTERM";
  StoreFsck F = ProofStore::verifySegment(Store);
  EXPECT_TRUE(F.clean()) << ProofStore::formatFsck(F)
                         << " (the store must be flushed, not torn)";
  EXPECT_GE(F.ValidRecords, 1u) << "the request's proofs were persisted";
  std::remove(Store.c_str());
}

//===----------------------------------------------------------------------===//
// Concurrency, admission control, deadlines, ping
//===----------------------------------------------------------------------===//

TEST(ServeDaemon, FourConcurrentClientsMatchSequentialBaseline) {
  std::string Path = sockPath("conc");
  std::string Store = tmpStore("conc");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/5, nullptr,
                          /*ServeJobs=*/4);

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.RequestTimeoutMs = 120000;

  // The sequential baseline: request 1 populates the store and fixes the
  // report bytes (store hits replay recorded timings).
  ServeResponse Base;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), Base, Err),
            RemoteStatus::Ok)
      << Err;
  ASSERT_EQ(Base.Exit, 0) << Base.Report << Base.Diag;

  // Four clients in flight at once, all on distinct session threads. Every
  // answer must be byte-identical to the baseline — concurrency must be
  // invisible in the output.
  ServeResponse R[4];
  RemoteStatus St[4];
  std::string Errs[4];
  std::vector<std::thread> Clients;
  for (int I = 0; I != 4; ++I)
    Clients.emplace_back([&, I] {
      St[I] = remoteVerify(RO, "m.dryad", moduleText(), R[I], Errs[I]);
    });
  for (std::thread &T : Clients)
    T.join();
  for (int I = 0; I != 4; ++I) {
    ASSERT_EQ(St[I], RemoteStatus::Ok) << "client " << I << ": " << Errs[I];
    EXPECT_EQ(R[I].Exit, 0) << "client " << I;
    EXPECT_EQ(R[I].StoreMisses, 0u)
        << "client " << I << " re-solved instead of hitting the warm store";
    EXPECT_EQ(R[I].Report, Base.Report)
        << "client " << I << " diverged from the sequential baseline";
  }

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, ServebusyRepliesRetryableAndTheClientBacksOff) {
  std::string Path = sockPath("busy");
  std::string Store = tmpStore("busy");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/2, "servebusy@1");

  // Raw wire check first: request 1 must be answered with a DRYE1 frame
  // carrying a retry hint, not a DRYT1 response and not a hangup.
  {
    int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    ASSERT_EQ(connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                      sizeof(Addr)),
              0)
        << strerror(errno);
    ASSERT_TRUE(writeFully(Fd, frameServeRequest({"m.dryad", moduleText()})));
    const char *Magics[2] = {"DRYT1", "DRYE1"};
    size_t Which = 0;
    std::string Payload, Err;
    ASSERT_TRUE(readFrameAnyOf(Fd, Magics, 2, Which, Payload, 10000, Err))
        << Err;
    EXPECT_EQ(Which, 1u) << "request 1 must get the busy frame";
    ServeBusy B;
    ASSERT_TRUE(decodeServeBusy(Payload, B));
    EXPECT_GT(B.RetryAfterMs, 0u) << "the retry hint drives client backoff";
    EXPECT_FALSE(B.Reason.empty());
    close(Fd);
  }

  // The ladder check: the client absorbs the busy reply by backing off and
  // succeeding on request 2 — never an error, never a fallback.
  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.RequestTimeoutMs = 60000;
  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << "a busy daemon must cost a backoff, not a failure: " << Err;
  EXPECT_EQ(R.Exit, 0);

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, ExhaustedBusyBudgetIsOverloadedNotError) {
  std::string Path = sockPath("overload");
  std::string Store = tmpStore("overload");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/1, "servebusy@1");

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.BusyRetries = 0; // first busy reply exhausts the budget
  ServeResponse R;
  std::string Err;
  EXPECT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Overloaded)
      << "saturation is its own status — the driver maps it to exit 3, "
         "never to fallback and never to exit 1";
  EXPECT_NE(Err.find("overloaded"), std::string::npos) << Err;

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, ServeslowConnectionCostsAFdNeverASession) {
  std::string Path = sockPath("slow");
  std::string Store = tmpStore("slow");
  // Connection ordinals: 1 is spawnDaemon's readiness probe, so serveslow@2
  // stalls the client's first connection. The daemon never reads it; its
  // 300ms read deadline closes it, the client sees the hangup and retries
  // on a fresh connection (ordinal 3), which is served normally.
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/1, "serveslow@2",
                          /*ServeJobs=*/2, /*ReadTimeoutMs=*/300);

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.RequestTimeoutMs = 60000;
  RO.Retries = 2;
  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << "a stalled connection must be cut by the read deadline and the "
         "retry must succeed: "
      << Err;
  EXPECT_EQ(R.Exit, 0);

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, PingReportsHealthWithoutConsumingRequests) {
  std::string Path = sockPath("ping");
  std::string Store = tmpStore("ping");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/1);

  RemoteOptions RO;
  RO.SocketPath = Path;

  // A ping before any request: zero served, cold store. If pings consumed
  // MaxRequests the daemon would exit before serving the verify below.
  ServeHealth H0;
  std::string Err;
  ASSERT_TRUE(remotePing(RO, H0, Err)) << Err;
  EXPECT_EQ(H0.Served, 0u);
  EXPECT_EQ(H0.StoreKeys, 0u);
  EXPECT_EQ(H0.Active, 0u);
  EXPECT_EQ(H0.Queued, 0u);

  ServeResponse R;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(R.Exit, 0);

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, PingSeesServedCountAndStoreKeysGrow) {
  std::string Path = sockPath("ping2");
  std::string Store = tmpStore("ping2");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/2);

  RemoteOptions RO;
  RO.SocketPath = Path;
  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << Err;
  ASSERT_EQ(R.Exit, 0);

  ServeHealth H;
  ASSERT_TRUE(remotePing(RO, H, Err)) << Err;
  EXPECT_EQ(H.Served, 1u);
  EXPECT_GE(H.StoreKeys, 1u) << "the request's fresh proofs are in the index";
  EXPECT_GE(H.StoreMisses, 1u);

  ServeResponse R2;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R2, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, RequestDeadlineAbortsWithInfraExitNotAHang) {
  std::string Path = sockPath("deadline");
  std::string Store = tmpStore("deadline");
  // A 1ms wall deadline fires before any obligation can complete: the
  // request must come back exit 3 (infrastructure, not a disproof) with a
  // diagnostic naming the deadline, and the daemon must stay healthy.
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/1, nullptr,
                          /*ServeJobs=*/2, /*ReadTimeoutMs=*/30000,
                          /*DeadlineMs=*/1);

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.RequestTimeoutMs = 60000;
  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << Err;
  EXPECT_EQ(R.Exit, 3) << "a deadline kill is infra trouble, never exit 1: "
                       << R.Report << R.Diag;
  EXPECT_NE(R.Diag.find("deadline"), std::string::npos) << R.Diag;

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}

TEST(ServeDaemon, ClientHangupMidSolveDoesNotWedgeTheDaemon) {
  std::string Path = sockPath("gone");
  std::string Store = tmpStore("gone");
  pid_t Pid = spawnDaemon(Path, Store, /*MaxRequests=*/2);

  // Deliver a full request, then hang up immediately: the session's
  // watched-client abort SIGKILLs its in-flight obligations and writes no
  // response. The daemon must remain fully available for the next client.
  {
    int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    ASSERT_EQ(connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                      sizeof(Addr)),
              0)
        << strerror(errno);
    ASSERT_TRUE(writeFully(Fd, frameServeRequest({"m.dryad", moduleText()})));
    close(Fd);
  }

  RemoteOptions RO;
  RO.SocketPath = Path;
  RO.RequestTimeoutMs = 60000;
  ServeResponse R;
  std::string Err;
  ASSERT_EQ(remoteVerify(RO, "m.dryad", moduleText(), R, Err),
            RemoteStatus::Ok)
      << "an abandoned request must not take the daemon with it: " << Err;
  EXPECT_EQ(R.Exit, 0);

  EXPECT_EQ(reapDaemon(Pid), 0);
  std::remove(Store.c_str());
}
