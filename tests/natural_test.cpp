//===--- natural_test.cpp - Natural proof engine tests -------------------------===//

#include "dryad/printer.h"
#include "lang/paths.h"
#include "natural/engine.h"
#include "vcgen/vc.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct NaturalTest : ::testing::Test {
  std::unique_ptr<Module> M;
  std::optional<VCond> VC;

  void buildVC(const std::string &Extra, const char *Proc,
               size_t PathIdx = 0) {
    M = parsePrelude(Extra);
    DiagEngine D;
    const Procedure *P = M->findProc(Proc);
    ASSERT_NE(P, nullptr);
    std::vector<BasicPath> Paths = extractPaths(*M, *P, D);
    ASSERT_LT(PathIdx, Paths.size());
    VCGen Gen(*M);
    VC = Gen.generate(*P, Paths[PathIdx], D);
    ASSERT_TRUE(VC);
  }
};

const char *InsertFront = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)";
} // namespace

TEST_F(NaturalTest, InstancesCollectedFromContracts) {
  buildVC(InsertFront, "insert_front");
  NaturalProof NP = buildNaturalProof(*M, *VC);
  std::set<std::string> Keys;
  for (const RecInstance &I : NP.Instances)
    Keys.insert(instanceKey(I));
  EXPECT_TRUE(Keys.count("list"));
  EXPECT_TRUE(Keys.count("keys"));
}

TEST_F(NaturalTest, UnfoldingsCoverFootprintAndBoundaries) {
  buildVC(InsertFront, "insert_front");
  NaturalProof NP = buildNaturalProof(*M, *VC);
  // Unfoldings exist for u!1 at the final timestamp and x!0 at time 0.
  bool SawNewCell = false, SawRoot = false;
  for (const Formula *F : NP.Assertions) {
    std::string S = print(F);
    if (S.find("list@1(u!1)") == 0)
      SawNewCell = true;
    if (S.find("list@0(x!0)") == 0)
      SawRoot = true;
  }
  EXPECT_TRUE(SawNewCell);
  EXPECT_TRUE(SawRoot);
}

TEST_F(NaturalTest, DisablingUnfoldRemovesUnfoldings) {
  buildVC(InsertFront, "insert_front");
  NaturalOptions Opts;
  Opts.Unfold = false;
  NaturalProof NP = buildNaturalProof(*M, *VC, Opts);
  for (const Formula *F : NP.Assertions) {
    std::string S = print(F);
    EXPECT_EQ(S.find("ite("), std::string::npos)
        << "unexpected unfolding: " << S;
  }
}

TEST_F(NaturalTest, FramesRelateTimestampsAcrossWrites) {
  buildVC(InsertFront, "insert_front");
  NaturalProof NP = buildNaturalProof(*M, *VC);
  bool SawFrame = false;
  for (const Formula *F : NP.Assertions) {
    std::string S = print(F);
    if (S.find("inter(reach_list@0(x!0), {u!1}) == {}") != std::string::npos &&
        S.find("list@1(x!0)") != std::string::npos)
      SawFrame = true;
  }
  EXPECT_TRUE(SawFrame) << "RecUnchanged instance for x across the writes";
}

TEST_F(NaturalTest, AxiomsInstantiatedOnlyWhenRelevant) {
  // A module with an lseg axiom but a contract that never mentions lseg.
  buildVC(std::string(R"(
axiom (a: loc, b: loc) : lseg(a, b) * list(b) => list(a);
)") + InsertFront,
          "insert_front");
  NaturalProof NP = buildNaturalProof(*M, *VC);
  for (const Formula *F : NP.Assertions)
    EXPECT_EQ(print(F).find("lseg"), std::string::npos)
        << "irrelevant axiom instantiated: " << print(F);
}

TEST_F(NaturalTest, RelevantAxiomInstantiatedOverFootprint) {
  buildVC(R"(
axiom (a: loc, b: loc) : lseg(a, b) * list(b) => list(a);
proc walk(x: loc) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(x) && keys(x) == K
{
  var c: loc;
  c := x;
  while (c != nil)
    invariant (lseg(x, c) * list(c))
  {
    c := c.next;
  }
  return x;
}
)",
          "walk", /*PathIdx=*/1);
  NaturalProof NP = buildNaturalProof(*M, *VC);
  bool SawAxiom = false;
  for (const Formula *F : NP.Assertions)
    if (print(F).find("!(lseg@") != std::string::npos)
      SawAxiom = true;
  EXPECT_TRUE(SawAxiom);
}

TEST_F(NaturalTest, InstanceClosureFindsShiftedStops) {
  // dll's recursion shifts the stop anchor: closure must pick up instances
  // with footprint-variable stops.
  buildVC(R"(
pred dllp[ptr next; stop p](x) :=
  (x == nil && emp) || (x |-> (next: n, prev: p) * dllp(n, x));
proc f(x: loc, p: loc) returns (ret: loc)
  requires dllp(x, p)
  ensures  dllp(ret, p)
{
  return x;
}
)",
          "f");
  NaturalProof NP = buildNaturalProof(*M, *VC);
  std::set<std::string> Keys;
  for (const RecInstance &I : NP.Instances)
    Keys.insert(instanceKey(I));
  EXPECT_TRUE(Keys.count("dllp|p!0"));
  EXPECT_TRUE(Keys.count("dllp|x!0")) << "closure over shifted stop";
}
