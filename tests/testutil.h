//===--- testutil.h - Shared fixtures for the test suite --------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef DRYAD_TESTS_TESTUTIL_H
#define DRYAD_TESTS_TESTUTIL_H

#include "lang/parser.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace dryad {
namespace test {

/// The standard specification prelude most tests share: lists and trees
/// with their key-set functions.
inline const char *preludeText() {
  return R"(
fields ptr next, prev, left, right;
fields data key;

pred list[ptr next](x) :=
  (x == nil && emp) || (x |-> (next: n) * list(n));

pred lseg[ptr next; stop u](x) :=
  (x == u && emp) || (x |-> (next: n) * lseg(n, u));

func keys[ptr next](x) : intset :=
  case (x == nil && emp) -> {};
  case (x |-> (next: n, key: k) * true) -> union(keys(n), {k});
  default -> {};

func len[ptr next](x) : int :=
  case (x == nil && emp) -> 0;
  case (x |-> (next: n) * true) -> len(n) + 1;
  default -> 0;

pred slist[ptr next](x) :=
  (x == nil && emp) ||
  (x |-> (next: n, key: k) * (slist(n) && k <= keys(n)));

pred tree[ptr left, right](x) :=
  (x == nil && emp) || (x |-> (left: l, right: r) * tree(l) * tree(r));

func tkeys[ptr left, right](x) : intset :=
  case (x == nil && emp) -> {};
  case (x |-> (left: l, right: r, key: k) * true) ->
    union(tkeys(l), {k}, tkeys(r));
  default -> {};

pred bst[ptr left, right](x) :=
  (x == nil && emp) ||
  (x |-> (left: l, right: r, key: k) *
   (bst(l) && tkeys(l) < k) * (bst(r) && k < tkeys(r)));

pred mheap[ptr left, right](x) :=
  (x == nil && emp) ||
  (x |-> (left: l, right: r, key: k) *
   (mheap(l) && k >= tkeys(l)) * (mheap(r) && k >= tkeys(r)));
)";
}

/// Parses a module consisting of the prelude plus \p Extra; aborts the test
/// on parse errors.
inline std::unique_ptr<Module> parsePrelude(const std::string &Extra = "") {
  auto M = std::make_unique<Module>();
  DiagEngine Diags;
  bool Ok = parseModule(std::string(preludeText()) + Extra, *M, Diags);
  EXPECT_TRUE(Ok) << Diags.str();
  return M;
}

/// Parses a standalone module; aborts the test on parse errors.
inline std::unique_ptr<Module> parseText(const std::string &Text) {
  auto M = std::make_unique<Module>();
  DiagEngine Diags;
  bool Ok = parseModule(Text, *M, Diags);
  EXPECT_TRUE(Ok) << Diags.str();
  return M;
}

/// Path to a file in the source-tree benchmark suite.
inline std::string suitePath(const std::string &Rel) {
  return std::string(DRYAD_SOURCE_DIR) + "/bench/suite/" + Rel;
}

} // namespace test
} // namespace dryad

#endif // DRYAD_TESTS_TESTUTIL_H
