//===--- smt_test.cpp - SMT lowering and solving tests -------------------------===//

#include "smt/solver.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct SmtTest : ::testing::Test {
  SmtTest() : M(parsePrelude()) {}
  std::unique_ptr<Module> M;

  SmtStatus checkFormulas(std::vector<const Formula *> Assume,
                          const Formula *NegatedGoal = nullptr) {
    SmtSolver S;
    S.setTimeoutMs(10000);
    for (const Formula *F : Assume)
      S.add(F);
    if (NegatedGoal)
      S.addNegated(NegatedGoal);
    return S.check().Status;
  }
};
} // namespace

TEST_F(SmtTest, PropositionalSanity) {
  AstContext &Ctx = M->Ctx;
  const Term *X = Ctx.var("x", Sort::Int);
  const Formula *Lt = Ctx.cmp(CmpFormula::Lt, X, Ctx.intConst(3));
  const Formula *Gt = Ctx.cmp(CmpFormula::Gt, X, Ctx.intConst(5));
  EXPECT_EQ(checkFormulas({Lt, Gt}), SmtStatus::Unsat);
  EXPECT_EQ(checkFormulas({Lt}), SmtStatus::Sat);
}

TEST_F(SmtTest, GoalProvingViaNegation) {
  AstContext &Ctx = M->Ctx;
  const Term *X = Ctx.var("x", Sort::Int);
  const Formula *Pos = Ctx.cmp(CmpFormula::Ge, X, Ctx.intConst(0));
  const Formula *Goal =
      Ctx.cmp(CmpFormula::Ge, Ctx.intBin(IntBinTerm::Add, X, Ctx.intConst(1)),
              Ctx.intConst(1));
  EXPECT_EQ(checkFormulas({Pos}, Goal), SmtStatus::Unsat);
}

TEST_F(SmtTest, SetOperationsBehave) {
  AstContext &Ctx = M->Ctx;
  const Term *A = Ctx.var("A", Sort::IntSet);
  const Term *B = Ctx.var("B", Sort::IntSet);
  const Term *Three = Ctx.intConst(3);
  // 3 in A, A subset B |= 3 in B.
  const Formula *InA = Ctx.cmp(CmpFormula::In, Three, A);
  const Formula *Sub = Ctx.cmp(CmpFormula::SubsetEq, A, B);
  const Formula *InB = Ctx.cmp(CmpFormula::In, Three, B);
  EXPECT_EQ(checkFormulas({InA, Sub}, InB), SmtStatus::Unsat);
  // union/diff roundtrip: (A u {3}) \ {} == A u {3}.
  const Term *U = Ctx.setUnion(A, Ctx.singleton(Three, Sort::IntSet));
  const Formula *Goal = Ctx.cmp(CmpFormula::In, Three, U);
  EXPECT_EQ(checkFormulas({}, Goal), SmtStatus::Unsat);
}

TEST_F(SmtTest, SetInequalityQuantifiers) {
  AstContext &Ctx = M->Ctx;
  const Term *A = Ctx.var("A", Sort::IntSet);
  const Term *K = Ctx.var("k", Sort::Int);
  // {k} < A and k in A is contradictory.
  const Formula *Lt =
      Ctx.cmp(CmpFormula::SetLt, Ctx.singleton(K, Sort::IntSet), A);
  const Formula *In = Ctx.cmp(CmpFormula::In, K, A);
  EXPECT_EQ(checkFormulas({Lt, In}), SmtStatus::Unsat);
  // {k} <= A and k in A is satisfiable.
  const Formula *Le =
      Ctx.cmp(CmpFormula::SetLe, Ctx.singleton(K, Sort::IntSet), A);
  EXPECT_EQ(checkFormulas({Le, In}), SmtStatus::Sat);
}

TEST_F(SmtTest, MultisetUnionAddsMultiplicities) {
  AstContext &Ctx = M->Ctx;
  const Term *E = Ctx.emptySet(Sort::IntMSet);
  const Term *S1 = Ctx.singleton(Ctx.intConst(4), Sort::IntMSet);
  const Term *U = Ctx.setBin(SetBinTerm::Union, S1, S1);
  // (m{4} u m{4}) != m{4}: multiplicity 2 vs 1.
  const Formula *Ne = Ctx.cmp(CmpFormula::Ne, U, S1);
  EXPECT_EQ(checkFormulas({}, Ne), SmtStatus::Unsat);
  // diff saturates: m{} \ m{4} == m{}.
  const Formula *DiffEmpty = Ctx.cmp(
      CmpFormula::Eq, Ctx.setBin(SetBinTerm::Diff, E, S1), E);
  EXPECT_EQ(checkFormulas({}, DiffEmpty), SmtStatus::Unsat);
}

TEST_F(SmtTest, FieldUpdateIsArrayStore) {
  AstContext &Ctx = M->Ctx;
  const Term *U = Ctx.var("u", Sort::Loc);
  const Term *V = Ctx.var("v", Sort::Loc);
  const Formula *Upd = Ctx.fieldUpdate("next", 0, 1, U, V);
  // After the update, next@1(u) == v.
  const Formula *ReadBack = Ctx.eq(
      Ctx.fieldRead("next", U, Sort::Loc, 1), V);
  EXPECT_EQ(checkFormulas({Upd}, ReadBack), SmtStatus::Unsat);
  // And other cells are unchanged.
  const Term *W = Ctx.var("w", Sort::Loc);
  const Formula *WDiff = Ctx.cmp(CmpFormula::Ne, W, U);
  const Formula *Frame = Ctx.eq(Ctx.fieldRead("next", W, Sort::Loc, 1),
                                Ctx.fieldRead("next", W, Sort::Loc, 0));
  EXPECT_EQ(checkFormulas({Upd, WDiff}, Frame), SmtStatus::Unsat);
}

TEST_F(SmtTest, RecInstancesShareReachAcrossDefs) {
  // list and keys (same pointer fields) must share one reach-set symbol.
  AstContext &Ctx = M->Ctx;
  const RecDef *List = M->Defs.lookup("list");
  const RecDef *Keys = M->Defs.lookup("keys");
  const Term *X = Ctx.var("x", Sort::Loc);
  const Formula *NonEmpty = Ctx.cmp(
      CmpFormula::Ne, Ctx.reach(List, X, {}, 0), Ctx.emptySet(Sort::LocSet));
  const Formula *Goal = Ctx.cmp(
      CmpFormula::Ne, Ctx.reach(Keys, X, {}, 0), Ctx.emptySet(Sort::LocSet));
  EXPECT_EQ(checkFormulas({NonEmpty}, Goal), SmtStatus::Unsat);
}

TEST_F(SmtTest, ModelReportedOnSat) {
  AstContext &Ctx = M->Ctx;
  const Term *X = Ctx.var("x", Sort::Int);
  const Formula *F = Ctx.cmp(CmpFormula::Gt, X, Ctx.intConst(41));
  SmtSolver S;
  S.add(F);
  SmtResult R = S.check();
  ASSERT_EQ(R.Status, SmtStatus::Sat);
  EXPECT_NE(R.ModelText.find("x = "), std::string::npos);
}

TEST_F(SmtTest, DefinitiveResultsCarryNoFailureKind) {
  AstContext &Ctx = M->Ctx;
  const Term *X = Ctx.var("x", Sort::Int);
  SmtSolver S;
  S.add(Ctx.cmp(CmpFormula::Lt, X, Ctx.intConst(3)));
  SmtResult Sat = S.check();
  EXPECT_EQ(Sat.Status, SmtStatus::Sat);
  EXPECT_EQ(Sat.Failure, FailureKind::None);
  S.add(Ctx.cmp(CmpFormula::Gt, X, Ctx.intConst(5)));
  SmtResult Unsat = S.check();
  EXPECT_EQ(Unsat.Status, SmtStatus::Unsat);
  EXPECT_EQ(Unsat.Failure, FailureKind::None);
}

TEST_F(SmtTest, LoweringErrorClassifiedWithDetail) {
  AstContext &Ctx = M->Ctx;
  SmtSolver S;
  S.add(Ctx.cmp(CmpFormula::Eq, Ctx.inf(true), Ctx.intConst(0)));
  SmtResult R = S.check();
  EXPECT_EQ(R.Status, SmtStatus::Unknown);
  EXPECT_EQ(R.Failure, FailureKind::LoweringError);
  EXPECT_NE(R.Detail.find("infinities"), std::string::npos);
}

TEST_F(SmtTest, TimeoutReArmedPerCheck) {
  // Regression for the probe/discharge timeout leak: the deadline in force
  // must be the one most recently requested, re-applied at every check().
  // A 1ms budget on a quantified goal usually trips the deadline; raising
  // the budget on the SAME solver must then let the query complete — if
  // the short timeout leaked, the second check would also be cut off.
  AstContext &Ctx = M->Ctx;
  SmtSolver S;
  const Term *A = Ctx.var("A", Sort::IntSet);
  const Term *B = Ctx.var("B", Sort::IntSet);
  const Term *K = Ctx.var("k", Sort::Int);
  S.add(Ctx.cmp(CmpFormula::SetLt, A, B));
  S.add(Ctx.cmp(CmpFormula::In, K, A));
  S.add(Ctx.cmp(CmpFormula::SetLe, B, Ctx.singleton(K, Sort::IntSet)));
  S.add(Ctx.cmp(CmpFormula::In, K, B));
  S.setTimeoutMs(1);
  SmtResult Short = S.check();
  if (Short.Status == SmtStatus::Unknown) {
    EXPECT_EQ(Short.Failure, FailureKind::Timeout);
  }
  S.setTimeoutMs(30000);
  SmtResult Long = S.check();
  EXPECT_EQ(Long.Status, SmtStatus::Unsat)
      << "second check must run under the re-armed 30s deadline, got: "
      << Long.Detail;
}

TEST_F(SmtTest, Smt2DumpContainsAssertions) {
  AstContext &Ctx = M->Ctx;
  SmtSolver S;
  S.add(Ctx.cmp(CmpFormula::Gt, Ctx.var("x", Sort::Int), Ctx.intConst(0)));
  std::string Dump = S.toSmt2();
  EXPECT_NE(Dump.find("assert"), std::string::npos);
}
