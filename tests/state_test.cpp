//===--- state_test.cpp - Program states and reach sets -----------------------===//

#include "interp/gen.h"
#include "sem/state.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
struct StateTest : ::testing::Test {
  StateTest() : M(parsePrelude()), St(M->Fields) {}
  std::unique_ptr<Module> M;
  ProgramState St;
};
} // namespace

TEST_F(StateTest, AllocateProducesFreshDistinctLocations) {
  int64_t A = St.allocate();
  int64_t B = St.allocate();
  EXPECT_NE(A, 0);
  EXPECT_NE(A, B);
  EXPECT_TRUE(St.R.count(A));
  St.deallocate(A);
  EXPECT_FALSE(St.R.count(A));
  EXPECT_TRUE(St.R.count(B));
}

TEST_F(StateTest, ReadsDefaultToZero) {
  int64_t A = St.allocate();
  EXPECT_EQ(St.read(A, "next"), 0);
  St.write(A, "next", 7);
  EXPECT_EQ(St.read(A, "next"), 7);
}

TEST_F(StateTest, ReachsetOfListIsItsNodes) {
  HeapGen Gen(St, 1);
  int64_t Head = Gen.makeList(4);
  std::set<int64_t> Reach = St.reachset(Head, {"next"}, {});
  EXPECT_EQ(Reach.size(), 4u);
  EXPECT_TRUE(Reach.count(Head));
  EXPECT_EQ(St.reachset(0, {"next"}, {}).size(), 0u);
}

TEST_F(StateTest, ReachsetStopsAtStopLocations) {
  HeapGen Gen(St, 2);
  int64_t Head = Gen.makeList(5);
  int64_t Third = St.read(St.read(Head, "next"), "next");
  std::set<int64_t> Seg = St.reachset(Head, {"next"}, {Third});
  EXPECT_EQ(Seg.size(), 2u);
  EXPECT_FALSE(Seg.count(Third));
}

TEST_F(StateTest, ReachsetOnCycleTerminates) {
  HeapGen Gen(St, 3);
  int64_t Head = Gen.makeCyclic(6);
  std::set<int64_t> Reach = St.reachset(Head, {"next"}, {});
  EXPECT_EQ(Reach.size(), 6u);
  // Segment from the successor back to (but excluding) the head.
  std::set<int64_t> Seg =
      St.reachset(St.read(Head, "next"), {"next"}, {Head});
  EXPECT_EQ(Seg.size(), 5u);
}

TEST_F(StateTest, ReachsetIncludesFrontierButDoesNotExpandIt) {
  // A node outside R is reachable (rule 1) but not expanded (rule 2).
  int64_t A = St.allocate();
  int64_t B = St.allocate();
  int64_t C = St.allocate();
  St.write(A, "next", B);
  St.write(B, "next", C);
  St.deallocate(B); // B becomes frontier
  std::set<int64_t> Reach = St.reachset(A, {"next"}, {});
  EXPECT_TRUE(Reach.count(A));
  EXPECT_TRUE(Reach.count(B));
  EXPECT_FALSE(Reach.count(C)) << "expansion through a non-R node";
  // Global mode expands everywhere.
  std::set<int64_t> Global = St.reachset(A, {"next"}, {}, /*Global=*/true);
  EXPECT_TRUE(Global.count(C));
}

TEST_F(StateTest, TreeReachFollowsBothFields) {
  HeapGen Gen(St, 4);
  int64_t Root = Gen.makeTree(7);
  std::set<int64_t> Reach = St.reachset(Root, {"left", "right"}, {});
  EXPECT_EQ(Reach.size(), 7u);
}

TEST(HeapGen, GeneratorsSatisfyShapeBasics) {
  auto M = parsePrelude();
  ProgramState St(M->Fields);
  HeapGen Gen(St, 99);
  int64_t S = Gen.makeSortedList(8);
  int64_t Prev = -1000;
  for (int64_t C = S; C != 0; C = St.read(C, "next")) {
    EXPECT_LE(Prev, St.read(C, "key"));
    Prev = St.read(C, "key");
  }
  int64_t H = Gen.makeMaxHeap(9);
  for (int64_t L : St.reachset(H, {"left", "right"}, {}))
    for (const char *Slot : {"left", "right"}) {
      int64_t Ch = St.read(L, Slot);
      if (Ch)
        EXPECT_GE(St.read(L, "key"), St.read(Ch, "key"));
    }
  int64_t D = Gen.makeDll(5);
  int64_t Last = 0;
  for (int64_t C = D; C != 0; C = St.read(C, "next")) {
    EXPECT_EQ(St.read(C, "prev"), Last);
    Last = C;
  }
  int64_t B = Gen.makeBst(12);
  // Inorder traversal of a BST yields sorted keys.
  std::vector<int64_t> Keys;
  std::function<void(int64_t)> Walk = [&](int64_t N) {
    if (!N)
      return;
    Walk(St.read(N, "left"));
    Keys.push_back(St.read(N, "key"));
    Walk(St.read(N, "right"));
  };
  Walk(B);
  EXPECT_TRUE(std::is_sorted(Keys.begin(), Keys.end()));
}
