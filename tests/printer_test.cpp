//===--- printer_test.cpp - Pretty-printer goldens -----------------------------===//

#include "dryad/printer.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

TEST(Printer, DefinitionsRoundTripThroughPrinting) {
  auto M = parsePrelude();
  const RecDef *List = M->Defs.lookup("list");
  EXPECT_EQ(print(*List),
            "pred list[next](x) := x == nil && emp || x |-> (next: n) * "
            "list(n)");
  const RecDef *Keys = M->Defs.lookup("keys");
  std::string S = print(*Keys);
  EXPECT_NE(S.find("func keys[next](x) : intset :="), std::string::npos);
  EXPECT_NE(S.find("case x == nil && emp -> {};"), std::string::npos);
  EXPECT_NE(S.find("union(keys(n), {k})"), std::string::npos);
}

TEST(Printer, StopParametersShown) {
  auto M = parsePrelude();
  std::string S = print(*M->Defs.lookup("lseg"));
  EXPECT_NE(S.find("pred lseg[next; u](x)"), std::string::npos);
}

TEST(Printer, TermForms) {
  AstContext Ctx;
  EXPECT_EQ(print(Ctx.nil()), "nil");
  EXPECT_EQ(print(Ctx.intConst(-3)), "-3");
  EXPECT_EQ(print(Ctx.inf(true)), "inf");
  EXPECT_EQ(print(Ctx.emptySet(Sort::IntMSet)), "m{}");
  EXPECT_EQ(print(Ctx.singleton(Ctx.intConst(4), Sort::IntMSet)), "m{4}");
  EXPECT_EQ(print(Ctx.setBin(SetBinTerm::Diff,
                             Ctx.var("A", Sort::IntSet),
                             Ctx.var("B", Sort::IntSet))),
            "diff(A, B)");
}

TEST(Printer, StampedNodesShowTimestamps) {
  auto M = parsePrelude();
  AstContext &Ctx = M->Ctx;
  const RecDef *List = M->Defs.lookup("list");
  const Term *X = Ctx.var("x", Sort::Loc);
  const Formula *F = Ctx.recPred(List, X, {}, /*Time=*/3);
  EXPECT_EQ(print(F), "list@3(x)");
  const Term *R = Ctx.reach(List, X, {}, /*Time=*/1);
  EXPECT_EQ(print(R), "reach_list@1(x)");
  const Term *FR = Ctx.fieldRead("next", X, Sort::Loc, /*Version=*/2);
  EXPECT_EQ(print(FR), "next@2(x)");
}

TEST(Printer, FieldUpdateRendering) {
  AstContext Ctx;
  const Formula *F = Ctx.fieldUpdate("next", 0, 1, Ctx.var("u", Sort::Loc),
                                     Ctx.nil());
  EXPECT_EQ(print(F), "next@1 = store(next@0, u, nil)");
}

TEST(Printer, PrecedenceParenthesization) {
  AstContext Ctx;
  const Formula *A = Ctx.cmp(CmpFormula::Eq, Ctx.var("x", Sort::Loc), Ctx.nil());
  const Formula *B = Ctx.cmp(CmpFormula::Ne, Ctx.var("y", Sort::Loc), Ctx.nil());
  const Formula *C = Ctx.cmp(CmpFormula::Eq, Ctx.var("z", Sort::Loc), Ctx.nil());
  const Formula *F = Ctx.conj2(Ctx.disj({A, B}), C);
  EXPECT_EQ(print(F), "(x == nil || y != nil) && z == nil");
}
