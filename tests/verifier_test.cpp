//===--- verifier_test.cpp - End-to-end verifier tests -------------------------===//

#include "verifier/report.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace dryad;
using namespace dryad::test;

namespace {
std::vector<ProcResult> verify(const std::string &Extra,
                               VerifyOptions Opts = {}) {
  auto M = parsePrelude(Extra);
  if (Opts.TimeoutMs == 60000)
    Opts.TimeoutMs = 30000;
  Verifier V(*M, Opts);
  DiagEngine D;
  return V.verifyAll(D);
}
} // namespace

TEST(Verifier, ProvesListInsertFront) {
  auto R = verify(R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)");
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Verified);
}

TEST(Verifier, RejectsWrongPostconditionWithModel) {
  auto R = verify(R"(
proc wrong(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == K
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)");
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  bool SawModel = false;
  for (const ObligationResult &O : R[0].Obligations)
    SawModel |= (O.Status == SmtStatus::Sat && !O.Model.empty());
  EXPECT_TRUE(SawModel);
}

TEST(Verifier, FlagsVacuousContracts) {
  // keys(x) == K under && with a two-structure heaplet: the scope of the
  // comparison is only x's list, so the precondition is unsatisfiable and
  // the "proof" is vacuous. The vacuity probe must catch it.
  auto R = verify(R"(
proc vac(x: loc, y: loc) returns (ret: loc)
  spec (A: intset)
  requires ((list(x) * list(y)) && keys(x) == A) && y != nil
  ensures  list(ret)
{
  return x;
}
)");
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified);
  bool SawVacuity = false;
  for (const ObligationResult &O : R[0].Obligations)
    SawVacuity |= O.Name.find("[vacuity]") != std::string::npos;
  EXPECT_TRUE(SawVacuity);
}

TEST(Verifier, CallSitePreconditionViolationDetected) {
  auto R = verify(R"(
proc needs_nonnil(x: loc)
  requires list(x) && x != nil
  ensures  list(x)
{
}
proc caller(x: loc)
  requires list(x)
  ensures  list(x)
{
  needs_nonnil(x);
}
)");
  ASSERT_EQ(R.size(), 2u);
  EXPECT_TRUE(R[0].Verified);
  EXPECT_FALSE(R[1].Verified) << "cannot prove x != nil at the call";
}

TEST(Verifier, AblationUnfoldIsLoadBearing) {
  const char *Prog = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
)";
  VerifyOptions NoUnfold;
  NoUnfold.TimeoutMs = 10000;
  NoUnfold.Natural.Unfold = false;
  NoUnfold.CheckVacuity = false;
  auto R = verify(Prog, NoUnfold);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Verified) << "without unfolding the goal is unprovable";
}

TEST(Verifier, ReportFormatsTables) {
  auto R = verify(R"(
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
)");
  std::string Table = formatResults("title", R, {{"id", -1.0}});
  EXPECT_NE(Table.find("title"), std::string::npos);
  EXPECT_NE(Table.find("id"), std::string::npos);
  EXPECT_NE(Table.find("verified"), std::string::npos);
  EXPECT_NE(Table.find("1/1 routines verified"), std::string::npos);
}
