//===--- shard_test.cpp - Sharded verification ------------------------------===//
//
// Exercises sched/shard.* and the verifier's shard/assembly modes: the
// content-keyed partition (deterministic, disjoint, complete), journal
// merge + report assembly matching an unsharded run, the soundness rules
// for missing records (a lost shard's obligations and unprobed proofs must
// surface as failures, never be trusted), and the ShardSupervisor's
// crash/stall retry machinery with fake shard drivers.
//
//===----------------------------------------------------------------------===//

#include "sched/shard.h"
#include "verifier/journal.h"
#include "verifier/verifier.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include <signal.h>
#include <unistd.h>

using namespace dryad;
using namespace dryad::test;

namespace {

std::string shardPath(const std::string &Name) {
  std::string P = ::testing::TempDir() + "dryad-shard-" + Name + ".jsonl";
  std::remove(P.c_str());
  return P;
}

const char *TwoProcs = R"(
proc insert_front(x: loc, k: int) returns (ret: loc)
  spec (K: intset)
  requires list(x) && keys(x) == K
  ensures  list(ret) && keys(ret) == union(K, {k})
{
  var u: loc;
  u := new;
  u.next := x;
  u.key := k;
  return u;
}
proc id(x: loc) returns (ret: loc)
  requires list(x)
  ensures  list(ret)
{
  return x;
}
)";

std::vector<ProcResult> verifyWith(Module &M, const VerifyOptions &Opts) {
  Verifier V(M, Opts);
  EXPECT_TRUE(V.journalError().empty()) << V.journalError();
  DiagEngine D;
  return V.verifyAll(D);
}

/// Distinct non-probe keys in a journal file.
std::unordered_set<std::string> mainKeysOf(const std::string &Path) {
  std::unordered_set<std::string> Keys;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    auto R = Journal::parseLine(Line);
    if (R && R->Key.find(":vacuity") == std::string::npos)
      Keys.insert(R->Key);
  }
  return Keys;
}

size_t totalObligations(const std::vector<ProcResult> &Results) {
  size_t N = 0;
  for (const ProcResult &PR : Results)
    N += PR.Obligations.size();
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Partition function
//===----------------------------------------------------------------------===//

TEST(ShardPartition, DeterministicAndInRange) {
  for (unsigned N : {1u, 2u, 3u, 7u}) {
    for (const char *Key : {"v1-0011223344556677", "v1-deadbeefcafebabe",
                            "v1-0000000000000000"}) {
      unsigned S = shardOf(Key, N);
      EXPECT_LT(S, N);
      EXPECT_EQ(S, shardOf(Key, N)) << "the partition must be a pure function";
    }
  }
  EXPECT_EQ(shardOf("anything", 1), 0u);
}

TEST(ShardPartition, SpreadsKeysAcrossShards) {
  // Not a distribution-quality test — just that the hash does not collapse
  // every key onto one shard.
  std::unordered_set<unsigned> Seen;
  for (int I = 0; I != 64; ++I)
    Seen.insert(shardOf("v1-key-" + std::to_string(I), 4));
  EXPECT_GT(Seen.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Shard filter: disjoint, complete, merge-assembles to the unsharded run
//===----------------------------------------------------------------------===//

TEST(ShardedVerifier, SlicesAreDisjointCompleteAndReassemble) {
  auto M = parsePrelude(TwoProcs);

  // Ground truth: the unsharded run.
  VerifyOptions Base;
  Base.TimeoutMs = 30000;
  Base.VacuityTimeoutMs = 30000;
  auto Full = verifyWith(*M, Base);
  ASSERT_EQ(Full.size(), 2u);
  EXPECT_TRUE(Full[0].Verified && Full[1].Verified);
  size_t Total = totalObligations(Full);

  // One run per shard, each with its own journal.
  std::string J0 = shardPath("slice0"), J1 = shardPath("slice1");
  size_t InShard = 0, OutOfShard = 0;
  for (unsigned S = 0; S != 2; ++S) {
    VerifyOptions Opts = Base;
    Opts.ShardCount = 2;
    Opts.ShardIndex = S;
    Opts.JournalPath = S == 0 ? J0 : J1;
    Verifier V(*M, Opts);
    ASSERT_TRUE(V.journalError().empty()) << V.journalError();
    DiagEngine D;
    auto Results = V.verifyAll(D);
    ASSERT_EQ(Results.size(), 2u);
    for (const ProcResult &PR : Results) {
      InShard += PR.Obligations.size();
      OutOfShard += PR.OutOfShard;
    }
    // The plan-time slice tally must agree with what was dispatched.
    ASSERT_EQ(V.shardSliceCounts().size(), 2u);
    EXPECT_EQ(V.shardSliceCounts()[0] + V.shardSliceCounts()[1], Total);
  }
  // Every obligation ran on exactly one shard.
  EXPECT_EQ(InShard, Total);
  EXPECT_EQ(OutOfShard, Total) << "each obligation is out-of-shard exactly "
                                  "once across two complementary runs";
  auto K0 = mainKeysOf(J0), K1 = mainKeysOf(J1);
  for (const std::string &K : K0)
    EXPECT_EQ(K1.count(K), 0u) << "slices must be disjoint: " << K;

  // Merge + assemble must reproduce the unsharded run's verdicts.
  std::string Merged = shardPath("slice-merged");
  std::string Err;
  ASSERT_TRUE(Journal::mergeFiles({J0, J1}, Merged, Err)) << Err;

  VerifyOptions Asm = Base;
  Asm.JournalPath = Merged;
  Asm.AssembleFromJournal = true;
  auto Assembled = verifyWith(*M, Asm);
  ASSERT_EQ(Assembled.size(), Full.size());
  for (size_t P = 0; P != Full.size(); ++P) {
    EXPECT_EQ(Assembled[P].Verified, Full[P].Verified);
    ASSERT_EQ(Assembled[P].Obligations.size(), Full[P].Obligations.size());
    for (size_t O = 0; O != Full[P].Obligations.size(); ++O) {
      EXPECT_EQ(Assembled[P].Obligations[O].Name, Full[P].Obligations[O].Name);
      EXPECT_EQ(Assembled[P].Obligations[O].Status,
                Full[P].Obligations[O].Status);
      EXPECT_FALSE(Assembled[P].Obligations[O].FromJournal)
          << "assembly mimics the live run's report, not a resume";
    }
  }
}

TEST(ShardedVerifier, ShardModeWithoutJournalRefusesNothingButDispatchesAll) {
  // ShardCount > 1 without an open journal cannot compute keys, so no
  // obligation can be skipped — the run degrades to a full (correct) one.
  // dryadv refuses this combination up front; the library stays safe.
  auto M = parsePrelude(TwoProcs);
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.ShardCount = 2;
  Opts.ShardIndex = 1;
  auto R = verifyWith(*M, Opts);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_TRUE(R[0].Verified && R[1].Verified);
  EXPECT_EQ(R[0].OutOfShard + R[1].OutOfShard, 0u);
}

//===----------------------------------------------------------------------===//
// Assembly soundness: missing records fail, never verify
//===----------------------------------------------------------------------===//

TEST(ShardedVerifier, AssemblyReportsLostShardObligationsAsInfra) {
  auto M = parsePrelude(TwoProcs);
  std::string J0 = shardPath("lost0");

  // Only shard 0 of 2 ever ran: shard 1's slice has no records.
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.VacuityTimeoutMs = 30000;
  Opts.ShardCount = 2;
  Opts.ShardIndex = 0;
  Opts.JournalPath = J0;
  auto Partial = verifyWith(*M, Opts);
  size_t Skipped = Partial[0].OutOfShard + Partial[1].OutOfShard;
  if (Skipped == 0)
    GTEST_SKIP() << "every obligation hashed to shard 0; nothing to lose";

  VerifyOptions Asm;
  Asm.TimeoutMs = 30000;
  Asm.JournalPath = J0;
  Asm.AssembleFromJournal = true;
  auto Assembled = verifyWith(*M, Asm);
  size_t Missing = 0;
  bool AnyProcFailed = false;
  for (const ProcResult &PR : Assembled) {
    AnyProcFailed |= !PR.Verified;
    for (const ObligationResult &O : PR.Obligations)
      if (O.Status == SmtStatus::Unknown &&
          O.FailureDetail.find("no journaled outcome") != std::string::npos) {
        ++Missing;
        EXPECT_EQ(O.Failure, FailureKind::SolverCrash)
            << "lost-shard obligations are infrastructure failures";
      }
  }
  EXPECT_EQ(Missing, Skipped)
      << "every obligation of the lost shard must surface as missing";
  EXPECT_TRUE(AnyProcFailed)
      << "a partial journal must never assemble into a clean pass";
}

TEST(ShardedVerifier, AssemblyRefusesProofWithoutVacuityVerdict) {
  // A journaled unsat whose vacuity probe record is missing (the shard died
  // between journaling the proof and probing the contract) cannot be
  // re-probed during assembly — it must fail the procedure, exactly like
  // the resume path would re-probe rather than trust it.
  auto M = parsePrelude(TwoProcs);
  std::string Path = shardPath("unprobed");
  VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.VacuityTimeoutMs = 30000;
  Opts.JournalPath = Path;
  auto Full = verifyWith(*M, Opts);
  EXPECT_TRUE(Full[0].Verified && Full[1].Verified);

  // Strip the probe records, keep the proofs.
  std::string Kept;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find(":vacuity\"") == std::string::npos)
        Kept += Line + "\n";
  }
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << Kept;
  }

  VerifyOptions Asm;
  Asm.TimeoutMs = 30000;
  Asm.JournalPath = Path;
  Asm.AssembleFromJournal = true;
  auto Assembled = verifyWith(*M, Asm);
  bool SawUnresolved = false;
  for (const ProcResult &PR : Assembled)
    for (const ObligationResult &O : PR.Obligations)
      if (O.Name.find("[vacuity unresolved]") != std::string::npos) {
        SawUnresolved = true;
        EXPECT_EQ(O.Status, SmtStatus::Unknown);
        EXPECT_EQ(O.Failure, FailureKind::SolverCrash);
        EXPECT_FALSE(PR.Verified)
            << "an unvalidated contract must fail its procedure";
      }
  EXPECT_TRUE(SawUnresolved)
      << "assembly must flag journaled proofs with no probe verdict";
}

//===----------------------------------------------------------------------===//
// ShardSupervisor: crash retry, stall detection, retry-cap, injection
//===----------------------------------------------------------------------===//
//
// The supervisor only needs a ShardFn that behaves like a shard driver:
// append journal records, then exit/crash/hang. Faking it keeps these tests
// solver-free and fast, and makes every fate deterministic.

namespace {

void appendFakeRecord(const std::string &Path, const std::string &Key) {
  Journal J;
  std::string Err;
  ASSERT_TRUE(J.open(Path, /*LoadExisting=*/false, Err)) << Err;
  JournalRecord R;
  R.Key = Key;
  R.Name = "fake " + Key;
  R.Status = SmtStatus::Unsat;
  J.append(R);
}

} // namespace

TEST(ShardSupervisorTest, CrashedShardIsRetriedWithSurvivingJournal) {
  std::string J0 = shardPath("sup-crash0");
  ShardSupervisorOptions O;
  O.Shards = 1;
  O.MaxRetries = 2;
  O.StallMs = 30000;
  O.ShardJournals = {J0};
  ShardSupervisor Sup(O, [&](unsigned, bool Resuming) -> int {
    appendFakeRecord(J0, "v1-0000000000000001");
    if (!Resuming) {
      signal(SIGSEGV, SIG_DFL);
      raise(SIGSEGV); // first launch dies after one journaled obligation
    }
    appendFakeRecord(J0, "v1-0000000000000002");
    return 0;
  });
  EXPECT_TRUE(Sup.run());
  const ShardStat &S = Sup.stats()[0];
  EXPECT_TRUE(S.Completed);
  EXPECT_EQ(S.Launches, 2u);
  EXPECT_EQ(S.Crashes, 1u);
  EXPECT_EQ(S.RecoveredRecords, 1u)
      << "the record journaled before the crash must be counted as recovered";
  EXPECT_EQ(S.ExitCode, 0);
  EXPECT_EQ(mainKeysOf(J0).size(), 2u)
      << "the retry appends to the surviving journal, not over it";
}

TEST(ShardSupervisorTest, GenuineFailureExitIsCompletionNotCrash) {
  // Exit 1 (disproof) and 3 (infra) are the shard driver *finishing*; only
  // abnormal deaths may burn retries.
  std::string J0 = shardPath("sup-exit1");
  ShardSupervisorOptions O;
  O.Shards = 1;
  O.StallMs = 30000;
  O.ShardJournals = {J0};
  ShardSupervisor Sup(O, [&](unsigned, bool) -> int { return 1; });
  EXPECT_TRUE(Sup.run());
  EXPECT_TRUE(Sup.stats()[0].Completed);
  EXPECT_EQ(Sup.stats()[0].Launches, 1u);
  EXPECT_EQ(Sup.stats()[0].ExitCode, 1);
}

TEST(ShardSupervisorTest, HungShardIsKilledAndRetried) {
  std::string J0 = shardPath("sup-stall0");
  ShardSupervisorOptions O;
  O.Shards = 1;
  O.MaxRetries = 1;
  O.StallMs = 300; // declare a hang after 300ms of journal silence
  O.ShardJournals = {J0};
  ShardSupervisor Sup(O, [&](unsigned, bool Resuming) -> int {
    if (!Resuming)
      for (int I = 0; I != 300; ++I)
        usleep(100000); // wedge without journaling; the supervisor must act
    return 0;
  });
  EXPECT_TRUE(Sup.run());
  const ShardStat &S = Sup.stats()[0];
  EXPECT_TRUE(S.Completed);
  EXPECT_EQ(S.Launches, 2u);
  EXPECT_GE(S.Stalls, 1u) << "the kill must be attributed to the heartbeat";
}

TEST(ShardSupervisorTest, ShardLostAfterRetryCapYieldsPartialRun) {
  std::string J0 = shardPath("sup-lost0");
  ShardSupervisorOptions O;
  O.Shards = 1;
  O.MaxRetries = 1;
  O.StallMs = 30000;
  O.ShardJournals = {J0};
  ShardSupervisor Sup(O, [&](unsigned, bool) -> int {
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
    return 0;
  });
  EXPECT_FALSE(Sup.run()) << "an unrecoverable shard degrades the run";
  const ShardStat &S = Sup.stats()[0];
  EXPECT_FALSE(S.Completed);
  EXPECT_EQ(S.Launches, 2u) << "1 launch + MaxRetries relaunches";
  EXPECT_EQ(S.Crashes, 2u);
}

TEST(ShardSupervisorTest, InjectedCrashKillsNamedShardOnceAfterFirstRecord) {
  std::string J0 = shardPath("sup-inject0");
  ShardSupervisorOptions O;
  O.Shards = 1;
  O.MaxRetries = 2;
  O.StallMs = 30000;
  O.ShardJournals = {J0};
  std::string Err;
  O.Inject = *FaultPlan::parse("crash@1", Err); // crash@<1-based shard index>
  ShardSupervisor Sup(O, [&](unsigned, bool Resuming) -> int {
    appendFakeRecord(J0, "v1-00000000000000aa");
    if (!Resuming)
      for (int I = 0; I != 300; ++I)
        usleep(100000); // stay alive so the supervisor's SIGKILL is what ends us
    return 0;
  });
  EXPECT_TRUE(Sup.run());
  const ShardStat &S = Sup.stats()[0];
  EXPECT_TRUE(S.Completed);
  EXPECT_EQ(S.Launches, 2u) << "injected kill fires exactly once, then the "
                               "relaunch must be left alone";
  EXPECT_EQ(S.Crashes, 1u);
  EXPECT_EQ(S.RecoveredRecords, 1u);
}

TEST(ShardSupervisorTest, MultipleShardsRunToCompletion) {
  std::string J0 = shardPath("sup-multi0"), J1 = shardPath("sup-multi1");
  ShardSupervisorOptions O;
  O.Shards = 2;
  O.StallMs = 30000;
  O.ShardJournals = {J0, J1};
  ShardSupervisor Sup(O, [&](unsigned Shard, bool) -> int {
    appendFakeRecord(Shard == 0 ? J0 : J1,
                     "v1-000000000000000" + std::to_string(Shard));
    return Shard == 0 ? 0 : 3; // one clean, one infra-flaky — both complete
  });
  EXPECT_TRUE(Sup.run());
  EXPECT_TRUE(Sup.stats()[0].Completed && Sup.stats()[1].Completed);
  EXPECT_EQ(Sup.stats()[0].ExitCode, 0);
  EXPECT_EQ(Sup.stats()[1].ExitCode, 3);
}
