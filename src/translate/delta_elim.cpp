//===--- delta_elim.cpp - Classical forms of recursive definitions ---------===//

#include "translate/delta_elim.h"
#include "translate/translate.h"

#include <array>

using namespace dryad;

/// Collects (base var, field, bound var) triples from points-to atoms.
static void
collectPointsToBindings(const Formula *F,
                        std::vector<std::array<std::string, 3>> &Out) {
  switch (F->kind()) {
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    const auto *BaseVar = dyn_cast<VarTerm>(X->base());
    if (!BaseVar)
      return;
    for (const auto &FB : X->fields())
      if (const auto *V = dyn_cast<VarTerm>(FB.Value))
        Out.push_back({BaseVar->name(), FB.Field, V->name()});
    return;
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep:
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      collectPointsToBindings(Op, Out);
    return;
  default:
    return;
  }
}

Subst DefUnfolder::bodySubst(const RecDef *Def, const Term *Arg,
                             const std::vector<const Term *> &Stops) {
  Subst S;
  S[Def->ArgName] = Arg;
  assert(Stops.size() == Def->StopParams.size() && "stop arity mismatch");
  for (size_t I = 0; I != Stops.size(); ++I)
    S[Def->StopParams[I]] = Stops[I];

  std::vector<std::array<std::string, 3>> Bindings;
  if (Def->isPredicate()) {
    collectPointsToBindings(Def->PredBody, Bindings);
  } else {
    for (const RecDef::Case &C : Def->Cases)
      if (C.Guard)
        collectPointsToBindings(C.Guard, Bindings);
  }
  // The ~s resolve transitively: a variable bound via a points-to whose
  // base is already resolved becomes a field read of that base (supports
  // nested records, e.g. a queue head reaching through its last cell).
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const auto &[Base, Field, Var] : Bindings) {
      if (S.count(Var) || !S.count(Base))
        continue;
      S[Var] = Ctx.fieldRead(Field, S.at(Base), Fields.fieldSort(Field));
      Progress = true;
    }
  }
  return S;
}

const Formula *
DefUnfolder::unfoldReach(const RecDef *Def, const Term *Arg,
                         const std::vector<const Term *> &Stops) {
  const Term *Reach = Ctx.reach(Def, Arg, Stops);

  std::vector<const Formula *> BaseCases;
  BaseCases.push_back(Ctx.eq(Arg, Ctx.nil()));
  for (const Term *St : Stops)
    BaseCases.push_back(Ctx.eq(Arg, St));
  const Formula *IsBase = Ctx.disj(std::move(BaseCases));

  const Term *Expanded = Ctx.singleton(Arg, Sort::LocSet);
  for (const std::string &PF : Def->PtrFields) {
    const Term *Succ = Ctx.fieldRead(PF, Arg, Sort::Loc);
    Expanded = Ctx.setUnion(Expanded, Ctx.reach(Def, Succ, Stops));
  }

  const Term *Rhs =
      Ctx.ite(IsBase, Ctx.emptySet(Sort::LocSet), Expanded);
  return Ctx.eq(Reach, Rhs);
}

const Formula *
DefUnfolder::unfoldDef(const RecDef *Def, const Term *Arg,
                       const std::vector<const Term *> &Stops) {
  Subst S = bodySubst(Def, Arg, Stops);
  const Term *Reach = Ctx.reach(Def, Arg, Stops);

  if (Def->isPredicate()) {
    const Formula *Body = substitute(Ctx, Def->PredBody, S);
    const Formula *Classical = translateDryad(Ctx, Fields, Body, Reach);
    const Formula *P = Ctx.recPred(Def, Arg, Stops);
    // p(x) <-> T(body, reach_p(x))
    return Ctx.disj({Ctx.conj2(P, Classical),
                     Ctx.conj2(Ctx.neg(P), Ctx.neg(Classical))});
  }

  // Function: f(x) == ite(T(guard1), value1, ite(..., default)).
  const Term *F = Ctx.recFunc(Def, Arg, Stops);
  assert(!Def->Cases.empty() && Def->Cases.back().Guard == nullptr &&
         "function definitions end with a default case");
  const Term *Rhs =
      substitute(Ctx, Def->Cases.back().Value, S); // default value
  for (auto It = Def->Cases.rbegin() + 1, E = Def->Cases.rend(); It != E;
       ++It) {
    const Formula *Guard = substitute(Ctx, It->Guard, S);
    const Formula *ClassicalGuard = translateDryad(Ctx, Fields, Guard, Reach);
    const Term *Value = substitute(Ctx, It->Value, S);
    Rhs = Ctx.ite(ClassicalGuard, Value, Rhs);
  }
  return Ctx.eq(F, Rhs);
}
