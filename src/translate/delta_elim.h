//===--- delta_elim.h - Classical forms of recursive definitions *- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-elimination (§5): for every Dryad recursive definition rec∆ this
/// produces the classical definitions `rec` and `reach_rec` as one-step
/// unfolding equations instantiated at a given location term. The natural
/// proof engine asserts these equations for every footprint location; the
/// definitions themselves stay uninterpreted (formula abstraction, §6.3).
///
/// For a definition rec∆ with pointer fields ~pf and stop parameters ~v:
///
///   reach_rec(x) = ite(x == nil || x in ~v, {},
///                      {x} u reach_rec(pf1(x)) u ... u reach_rec(pfk(x)))
///
///   p(x) <-> T(body[~s := fields(x)], reach_p(x))          (predicates)
///   f(x) == ite(T(guard1,...), T(value1), ... default)      (functions)
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_TRANSLATE_DELTA_ELIM_H
#define DRYAD_TRANSLATE_DELTA_ELIM_H

#include "dryad/ast.h"
#include "dryad/defs.h"

#include <vector>

namespace dryad {

class DefUnfolder {
public:
  DefUnfolder(AstContext &Ctx, const FieldTable &Fields)
      : Ctx(Ctx), Fields(Fields) {}

  /// reach_rec(Arg) == one-step unfolding. Arg/Stops may be stamped or
  /// unstamped; produced FieldReads inherit stamping via dryad::stamp later.
  const Formula *unfoldReach(const RecDef *Def, const Term *Arg,
                             const std::vector<const Term *> &Stops);

  /// One-step unfolding of the definition itself: an iff for predicates, an
  /// equation against an ITE chain for functions.
  const Formula *unfoldDef(const RecDef *Def, const Term *Arg,
                           const std::vector<const Term *> &Stops);

private:
  /// Substitution mapping the definition's formal argument, stop parameters,
  /// and points-to-bound variables to terms over \p Arg.
  Subst bodySubst(const RecDef *Def, const Term *Arg,
                  const std::vector<const Term *> &Stops);

  AstContext &Ctx;
  const FieldTable &Fields;
};

} // namespace dryad

#endif // DRYAD_TRANSLATE_DELTA_ELIM_H
