//===--- translate.h - Dryad to classical logic (Fig. 4) --------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation T(ϕ, G) of §5: a Dryad formula together with a
/// set-of-locations term G denoting its heap domain becomes a classical
/// formula over the global heap in the quantifier-free theory of sets,
/// integers, and (after abstraction) uninterpreted functions. Heaplets turn
/// into set constraints; points-to turns into field-read equalities;
/// recursive applications stay as (classical) recursive applications whose
/// heaplets are pinned to their reach sets.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_TRANSLATE_TRANSLATE_H
#define DRYAD_TRANSLATE_TRANSLATE_H

#include "dryad/ast.h"
#include "dryad/defs.h"

namespace dryad {

/// Translates Dryad formula \p F evaluated on heap domain \p G (a
/// LocSet-sorted term) to classical logic. \p Fields supplies field sorts
/// for points-to translation.
const Formula *translateDryad(AstContext &Ctx, const FieldTable &Fields,
                              const Formula *F, const Term *G);

} // namespace dryad

#endif // DRYAD_TRANSLATE_TRANSLATE_H
