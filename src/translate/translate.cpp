//===--- translate.cpp - Dryad to classical logic (Fig. 4) -----------------===//

#include "translate/translate.h"
#include "translate/scope.h"

using namespace dryad;

namespace {
class Translator {
public:
  Translator(AstContext &Ctx, const FieldTable &Fields)
      : Ctx(Ctx), Fields(Fields) {}

  const Formula *translate(const Formula *F, const Term *G) {
    // The translation assumes disjunctive normal form so that every
    // separating conjunction determines a unique heap split (§5).
    std::vector<const Formula *> Disjuncts = liftDisjunction(Ctx, F);
    if (Disjuncts.size() == 1)
      return translateDisjunct(Disjuncts.front(), G);
    std::vector<const Formula *> Out;
    Out.reserve(Disjuncts.size());
    for (const Formula *D : Disjuncts)
      Out.push_back(translateDisjunct(D, G));
    return Ctx.disj(std::move(Out));
  }

private:
  const Formula *eqSets(const Term *A, const Term *B) {
    return Ctx.cmp(CmpFormula::Eq, A, B);
  }
  const Term *emptyLS() { return Ctx.emptySet(Sort::LocSet); }

  const Formula *translateDisjunct(const Formula *F, const Term *G) {
    switch (F->kind()) {
    case Formula::FK_BoolConst:
      return F;
    case Formula::FK_Emp:
      return eqSets(G, emptyLS());
    case Formula::FK_PointsTo: {
      const auto *X = cast<PointsToFormula>(F);
      std::vector<const Formula *> Conj;
      // The heaplet is exactly {lt}; records never live at nil (Def. 4.1).
      Conj.push_back(eqSets(G, Ctx.singleton(X->base(), Sort::LocSet)));
      Conj.push_back(Ctx.cmp(CmpFormula::Ne, X->base(), Ctx.nil()));
      for (const auto &FB : X->fields())
        Conj.push_back(Ctx.eq(
            Ctx.fieldRead(FB.Field, X->base(), Fields.fieldSort(FB.Field)),
            FB.Value));
      return Ctx.conj(std::move(Conj), F->loc());
    }
    case Formula::FK_RecPred: {
      const auto *X = cast<RecPredFormula>(F);
      const Term *Reach = Ctx.reach(X->def(), X->arg(), X->stopArgs(),
                                    X->time());
      return Ctx.conj2(F, eqSets(G, Reach));
    }
    case Formula::FK_Cmp: {
      SynScope S = scopeOfFormula(Ctx, F);
      if (!S.Exact)
        return F; // pure relation: heap-independent
      return Ctx.conj2(F, eqSets(G, S.Scope));
    }
    case Formula::FK_And: {
      std::vector<const Formula *> Out;
      for (const Formula *Op : cast<NaryFormula>(F)->operands())
        Out.push_back(translateDisjunct(Op, G));
      return Ctx.conj(std::move(Out), F->loc());
    }
    case Formula::FK_Or: {
      // liftDisjunction leaves Or only above And/Sep-free regions when
      // nested under Not; translate recursively with the same G.
      std::vector<const Formula *> Out;
      for (const Formula *Op : cast<NaryFormula>(F)->operands())
        Out.push_back(translateDisjunct(Op, G));
      return Ctx.disj(std::move(Out), F->loc());
    }
    case Formula::FK_Not:
      return Ctx.neg(
          translateDisjunct(cast<NotFormula>(F)->operand(), G), F->loc());
    case Formula::FK_Sep:
      return translateSep(cast<NaryFormula>(F)->operands(), 0, G);
    case Formula::FK_FieldUpdate:
      return F;
    }
    return F;
  }

  /// Binary right-fold of the four cases of Fig. 4 over an n-ary *.
  const Formula *translateSep(const std::vector<const Formula *> &Ops,
                              size_t From, const Term *G) {
    if (From + 1 == Ops.size())
      return translateDisjunct(Ops[From], G);

    const Formula *Phi = Ops[From];
    SynScope S1 = scopeOfFormula(Ctx, Phi);
    SynScope S2;
    S2.Exact = true;
    S2.Scope = emptyLS();
    for (size_t I = From + 1; I != Ops.size(); ++I) {
      SynScope S = scopeOfFormula(Ctx, Ops[I]);
      S2.Exact &= S.Exact;
      S2.Scope = Ctx.setUnion(S2.Scope, S.Scope);
    }

    const Term *Inter =
        Ctx.setBin(SetBinTerm::Inter, S1.Scope, S2.Scope);
    const Term *Union = Ctx.setUnion(S1.Scope, S2.Scope);

    if (S1.Exact && S2.Exact)
      return Ctx.conj({translateDisjunct(Phi, S1.Scope),
                       translateSep(Ops, From + 1, S2.Scope),
                       eqSets(Union, G), eqSets(Inter, emptyLS())});
    if (S1.Exact)
      return Ctx.conj(
          {translateDisjunct(Phi, S1.Scope),
           translateSep(Ops, From + 1,
                        Ctx.setBin(SetBinTerm::Diff, G, S1.Scope)),
           Ctx.cmp(CmpFormula::SubsetEq, S1.Scope, G)});
    if (S2.Exact)
      return Ctx.conj(
          {translateSep(Ops, From + 1, S2.Scope),
           translateDisjunct(Phi, Ctx.setBin(SetBinTerm::Diff, G, S2.Scope)),
           Ctx.cmp(CmpFormula::SubsetEq, S2.Scope, G)});
    return Ctx.conj({translateDisjunct(Phi, S1.Scope),
                     translateSep(Ops, From + 1, S2.Scope),
                     Ctx.cmp(CmpFormula::SubsetEq, Union, G),
                     eqSets(Inter, emptyLS())});
  }

  AstContext &Ctx;
  const FieldTable &Fields;
};
} // namespace

const Formula *dryad::translateDryad(AstContext &Ctx, const FieldTable &Fields,
                                     const Formula *F, const Term *G) {
  return Translator(Ctx, Fields).translate(F, G);
}
