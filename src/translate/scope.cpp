//===--- scope.cpp - Syntactic domain-exact and scope (Fig. 3) -------------===//

#include "translate/scope.h"

using namespace dryad;

static const Term *emptyLocSet(AstContext &Ctx) {
  return Ctx.emptySet(Sort::LocSet);
}

static SynScope combine(AstContext &Ctx, const SynScope &A, const SynScope &B,
                        bool ExactIsAnd) {
  SynScope R;
  R.Exact = ExactIsAnd ? (A.Exact && B.Exact) : (A.Exact || B.Exact);
  R.Scope = Ctx.setUnion(A.Scope, B.Scope);
  return R;
}

SynScope dryad::scopeOfTerm(AstContext &Ctx, const Term *T) {
  SynScope R;
  R.Scope = emptyLocSet(Ctx);
  switch (T->kind()) {
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    R.Exact = true;
    R.Scope = Ctx.reach(X->def(), X->arg(), X->stopArgs(), X->time());
    return R;
  }
  case Term::TK_IntBin:
    return combine(Ctx, scopeOfTerm(Ctx, cast<IntBinTerm>(T)->lhs()),
                   scopeOfTerm(Ctx, cast<IntBinTerm>(T)->rhs()),
                   /*ExactIsAnd=*/false);
  case Term::TK_SetBin:
    return combine(Ctx, scopeOfTerm(Ctx, cast<SetBinTerm>(T)->lhs()),
                   scopeOfTerm(Ctx, cast<SetBinTerm>(T)->rhs()),
                   /*ExactIsAnd=*/false);
  case Term::TK_Singleton:
    return scopeOfTerm(Ctx, cast<SingletonTerm>(T)->element());
  default:
    return R; // variables, constants, classical nodes: pure
  }
}

SynScope dryad::scopeOfFormula(AstContext &Ctx, const Formula *F) {
  SynScope R;
  R.Scope = emptyLocSet(Ctx);
  switch (F->kind()) {
  case Formula::FK_BoolConst:
  case Formula::FK_FieldUpdate:
    return R;
  case Formula::FK_Emp:
    R.Exact = true;
    return R;
  case Formula::FK_PointsTo: {
    R.Exact = true;
    R.Scope = Ctx.singleton(cast<PointsToFormula>(F)->base(), Sort::LocSet);
    return R;
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    R.Exact = true;
    R.Scope = Ctx.reach(X->def(), X->arg(), X->stopArgs(), X->time());
    return R;
  }
  case Formula::FK_Cmp:
    return combine(Ctx, scopeOfTerm(Ctx, cast<CmpFormula>(F)->lhs()),
                   scopeOfTerm(Ctx, cast<CmpFormula>(F)->rhs()),
                   /*ExactIsAnd=*/false);
  case Formula::FK_And:
  case Formula::FK_Sep: {
    bool IsSep = F->kind() == Formula::FK_Sep;
    SynScope Acc;
    Acc.Exact = IsSep;
    Acc.Scope = emptyLocSet(Ctx);
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      Acc = combine(Ctx, Acc, scopeOfFormula(Ctx, Op), /*ExactIsAnd=*/IsSep);
    return Acc;
  }
  case Formula::FK_Or:
    assert(false && "scope of a disjunction; lift disjunction first");
    return R;
  case Formula::FK_Not: {
    SynScope S = scopeOfFormula(Ctx, cast<NotFormula>(F)->operand());
    R.Scope = S.Scope;
    return R;
  }
  }
  return R;
}

std::vector<const Formula *> dryad::liftDisjunction(AstContext &Ctx,
                                                    const Formula *F) {
  switch (F->kind()) {
  case Formula::FK_Or: {
    std::vector<const Formula *> Out;
    for (const Formula *Op : cast<NaryFormula>(F)->operands()) {
      std::vector<const Formula *> Sub = liftDisjunction(Ctx, Op);
      Out.insert(Out.end(), Sub.begin(), Sub.end());
    }
    return Out;
  }
  case Formula::FK_And:
  case Formula::FK_Sep: {
    // Cartesian product of the operands' disjuncts.
    std::vector<std::vector<const Formula *>> Rows = {{}};
    for (const Formula *Op : cast<NaryFormula>(F)->operands()) {
      std::vector<const Formula *> Sub = liftDisjunction(Ctx, Op);
      std::vector<std::vector<const Formula *>> Next;
      for (const auto &Row : Rows)
        for (const Formula *S : Sub) {
          std::vector<const Formula *> R = Row;
          R.push_back(S);
          Next.push_back(std::move(R));
        }
      Rows = std::move(Next);
    }
    std::vector<const Formula *> Out;
    Out.reserve(Rows.size());
    for (auto &Row : Rows)
      Out.push_back(F->kind() == Formula::FK_And ? Ctx.conj(std::move(Row))
                                                 : Ctx.sep(std::move(Row)));
    return Out;
  }
  default:
    return {F};
  }
}
