//===--- scope.h - Syntactic domain-exact and scope (Fig. 3) ----*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The domain-exact property and scope function of Fig. 3, computed
/// syntactically: the scope of a term/formula is a set-of-locations *term*
/// (built from singletons, unions, and reach-set applications) denoting the
/// minimum heap domain needed to evaluate it. Both are defined on
/// disjunction- and negation-free formulas; use liftDisjunction to put a
/// formula in the required disjunctive normal form first.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_TRANSLATE_SCOPE_H
#define DRYAD_TRANSLATE_SCOPE_H

#include "dryad/ast.h"

#include <vector>

namespace dryad {

struct SynScope {
  bool Exact = false;
  const Term *Scope = nullptr; ///< LocSet-sorted term
};

SynScope scopeOfTerm(AstContext &Ctx, const Term *T);
SynScope scopeOfFormula(AstContext &Ctx, const Formula *F);

/// Pulls disjunction to the top across And/Sep (not across Not, which may
/// only cover heap-independent subformulas): returns the disjuncts of the
/// DNF. The paper assumes this normal form before translating (§5).
std::vector<const Formula *> liftDisjunction(AstContext &Ctx,
                                             const Formula *F);

} // namespace dryad

#endif // DRYAD_TRANSLATE_SCOPE_H
