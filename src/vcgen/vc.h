//===--- vc.h - Verification condition generation ---------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the verification condition ψVC of §6.1 for one basic path:
/// program variables are SSA-renamed, heap mutations become array-store
/// equations over versioned field arrays, procedure calls havoc the heap and
/// assume the callee contract, and the evolving heaplet G is tracked as a
/// set term. The output records the boundary timestamps and segments the
/// natural-proof engine (natural/engine.h) needs for unfolding and framing.
///
/// Timestamp discipline: boundary 0 is the path start; every call
/// contributes a pre-call and a post-call boundary; the path end is the last
/// boundary. Within a straight segment field arrays evolve by store-chains
/// (same timestamp, bumped per-field versions); across a call all field
/// arrays are havocked (fresh versions, related only by frame assertions).
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VCGEN_VC_H
#define DRYAD_VCGEN_VC_H

#include "lang/ast.h"
#include "lang/paths.h"

#include <optional>

namespace dryad {

/// A boundary timestamp with the per-field array versions in force there.
struct Boundary {
  int Time = 0;
  std::map<std::string, int> FieldVersions;
};

/// What happened between two consecutive boundaries.
struct Segment {
  int FromBoundary = 0;
  int ToBoundary = 0;
  bool IsCall = false;
  /// Straight segments: locations written through (SSA terms).
  std::vector<const Term *> WrittenLocs;
  /// Call segments: the callee's heaplet (scope of its precondition),
  /// stamped at FromBoundary.
  const Term *CalleeHeaplet = nullptr;
};

/// A side obligation: the callee's precondition must hold at the call site.
/// Only the first NumAssumptions path assumptions may be used (later ones
/// constrain executions that have already passed the call).
struct CallCheck {
  std::string Desc;
  size_t NumAssumptions = 0;
  const Formula *Goal = nullptr;
};

/// The verification condition for one basic path.
struct VCond {
  std::string Name;
  std::vector<const Formula *> Assumptions; ///< stamped classical formulas
  const Formula *Goal = nullptr;            ///< stamped classical formula
  std::vector<CallCheck> CallChecks;
  std::vector<Boundary> Boundaries;
  std::vector<Segment> Segments;
  /// All location-sorted SSA variables (plus nil), the candidate footprint.
  std::vector<const Term *> LocTerms;
  /// Instantiation terms per boundary time (footprint plus that boundary's
  /// one-step frontier successors); filled by the natural-proof engine.
  std::map<int, std::vector<const Term *>> BoundaryTerms;

  const std::vector<const Term *> &termsAt(int Time) const {
    auto It = BoundaryTerms.find(Time);
    return It == BoundaryTerms.end() ? LocTerms : It->second;
  }
};

class VCGen {
public:
  explicit VCGen(Module &M) : M(M) {}

  /// Generates ψVC for {BP.Start} BP.Stmts {BP.End}. Returns nullopt after
  /// reporting when the path uses an unknown callee or a spatial branch
  /// condition.
  std::optional<VCond> generate(const Procedure &P, const BasicPath &BP,
                                DiagEngine &Diags);

private:
  Module &M;
};

/// The scope (heaplet) of a contract formula as a set term: disjuncts must
/// agree structurally; returns nullptr (with a diagnostic) otherwise.
const Term *contractScope(AstContext &Ctx, const FieldTable &Fields,
                          const Formula *Dryad, DiagEngine &Diags,
                          SourceLoc Loc);

} // namespace dryad

#endif // DRYAD_VCGEN_VC_H
