//===--- vc.cpp - Verification condition generation -------------------------===//
//
// This reconstructs the VC generation algorithm of the paper's Appendix A
// from the main text's definitions: SSA renaming of program variables,
// versioned field arrays with store equations, heaplet tracking through
// new/free/call, and contract instantiation for procedure calls.
//
//===----------------------------------------------------------------------===//

#include "vcgen/vc.h"

#include "dryad/printer.h"

#include <set>
#include "translate/scope.h"
#include "translate/translate.h"

using namespace dryad;

const Term *dryad::contractScope(AstContext &Ctx, const FieldTable &Fields,
                                 const Formula *Dryad, DiagEngine &Diags,
                                 SourceLoc Loc) {
  (void)Fields;
  std::vector<const Formula *> Disjuncts = liftDisjunction(Ctx, Dryad);
  const Term *Scope = nullptr;
  for (const Formula *D : Disjuncts) {
    SynScope S = scopeOfFormula(Ctx, D);
    if (!Scope) {
      Scope = S.Scope;
      continue;
    }
    if (!structEq(Scope, S.Scope)) {
      Diags.error(Loc, "contract heaplet differs across disjuncts; "
                       "procedure-call framing needs a uniform scope");
      return nullptr;
    }
  }
  return Scope;
}

namespace {
/// Detects spatial constructs that are illegal in program conditions.
bool isPureCondition(const Formula *F) {
  switch (F->kind()) {
  case Formula::FK_Emp:
  case Formula::FK_PointsTo:
  case Formula::FK_Sep:
  case Formula::FK_RecPred:
    return false;
  case Formula::FK_And:
  case Formula::FK_Or:
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      if (!isPureCondition(Op))
        return false;
    return true;
  case Formula::FK_Not:
    return isPureCondition(cast<NotFormula>(F)->operand());
  default:
    return true;
  }
}

class VCBuilder {
public:
  VCBuilder(Module &M, const Procedure &P, const BasicPath &BP,
            DiagEngine &Diags)
      : M(M), Ctx(M.Ctx), P(P), BP(BP), Diags(Diags) {}

  std::optional<VCond> run() {
    // Initial SSA indices and field versions.
    for (const VarDecl &D : P.Params)
      declareVar(D);
    for (const VarDecl &D : P.Locals)
      declareVar(D);
    if (P.HasRet)
      declareVar(P.Ret);
    for (const VarDecl &D : P.SpecVars)
      SpecVarSorts[D.Name] = D.S;
    for (const std::string &F : M.Fields.allFields())
      FieldVersion[F] = 0;

    VC.Name = P.Name + " [" + BP.Desc + "]";
    pushBoundary(); // boundary 0: path start

    // The heaplet at entry to the segment.
    CurG = Ctx.var("G!0", Sort::LocSet);
    const Formula *StartF = translateAndStamp(BP.Start, CurG, specSubst());
    noteContractVars(StartF);
    VC.Assumptions.push_back(StartF);

    for (const Stmt &S : BP.Stmts)
      if (!handle(S))
        return std::nullopt;

    // Close the trailing straight segment with an end boundary.
    ensureBoundary();

    VC.Goal = translateAndStamp(BP.End, CurG, specSubst());
    noteContractVars(VC.Goal);
    collectLocTerms();
    return std::move(VC);
  }

private:
  //===--------------------------------------------------------------------===//
  // SSA and stamping helpers
  //===--------------------------------------------------------------------===//

  void declareVar(const VarDecl &D) {
    SsaIndex[D.Name] = 0;
    VarSorts[D.Name] = D.S;
  }

  std::string ssaName(const std::string &V) const {
    auto It = SsaIndex.find(V);
    assert(It != SsaIndex.end() && "unknown variable in path");
    return V + "!" + std::to_string(It->second);
  }

  const Term *ssaTerm(const std::string &V) {
    return Ctx.var(ssaName(V), VarSorts.at(V));
  }

  const Term *bumpVar(const std::string &V) {
    ++SsaIndex[V];
    return ssaTerm(V);
  }

  /// Substitution mapping every program variable to its current SSA term.
  Subst curSubst() {
    Subst S;
    for (const auto &[Name, Idx] : SsaIndex) {
      (void)Idx;
      S[Name] = ssaTerm(Name);
    }
    return S;
  }

  /// Adds the procedure's spec variables (they are plain constants shared by
  /// pre and post).
  Subst specSubst() {
    Subst S = curSubst();
    for (const auto &[Name, Srt] : SpecVarSorts)
      S[Name] = Ctx.var(Name, Srt);
    return S;
  }

  StampMap curStamp() const {
    StampMap SM;
    SM.FieldVersions = FieldVersion;
    // Recursive definitions are indexed by boundary; mid-segment formulas
    // contain no recursive applications, so the index of the most recent
    // boundary is always the right timestamp.
    SM.Time = static_cast<int>(VC.Boundaries.size()) - 1;
    return SM;
  }

  const Formula *substStamp(const Formula *F, const Subst &S) {
    return stamp(Ctx, substitute(Ctx, F, S), curStamp());
  }
  const Term *substStamp(const Term *T, const Subst &S) {
    return stamp(Ctx, substitute(Ctx, T, S), curStamp());
  }

  /// Translates a Dryad formula against heaplet \p G, then SSA-substitutes
  /// and stamps it at the current boundary.
  const Formula *translateAndStamp(const Formula *Dryad, const Term *G,
                                   const Subst &S) {
    const Formula *Classical = translateDryad(Ctx, M.Fields, Dryad, G);
    return substStamp(Classical, S);
  }

  //===--------------------------------------------------------------------===//
  // Boundaries and segments
  //===--------------------------------------------------------------------===//

  int pushBoundary() {
    Boundary B;
    B.Time = static_cast<int>(VC.Boundaries.size());
    B.FieldVersions = FieldVersion;
    VC.Boundaries.push_back(std::move(B));
    return B.Time;
  }

  /// Returns the current boundary, reusing the previous one when the heap
  /// has not changed since (identical field versions denote the identical
  /// heap, so no new timestamp — and no frame/unfold instantiations — are
  /// needed).
  int ensureBoundary() {
    if (!VC.Boundaries.empty() &&
        VC.Boundaries.back().FieldVersions == FieldVersion) {
      assert(PendingWrites.empty() && "writes without version bumps");
      return VC.Boundaries.back().Time;
    }
    int B = pushBoundary();
    closeStraightSegment(B);
    return B;
  }

  void closeStraightSegment(int ToBoundary) {
    Segment Seg;
    Seg.FromBoundary = ToBoundary - 1;
    Seg.ToBoundary = ToBoundary;
    Seg.IsCall = false;
    std::set<std::string> Seen;
    for (const Term *W : PendingWrites)
      if (Seen.insert(print(W)).second)
        Seg.WrittenLocs.push_back(W);
    PendingWrites.clear();
    VC.Segments.push_back(std::move(Seg));
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  bool handle(const Stmt &S) {
    switch (S.K) {
    case Stmt::Assign: {
      const Term *Rhs = substStamp(S.Expr, curSubst());
      const Term *Dst = bumpVar(S.Var);
      VC.Assumptions.push_back(Ctx.eq(Dst, Rhs));
      return true;
    }
    case Stmt::Load: {
      const Term *Base = substStamp(S.Base, curSubst());
      noteFootprint(Base);
      const Term *Read = stamp(
          Ctx, Ctx.fieldRead(S.Field, Base, M.Fields.fieldSort(S.Field)),
          curStamp());
      const Term *Dst = bumpVar(S.Var);
      VC.Assumptions.push_back(Ctx.eq(Dst, Read));
      return true;
    }
    case Stmt::Store: {
      const Term *Base = substStamp(S.Base, curSubst());
      noteFootprint(Base);
      const Term *Val = substStamp(S.Expr, curSubst());
      int From = FieldVersion[S.Field];
      int To = ++FieldVersion[S.Field];
      VC.Assumptions.push_back(Ctx.fieldUpdate(S.Field, From, To, Base, Val));
      PendingWrites.push_back(Base);
      return true;
    }
    case Stmt::New: {
      const Term *Fresh = bumpVar(S.Var);
      noteFootprint(Fresh);
      VC.Assumptions.push_back(Ctx.cmp(CmpFormula::Ne, Fresh, Ctx.nil()));
      VC.Assumptions.push_back(
          Ctx.cmp(CmpFormula::NotIn, Fresh, CurG));
      CurG = Ctx.setUnion(CurG, Ctx.singleton(Fresh, Sort::LocSet));
      return true;
    }
    case Stmt::Free: {
      const Term *Base = substStamp(S.Base, curSubst());
      noteFootprint(Base);
      CurG = Ctx.setBin(SetBinTerm::Diff, CurG,
                        Ctx.singleton(Base, Sort::LocSet));
      return true;
    }
    case Stmt::Assume: {
      if (!isPureCondition(S.Cond)) {
        Diags.error(S.Loc, "branch/assume conditions must be heap-free");
        return false;
      }
      VC.Assumptions.push_back(substStamp(S.Cond, curSubst()));
      return true;
    }
    case Stmt::Call:
      return handleCall(S);
    default:
      Diags.error(S.Loc, "unexpected structured statement in basic path");
      return false;
    }
  }

  /// Witnesses the callee's spec variables from defining equations in its
  /// precondition. Unresolved spec variables become fresh constants (the
  /// call-site precondition check will then typically fail, pointing at the
  /// contract).
  void resolveSpecVars(const Procedure &Callee, Subst &Sigma, SourceLoc Loc) {
    // Gather every equation and points-to binding in the precondition.
    std::vector<const CmpFormula *> Eqs;
    auto Collect = [&](const Formula *F, auto &&Self) -> void {
      switch (F->kind()) {
      case Formula::FK_Cmp:
        if (cast<CmpFormula>(F)->op() == CmpFormula::Eq)
          Eqs.push_back(cast<CmpFormula>(F));
        return;
      case Formula::FK_PointsTo: {
        // `x |-> (key: k, left: l)` witnesses spec vars k, l as field reads
        // of the (already resolved) base.
        const auto *X = cast<PointsToFormula>(F);
        const auto *BaseVar = dyn_cast<VarTerm>(X->base());
        if (!BaseVar || !Sigma.count(BaseVar->name()))
          return;
        for (const auto &FB : X->fields())
          if (const auto *V = dyn_cast<VarTerm>(FB.Value);
              V && !Sigma.count(V->name()))
            Sigma[V->name()] = stamp(
                Ctx,
                Ctx.fieldRead(FB.Field, Sigma.at(BaseVar->name()),
                              M.Fields.fieldSort(FB.Field)),
                curStamp());
        return;
      }
      case Formula::FK_And:
      case Formula::FK_Or:
      case Formula::FK_Sep:
        for (const Formula *Op : cast<NaryFormula>(F)->operands())
          Self(Op, Self);
        return;
      default:
        return;
      }
    };
    Collect(Callee.Pre, Collect);

    auto Unresolved = [&](const Term *T) {
      std::map<std::string, Sort> Vars;
      collectVars(T, Vars);
      for (const VarDecl &SV : Callee.SpecVars)
        if (!Sigma.count(SV.Name) && Vars.count(SV.Name))
          return true;
      return false;
    };

    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (const VarDecl &SV : Callee.SpecVars) {
        if (Sigma.count(SV.Name))
          continue;
        for (const CmpFormula *Eq : Eqs) {
          const Term *Def = nullptr;
          if (const auto *V = dyn_cast<VarTerm>(Eq->lhs());
              V && V->name() == SV.Name)
            Def = Eq->rhs();
          else if (const auto *V2 = dyn_cast<VarTerm>(Eq->rhs());
                   V2 && V2->name() == SV.Name)
            Def = Eq->lhs();
          if (!Def || Unresolved(Def))
            continue;
          Sigma[SV.Name] = substStamp(Def, Sigma);
          Progress = true;
          break;
        }
      }
    }
    for (const VarDecl &SV : Callee.SpecVars)
      if (!Sigma.count(SV.Name)) {
        Diags.warning(Loc, "cannot witness spec variable '" + SV.Name +
                               "' of callee; using a fresh constant");
        Sigma[SV.Name] = Ctx.var(Callee.Name + "." + SV.Name + "!" +
                                     std::to_string(CallCounter),
                                 SV.S);
      }
  }

  bool handleCall(const Stmt &S) {
    const Procedure *Callee = M.findProc(S.Callee);
    if (!Callee) {
      Diags.error(S.Loc, "call to unknown procedure '" + S.Callee + "'");
      return false;
    }
    if (Callee->Params.size() != S.Args.size()) {
      Diags.error(S.Loc, "wrong number of arguments to '" + S.Callee + "'");
      return false;
    }

    // Close the straight segment reaching the call.
    int PreBoundary = ensureBoundary();

    // Substitution for the callee contract: formals -> actuals. Spec
    // variables are existential across the contract; witness them from
    // their defining equations in the precondition (e.g. keys(x) == K
    // yields K := keys(actual), stamped at the pre-call boundary).
    Subst Sigma;
    Subst Cur = curSubst();
    for (size_t I = 0; I != S.Args.size(); ++I) {
      Sigma[Callee->Params[I].Name] = substStamp(S.Args[I], Cur);
      noteFootprint(Sigma[Callee->Params[I].Name]);
    }
    resolveSpecVars(*Callee, Sigma, S.Loc);
    ++CallCounter;

    // The callee's heaplet: the scope of its precondition, computed on the
    // formal contract (spec variables are pure there; witnessing may
    // substitute impure terms, which must not perturb the heaplet).
    const Term *PreScope =
        contractScope(Ctx, M.Fields, Callee->Pre, Diags, S.Loc);
    if (!PreScope)
      return false;
    const Term *PreScopeStamped =
        stamp(Ctx, substitute(Ctx, PreScope, Sigma), curStamp());
    noteScopeRoots(PreScopeStamped);

    // Side obligation: the precondition holds on its heaplet, which is part
    // of the current heaplet.
    const Formula *PreHolds =
        translateAndStamp(Callee->Pre, PreScope, Sigma);
    const Formula *PreGoal = Ctx.conj2(
        PreHolds, Ctx.cmp(CmpFormula::SubsetEq, PreScopeStamped, CurG));
    VC.CallChecks.push_back(
        {VC.Name + " call " + S.Callee, VC.Assumptions.size(), PreGoal});

    // Havoc the heap: fresh versions for every field.
    for (const std::string &F : M.Fields.allFields())
      ++FieldVersion[F];
    int PostBoundary = pushBoundary();

    Segment CallSeg;
    CallSeg.FromBoundary = PreBoundary;
    CallSeg.ToBoundary = PostBoundary;
    CallSeg.IsCall = true;
    CallSeg.CalleeHeaplet = PreScopeStamped;
    VC.Segments.push_back(std::move(CallSeg));

    // Bind the return value.
    if (!S.Var.empty()) {
      if (!Callee->HasRet) {
        Diags.error(S.Loc, "'" + S.Callee + "' returns no value");
        return false;
      }
      Sigma[Callee->Ret.Name] = bumpVar(S.Var);
      noteFootprint(Sigma[Callee->Ret.Name]);
    } else if (Callee->HasRet) {
      // Value discarded; bind to a fresh constant.
      Sigma[Callee->Ret.Name] = Ctx.var(
          S.Callee + ".ret!" + std::to_string(CallCounter), Callee->Ret.S);
    }

    // Assume the postcondition on its heaplet, stamped after the call. As
    // for the precondition, the scope comes from the formal contract.
    const Term *PostScope =
        contractScope(Ctx, M.Fields, Callee->Post, Diags, S.Loc);
    if (!PostScope)
      return false;
    const Term *PostScopeStamped =
        stamp(Ctx, substitute(Ctx, PostScope, Sigma), curStamp());
    noteScopeRoots(PostScopeStamped);
    VC.Assumptions.push_back(translateAndStamp(Callee->Post, PostScope, Sigma));

    // The callee owns only its precondition heaplet plus fresh allocations:
    // its post heaplet never intersects the caller's frame G \ pre-scope.
    VC.Assumptions.push_back(
        Ctx.eq(Ctx.setBin(SetBinTerm::Inter, PostScopeStamped,
                          Ctx.setBin(SetBinTerm::Diff, CurG, PreScopeStamped)),
               Ctx.emptySet(Sort::LocSet)));

    // G := (G \ pre-scope) u post-scope.
    CurG = Ctx.setUnion(
        Ctx.setBin(SetBinTerm::Diff, CurG, PreScopeStamped),
        PostScopeStamped);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Footprint candidates
  //===--------------------------------------------------------------------===//

  void noteFootprint(const Term *T) {
    if (T && T->sort() == Sort::Loc && T->kind() == Term::TK_Var)
      Footprint.emplace(cast<VarTerm>(T)->name(), T);
  }

  /// Adds a (possibly non-variable, already stamped) location term to the
  /// instantiation set — used for the roots of callee heaplets, which are
  /// frontier terms like left(s) that frame reasoning must cover.
  void noteFootprintTerm(const Term *T) {
    if (T && T->sort() == Sort::Loc)
      Footprint.emplace(print(T), T);
  }

  /// Collects the arguments of reach-set applications and singletons inside
  /// a heaplet scope term: the roots of that heaplet.
  void noteScopeRoots(const Term *T) {
    switch (T->kind()) {
    case Term::TK_Reach:
      noteFootprintTerm(cast<ReachTerm>(T)->arg());
      return;
    case Term::TK_Singleton:
      noteFootprintTerm(cast<SingletonTerm>(T)->element());
      return;
    case Term::TK_SetBin:
      noteScopeRoots(cast<SetBinTerm>(T)->lhs());
      noteScopeRoots(cast<SetBinTerm>(T)->rhs());
      return;
    default:
      return;
    }
  }

  /// Adds the location variables of a contract formula (its roots) to the
  /// footprint.
  void noteContractVars(const Formula *F) {
    std::map<std::string, Sort> Vars;
    collectVars(F, Vars);
    for (const auto &[Name, Srt] : Vars)
      if (Srt == Sort::Loc)
        Footprint.emplace(Name, Ctx.var(Name, Sort::Loc));
  }

  void collectLocTerms() {
    // The footprint of SS6.2: dereferenced variables plus the contract
    // roots, plus nil. (Not every SSA variable: instantiation count is the
    // main cost driver of the final SMT query.)
    VC.LocTerms.push_back(Ctx.nil());
    for (const auto &[Name, T] : Footprint) {
      (void)Name;
      VC.LocTerms.push_back(T);
    }
  }

  Module &M;
  AstContext &Ctx;
  const Procedure &P;
  const BasicPath &BP;
  DiagEngine &Diags;

  VCond VC;
  std::map<std::string, int> SsaIndex;
  std::map<std::string, Sort> VarSorts;
  std::map<std::string, Sort> SpecVarSorts;
  std::map<std::string, int> FieldVersion;
  std::vector<const Term *> PendingWrites;
  /// Dereferenced locations + contract roots: the natural-proof footprint.
  std::map<std::string, const Term *> Footprint;
  const Term *CurG = nullptr;
  int CallCounter = 0;
};
} // namespace

std::optional<VCond> VCGen::generate(const Procedure &P, const BasicPath &BP,
                                     DiagEngine &Diags) {
  return VCBuilder(M, P, BP, Diags).run();
}
