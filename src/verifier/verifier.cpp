//===--- verifier.cpp - End-to-end verification driver ----------------------===//

#include "verifier/verifier.h"

#include "lang/paths.h"
#include "sched/dispatch.h"
#include "sched/shard.h"
#include "store/store.h"
#include "support/hash.h"
#include "vcgen/vc.h"

#include <algorithm>
#include <array>
#include <deque>
#include <fstream>
#include <optional>

using namespace dryad;

namespace {
/// The configuration half of a journal key: everything besides the query
/// text that could change an obligation's meaning. Deadlines and seeds are
/// deliberately absent — a proof stays a proof under a different timeout.
/// The solver backend is NOT here either: it rides as an `@name` suffix on
/// the finished key (see keyForBackend), so one obligation's records under
/// different solvers share a content key prefix and the store's fsck can
/// cross-check them for divergence.
std::string tacticConfig(const VerifyOptions &Opts) {
  std::string C = "tactics=";
  C += Opts.Natural.Unfold ? 'u' : '-';
  C += Opts.Natural.Frames ? 'f' : '-';
  C += Opts.Natural.Axioms ? 'a' : '-';
  return C;
}

/// The journal/store key for one obligation under one backend: the content
/// key plus an `@name` suffix. Keys are backend-qualified so a proof cached
/// under one solver is never replayed under another — switching `--backend`
/// re-solves everything, by design.
std::string keyForBackend(const std::string &BaseKey,
                          const std::string &Backend) {
  return BaseKey + "@" + (Backend.empty() ? "z3" : Backend);
}

/// Collision-free dump filename stem: the readable sanitized name plus a
/// short content hash of the *original* name, so obligations differing only
/// in non-alphanumeric characters ("p [path 1]" vs "p (path 1)") cannot
/// overwrite each other.
std::string dumpFileStem(const std::string &Name) {
  std::string File = Name;
  for (char &C : File)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return File + "-" + hex64(fnv1a64(Name), 8);
}

const char *VacuousMsg = "assumptions unsatisfiable: the contract/"
                         "invariant contradicts the heaplet semantics";

/// Per-path verification state. Lives in a std::deque for the whole
/// plan/submit/collect cycle, so pointers into it (result slots, the VC,
/// the strengthening cache) stay valid while completions fire.
struct PathWork {
  std::optional<VCond> VC;
  /// Strengthening per degradation level, built lazily and cached: level 0
  /// is the configured tactic set, level 1 drops axiom instantiation,
  /// level 2 also drops frames. Unfolding is never dropped. Shared by every
  /// obligation of the path; only touched from the event-loop thread.
  std::array<std::optional<NaturalProof>, 3> NPs;

  std::vector<ObligationResult> Calls; ///< slot per call-site check
  ObligationResult Main;
  std::string MainKey; ///< journal key of the main obligation
  ObligationResult Vac;
  bool HasVac = false;      ///< a vacuity record goes into the report
  bool VacFailed = false;   ///< the probe refuted (or never resolved) the contract
  double ProbeSeconds = 0;  ///< probe solver time (counted once, in collect)
};
} // namespace

/// Everything one procedure carries through the shared plan/drain/collect
/// cycle. Stored in a std::deque so completions can hold references across
/// procedure boundaries.
struct Verifier::ProcState {
  const Procedure *Proc = nullptr;
  ProcResult PR;
  DeadlineBudget Budget;
  std::deque<PathWork> Work;
};

Verifier::Verifier(Module &M, VerifyOptions Opts) : M(M), Opts(Opts) {
  if (!Opts.JournalPath.empty()) {
    if (Opts.AssembleFromJournal) {
      // Assembly never solves, so it must never write: open the journal as
      // a read-only index over whatever records the shards left behind.
      Jrnl.openReadOnly(Opts.JournalPath, JournalErr);
    } else {
      Jrnl.open(Opts.JournalPath, /*LoadExisting=*/Opts.Resume, JournalErr);
      Jrnl.setFsync(Opts.FsyncJournal);
    }
  }
  if (!Opts.StorePath.empty() && !Opts.AssembleFromJournal) {
    // The persistent cross-run cache. Open failures degrade to a warning:
    // a broken cache must never fail a proof run. Corruption found while
    // loading (bad CRCs) is quarantined, counted, and re-solved.
    OwnedStore = std::make_unique<ProofStore>();
    if (OwnedStore->open(Opts.StorePath, StoreErr)) {
      OwnedStore->setInject(Opts.Inject);
      Store = OwnedStore.get();
      WorkerStats.StoreQuarantined +=
          static_cast<unsigned>(Store->quarantinedOnLoad());
    } else {
      OwnedStore.reset();
    }
  }
}

Verifier::~Verifier() = default;

int Verifier::storeFd() const {
  return OwnedStore ? OwnedStore->writerFd() : -1;
}

SandboxOptions Verifier::sandboxOptions() const {
  SandboxOptions S;
  // Parallel and portfolio runs force isolation: concurrency comes from
  // worker *processes* (in-process Z3 solves on the event-loop thread and
  // cannot overlap), and racing rungs must be individually killable. So
  // does any piped backend — an external solver binary has no in-process
  // path at all.
  S.Enabled = Opts.Isolate || Opts.Jobs > 1 || Opts.Portfolio;
  for (const BackendSpec &B : Opts.Backends)
    if (!B.isZ3Api())
      S.Enabled = true;
  S.MemLimitMb = Opts.MemLimitMb;
  return S;
}

std::vector<std::string> Verifier::backendNames() const {
  std::vector<std::string> Names;
  for (const BackendSpec &B : Opts.Backends)
    Names.push_back(B.Name);
  if (Names.empty())
    Names.push_back("z3");
  return Names;
}

WarmPoolOptions Verifier::warmPoolOptions() const {
  WarmPoolOptions W;
  W.Warm = Opts.WarmWorkers;
  W.RecycleAfter = Opts.RecycleAfter;
  return W;
}

RetryPolicy Verifier::retryPolicy() const {
  RetryPolicy P;
  P.MaxAttempts = std::max(1u, Opts.Attempts);
  P.InitialTimeoutMs = std::min(Opts.InitialTimeoutMs, Opts.TimeoutMs);
  P.MaxTimeoutMs = Opts.TimeoutMs;
  // Degradation only makes sense while there is a tactic left to drop.
  // Attempts == 1 requests classic single-shot dispatch, so the whole
  // resilience ladder — including degraded re-dispatch — is off.
  P.DegradeLevels = maxDegradeLevels(Opts.Natural);
  P.DegradeTactics =
      Opts.DegradeTactics && P.MaxAttempts > 1 && P.DegradeLevels > 0;
  return P;
}

std::string Verifier::uniqueDumpStem(const std::string &Name) {
  std::string Stem = dumpFileStem(Name);
  unsigned N = StemCounts[Stem]++;
  if (N)
    Stem += "-k" + std::to_string(N);
  return Stem;
}

namespace {
/// Where a reused main-proof verdict came from, which decides where its
/// vacuity probe verdict must come from: the probe record is only as
/// trustworthy as the medium that recorded the proof alongside it.
enum class ReuseSource { None, Journal, Store };
} // namespace

void Verifier::planProc(DispatchEngine &Engine, ProcState &St,
                        DiagEngine &Diags) {
  const Procedure &P = *St.Proc;
  St.PR.Proc = P.Name;
  St.PR.Verified = true;
  St.Budget = DeadlineBudget(Opts.ProcBudgetMs);

  std::vector<BasicPath> Paths = extractPaths(M, P, Diags);
  VCGen Gen(M);

  // Strengthening accessor for one path; called from Build lambdas on the
  // event-loop thread, so the lazy cache needs no locking.
  auto StrengthFor = [this](PathWork &W,
                            unsigned Level) -> const std::vector<const Formula *> & {
    Level = std::min(Level, 2u);
    if (!W.NPs[Level])
      W.NPs[Level] =
          buildNaturalProof(M, *W.VC, degradeTactics(Opts.Natural, Level));
    return W.NPs[Level]->Assertions;
  };

  // Journals the probe verdict and fills the path's vacuity slot. Runs when
  // the probe's dispatch concludes (synchronously without a sandbox).
  auto OnProbeDone = [this](PathWork &W, const std::string &ProbeKey,
                            const DispatchResult &PD) {
    W.ProbeSeconds = PD.Seconds;

    // Journal the probe verdict so the next --resume can skip a passed
    // probe (Sat), replay a vacuity failure (Unsat), or re-probe an
    // unanswered one (Unknown). The store records the same verdict under
    // the same suffixed key, for the same soundness reason: a stored proof
    // without its probe verdict must be re-probed, never trusted.
    if ((Jrnl.isOpen() || Store) && !ProbeKey.empty()) {
      JournalRecord R;
      R.Key = ProbeKey;
      R.Name = W.VC->Name + " [vacuity]";
      R.Status = PD.Status;
      R.Failure =
          PD.Status == SmtStatus::Unknown ? PD.Failure : FailureKind::None;
      R.Attempts = PD.Attempts;
      R.Seconds = PD.Seconds;
      R.Detail = PD.Status == SmtStatus::Unsat    ? VacuousMsg
                 : PD.Status == SmtStatus::Unknown ? PD.Detail
                                                   : "";
      if (Jrnl.isOpen())
        Jrnl.append(R);
      if (Store)
        Store->put(R);
    }

    if (PD.Status == SmtStatus::Unsat) {
      ObligationResult V;
      V.Name = W.VC->Name + " [vacuity]";
      V.Status = SmtStatus::Unsat;
      V.Attempts = PD.Attempts;
      V.Seconds = PD.Seconds;
      V.Model = VacuousMsg;
      W.Vac = std::move(V);
      W.HasVac = true;
      W.VacFailed = true;
    } else if (PD.Status == SmtStatus::Unknown) {
      // The probe is advisory: an unanswered probe must not fail the
      // proof, but silently dropping the check would hide that the
      // contract was never validated — record it.
      ObligationResult V;
      V.Name = W.VC->Name + " [vacuity skipped]";
      V.Status = SmtStatus::Unknown;
      V.Failure = PD.Failure;
      V.FailureDetail = "vacuity probe unanswered: " + PD.Detail;
      V.Attempts = PD.Attempts;
      V.Seconds = PD.Seconds;
      W.Vac = std::move(V);
      W.HasVac = true;
    }
    // Sat: the contract is satisfiable — the proof stands, nothing to
    // record.
  };

  // Vacuity probe: the path's assumptions must be satisfiable, otherwise
  // the contract (not the code) is wrong and the proof above is void.
  //
  // The probe's own outcome is journaled under a suffixed key, because the
  // main proof is journaled *before* the probe runs: without a probe
  // record, a --resume run could reuse an unsat that a later probe refuted
  // (vacuous contract), or that was never probed because the run was killed
  // in between — silently flipping a failure to "verified".
  //
  // \p Urgent: a probe spawned by a freshly solved main jumps the pool
  // queue so it runs before fresh obligations (the sequential schedule at
  // one slot); a probe for a plan-time journal-reused main is planned in
  // FIFO order, in the position the main solve would have occupied.
  auto maybeProbeVacuity = [this, &Engine, &St, StrengthFor,
                            OnProbeDone](PathWork &W, ReuseSource Src,
                                         bool Urgent) {
    if (!Opts.CheckVacuity || W.VC->Assumptions.empty())
      return;
    const std::string ProbeKey =
        W.MainKey.empty() ? "" : W.MainKey + ":vacuity";
    // The probe verdict must come from the same medium as the reused proof:
    // a journal-reused proof consults the journal, a store-answered proof
    // consults the store. A freshly solved main always probes live.
    const JournalRecord *ProbePast = nullptr;
    if (Src == ReuseSource::Journal && Jrnl.isOpen())
      ProbePast = Jrnl.lookup(ProbeKey);
    else if (Src == ReuseSource::Store && Store)
      ProbePast = Store->lookup(ProbeKey);
    if (ProbePast && ProbePast->Status == SmtStatus::Sat) {
      // The record shows this probe already passed: the contract is known
      // satisfiable, and the reused proof need not pay the vacuity cost
      // again. This is the ONLY case where a reused proof skips the probe.
      if (Src == ReuseSource::Store) {
        // Replay the recorded probe time so aggregate per-procedure timings
        // (and thus stdout) match the run that produced the proof.
        W.ProbeSeconds = ProbePast->Seconds;
        ++WorkerStats.StoreHits;
      }
      return;
    }
    if (ProbePast && ProbePast->Status == SmtStatus::Unsat) {
      // The run that recorded the proof also found the contract vacuous.
      // Replay that verdict rather than re-probing: the refutation is as
      // durable as the proof it voids.
      ObligationResult V;
      V.Name = W.VC->Name + " [vacuity]";
      V.Status = SmtStatus::Unsat;
      V.Model = ProbePast->Detail;
      if (Src == ReuseSource::Store) {
        V.FromStore = true;
        V.Seconds = ProbePast->Seconds;
        W.ProbeSeconds = ProbePast->Seconds;
        ++WorkerStats.StoreHits;
      } else {
        V.FromJournal = true;
      }
      W.Vac = std::move(V);
      W.HasVac = true;
      W.VacFailed = true;
      return;
    }
    if (St.Budget.exhausted())
      return;
    // A live probe with a store attached is a cache miss: its verdict will
    // be recorded (OnProbeDone) so the next run can hit.
    if (Store)
      ++WorkerStats.StoreMisses;

    // Reaching here with a journal-reused proof means the journal holds no
    // probe verdict (the run was killed between journaling the unsat and
    // probing) or an Unknown one — both must be (re-)probed, exactly like
    // any other journaled non-answer.
    //
    // Probe the contract (the path's first assumption: the pre or the loop
    // invariant) together with the unfoldings. Branch conditions are
    // excluded: infeasible paths are vacuous by design; an unsatisfiable
    // *contract* is the annotation bug this check exists for (e.g. an
    // impure conjunct whose strict heaplet cannot equal the formula's).
    //
    // The probe rides the same resilient dispatch as real obligations —
    // retry, reseed, fault injection, sandboxing — but with the (short)
    // vacuity deadline as its ceiling and no tactic degradation: dropping
    // strengthening would change what "satisfiable" means here. Portfolio
    // mode is ignored for probes for the same reason: there is only one
    // meaningful tactic set to run.
    RetryPolicy ProbePolicy = retryPolicy();
    ProbePolicy.MaxTimeoutMs = std::min(Opts.VacuityTimeoutMs, Opts.TimeoutMs);
    ProbePolicy.InitialTimeoutMs =
        std::min(ProbePolicy.InitialTimeoutMs, ProbePolicy.MaxTimeoutMs);
    ProbePolicy.DegradeTactics = false;
    // The probe's deadline cannot escalate (it is capped at the short
    // vacuity timeout), so attempts past one reseeded retry buy nothing.
    ProbePolicy.MaxAttempts = std::min(ProbePolicy.MaxAttempts, 2u);

    ObligationSpec Spec;
    Spec.Name = W.VC->Name + " [vacuity]";
    Spec.Policy = ProbePolicy;
    Spec.Inject = Opts.Inject;
    Spec.Sandbox = sandboxOptions();
    Spec.Budget = &St.Budget;
    Spec.Urgent = Urgent;
    // Probes run on the primary backend only — no portfolio, no
    // cross-checks: there is one meaningful tactic set, and the probe's
    // verdict keys off the proof it validates, not off a race.
    if (!Opts.Backends.empty())
      Spec.Backends = {Opts.Backends.front()};
    Spec.Build = [this, &W, StrengthFor](SmtSolver &Probe,
                                         const AttemptInfo &) {
      Probe.add(W.VC->Assumptions.front());
      for (const Formula *F : StrengthFor(W, 0))
        Probe.add(F);
    };
    Engine.submit(std::move(Spec),
                  [&W, ProbeKey, OnProbeDone](const DispatchResult &PD) {
                    OnProbeDone(W, ProbeKey, PD);
                  });
  };

  // Assembly-mode vacuity: mirror the live probe protocol, but every
  // verdict must already be in the journal. The soundness rule from the
  // resume path applies with extra force here — a journaled proof whose
  // probe verdict is missing CANNOT be re-probed (assembly never solves),
  // so it is surfaced as an unresolved infrastructure failure instead of
  // being trusted.
  auto assembleVacuity = [this](PathWork &W) {
    if (!Opts.CheckVacuity || W.VC->Assumptions.empty())
      return;
    const JournalRecord *P =
        W.MainKey.empty() ? nullptr : Jrnl.lookup(W.MainKey + ":vacuity");
    if (!P) {
      ObligationResult V;
      V.Name = W.VC->Name + " [vacuity unresolved]";
      V.Status = SmtStatus::Unknown;
      V.Failure = FailureKind::SolverCrash;
      V.FailureDetail =
          "journaled proof has no vacuity verdict (shard lost before "
          "probing); the proof cannot be trusted until re-run";
      W.Vac = std::move(V);
      W.HasVac = true;
      W.VacFailed = true; // fails the procedure: verdict is unvalidated
      return;
    }
    W.ProbeSeconds = P->Seconds;
    if (P->Status == SmtStatus::Sat)
      return; // contract satisfiable; the proof stands
    ObligationResult V;
    if (P->Status == SmtStatus::Unsat) {
      V.Name = W.VC->Name + " [vacuity]";
      V.Status = SmtStatus::Unsat;
      V.Model = P->Detail;
      W.VacFailed = true;
    } else {
      V.Name = W.VC->Name + " [vacuity skipped]";
      V.Status = SmtStatus::Unknown;
      V.Failure = P->Failure;
      V.FailureDetail = "vacuity probe unanswered: " + P->Detail;
    }
    V.Attempts = P->Attempts;
    V.Seconds = P->Seconds;
    W.Vac = std::move(V);
    W.HasVac = true;
  };

  // Assembly mode: resolve one obligation from the merged journal instead
  // of dispatching it. A missing record means the shard that owned this
  // obligation died without journaling it — an infrastructure failure that
  // the partial report must show, never a silent "verified".
  auto assembleObligation = [this, assembleVacuity](PathWork &W,
                                                    const std::string &Name,
                                                    const std::string &BaseKey,
                                                    ObligationResult *Slot,
                                                    bool IsMain) {
    ObligationResult O;
    O.Name = Name;
    // The merged journal may hold this obligation under any configured
    // backend's key (shards can run heterogeneous fleets). Prefer a proof;
    // otherwise report whichever record exists.
    const JournalRecord *R = nullptr;
    std::string FoundKey;
    for (const std::string &B : backendNames()) {
      const std::string K = keyForBackend(BaseKey, B);
      const JournalRecord *C = Jrnl.lookup(K);
      if (C && (!R || (R->Status != SmtStatus::Unsat &&
                       C->Status == SmtStatus::Unsat))) {
        R = C;
        FoundKey = K;
      }
    }
    if (IsMain)
      W.MainKey = FoundKey.empty()
                      ? keyForBackend(BaseKey, backendNames().front())
                      : FoundKey;
    if (!R) {
      O.Status = SmtStatus::Unknown;
      O.Failure = FailureKind::SolverCrash;
      O.FailureDetail = "no journaled outcome for this obligation (shard "
                        "lost or journal incomplete)";
    } else {
      O.Status = R->Status;
      O.Failure =
          R->Status == SmtStatus::Unknown ? R->Failure : FailureKind::None;
      O.FailureDetail = R->Status == SmtStatus::Unknown ? R->Detail : "";
      O.Attempts = R->Attempts;
      O.DegradeLevel = R->DegradeLevel;
      O.Seconds = R->Seconds;
      if (R->Status == SmtStatus::Sat)
        O.Model = R->Detail;
    }
    bool Proved = O.Status == SmtStatus::Unsat;
    *Slot = std::move(O);
    if (IsMain && Proved)
      assembleVacuity(W);
  };

  // Plans one obligation of a path: assigns its dump stem, computes its
  // journal key, applies the shard filter, reuses a journaled proof when
  // resuming, and otherwise submits it to the engine. \p Slot is where the
  // completion writes the result; \p IsMain marks the path's Hoare-triple
  // obligation, which owns the vacuity protocol.
  auto submitObligation = [this, &Engine, &St, StrengthFor, maybeProbeVacuity,
                           assembleObligation](PathWork &W, std::string Name,
                                               size_t NumAssumptions,
                                               const Formula *Goal,
                                               ObligationResult *Slot,
                                               bool IsMain) {
    std::string Stem;
    if (!Opts.DumpSmt2Dir.empty())
      Stem = uniqueDumpStem(Name);

    // Content key: hash of the full-tactics query plus the tactic
    // configuration. Computed at plan time so a resumed run (or a store
    // hit) can skip the solve entirely — and so the shard partition can be
    // decided without coordination: every shard derives the same keys from
    // the same plan. The persistent store shares the journal's key space,
    // which is what makes its records journal-schema-compatible.
    //
    // Records are filed under backend-qualified keys (keyForBackend): the
    // lookup walks every configured backend, primary first, so a portfolio
    // run reuses whichever solver proved the obligation last time — but a
    // run configured for a *different* backend finds nothing and re-solves.
    std::string BaseKey;
    if (Jrnl.isOpen() || Store) {
      SmtSolver KeySolver;
      for (size_t I = 0; I != NumAssumptions; ++I)
        KeySolver.add(W.VC->Assumptions[I]);
      for (const Formula *F : StrengthFor(W, 0))
        KeySolver.add(F);
      KeySolver.addNegated(Goal);
      BaseKey = Journal::contentKey(KeySolver.toSmt2(), tacticConfig(Opts));

      if (Opts.ShardCount > 1) {
        if (SliceCounts.size() < Opts.ShardCount)
          SliceCounts.resize(Opts.ShardCount, 0);
        // Partitioned on the backend-free content key: every shard derives
        // the same slices whatever its --backend flags say.
        unsigned Shard = shardOf(BaseKey, Opts.ShardCount);
        ++SliceCounts[Shard];
        if (!Opts.AssembleFromJournal && Shard != Opts.ShardIndex) {
          // Another shard owns this obligation. Leave a placeholder slot so
          // plan-order bookkeeping (dump stems, slice counts) stays
          // identical to the unsharded run; collection drops it.
          Slot->Name = std::move(Name);
          Slot->OutOfShard = true;
          return;
        }
      }

      if (Opts.AssembleFromJournal) {
        assembleObligation(W, Name, BaseKey, Slot, IsMain);
        return;
      }

      if (Opts.Resume && Jrnl.isOpen()) {
        for (const std::string &B : backendNames()) {
          const std::string K = keyForBackend(BaseKey, B);
          const JournalRecord *R = Jrnl.lookup(K);
          if (R && R->Status == SmtStatus::Unsat) {
            // Already proved by an earlier run of this exact query under
            // this exact configuration and backend: reuse the proof, zero
            // attempts.
            ObligationResult O;
            O.Name = Name;
            O.Status = SmtStatus::Unsat;
            O.FromJournal = true;
            *Slot = std::move(O);
            if (IsMain) {
              W.MainKey = K;
              maybeProbeVacuity(W, ReuseSource::Journal, /*Urgent=*/false);
            }
            return;
          }
          // Sat / unknown / infrastructure failures are replayed: those
          // are exactly the outcomes a retry (or a fixed environment) can
          // improve.
        }
      }

      if (Store) {
        for (const std::string &B : backendNames()) {
          const std::string K = keyForBackend(BaseKey, B);
          const JournalRecord *R = Store->lookup(K);
          if (R && R->Status == SmtStatus::Unsat) {
            // Cache hit: this exact query under this exact configuration
            // was proved by some earlier run of this backend. Replay the
            // recorded verdict (and its solve time, so aggregate timings —
            // and thus stdout — match the run that produced the proof).
            // Only proofs are reused: sat/unknown outcomes are exactly what
            // a retry can improve.
            ++WorkerStats.StoreHits;
            ObligationResult O;
            O.Name = Name;
            O.Status = SmtStatus::Unsat;
            O.Attempts = R->Attempts;
            O.DegradeLevel = R->DegradeLevel;
            O.Seconds = R->Seconds;
            O.FromStore = true;
            *Slot = std::move(O);
            if (IsMain) {
              W.MainKey = K;
              maybeProbeVacuity(W, ReuseSource::Store, /*Urgent=*/false);
            }
            return;
          }
        }
        ++WorkerStats.StoreMisses;
      }
    }

    ObligationSpec Spec;
    Spec.Name = Name;
    Spec.Policy = retryPolicy();
    Spec.Inject = Opts.Inject;
    Spec.Sandbox = sandboxOptions();
    Spec.Budget = &St.Budget;
    Spec.Portfolio = Opts.Portfolio;
    Spec.Backends = Opts.Backends;
    Spec.Build = [this, &W, StrengthFor, NumAssumptions, Goal,
                  Stem](SmtSolver &Solver, const AttemptInfo &Info) {
      for (size_t I = 0; I != NumAssumptions; ++I)
        Solver.add(W.VC->Assumptions[I]);
      for (const Formula *F : StrengthFor(W, Info.DegradeLevel))
        Solver.add(F);
      Solver.addNegated(Goal);

      // Every attempt is dumped — a degraded re-dispatch runs a *different*
      // query, and debugging a flaky obligation needs exactly those. The
      // stem was fixed at plan time, so parallel runs emit the same files.
      if (!Opts.DumpSmt2Dir.empty()) {
        std::string File = Stem;
        if (Info.Index > 1 || Info.DegradeLevel > 0) {
          File += ".a" + std::to_string(Info.Index);
          if (Info.DegradeLevel > 0)
            File += ".d" + std::to_string(Info.DegradeLevel);
        }
        std::ofstream Out(Opts.DumpSmt2Dir + "/" + File + ".smt2");
        Out << Solver.toSmt2();
      }
    };
    Engine.submit(std::move(Spec), [this, &W, Name, BaseKey, Slot, IsMain,
                                    maybeProbeVacuity](const DispatchResult &D) {
      ObligationResult O;
      O.Name = Name;
      O.Status = D.Status;
      O.Failure =
          D.Status == SmtStatus::Unknown ? D.Failure : FailureKind::None;
      O.FailureDetail = D.Status == SmtStatus::Unknown ? D.Detail : "";
      O.Attempts = D.Attempts;
      O.DegradeLevel = D.DegradeLevel;
      O.Seconds = D.Seconds;
      O.Model = D.ModelText;

      // Filed under the key of the backend that actually produced this
      // answer (under a portfolio the race winner, not necessarily the
      // primary); the vacuity probe's sub-key pairs with the same record.
      const std::string Key =
          BaseKey.empty() ? std::string() : keyForBackend(BaseKey, D.Backend);
      if (IsMain && !Key.empty())
        W.MainKey = Key;

      // The journal (and store) are appended from the event-loop thread
      // only (this completion), so records never interleave mid-line even
      // at `--jobs N`; completion order varies with worker timing, which
      // the content-keyed later-records-win format absorbs. Concurrent
      // writers from *other processes* are a different matter — both media
      // flock(2) each append for them.
      if ((Jrnl.isOpen() || Store) && !Key.empty()) {
        JournalRecord R;
        R.Key = Key;
        R.Name = Name;
        R.Status = O.Status;
        R.Failure = O.Failure;
        R.Attempts = O.Attempts;
        R.DegradeLevel = O.DegradeLevel;
        R.Seconds = O.Seconds;
        R.Detail = O.Status == SmtStatus::Sat ? O.Model : O.FailureDetail;
        if (Jrnl.isOpen())
          Jrnl.append(R);
        if (Store)
          Store->put(R);
      }

      bool Proved = O.Status == SmtStatus::Unsat;
      *Slot = std::move(O);
      if (IsMain && Proved)
        maybeProbeVacuity(W, ReuseSource::None, /*Urgent=*/true);
    });
  };

  // Plan phase: walk the paths in deterministic order, generate each VC,
  // and submit every obligation. Without a sandbox the engine solves
  // synchronously right here (the classic sequential run); with one,
  // submissions queue FIFO and drain() runs them `--jobs N` wide.
  for (const BasicPath &BP : Paths) {
    St.Work.emplace_back();
    PathWork &W = St.Work.back();
    W.VC = Gen.generate(P, BP, Diags);
    if (!W.VC) {
      St.PR.Verified = false;
      St.Work.pop_back();
      continue;
    }

    // Call-site precondition checks (prefix assumptions only).
    W.Calls.resize(W.VC->CallChecks.size());
    for (size_t I = 0; I != W.VC->CallChecks.size(); ++I) {
      const CallCheck &C = W.VC->CallChecks[I];
      submitObligation(W, C.Desc, C.NumAssumptions, C.Goal, &W.Calls[I],
                       /*IsMain=*/false);
    }

    // The main Hoare-triple obligation.
    submitObligation(W, W.VC->Name, W.VC->Assumptions.size(), W.VC->Goal,
                     &W.Main, /*IsMain=*/true);
  }
}

ProcResult Verifier::collectProc(ProcState &St) {
  // Assemble the report in plan order, not completion order, so the output
  // is byte-identical across `--jobs` values (and across shard counts,
  // once the journals are merged and assembled).
  ProcResult PR = std::move(St.PR);
  for (PathWork &W : St.Work) {
    for (ObligationResult &O : W.Calls) {
      if (O.OutOfShard) {
        ++PR.OutOfShard;
        continue;
      }
      PR.Verified &= (O.Status == SmtStatus::Unsat);
      PR.Seconds += O.Seconds;
      PR.Obligations.push_back(std::move(O));
    }
    if (W.Main.OutOfShard) {
      ++PR.OutOfShard;
    } else {
      PR.Verified &= (W.Main.Status == SmtStatus::Unsat);
      PR.Seconds += W.Main.Seconds;
      PR.Obligations.push_back(std::move(W.Main));
    }
    if (W.HasVac) {
      if (W.VacFailed)
        PR.Verified = false;
      PR.Obligations.push_back(std::move(W.Vac));
    }
    PR.Seconds += W.ProbeSeconds;
  }
  St.Work.clear();
  return PR;
}

ProcResult Verifier::verifyProc(const Procedure &P, DiagEngine &Diags) {
  // An external pool (the serve daemon's long-lived warm fleet) is used in
  // place of a per-call pool; its stats are folded in as a delta so a
  // daemon's lifetime counters are not re-counted per request.
  std::optional<Scheduler> Local;
  Scheduler *PoolP = ExternalPool;
  if (!PoolP) {
    Local.emplace(std::max(1u, Opts.Jobs), warmPoolOptions());
    PoolP = &*Local;
  }
  DispatchEngine Engine(*PoolP);
  PoolStats Before = PoolP->stats();
  ProcState St;
  St.Proc = &P;
  planProc(Engine, St, Diags);
  Engine.drain();
  WorkerStats.accumulate(PoolP->stats().since(Before));
  Alarms.insert(Alarms.end(), Engine.divergences().begin(),
                Engine.divergences().end());
  return collectProc(St);
}

std::vector<ProcResult> Verifier::verifyAll(DiagEngine &Diags) {
  // One pool and engine for the whole module: obligations from different
  // procedures share the `--jobs N` slots, so a slot freed by the last
  // obligation of one procedure immediately starts the next procedure's
  // work instead of idling at the drain barrier. Per-procedure deadline
  // budgets still hold — each arms when its first attempt actually starts
  // (see DeadlineBudget::arm), so time queued behind other procedures is
  // never billed.
  std::optional<Scheduler> Local;
  Scheduler *PoolP = ExternalPool;
  if (!PoolP) {
    Local.emplace(std::max(1u, Opts.Jobs), warmPoolOptions());
    PoolP = &*Local;
  }
  DispatchEngine Engine(*PoolP);
  PoolStats Before = PoolP->stats();
  std::deque<ProcState> Procs;
  for (const Procedure &P : M.Procs) {
    // Contract-only declarations have nothing to check.
    if (!P.HasBody)
      continue;
    Procs.emplace_back();
    Procs.back().Proc = &P;
    planProc(Engine, Procs.back(), Diags);
  }
  Engine.drain();
  WorkerStats.accumulate(PoolP->stats().since(Before));
  Alarms.insert(Alarms.end(), Engine.divergences().begin(),
                Engine.divergences().end());
  std::vector<ProcResult> Out;
  for (ProcState &St : Procs)
    Out.push_back(collectProc(St));
  return Out;
}
