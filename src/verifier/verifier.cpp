//===--- verifier.cpp - End-to-end verification driver ----------------------===//

#include "verifier/verifier.h"

#include "lang/paths.h"
#include "support/hash.h"
#include "vcgen/vc.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <optional>

using namespace dryad;

namespace {
/// The configuration half of a journal key: everything besides the query
/// text that could change an obligation's meaning. Deadlines and seeds are
/// deliberately absent — a proof stays a proof under a different timeout.
std::string tacticConfig(const VerifyOptions &Opts) {
  std::string C = "solver=z3;tactics=";
  C += Opts.Natural.Unfold ? 'u' : '-';
  C += Opts.Natural.Frames ? 'f' : '-';
  C += Opts.Natural.Axioms ? 'a' : '-';
  return C;
}

/// Collision-free dump filename stem: the readable sanitized name plus a
/// short content hash of the *original* name, so obligations differing only
/// in non-alphanumeric characters ("p [path 1]" vs "p (path 1)") cannot
/// overwrite each other.
std::string dumpFileStem(const std::string &Name) {
  std::string File = Name;
  for (char &C : File)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return File + "-" + hex64(fnv1a64(Name), 8);
}
} // namespace

Verifier::Verifier(Module &M, VerifyOptions Opts) : M(M), Opts(Opts) {
  if (!Opts.JournalPath.empty())
    Jrnl.open(Opts.JournalPath, /*LoadExisting=*/Opts.Resume, JournalErr);
}

SandboxOptions Verifier::sandboxOptions() const {
  SandboxOptions S;
  S.Enabled = Opts.Isolate;
  S.MemLimitMb = Opts.MemLimitMb;
  return S;
}

RetryPolicy Verifier::retryPolicy() const {
  RetryPolicy P;
  P.MaxAttempts = std::max(1u, Opts.Attempts);
  P.InitialTimeoutMs = std::min(Opts.InitialTimeoutMs, Opts.TimeoutMs);
  P.MaxTimeoutMs = Opts.TimeoutMs;
  // Degradation only makes sense while there is a tactic left to drop.
  // Attempts == 1 requests classic single-shot dispatch, so the whole
  // resilience ladder — including degraded re-dispatch — is off.
  P.DegradeLevels = maxDegradeLevels(Opts.Natural);
  P.DegradeTactics =
      Opts.DegradeTactics && P.MaxAttempts > 1 && P.DegradeLevels > 0;
  return P;
}

ObligationResult
Verifier::discharge(const std::string &Name,
                    const std::vector<const Formula *> &Assumptions,
                    size_t NumAssumptions, const StrengthFn &Strength,
                    const Formula *Goal, DeadlineBudget &Budget,
                    std::string *JournalKeyOut) {
  auto Build = [&](SmtSolver &Solver, const AttemptInfo &Info) {
    for (size_t I = 0; I != NumAssumptions; ++I)
      Solver.add(Assumptions[I]);
    for (const Formula *F : Strength(Info.DegradeLevel))
      Solver.add(F);
    Solver.addNegated(Goal);

    // Every attempt is dumped — a degraded re-dispatch runs a *different*
    // query, and debugging a flaky obligation needs exactly those.
    if (!Opts.DumpSmt2Dir.empty()) {
      std::string File = dumpFileStem(Name);
      if (Info.Index > 1 || Info.DegradeLevel > 0) {
        File += ".a" + std::to_string(Info.Index);
        if (Info.DegradeLevel > 0)
          File += ".d" + std::to_string(Info.DegradeLevel);
      }
      std::ofstream Out(Opts.DumpSmt2Dir + "/" + File + ".smt2");
      Out << Solver.toSmt2();
    }
  };

  // Journal key: content hash of the full-tactics query plus the tactic
  // configuration. Computed before dispatch so a resumed run can skip the
  // solve entirely.
  std::string Key;
  if (Jrnl.isOpen()) {
    SmtSolver KeySolver;
    for (size_t I = 0; I != NumAssumptions; ++I)
      KeySolver.add(Assumptions[I]);
    for (const Formula *F : Strength(0))
      KeySolver.add(F);
    KeySolver.addNegated(Goal);
    Key = Journal::contentKey(KeySolver.toSmt2(), tacticConfig(Opts));
    if (JournalKeyOut)
      *JournalKeyOut = Key;

    if (Opts.Resume) {
      const JournalRecord *R = Jrnl.lookup(Key);
      if (R && R->Status == SmtStatus::Unsat) {
        // Already proved by an earlier run of this exact query under this
        // exact configuration: reuse the proof, zero attempts.
        ObligationResult O;
        O.Name = Name;
        O.Status = SmtStatus::Unsat;
        O.FromJournal = true;
        return O;
      }
      // Sat / unknown / infrastructure failures are replayed: those are
      // exactly the outcomes a retry (or a fixed environment) can improve.
    }
  }

  ResilientSolver RS(retryPolicy(), Budget, Opts.Inject);
  RS.setSandbox(sandboxOptions());
  DispatchResult D = RS.dispatch(Build);

  ObligationResult O;
  O.Name = Name;
  O.Status = D.Status;
  O.Failure = D.Status == SmtStatus::Unknown ? D.Failure : FailureKind::None;
  O.FailureDetail = D.Status == SmtStatus::Unknown ? D.Detail : "";
  O.Attempts = D.Attempts;
  O.DegradeLevel = D.DegradeLevel;
  O.Seconds = D.Seconds;
  O.Model = D.ModelText;

  if (Jrnl.isOpen()) {
    JournalRecord R;
    R.Key = Key;
    R.Name = Name;
    R.Status = O.Status;
    R.Failure = O.Failure;
    R.Attempts = O.Attempts;
    R.DegradeLevel = O.DegradeLevel;
    R.Seconds = O.Seconds;
    R.Detail = O.Status == SmtStatus::Sat ? O.Model : O.FailureDetail;
    Jrnl.append(R);
  }
  return O;
}

ProcResult Verifier::verifyProc(const Procedure &P, DiagEngine &Diags) {
  ProcResult PR;
  PR.Proc = P.Name;
  PR.Verified = true;
  DeadlineBudget Budget(Opts.ProcBudgetMs);

  std::vector<BasicPath> Paths = extractPaths(M, P, Diags);
  VCGen Gen(M);
  for (const BasicPath &BP : Paths) {
    std::optional<VCond> VC = Gen.generate(P, BP, Diags);
    if (!VC) {
      PR.Verified = false;
      continue;
    }

    // Strengthening per degradation level, built lazily and cached: level 0
    // is the configured tactic set, level 1 drops axiom instantiation,
    // level 2 also drops frames. Unfolding is never dropped.
    std::array<std::optional<NaturalProof>, 3> NPs;
    auto StrengthFor =
        [&](unsigned Level) -> const std::vector<const Formula *> & {
      Level = std::min(Level, 2u);
      if (!NPs[Level])
        NPs[Level] =
            buildNaturalProof(M, *VC, degradeTactics(Opts.Natural, Level));
      return NPs[Level]->Assertions;
    };

    // Call-site precondition checks (prefix assumptions only).
    for (const CallCheck &C : VC->CallChecks) {
      ObligationResult O = discharge(C.Desc, VC->Assumptions,
                                     C.NumAssumptions, StrengthFor, C.Goal,
                                     Budget);
      PR.Verified &= (O.Status == SmtStatus::Unsat);
      PR.Seconds += O.Seconds;
      PR.Obligations.push_back(std::move(O));
    }

    // The main Hoare-triple obligation.
    std::string MainKey;
    ObligationResult O =
        discharge(VC->Name, VC->Assumptions, VC->Assumptions.size(),
                  StrengthFor, VC->Goal, Budget, &MainKey);
    PR.Verified &= (O.Status == SmtStatus::Unsat);
    bool MainProved = O.Status == SmtStatus::Unsat;
    bool MainFromJournal = O.FromJournal;
    PR.Seconds += O.Seconds;
    PR.Obligations.push_back(std::move(O));

    // Vacuity probe: the path's assumptions must be satisfiable, otherwise
    // the contract (not the code) is wrong and the proof above is void.
    //
    // The probe's own outcome is journaled under a suffixed key, because
    // the main proof is journaled *before* the probe runs: without a probe
    // record, a --resume run could reuse an unsat that a later probe
    // refuted (vacuous contract), or that was never probed because the run
    // was killed in between — silently flipping a failure to "verified".
    const std::string ProbeKey = MainKey.empty() ? "" : MainKey + ":vacuity";
    const JournalRecord *ProbePast =
        (MainFromJournal && Jrnl.isOpen()) ? Jrnl.lookup(ProbeKey) : nullptr;
    if (Opts.CheckVacuity && MainProved && !VC->Assumptions.empty() &&
        ProbePast && ProbePast->Status == SmtStatus::Sat) {
      // The journal shows this probe already passed: the contract is known
      // satisfiable, and --resume need not pay the vacuity cost again.
      // This is the ONLY case where a journal-reused proof skips the
      // probe.
    } else if (Opts.CheckVacuity && MainProved && !VC->Assumptions.empty() &&
               ProbePast && ProbePast->Status == SmtStatus::Unsat) {
      // The run that journaled the proof also found the contract vacuous.
      // Replay that verdict rather than re-probing: the refutation is as
      // durable as the proof it voids.
      ObligationResult V;
      V.Name = VC->Name + " [vacuity]";
      V.Status = SmtStatus::Unsat;
      V.Model = ProbePast->Detail;
      V.FromJournal = true;
      PR.Verified = false;
      PR.Obligations.push_back(std::move(V));
    } else if (Opts.CheckVacuity && MainProved && !VC->Assumptions.empty() &&
               !Budget.exhausted()) {
      // Reaching here with a journal-reused proof means the journal holds
      // no probe verdict (the run was killed between journaling the unsat
      // and probing) or an Unknown one — both must be (re-)probed, exactly
      // like any other journaled non-answer.
      //
      // Probe the contract (the path's first assumption: the pre or the
      // loop invariant) together with the unfoldings. Branch conditions are
      // excluded: infeasible paths are vacuous by design; an unsatisfiable
      // *contract* is the annotation bug this check exists for (e.g. an
      // impure conjunct whose strict heaplet cannot equal the formula's).
      //
      // The probe rides the same resilient dispatch as real obligations —
      // retry, reseed, fault injection, sandboxing — but with the (short)
      // vacuity deadline as its ceiling and no tactic degradation: dropping
      // strengthening would change what "satisfiable" means here.
      RetryPolicy ProbePolicy = retryPolicy();
      ProbePolicy.MaxTimeoutMs = std::min(Opts.VacuityTimeoutMs,
                                          Opts.TimeoutMs);
      ProbePolicy.InitialTimeoutMs =
          std::min(ProbePolicy.InitialTimeoutMs, ProbePolicy.MaxTimeoutMs);
      ProbePolicy.DegradeTactics = false;
      // The probe's deadline cannot escalate (it is capped at the short
      // vacuity timeout), so attempts past one reseeded retry buy nothing.
      ProbePolicy.MaxAttempts = std::min(ProbePolicy.MaxAttempts, 2u);
      ResilientSolver ProbeRS(ProbePolicy, Budget, Opts.Inject);
      ProbeRS.setSandbox(sandboxOptions());
      DispatchResult PD =
          ProbeRS.dispatch([&](SmtSolver &Probe, const AttemptInfo &) {
            Probe.add(VC->Assumptions.front());
            for (const Formula *F : StrengthFor(0))
              Probe.add(F);
          });
      PR.Seconds += PD.Seconds;

      const char *VacuousMsg = "assumptions unsatisfiable: the contract/"
                               "invariant contradicts the heaplet semantics";
      // Journal the probe verdict so the next --resume can skip a passed
      // probe (Sat), replay a vacuity failure (Unsat), or re-probe an
      // unanswered one (Unknown).
      if (Jrnl.isOpen()) {
        JournalRecord R;
        R.Key = ProbeKey;
        R.Name = VC->Name + " [vacuity]";
        R.Status = PD.Status;
        R.Failure =
            PD.Status == SmtStatus::Unknown ? PD.Failure : FailureKind::None;
        R.Attempts = PD.Attempts;
        R.Seconds = PD.Seconds;
        R.Detail = PD.Status == SmtStatus::Unsat      ? VacuousMsg
                   : PD.Status == SmtStatus::Unknown ? PD.Detail
                                                      : "";
        Jrnl.append(R);
      }

      if (PD.Status == SmtStatus::Unsat) {
        ObligationResult V;
        V.Name = VC->Name + " [vacuity]";
        V.Status = SmtStatus::Unsat;
        V.Attempts = PD.Attempts;
        V.Seconds = PD.Seconds;
        V.Model = VacuousMsg;
        PR.Verified = false;
        PR.Obligations.push_back(std::move(V));
      } else if (PD.Status == SmtStatus::Unknown) {
        // The probe is advisory: an unanswered probe must not fail the
        // proof, but silently dropping the check would hide that the
        // contract was never validated — record it.
        ObligationResult V;
        V.Name = VC->Name + " [vacuity skipped]";
        V.Status = SmtStatus::Unknown;
        V.Failure = PD.Failure;
        V.FailureDetail = "vacuity probe unanswered: " + PD.Detail;
        V.Attempts = PD.Attempts;
        V.Seconds = PD.Seconds;
        PR.Obligations.push_back(std::move(V));
      }
      // Sat: the contract is satisfiable — the proof stands, nothing to
      // record.
    }
  }
  return PR;
}

std::vector<ProcResult> Verifier::verifyAll(DiagEngine &Diags) {
  std::vector<ProcResult> Out;
  for (const Procedure &P : M.Procs) {
    // Contract-only declarations have nothing to check.
    if (!P.HasBody)
      continue;
    Out.push_back(verifyProc(P, Diags));
  }
  return Out;
}
