//===--- verifier.cpp - End-to-end verification driver ----------------------===//

#include "verifier/verifier.h"

#include "lang/paths.h"
#include "vcgen/vc.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <optional>

using namespace dryad;

RetryPolicy Verifier::retryPolicy() const {
  RetryPolicy P;
  P.MaxAttempts = std::max(1u, Opts.Attempts);
  P.InitialTimeoutMs = std::min(Opts.InitialTimeoutMs, Opts.TimeoutMs);
  P.MaxTimeoutMs = Opts.TimeoutMs;
  // Degradation only makes sense while there is a tactic left to drop.
  // Attempts == 1 requests classic single-shot dispatch, so the whole
  // resilience ladder — including degraded re-dispatch — is off.
  P.DegradeLevels = maxDegradeLevels(Opts.Natural);
  P.DegradeTactics =
      Opts.DegradeTactics && P.MaxAttempts > 1 && P.DegradeLevels > 0;
  return P;
}

ObligationResult
Verifier::discharge(const std::string &Name,
                    const std::vector<const Formula *> &Assumptions,
                    size_t NumAssumptions, const StrengthFn &Strength,
                    const Formula *Goal, DeadlineBudget &Budget) {
  ResilientSolver RS(retryPolicy(), Budget, Opts.Inject);
  DispatchResult D = RS.dispatch([&](SmtSolver &Solver,
                                     const AttemptInfo &Info) {
    for (size_t I = 0; I != NumAssumptions; ++I)
      Solver.add(Assumptions[I]);
    for (const Formula *F : Strength(Info.DegradeLevel))
      Solver.add(F);
    Solver.addNegated(Goal);

    if (!Opts.DumpSmt2Dir.empty() && Info.Index == 1) {
      std::string File = Name;
      for (char &C : File)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      std::ofstream Out(Opts.DumpSmt2Dir + "/" + File + ".smt2");
      Out << Solver.toSmt2();
    }
  });

  ObligationResult O;
  O.Name = Name;
  O.Status = D.Status;
  O.Failure = D.Status == SmtStatus::Unknown ? D.Failure : FailureKind::None;
  O.FailureDetail = D.Status == SmtStatus::Unknown ? D.Detail : "";
  O.Attempts = D.Attempts;
  O.DegradeLevel = D.DegradeLevel;
  O.Seconds = D.Seconds;
  O.Model = D.ModelText;
  return O;
}

ProcResult Verifier::verifyProc(const Procedure &P, DiagEngine &Diags) {
  ProcResult PR;
  PR.Proc = P.Name;
  PR.Verified = true;
  DeadlineBudget Budget(Opts.ProcBudgetMs);

  std::vector<BasicPath> Paths = extractPaths(M, P, Diags);
  VCGen Gen(M);
  for (const BasicPath &BP : Paths) {
    std::optional<VCond> VC = Gen.generate(P, BP, Diags);
    if (!VC) {
      PR.Verified = false;
      continue;
    }

    // Strengthening per degradation level, built lazily and cached: level 0
    // is the configured tactic set, level 1 drops axiom instantiation,
    // level 2 also drops frames. Unfolding is never dropped.
    std::array<std::optional<NaturalProof>, 3> NPs;
    auto StrengthFor =
        [&](unsigned Level) -> const std::vector<const Formula *> & {
      Level = std::min(Level, 2u);
      if (!NPs[Level])
        NPs[Level] =
            buildNaturalProof(M, *VC, degradeTactics(Opts.Natural, Level));
      return NPs[Level]->Assertions;
    };

    // Call-site precondition checks (prefix assumptions only).
    for (const CallCheck &C : VC->CallChecks) {
      ObligationResult O = discharge(C.Desc, VC->Assumptions,
                                     C.NumAssumptions, StrengthFor, C.Goal,
                                     Budget);
      PR.Verified &= (O.Status == SmtStatus::Unsat);
      PR.Seconds += O.Seconds;
      PR.Obligations.push_back(std::move(O));
    }

    // The main Hoare-triple obligation.
    ObligationResult O =
        discharge(VC->Name, VC->Assumptions, VC->Assumptions.size(),
                  StrengthFor, VC->Goal, Budget);
    PR.Verified &= (O.Status == SmtStatus::Unsat);
    bool MainProved = O.Status == SmtStatus::Unsat;
    PR.Seconds += O.Seconds;
    PR.Obligations.push_back(std::move(O));

    // Vacuity probe: the path's assumptions must be satisfiable, otherwise
    // the contract (not the code) is wrong and the proof above is void.
    if (Opts.CheckVacuity && MainProved && !VC->Assumptions.empty() &&
        !Budget.exhausted()) {
      // Probe the contract (the path's first assumption: the pre or the
      // loop invariant) together with the unfoldings. Branch conditions are
      // excluded: infeasible paths are vacuous by design; an unsatisfiable
      // *contract* is the annotation bug this check exists for (e.g. an
      // impure conjunct whose strict heaplet cannot equal the formula's).
      SmtSolver Probe;
      Probe.setTimeoutMs(std::min({Opts.VacuityTimeoutMs, Opts.TimeoutMs,
                                   Budget.remainingMs()}));
      Probe.add(VC->Assumptions.front());
      for (const Formula *F : StrengthFor(0))
        Probe.add(F);
      SmtResult R = Probe.check();
      PR.Seconds += R.Seconds;
      if (R.Status == SmtStatus::Unsat) {
        ObligationResult V;
        V.Name = VC->Name + " [vacuity]";
        V.Status = SmtStatus::Unsat;
        V.Seconds = R.Seconds;
        V.Model = "assumptions unsatisfiable: the contract/invariant "
                  "contradicts the heaplet semantics";
        PR.Verified = false;
        PR.Obligations.push_back(std::move(V));
      }
    }
  }
  return PR;
}

std::vector<ProcResult> Verifier::verifyAll(DiagEngine &Diags) {
  std::vector<ProcResult> Out;
  for (const Procedure &P : M.Procs) {
    // Contract-only declarations have nothing to check.
    if (!P.HasBody)
      continue;
    Out.push_back(verifyProc(P, Diags));
  }
  return Out;
}
