//===--- verifier.cpp - End-to-end verification driver ----------------------===//

#include "verifier/verifier.h"

#include "lang/paths.h"
#include "vcgen/vc.h"

#include <algorithm>
#include <fstream>

using namespace dryad;

ObligationResult
Verifier::discharge(const std::string &Name,
                    const std::vector<const Formula *> &Assumptions,
                    size_t NumAssumptions,
                    const std::vector<const Formula *> &Strength,
                    const Formula *Goal) {
  SmtSolver Solver;
  Solver.setTimeoutMs(Opts.TimeoutMs);
  for (size_t I = 0; I != NumAssumptions; ++I)
    Solver.add(Assumptions[I]);
  for (const Formula *F : Strength)
    Solver.add(F);
  Solver.addNegated(Goal);

  if (!Opts.DumpSmt2Dir.empty()) {
    std::string File = Name;
    for (char &C : File)
      if (!isalnum(static_cast<unsigned char>(C)))
        C = '_';
    std::ofstream Out(Opts.DumpSmt2Dir + "/" + File + ".smt2");
    Out << Solver.toSmt2();
  }

  SmtResult R = Solver.check();
  ObligationResult O;
  O.Name = Name;
  O.Status = R.Status;
  O.Seconds = R.Seconds;
  O.Model = R.ModelText;
  return O;
}

ProcResult Verifier::verifyProc(const Procedure &P, DiagEngine &Diags) {
  ProcResult PR;
  PR.Proc = P.Name;
  PR.Verified = true;

  std::vector<BasicPath> Paths = extractPaths(M, P, Diags);
  VCGen Gen(M);
  for (const BasicPath &BP : Paths) {
    std::optional<VCond> VC = Gen.generate(P, BP, Diags);
    if (!VC) {
      PR.Verified = false;
      continue;
    }
    NaturalProof NP = buildNaturalProof(M, *VC, Opts.Natural);

    // Call-site precondition checks (prefix assumptions only).
    for (const CallCheck &C : VC->CallChecks) {
      ObligationResult O = discharge(C.Desc, VC->Assumptions,
                                     C.NumAssumptions, NP.Assertions, C.Goal);
      PR.Verified &= (O.Status == SmtStatus::Unsat);
      PR.Seconds += O.Seconds;
      PR.Obligations.push_back(std::move(O));
    }

    // The main Hoare-triple obligation.
    ObligationResult O =
        discharge(VC->Name, VC->Assumptions, VC->Assumptions.size(),
                  NP.Assertions, VC->Goal);
    PR.Verified &= (O.Status == SmtStatus::Unsat);
    bool MainProved = O.Status == SmtStatus::Unsat;
    PR.Seconds += O.Seconds;
    PR.Obligations.push_back(std::move(O));

    // Vacuity probe: the path's assumptions must be satisfiable, otherwise
    // the contract (not the code) is wrong and the proof above is void.
    if (Opts.CheckVacuity && MainProved && !VC->Assumptions.empty()) {
      // Probe the contract (the path's first assumption: the pre or the
      // loop invariant) together with the unfoldings. Branch conditions are
      // excluded: infeasible paths are vacuous by design; an unsatisfiable
      // *contract* is the annotation bug this check exists for (e.g. an
      // impure conjunct whose strict heaplet cannot equal the formula's).
      SmtSolver Probe;
      Probe.setTimeoutMs(std::min(Opts.VacuityTimeoutMs, Opts.TimeoutMs));
      Probe.add(VC->Assumptions.front());
      for (const Formula *F : NP.Assertions)
        Probe.add(F);
      SmtResult R = Probe.check();
      PR.Seconds += R.Seconds;
      if (R.Status == SmtStatus::Unsat) {
        ObligationResult V;
        V.Name = VC->Name + " [vacuity]";
        V.Status = SmtStatus::Unsat;
        V.Seconds = R.Seconds;
        V.Model = "assumptions unsatisfiable: the contract/invariant "
                  "contradicts the heaplet semantics";
        PR.Verified = false;
        PR.Obligations.push_back(std::move(V));
      }
    }
  }
  return PR;
}

std::vector<ProcResult> Verifier::verifyAll(DiagEngine &Diags) {
  std::vector<ProcResult> Out;
  for (const Procedure &P : M.Procs) {
    // Contract-only declarations have nothing to check.
    if (!P.HasBody)
      continue;
    Out.push_back(verifyProc(P, Diags));
  }
  return Out;
}
