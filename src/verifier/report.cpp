//===--- report.cpp - Result tables -----------------------------------------===//

#include "verifier/report.h"

#include <cstdio>

using namespace dryad;

static std::string pad(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

static std::string fmtSeconds(double S) {
  char Buf[32];
  if (S < 1.0)
    return "< 1s";
  std::snprintf(Buf, sizeof(Buf), "%.1f", S);
  return std::string(Buf) + "s";
}

std::string dryad::formatResults(const std::string &Title,
                                 const std::vector<ProcResult> &Results,
                                 const std::vector<PaperRow> &Paper) {
  size_t NameW = 28;
  for (const ProcResult &R : Results)
    NameW = std::max(NameW, R.Proc.size() + 2);

  std::string Out = Title + "\n";
  Out += pad("routine", NameW) + pad("status", 12) + pad("time", 10);
  if (!Paper.empty())
    Out += pad("paper", 10);
  Out += "\n";
  Out += std::string(NameW + 22 + (Paper.empty() ? 0 : 10), '-') + "\n";

  for (const ProcResult &R : Results) {
    Out += pad(R.Proc, NameW);
    Out += pad(R.Verified ? "verified" : "FAILED", 12);
    Out += pad(fmtSeconds(R.Seconds), 10);
    if (!Paper.empty()) {
      std::string P = "-";
      for (const PaperRow &Row : Paper)
        if (Row.Routine == R.Proc)
          P = Row.PaperSeconds < 0 ? "< 1s" : fmtSeconds(Row.PaperSeconds);
      Out += pad(P, 10);
    }
    Out += "\n";
    if (!R.Verified)
      for (const ObligationResult &O : R.Obligations) {
        if (O.Name.size() > 9 &&
            O.Name.compare(O.Name.size() - 9, 9, "[vacuity]") == 0) {
          Out += "    " + O.Name + ": " + O.Model + "\n";
        } else if (O.Status == SmtStatus::Sat) {
          Out += "    " + O.Name + ": counterexample: " + O.Model + "\n";
        } else if (O.Status != SmtStatus::Unsat) {
          // Unknown: report the failure taxonomy, not a bare "unknown" —
          // a timeout or lowering error is an infrastructure failure, not
          // evidence the obligation is wrong.
          Out += "    " + O.Name + ": " +
                 (O.Failure == FailureKind::None ? "unknown"
                                                 : failureKindName(O.Failure));
          if (O.Attempts > 1) {
            char Buf[48];
            std::snprintf(Buf, sizeof(Buf), " after %u attempts", O.Attempts);
            Out += Buf;
          }
          if (O.DegradeLevel > 0)
            Out += " (degraded tactics)";
          if (!O.FailureDetail.empty())
            Out += ": " + O.FailureDetail;
          Out += "\n";
        }
      }
  }
  Out += summarize(Results);
  return Out;
}

std::string dryad::summarize(const std::vector<ProcResult> &Results) {
  size_t Verified = 0, Infra = 0, Journaled = 0;
  double Total = 0.0;
  for (const ProcResult &R : Results) {
    Verified += R.Verified ? 1 : 0;
    Total += R.Seconds;
    for (const ObligationResult &O : R.Obligations) {
      Infra += (O.Status == SmtStatus::Unknown &&
                O.Failure != FailureKind::None &&
                O.Failure != FailureKind::SolverUnknown)
                   ? 1
                   : 0;
      Journaled += O.FromJournal ? 1 : 0;
    }
  }
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf), "%zu/%zu routines verified in %.1fs\n",
                Verified, Results.size(), Total);
  std::string Out(Buf);
  if (Journaled) {
    std::snprintf(Buf, sizeof(Buf),
                  "%zu obligation(s) reused from the journal (--resume)\n",
                  Journaled);
    Out += Buf;
  }
  if (Infra) {
    std::snprintf(Buf, sizeof(Buf),
                  "%zu obligation(s) hit infrastructure failures "
                  "(timeout/resource/crash/lowering), not disproofs\n",
                  Infra);
    Out += Buf;
  }
  return Out;
}

std::string dryad::formatWorkerStats(const PoolStats &S) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "workers: spawns=%u (warm=%u cold=%u) served=%u recycles=%u "
                "(count=%u rss=%u crash=%u) solve_s=%.2f",
                S.spawns(), S.WarmSpawns, S.ColdSpawns, S.Served, S.recycles(),
                S.RecycledCount, S.RecycledRss, S.RecycledCrash,
                S.SolveSeconds);
  std::string Out(Buf);
  if (S.StoreHits || S.StoreMisses || S.StoreQuarantined) {
    std::snprintf(Buf, sizeof(Buf),
                  " store: hits=%u misses=%u quarantined=%u", S.StoreHits,
                  S.StoreMisses, S.StoreQuarantined);
    Out += Buf;
  }
  // Per-backend tail, appended strictly last (and only for a heterogeneous
  // or non-Z3 fleet) so the historical fields above keep their exact
  // positions for scripts that grep this line.
  bool PlainZ3 = S.Backends.empty() ||
                 (S.Backends.size() == 1 && S.Backends.count("z3"));
  if (!PlainZ3) {
    Out += " backends:";
    bool First = true;
    for (const auto &KV : S.Backends) {
      std::snprintf(Buf, sizeof(Buf), "%s %s served=%u crashes=%u wins=%u",
                    First ? "" : ";", KV.first.c_str(), KV.second.Served,
                    KV.second.Crashes, KV.second.Wins);
      Out += Buf;
      First = false;
    }
  }
  Out += "\n";
  return Out;
}

void dryad::classifyResults(const std::vector<ProcResult> &Results,
                            bool &AllVerified, bool &AnyGenuineFailure) {
  auto endsWith = [](const std::string &S, const char *Suffix) {
    size_t N = std::char_traits<char>::length(Suffix);
    return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
  };
  for (const ProcResult &R : Results) {
    AllVerified &= R.Verified;
    if (R.Verified)
      continue;
    bool ProcInfra = false, ProcGenuine = false;
    for (const ObligationResult &O : R.Obligations) {
      // Advisory records never fail a proc, so they must not color the
      // exit code of one that failed for another reason.
      if (endsWith(O.Name, "[vacuity skipped]"))
        continue;
      if (O.Status == SmtStatus::Sat)
        ProcGenuine = true; // counterexample
      else if (O.Status == SmtStatus::Unknown) {
        // SolverUnknown is the solver honestly answering "can't prove" —
        // an unproved obligation, not a flake. Same taxonomy split as
        // summarize().
        bool Infra = O.Failure != FailureKind::None &&
                     O.Failure != FailureKind::SolverUnknown;
        (Infra ? ProcInfra : ProcGenuine) = true;
      } else if (endsWith(O.Name, "[vacuity]"))
        ProcGenuine = true; // vacuous contract: a spec bug, not a flake
    }
    // A proc can also fail with no failing obligation (VC generation
    // errors); that is a genuine failure, not a solver flake.
    AnyGenuineFailure |= ProcGenuine || !ProcInfra;
  }
}

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string dryad::jsonReport(
    const std::vector<FileReport> &Files, const PoolStats &Workers,
    int ExitCode,
    const std::vector<std::pair<std::string, std::string>> &Backends) {
  char Buf[256];
  std::string Out = "{\n  \"schema\": 1,\n  \"backends\": [";
  // The active fleet, from the startup probe; fall back to the per-backend
  // stats keys (version unknown) when the caller never probed.
  std::vector<std::pair<std::string, std::string>> Active = Backends;
  if (Active.empty())
    for (const auto &KV : Workers.Backends)
      Active.push_back({KV.first, ""});
  for (size_t I = 0; I != Active.size(); ++I) {
    Out += I ? ", " : "";
    Out += "{\"name\": \"" + jsonEscape(Active[I].first) + "\", \"version\": \"" +
           jsonEscape(Active[I].second) + "\"";
    auto It = Workers.Backends.find(Active[I].first);
    if (It != Workers.Backends.end()) {
      std::snprintf(Buf, sizeof(Buf),
                    ", \"served\": %u, \"crashes\": %u, \"wins\": %u",
                    It->second.Served, It->second.Crashes, It->second.Wins);
      Out += Buf;
    }
    Out += "}";
  }
  Out += "],\n  \"files\": [\n";
  for (size_t FI = 0; FI != Files.size(); ++FI) {
    const FileReport &F = Files[FI];
    Out += "    {\"file\": \"" + jsonEscape(F.File) + "\", \"routines\": [\n";
    for (size_t RI = 0; RI != F.Results.size(); ++RI) {
      const ProcResult &R = F.Results[RI];
      size_t Obligations = R.Obligations.size();
      std::snprintf(Buf, sizeof(Buf),
                    "\"verified\": %s, \"seconds\": %.3f, "
                    "\"obligations\": %zu}",
                    R.Verified ? "true" : "false", R.Seconds, Obligations);
      Out += "      {\"name\": \"" + jsonEscape(R.Proc) + "\", " + Buf;
      Out += RI + 1 != F.Results.size() ? ",\n" : "\n";
    }
    Out += "    ]}";
    Out += FI + 1 != Files.size() ? ",\n" : "\n";
  }
  Out += "  ],\n";
  std::snprintf(Buf, sizeof(Buf),
                "  \"workers\": {\"spawns\": %u, \"warm_spawns\": %u, "
                "\"cold_spawns\": %u, \"served\": %u,\n"
                "    \"recycles\": {\"total\": %u, \"count\": %u, \"rss\": "
                "%u, \"crash\": %u},\n"
                "    \"solve_seconds\": %.3f},\n",
                Workers.spawns(), Workers.WarmSpawns, Workers.ColdSpawns,
                Workers.Served, Workers.recycles(), Workers.RecycledCount,
                Workers.RecycledRss, Workers.RecycledCrash,
                Workers.SolveSeconds);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"store\": {\"hits\": %u, \"misses\": %u, "
                "\"quarantined\": %u},\n",
                Workers.StoreHits, Workers.StoreMisses,
                Workers.StoreQuarantined);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"exit\": %d\n}\n", ExitCode);
  Out += Buf;
  return Out;
}

std::string dryad::formatServeHealth(const ServeHealth &H) {
  char Buf[256];
  std::string Out;
  unsigned long long S = H.UptimeMs / 1000;
  std::snprintf(Buf, sizeof(Buf), "daemon: up %lluh %02llum %02llus\n",
                S / 3600, (S / 60) % 60, S % 60);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "requests: served=%u active=%u queued=%u\n", H.Served,
                H.Active, H.Queued);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "store: keys=%llu hits=%u misses=%u quarantined=%u\n",
                H.StoreKeys, H.StoreHits, H.StoreMisses, H.StoreQuarantined);
  Out += Buf;
  return Out;
}
