//===--- report.cpp - Result tables -----------------------------------------===//

#include "verifier/report.h"

#include <cstdio>

using namespace dryad;

static std::string pad(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

static std::string fmtSeconds(double S) {
  char Buf[32];
  if (S < 1.0)
    return "< 1s";
  std::snprintf(Buf, sizeof(Buf), "%.1f", S);
  return std::string(Buf) + "s";
}

std::string dryad::formatResults(const std::string &Title,
                                 const std::vector<ProcResult> &Results,
                                 const std::vector<PaperRow> &Paper) {
  size_t NameW = 28;
  for (const ProcResult &R : Results)
    NameW = std::max(NameW, R.Proc.size() + 2);

  std::string Out = Title + "\n";
  Out += pad("routine", NameW) + pad("status", 12) + pad("time", 10);
  if (!Paper.empty())
    Out += pad("paper", 10);
  Out += "\n";
  Out += std::string(NameW + 22 + (Paper.empty() ? 0 : 10), '-') + "\n";

  for (const ProcResult &R : Results) {
    Out += pad(R.Proc, NameW);
    Out += pad(R.Verified ? "verified" : "FAILED", 12);
    Out += pad(fmtSeconds(R.Seconds), 10);
    if (!Paper.empty()) {
      std::string P = "-";
      for (const PaperRow &Row : Paper)
        if (Row.Routine == R.Proc)
          P = Row.PaperSeconds < 0 ? "< 1s" : fmtSeconds(Row.PaperSeconds);
      Out += pad(P, 10);
    }
    Out += "\n";
    if (!R.Verified)
      for (const ObligationResult &O : R.Obligations) {
        if (O.Name.size() > 9 &&
            O.Name.compare(O.Name.size() - 9, 9, "[vacuity]") == 0) {
          Out += "    " + O.Name + ": " + O.Model + "\n";
        } else if (O.Status == SmtStatus::Sat) {
          Out += "    " + O.Name + ": counterexample: " + O.Model + "\n";
        } else if (O.Status != SmtStatus::Unsat) {
          // Unknown: report the failure taxonomy, not a bare "unknown" —
          // a timeout or lowering error is an infrastructure failure, not
          // evidence the obligation is wrong.
          Out += "    " + O.Name + ": " +
                 (O.Failure == FailureKind::None ? "unknown"
                                                 : failureKindName(O.Failure));
          if (O.Attempts > 1) {
            char Buf[48];
            std::snprintf(Buf, sizeof(Buf), " after %u attempts", O.Attempts);
            Out += Buf;
          }
          if (O.DegradeLevel > 0)
            Out += " (degraded tactics)";
          if (!O.FailureDetail.empty())
            Out += ": " + O.FailureDetail;
          Out += "\n";
        }
      }
  }
  Out += summarize(Results);
  return Out;
}

std::string dryad::summarize(const std::vector<ProcResult> &Results) {
  size_t Verified = 0, Infra = 0, Journaled = 0;
  double Total = 0.0;
  for (const ProcResult &R : Results) {
    Verified += R.Verified ? 1 : 0;
    Total += R.Seconds;
    for (const ObligationResult &O : R.Obligations) {
      Infra += (O.Status == SmtStatus::Unknown &&
                O.Failure != FailureKind::None &&
                O.Failure != FailureKind::SolverUnknown)
                   ? 1
                   : 0;
      Journaled += O.FromJournal ? 1 : 0;
    }
  }
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf), "%zu/%zu routines verified in %.1fs\n",
                Verified, Results.size(), Total);
  std::string Out(Buf);
  if (Journaled) {
    std::snprintf(Buf, sizeof(Buf),
                  "%zu obligation(s) reused from the journal (--resume)\n",
                  Journaled);
    Out += Buf;
  }
  if (Infra) {
    std::snprintf(Buf, sizeof(Buf),
                  "%zu obligation(s) hit infrastructure failures "
                  "(timeout/resource/crash/lowering), not disproofs\n",
                  Infra);
    Out += Buf;
  }
  return Out;
}
