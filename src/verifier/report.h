//===--- report.h - Result tables -------------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats verification results in the style of the paper's Figures 6/7:
/// one row per routine with its verification status and wall-clock time,
/// optionally alongside the time the paper reported.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_REPORT_H
#define DRYAD_VERIFIER_REPORT_H

#include "verifier/verifier.h"

#include <string>
#include <vector>

namespace dryad {

/// Optional paper-reported number for the comparison column.
struct PaperRow {
  std::string Routine;
  double PaperSeconds = -1.0; ///< < 0 means "< 1s" in the paper
};

std::string formatResults(const std::string &Title,
                          const std::vector<ProcResult> &Results,
                          const std::vector<PaperRow> &Paper = {});

/// One summary line: verified/total and cumulative time.
std::string summarize(const std::vector<ProcResult> &Results);

/// One worker-lifecycle line for stderr, e.g.
///   workers: spawns=4 (warm=4 cold=0) served=267 recycles=3 (count=3 rss=0
///   crash=0) solve_s=41.20 store: hits=12 misses=255 quarantined=0
/// (the `store:` tail appears only when a proof store was in play). Stays
/// off stdout so warm/cold and cold-store/warm-store runs keep
/// byte-identical reports.
std::string formatWorkerStats(const PoolStats &S);

/// The single source of the exit-code taxonomy: folds \p Results into
/// \p AllVerified (every routine verified) and \p AnyGenuineFailure (some
/// failure is a disproof — counterexample, solver-unknown, vacuous
/// contract, or a VC-generation error — rather than an infrastructure
/// flake). Callers map (AllVerified, AnyGenuineFailure) to exit 0/1/3.
/// Shared by the CLI driver and the serve daemon so the two can never
/// drift.
void classifyResults(const std::vector<ProcResult> &Results, bool &AllVerified,
                     bool &AnyGenuineFailure);

/// Per-file results for the machine-readable report.
struct FileReport {
  std::string File;
  std::vector<ProcResult> Results;
};

/// The `--json` report: per-file, per-routine verdicts plus the worker
/// lifecycle counters (spawns, recycles and why, obligations served,
/// cumulative solve time) and the process exit code.
std::string jsonReport(const std::vector<FileReport> &Files,
                       const PoolStats &Workers, int ExitCode);

} // namespace dryad

#endif // DRYAD_VERIFIER_REPORT_H
