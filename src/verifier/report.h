//===--- report.h - Result tables -------------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats verification results in the style of the paper's Figures 6/7:
/// one row per routine with its verification status and wall-clock time,
/// optionally alongside the time the paper reported.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_REPORT_H
#define DRYAD_VERIFIER_REPORT_H

#include "verifier/verifier.h"

#include <string>
#include <vector>

namespace dryad {

/// Optional paper-reported number for the comparison column.
struct PaperRow {
  std::string Routine;
  double PaperSeconds = -1.0; ///< < 0 means "< 1s" in the paper
};

std::string formatResults(const std::string &Title,
                          const std::vector<ProcResult> &Results,
                          const std::vector<PaperRow> &Paper = {});

/// One summary line: verified/total and cumulative time.
std::string summarize(const std::vector<ProcResult> &Results);

} // namespace dryad

#endif // DRYAD_VERIFIER_REPORT_H
