//===--- report.h - Result tables -------------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats verification results in the style of the paper's Figures 6/7:
/// one row per routine with its verification status and wall-clock time,
/// optionally alongside the time the paper reported.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_REPORT_H
#define DRYAD_VERIFIER_REPORT_H

#include "store/wire.h"
#include "verifier/verifier.h"

#include <string>
#include <utility>
#include <vector>

namespace dryad {

/// Optional paper-reported number for the comparison column.
struct PaperRow {
  std::string Routine;
  double PaperSeconds = -1.0; ///< < 0 means "< 1s" in the paper
};

std::string formatResults(const std::string &Title,
                          const std::vector<ProcResult> &Results,
                          const std::vector<PaperRow> &Paper = {});

/// One summary line: verified/total and cumulative time.
std::string summarize(const std::vector<ProcResult> &Results);

/// One worker-lifecycle line for stderr, e.g.
///   workers: spawns=4 (warm=4 cold=0) served=267 recycles=3 (count=3 rss=0
///   crash=0) solve_s=41.20 store: hits=12 misses=255 quarantined=0
///   backends: z3 served=140 crashes=0 wins=9; cvc5 served=127 crashes=1
///   wins=4
/// (the `store:` tail appears only when a proof store was in play; the
/// `backends:` tail only when the fleet was heterogeneous or non-Z3, and
/// always last, so earlier fields keep their historical positions). Stays
/// off stdout so warm/cold and cold-store/warm-store runs keep
/// byte-identical reports.
std::string formatWorkerStats(const PoolStats &S);

/// The `--remote SOCK --ping` report: the daemon's DRYH1 health snapshot
/// as human-readable lines (uptime, served/active/queued requests, store
/// keys and lifetime hit/miss/quarantine counters). Goes to stdout — it is
/// the whole output of a ping run.
std::string formatServeHealth(const ServeHealth &H);

/// The single source of the exit-code taxonomy: folds \p Results into
/// \p AllVerified (every routine verified) and \p AnyGenuineFailure (some
/// failure is a disproof — counterexample, solver-unknown, vacuous
/// contract, or a VC-generation error — rather than an infrastructure
/// flake). Callers map (AllVerified, AnyGenuineFailure) to exit 0/1/3.
/// Shared by the CLI driver and the serve daemon so the two can never
/// drift.
void classifyResults(const std::vector<ProcResult> &Results, bool &AllVerified,
                     bool &AnyGenuineFailure);

/// Per-file results for the machine-readable report.
struct FileReport {
  std::string File;
  std::vector<ProcResult> Results;
};

/// The `--json` report: a schema version, the active solver backends (name
/// + probed version string), per-file per-routine verdicts, the worker
/// lifecycle counters (spawns, recycles and why, obligations served,
/// cumulative solve time, per-backend served/crashes/wins) and the process
/// exit code. \p Backends lists the active fleet as (name, version) pairs;
/// empty means the caller did not probe (daemon fallback) and the array is
/// emitted empty.
std::string
jsonReport(const std::vector<FileReport> &Files, const PoolStats &Workers,
           int ExitCode,
           const std::vector<std::pair<std::string, std::string>> &Backends =
               {});

} // namespace dryad

#endif // DRYAD_VERIFIER_REPORT_H
