//===--- journal.h - Crash-safe obligation journal --------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only JSONL record of obligation outcomes, so an interrupted
/// run — killed by the operator, the OOM killer, or a crash the sandbox
/// could not contain — loses at most the obligation that was in flight.
///
/// Each record is keyed by a content hash of the obligation's serialized
/// SMT-LIB2 benchmark plus the tactic configuration that produced it, *not*
/// by its display name: renaming a procedure or reordering paths never
/// causes a stale hit, and an annotation or tactic change changes the key.
/// The verifier appends an `@<backend>` qualifier to the hash (and the
/// vacuity sub-key follows it: `v1-<hex>@z3:vacuity`), so a proof cached
/// under one solver backend is never replayed under another. One JSON
/// object per line:
///
///   {"key":"v1-<16 hex>@z3","name":"...","status":"unsat","failure":"none",
///    "attempts":1,"degrade":0,"seconds":0.03,"detail":""}
///
/// Records are written with write-then-flush, so every completed obligation
/// is durable before the next one starts. On load, malformed lines (the
/// torn tail of a killed run) are skipped, and later records for the same
/// key win. `--resume` consults the journal before dispatching: a journaled
/// *proved* (unsat) outcome is reused with zero attempts; anything else —
/// sat, unknown, infrastructure failure — is replayed, because those are
/// exactly the outcomes a retry might improve. This doubles as a cross-run
/// result cache.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_JOURNAL_H
#define DRYAD_VERIFIER_JOURNAL_H

#include "smt/solver.h"

#include <cstdio>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dryad {

struct JournalRecord {
  std::string Key;  ///< content key (see Journal::contentKey)
  std::string Name; ///< display name, for humans reading the journal
  SmtStatus Status = SmtStatus::Unknown;
  FailureKind Failure = FailureKind::None;
  unsigned Attempts = 0;
  unsigned DegradeLevel = 0;
  double Seconds = 0.0;
  /// Failure detail (Unknown) or counterexample text (Sat).
  std::string Detail;
};

class Journal {
public:
  Journal() = default;
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens \p Path for appending, creating it if needed. When
  /// \p LoadExisting, previously journaled records are indexed first (the
  /// resume path). Returns false and fills \p Err on I/O failure.
  bool open(const std::string &Path, bool LoadExisting, std::string &Err);

  /// Indexes \p Path without opening a writer: append() becomes an
  /// index-only update. This is how a merged journal is consumed for report
  /// assembly — the records are read, never re-written.
  bool openReadOnly(const std::string &Path, std::string &Err);

  bool isOpen() const { return Out != nullptr || ReadOnly; }

  /// fsync(2) after every appended record. Off by default: the per-record
  /// flush already bounds a process kill to one in-flight obligation; the
  /// fsync upgrade bounds a *power loss* to one torn tail record
  /// (`--fsync-journal`).
  void setFsync(bool On) { Fsync = On; }

  /// File descriptor of the writer, or -1. A termination handler may
  /// fsync(2) this fd (async-signal-safely) before _exit.
  int writerFd() const;

  /// Appends one record and flushes it to the OS before returning, so a
  /// killed process loses at most the in-flight obligation. The write is
  /// taken under flock(2) LOCK_EX, so concurrent writers sharing one
  /// journal file (e.g. hand-run shard drivers) can never interleave a
  /// record. Also updates the in-memory index (later records win).
  void append(const JournalRecord &R);

  /// Merges shard journals into one JSONL file: inputs are read in order,
  /// later records win per key (within a file and across files), torn
  /// tails are skipped, and a missing input (a shard that died before its
  /// first append) counts as empty. The winning record of every key is
  /// written in first-appearance order. Returns false and fills \p Err
  /// only when the output cannot be written.
  static bool mergeFiles(const std::vector<std::string> &Inputs,
                         const std::string &OutPath, std::string &Err);

  /// The most recent record for \p Key, or nullptr.
  const JournalRecord *lookup(const std::string &Key) const;

  /// Number of distinct keys indexed.
  size_t size() const { return Index.size(); }

  /// Content key for an obligation: a versioned FNV-1a hash of the
  /// serialized SMT-LIB2 benchmark and the configuration string (tactic
  /// set, solver settings) that produced it.
  static std::string contentKey(const std::string &Smt2,
                                const std::string &Config);

  /// One JSONL line (newline-terminated). Exposed for tests.
  static std::string serialize(const JournalRecord &R);
  /// Parses one line; nullopt for malformed/torn input.
  static std::optional<JournalRecord> parseLine(const std::string &Line);

private:
  std::FILE *Out = nullptr;
  bool ReadOnly = false;
  bool Fsync = false;
  std::unordered_map<std::string, JournalRecord> Index;
};

} // namespace dryad

#endif // DRYAD_VERIFIER_JOURNAL_H
