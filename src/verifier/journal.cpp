//===--- journal.cpp - Crash-safe obligation journal ------------------------===//

#include "verifier/journal.h"

#include "support/hash.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <sys/file.h>
#include <unistd.h>

using namespace dryad;

//===----------------------------------------------------------------------===//
// Minimal JSON (flat objects of string/number fields only)
//===----------------------------------------------------------------------===//

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {
/// Pull-parser over one flat JSON object line. Tolerant of nothing: any
/// deviation fails the whole line, which is exactly right for a journal
/// whose torn tail must be skipped, not guessed at.
struct FlatJson {
  const std::string &S;
  size_t Pos = 0;

  explicit FlatJson(const std::string &Line) : S(Line) {}

  void ws() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool eat(char C) {
    ws();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool string(std::string &Out) {
    ws();
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return false;
      char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return false;
        unsigned long V = std::strtoul(S.substr(Pos, 4).c_str(), nullptr, 16);
        Pos += 4;
        Out += static_cast<char>(V & 0x7F); // journal only escapes ASCII
        break;
      }
      default:
        return false;
      }
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool number(double &Out) {
    ws();
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == '-' || S[Pos] == '+' || S[Pos] == 'e' || S[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      return false;
    char *End = nullptr;
    std::string Tok = S.substr(Start, Pos - Start);
    Out = std::strtod(Tok.c_str(), &End);
    return End && *End == '\0';
  }
};
} // namespace

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

Journal::~Journal() {
  if (Out)
    std::fclose(Out);
}

static const char *statusName(SmtStatus S) {
  switch (S) {
  case SmtStatus::Unsat:
    return "unsat";
  case SmtStatus::Sat:
    return "sat";
  case SmtStatus::Unknown:
    return "unknown";
  }
  return "unknown";
}

std::string Journal::contentKey(const std::string &Smt2,
                                const std::string &Config) {
  // Chain the two fields through one FNV state (rather than XOR of two
  // hashes) so swapping content between them cannot collide.
  uint64_t H = fnv1a64(Smt2);
  H = fnv1a64("\x1f", H); // separator outside both alphabets
  H = fnv1a64(Config, H);
  return "v1-" + hex64(H);
}

std::string Journal::serialize(const JournalRecord &R) {
  char Num[64];
  std::string Out = "{\"key\":\"" + jsonEscape(R.Key) + "\"";
  Out += ",\"name\":\"" + jsonEscape(R.Name) + "\"";
  Out += std::string(",\"status\":\"") + statusName(R.Status) + "\"";
  Out += std::string(",\"failure\":\"") + failureKindName(R.Failure) + "\"";
  std::snprintf(Num, sizeof(Num), ",\"attempts\":%u", R.Attempts);
  Out += Num;
  std::snprintf(Num, sizeof(Num), ",\"degrade\":%u", R.DegradeLevel);
  Out += Num;
  std::snprintf(Num, sizeof(Num), ",\"seconds\":%.6f", R.Seconds);
  Out += Num;
  Out += ",\"detail\":\"" + jsonEscape(R.Detail) + "\"}\n";
  return Out;
}

std::optional<JournalRecord> Journal::parseLine(const std::string &Line) {
  FlatJson P(Line);
  if (!P.eat('{'))
    return std::nullopt;
  JournalRecord R;
  bool HaveKey = false, HaveStatus = false;
  bool First = true;
  while (!P.eat('}')) {
    if (!First && !P.eat(','))
      return std::nullopt;
    First = false;
    std::string Field;
    if (!P.string(Field) || !P.eat(':'))
      return std::nullopt;
    if (Field == "key" || Field == "name" || Field == "status" ||
        Field == "failure" || Field == "detail") {
      std::string V;
      if (!P.string(V))
        return std::nullopt;
      if (Field == "key") {
        R.Key = V;
        HaveKey = true;
      } else if (Field == "name") {
        R.Name = V;
      } else if (Field == "status") {
        HaveStatus = true;
        if (V == "unsat")
          R.Status = SmtStatus::Unsat;
        else if (V == "sat")
          R.Status = SmtStatus::Sat;
        else if (V == "unknown")
          R.Status = SmtStatus::Unknown;
        else
          return std::nullopt;
      } else if (Field == "failure") {
        R.Failure = failureKindFromName(V);
      } else {
        R.Detail = V;
      }
    } else {
      // Numbers — and a place where unknown future fields parse cleanly.
      double V;
      if (!P.number(V))
        return std::nullopt;
      if (Field == "attempts")
        R.Attempts = static_cast<unsigned>(V);
      else if (Field == "degrade")
        R.DegradeLevel = static_cast<unsigned>(V);
      else if (Field == "seconds")
        R.Seconds = V;
    }
  }
  P.ws();
  if (P.Pos != Line.size() || !HaveKey || !HaveStatus || R.Key.empty())
    return std::nullopt;
  return R;
}

bool Journal::open(const std::string &Path, bool LoadExisting,
                   std::string &Err) {
  if (Out || ReadOnly) {
    Err = "journal already open";
    return false;
  }
  if (LoadExisting) {
    std::ifstream In(Path);
    // A missing file is a fine starting point; unreadable-but-present is
    // handled by the append open below.
    std::string Line;
    while (std::getline(In, Line)) {
      if (std::optional<JournalRecord> R = parseLine(Line))
        Index[R->Key] = *R; // later records win
      // else: torn/garbage line from a killed run — skip it
    }
  }
  Out = std::fopen(Path.c_str(), "a");
  if (!Out) {
    Err = "cannot open journal '" + Path + "': " + std::strerror(errno);
    return false;
  }
  return true;
}

bool Journal::openReadOnly(const std::string &Path, std::string &Err) {
  if (Out || ReadOnly) {
    Err = "journal already open";
    return false;
  }
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot read journal '" + Path + "': " + std::strerror(errno);
    return false;
  }
  std::string Line;
  while (std::getline(In, Line))
    if (std::optional<JournalRecord> R = parseLine(Line))
      Index[R->Key] = *R;
  ReadOnly = true;
  return true;
}

int Journal::writerFd() const { return Out ? fileno(Out) : -1; }

void Journal::append(const JournalRecord &R) {
  Index[R.Key] = R;
  if (!Out)
    return;
  std::string Line = serialize(R);
  // The record lands under an exclusive flock: the file was opened in
  // append mode, so one locked write+flush puts the whole line atomically
  // at EOF even when another process shares the journal. Lock failure
  // (e.g. an fs without flock) degrades to the old unlocked append rather
  // than dropping the record.
  int Fd = fileno(Out);
  bool Locked = flock(Fd, LOCK_EX) == 0;
  std::fwrite(Line.data(), 1, Line.size(), Out);
  // Flush per record: the write reaches the kernel before the next
  // obligation starts, so killing the process loses at most the in-flight
  // one. With setFsync (--fsync-journal) the record is also durable
  // against power loss before the next obligation starts.
  std::fflush(Out);
  if (Fsync)
    fsync(Fd);
  if (Locked)
    flock(Fd, LOCK_UN);
}

bool Journal::mergeFiles(const std::vector<std::string> &Inputs,
                        const std::string &OutPath, std::string &Err) {
  // Later records win, across files in input order: the index is built the
  // same way open() builds it, just over several files. Key order of first
  // appearance is preserved so the merged file is deterministic given the
  // shard journals.
  std::unordered_map<std::string, JournalRecord> Merged;
  std::vector<std::string> Order;
  for (const std::string &Path : Inputs) {
    std::ifstream In(Path);
    // A shard that died before its first append never created its journal;
    // an absent input contributes nothing, it does not poison the merge.
    std::string Line;
    while (std::getline(In, Line)) {
      std::optional<JournalRecord> R = parseLine(Line);
      if (!R)
        continue; // torn tail of a killed shard — skip, don't guess
      if (!Merged.count(R->Key))
        Order.push_back(R->Key);
      Merged[R->Key] = *R;
    }
  }
  std::ofstream OutF(OutPath, std::ios::trunc);
  if (!OutF) {
    Err = "cannot write merged journal '" + OutPath +
          "': " + std::strerror(errno);
    return false;
  }
  for (const std::string &Key : Order)
    OutF << serialize(Merged[Key]);
  OutF.flush();
  if (!OutF) {
    Err = "short write merging journals into '" + OutPath + "'";
    return false;
  }
  return true;
}

const JournalRecord *Journal::lookup(const std::string &Key) const {
  auto It = Index.find(Key);
  return It == Index.end() ? nullptr : &It->second;
}
