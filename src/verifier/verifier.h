//===--- verifier.h - End-to-end verification driver ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the pipeline together: basic paths -> ψVC -> natural-proof
/// strengthening -> formula abstraction -> Z3. A procedure is verified when
/// every basic path's VC and every call-site precondition check is unsat.
/// Sat results carry the solver model — the counterexample debugging aid §7
/// describes.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_VERIFIER_H
#define DRYAD_VERIFIER_VERIFIER_H

#include "lang/ast.h"
#include "natural/engine.h"
#include "smt/inject.h"
#include "smt/resilient.h"
#include "smt/sandbox.h"
#include "smt/solver.h"
#include "verifier/journal.h"

#include <functional>

namespace dryad {

struct VerifyOptions {
  unsigned TimeoutMs = 60000;
  NaturalOptions Natural;
  /// Resilient dispatch: attempts per obligation with escalating deadlines
  /// (InitialTimeoutMs, then x5 per retry, final attempt gets TimeoutMs)
  /// and a fresh Z3 random_seed each retry.
  unsigned Attempts = 3;
  unsigned InitialTimeoutMs = 2000;
  /// Wall-clock budget per procedure; 0 = unlimited. One stuck obligation
  /// cannot starve the rest of the run.
  unsigned ProcBudgetMs = 0;
  /// After Attempts are exhausted, re-dispatch with reduced natural-proof
  /// tactic sets (drop axioms, then frames) before giving up.
  bool DegradeTactics = true;
  /// Deterministic fault injection for tests/CI (see smt/inject.h).
  FaultPlan Inject;
  /// Probe each path's assumptions for satisfiability: an unsatisfiable
  /// precondition/invariant (e.g. an ill-formed heaplet in a contract)
  /// makes every obligation vacuously provable, which is a specification
  /// bug, not a proof.
  bool CheckVacuity = true;
  unsigned VacuityTimeoutMs = 2000;
  /// When set, every dispatch attempt's SMT-LIB2 is written to this
  /// directory (attempt/degrade-level suffixed past the first attempt).
  std::string DumpSmt2Dir;
  /// Process isolation: discharge each attempt in a forked, rlimited
  /// worker so a solver crash or runaway allocation fails only that
  /// attempt (`dryadv --isolate`; see smt/sandbox.h).
  bool Isolate = false;
  /// RLIMIT_AS cap for isolated workers, in MiB; 0 = no cap
  /// (`--mem-limit-mb`).
  unsigned MemLimitMb = 0;
  /// Crash-safe obligation journal (`--journal <file>`): every outcome is
  /// appended (write-then-flush) as it is produced. Empty = off.
  std::string JournalPath;
  /// With a journal: skip obligations whose journaled outcome is already
  /// proved, replay everything else (`--resume`).
  bool Resume = false;
};

struct ObligationResult {
  std::string Name;
  SmtStatus Status = SmtStatus::Unknown; ///< Unsat means proved
  /// Refines Unknown: timeout vs. solver-unknown vs. lowering error vs.
  /// resource exhaustion vs. injected fault. Reports use it to distinguish
  /// "unproved" from "infrastructure failure".
  FailureKind Failure = FailureKind::None;
  /// Human-readable failure context (solver reason, lowering error text,
  /// budget exhaustion note, injected-fault description).
  std::string FailureDetail;
  unsigned Attempts = 0;     ///< dispatch attempts actually made
  unsigned DegradeLevel = 0; ///< tactic level of the final attempt (0=full)
  double Seconds = 0.0;
  std::string Model; ///< counterexample values when Sat
  /// True when the outcome was reused from a resumed journal instead of
  /// dispatched (Attempts is then 0).
  bool FromJournal = false;
};

struct ProcResult {
  std::string Proc;
  bool Verified = false;
  double Seconds = 0.0;
  std::vector<ObligationResult> Obligations;
};

class Verifier {
public:
  /// Opens the journal (when VerifyOptions::JournalPath is set); a failure
  /// to open is recorded in journalError() and verification proceeds
  /// without journaling rather than aborting the run.
  Verifier(Module &M, VerifyOptions Opts = {});

  /// Verifies one procedure (all of its basic paths and call checks).
  ProcResult verifyProc(const Procedure &P, DiagEngine &Diags);

  /// Verifies every procedure with a body.
  std::vector<ProcResult> verifyAll(DiagEngine &Diags);

  /// Non-empty when the requested journal could not be opened.
  const std::string &journalError() const { return JournalErr; }

private:
  /// Strengthening assertions for a tactic-degradation level (0 = the full
  /// configured tactic set; higher levels drop axioms, then frames).
  using StrengthFn =
      std::function<const std::vector<const Formula *> &(unsigned Level)>;

  /// \p JournalKeyOut, when non-null, receives the obligation's journal
  /// content key (empty when no journal is open). The vacuity probe derives
  /// its own journal key from it.
  ObligationResult discharge(const std::string &Name,
                             const std::vector<const Formula *> &Assumptions,
                             size_t NumAssumptions, const StrengthFn &Strength,
                             const Formula *Goal, DeadlineBudget &Budget,
                             std::string *JournalKeyOut = nullptr);

  RetryPolicy retryPolicy() const;
  SandboxOptions sandboxOptions() const;

  Module &M;
  VerifyOptions Opts;
  Journal Jrnl;
  std::string JournalErr;
};

} // namespace dryad

#endif // DRYAD_VERIFIER_VERIFIER_H
