//===--- verifier.h - End-to-end verification driver ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the pipeline together: basic paths -> ψVC -> natural-proof
/// strengthening -> formula abstraction -> Z3. A procedure is verified when
/// every basic path's VC and every call-site precondition check is unsat.
/// Sat results carry the solver model — the counterexample debugging aid §7
/// describes.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_VERIFIER_H
#define DRYAD_VERIFIER_VERIFIER_H

#include "lang/ast.h"
#include "natural/engine.h"
#include "smt/solver.h"

namespace dryad {

struct VerifyOptions {
  unsigned TimeoutMs = 60000;
  NaturalOptions Natural;
  /// Probe each path's assumptions for satisfiability: an unsatisfiable
  /// precondition/invariant (e.g. an ill-formed heaplet in a contract)
  /// makes every obligation vacuously provable, which is a specification
  /// bug, not a proof.
  bool CheckVacuity = true;
  unsigned VacuityTimeoutMs = 2000;
  /// When set, every obligation's SMT-LIB2 is written to this directory.
  std::string DumpSmt2Dir;
};

struct ObligationResult {
  std::string Name;
  SmtStatus Status = SmtStatus::Unknown; ///< Unsat means proved
  double Seconds = 0.0;
  std::string Model; ///< counterexample values when Sat
};

struct ProcResult {
  std::string Proc;
  bool Verified = false;
  double Seconds = 0.0;
  std::vector<ObligationResult> Obligations;
};

class Verifier {
public:
  Verifier(Module &M, VerifyOptions Opts = {}) : M(M), Opts(Opts) {}

  /// Verifies one procedure (all of its basic paths and call checks).
  ProcResult verifyProc(const Procedure &P, DiagEngine &Diags);

  /// Verifies every procedure with a body.
  std::vector<ProcResult> verifyAll(DiagEngine &Diags);

private:
  ObligationResult discharge(const std::string &Name,
                             const std::vector<const Formula *> &Assumptions,
                             size_t NumAssumptions,
                             const std::vector<const Formula *> &Strength,
                             const Formula *Goal);

  Module &M;
  VerifyOptions Opts;
};

} // namespace dryad

#endif // DRYAD_VERIFIER_VERIFIER_H
