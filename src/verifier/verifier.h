//===--- verifier.h - End-to-end verification driver ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the pipeline together: basic paths -> ψVC -> natural-proof
/// strengthening -> formula abstraction -> Z3. A procedure is verified when
/// every basic path's VC and every call-site precondition check is unsat.
/// Sat results carry the solver model — the counterexample debugging aid §7
/// describes.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_VERIFIER_VERIFIER_H
#define DRYAD_VERIFIER_VERIFIER_H

#include "lang/ast.h"
#include "natural/engine.h"
#include "sched/dispatch.h"
#include "sched/pool.h"
#include "smt/inject.h"
#include "smt/resilient.h"
#include "smt/sandbox.h"
#include "smt/solver.h"
#include "verifier/journal.h"

#include <functional>
#include <memory>
#include <unordered_map>

namespace dryad {

struct VerifyOptions {
  unsigned TimeoutMs = 60000;
  NaturalOptions Natural;
  /// Resilient dispatch: attempts per obligation with escalating deadlines
  /// (InitialTimeoutMs, then x5 per retry, final attempt gets TimeoutMs)
  /// and a fresh Z3 random_seed each retry.
  unsigned Attempts = 3;
  unsigned InitialTimeoutMs = 2000;
  /// Wall-clock budget per procedure; 0 = unlimited. One stuck obligation
  /// cannot starve the rest of the run.
  unsigned ProcBudgetMs = 0;
  /// After Attempts are exhausted, re-dispatch with reduced natural-proof
  /// tactic sets (drop axioms, then frames) before giving up.
  bool DegradeTactics = true;
  /// Deterministic fault injection for tests/CI (see smt/inject.h).
  FaultPlan Inject;
  /// Probe each path's assumptions for satisfiability: an unsatisfiable
  /// precondition/invariant (e.g. an ill-formed heaplet in a contract)
  /// makes every obligation vacuously provable, which is a specification
  /// bug, not a proof.
  bool CheckVacuity = true;
  unsigned VacuityTimeoutMs = 2000;
  /// When set, every dispatch attempt's SMT-LIB2 is written to this
  /// directory (attempt/degrade-level suffixed past the first attempt).
  std::string DumpSmt2Dir;
  /// Process isolation: discharge each attempt in a forked, rlimited
  /// worker so a solver crash or runaway allocation fails only that
  /// attempt (`dryadv --isolate`; see smt/sandbox.h).
  bool Isolate = false;
  /// RLIMIT_AS cap for isolated workers, in MiB; 0 = no cap
  /// (`--mem-limit-mb`).
  unsigned MemLimitMb = 0;
  /// Persistent warm workers (default): the pool forks each worker once
  /// and streams framed requests to it, amortizing fork + solver init
  /// across the obligation queue. False (`--cold`) restores the historical
  /// fork-per-obligation sandbox.
  bool WarmWorkers = true;
  /// Retire a warm worker after this many answers (`--recycle-after K`);
  /// 0 = never recycle on count. Recycling on RSS pressure and on any
  /// non-verdict answer happens regardless.
  unsigned RecycleAfter = 64;
  /// Crash-safe obligation journal (`--journal <file>`): every outcome is
  /// appended (write-then-flush) as it is produced. Empty = off.
  std::string JournalPath;
  /// With a journal: skip obligations whose journaled outcome is already
  /// proved, replay everything else (`--resume`).
  bool Resume = false;
  /// Concurrent solver workers (`--jobs N`). At 1 (the default) the run is
  /// the classic sequential schedule; above 1 every obligation of a
  /// procedure is submitted to a worker pool and process isolation is
  /// forced (in-process Z3 cannot parallelize). Verdicts, report ordering,
  /// and dump stems are identical across jobs values.
  unsigned Jobs = 1;
  /// Race the natural-proof tactic rungs (full tactics and each degraded
  /// set) per obligation instead of walking the retry ladder; the first
  /// definitive answer wins and the losers are killed (`--portfolio`).
  /// Forces process isolation.
  bool Portfolio = false;
  /// Sharded verification (`--shard i/n`): plan every obligation, but
  /// dispatch only those whose plan-time content key maps to ShardIndex
  /// under shardOf(key, ShardCount). Requires a journal — a shard's whole
  /// point is the records it leaves for the merge. ShardCount == 1 means
  /// unsharded.
  unsigned ShardIndex = 0;
  unsigned ShardCount = 1;
  /// fsync(2) the journal after every record (`--fsync-journal`): a power
  /// loss costs at most one torn tail record instead of the page cache.
  bool FsyncJournal = false;
  /// Report assembly (`--from-journal`, and the `--shards` supervisor's
  /// merge step): plan every obligation but dispatch nothing — results
  /// come from the journal's records. An obligation with no record is an
  /// infrastructure failure (a lost shard), and a journaled proof whose
  /// vacuity verdict is missing is surfaced as unresolved rather than
  /// trusted.
  bool AssembleFromJournal = false;
  /// Persistent cross-run proof store (`--store <file>`; see
  /// store/store.h): obligations whose content key carries a proved
  /// verdict are answered from the store without solving, every fresh
  /// outcome is appended, and vacuity verdicts follow the same `:vacuity`
  /// sub-key protocol as the journal so a cached proof can never mask a
  /// vacuous contract. A store that cannot be opened degrades to a warning
  /// (recorded in storeError()), never a failed run. Empty = off.
  std::string StorePath;
  /// Solver backends, primary first (`--backend NAME[:PATH]`,
  /// `--backends a,b,c`; see backend/backend.h). Empty means the in-process
  /// Z3 API — the historical path, byte-identical behavior. Every
  /// obligation solves on the primary; under Portfolio the secondaries each
  /// race a full-tactics rung as cross-checks. Any non-Z3-API backend
  /// forces process isolation (pipe solvers cannot run in-process), and
  /// backend identity is baked into journal/store keys so a cached proof is
  /// never replayed under a different solver.
  std::vector<BackendSpec> Backends;
};

struct ObligationResult {
  std::string Name;
  SmtStatus Status = SmtStatus::Unknown; ///< Unsat means proved
  /// Refines Unknown: timeout vs. solver-unknown vs. lowering error vs.
  /// resource exhaustion vs. injected fault. Reports use it to distinguish
  /// "unproved" from "infrastructure failure".
  FailureKind Failure = FailureKind::None;
  /// Human-readable failure context (solver reason, lowering error text,
  /// budget exhaustion note, injected-fault description).
  std::string FailureDetail;
  unsigned Attempts = 0;     ///< dispatch attempts actually made
  unsigned DegradeLevel = 0; ///< tactic level of the final attempt (0=full)
  double Seconds = 0.0;
  std::string Model; ///< counterexample values when Sat
  /// True when the outcome was reused from a resumed journal instead of
  /// dispatched (Attempts is then 0).
  bool FromJournal = false;
  /// True when the outcome was answered from the persistent proof store
  /// (Attempts is then 0; Seconds replays the recorded solve time so
  /// aggregate timings match the run that produced the proof).
  bool FromStore = false;
  /// True when the obligation was planned but belongs to a different shard
  /// (`--shard i/n`): the slot is a placeholder that collection drops.
  bool OutOfShard = false;
};

struct ProcResult {
  std::string Proc;
  bool Verified = false;
  double Seconds = 0.0;
  std::vector<ObligationResult> Obligations;
  /// Obligations planned but skipped because their content key maps to a
  /// different shard (always 0 when unsharded). Skipped obligations do not
  /// appear in Obligations and do not affect Verified.
  unsigned OutOfShard = 0;
};

class ProofStore;

class Verifier {
public:
  /// Opens the journal (when VerifyOptions::JournalPath is set; read-only
  /// under AssembleFromJournal); a failure to open is recorded in
  /// journalError() and verification proceeds without journaling rather
  /// than aborting the run.
  Verifier(Module &M, VerifyOptions Opts = {});
  ~Verifier();

  /// Verifies one procedure (all of its basic paths and call checks).
  ProcResult verifyProc(const Procedure &P, DiagEngine &Diags);

  /// Verifies every procedure with a body. All procedures are planned up
  /// front against one shared worker pool, so `--jobs N` slots stay busy
  /// across procedure boundaries; per-procedure deadline budgets arm when
  /// their first attempt starts, and results are collected in plan order.
  std::vector<ProcResult> verifyAll(DiagEngine &Diags);

  /// Non-empty when the requested journal could not be opened.
  const std::string &journalError() const { return JournalErr; }

  /// Non-empty when the requested proof store could not be opened (the run
  /// proceeds without one — a broken cache must never fail a proof).
  const std::string &storeError() const { return StoreErr; }

  /// Uses \p S (owned by the caller, e.g. the serve daemon's long-lived
  /// store) instead of opening VerifyOptions::StorePath. Call before
  /// verifyAll/verifyProc.
  void setExternalStore(ProofStore *S) { Store = S; }

  /// Uses \p P (owned by the caller) instead of constructing a fresh pool,
  /// so a daemon's warm fleet survives across requests. Stats are
  /// accumulated as per-run deltas. Call before verifyAll/verifyProc.
  void setExternalPool(Scheduler *P) { ExternalPool = P; }

  /// Worker-lifecycle counters from every pool this verifier has driven
  /// (verifyAll uses one pool; repeated verifyProc calls accumulate).
  const PoolStats &poolStats() const { return WorkerStats; }

  /// Cross-backend sat/unsat disagreements observed by the portfolio's
  /// cross-check rungs, accumulated over every dispatch this verifier has
  /// driven. Any entry means a solver (or our translation) is unsound —
  /// the driver must fail the run with infrastructure exit 3.
  const std::vector<DivergenceAlarm> &divergences() const { return Alarms; }

  /// After verifyAll/verifyProc under ShardCount > 1: how many planned
  /// obligations (mains and call checks; vacuity probes ride along and are
  /// not counted) map to each shard index. Empty when unsharded.
  const std::vector<size_t> &shardSliceCounts() const { return SliceCounts; }

  /// Raw fd of the journal writer, or -1 — for the async-signal-safe
  /// termination handler, which may only fsync, not fflush.
  int journalFd() const { return Jrnl.writerFd(); }

  /// Raw fd of the proof-store writer this verifier OWNS, or -1 (external
  /// stores are the owner's to register with the handler).
  int storeFd() const;

private:
  struct ProcState;

  RetryPolicy retryPolicy() const;
  SandboxOptions sandboxOptions() const;
  WarmPoolOptions warmPoolOptions() const;

  /// Configured backend names, primary first; {"z3"} when Opts.Backends is
  /// empty. These are the `@name` suffixes tried on journal/store lookups.
  std::vector<std::string> backendNames() const;

  /// Plans every obligation of St's procedure into \p Engine (or, under
  /// AssembleFromJournal, resolves each from the journal without
  /// dispatching anything).
  void planProc(DispatchEngine &Engine, ProcState &St, DiagEngine &Diags);

  /// Folds St's completed obligation slots into the procedure's result, in
  /// plan order. Only valid after the engine has drained.
  ProcResult collectProc(ProcState &St);

  /// Dump filename stem for an obligation, unique within this Verifier: a
  /// second obligation with the same name (two calls to the same callee on
  /// one path) gets a "-k<n>" suffix. Assigned in deterministic plan order,
  /// so `--jobs N` and `--jobs 1` emit identical file sets.
  std::string uniqueDumpStem(const std::string &Name);

  Module &M;
  VerifyOptions Opts;
  Journal Jrnl;
  std::string JournalErr;
  /// The store consulted at plan time and appended on completion: the one
  /// this verifier opened from Opts.StorePath, or an external one. Null
  /// when the store is off or failed to open.
  ProofStore *Store = nullptr;
  std::unique_ptr<ProofStore> OwnedStore;
  std::string StoreErr;
  Scheduler *ExternalPool = nullptr;
  std::unordered_map<std::string, unsigned> StemCounts;
  std::vector<size_t> SliceCounts;
  PoolStats WorkerStats;
  std::vector<DivergenceAlarm> Alarms;
};

} // namespace dryad

#endif // DRYAD_VERIFIER_VERIFIER_H
