//===--- sandbox.cpp - Process-isolated solver workers ----------------------===//

#include "smt/sandbox.h"

#include "backend/backend.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dryad;

// ThreadSanitizer builds cannot live under an RLIMIT_AS cap (the runtime
// needs terabytes of shadow address space) and its internal allocator
// FATALs instead of throwing bad_alloc when memory runs out — so the memory
// cap, and the injected-oom hog loop that relies on it, are unenforceable
// under tsan. Both are short-circuited below; everything else (CPU caps,
// wall deadlines, crash/stall faults, classification) runs unchanged.
#if defined(__SANITIZE_THREAD__)
#define DRYAD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DRYAD_TSAN 1
#endif
#endif
#ifndef DRYAD_TSAN
#define DRYAD_TSAN 0
#endif

namespace {

/// Reserved worker exit codes, shared with the backends that run inside
/// workers (backend/backend.h). 97 is the one the parent classifies: the
/// worker caught an allocation failure under RLIMIT_AS and could not trust
/// itself to build a payload. 96 is the worker refusing to run because its
/// rlimit caps could not be applied — solving (or running an injected oom's
/// unbounded allocation loop) without the cap the parent believes is in
/// place would silently unsandbox the child. 98 means a result existed but
/// could not be written.
constexpr int ExitOom = WorkerExitOom;
constexpr int ExitProto = WorkerExitProto;
constexpr int ExitSetup = WorkerExitSetup;

/// Grace the parent grants past the solver's own soft timeout before the
/// SIGKILL: a healthy Z3 returns `unknown (timeout)` by itself, which keeps
/// the richer in-solver classification; the hard kill is for wedged workers.
constexpr unsigned WallGraceMs = 500;

//===----------------------------------------------------------------------===//
// Payload protocol (child -> parent, over the pipe)
//===----------------------------------------------------------------------===//
//
// "DRYD1\n" <status-char> '\n' <failure-name> '\n'
// <detail-bytes> '\n' <detail> <model-bytes> '\n' <model>
//
// Length-prefixed fields so solver text can contain anything.

std::string encodePayload(const SmtResult &R) {
  char Status = R.Status == SmtStatus::Unsat ? 'U'
                : R.Status == SmtStatus::Sat ? 'S'
                                             : 'K';
  std::string Out = "DRYD1\n";
  Out += Status;
  Out += '\n';
  Out += failureKindName(R.Failure);
  Out += '\n';
  Out += std::to_string(R.Detail.size()) + "\n" + R.Detail;
  Out += std::to_string(R.ModelText.size()) + "\n" + R.ModelText;
  return Out;
}

bool decodePayload(const std::string &Payload, SmtResult &R) {
  size_t Pos = 0;
  auto line = [&](std::string &Field) {
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos)
      return false;
    Field = Payload.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  };
  auto sized = [&](std::string &Field) {
    std::string Len;
    if (!line(Len))
      return false;
    char *End = nullptr;
    unsigned long N = std::strtoul(Len.c_str(), &End, 10);
    if (Len.empty() || *End != '\0' || Pos + N > Payload.size())
      return false;
    Field = Payload.substr(Pos, N);
    Pos += N;
    return true;
  };

  std::string Magic, Status, Failure;
  if (!line(Magic) || Magic != "DRYD1" || !line(Status) || !line(Failure) ||
      !sized(R.Detail) || !sized(R.ModelText))
    return false;
  R.Status = Status == "U"   ? SmtStatus::Unsat
             : Status == "S" ? SmtStatus::Sat
                             : SmtStatus::Unknown;
  R.Failure = failureKindFromName(Failure);
  return true;
}

//===----------------------------------------------------------------------===//
// Child side
//===----------------------------------------------------------------------===//

/// Applies one rlimit, verifying it took. A request above the pre-existing
/// hard limit fails with EPERM for an unprivileged process; clamp to that
/// hard limit and retry — the cap still holds, just tighter than asked.
bool setLimit(int Resource, rlim_t Cur, rlim_t Max) {
  rlimit RL;
  RL.rlim_cur = Cur;
  RL.rlim_max = Max;
  if (setrlimit(Resource, &RL) == 0)
    return true;
  rlimit Old;
  if (getrlimit(Resource, &Old) != 0 || Old.rlim_max >= Max)
    return false;
  RL.rlim_max = Old.rlim_max;
  if (RL.rlim_cur > RL.rlim_max)
    RL.rlim_cur = RL.rlim_max;
  return setrlimit(Resource, &RL) == 0;
}

/// Returns false when a requested cap could not be enforced; the worker
/// must then _exit(ExitSetup) rather than run uncapped.
bool applyLimits(const SandboxRequest &Req) {
  unsigned MemMb = Req.MemLimitMb;
  // An injected oom must hit a ceiling even when the caller set none;
  // otherwise the "fault" would eat the machine it exists to protect.
  if (Req.Fault == SandboxFault::Oom && MemMb == 0)
    MemMb = 256;
  if (MemMb && !DRYAD_TSAN) {
    rlim_t Cap = static_cast<rlim_t>(MemMb) << 20;
    if (!setLimit(RLIMIT_AS, Cap, Cap))
      return false;
  }
  unsigned CpuS = Req.CpuLimitS;
  if (CpuS == 0 && Req.TimeoutMs != 0)
    CpuS = Req.TimeoutMs / 1000 + 2;
  // Hard cap two seconds past the soft one: a hard kill if the SIGXCPU is
  // somehow ignored.
  if (CpuS && !setLimit(RLIMIT_CPU, CpuS, CpuS + 2))
    return false;
  return true;
}

void writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      _exit(ExitProto);
    }
    Off += static_cast<size_t>(N);
  }
}

/// Realizes an injected fault inside the worker. Returns only for
/// SandboxFault::None; every other kind ends the process one way or
/// another, exercising a distinct parent-side classification path.
void realizeFault(SandboxFault Fault) {
  switch (Fault) {
  case SandboxFault::Crash:
    // A real signal death, not an exit code: the parent must classify it
    // from the wait status exactly as it would a genuine solver segfault.
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
    _exit(ExitProto); // unreachable
  case SandboxFault::Oom:
    if (DRYAD_TSAN) // no AS cap to bite (see DRYAD_TSAN): exit as if it had
      _exit(ExitOom);
    try {
      std::vector<char *> Hog;
      for (;;) {
        char *P = new char[1 << 20];
        std::memset(P, 0xAB, 1 << 20); // touch so the cap really bites
        Hog.push_back(P);
      }
    } catch (const std::bad_alloc &) {
      _exit(ExitOom);
    }
    _exit(ExitProto); // unreachable
  case SandboxFault::Stall:
    // Never answer; the parent's wall-clock SIGKILL must reap us. Bounded
    // so a misconfigured no-deadline test cannot hang forever.
    for (int I = 0; I != 600; ++I)
      usleep(100000);
    _exit(ExitProto);
  case SandboxFault::Diverge: // applied AFTER the solve, in solveRequest
  case SandboxFault::None:
    break;
  }
}

/// Solves one request through its backend (in-process Z3 unless the frame
/// named another). Shared by the one-shot and warm worker loops; the
/// backend may _exit(ExitOom) when allocation can no longer be trusted to
/// build a payload. An injected Diverge fault flips a decisive verdict
/// here, after the genuine solve, so the wrong answer travels the same
/// payload path a real divergent solver's would.
SmtResult solveRequest(const SandboxRequest &Req) {
  SmtResult R = solveWithBackend(Req.Backend, Req);
  if (Req.Fault == SandboxFault::Diverge && R.Status != SmtStatus::Unknown) {
    bool WasUnsat = R.Status == SmtStatus::Unsat;
    R.Status = WasUnsat ? SmtStatus::Sat : SmtStatus::Unsat;
    R.ModelText = WasUnsat ? "injected divergence: verdict flipped from "
                             "unsat to sat"
                           : "";
  }
  return R;
}

[[noreturn]] void childMain(const SandboxRequest &Req, int Fd) {
  // The parent's SIGINT/SIGTERM handlers must not run here: this process's
  // copy of the pid table lists siblings, not children.
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  if (!applyLimits(Req))
    _exit(ExitSetup);
  realizeFault(Req.Fault);
  writeAll(Fd, encodePayload(solveRequest(Req)));
  _exit(0);
}

//===----------------------------------------------------------------------===//
// Warm worker: child-side request loop
//===----------------------------------------------------------------------===//

/// Per-request rlimit refresh for a long-lived worker. Unlike the one-shot
/// applyLimits, only the SOFT limits move: the hard limits stay at their
/// inherited values, because an unprivileged process can never raise a hard
/// limit again and consecutive requests legitimately need both tighter and
/// looser caps (and RLIMIT_CPU must keep growing with cumulative usage).
bool setSoftLimit(int Resource, rlim_t Cur) {
  rlimit RL;
  if (getrlimit(Resource, &RL) != 0)
    return false;
  if (RL.rlim_max != RLIM_INFINITY && Cur > RL.rlim_max)
    Cur = RL.rlim_max; // clamp: the cap still holds, tighter than asked
  RL.rlim_cur = Cur;
  return setrlimit(Resource, &RL) == 0;
}

/// Returns false when a requested cap could not be enforced; the worker
/// then _exits(ExitSetup) rather than serve the request unsandboxed.
bool applyLimitsWarm(const SandboxRequest &Req) {
  unsigned MemMb = Req.MemLimitMb;
  // Same rule as the one-shot path: an injected oom must hit a ceiling
  // even when the caller set none.
  if (Req.Fault == SandboxFault::Oom && MemMb == 0)
    MemMb = 256;
  if (MemMb && !DRYAD_TSAN) {
    if (!setSoftLimit(RLIMIT_AS, static_cast<rlim_t>(MemMb) << 20))
      return false;
  } else if (!MemMb) {
    // No cap requested: a previous request's tighter soft cap must not
    // leak into this one.
    rlimit RL;
    if (getrlimit(RLIMIT_AS, &RL) == 0 && RL.rlim_cur != RL.rlim_max) {
      RL.rlim_cur = RL.rlim_max;
      if (setrlimit(RLIMIT_AS, &RL) != 0)
        return false;
    }
  }
  unsigned CpuS = Req.CpuLimitS;
  if (CpuS == 0 && Req.TimeoutMs != 0)
    CpuS = Req.TimeoutMs / 1000 + 2;
  if (CpuS) {
    // RLIMIT_CPU counts the process's CUMULATIVE CPU time, and a warm
    // worker has already burned some on earlier requests — the cap is set
    // relative to current usage so a healthy long-lived worker is never
    // killed for its past.
    rusage RU;
    std::memset(&RU, 0, sizeof(RU));
    getrusage(RUSAGE_SELF, &RU);
    rlim_t Used = static_cast<rlim_t>(RU.ru_utime.tv_sec) +
                  static_cast<rlim_t>(RU.ru_stime.tv_sec);
    if (!setSoftLimit(RLIMIT_CPU, Used + CpuS + 1))
      return false;
  }
  return true;
}

/// Reads one request frame off the buffered pipe. Returns 1 on a frame, 0
/// on clean EOF between frames (retirement), -1 on a torn frame.
int readRequestFrame(FILE *In, SandboxRequest &Req) {
  char Line[128];
  if (!std::fgets(Line, sizeof(Line), In))
    return std::feof(In) ? 0 : -1;
  if (std::strcmp(Line, "DRYQ1\n") != 0)
    return -1;
  unsigned TimeoutMs, MemLimitMb, CpuLimitS, Seed, HasSeed, Fault, Backend;
  if (!std::fgets(Line, sizeof(Line), In) ||
      std::sscanf(Line, "%u %u %u %u %u %u %u", &TimeoutMs, &MemLimitMb,
                  &CpuLimitS, &Seed, &HasSeed, &Fault, &Backend) != 7)
    return -1;
  Req.Backend.resize(Backend);
  if (Backend != 0 &&
      std::fread(&Req.Backend[0], 1, Backend, In) != Backend)
    return -1;
  if (!std::fgets(Line, sizeof(Line), In))
    return -1;
  char *End = nullptr;
  unsigned long Size = std::strtoul(Line, &End, 10);
  if (End == Line || *End != '\n')
    return -1;
  Req.TimeoutMs = TimeoutMs;
  Req.MemLimitMb = MemLimitMb;
  Req.CpuLimitS = CpuLimitS;
  Req.Seed = Seed;
  Req.HasSeed = HasSeed != 0;
  Req.Fault = static_cast<SandboxFault>(Fault);
  Req.Smt2.resize(Size);
  if (Size != 0 && std::fread(&Req.Smt2[0], 1, Size, In) != Size)
    return -1;
  return 1;
}

[[noreturn]] void warmChildMain(int InFd, int OutFd) {
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  // The parent set SIGPIPE to SIG_IGN for its own writes; this process
  // should die writing to an orphaned pipe, not spin.
  signal(SIGPIPE, SIG_DFL);
  FILE *In = fdopen(InFd, "r");
  if (!In)
    _exit(ExitProto);
  for (;;) {
    SandboxRequest Req;
    int RC = readRequestFrame(In, Req);
    if (RC == 0)
      _exit(0); // pipe closed between frames: graceful retirement
    if (RC < 0)
      _exit(ExitProto);
    // Isolation is re-established per request, never assumed to have
    // survived the previous one.
    if (!applyLimitsWarm(Req))
      _exit(ExitSetup);
    realizeFault(Req.Fault);
    std::string Payload = encodePayload(solveRequest(Req));
    std::string Frame =
        "DRYR1\n" + std::to_string(Payload.size()) + "\n" + Payload;
    writeAll(OutFd, Frame);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Child registry and termination handlers
//===----------------------------------------------------------------------===//

namespace {
// Lock-free pid table: the only state the termination handler reads, so it
// stays async-signal-safe. 0 marks a free slot.
constexpr int MaxTrackedChildren = 512;
std::atomic<pid_t> TrackedPids[MaxTrackedChildren];
std::atomic<int> TermJournalFd{-1};
std::atomic<int> TermStoreFd{-1};
// Unix-socket path the serve daemon bound; unlinked by the handler. Plain
// char buffer + ready flag so the handler never touches std::string.
char TermUnlinkPath[256];
std::atomic<bool> TermUnlinkArmed{false};

void terminationHandler(int) { dryad::terminateNow(); }

// Serializes the pipe()+fork() window across spawning threads. Without it,
// a fork on thread B that interleaves thread A's pipe() and fork() copies
// A's not-yet-bound pipe fds into B's child (no CLOEXEC possible: warm
// children never exec), holding A's pipes open from an unrelated process.
// Spawns are rare relative to solves, so one mutex costs nothing.
std::mutex SpawnMu;
} // namespace

void dryad::terminateNow() {
  // Async-signal-safe only: fsync, kill, waitpid, unlink, _exit. Journal
  // and proof store were already flushed per record from userspace; fsync
  // pushes them to disk. Exposed so the serve daemon's two-stage drain
  // handler can escalate to this exact path on a second SIGTERM.
  int Fd = TermJournalFd.load(std::memory_order_relaxed);
  if (Fd >= 0)
    fsync(Fd);
  Fd = TermStoreFd.load(std::memory_order_relaxed);
  if (Fd >= 0)
    fsync(Fd);
  if (TermUnlinkArmed.load(std::memory_order_acquire))
    unlink(TermUnlinkPath);
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t P = TrackedPids[I].load(std::memory_order_relaxed);
    if (P > 0)
      kill(P, SIGKILL);
  }
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t P = TrackedPids[I].load(std::memory_order_relaxed);
    if (P > 0)
      while (waitpid(P, nullptr, 0) < 0 && errno == EINTR)
        ;
  }
  _exit(130);
}

void dryad::registerChildPid(pid_t Pid) {
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t Free = 0;
    if (TrackedPids[I].compare_exchange_strong(Free, Pid))
      return;
  }
  // Table full: drop the registration. The owner still reaps the child;
  // it just cannot be killed from the termination handler.
}

void dryad::unregisterChildPid(pid_t Pid) {
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t P = Pid;
    if (TrackedPids[I].compare_exchange_strong(P, 0))
      return;
  }
}

void dryad::registerUnlinkOnTermination(const std::string &Path) {
  TermUnlinkArmed.store(false, std::memory_order_release);
  if (Path.empty() || Path.size() >= sizeof(TermUnlinkPath))
    return;
  std::memcpy(TermUnlinkPath, Path.c_str(), Path.size() + 1);
  TermUnlinkArmed.store(true, std::memory_order_release);
}

void dryad::installTerminationHandlers(int JournalFd, int StoreFd) {
  TermJournalFd.store(JournalFd);
  TermStoreFd.store(StoreFd);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = terminationHandler;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

//===----------------------------------------------------------------------===//
// Parent side
//===----------------------------------------------------------------------===//

WorkerHandle dryad::spawnWorker(const SandboxRequest &Req) {
  WorkerHandle W;
  W.Start = std::chrono::steady_clock::now();
  W.TimeoutMs = Req.TimeoutMs;
  W.MemLimitMb = Req.MemLimitMb;
  if (Req.TimeoutMs != 0) {
    // The deadline includes a grace window past the solver's soft timeout
    // so a healthy worker gets to report its own `unknown (timeout)`.
    W.HasDeadline = true;
    W.Deadline = W.Start + std::chrono::milliseconds(Req.TimeoutMs +
                                                     WallGraceMs);
  }

  int Fds[2];
  std::unique_lock<std::mutex> Spawn(SpawnMu);
  if (pipe(Fds) != 0) {
    W.SpawnFailed = true;
    W.FailReason = std::string("pipe: ") + std::strerror(errno);
    return W;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fds[0]);
    close(Fds[1]);
    W.SpawnFailed = true;
    W.FailReason = std::string("fork: ") + std::strerror(errno);
    return W;
  }
  if (Pid == 0) {
    close(Fds[0]);
    childMain(Req, Fds[1]); // never returns
  }
  Spawn.unlock();
  close(Fds[1]);
  W.Pid = Pid;
  W.Fd = Fds[0];
  registerChildPid(Pid);
  return W;
}

bool dryad::pumpWorker(WorkerHandle &W) {
  if (W.Eof || W.Fd < 0)
    return true;
  char Buf[4096];
  ssize_t N = read(W.Fd, Buf, sizeof(Buf));
  if (N > 0) {
    W.Payload.append(Buf, static_cast<size_t>(N));
  } else if (N == 0) {
    W.Eof = true; // the worker closed its end (exit or death)
  } else if (errno != EINTR) {
    // A broken pipe read is terminal too: stop pumping and let the wait
    // status classify whatever happened to the worker.
    W.Eof = true;
  }
  return W.Eof;
}

void dryad::killWorker(WorkerHandle &W, bool AtDeadline) {
  if (W.Pid > 0)
    kill(W.Pid, SIGKILL);
  if (AtDeadline)
    W.KilledByDeadline = true;
}

namespace {
/// Maps a dead worker's wait status onto the failure taxonomy — the table
/// in the file header. Shared verbatim by the one-shot and warm paths so
/// the two report byte-identical classifications.
void classifyDeadWorker(SmtResult &R, int WStatus, bool KilledByDeadline,
                        unsigned TimeoutMs, unsigned MemLimitMb) {
  R.Status = SmtStatus::Unknown;
  if (KilledByDeadline) {
    R.Failure = FailureKind::Timeout;
    R.Detail = "solver worker killed at the " + std::to_string(TimeoutMs) +
               " ms wall-clock deadline";
  } else if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == ExitOom) {
    R.Failure = FailureKind::ResourceOut;
    R.Detail = "solver worker exceeded its memory limit";
    if (MemLimitMb)
      R.Detail += " (RLIMIT_AS " + std::to_string(MemLimitMb) + " MiB)";
  } else if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == ExitSetup) {
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "solver worker could not apply its resource limits "
               "(setrlimit failed); refusing to run unsandboxed";
  } else if (WIFSIGNALED(WStatus)) {
    int Sig = WTERMSIG(WStatus);
    if (Sig == SIGXCPU || Sig == SIGKILL) {
      // SIGKILL we did not send is the kernel's: the CPU rlimit's hard cap
      // or the OOM killer — resource exhaustion either way. (A portfolio
      // cancellation is also a parent SIGKILL, but cancelled workers'
      // results are discarded, so the label never surfaces for them.)
      R.Failure = FailureKind::ResourceOut;
      R.Detail = std::string("solver worker killed by resource limit (") +
                 strsignal(Sig) + ")";
    } else {
      R.Failure = FailureKind::SolverCrash;
      R.Detail = std::string("solver worker died on signal ") +
                 std::to_string(Sig) + " (" + strsignal(Sig) + ")";
    }
  } else {
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "solver worker exited with code " +
               std::to_string(WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1) +
               " without a result";
  }
  R.ModelText = R.Detail;
}
} // namespace

SmtResult dryad::finishWorker(WorkerHandle &W) {
  if (W.SpawnFailed) {
    SmtResult R;
    R.Status = SmtStatus::Unknown;
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "sandbox setup failed: " + W.FailReason;
    R.ModelText = R.Detail;
    return R;
  }
  if (W.Fd >= 0) {
    close(W.Fd);
    W.Fd = -1;
  }
  int WStatus = 0;
  while (waitpid(W.Pid, &WStatus, 0) < 0 && errno == EINTR)
    ;
  unregisterChildPid(W.Pid);
  W.Pid = -1;

  SmtResult R;
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            W.Start)
                  .count();

  if (!W.KilledByDeadline && WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0 &&
      decodePayload(W.Payload, R))
    return R;

  classifyDeadWorker(R, WStatus, W.KilledByDeadline, W.TimeoutMs,
                     W.MemLimitMb);
  return R;
}

SmtResult dryad::solveInSandbox(const SandboxRequest &Req) {
  WorkerHandle W = spawnWorker(Req);
  while (W.running()) {
    int PollMs = -1;
    if (W.HasDeadline) {
      auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                        W.Deadline - std::chrono::steady_clock::now())
                        .count();
      if (Remain <= 0) {
        killWorker(W, /*AtDeadline=*/true);
        break;
      }
      PollMs = static_cast<int>(Remain);
    }
    pollfd PF;
    PF.fd = W.Fd;
    PF.events = POLLIN;
    PF.revents = 0;
    int PR = poll(&PF, 1, PollMs);
    if (PR == 0) {
      killWorker(W, /*AtDeadline=*/true);
      break;
    }
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    pumpWorker(W);
  }
  return finishWorker(W);
}

//===----------------------------------------------------------------------===//
// Warm worker: parent side
//===----------------------------------------------------------------------===//

namespace {
/// Parent-side full write. Unlike the child's writeAll this must not _exit:
/// a failed write (EPIPE from a worker that died while idle) is a
/// respawnable condition, reported to the caller as false.
bool writeAllParent(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// True when \p Buf holds one complete "DRYR1\n<len>\n<payload>" frame;
/// \p Payload receives the payload bytes. Torn header lines report
/// incomplete (false with Torn unset) until more bytes arrive; a malformed
/// header sets \p Torn so the owner can give up on the worker.
bool parseResponseFrame(const std::string &Buf, std::string &Payload,
                        bool &Torn) {
  size_t Nl = Buf.find('\n');
  if (Nl == std::string::npos)
    return false;
  if (Buf.compare(0, Nl + 1, "DRYR1\n") != 0) {
    Torn = true;
    return false;
  }
  size_t Nl2 = Buf.find('\n', Nl + 1);
  if (Nl2 == std::string::npos)
    return false;
  std::string Len = Buf.substr(Nl + 1, Nl2 - Nl - 1);
  char *End = nullptr;
  unsigned long N = std::strtoul(Len.c_str(), &End, 10);
  if (Len.empty() || *End != '\0') {
    Torn = true;
    return false;
  }
  if (Buf.size() < Nl2 + 1 + N)
    return false;
  Payload = Buf.substr(Nl2 + 1, N);
  return true;
}
} // namespace

WarmWorker dryad::spawnWarmWorker() {
  WarmWorker W;
  // The parent must survive writing a request to a worker that died while
  // idle: turn the fatal SIGPIPE into a plain EPIPE write error.
  signal(SIGPIPE, SIG_IGN);

  int Down[2], Up[2]; // Down: parent -> worker requests; Up: responses back
  std::unique_lock<std::mutex> Spawn(SpawnMu);
  if (pipe(Down) != 0) {
    W.SpawnFailed = true;
    W.FailReason = std::string("pipe: ") + std::strerror(errno);
    return W;
  }
  if (pipe(Up) != 0) {
    close(Down[0]);
    close(Down[1]);
    W.SpawnFailed = true;
    W.FailReason = std::string("pipe: ") + std::strerror(errno);
    return W;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Down[0]);
    close(Down[1]);
    close(Up[0]);
    close(Up[1]);
    W.SpawnFailed = true;
    W.FailReason = std::string("fork: ") + std::strerror(errno);
    return W;
  }
  if (Pid == 0) {
    close(Down[1]);
    close(Up[0]);
    warmChildMain(Down[0], Up[1]); // never returns
  }
  close(Down[0]);
  close(Up[1]);
  Spawn.unlock();
  W.Pid = Pid;
  W.ToFd = Down[1];
  W.FromFd = Up[0];
  // Registered at SPAWN, not at first request: an idle warm fleet must be
  // reapable by the SIGINT/SIGTERM termination handlers.
  registerChildPid(Pid);
  return W;
}

bool dryad::startWarmRequest(WarmWorker &W, const SandboxRequest &Req) {
  if (!W.usable())
    return false;
  W.Busy = true;
  W.Start = std::chrono::steady_clock::now();
  W.TimeoutMs = Req.TimeoutMs;
  W.MemLimitMb = Req.MemLimitMb;
  W.HasDeadline = Req.TimeoutMs != 0;
  if (W.HasDeadline)
    W.Deadline =
        W.Start + std::chrono::milliseconds(Req.TimeoutMs + WallGraceMs);
  W.Buf.clear();
  W.FrameComplete = false;
  W.KilledByDeadline = false;

  std::string Frame = "DRYQ1\n";
  Frame += std::to_string(Req.TimeoutMs) + " " +
           std::to_string(Req.MemLimitMb) + " " +
           std::to_string(Req.CpuLimitS) + " " + std::to_string(Req.Seed) +
           " " + std::to_string(Req.HasSeed ? 1 : 0) + " " +
           std::to_string(static_cast<unsigned>(Req.Fault)) + " " +
           std::to_string(Req.Backend.size()) + "\n";
  Frame += Req.Backend;
  Frame += std::to_string(Req.Smt2.size()) + "\n" + Req.Smt2;
  if (!writeAllParent(W.ToFd, Frame)) {
    // The worker died while idle (EPIPE). Mark it dead; the caller reaps
    // it with finishWarmRequest / retireWarmWorker and respawns.
    W.Dead = true;
    return false;
  }
  return true;
}

bool dryad::pumpWarmWorker(WarmWorker &W) {
  if (!W.Busy || W.Dead || W.FrameComplete || W.FromFd < 0)
    return true;
  char Buf[4096];
  ssize_t N = read(W.FromFd, Buf, sizeof(Buf));
  if (N > 0) {
    W.Buf.append(Buf, static_cast<size_t>(N));
    std::string Payload;
    bool Torn = false;
    if (parseResponseFrame(W.Buf, Payload, Torn))
      W.FrameComplete = true;
    else if (Torn)
      W.Dead = true; // garbage on the wire: the worker cannot be trusted
  } else if (N == 0) {
    W.Dead = true; // EOF mid-request: the worker died
  } else if (errno != EINTR) {
    W.Dead = true;
  }
  return !W.running();
}

void dryad::killWarmWorker(WarmWorker &W, bool AtDeadline) {
  if (W.Pid > 0)
    kill(W.Pid, SIGKILL);
  if (AtDeadline)
    W.KilledByDeadline = true;
}

SmtResult dryad::finishWarmRequest(WarmWorker &W) {
  if (W.SpawnFailed) {
    SmtResult R;
    R.Status = SmtStatus::Unknown;
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "sandbox setup failed: " + W.FailReason;
    R.ModelText = R.Detail;
    return R;
  }
  SmtResult R;
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            W.Start)
                  .count();
  W.Busy = false;

  if (W.FrameComplete && !W.KilledByDeadline) {
    std::string Payload;
    bool Torn = false;
    if (parseResponseFrame(W.Buf, Payload, Torn) && decodePayload(Payload, R)) {
      // Clean answer: the worker stays alive and idle for the next request.
      W.Buf.clear();
      W.FrameComplete = false;
      ++W.Served;
      W.RssKb = sampleWorkerRssKb(W.Pid);
      return R;
    }
    // A complete-looking frame that does not decode: treat as a torn wire.
    W.Dead = true;
  }

  // Every other fate kills the worker: SIGKILL (idempotent if the kernel or
  // our deadline already did), reap, and classify the wait status exactly
  // like the one-shot path. Guard on Pid: waitpid(-1) would reap an
  // unrelated sibling child.
  int WStatus = 0;
  if (W.Pid > 0) {
    kill(W.Pid, SIGKILL);
    if (W.ToFd >= 0) {
      close(W.ToFd);
      W.ToFd = -1;
    }
    if (W.FromFd >= 0) {
      close(W.FromFd);
      W.FromFd = -1;
    }
    while (waitpid(W.Pid, &WStatus, 0) < 0 && errno == EINTR)
      ;
    unregisterChildPid(W.Pid);
    W.Pid = -1;
  }
  W.Dead = true;

  classifyDeadWorker(R, WStatus, W.KilledByDeadline, W.TimeoutMs,
                     W.MemLimitMb);
  return R;
}

void dryad::retireWarmWorker(WarmWorker &W) {
  if (W.ToFd >= 0) {
    close(W.ToFd); // EOF between frames: the worker exits 0 on its own...
    W.ToFd = -1;
  }
  if (W.FromFd >= 0) {
    close(W.FromFd);
    W.FromFd = -1;
  }
  if (W.Pid > 0) {
    // ...but never WAIT on that: a wedged worker must not hang retirement.
    kill(W.Pid, SIGKILL);
    while (waitpid(W.Pid, nullptr, 0) < 0 && errno == EINTR)
      ;
    unregisterChildPid(W.Pid);
    W.Pid = -1;
  }
  W.Dead = true;
}

SmtResult dryad::solveOnWarmWorker(WarmWorker &W, const SandboxRequest &Req) {
  if (!startWarmRequest(W, Req))
    return finishWarmRequest(W);
  while (W.running()) {
    int PollMs = -1;
    if (W.HasDeadline) {
      auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                        W.Deadline - std::chrono::steady_clock::now())
                        .count();
      if (Remain <= 0) {
        killWarmWorker(W, /*AtDeadline=*/true);
        break;
      }
      PollMs = static_cast<int>(Remain);
    }
    pollfd PF;
    PF.fd = W.FromFd;
    PF.events = POLLIN;
    PF.revents = 0;
    int PR = poll(&PF, 1, PollMs);
    if (PR == 0) {
      killWarmWorker(W, /*AtDeadline=*/true);
      break;
    }
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    pumpWarmWorker(W);
  }
  return finishWarmRequest(W);
}

size_t dryad::sampleWorkerRssKb(pid_t Pid) {
  if (Pid <= 0)
    return 0;
  std::string Path = "/proc/" + std::to_string(Pid) + "/statm";
  FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return 0;
  unsigned long SizePages = 0, RssPages = 0;
  int Got = std::fscanf(F, "%lu %lu", &SizePages, &RssPages);
  std::fclose(F);
  if (Got != 2)
    return 0;
  long PageKb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<size_t>(RssPages) * static_cast<size_t>(PageKb);
}
