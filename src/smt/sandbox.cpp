//===--- sandbox.cpp - Process-isolated solver workers ----------------------===//

#include "smt/sandbox.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <z3++.h>

using namespace dryad;

namespace {

/// Reserved worker exit codes. 97 is the one the parent classifies: the
/// worker caught an allocation failure under RLIMIT_AS and could not trust
/// itself to build a payload.
constexpr int ExitOom = 97;
constexpr int ExitProto = 98; ///< result existed but could not be written
/// The worker could not apply its rlimit caps. It refuses to run — solving
/// (or running an injected oom's unbounded allocation loop) without the cap
/// the parent believes is in place would silently unsandbox the child.
constexpr int ExitSetup = 96;

/// Grace the parent grants past the solver's own soft timeout before the
/// SIGKILL: a healthy Z3 returns `unknown (timeout)` by itself, which keeps
/// the richer in-solver classification; the hard kill is for wedged workers.
constexpr unsigned WallGraceMs = 500;

//===----------------------------------------------------------------------===//
// Payload protocol (child -> parent, over the pipe)
//===----------------------------------------------------------------------===//
//
// "DRYD1\n" <status-char> '\n' <failure-name> '\n'
// <detail-bytes> '\n' <detail> <model-bytes> '\n' <model>
//
// Length-prefixed fields so solver text can contain anything.

std::string encodePayload(const SmtResult &R) {
  char Status = R.Status == SmtStatus::Unsat ? 'U'
                : R.Status == SmtStatus::Sat ? 'S'
                                             : 'K';
  std::string Out = "DRYD1\n";
  Out += Status;
  Out += '\n';
  Out += failureKindName(R.Failure);
  Out += '\n';
  Out += std::to_string(R.Detail.size()) + "\n" + R.Detail;
  Out += std::to_string(R.ModelText.size()) + "\n" + R.ModelText;
  return Out;
}

bool decodePayload(const std::string &Payload, SmtResult &R) {
  size_t Pos = 0;
  auto line = [&](std::string &Field) {
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos)
      return false;
    Field = Payload.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  };
  auto sized = [&](std::string &Field) {
    std::string Len;
    if (!line(Len))
      return false;
    char *End = nullptr;
    unsigned long N = std::strtoul(Len.c_str(), &End, 10);
    if (Len.empty() || *End != '\0' || Pos + N > Payload.size())
      return false;
    Field = Payload.substr(Pos, N);
    Pos += N;
    return true;
  };

  std::string Magic, Status, Failure;
  if (!line(Magic) || Magic != "DRYD1" || !line(Status) || !line(Failure) ||
      !sized(R.Detail) || !sized(R.ModelText))
    return false;
  R.Status = Status == "U"   ? SmtStatus::Unsat
             : Status == "S" ? SmtStatus::Sat
                             : SmtStatus::Unknown;
  R.Failure = failureKindFromName(Failure);
  return true;
}

//===----------------------------------------------------------------------===//
// Child side
//===----------------------------------------------------------------------===//

/// Applies one rlimit, verifying it took. A request above the pre-existing
/// hard limit fails with EPERM for an unprivileged process; clamp to that
/// hard limit and retry — the cap still holds, just tighter than asked.
bool setLimit(int Resource, rlim_t Cur, rlim_t Max) {
  rlimit RL;
  RL.rlim_cur = Cur;
  RL.rlim_max = Max;
  if (setrlimit(Resource, &RL) == 0)
    return true;
  rlimit Old;
  if (getrlimit(Resource, &Old) != 0 || Old.rlim_max >= Max)
    return false;
  RL.rlim_max = Old.rlim_max;
  if (RL.rlim_cur > RL.rlim_max)
    RL.rlim_cur = RL.rlim_max;
  return setrlimit(Resource, &RL) == 0;
}

/// Returns false when a requested cap could not be enforced; the worker
/// must then _exit(ExitSetup) rather than run uncapped.
bool applyLimits(const SandboxRequest &Req) {
  unsigned MemMb = Req.MemLimitMb;
  // An injected oom must hit a ceiling even when the caller set none;
  // otherwise the "fault" would eat the machine it exists to protect.
  if (Req.Fault == SandboxFault::Oom && MemMb == 0)
    MemMb = 256;
  if (MemMb) {
    rlim_t Cap = static_cast<rlim_t>(MemMb) << 20;
    if (!setLimit(RLIMIT_AS, Cap, Cap))
      return false;
  }
  unsigned CpuS = Req.CpuLimitS;
  if (CpuS == 0 && Req.TimeoutMs != 0)
    CpuS = Req.TimeoutMs / 1000 + 2;
  // Hard cap two seconds past the soft one: a hard kill if the SIGXCPU is
  // somehow ignored.
  if (CpuS && !setLimit(RLIMIT_CPU, CpuS, CpuS + 2))
    return false;
  return true;
}

void writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      _exit(ExitProto);
    }
    Off += static_cast<size_t>(N);
  }
}

[[noreturn]] void childMain(const SandboxRequest &Req, int Fd) {
  // The parent's SIGINT/SIGTERM handlers must not run here: this process's
  // copy of the pid table lists siblings, not children.
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  if (!applyLimits(Req))
    _exit(ExitSetup);

  switch (Req.Fault) {
  case SandboxFault::Crash:
    // A real signal death, not an exit code: the parent must classify it
    // from the wait status exactly as it would a genuine solver segfault.
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
    _exit(ExitProto); // unreachable
  case SandboxFault::Oom:
    try {
      std::vector<char *> Hog;
      for (;;) {
        char *P = new char[1 << 20];
        std::memset(P, 0xAB, 1 << 20); // touch so the cap really bites
        Hog.push_back(P);
      }
    } catch (const std::bad_alloc &) {
      _exit(ExitOom);
    }
    _exit(ExitProto); // unreachable
  case SandboxFault::Stall:
    // Never answer; the parent's wall-clock SIGKILL must reap us. Bounded
    // so a misconfigured no-deadline test cannot hang forever.
    for (int I = 0; I != 600; ++I)
      usleep(100000);
    _exit(ExitProto);
  case SandboxFault::None:
    break;
  }

  SmtResult R;
  try {
    z3::context Ctx;
    z3::solver Solver(Ctx);
    Solver.from_string(Req.Smt2.c_str());
    z3::params P(Ctx);
    P.set("timeout", Req.TimeoutMs == 0 ? 4294967295u : Req.TimeoutMs);
    if (Req.HasSeed)
      P.set("random_seed", Req.Seed);
    Solver.set(P);
    z3::check_result CR = Solver.check();
    if (CR == z3::unsat) {
      R.Status = SmtStatus::Unsat;
    } else if (CR == z3::sat) {
      R.Status = SmtStatus::Sat;
      z3::model Mdl = Solver.get_model();
      std::string Text;
      for (unsigned J = 0; J != Mdl.num_consts(); ++J) {
        z3::func_decl D = Mdl.get_const_decl(J);
        std::string Name = D.name().str();
        // Same counterexample filter as the in-process path: scalar
        // program/spec constants only, no field arrays or quantifier
        // witnesses.
        if (Name.rfind("fld.", 0) == 0 || Name.rfind("qa!", 0) == 0 ||
            Name.rfind("qb!", 0) == 0 || Name.rfind("qs!", 0) == 0 ||
            Name.rfind("mi!", 0) == 0)
          continue;
        z3::expr Val = Mdl.get_const_interp(D);
        if (!Val.is_numeral() && !Val.is_bool())
          continue;
        Text += Name + " = " + Val.to_string() + "; ";
      }
      R.ModelText = Text;
    } else {
      R.Status = SmtStatus::Unknown;
      R.Detail = Solver.reason_unknown();
      R.ModelText = R.Detail;
      R.Failure = classifyUnknownReason(R.Detail);
    }
  } catch (const z3::exception &E) {
    R.Status = SmtStatus::Unknown;
    R.Detail = E.msg();
    R.ModelText = R.Detail;
    R.Failure = classifyUnknownReason(R.Detail);
    if (R.Failure == FailureKind::ResourceOut)
      _exit(ExitOom); // don't trust allocation for the payload
  } catch (const std::bad_alloc &) {
    _exit(ExitOom);
  }

  writeAll(Fd, encodePayload(R));
  _exit(0);
}

} // namespace

//===----------------------------------------------------------------------===//
// Child registry and termination handlers
//===----------------------------------------------------------------------===//

namespace {
// Lock-free pid table: the only state the termination handler reads, so it
// stays async-signal-safe. 0 marks a free slot.
constexpr int MaxTrackedChildren = 512;
std::atomic<pid_t> TrackedPids[MaxTrackedChildren];
std::atomic<int> TermJournalFd{-1};

void terminationHandler(int) {
  // Async-signal-safe only: fsync, kill, waitpid, _exit. The journal was
  // already flushed per record from userspace; fsync pushes it to disk.
  int Fd = TermJournalFd.load(std::memory_order_relaxed);
  if (Fd >= 0)
    fsync(Fd);
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t P = TrackedPids[I].load(std::memory_order_relaxed);
    if (P > 0)
      kill(P, SIGKILL);
  }
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t P = TrackedPids[I].load(std::memory_order_relaxed);
    if (P > 0)
      while (waitpid(P, nullptr, 0) < 0 && errno == EINTR)
        ;
  }
  _exit(130);
}
} // namespace

void dryad::registerChildPid(pid_t Pid) {
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t Free = 0;
    if (TrackedPids[I].compare_exchange_strong(Free, Pid))
      return;
  }
  // Table full: drop the registration. The owner still reaps the child;
  // it just cannot be killed from the termination handler.
}

void dryad::unregisterChildPid(pid_t Pid) {
  for (int I = 0; I != MaxTrackedChildren; ++I) {
    pid_t P = Pid;
    if (TrackedPids[I].compare_exchange_strong(P, 0))
      return;
  }
}

void dryad::installTerminationHandlers(int JournalFd) {
  TermJournalFd.store(JournalFd);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = terminationHandler;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

//===----------------------------------------------------------------------===//
// Parent side
//===----------------------------------------------------------------------===//

WorkerHandle dryad::spawnWorker(const SandboxRequest &Req) {
  WorkerHandle W;
  W.Start = std::chrono::steady_clock::now();
  W.TimeoutMs = Req.TimeoutMs;
  W.MemLimitMb = Req.MemLimitMb;
  if (Req.TimeoutMs != 0) {
    // The deadline includes a grace window past the solver's soft timeout
    // so a healthy worker gets to report its own `unknown (timeout)`.
    W.HasDeadline = true;
    W.Deadline = W.Start + std::chrono::milliseconds(Req.TimeoutMs +
                                                     WallGraceMs);
  }

  int Fds[2];
  if (pipe(Fds) != 0) {
    W.SpawnFailed = true;
    W.FailReason = std::string("pipe: ") + std::strerror(errno);
    return W;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fds[0]);
    close(Fds[1]);
    W.SpawnFailed = true;
    W.FailReason = std::string("fork: ") + std::strerror(errno);
    return W;
  }
  if (Pid == 0) {
    close(Fds[0]);
    childMain(Req, Fds[1]); // never returns
  }
  close(Fds[1]);
  W.Pid = Pid;
  W.Fd = Fds[0];
  registerChildPid(Pid);
  return W;
}

bool dryad::pumpWorker(WorkerHandle &W) {
  if (W.Eof || W.Fd < 0)
    return true;
  char Buf[4096];
  ssize_t N = read(W.Fd, Buf, sizeof(Buf));
  if (N > 0) {
    W.Payload.append(Buf, static_cast<size_t>(N));
  } else if (N == 0) {
    W.Eof = true; // the worker closed its end (exit or death)
  } else if (errno != EINTR) {
    // A broken pipe read is terminal too: stop pumping and let the wait
    // status classify whatever happened to the worker.
    W.Eof = true;
  }
  return W.Eof;
}

void dryad::killWorker(WorkerHandle &W, bool AtDeadline) {
  if (W.Pid > 0)
    kill(W.Pid, SIGKILL);
  if (AtDeadline)
    W.KilledByDeadline = true;
}

SmtResult dryad::finishWorker(WorkerHandle &W) {
  if (W.SpawnFailed) {
    SmtResult R;
    R.Status = SmtStatus::Unknown;
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "sandbox setup failed: " + W.FailReason;
    R.ModelText = R.Detail;
    return R;
  }
  if (W.Fd >= 0) {
    close(W.Fd);
    W.Fd = -1;
  }
  int WStatus = 0;
  while (waitpid(W.Pid, &WStatus, 0) < 0 && errno == EINTR)
    ;
  unregisterChildPid(W.Pid);
  W.Pid = -1;

  SmtResult R;
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            W.Start)
                  .count();

  if (!W.KilledByDeadline && WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0 &&
      decodePayload(W.Payload, R))
    return R;

  R.Status = SmtStatus::Unknown;
  if (W.KilledByDeadline) {
    R.Failure = FailureKind::Timeout;
    R.Detail = "solver worker killed at the " + std::to_string(W.TimeoutMs) +
               " ms wall-clock deadline";
  } else if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == ExitOom) {
    R.Failure = FailureKind::ResourceOut;
    R.Detail = "solver worker exceeded its memory limit";
    if (W.MemLimitMb)
      R.Detail += " (RLIMIT_AS " + std::to_string(W.MemLimitMb) + " MiB)";
  } else if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == ExitSetup) {
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "solver worker could not apply its resource limits "
               "(setrlimit failed); refusing to run unsandboxed";
  } else if (WIFSIGNALED(WStatus)) {
    int Sig = WTERMSIG(WStatus);
    if (Sig == SIGXCPU || Sig == SIGKILL) {
      // SIGKILL we did not send is the kernel's: the CPU rlimit's hard cap
      // or the OOM killer — resource exhaustion either way. (A portfolio
      // cancellation is also a parent SIGKILL, but cancelled workers'
      // results are discarded, so the label never surfaces for them.)
      R.Failure = FailureKind::ResourceOut;
      R.Detail = std::string("solver worker killed by resource limit (") +
                 strsignal(Sig) + ")";
    } else {
      R.Failure = FailureKind::SolverCrash;
      R.Detail = std::string("solver worker died on signal ") +
                 std::to_string(Sig) + " (" + strsignal(Sig) + ")";
    }
  } else {
    R.Failure = FailureKind::SolverCrash;
    R.Detail = "solver worker exited with code " +
               std::to_string(WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1) +
               " without a result";
  }
  R.ModelText = R.Detail;
  return R;
}

SmtResult dryad::solveInSandbox(const SandboxRequest &Req) {
  WorkerHandle W = spawnWorker(Req);
  while (W.running()) {
    int PollMs = -1;
    if (W.HasDeadline) {
      auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                        W.Deadline - std::chrono::steady_clock::now())
                        .count();
      if (Remain <= 0) {
        killWorker(W, /*AtDeadline=*/true);
        break;
      }
      PollMs = static_cast<int>(Remain);
    }
    pollfd PF;
    PF.fd = W.Fd;
    PF.events = POLLIN;
    PF.revents = 0;
    int PR = poll(&PF, 1, PollMs);
    if (PR == 0) {
      killWorker(W, /*AtDeadline=*/true);
      break;
    }
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    pumpWorker(W);
  }
  return finishWorker(W);
}
