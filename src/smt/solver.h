//===--- solver.h - SMT solving interface -----------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges abstracted verification conditions with Z3 through its native
/// API (the same solver the paper used). The lowering implements formula
/// abstraction (§6.3): recursive definitions and reach sets become
/// uninterpreted functions keyed by (definition, stop arguments, timestamp);
/// sets are `Array Int Bool`, multisets `Array Int Int`, field arrays
/// `Array Int Int` versions; set inequalities are the only quantified facts
/// and fall in the array property fragment.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SMT_SOLVER_H
#define DRYAD_SMT_SOLVER_H

#include "dryad/ast.h"
#include "dryad/defs.h"

#include <memory>
#include <string>

namespace dryad {

enum class SmtStatus { Unsat, Sat, Unknown };

/// Why a check did not produce a definitive answer. `None` accompanies
/// Unsat/Sat; everything else refines `SmtStatus::Unknown` so reports can
/// distinguish "unproved" from "infrastructure failure".
enum class FailureKind {
  None,          ///< definitive answer (unsat or sat)
  Timeout,       ///< solver hit its per-check or budget deadline
  SolverUnknown, ///< solver gave up for a non-resource reason
  LoweringError, ///< formula could not be lowered to the solver's logic
  ResourceOut,   ///< memory/rlimit exhaustion inside the solver
  SolverCrash,   ///< sandboxed solver worker died on a signal (segv/abort)
  Injected,      ///< deterministic fault from a FaultPlan (testing/CI)
};

/// Short stable name for a failure kind ("timeout", "lowering-error", ...).
const char *failureKindName(FailureKind K);

/// Inverse of failureKindName. Used by the journal to round-trip records.
/// Returns FailureKind::None for unrecognized names.
FailureKind failureKindFromName(const std::string &Name);

/// Maps Z3's free-form `reason_unknown` strings onto the taxonomy
/// (timeout/cancel -> Timeout, memout/rlimit -> ResourceOut, else
/// SolverUnknown). Shared by the in-process solver and the sandbox worker.
FailureKind classifyUnknownReason(const std::string &Reason);

struct SmtResult {
  SmtStatus Status = SmtStatus::Unknown;
  FailureKind Failure = FailureKind::None;
  /// Human-readable failure context: the solver's reason_unknown, the first
  /// lowering error, or the injected fault description.
  std::string Detail;
  /// On Sat: values of the named program/spec constants — the
  /// counterexample the paper reports as a debugging aid (§7).
  std::string ModelText;
  double Seconds = 0.0;
};

class SmtSolver {
public:
  SmtSolver();
  ~SmtSolver();
  SmtSolver(const SmtSolver &) = delete;
  SmtSolver &operator=(const SmtSolver &) = delete;

  /// Sets the per-check() deadline. The value is re-applied to the solver
  /// immediately before every check() so a short probe timeout can never
  /// leak into a later discharge on the same stack (and vice versa).
  void setTimeoutMs(unsigned Ms);
  unsigned timeoutMs() const { return TimeoutMs; }

  /// Reseeds the solver's restart/decision randomness. Retry layers use
  /// this to escape seed-sensitive divergence between attempts.
  void setRandomSeed(unsigned Seed);

  /// Lowers and asserts a (classical, stamped) formula.
  void add(const Formula *F);
  /// Asserts the negation of \p F (the goal of a validity query).
  void addNegated(const Formula *F);

  SmtResult check();

  /// Whether lowering has already failed — check() will report
  /// LoweringError without consulting the solver. The sandbox path uses
  /// this to skip forking a worker for a deterministically-broken query.
  bool hasLoweringError() const { return !LoweringError.empty(); }

  /// SMT-LIB2 rendering of the current assertion stack (for goldens and
  /// debugging).
  std::string toSmt2();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  unsigned TimeoutMs = 0; ///< 0 = no deadline
  /// First lowering failure, reported as Unknown at check() time.
  std::string LoweringError;
};

} // namespace dryad

#endif // DRYAD_SMT_SOLVER_H
