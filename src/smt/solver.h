//===--- solver.h - SMT solving interface -----------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges abstracted verification conditions with Z3 through its native
/// API (the same solver the paper used). The lowering implements formula
/// abstraction (§6.3): recursive definitions and reach sets become
/// uninterpreted functions keyed by (definition, stop arguments, timestamp);
/// sets are `Array Int Bool`, multisets `Array Int Int`, field arrays
/// `Array Int Int` versions; set inequalities are the only quantified facts
/// and fall in the array property fragment.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SMT_SOLVER_H
#define DRYAD_SMT_SOLVER_H

#include "dryad/ast.h"
#include "dryad/defs.h"

#include <memory>
#include <string>

namespace dryad {

enum class SmtStatus { Unsat, Sat, Unknown };

struct SmtResult {
  SmtStatus Status = SmtStatus::Unknown;
  /// On Sat: values of the named program/spec constants — the
  /// counterexample the paper reports as a debugging aid (§7).
  std::string ModelText;
  double Seconds = 0.0;
};

class SmtSolver {
public:
  SmtSolver();
  ~SmtSolver();
  SmtSolver(const SmtSolver &) = delete;
  SmtSolver &operator=(const SmtSolver &) = delete;

  void setTimeoutMs(unsigned Ms);

  /// Lowers and asserts a (classical, stamped) formula.
  void add(const Formula *F);
  /// Asserts the negation of \p F (the goal of a validity query).
  void addNegated(const Formula *F);

  SmtResult check();

  /// SMT-LIB2 rendering of the current assertion stack (for goldens and
  /// debugging).
  std::string toSmt2();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  /// First lowering failure, reported as Unknown at check() time.
  std::string LoweringError;
};

} // namespace dryad

#endif // DRYAD_SMT_SOLVER_H
