//===--- inject.h - Deterministic solver fault injection --------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `FaultPlan` makes every degradation path of the resilient dispatch
/// layer exercisable in tests and CI without a real flaky solver: it names
/// which check() attempts of a dispatch fail, and with which FailureKind.
/// Injected faults short-circuit the solver call entirely, so they are
/// deterministic and instantaneous; an injected timeout still charges the
/// attempt's deadline to the procedure budget so budget exhaustion is
/// reachable in tests.
///
/// Plan syntax (CLI `--inject`, comma-separated):
///   timeout@1        fail the 1st check() of every dispatch with a timeout
///   unknown@2        fail the 2nd attempt with a bare `unknown`
///   lowering@1       report a lowering error (never retried)
///   resourceout@1    report solver resource exhaustion
///   fault@1          generic injected fault (FailureKind::Injected)
///   crash@1          solver crash (SIGSEGV); under --isolate the sandboxed
///                    worker really dies on the signal, exercising the
///                    parent's wait-status classification
///   oom@1            allocation death under the memory rlimit; under
///                    --isolate the worker really allocates into the cap
///   diverge@1        the worker solves normally, then FLIPS a decisive
///                    verdict (unsat<->sat) — the deterministic trigger for
///                    the cross-backend divergence alarm in a portfolio
///   timeout@*        fail every attempt
///
/// Infrastructure faults (consumed by the proof store and the serve daemon
/// rather than the dispatch ladder; see store/store.h and store/serve.h):
///   storetorn@N      the Nth proof-store append is torn mid-record and the
///                    writer dies (emulating kill -9 mid-write): the record
///                    is truncated on disk and nothing further is appended
///   storecrc@N       the Nth proof-store append lands with a corrupted
///                    CRC: a complete-looking record that must be
///                    quarantined on the next load, never trusted
///   servedrop@N      the serve daemon drops the connection of its Nth
///                    request without responding, exercising the client's
///                    retry/fallback ladder
///   serveslow@N      the daemon never reads the Nth accepted connection's
///                    bytes, so its per-frame read deadline must fire — the
///                    deterministic slow-loris client
///   servebusy@N      the daemon answers its Nth request with the
///                    retryable DRYE1 "overloaded" frame regardless of
///                    actual load, exercising the client's backoff path
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SMT_INJECT_H
#define DRYAD_SMT_INJECT_H

#include "smt/solver.h"

#include <optional>
#include <string>
#include <vector>

namespace dryad {

/// One injected fault: attempt \p Attempt (1-based, per dispatch) of every
/// obligation fails with \p Kind. `EveryAttempt` makes the dispatch
/// unwinnable — the path to budget/attempt exhaustion.
struct Fault {
  FailureKind Kind = FailureKind::Injected;
  unsigned Attempt = 1;
  bool EveryAttempt = false;
  /// crash@N / oom@N: when process isolation is on, the fault is realized
  /// *inside* the sandboxed worker (a real signal death / a real allocation
  /// into the rlimit) instead of short-circuiting the dispatch, so the
  /// parent-side classification is what gets exercised.
  bool InWorker = false;
};

/// A fault realized by the storage/serving infrastructure instead of a
/// solver attempt. `At` is 1-based and counts per consumer instance (the
/// Nth append of one ProofStore writer; the Nth request one daemon
/// accepts), so a plan is deterministic regardless of solver timing.
enum class InfraFaultKind {
  StoreTorn, ///< tear the Nth store append mid-record, then kill the writer
  StoreCrc,  ///< corrupt the CRC of the Nth store append
  ServeDrop, ///< drop the daemon connection of the Nth serve request
  ServeSlow, ///< stall reading the Nth accepted connection (slow loris)
  ServeBusy, ///< force the retryable overloaded reply to the Nth request
};

struct InfraFault {
  InfraFaultKind Kind = InfraFaultKind::StoreTorn;
  unsigned At = 1;
};

class FaultPlan {
public:
  FaultPlan() = default;

  bool empty() const { return Faults.empty() && InfraFaults.empty(); }
  void addFault(Fault F) { Faults.push_back(F); }
  void addInfraFault(InfraFault F) { InfraFaults.push_back(F); }

  /// The infrastructure fault of kind \p Kind scheduled for the \p N'th
  /// event (append / request), or nullopt. Store and daemon code calls this
  /// with its own monotone event counter.
  std::optional<InfraFault> infraFaultFor(InfraFaultKind Kind,
                                          unsigned N) const;

  /// The fault to inject into attempt \p Attempt (1-based) of a dispatch,
  /// or nullopt to let the real solver run.
  std::optional<Fault> faultFor(unsigned Attempt) const;

  /// The sub-plan forwarded to shard drivers under `--shards n`: crash
  /// faults are removed, because there the supervisor consumes them —
  /// `crash@N` names the 1-based shard to SIGKILL, not a solver attempt.
  FaultPlan withoutCrashes() const;

  /// Parses the CLI spec described in the file header. Returns nullopt and
  /// fills \p Err on malformed input.
  static std::optional<FaultPlan> parse(const std::string &Spec,
                                        std::string &Err);

  /// Round-trippable description ("timeout@1,unknown@*").
  std::string describe() const;

private:
  std::vector<Fault> Faults;
  std::vector<InfraFault> InfraFaults;
};

/// The SmtResult an injected fault produces (status Unknown, the fault's
/// kind, and a detail string marking it as injected).
SmtResult injectedResult(const Fault &F, unsigned Attempt);

} // namespace dryad

#endif // DRYAD_SMT_INJECT_H
