//===--- inject.cpp - Deterministic solver fault injection ------------------===//

#include "smt/inject.h"

#include <cstdlib>

using namespace dryad;

std::optional<Fault> FaultPlan::faultFor(unsigned Attempt) const {
  for (const Fault &F : Faults)
    if (F.EveryAttempt || F.Attempt == Attempt)
      return F;
  return std::nullopt;
}

FaultPlan FaultPlan::withoutCrashes() const {
  FaultPlan Out;
  for (const Fault &F : Faults)
    if (F.Kind != FailureKind::SolverCrash)
      Out.addFault(F);
  // Infrastructure faults are realized by whichever process owns the store
  // writer / serve socket, not by the shard supervisor — forward them.
  for (const InfraFault &F : InfraFaults)
    Out.addInfraFault(F);
  return Out;
}

std::optional<InfraFault> FaultPlan::infraFaultFor(InfraFaultKind Kind,
                                                   unsigned N) const {
  for (const InfraFault &F : InfraFaults)
    if (F.Kind == Kind && F.At == N)
      return F;
  return std::nullopt;
}

namespace {
struct ParsedKind {
  FailureKind Kind;
  bool InWorker;
};
} // namespace

static std::optional<ParsedKind> kindFromName(const std::string &Name) {
  if (Name == "timeout")
    return ParsedKind{FailureKind::Timeout, false};
  if (Name == "unknown")
    return ParsedKind{FailureKind::SolverUnknown, false};
  if (Name == "lowering")
    return ParsedKind{FailureKind::LoweringError, false};
  if (Name == "resourceout" || Name == "memout")
    return ParsedKind{FailureKind::ResourceOut, false};
  if (Name == "fault" || Name == "injected")
    return ParsedKind{FailureKind::Injected, false};
  // Sandbox-realized kinds: under --isolate the worker process really dies
  // (signal / allocation into the rlimit); without isolation they
  // short-circuit like any other injected fault.
  if (Name == "crash")
    return ParsedKind{FailureKind::SolverCrash, true};
  if (Name == "oom")
    return ParsedKind{FailureKind::ResourceOut, true};
  // Solve normally, then flip a decisive verdict inside the worker — the
  // deterministic trigger for the cross-backend divergence alarm. Without
  // isolation it short-circuits like a plain injected fault.
  if (Name == "diverge")
    return ParsedKind{FailureKind::Injected, true};
  return std::nullopt;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string &Spec,
                                          std::string &Err) {
  FaultPlan Plan;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Entry = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;

    size_t At = Entry.find('@');
    if (At == std::string::npos) {
      Err = "fault '" + Entry + "' is missing '@<attempt>' (e.g. timeout@1)";
      return std::nullopt;
    }
    std::string KindName = Entry.substr(0, At);

    // Infrastructure faults take a 1-based event ordinal, never '*' (a
    // store that tears EVERY append is not a crash model, it is a broken
    // disk — out of scope for deterministic recovery tests).
    std::optional<InfraFaultKind> Infra;
    if (KindName == "storetorn")
      Infra = InfraFaultKind::StoreTorn;
    else if (KindName == "storecrc")
      Infra = InfraFaultKind::StoreCrc;
    else if (KindName == "servedrop")
      Infra = InfraFaultKind::ServeDrop;
    else if (KindName == "serveslow")
      Infra = InfraFaultKind::ServeSlow;
    else if (KindName == "servebusy")
      Infra = InfraFaultKind::ServeBusy;
    if (Infra) {
      std::string Where = Entry.substr(At + 1);
      char *End = nullptr;
      long N = std::strtol(Where.c_str(), &End, 10);
      if (Where.empty() || *End != '\0' || N < 1) {
        Err = "infrastructure fault '" + KindName +
              "' wants a positive event ordinal (e.g. " + KindName + "@1)";
        return std::nullopt;
      }
      Plan.addInfraFault({*Infra, static_cast<unsigned>(N)});
      continue;
    }

    std::optional<ParsedKind> Kind = kindFromName(KindName);
    if (!Kind) {
      Err = "unknown fault kind '" + KindName +
            "' (expected timeout|unknown|lowering|resourceout|crash|oom|"
            "diverge|fault|storetorn|storecrc|servedrop|serveslow|servebusy)";
      return std::nullopt;
    }
    Fault F;
    F.Kind = Kind->Kind;
    F.InWorker = Kind->InWorker;
    std::string Where = Entry.substr(At + 1);
    if (Where == "*" || Where == "all") {
      F.EveryAttempt = true;
    } else {
      char *End = nullptr;
      long N = std::strtol(Where.c_str(), &End, 10);
      if (Where.empty() || *End != '\0' || N < 1) {
        Err = "fault attempt '" + Where + "' must be a positive integer or *";
        return std::nullopt;
      }
      F.Attempt = static_cast<unsigned>(N);
    }
    Plan.addFault(F);
  }
  if (Plan.empty()) {
    Err = "empty fault plan";
    return std::nullopt;
  }
  return Plan;
}

std::string FaultPlan::describe() const {
  std::string Out;
  for (const Fault &F : Faults) {
    if (!Out.empty())
      Out += ",";
    switch (F.Kind) {
    case FailureKind::Timeout:
      Out += "timeout";
      break;
    case FailureKind::SolverUnknown:
      Out += "unknown";
      break;
    case FailureKind::LoweringError:
      Out += "lowering";
      break;
    case FailureKind::ResourceOut:
      Out += F.InWorker ? "oom" : "resourceout";
      break;
    case FailureKind::SolverCrash:
      Out += "crash";
      break;
    case FailureKind::Injected:
    case FailureKind::None:
      Out += F.InWorker ? "diverge" : "fault";
      break;
    }
    Out += "@" + (F.EveryAttempt ? std::string("*")
                                 : std::to_string(F.Attempt));
  }
  for (const InfraFault &F : InfraFaults) {
    if (!Out.empty())
      Out += ",";
    switch (F.Kind) {
    case InfraFaultKind::StoreTorn:
      Out += "storetorn";
      break;
    case InfraFaultKind::StoreCrc:
      Out += "storecrc";
      break;
    case InfraFaultKind::ServeDrop:
      Out += "servedrop";
      break;
    case InfraFaultKind::ServeSlow:
      Out += "serveslow";
      break;
    case InfraFaultKind::ServeBusy:
      Out += "servebusy";
      break;
    }
    Out += "@" + std::to_string(F.At);
  }
  return Out;
}

SmtResult dryad::injectedResult(const Fault &F, unsigned Attempt) {
  SmtResult R;
  R.Status = SmtStatus::Unknown;
  R.Failure = F.Kind == FailureKind::None ? FailureKind::Injected : F.Kind;
  R.Detail = std::string("injected ") + failureKindName(R.Failure) +
             " (attempt " + std::to_string(Attempt) + ")";
  R.ModelText = R.Detail;
  return R;
}
