//===--- inject.cpp - Deterministic solver fault injection ------------------===//

#include "smt/inject.h"

#include <cstdlib>

using namespace dryad;

std::optional<Fault> FaultPlan::faultFor(unsigned Attempt) const {
  for (const Fault &F : Faults)
    if (F.EveryAttempt || F.Attempt == Attempt)
      return F;
  return std::nullopt;
}

static std::optional<FailureKind> kindFromName(const std::string &Name) {
  if (Name == "timeout")
    return FailureKind::Timeout;
  if (Name == "unknown")
    return FailureKind::SolverUnknown;
  if (Name == "lowering")
    return FailureKind::LoweringError;
  if (Name == "resourceout" || Name == "memout")
    return FailureKind::ResourceOut;
  if (Name == "fault" || Name == "injected")
    return FailureKind::Injected;
  return std::nullopt;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string &Spec,
                                          std::string &Err) {
  FaultPlan Plan;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Entry = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;

    size_t At = Entry.find('@');
    if (At == std::string::npos) {
      Err = "fault '" + Entry + "' is missing '@<attempt>' (e.g. timeout@1)";
      return std::nullopt;
    }
    std::optional<FailureKind> Kind = kindFromName(Entry.substr(0, At));
    if (!Kind) {
      Err = "unknown fault kind '" + Entry.substr(0, At) +
            "' (expected timeout|unknown|lowering|resourceout|fault)";
      return std::nullopt;
    }
    Fault F;
    F.Kind = *Kind;
    std::string Where = Entry.substr(At + 1);
    if (Where == "*" || Where == "all") {
      F.EveryAttempt = true;
    } else {
      char *End = nullptr;
      long N = std::strtol(Where.c_str(), &End, 10);
      if (Where.empty() || *End != '\0' || N < 1) {
        Err = "fault attempt '" + Where + "' must be a positive integer or *";
        return std::nullopt;
      }
      F.Attempt = static_cast<unsigned>(N);
    }
    Plan.addFault(F);
  }
  if (Plan.empty()) {
    Err = "empty fault plan";
    return std::nullopt;
  }
  return Plan;
}

std::string FaultPlan::describe() const {
  std::string Out;
  for (const Fault &F : Faults) {
    if (!Out.empty())
      Out += ",";
    switch (F.Kind) {
    case FailureKind::Timeout:
      Out += "timeout";
      break;
    case FailureKind::SolverUnknown:
      Out += "unknown";
      break;
    case FailureKind::LoweringError:
      Out += "lowering";
      break;
    case FailureKind::ResourceOut:
      Out += "resourceout";
      break;
    case FailureKind::Injected:
    case FailureKind::None:
      Out += "fault";
      break;
    }
    Out += "@" + (F.EveryAttempt ? std::string("*")
                                 : std::to_string(F.Attempt));
  }
  return Out;
}

SmtResult dryad::injectedResult(const Fault &F, unsigned Attempt) {
  SmtResult R;
  R.Status = SmtStatus::Unknown;
  R.Failure = F.Kind == FailureKind::None ? FailureKind::Injected : F.Kind;
  R.Detail = std::string("injected ") + failureKindName(R.Failure) +
             " (attempt " + std::to_string(Attempt) + ")";
  R.ModelText = R.Detail;
  return R;
}
