//===--- sandbox.h - Process-isolated solver workers ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges one SMT query in a forked worker process so that a solver
/// segfault, assertion failure, runaway allocation, or wedged search can
/// never take down the verification run. The worker:
///
///  * applies `setrlimit` caps (RLIMIT_AS for memory, RLIMIT_CPU derived
///    from the deadline) before touching the solver;
///  * re-parses the serialized SMT-LIB2 benchmark in a fresh Z3 context,
///    checks it, and reports the result back over a pipe;
///  * exits with a reserved code when an allocation failure is caught, so
///    the parent can classify rlimit deaths without a payload.
///
/// The parent enforces a hard wall-clock deadline with SIGKILL and maps the
/// child's fate onto the failure taxonomy:
///
///   | child fate                        | classification            |
///   |-----------------------------------|---------------------------|
///   | exit 0 + complete payload         | payload's own result      |
///   | SIGSEGV/SIGABRT/SIGBUS/...        | FailureKind::SolverCrash  |
///   | SIGXCPU / OOM-kill / exit 97      | FailureKind::ResourceOut  |
///   | parent's deadline SIGKILL         | FailureKind::Timeout      |
///   | exit 96 (setrlimit failed)        | FailureKind::SolverCrash  |
///
/// Exit 96 is the worker refusing to run because a requested rlimit could
/// not be applied (after clamping to the pre-existing hard limit): running
/// uncapped while the parent believes the sandbox holds would be worse
/// than failing the attempt.
///
/// All three non-payload fates are retryable, so `ResilientSolver` treats a
/// crashed or wedged worker exactly like a timed-out in-process check.
/// `SandboxFault` lets fault injection (crash@N / oom@N, see inject.h) make
/// the worker actually die inside the sandbox, exercising the parent-side
/// classification deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SMT_SANDBOX_H
#define DRYAD_SMT_SANDBOX_H

#include "smt/solver.h"

#include <string>

namespace dryad {

/// What the worker does instead of solving — the deterministic hook the
/// crash@N / oom@N fault kinds use to exercise every parent-side
/// classification path with a real child process.
enum class SandboxFault {
  None,  ///< solve the query
  Crash, ///< die on SIGSEGV right after startup
  Oom,   ///< allocate until the RLIMIT_AS cap kills the allocation
  Stall, ///< never answer; the parent's wall-clock SIGKILL must fire
};

/// One isolated solve. `Smt2` is a complete SMT-LIB2 benchmark (as produced
/// by SmtSolver::toSmt2(), including the check-sat command).
struct SandboxRequest {
  std::string Smt2;
  /// Wall-clock deadline enforced by the parent with SIGKILL; also handed
  /// to Z3 as its soft `timeout` so a clean in-solver timeout (with its
  /// reason string) is the common case. 0 = no deadline.
  unsigned TimeoutMs = 0;
  /// RLIMIT_AS cap for the worker, in MiB. 0 = no cap.
  unsigned MemLimitMb = 0;
  /// RLIMIT_CPU cap in seconds; 0 derives it from TimeoutMs (deadline
  /// rounded up plus slack) so a busy-looping solver dies even if the
  /// parent does.
  unsigned CpuLimitS = 0;
  unsigned Seed = 0;
  bool HasSeed = false;
  SandboxFault Fault = SandboxFault::None;
};

/// Runs one query in a forked, rlimited worker and classifies its fate.
/// Never throws; infrastructure problems (fork/pipe failure) surface as
/// FailureKind::SolverCrash results.
SmtResult solveInSandbox(const SandboxRequest &Req);

/// Parent-facing switch threaded from `dryadv --isolate` down to the
/// dispatch layer.
struct SandboxOptions {
  bool Enabled = false;
  unsigned MemLimitMb = 0; ///< `--mem-limit-mb`; 0 = no cap
};

} // namespace dryad

#endif // DRYAD_SMT_SANDBOX_H
