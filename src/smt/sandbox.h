//===--- sandbox.h - Process-isolated solver workers ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges one SMT query in a forked worker process so that a solver
/// segfault, assertion failure, runaway allocation, or wedged search can
/// never take down the verification run. The worker:
///
///  * applies `setrlimit` caps (RLIMIT_AS for memory, RLIMIT_CPU derived
///    from the deadline) before touching the solver;
///  * re-parses the serialized SMT-LIB2 benchmark in a fresh Z3 context,
///    checks it, and reports the result back over a pipe;
///  * exits with a reserved code when an allocation failure is caught, so
///    the parent can classify rlimit deaths without a payload.
///
/// The parent enforces a hard wall-clock deadline with SIGKILL and maps the
/// child's fate onto the failure taxonomy:
///
///   | child fate                        | classification            |
///   |-----------------------------------|---------------------------|
///   | exit 0 + complete payload         | payload's own result      |
///   | SIGSEGV/SIGABRT/SIGBUS/...        | FailureKind::SolverCrash  |
///   | SIGXCPU / OOM-kill / exit 97      | FailureKind::ResourceOut  |
///   | parent's deadline SIGKILL         | FailureKind::Timeout      |
///   | exit 96 (setrlimit failed)        | FailureKind::SolverCrash  |
///
/// Exit 96 is the worker refusing to run because a requested rlimit could
/// not be applied (after clamping to the pre-existing hard limit): running
/// uncapped while the parent believes the sandbox holds would be worse
/// than failing the attempt.
///
/// All three non-payload fates are retryable, so `ResilientSolver` treats a
/// crashed or wedged worker exactly like a timed-out in-process check.
/// `SandboxFault` lets fault injection (crash@N / oom@N, see inject.h) make
/// the worker actually die inside the sandbox, exercising the parent-side
/// classification deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SMT_SANDBOX_H
#define DRYAD_SMT_SANDBOX_H

#include "smt/solver.h"

#include <chrono>
#include <string>

#include <sys/types.h>

namespace dryad {

/// What the worker does instead of solving — the deterministic hook the
/// crash@N / oom@N fault kinds use to exercise every parent-side
/// classification path with a real child process.
enum class SandboxFault {
  None,  ///< solve the query
  Crash, ///< die on SIGSEGV right after startup
  Oom,   ///< allocate until the RLIMIT_AS cap kills the allocation
  Stall, ///< never answer; the parent's wall-clock SIGKILL must fire
  /// Solve the query normally, then FLIP a decisive verdict (unsat<->sat).
  /// The hook the diverge@N fault kind uses to exercise the cross-backend
  /// divergence alarm deterministically.
  Diverge,
};

/// One isolated solve. `Smt2` is a complete SMT-LIB2 benchmark (as produced
/// by SmtSolver::toSmt2(), including the check-sat command).
struct SandboxRequest {
  std::string Smt2;
  /// Wall-clock deadline enforced by the parent with SIGKILL; also handed
  /// to Z3 as its soft `timeout` so a clean in-solver timeout (with its
  /// reason string) is the common case. 0 = no deadline.
  unsigned TimeoutMs = 0;
  /// RLIMIT_AS cap for the worker, in MiB. 0 = no cap.
  unsigned MemLimitMb = 0;
  /// RLIMIT_CPU cap in seconds; 0 derives it from TimeoutMs (deadline
  /// rounded up plus slack) so a busy-looping solver dies even if the
  /// parent does.
  unsigned CpuLimitS = 0;
  unsigned Seed = 0;
  bool HasSeed = false;
  SandboxFault Fault = SandboxFault::None;
  /// Solver backend to discharge the query with, as a `NAME[:PATH]` spec
  /// (see backend/backend.h). Empty selects the in-process Z3 API. The spec
  /// travels in the request frame, so one warm fleet can serve a
  /// heterogeneous portfolio — workers are backend-agnostic until a request
  /// arrives.
  std::string Backend;
};

/// A live (or failed-to-spawn) sandboxed worker, owned by whoever forked
/// it. The synchronous `solveInSandbox` drives exactly one handle; the
/// parallel scheduler (src/sched/pool.*) multiplexes many of them under a
/// single poll(2) event loop. The protocol is:
///
///   WorkerHandle W = spawnWorker(Req);     // fork + pipe
///   while worker alive:
///     poll(W.Fd) or wall-deadline check    // owner's event loop
///     pumpWorker(W) when readable          // drains payload; sets Eof
///     killWorker(W, true) past W.Deadline  // SIGKILL -> Timeout
///   SmtResult R = finishWorker(W);         // reap + classify, exactly once
///
/// All bookkeeping the parent needs — payload bytes, deadline, whether the
/// SIGKILL was ours — lives in the handle, so classification in
/// finishWorker() is identical no matter which event loop drove the worker.
struct WorkerHandle {
  pid_t Pid = -1;
  int Fd = -1; ///< parent's read end of the result pipe
  std::chrono::steady_clock::time_point Start;
  /// Wall-clock instant after which the owner must killWorker(); only
  /// meaningful when HasDeadline (TimeoutMs != 0 in the request).
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;
  unsigned TimeoutMs = 0;   ///< echoed from the request, for classification
  unsigned MemLimitMb = 0;  ///< echoed from the request, for classification
  std::string Payload;      ///< result bytes drained so far
  bool Eof = false;         ///< worker closed its end (exit or death)
  bool KilledByDeadline = false;
  bool SpawnFailed = false; ///< fork/pipe failed; FailReason says why
  std::string FailReason;

  /// True while the owner must keep polling: spawned, not yet at EOF, and
  /// not yet killed at its deadline.
  bool running() const { return !SpawnFailed && !Eof && !KilledByDeadline; }
};

/// Forks one rlimited worker for \p Req and returns immediately. On
/// fork/pipe failure the handle comes back with SpawnFailed set and
/// finishWorker() will classify it as a SolverCrash infrastructure result.
WorkerHandle spawnWorker(const SandboxRequest &Req);

/// Drains available payload bytes (one read). Call when the owner's poll
/// reports W.Fd readable. Returns true once the pipe reached EOF.
bool pumpWorker(WorkerHandle &W);

/// SIGKILLs the worker. \p AtDeadline records that this was the parent's
/// wall-clock deadline firing, which finishWorker() classifies as Timeout;
/// a plain kill (portfolio-loser cancellation) is classified from the wait
/// status like any other signal death.
void killWorker(WorkerHandle &W, bool AtDeadline);

/// Closes the pipe, reaps the child, and maps its fate onto the failure
/// taxonomy (see the table above). Call exactly once per spawned handle.
SmtResult finishWorker(WorkerHandle &W);

/// Runs one query in a forked, rlimited worker and classifies its fate —
/// the one-worker special case of the spawn/await API above. Never throws;
/// infrastructure problems (fork/pipe failure) surface as
/// FailureKind::SolverCrash results.
SmtResult solveInSandbox(const SandboxRequest &Req);

//===----------------------------------------------------------------------===//
// Warm (persistent) workers and the framed wire protocol
//===----------------------------------------------------------------------===//
//
// The one-shot worker above pays fork + process teardown per obligation.
// A warm worker is forked ONCE and then loops: read a length-prefixed
// request frame off its pipe, re-apply the request's rlimits, solve in a
// fresh Z3 context, write a length-prefixed response frame, repeat. Every
// isolation property of the one-shot sandbox is preserved per request:
//
//  * rlimits are re-checked before each solve (RLIMIT_AS soft cap raised or
//    lowered to the request's; RLIMIT_CPU soft cap set relative to the CPU
//    the worker has already burned, since the limit counts cumulatively);
//  * the parent enforces the same wall-clock deadline with SIGKILL;
//  * a worker that dies mid-request is reaped and classified from its wait
//    status exactly like a one-shot worker (SolverCrash / ResourceOut /
//    Timeout), and the owner retries the obligation on a fresh worker.
//
// Wire protocol (all fields length- or line-delimited so solver text can
// contain anything):
//
//   request  (parent -> worker):
//     "DRYQ1\n"
//     <timeout-ms> SP <mem-limit-mb> SP <cpu-limit-s> SP <seed>
//         SP <has-seed> SP <fault> SP <backend-bytes> "\n"
//     <backend-spec> <smt2-bytes> "\n" <smt2>
//   response (worker -> parent):
//     "DRYR1\n" <payload-bytes> "\n" <payload>
//
// <backend-spec> is a length-prefixed `NAME[:PATH]` backend designator
// (empty = in-process Z3 API); the worker constructs the backend per
// request, which is what lets one fleet host a heterogeneous portfolio.
//
// where <payload> is the same "DRYD1" encoding the one-shot worker writes.
// Closing the request pipe retires the worker: it reads EOF between frames
// and exits 0. The worker is registered in the pid registry at SPAWN (not
// at first request), so SIGINT/SIGTERM reaps an idle warm fleet too.

/// A live persistent worker. Owned by the scheduler's pool; between
/// requests it sits idle, blocked reading its request pipe.
struct WarmWorker {
  pid_t Pid = -1;
  int ToFd = -1;   ///< parent's write end: framed requests travel down
  int FromFd = -1; ///< parent's read end: framed responses travel up
  bool SpawnFailed = false; ///< fork/pipe failed; FailReason says why
  std::string FailReason;

  // Per-request state, meaningful while Busy.
  bool Busy = false;
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;
  unsigned TimeoutMs = 0;  ///< echoed from the request, for classification
  unsigned MemLimitMb = 0; ///< echoed from the request, for classification
  std::string Buf;         ///< response bytes drained so far
  bool FrameComplete = false; ///< a full response frame has arrived
  bool Dead = false; ///< EOF (or torn frame) from the worker: it is gone
  bool KilledByDeadline = false;

  unsigned Served = 0; ///< requests answered over this worker's lifetime
  size_t RssKb = 0;    ///< resident set sampled after the last answer

  /// True while the owner must keep polling the in-flight request.
  bool running() const {
    return Busy && !Dead && !KilledByDeadline && !FrameComplete;
  }
  /// True when the worker process can accept another request.
  bool usable() const { return Pid > 0 && !Dead && !SpawnFailed; }
};

/// Forks one persistent worker and registers it with the pid registry
/// immediately — an idle warm fleet must be reapable by the termination
/// handlers. Also sets SIGPIPE to SIG_IGN in the calling process, so a
/// request written to a worker that died while idle surfaces as EPIPE (a
/// respawnable condition), not a fatal signal.
WarmWorker spawnWarmWorker();

/// Writes one framed request to an idle worker and arms the per-request
/// deadline state. Returns false when the worker is unusable or the write
/// fails (it died while idle) — the caller reaps it with finishWarmRequest
/// and retries on a fresh worker.
bool startWarmRequest(WarmWorker &W, const SandboxRequest &Req);

/// Drains available response bytes (one read). Returns true once the
/// in-flight request has concluded: a complete frame arrived, or the worker
/// died (EOF / torn frame).
bool pumpWarmWorker(WarmWorker &W);

/// SIGKILLs the worker; \p AtDeadline marks the parent's wall-clock
/// deadline firing (classified as Timeout by finishWarmRequest).
void killWarmWorker(WarmWorker &W, bool AtDeadline);

/// Concludes the in-flight request. A complete, decodable frame returns
/// the payload's own result and leaves the worker alive and idle for the
/// next request; any other fate (deadline kill, signal death, rlimit kill,
/// torn frame) SIGKILLs + reaps the worker and classifies its wait status
/// exactly like the one-shot finishWorker. After a death the handle is
/// unusable (Pid == -1) and the owner must spawn a replacement.
SmtResult finishWarmRequest(WarmWorker &W);

/// Retires an idle worker: closes its pipes, SIGKILLs, reaps, and
/// unregisters it. Safe on dead or never-spawned handles.
void retireWarmWorker(WarmWorker &W);

/// One synchronous request on a warm worker — the warm analogue of
/// solveInSandbox, driving start/pump/kill/finish under a private poll
/// loop. The worker survives (idle) iff the request concluded cleanly.
SmtResult solveOnWarmWorker(WarmWorker &W, const SandboxRequest &Req);

/// Resident-set size of \p Pid in KiB via /proc, or 0 when unreadable.
/// The pool samples this after each answer to drive RSS-pressure recycling.
size_t sampleWorkerRssKb(pid_t Pid);

/// Parent-facing switch threaded from `dryadv --isolate` down to the
/// dispatch layer.
struct SandboxOptions {
  bool Enabled = false;
  unsigned MemLimitMb = 0; ///< `--mem-limit-mb`; 0 = no cap
};

//===----------------------------------------------------------------------===//
// Child registry and termination handlers
//===----------------------------------------------------------------------===//
//
// Every live child — solver workers here, shard drivers in sched/shard.* —
// is tracked in a lock-free table of atomic pids so a SIGINT/SIGTERM
// handler can SIGKILL and reap all of them without touching any non-async-
// signal-safe state. spawnWorker/finishWorker register and unregister
// automatically; other child-spawning code must do so itself.

/// Adds \p Pid to the termination-handler kill list. Best effort: a full
/// table drops the registration (the owner still reaps the child normally).
void registerChildPid(pid_t Pid);

/// Removes \p Pid after it has been reaped.
void unregisterChildPid(pid_t Pid);

/// Installs SIGINT/SIGTERM handlers that fsync(\p JournalFd) and
/// fsync(\p StoreFd) when they are >= 0 (journal and proof store are both
/// flushed per record by construction, so fsync is all that is left — and
/// all that is async-signal-safe), SIGKILL and reap every registered child
/// (no zombie workers survive the run), unlink any path registered with
/// registerUnlinkOnTermination, and _exit(130). Forked children reset these
/// to SIG_DFL so a group-wide signal cannot make workers kill their
/// siblings' entries.
void installTerminationHandlers(int JournalFd, int StoreFd = -1);

/// Registers \p Path (a unix socket the serve daemon bound) to be
/// unlink(2)ed — async-signal-safely — by the termination handler, so a
/// SIGTERMed daemon never leaves a stale socket behind. Pass an empty
/// string to clear. Only one path is tracked; paths longer than the
/// internal buffer are ignored.
void registerUnlinkOnTermination(const std::string &Path);

/// The termination handlers' hard path, callable directly: fsync the
/// registered journal/store fds, unlink the armed socket path, SIGKILL and
/// reap every registered child, _exit(130). Async-signal-safe. The serve
/// daemon's two-stage drain uses it as the escalation for a second
/// SIGTERM — the first signal drains gracefully, the second takes this
/// path immediately.
[[noreturn]] void terminateNow();

} // namespace dryad

#endif // DRYAD_SMT_SANDBOX_H
