//===--- resilient.h - Retry/escalation solver dispatch ---------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resilient dispatch layer between the verifier and the SMT solver.
/// Z3 can time out, return `unknown`, or be seed-sensitive; a production
/// pipeline must degrade gracefully instead of hanging or conflating
/// "unproved" with "infrastructure failure". `ResilientSolver` wraps each
/// obligation in:
///
///  * a `RetryPolicy` — bounded attempts with escalating per-check deadlines
///    (e.g. 2s -> 10s -> remaining budget) and a fresh `random_seed` per
///    retry to escape seed-sensitive divergence;
///  * a per-procedure `DeadlineBudget` — one stuck obligation cannot starve
///    the rest of the run;
///  * tactic degradation — once escalated retries are exhausted, the
///    obligation is re-dispatched with reduced natural-proof tactic sets
///    (ablation-style: drop axioms, then frames) before giving up, since a
///    smaller strengthening set is sometimes the difference between a
///    timeout and a fast proof;
///  * a `FaultPlan` hook so every one of these paths is exercisable
///    deterministically (see inject.h).
///
/// Each attempt rebuilds the solver from scratch through a caller-supplied
/// builder: Z3 contexts are cheap relative to a discharge, and a fresh
/// context is the only reliable way to reseed and to drop a poisoned
/// assertion stack.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SMT_RESILIENT_H
#define DRYAD_SMT_RESILIENT_H

#include "smt/inject.h"
#include "smt/sandbox.h"
#include "smt/solver.h"

#include <chrono>
#include <functional>
#include <limits>

namespace dryad {

/// Wall-clock budget shared by every obligation of one procedure. A zero
/// budget means "unlimited". Injected timeouts charge their virtual stall
/// through charge() so budget exhaustion is reachable deterministically.
///
/// The clock starts at arm(), not at construction: under cross-procedure
/// scheduling every procedure's budget exists from plan time, but a
/// procedure queued behind other procedures' work must not be billed for
/// it. The dispatch layer arms a budget when the first attempt it governs
/// actually starts (worker spawn, in-process check, or injected fault).
class DeadlineBudget {
public:
  DeadlineBudget() = default; ///< unlimited
  explicit DeadlineBudget(unsigned Ms) : Limited(Ms != 0), BudgetMs(Ms) {}

  bool unlimited() const { return !Limited; }

  /// Starts the wall clock; idempotent. Until armed, only charge()d time
  /// counts against the budget.
  void arm() {
    if (!Armed) {
      Armed = true;
      Start = std::chrono::steady_clock::now();
    }
  }

  unsigned remainingMs() const {
    if (!Limited)
      return std::numeric_limits<unsigned>::max();
    double Elapsed =
        Armed ? std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count()
              : 0.0;
    double Used = Elapsed + ChargedMs;
    return Used >= BudgetMs ? 0 : static_cast<unsigned>(BudgetMs - Used);
  }

  bool exhausted() const { return Limited && remainingMs() == 0; }

  /// Records \p Ms of virtual elapsed time (used by injected timeouts to
  /// simulate the stall they stand in for).
  void charge(unsigned Ms) { ChargedMs += Ms; }

private:
  bool Limited = false;
  bool Armed = false;
  unsigned BudgetMs = 0;
  unsigned ChargedMs = 0;
  std::chrono::steady_clock::time_point Start;
};

/// How many times to try an obligation and with what deadlines.
struct RetryPolicy {
  /// Attempts with the full tactic set. The last one gets the whole
  /// remaining deadline (MaxTimeoutMs capped by the budget).
  unsigned MaxAttempts = 3;
  /// First attempt's deadline; each subsequent attempt multiplies by
  /// BackoffFactor (2s -> 10s -> ... -> MaxTimeoutMs).
  unsigned InitialTimeoutMs = 2000;
  unsigned BackoffFactor = 5;
  /// Per-obligation ceiling (the classic single-shot timeout).
  unsigned MaxTimeoutMs = 60000;
  /// Reshuffle Z3's random_seed between attempts.
  bool ReseedOnRetry = true;
  unsigned BaseSeed = 0;
  /// After MaxAttempts, re-dispatch with reduced tactic sets.
  bool DegradeTactics = true;
  /// Number of reduced tactic sets to try (level 1, 2, ...).
  unsigned DegradeLevels = 2;

  /// Deadline for 1-based \p Attempt (of the MaxAttempts scheduled ones),
  /// before capping by the remaining procedure budget. Escalates
  /// geometrically; the final attempt always gets MaxTimeoutMs.
  unsigned timeoutForAttempt(unsigned Attempt) const;
};

/// What one attempt is allowed to do; handed to the problem builder so the
/// verifier can pick the tactic set matching DegradeLevel.
struct AttemptInfo {
  unsigned Index = 1;        ///< 1-based, counts degraded attempts too
  unsigned TimeoutMs = 0;    ///< deadline this attempt runs under
  unsigned Seed = 0;         ///< random_seed for this attempt
  unsigned DegradeLevel = 0; ///< 0 = full tactics
  /// Backend name discharging this attempt ("z3" unless a portfolio routed
  /// the rung to a secondary backend).
  std::string Backend = "z3";
};

/// The dispatch outcome: a definitive status, or the last failure with its
/// taxonomy kind and enough detail to tell infrastructure failures from
/// genuine "unproved".
struct DispatchResult {
  SmtStatus Status = SmtStatus::Unknown;
  FailureKind Failure = FailureKind::SolverUnknown;
  std::string Detail;
  std::string ModelText;
  double Seconds = 0.0;
  unsigned Attempts = 0;     ///< attempts actually made
  unsigned DegradeLevel = 0; ///< tactic level of the final attempt
  /// Backend that produced the final answer; keys the journal/store record
  /// so a cached proof is never replayed under a different solver.
  std::string Backend = "z3";
};

class ResilientSolver {
public:
  /// Populates a fresh solver for one attempt (assumptions, strengthening
  /// for Info.DegradeLevel, negated goal). Timeout and seed are already set.
  using Builder = std::function<void(SmtSolver &, const AttemptInfo &)>;

  ResilientSolver(RetryPolicy Policy, DeadlineBudget &Budget,
                  const FaultPlan &Plan)
      : Policy(Policy), Budget(Budget), Plan(Plan) {}

  /// Process isolation: when enabled, each attempt is lowered in-process
  /// (to serialize the benchmark) but *solved* in a forked, rlimited worker
  /// — a solver segfault or runaway allocation fails only that attempt, and
  /// retryable() treats it like a timeout. See smt/sandbox.h.
  void setSandbox(SandboxOptions O) { Sandbox = O; }

  /// Runs the retry/escalation/degradation ladder for one obligation.
  /// Implemented as the one-slot special case of the parallel dispatch
  /// engine (sched/dispatch.h), so the sequential and `--jobs N` paths are
  /// the same code.
  DispatchResult dispatch(const Builder &Build);

  /// Whether a failure of kind \p K can be cured by retrying (with a longer
  /// deadline, another seed, or fewer tactics).
  static bool retryable(FailureKind K);

private:
  RetryPolicy Policy;
  DeadlineBudget &Budget;
  const FaultPlan &Plan;
  SandboxOptions Sandbox;
};

} // namespace dryad

#endif // DRYAD_SMT_RESILIENT_H
