//===--- z3solver.cpp - Z3 lowering and solving -----------------------------===//

#include "smt/solver.h"

#include "dryad/printer.h"

#include <chrono>
#include <map>

#include <z3++.h>

using namespace dryad;

namespace {
bool containsAny(const std::string &Haystack,
                 std::initializer_list<const char *> Needles) {
  for (const char *N : Needles)
    if (Haystack.find(N) != std::string::npos)
      return true;
  return false;
}

std::string sanitize(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += (isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '!' ||
            C == '.' || C == '@')
               ? C
               : '_';
  return Out;
}
} // namespace

const char *dryad::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::Timeout:
    return "timeout";
  case FailureKind::SolverUnknown:
    return "solver-unknown";
  case FailureKind::LoweringError:
    return "lowering-error";
  case FailureKind::ResourceOut:
    return "resource-out";
  case FailureKind::SolverCrash:
    return "solver-crash";
  case FailureKind::Injected:
    return "injected";
  }
  return "none";
}

FailureKind dryad::failureKindFromName(const std::string &Name) {
  for (FailureKind K :
       {FailureKind::Timeout, FailureKind::SolverUnknown,
        FailureKind::LoweringError, FailureKind::ResourceOut,
        FailureKind::SolverCrash, FailureKind::Injected})
    if (Name == failureKindName(K))
      return K;
  return FailureKind::None;
}

/// Z3 only reports a free-form `reason_unknown`; map the strings its core
/// actually emits onto the taxonomy.
FailureKind dryad::classifyUnknownReason(const std::string &Reason) {
  if (containsAny(Reason, {"timeout", "canceled", "cancelled", "interrupted"}))
    return FailureKind::Timeout;
  if (containsAny(Reason, {"memout", "memory", "resource", "rlimit",
                           "max. resource"}))
    return FailureKind::ResourceOut;
  return FailureKind::SolverUnknown;
}

struct SmtSolver::Impl {
  z3::context Ctx;
  z3::solver Solver;
  unsigned RandomSeed = 0;
  bool HasSeed = false;
  std::map<std::string, z3::expr> Consts;
  std::map<std::string, z3::func_decl> Funcs;
  std::map<std::string, int> InstanceIds;
  int QuantVarCounter = 0;

  Impl() : Solver(Ctx) {}

  z3::sort intSort() { return Ctx.int_sort(); }
  z3::sort setSort() { return Ctx.array_sort(intSort(), Ctx.bool_sort()); }
  z3::sort msetSort() { return Ctx.array_sort(intSort(), intSort()); }

  z3::sort sortOf(Sort S) {
    switch (S) {
    case Sort::Bool:
      return Ctx.bool_sort();
    case Sort::Loc:
    case Sort::Int:
      return intSort();
    case Sort::LocSet:
    case Sort::IntSet:
      return setSort();
    case Sort::IntMSet:
      return msetSort();
    }
    return intSort();
  }

  z3::expr constant(const std::string &Name, Sort S) {
    std::string Key = Name + "#" + sortName(S);
    auto It = Consts.find(Key);
    if (It != Consts.end())
      return It->second;
    z3::expr E = Ctx.constant(sanitize(Name).c_str(), sortOf(S));
    Consts.emplace(Key, E);
    return E;
  }

  z3::expr fieldArray(const std::string &Field, int Version) {
    assert(Version >= 0 && "unstamped field read reached the solver");
    return constant("fld." + Field + "@" + std::to_string(Version),
                    Sort::IntMSet /*Array Int Int*/);
  }

  /// Uninterpreted function for a recursive definition instance at a
  /// timestamp. \p Kind distinguishes the definition itself from its reach
  /// set.
  z3::func_decl recDecl(const RecDef *Def,
                        const std::vector<const Term *> &Stops, int Time,
                        bool IsReach) {
    assert(Time >= 0 && "unstamped recursive application reached the solver");
    // Reach sets depend only on the pointer fields and the stop locations
    // (§4.2), not on the definition itself: list and keys over `next` share
    // one reach set, which frame reasoning relies on.
    std::string InstKey;
    if (IsReach) {
      for (const std::string &PF : Def->PtrFields)
        InstKey += PF + ",";
    } else {
      InstKey = Def->Name;
    }
    for (const Term *St : Stops)
      InstKey += "|" + print(St);
    auto [It, Inserted] =
        InstanceIds.emplace(InstKey, static_cast<int>(InstanceIds.size()));
    (void)Inserted;
    std::string Name =
        (IsReach ? std::string("reach") : "rec." + Def->Name) + "#" +
        std::to_string(It->second) + "@" + std::to_string(Time);
    auto FIt = Funcs.find(Name);
    if (FIt != Funcs.end())
      return FIt->second;
    z3::sort Range = IsReach ? setSort() : sortOf(Def->Result);
    z3::func_decl D = Ctx.function(Name.c_str(), intSort(), Range);
    Funcs.emplace(Name, D);
    return D;
  }

  z3::expr freshBound(const char *Prefix) {
    return Ctx.constant(
        (std::string(Prefix) + std::to_string(QuantVarCounter++)).c_str(),
        intSort());
  }

  z3::expr memberOf(const z3::expr &E, const z3::expr &SetE, Sort SetSort) {
    if (SetSort == Sort::IntMSet)
      return z3::select(SetE, E) >= 1;
    return z3::select(SetE, E);
  }

  //===--------------------------------------------------------------------===//
  // Terms
  //===--------------------------------------------------------------------===//

  z3::expr lowerTerm(const Term *T) {
    switch (T->kind()) {
    case Term::TK_Nil:
      return Ctx.int_val(0);
    case Term::TK_Var:
      return constant(cast<VarTerm>(T)->name(), T->sort());
    case Term::TK_IntConst:
      return Ctx.int_val(
          static_cast<int64_t>(cast<IntConstTerm>(T)->value()));
    case Term::TK_Inf:
      // IntL infinities are avoided by the specification library; reject
      // loudly rather than approximating.
      throw z3::exception("IntL infinities are not supported in VCs");
    case Term::TK_IntBin: {
      const auto *X = cast<IntBinTerm>(T);
      z3::expr L = lowerTerm(X->lhs()), R = lowerTerm(X->rhs());
      switch (X->op()) {
      case IntBinTerm::Add:
        return L + R;
      case IntBinTerm::Sub:
        return L - R;
      case IntBinTerm::Max:
        return z3::ite(L >= R, L, R);
      case IntBinTerm::Min:
        return z3::ite(L <= R, L, R);
      }
      return L;
    }
    case Term::TK_EmptySet:
      if (T->sort() == Sort::IntMSet)
        return z3::const_array(intSort(), Ctx.int_val(0));
      return z3::const_array(intSort(), Ctx.bool_val(false));
    case Term::TK_Singleton: {
      const auto *X = cast<SingletonTerm>(T);
      z3::expr E = lowerTerm(X->element());
      if (T->sort() == Sort::IntMSet)
        return z3::store(z3::const_array(intSort(), Ctx.int_val(0)), E,
                         Ctx.int_val(1));
      return z3::store(z3::const_array(intSort(), Ctx.bool_val(false)), E,
                       Ctx.bool_val(true));
    }
    case Term::TK_SetBin: {
      const auto *X = cast<SetBinTerm>(T);
      z3::expr L = lowerTerm(X->lhs()), R = lowerTerm(X->rhs());
      if (T->sort() == Sort::IntMSet) {
        // Pointwise lambdas: union adds multiplicities, intersection takes
        // the minimum, difference saturates at zero.
        z3::expr I = freshBound("mi!");
        z3::expr A = z3::select(L, I), B = z3::select(R, I);
        switch (X->op()) {
        case SetBinTerm::Union:
          return z3::lambda(I, A + B);
        case SetBinTerm::Inter:
          return z3::lambda(I, z3::ite(A <= B, A, B));
        case SetBinTerm::Diff:
          return z3::lambda(I, z3::ite(A - B >= 0, A - B,
                                       Ctx.int_val(0)));
        }
      }
      switch (X->op()) {
      case SetBinTerm::Union:
        return z3::set_union(L, R);
      case SetBinTerm::Inter:
        return z3::set_intersect(L, R);
      case SetBinTerm::Diff:
        return z3::set_difference(L, R);
      }
      return L;
    }
    case Term::TK_RecFunc: {
      const auto *X = cast<RecFuncTerm>(T);
      return recDecl(X->def(), X->stopArgs(), X->time(), /*IsReach=*/false)(
          lowerTerm(X->arg()));
    }
    case Term::TK_FieldRead: {
      const auto *X = cast<FieldReadTerm>(T);
      return z3::select(fieldArray(X->field(), X->version()),
                        lowerTerm(X->arg()));
    }
    case Term::TK_Reach: {
      const auto *X = cast<ReachTerm>(T);
      return recDecl(X->def(), X->stopArgs(), X->time(), /*IsReach=*/true)(
          lowerTerm(X->arg()));
    }
    case Term::TK_Ite: {
      const auto *X = cast<IteTerm>(T);
      return z3::ite(lowerFormula(X->cond()), lowerTerm(X->thenTerm()),
                     lowerTerm(X->elseTerm()));
    }
    }
    throw z3::exception("unhandled term kind");
  }

  //===--------------------------------------------------------------------===//
  // Formulas
  //===--------------------------------------------------------------------===//

  z3::expr lowerCmp(const CmpFormula *F) {
    z3::expr L = lowerTerm(F->lhs()), R = lowerTerm(F->rhs());
    Sort LS = F->lhs()->sort(), RS = F->rhs()->sort();
    switch (F->op()) {
    case CmpFormula::Eq:
      return L == R;
    case CmpFormula::Ne:
      return L != R;
    case CmpFormula::Lt:
      return L < R;
    case CmpFormula::Le:
      return L <= R;
    case CmpFormula::Gt:
      return L > R;
    case CmpFormula::Ge:
      return L >= R;
    case CmpFormula::SetLt:
    case CmpFormula::SetLe: {
      bool Strict = F->op() == CmpFormula::SetLt;
      // Singleton sides need no quantifier variable of their own; most
      // specification comparisons are of the form {k} <= keys(S), and the
      // one-variable form is far cheaper for the solver.
      const auto *SL = dyn_cast<SingletonTerm>(F->lhs());
      const auto *SR = dyn_cast<SingletonTerm>(F->rhs());
      if (SL && SR) {
        z3::expr A = lowerTerm(SL->element()), B = lowerTerm(SR->element());
        return Strict ? (A < B) : (A <= B);
      }
      if (SL) {
        z3::expr K = lowerTerm(SL->element());
        z3::expr B = freshBound("qb!");
        z3::expr Conc = Strict ? (K < B) : (K <= B);
        return z3::forall(B, z3::implies(memberOf(B, R, RS), Conc));
      }
      if (SR) {
        z3::expr K = lowerTerm(SR->element());
        z3::expr A = freshBound("qa!");
        z3::expr Conc = Strict ? (A < K) : (A <= K);
        return z3::forall(A, z3::implies(memberOf(A, L, LS), Conc));
      }
      // Array property fragment: forall a b. a in L && b in R => a < b.
      z3::expr A = freshBound("qa!"), B = freshBound("qb!");
      z3::expr Prem = memberOf(A, L, LS) && memberOf(B, R, RS);
      z3::expr Conc = Strict ? (A < B) : (A <= B);
      return z3::forall(A, B, z3::implies(Prem, Conc));
    }
    case CmpFormula::SubsetEq: {
      if (LS == Sort::IntMSet) {
        z3::expr A = freshBound("qs!");
        return z3::forall(A, z3::select(L, A) <= z3::select(R, A));
      }
      return z3::set_subset(L, R);
    }
    case CmpFormula::In:
      return memberOf(L, R, RS);
    case CmpFormula::NotIn:
      return !memberOf(L, R, RS);
    }
    throw z3::exception("unhandled comparison");
  }

  z3::expr lowerFormula(const Formula *F) {
    switch (F->kind()) {
    case Formula::FK_BoolConst:
      return Ctx.bool_val(cast<BoolConstFormula>(F)->value());
    case Formula::FK_Cmp:
      return lowerCmp(cast<CmpFormula>(F));
    case Formula::FK_RecPred: {
      const auto *X = cast<RecPredFormula>(F);
      return recDecl(X->def(), X->stopArgs(), X->time(), /*IsReach=*/false)(
          lowerTerm(X->arg()));
    }
    case Formula::FK_And:
    case Formula::FK_Or: {
      const auto *X = cast<NaryFormula>(F);
      z3::expr_vector Ops(Ctx);
      for (const Formula *Op : X->operands())
        Ops.push_back(lowerFormula(Op));
      return F->kind() == Formula::FK_And ? z3::mk_and(Ops) : z3::mk_or(Ops);
    }
    case Formula::FK_Not:
      return !lowerFormula(cast<NotFormula>(F)->operand());
    case Formula::FK_FieldUpdate: {
      const auto *X = cast<FieldUpdateFormula>(F);
      z3::expr From = fieldArray(X->field(), X->fromVersion());
      z3::expr To = fieldArray(X->field(), X->toVersion());
      return To == z3::store(From, lowerTerm(X->base()),
                             lowerTerm(X->value()));
    }
    case Formula::FK_Emp:
    case Formula::FK_PointsTo:
    case Formula::FK_Sep:
      throw z3::exception("spatial formula reached the solver untranslated");
    }
    throw z3::exception("unhandled formula kind");
  }
};

SmtSolver::SmtSolver() : I(std::make_unique<Impl>()) {}
SmtSolver::~SmtSolver() = default;

void SmtSolver::setTimeoutMs(unsigned Ms) {
  // Only recorded here; check() re-applies it before every query so the
  // deadline in force is always the most recently requested one.
  TimeoutMs = Ms;
}

void SmtSolver::setRandomSeed(unsigned Seed) {
  I->RandomSeed = Seed;
  I->HasSeed = true;
}

void SmtSolver::add(const Formula *F) {
  try {
    I->Solver.add(I->lowerFormula(F));
  } catch (const z3::exception &E) {
    // Lowering failures surface as Unknown at check() time; record them.
    if (LoweringError.empty())
      LoweringError = std::string(E.msg()) + " in: " + print(F);
  }
}

void SmtSolver::addNegated(const Formula *F) {
  try {
    I->Solver.add(!I->lowerFormula(F));
  } catch (const z3::exception &E) {
    if (LoweringError.empty())
      LoweringError = std::string(E.msg()) + " in: " + print(F);
  }
}

SmtResult SmtSolver::check() {
  SmtResult R;
  auto Start = std::chrono::steady_clock::now();
  if (!LoweringError.empty()) {
    R.Status = SmtStatus::Unknown;
    R.Failure = FailureKind::LoweringError;
    R.Detail = LoweringError;
    R.ModelText = "lowering error: " + LoweringError;
    return R;
  }
  try {
    // Re-arm per check: a probe's short deadline must not leak into a later
    // discharge on this solver, nor a long discharge deadline into a probe.
    z3::params P(I->Ctx);
    P.set("timeout", TimeoutMs == 0 ? 4294967295u : TimeoutMs);
    if (I->HasSeed)
      P.set("random_seed", I->RandomSeed);
    I->Solver.set(P);
    z3::check_result CR = I->Solver.check();
    if (CR == z3::unsat) {
      R.Status = SmtStatus::Unsat;
    } else if (CR == z3::sat) {
      R.Status = SmtStatus::Sat;
      z3::model Mdl = I->Solver.get_model();
      std::string Text;
      for (unsigned J = 0; J != Mdl.num_consts(); ++J) {
        z3::func_decl D = Mdl.get_const_decl(J);
        std::string Name = D.name().str();
        // Report scalar program/spec constants only; arrays and internal
        // quantifier witnesses are noise in a counterexample.
        if (Name.rfind("fld.", 0) == 0 || Name.rfind("qa!", 0) == 0 ||
            Name.rfind("qb!", 0) == 0 || Name.rfind("qs!", 0) == 0 ||
            Name.rfind("mi!", 0) == 0)
          continue;
        z3::expr Val = Mdl.get_const_interp(D);
        if (!Val.is_numeral() && !Val.is_bool())
          continue;
        Text += Name + " = " + Val.to_string() + "; ";
      }
      R.ModelText = Text;
    } else {
      R.Status = SmtStatus::Unknown;
      R.ModelText = I->Solver.reason_unknown();
      R.Detail = R.ModelText;
      R.Failure = classifyUnknownReason(R.Detail);
    }
  } catch (const z3::exception &E) {
    R.Status = SmtStatus::Unknown;
    R.ModelText = E.msg();
    R.Detail = E.msg();
    R.Failure = classifyUnknownReason(R.Detail);
  }
  R.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  return R;
}

std::string SmtSolver::toSmt2() {
  try {
    return I->Solver.to_smt2();
  } catch (const z3::exception &E) {
    return std::string("; to_smt2 failed: ") + E.msg();
  }
}
