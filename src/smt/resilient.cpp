//===--- resilient.cpp - Retry/escalation solver dispatch -------------------===//

#include "smt/resilient.h"

#include "sched/dispatch.h"

using namespace dryad;

unsigned RetryPolicy::timeoutForAttempt(unsigned Attempt) const {
  if (Attempt >= MaxAttempts)
    return MaxTimeoutMs;
  // Geometric escalation from InitialTimeoutMs, saturating at the ceiling.
  unsigned long long T = InitialTimeoutMs == 0 ? 1 : InitialTimeoutMs;
  for (unsigned I = 1; I < Attempt; ++I) {
    T *= BackoffFactor == 0 ? 1 : BackoffFactor;
    if (T >= MaxTimeoutMs)
      return MaxTimeoutMs;
  }
  return static_cast<unsigned>(T > MaxTimeoutMs ? MaxTimeoutMs : T);
}

bool ResilientSolver::retryable(FailureKind K) {
  switch (K) {
  case FailureKind::Timeout:
  case FailureKind::SolverUnknown:
  case FailureKind::ResourceOut:
  case FailureKind::SolverCrash: // a fresh worker may well survive
  case FailureKind::Injected:
    return true;
  case FailureKind::LoweringError: // deterministic: same input, same failure
  case FailureKind::None:
    return false;
  }
  return false;
}

DispatchResult ResilientSolver::dispatch(const Builder &Build) {
  // The one-slot special case of the parallel dispatch engine: a pool with
  // a single worker slot reproduces the classic sequential retry schedule
  // (sched/dispatch.h documents why), so every code path here is the same
  // one `--jobs N` exercises.
  Scheduler Pool(1);
  DispatchEngine Engine(Pool);

  ObligationSpec Spec;
  Spec.Policy = Policy;
  Spec.Inject = Plan;
  Spec.Sandbox = Sandbox;
  Spec.Build = Build;
  Spec.Budget = &Budget;

  DispatchResult Out;
  Engine.submit(std::move(Spec), [&Out](const DispatchResult &R) { Out = R; });
  Engine.drain();
  return Out;
}
