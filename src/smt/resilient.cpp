//===--- resilient.cpp - Retry/escalation solver dispatch -------------------===//

#include "smt/resilient.h"

#include <algorithm>

using namespace dryad;

unsigned RetryPolicy::timeoutForAttempt(unsigned Attempt) const {
  if (Attempt >= MaxAttempts)
    return MaxTimeoutMs;
  // Geometric escalation from InitialTimeoutMs, saturating at the ceiling.
  unsigned long long T = InitialTimeoutMs == 0 ? 1 : InitialTimeoutMs;
  for (unsigned I = 1; I < Attempt; ++I) {
    T *= BackoffFactor == 0 ? 1 : BackoffFactor;
    if (T >= MaxTimeoutMs)
      return MaxTimeoutMs;
  }
  return static_cast<unsigned>(T > MaxTimeoutMs ? MaxTimeoutMs : T);
}

bool ResilientSolver::retryable(FailureKind K) {
  switch (K) {
  case FailureKind::Timeout:
  case FailureKind::SolverUnknown:
  case FailureKind::ResourceOut:
  case FailureKind::SolverCrash: // a fresh worker may well survive
  case FailureKind::Injected:
    return true;
  case FailureKind::LoweringError: // deterministic: same input, same failure
  case FailureKind::None:
    return false;
  }
  return false;
}

DispatchResult ResilientSolver::dispatch(const Builder &Build) {
  DispatchResult Out;
  const unsigned Scheduled = Policy.MaxAttempts == 0 ? 1 : Policy.MaxAttempts;
  const unsigned Degraded = Policy.DegradeTactics ? Policy.DegradeLevels : 0;
  const unsigned MaxTotal = Scheduled + Degraded;

  for (unsigned Attempt = 1; Attempt <= MaxTotal; ++Attempt) {
    if (Budget.exhausted()) {
      Out.Status = SmtStatus::Unknown;
      Out.Failure = FailureKind::Timeout;
      Out.Detail = "procedure deadline budget exhausted after " +
                   std::to_string(Out.Attempts) + " attempt(s)" +
                   (Out.Detail.empty() ? "" : "; last: " + Out.Detail);
      return Out;
    }

    AttemptInfo Info;
    Info.Index = Attempt;
    // Degraded attempts run after the scheduled ones, each with the full
    // remaining deadline: the point is a smaller problem, not a longer wait.
    Info.DegradeLevel = Attempt <= Scheduled ? 0 : Attempt - Scheduled;
    Info.TimeoutMs =
        Policy.timeoutForAttempt(Attempt <= Scheduled ? Attempt : Scheduled);
    if (!Budget.unlimited())
      Info.TimeoutMs = std::min(Info.TimeoutMs, Budget.remainingMs());
    if (Info.TimeoutMs == 0)
      Info.TimeoutMs = 1;
    Info.Seed = Policy.BaseSeed + 7919 * (Attempt - 1);

    SmtResult R;
    std::optional<Fault> F = Plan.faultFor(Attempt);
    // Worker-realized faults (crash@N / oom@N) only short-circuit when
    // there is no sandbox to realize them in; under isolation they travel
    // into the forked worker so the parent-side classification is what the
    // test exercises.
    if (F && !(Sandbox.Enabled && F->InWorker)) {
      R = injectedResult(*F, Attempt);
      // An injected timeout stands in for a solver stalling until its
      // deadline; charge that stall so budget exhaustion is reachable.
      if (R.Failure == FailureKind::Timeout)
        Budget.charge(Info.TimeoutMs);
    } else {
      SmtSolver S;
      S.setTimeoutMs(Info.TimeoutMs);
      if (Policy.ReseedOnRetry && Attempt > 1)
        S.setRandomSeed(Info.Seed);
      Build(S, Info);
      if (Sandbox.Enabled && !S.hasLoweringError()) {
        SandboxRequest Req;
        Req.Smt2 = S.toSmt2();
        Req.TimeoutMs = Info.TimeoutMs;
        Req.MemLimitMb = Sandbox.MemLimitMb;
        Req.Seed = Info.Seed;
        Req.HasSeed = Policy.ReseedOnRetry && Attempt > 1;
        if (F)
          Req.Fault = F->Kind == FailureKind::SolverCrash ? SandboxFault::Crash
                                                          : SandboxFault::Oom;
        R = solveInSandbox(Req);
      } else {
        R = S.check();
      }
    }

    Out.Attempts = Attempt;
    Out.DegradeLevel = Info.DegradeLevel;
    Out.Seconds += R.Seconds;
    Out.Status = R.Status;
    Out.Failure = R.Failure;
    Out.Detail = R.Detail;
    Out.ModelText = R.ModelText;

    if (R.Status != SmtStatus::Unknown)
      return Out; // definitive (proved or counterexample)
    if (!retryable(R.Failure))
      return Out; // e.g. lowering error: retrying cannot help
  }
  return Out;
}
