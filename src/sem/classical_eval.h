//===--- classical_eval.h - Convenience classical evaluation ----*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for evaluating translated (classical) formulas over the global
/// heap, used primarily by the Theorem 5.1 property tests: the Dryad
/// evaluation of ϕ on heaplet G must agree with the classical evaluation of
/// T(ϕ, G) on the global heap with the set variable G interpreted as the
/// heaplet domain.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SEM_CLASSICAL_EVAL_H
#define DRYAD_SEM_CLASSICAL_EVAL_H

#include "sem/eval.h"

namespace dryad {

/// Evaluates a classical formula on the global heap of \p St, interpreting
/// the variable \p HeapletVar as the set \p Heaplet (plus any extra bindings
/// in \p Env).
bool evalClassical(const ProgramState &St, const DefRegistry &Defs,
                   const Formula *F, const std::string &HeapletVar,
                   const std::set<int64_t> &Heaplet,
                   const std::map<std::string, Value> &Env = {});

} // namespace dryad

#endif // DRYAD_SEM_CLASSICAL_EVAL_H
