//===--- eval.cpp - Dryad and classical evaluation -------------------------===//

#include "sem/eval.h"

#include <algorithm>
#include <tuple>

using namespace dryad;

Evaluator::Evaluator(const ProgramState &St, const DefRegistry &Defs,
                     EvalMode Mode)
    : St(St), Defs(Defs), Mode(Mode) {}

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

std::optional<Value> Evaluator::lookupVar(const std::string &Name) {
  for (auto It = Locals.rbegin(), E = Locals.rend(); It != E; ++It) {
    auto F = It->find(Name);
    if (F != It->end())
      return F->second;
  }
  auto F = Env.find(Name);
  if (F != Env.end())
    return F->second;
  auto G = St.Store.find(Name);
  if (G != St.Store.end())
    return G->second;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Purity and scopes (Fig. 3, evaluated semantically)
//===----------------------------------------------------------------------===//

bool Evaluator::isPure(const Term *T) {
  switch (T->kind()) {
  case Term::TK_RecFunc:
    return false;
  case Term::TK_IntBin:
    return isPure(cast<IntBinTerm>(T)->lhs()) &&
           isPure(cast<IntBinTerm>(T)->rhs());
  case Term::TK_Singleton:
    return isPure(cast<SingletonTerm>(T)->element());
  case Term::TK_SetBin:
    return isPure(cast<SetBinTerm>(T)->lhs()) &&
           isPure(cast<SetBinTerm>(T)->rhs());
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    return isPure(X->thenTerm()) && isPure(X->elseTerm());
  }
  default:
    return true; // vars, consts, FieldRead/Reach (classical, global)
  }
}

Evaluator::ScopeInfo Evaluator::scopeOf(const Term *T) {
  ScopeInfo R;
  switch (T->kind()) {
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    std::optional<Value> Arg = evalT(X->arg(), {});
    if (!Arg) {
      R.Undef = true;
      return R;
    }
    std::vector<int64_t> Stops;
    for (const Term *StTerm : X->stopArgs()) {
      std::optional<Value> SV = evalT(StTerm, {});
      if (!SV) {
        R.Undef = true;
        return R;
      }
      Stops.push_back(SV->I);
    }
    R.Exact = true;
    R.Scope = reachOf(X->def(), Stops, Arg->I);
    return R;
  }
  case Term::TK_IntBin: {
    ScopeInfo A = scopeOf(cast<IntBinTerm>(T)->lhs());
    ScopeInfo B = scopeOf(cast<IntBinTerm>(T)->rhs());
    R.Exact = A.Exact || B.Exact;
    R.Undef = A.Undef || B.Undef;
    R.Scope = A.Scope;
    R.Scope.insert(B.Scope.begin(), B.Scope.end());
    return R;
  }
  case Term::TK_SetBin: {
    ScopeInfo A = scopeOf(cast<SetBinTerm>(T)->lhs());
    ScopeInfo B = scopeOf(cast<SetBinTerm>(T)->rhs());
    R.Exact = A.Exact || B.Exact;
    R.Undef = A.Undef || B.Undef;
    R.Scope = A.Scope;
    R.Scope.insert(B.Scope.begin(), B.Scope.end());
    return R;
  }
  case Term::TK_Singleton:
    return scopeOf(cast<SingletonTerm>(T)->element());
  default:
    return R; // pure: not domain-exact, empty scope
  }
}

Evaluator::ScopeInfo Evaluator::scopeOf(const Formula *F) {
  ScopeInfo R;
  switch (F->kind()) {
  case Formula::FK_BoolConst:
    return R;
  case Formula::FK_Emp:
    R.Exact = true;
    return R;
  case Formula::FK_PointsTo: {
    std::optional<Value> Base = evalT(cast<PointsToFormula>(F)->base(), {});
    if (!Base) {
      R.Undef = true;
      return R;
    }
    R.Exact = true;
    R.Scope = {Base->I};
    return R;
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    std::optional<Value> Arg = evalT(X->arg(), {});
    if (!Arg) {
      R.Undef = true;
      return R;
    }
    std::vector<int64_t> Stops;
    for (const Term *StTerm : X->stopArgs()) {
      std::optional<Value> SV = evalT(StTerm, {});
      if (!SV) {
        R.Undef = true;
        return R;
      }
      Stops.push_back(SV->I);
    }
    R.Exact = true;
    R.Scope = reachOf(X->def(), Stops, Arg->I);
    return R;
  }
  case Formula::FK_Cmp: {
    ScopeInfo A = scopeOf(cast<CmpFormula>(F)->lhs());
    ScopeInfo B = scopeOf(cast<CmpFormula>(F)->rhs());
    R.Exact = A.Exact || B.Exact;
    R.Undef = A.Undef || B.Undef;
    R.Scope = A.Scope;
    R.Scope.insert(B.Scope.begin(), B.Scope.end());
    return R;
  }
  case Formula::FK_And: {
    bool AnyExact = false;
    for (const Formula *Op : cast<NaryFormula>(F)->operands()) {
      ScopeInfo S = scopeOf(Op);
      AnyExact |= S.Exact;
      R.Undef |= S.Undef;
      R.Scope.insert(S.Scope.begin(), S.Scope.end());
    }
    R.Exact = AnyExact;
    return R;
  }
  case Formula::FK_Sep: {
    bool AllExact = true;
    for (const Formula *Op : cast<NaryFormula>(F)->operands()) {
      ScopeInfo S = scopeOf(Op);
      AllExact &= S.Exact;
      R.Undef |= S.Undef;
      R.Scope.insert(S.Scope.begin(), S.Scope.end());
    }
    R.Exact = AllExact;
    return R;
  }
  case Formula::FK_Or:
    // Scopes are defined on disjunction-free formulas only; callers
    // distribute disjunction before asking.
    R.Undef = true;
    return R;
  case Formula::FK_Not: {
    ScopeInfo S = scopeOf(cast<NotFormula>(F)->operand());
    R.Scope = S.Scope;
    R.Undef = S.Undef;
    return R;
  }
  case Formula::FK_FieldUpdate:
    return R;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

std::optional<Value> Evaluator::termValue(const Term *T,
                                          const std::set<int64_t> &Dom) {
  if (InFixpoint)
    return evalT(T, Dom);
  InFixpoint = true;
  std::optional<Value> V;
  size_t Cap = 2 * (St.R.size() + 16);
  for (size_t I = 0; I != Cap; ++I) {
    auto Before = Table;
    V = evalT(T, Dom);
    runToFixpoint();
    if (Table == Before) {
      InFixpoint = false;
      return V;
    }
  }
  Converged = false;
  InFixpoint = false;
  return V;
}

/// Evaluates the two operands of a binary relation/operation following the
/// pure/impure heaplet-split rules of §4.2: if either side is pure both are
/// evaluated on the current domain; if both are impure the domain must be
/// covered by the union of their scopes and each side is evaluated on its
/// scope.
std::optional<Value> Evaluator::evalBinOperands(const Term *L, const Term *R,
                                                const std::set<int64_t> &Dom,
                                                std::optional<Value> &RV) {
  bool LPure = isPure(L), RPure = isPure(R);
  if (Mode == EvalMode::Global || LPure || RPure) {
    std::optional<Value> LV = evalT(L, Dom);
    RV = evalT(R, Dom);
    return LV;
  }
  ScopeInfo SL = scopeOf(L), SR = scopeOf(R);
  if (SL.Undef || SR.Undef)
    return std::nullopt;
  std::set<int64_t> Union = SL.Scope;
  Union.insert(SR.Scope.begin(), SR.Scope.end());
  if (Union != Dom)
    return std::nullopt;
  std::optional<Value> LV = evalT(L, SL.Scope);
  RV = evalT(R, SR.Scope);
  return LV;
}

std::optional<Value> Evaluator::evalT(const Term *T,
                                      const std::set<int64_t> &Dom) {
  switch (T->kind()) {
  case Term::TK_Nil:
    return Value::mkLoc(0);
  case Term::TK_Var: {
    std::optional<Value> V = lookupVar(cast<VarTerm>(T)->name());
    return V;
  }
  case Term::TK_IntConst:
    return Value::mkInt(cast<IntConstTerm>(T)->value());
  case Term::TK_Inf:
    return Value::mkInf(cast<InfTerm>(T)->isPositive());
  case Term::TK_IntBin: {
    const auto *X = cast<IntBinTerm>(T);
    std::optional<Value> RV;
    std::optional<Value> LV = evalBinOperands(X->lhs(), X->rhs(), Dom, RV);
    if (!LV || !RV)
      return std::nullopt;
    switch (X->op()) {
    case IntBinTerm::Add:
      return intAdd(*LV, *RV);
    case IntBinTerm::Sub:
      return intSub(*LV, *RV);
    case IntBinTerm::Max:
      return intLe(*LV, *RV) ? *RV : *LV;
    case IntBinTerm::Min:
      return intLe(*LV, *RV) ? *LV : *RV;
    }
    return std::nullopt;
  }
  case Term::TK_EmptySet:
    return T->sort() == Sort::IntMSet ? Value::mkMSet()
                                      : Value::mkSet(T->sort());
  case Term::TK_Singleton: {
    const auto *X = cast<SingletonTerm>(T);
    std::optional<Value> E = evalT(X->element(), Dom);
    if (!E)
      return std::nullopt;
    // {it} evaluates to the empty set for -inf / inf (paper §4.2).
    if (E->S == Sort::Int && E->IK != Value::Fin)
      return T->sort() == Sort::IntMSet ? Value::mkMSet()
                                        : Value::mkSet(T->sort());
    if (T->sort() == Sort::IntMSet)
      return Value::mkMSet({{E->I, 1}});
    return Value::mkSet(T->sort(), {E->I});
  }
  case Term::TK_SetBin: {
    const auto *X = cast<SetBinTerm>(T);
    std::optional<Value> RV;
    std::optional<Value> LV = evalBinOperands(X->lhs(), X->rhs(), Dom, RV);
    if (!LV || !RV)
      return std::nullopt;
    switch (X->op()) {
    case SetBinTerm::Union:
      return setUnion(*LV, *RV);
    case SetBinTerm::Inter:
      return setInter(*LV, *RV);
    case SetBinTerm::Diff:
      return setDiff(*LV, *RV);
    }
    return std::nullopt;
  }
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    std::optional<Value> Arg = evalT(X->arg(), Dom);
    if (!Arg)
      return std::nullopt;
    std::vector<int64_t> Stops;
    for (const Term *StTerm : X->stopArgs()) {
      std::optional<Value> SV = evalT(StTerm, Dom);
      if (!SV)
        return std::nullopt;
      Stops.push_back(SV->I);
    }
    Key K{X->def(), Stops, Arg->I};
    if (Mode == EvalMode::Heaplet && keyDomain(K) != Dom)
      return std::nullopt; // undef: heaplet is not the reach set
    return tableLookup(K);
  }
  case Term::TK_FieldRead: {
    const auto *X = cast<FieldReadTerm>(T);
    std::optional<Value> Arg = evalT(X->arg(), Dom);
    if (!Arg)
      return std::nullopt;
    int64_t V = St.read(Arg->I, X->field());
    return T->sort() == Sort::Loc ? Value::mkLoc(V) : Value::mkInt(V);
  }
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(T);
    std::optional<Value> Arg = evalT(X->arg(), Dom);
    if (!Arg)
      return std::nullopt;
    std::vector<int64_t> Stops;
    for (const Term *StTerm : X->stopArgs()) {
      std::optional<Value> SV = evalT(StTerm, Dom);
      if (!SV)
        return std::nullopt;
      Stops.push_back(SV->I);
    }
    return Value::mkSet(Sort::LocSet, reachOf(X->def(), Stops, Arg->I));
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    return evalF(X->cond(), Dom) ? evalT(X->thenTerm(), Dom)
                                 : evalT(X->elseTerm(), Dom);
  }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

static bool applyCmp(CmpFormula::Op Op, const Value &L, const Value &R) {
  switch (Op) {
  case CmpFormula::Eq:
    return L == R;
  case CmpFormula::Ne:
    return !(L == R);
  case CmpFormula::Lt:
    return intLt(L, R);
  case CmpFormula::Le:
    return intLe(L, R);
  case CmpFormula::Gt:
    return intLt(R, L);
  case CmpFormula::Ge:
    return intLe(R, L);
  case CmpFormula::SetLt:
    return setAllLt(L, R);
  case CmpFormula::SetLe:
    return setAllLe(L, R);
  case CmpFormula::SubsetEq:
    return setSubset(L, R);
  case CmpFormula::In:
    return setMember(L, R);
  case CmpFormula::NotIn:
    return !setMember(L, R);
  }
  return false;
}

bool Evaluator::evalF(const Formula *F, const std::set<int64_t> &Dom) {
  switch (F->kind()) {
  case Formula::FK_BoolConst:
    return cast<BoolConstFormula>(F)->value();
  case Formula::FK_Emp:
    return Mode == EvalMode::Global || Dom.empty();
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    std::optional<Value> Base = evalT(X->base(), Dom);
    if (!Base || Base->I == 0)
      return false;
    if (Mode == EvalMode::Heaplet) {
      if (!St.R.count(Base->I))
        return false;
      if (Dom != std::set<int64_t>{Base->I})
        return false;
    }
    for (const auto &FB : X->fields()) {
      std::optional<Value> V = evalT(FB.Value, Dom);
      if (!V || St.read(Base->I, FB.Field) != V->I)
        return false;
    }
    return true;
  }
  case Formula::FK_Cmp: {
    const auto *X = cast<CmpFormula>(F);
    std::optional<Value> RV;
    std::optional<Value> LV = evalBinOperands(X->lhs(), X->rhs(), Dom, RV);
    if (!LV || !RV)
      return false;
    return applyCmp(X->op(), *LV, *RV);
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    std::optional<Value> Arg = evalT(X->arg(), Dom);
    if (!Arg)
      return false;
    std::vector<int64_t> Stops;
    for (const Term *StTerm : X->stopArgs()) {
      std::optional<Value> SV = evalT(StTerm, Dom);
      if (!SV)
        return false;
      Stops.push_back(SV->I);
    }
    Key K{X->def(), Stops, Arg->I};
    if (Mode == EvalMode::Heaplet && keyDomain(K) != Dom)
      return false;
    return tableLookup(K).B;
  }
  case Formula::FK_And: {
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      if (!evalF(Op, Dom))
        return false;
    return true;
  }
  case Formula::FK_Or: {
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      if (evalF(Op, Dom))
        return true;
    return false;
  }
  case Formula::FK_Not:
    return !evalF(cast<NotFormula>(F)->operand(), Dom);
  case Formula::FK_Sep: {
    if (Mode == EvalMode::Global) {
      // Classical evaluation never sees *, but definition bodies evaluated
      // in global mode do: there the heaplet constraints degenerate to
      // plain conjunction plus the disjointness implied by reach equalities,
      // which evalSep checks via scopes below.
    }
    return evalSep(cast<NaryFormula>(F)->operands(), 0, Dom);
  }
  case Formula::FK_FieldUpdate:
    assert(false && "FieldUpdate is only meaningful inside VCs");
    return false;
  }
  return false;
}

bool Evaluator::evalSep(const std::vector<const Formula *> &Ops, size_t From,
                        const std::set<int64_t> &Dom) {
  assert(From < Ops.size());
  // Distribute any top-level disjunction first: (a || b) * c becomes
  // (a * c) || (b * c); scopes are only defined on disjunction-free
  // formulas.
  for (size_t I = From; I != Ops.size(); ++I) {
    if (Ops[I]->kind() != Formula::FK_Or)
      continue;
    for (const Formula *Disjunct : cast<NaryFormula>(Ops[I])->operands()) {
      std::vector<const Formula *> Copy(Ops.begin() + From, Ops.end());
      Copy[I - From] = Disjunct;
      if (evalSep(Copy, 0, Dom))
        return true;
    }
    return false;
  }

  if (From + 1 == Ops.size())
    return evalF(Ops[From], Dom);

  const Formula *Phi = Ops[From];
  ScopeInfo S1 = scopeOf(Phi);
  ScopeInfo S2;
  S2.Exact = true;
  for (size_t I = From + 1; I != Ops.size(); ++I) {
    ScopeInfo S = scopeOf(Ops[I]);
    S2.Exact &= S.Exact;
    S2.Undef |= S.Undef;
    S2.Scope.insert(S.Scope.begin(), S.Scope.end());
  }
  if (S1.Undef || S2.Undef)
    return false;

  auto subsetOf = [](const std::set<int64_t> &A, const std::set<int64_t> &B) {
    return std::includes(B.begin(), B.end(), A.begin(), A.end());
  };
  auto disjoint = [](const std::set<int64_t> &A, const std::set<int64_t> &B) {
    for (int64_t X : A)
      if (B.count(X))
        return false;
    return true;
  };
  auto minus = [](const std::set<int64_t> &A, const std::set<int64_t> &B) {
    std::set<int64_t> R;
    for (int64_t X : A)
      if (!B.count(X))
        R.insert(X);
    return R;
  };

  if (S1.Exact && S2.Exact) {
    std::set<int64_t> Union = S1.Scope;
    Union.insert(S2.Scope.begin(), S2.Scope.end());
    return Union == Dom && disjoint(S1.Scope, S2.Scope) &&
           evalF(Phi, S1.Scope) && evalSep(Ops, From + 1, S2.Scope);
  }
  if (S1.Exact) {
    return subsetOf(S1.Scope, Dom) && evalF(Phi, S1.Scope) &&
           evalSep(Ops, From + 1, minus(Dom, S1.Scope));
  }
  if (S2.Exact) {
    return subsetOf(S2.Scope, Dom) && evalSep(Ops, From + 1, S2.Scope) &&
           evalF(Phi, minus(Dom, S2.Scope));
  }
  std::set<int64_t> Union = S1.Scope;
  Union.insert(S2.Scope.begin(), S2.Scope.end());
  return subsetOf(Union, Dom) && disjoint(S1.Scope, S2.Scope) &&
         evalF(Phi, S1.Scope) && evalSep(Ops, From + 1, S2.Scope);
}

//===----------------------------------------------------------------------===//
// Recursive definitions (least fixed point)
//===----------------------------------------------------------------------===//

std::set<int64_t> Evaluator::reachOf(const RecDef *Def,
                                     const std::vector<int64_t> &Stops,
                                     int64_t L) {
  std::set<int64_t> StopSet(Stops.begin(), Stops.end());
  return St.reachset(L, Def->PtrFields, StopSet,
                     /*Global=*/Mode == EvalMode::Global);
}

std::set<int64_t> Evaluator::keyDomain(const Key &K) {
  return reachOf(K.Def, K.Stops, K.L);
}

Value Evaluator::tableLookup(const Key &K) {
  auto It = Table.find(K);
  if (It != Table.end())
    return It->second;
  Value Bottom = Value::bottom(K.Def->Result);
  Table.emplace(K, Bottom);
  return Bottom;
}

std::map<std::string, Value> Evaluator::bindLocals(const Key &K) {
  std::map<std::string, Value> B;
  B[K.Def->ArgName] = Value::mkLoc(K.L);
  for (size_t I = 0; I != K.Def->StopParams.size(); ++I)
    B[K.Def->StopParams[I]] = Value::mkLoc(K.Stops[I]);

  // Bind the implicitly existentially quantified ~s: each is bound by a
  // points-to on an already-bound location variable (the definition
  // argument, or transitively another ~s), so its value is a chain of
  // field reads.
  std::vector<std::tuple<std::string, std::string, const VarTerm *>> Binds;
  auto Collect = [&](const Formula *F, auto &&Self) -> void {
    switch (F->kind()) {
    case Formula::FK_PointsTo: {
      const auto *X = cast<PointsToFormula>(F);
      const auto *BaseVar = dyn_cast<VarTerm>(X->base());
      if (!BaseVar)
        return;
      for (const auto &FB : X->fields())
        if (const auto *V = dyn_cast<VarTerm>(FB.Value))
          Binds.emplace_back(BaseVar->name(), FB.Field, V);
      return;
    }
    case Formula::FK_And:
    case Formula::FK_Or:
    case Formula::FK_Sep:
      for (const Formula *Op : cast<NaryFormula>(F)->operands())
        Self(Op, Self);
      return;
    default:
      return;
    }
  };
  if (K.Def->isPredicate()) {
    Collect(K.Def->PredBody, Collect);
  } else {
    for (const RecDef::Case &C : K.Def->Cases)
      if (C.Guard)
        Collect(C.Guard, Collect);
  }
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const auto &[Base, Field, V] : Binds) {
      if (B.count(V->name()) || !B.count(Base))
        continue;
      int64_t Raw = St.read(B.at(Base).I, Field);
      B[V->name()] =
          V->sort() == Sort::Loc ? Value::mkLoc(Raw) : Value::mkInt(Raw);
      Progress = true;
    }
  }
  return B;
}

Value Evaluator::evalDefBody(const Key &K) {
  std::set<int64_t> Dom = keyDomain(K);
  Locals.push_back(bindLocals(K));
  Value Result = Value::bottom(K.Def->Result);
  if (K.Def->isPredicate()) {
    Result = Value::mkBool(evalF(K.Def->PredBody, Dom));
  } else {
    for (const RecDef::Case &C : K.Def->Cases) {
      if (C.Guard && !evalF(C.Guard, Dom))
        continue;
      // The case value is evaluated on its own scope, which must lie within
      // the definition's heaplet (§5's t^{f-Delta} translation).
      ScopeInfo S = scopeOf(C.Value);
      if (!S.Undef &&
          std::includes(Dom.begin(), Dom.end(), S.Scope.begin(),
                        S.Scope.end())) {
        std::optional<Value> V =
            evalT(C.Value, Mode == EvalMode::Global ? Dom : S.Scope);
        if (V)
          Result = *V;
      }
      break;
    }
  }
  Locals.pop_back();
  return Result;
}

bool Evaluator::runToFixpoint() {
  // Stratified least-fixed-point computation. Predicates may consume
  // function values non-monotonically (e.g. {k} <= keys(n) shrinks as keys
  // grows), so the Kleene iteration is layered: function-valued entries are
  // stabilized first, then predicate entries are recomputed from bottom
  // with the function layer frozen. Predicate evaluation can register new
  // function entries (at new locations), in which case the layering
  // restarts. Definitions whose *functions* depend on predicates are
  // outside this fragment (and outside the specification library).
  size_t Cap = 2 * (St.R.size() + Table.size() + 16);

  auto iterateLayer = [&](bool Bools) {
    for (size_t Iter = 0; Iter != Cap; ++Iter) {
      bool Changed = false;
      std::vector<Key> Keys;
      Keys.reserve(Table.size());
      for (const auto &KV : Table)
        if ((KV.first.Def->Result == Sort::Bool) == Bools)
          Keys.push_back(KV.first);
      size_t Before = Table.size();
      for (const Key &K : Keys) {
        Value New = Value::join(Table[K], evalDefBody(K));
        if (!(New == Table[K])) {
          Table[K] = New;
          Changed = true;
        }
      }
      if (!Changed && Table.size() == Before)
        return true;
    }
    return false;
  };

  for (size_t Outer = 0; Outer != Cap; ++Outer) {
    size_t FuncKeysBefore = 0;
    for (const auto &KV : Table)
      FuncKeysBefore += KV.first.Def->Result != Sort::Bool;

    bool Ok = iterateLayer(/*Bools=*/false);
    // Reset predicates: earlier rounds may have set them with partial
    // function values.
    for (auto &KV : Table)
      if (KV.first.Def->Result == Sort::Bool)
        KV.second = Value::bottom(Sort::Bool);
    Ok &= iterateLayer(/*Bools=*/true);

    size_t FuncKeysAfter = 0;
    for (const auto &KV : Table)
      FuncKeysAfter += KV.first.Def->Result != Sort::Bool;
    if (Ok && FuncKeysAfter == FuncKeysBefore)
      return true;
    if (!Ok)
      break;
  }
  Converged = false;
  return false;
}

Value Evaluator::recValue(const RecDef *Def, const std::vector<int64_t> &Stops,
                          int64_t L) {
  Key K{Def, Stops, L};
  tableLookup(K);
  runToFixpoint();
  return Table[K];
}

bool Evaluator::holds(const Formula *F, const std::set<int64_t> &Dom) {
  if (InFixpoint)
    return evalF(F, Dom);
  InFixpoint = true;
  bool V = false;
  size_t Cap = 2 * (St.R.size() + 16);
  for (size_t I = 0; I != Cap; ++I) {
    auto Before = Table;
    V = evalF(F, Dom);
    runToFixpoint();
    if (Table == Before) {
      InFixpoint = false;
      return V;
    }
  }
  Converged = false;
  InFixpoint = false;
  return V;
}

bool Evaluator::holdsGlobal(const Formula *F) {
  assert(Mode == EvalMode::Global && "global evaluation needs Global mode");
  // In global mode the domain argument is irrelevant for classical nodes;
  // pass the state's R for any residual Dryad atoms in definition bodies.
  return holds(F, St.R);
}
