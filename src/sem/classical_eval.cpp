//===--- classical_eval.cpp - Convenience classical evaluation ------------===//

#include "sem/classical_eval.h"

using namespace dryad;

bool dryad::evalClassical(const ProgramState &St, const DefRegistry &Defs,
                          const Formula *F, const std::string &HeapletVar,
                          const std::set<int64_t> &Heaplet,
                          const std::map<std::string, Value> &Env) {
  Evaluator Eval(St, Defs, EvalMode::Global);
  Eval.Env = Env;
  Eval.Env[HeapletVar] = Value::mkSet(Sort::LocSet, Heaplet);
  return Eval.holdsGlobal(F);
}
