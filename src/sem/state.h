//===--- state.h - Concrete program states ----------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete program states (R, s, h) from Definition 4.1: a finite heaplet
/// domain R of non-nil locations, a store s mapping variables to values, and
/// a heaplet h defined on R x (PF u DF). Locations are positive integers;
/// fields of locations outside R read as 0/nil (used only by the classical
/// evaluator, which works over the global heap).
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SEM_STATE_H
#define DRYAD_SEM_STATE_H

#include "dryad/defs.h"
#include "sem/value.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dryad {

class ProgramState {
public:
  explicit ProgramState(const FieldTable &Fields) : Fields(&Fields) {}

  /// The heaplet domain R (non-nil locations).
  std::set<int64_t> R;
  /// Variable store; values have sorts Loc or Int (spec variables may hold
  /// sets).
  std::map<std::string, Value> Store;

  const FieldTable &fields() const { return *Fields; }

  /// Reads a field; locations outside the allocated map read as 0.
  int64_t read(int64_t Loc, const std::string &Field) const {
    auto It = Heap.find({Loc, Field});
    return It == Heap.end() ? 0 : It->second;
  }
  void write(int64_t Loc, const std::string &Field, int64_t V) {
    Heap[{Loc, Field}] = V;
  }

  /// Allocates a fresh location, adds it to R, and returns it.
  int64_t allocate() {
    int64_t L = NextLoc++;
    R.insert(L);
    return L;
  }
  /// Removes a location from R (its field image is kept; reads of freed
  /// locations are the caller's bug, as in the paper's memory-error-free
  /// executions).
  void deallocate(int64_t Loc) { R.erase(Loc); }

  /// Ensures future allocate() calls do not collide with \p Loc.
  void noteLocation(int64_t Loc) {
    if (Loc >= NextLoc)
      NextLoc = Loc + 1;
  }

  /// The reachset of §4.2: the least set L such that (1) Arg in L if Arg is
  /// neither nil nor a stop, and (2) for c in L with c in R, each non-nil
  /// non-stop pf-successor (pf in \p PtrFields) is in L. When \p Global is
  /// true, clause (2) ranges over all noted locations instead of R (used by
  /// the classical evaluator's global reach sets).
  std::set<int64_t> reachset(int64_t Arg,
                             const std::vector<std::string> &PtrFields,
                             const std::set<int64_t> &Stops,
                             bool Global = false) const;

  std::string str() const;

private:
  const FieldTable *Fields;
  std::map<std::pair<int64_t, std::string>, int64_t> Heap;
  int64_t NextLoc = 1;
};

} // namespace dryad

#endif // DRYAD_SEM_STATE_H
