//===--- value.cpp - Lattice values for Dryad semantics -------------------===//

#include "sem/value.h"

#include <cassert>

using namespace dryad;

Value Value::bottom(Sort S) {
  switch (S) {
  case Sort::Bool:
    return mkBool(false);
  case Sort::Int:
    return mkInf(/*Positive=*/false);
  case Sort::Loc:
    return mkLoc(0);
  case Sort::LocSet:
  case Sort::IntSet:
    return mkSet(S);
  case Sort::IntMSet:
    return mkMSet();
  }
  return mkInt(0);
}

bool Value::operator==(const Value &O) const {
  if (S != O.S)
    return false;
  switch (S) {
  case Sort::Bool:
    return B == O.B;
  case Sort::Int:
    return IK == O.IK && (IK != Fin || I == O.I);
  case Sort::Loc:
    return I == O.I;
  case Sort::LocSet:
  case Sort::IntSet:
    return Set == O.Set;
  case Sort::IntMSet:
    return MSTop == O.MSTop && (MSTop || MSet == O.MSet);
  }
  return false;
}

Value Value::join(const Value &A, const Value &B) {
  assert(A.S == B.S && "joining values of different sorts");
  switch (A.S) {
  case Sort::Bool:
    return mkBool(A.B || B.B);
  case Sort::Int:
    return intLe(A, B) ? B : A;
  case Sort::Loc:
    // Locations are not a lattice; join is only used for lattice sorts.
    return A;
  case Sort::LocSet:
  case Sort::IntSet:
    return setUnion(A, B);
  case Sort::IntMSet: {
    if (A.MSTop || B.MSTop) {
      Value R = mkMSet();
      R.MSTop = true;
      return R;
    }
    // Multiset join under inclusion: pointwise max.
    Value R = A;
    for (const auto &[K, N] : B.MSet) {
      int64_t &Slot = R.MSet[K];
      if (N > Slot)
        Slot = N;
    }
    return R;
  }
  }
  return A;
}

std::string Value::str() const {
  switch (S) {
  case Sort::Bool:
    return B ? "true" : "false";
  case Sort::Int:
    if (IK == NegInf)
      return "-inf";
    if (IK == PosInf)
      return "inf";
    return std::to_string(I);
  case Sort::Loc:
    return I == 0 ? "nil" : ("l" + std::to_string(I));
  case Sort::LocSet:
  case Sort::IntSet: {
    std::string Out = "{";
    bool First = true;
    for (int64_t E : Set) {
      if (!First)
        Out += ", ";
      First = false;
      Out += std::to_string(E);
    }
    return Out + "}";
  }
  case Sort::IntMSet: {
    if (MSTop)
      return "m-top";
    std::string Out = "m{";
    bool First = true;
    for (const auto &[K, N] : MSet)
      for (int64_t I = 0; I < N; ++I) {
        if (!First)
          Out += ", ";
        First = false;
        Out += std::to_string(K);
      }
    return Out + "}";
  }
  }
  return "<?>";
}

Value dryad::intAdd(const Value &A, const Value &B) {
  assert(A.S == Sort::Int && B.S == Sort::Int);
  if (A.IK != Value::Fin)
    return A;
  if (B.IK != Value::Fin)
    return B;
  return Value::mkInt(A.I + B.I);
}

Value dryad::intSub(const Value &A, const Value &B) {
  assert(A.S == Sort::Int && B.S == Sort::Int);
  if (A.IK != Value::Fin)
    return A;
  if (B.IK == Value::PosInf)
    return Value::mkInf(false);
  if (B.IK == Value::NegInf)
    return Value::mkInf(true);
  return Value::mkInt(A.I - B.I);
}

bool dryad::intLe(const Value &A, const Value &B) {
  if (A.IK == Value::NegInf || B.IK == Value::PosInf)
    return true;
  if (A.IK == Value::PosInf)
    return B.IK == Value::PosInf;
  if (B.IK == Value::NegInf)
    return false;
  return A.I <= B.I;
}

bool dryad::intLt(const Value &A, const Value &B) {
  return intLe(A, B) && !(A == B);
}

Value dryad::setUnion(const Value &A, const Value &B) {
  assert(A.S == B.S);
  if (A.S == Sort::IntMSet) {
    if (A.MSTop || B.MSTop) {
      Value R = Value::mkMSet();
      R.MSTop = true;
      return R;
    }
    Value R = A;
    for (const auto &[K, N] : B.MSet)
      R.MSet[K] += N; // multiset union adds multiplicities
    return R;
  }
  Value R = A;
  R.Set.insert(B.Set.begin(), B.Set.end());
  return R;
}

Value dryad::setInter(const Value &A, const Value &B) {
  assert(A.S == B.S);
  if (A.S == Sort::IntMSet) {
    if (A.MSTop)
      return B;
    if (B.MSTop)
      return A;
    Value R = Value::mkMSet();
    for (const auto &[K, N] : A.MSet) {
      auto It = B.MSet.find(K);
      if (It != B.MSet.end())
        R.MSet[K] = std::min(N, It->second);
    }
    return R;
  }
  Value R = Value::mkSet(A.S);
  for (int64_t E : A.Set)
    if (B.Set.count(E))
      R.Set.insert(E);
  return R;
}

Value dryad::setDiff(const Value &A, const Value &B) {
  assert(A.S == B.S);
  if (A.S == Sort::IntMSet) {
    if (A.MSTop || B.MSTop)
      return Value::mkMSet();
    Value R = Value::mkMSet();
    for (const auto &[K, N] : A.MSet) {
      auto It = B.MSet.find(K);
      int64_t Rem = N - (It == B.MSet.end() ? 0 : It->second);
      if (Rem > 0)
        R.MSet[K] = Rem;
    }
    return R;
  }
  Value R = Value::mkSet(A.S);
  for (int64_t E : A.Set)
    if (!B.Set.count(E))
      R.Set.insert(E);
  return R;
}

bool dryad::setSubset(const Value &A, const Value &B) {
  if (A.S == Sort::IntMSet) {
    if (B.MSTop)
      return true;
    if (A.MSTop)
      return false;
    for (const auto &[K, N] : A.MSet) {
      auto It = B.MSet.find(K);
      if (It == B.MSet.end() || It->second < N)
        return false;
    }
    return true;
  }
  for (int64_t E : A.Set)
    if (!B.Set.count(E))
      return false;
  return true;
}

bool dryad::setMember(const Value &Elem, const Value &SetV) {
  if (!Elem.isFiniteInt() && Elem.S != Sort::Loc)
    return false;
  if (SetV.S == Sort::IntMSet) {
    if (SetV.MSTop)
      return true;
    auto It = SetV.MSet.find(Elem.I);
    return It != SetV.MSet.end() && It->second > 0;
  }
  return SetV.Set.count(Elem.I) > 0;
}

static bool forAllPairs(const Value &A, const Value &B,
                        bool (*Pred)(int64_t, int64_t)) {
  auto EachA = [&](auto &&Fn) {
    if (A.S == Sort::IntMSet) {
      for (const auto &[K, N] : A.MSet)
        if (N > 0 && !Fn(K))
          return false;
      return true;
    }
    for (int64_t E : A.Set)
      if (!Fn(E))
        return false;
    return true;
  };
  return EachA([&](int64_t X) {
    if (B.S == Sort::IntMSet) {
      for (const auto &[K, N] : B.MSet)
        if (N > 0 && !Pred(X, K))
          return false;
      return true;
    }
    for (int64_t E : B.Set)
      if (!Pred(X, E))
        return false;
    return true;
  });
}

bool dryad::setAllLe(const Value &A, const Value &B) {
  if ((A.S == Sort::IntMSet && A.MSTop) || (B.S == Sort::IntMSet && B.MSTop))
    return false;
  return forAllPairs(A, B, [](int64_t X, int64_t Y) { return X <= Y; });
}

bool dryad::setAllLt(const Value &A, const Value &B) {
  if ((A.S == Sort::IntMSet && A.MSTop) || (B.S == Sort::IntMSet && B.MSTop))
    return false;
  return forAllPairs(A, B, [](int64_t X, int64_t Y) { return X < Y; });
}
