//===--- eval.h - Dryad and classical evaluation ----------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable semantics of Dryad (paper §4.2). The evaluator interprets a
/// formula over a concrete program state and a heaplet domain. Recursive
/// definitions are evaluated by Kleene iteration from lattice bottoms; the
/// heaplet of every spatial sub-formula is determined via the (semantic
/// counterpart of the) scope function of §5, mirroring the translation's
/// case analysis so that Theorem 5.1 can be property-tested.
///
/// Two modes:
///  * Heaplet: Dryad semantics; reach sets expand within the state's R and
///    sub-formulas are checked against their determined heaplets.
///  * Global: classical semantics over the global heap (used to evaluate
///    translated formulas); FieldRead/Reach nodes are interpreted directly
///    and recursive definitions carry no heaplet side conditions.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SEM_EVAL_H
#define DRYAD_SEM_EVAL_H

#include "dryad/ast.h"
#include "dryad/defs.h"
#include "sem/state.h"
#include "sem/value.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dryad {

enum class EvalMode { Heaplet, Global };

class Evaluator {
public:
  Evaluator(const ProgramState &St, const DefRegistry &Defs, EvalMode Mode);

  /// Extra variable bindings consulted before the state's store (used for
  /// spec variables and the heaplet set variable G of translated formulas).
  std::map<std::string, Value> Env;

  /// Evaluates a Dryad formula on the heaplet domain \p Dom.
  bool holds(const Formula *F, const std::set<int64_t> &Dom);

  /// Evaluates a formula over the state's full heaplet domain.
  bool holds(const Formula *F) { return holds(F, St.R); }

  /// Evaluates a classical (translated) formula over the global heap.
  bool holdsGlobal(const Formula *F);

  /// Evaluates a term on heaplet \p Dom; nullopt encodes `undef`.
  std::optional<Value> termValue(const Term *T, const std::set<int64_t> &Dom);

  /// The lfp value of a recursive definition at a location (with the
  /// heaplet/global reach semantics of the evaluator's mode).
  Value recValue(const RecDef *Def, const std::vector<int64_t> &Stops,
                 int64_t L);

  /// The reach set of a definition instance at a location.
  std::set<int64_t> reachOf(const RecDef *Def,
                            const std::vector<int64_t> &Stops, int64_t L);

  /// True if the last lfp computation converged within the iteration bound
  /// (it always does on acyclic structures and on the cyclic structures
  /// expressible with stop parameters).
  bool converged() const { return Converged; }

private:
  struct Key {
    const RecDef *Def;
    std::vector<int64_t> Stops;
    int64_t L;
    bool operator<(const Key &O) const {
      if (Def != O.Def)
        return Def < O.Def;
      if (L != O.L)
        return L < O.L;
      return Stops < O.Stops;
    }
    bool operator==(const Key &O) const {
      return Def == O.Def && L == O.L && Stops == O.Stops;
    }
  };

  struct ScopeInfo {
    bool Exact = false;
    std::set<int64_t> Scope;
    bool Undef = false; ///< scope could not be determined (e.g. undef term)
  };

  // Formula / term evaluation on a domain.
  bool evalF(const Formula *F, const std::set<int64_t> &Dom);
  bool evalSep(const std::vector<const Formula *> &Ops, size_t From,
               const std::set<int64_t> &Dom);
  std::optional<Value> evalT(const Term *T, const std::set<int64_t> &Dom);
  std::optional<Value> evalBinOperands(const Term *L, const Term *R,
                                       const std::set<int64_t> &Dom,
                                       std::optional<Value> &RV);

  // The scope function of Fig. 3, evaluated semantically.
  ScopeInfo scopeOf(const Term *T);
  ScopeInfo scopeOf(const Formula *F);
  bool isPure(const Term *T);

  // Recursive definition machinery.
  Value tableLookup(const Key &K);
  Value evalDefBody(const Key &K);
  std::set<int64_t> keyDomain(const Key &K);
  std::map<std::string, Value> bindLocals(const Key &K);
  bool runToFixpoint();

  std::optional<Value> lookupVar(const std::string &Name);

  const ProgramState &St;
  const DefRegistry &Defs;
  EvalMode Mode;

  std::map<Key, Value> Table;
  bool Converged = true;
  /// Stack of local bindings for definition-body evaluation.
  std::vector<std::map<std::string, Value>> Locals;
  /// Guard so the public entry points run the fixpoint loop exactly once.
  bool InFixpoint = false;
};

} // namespace dryad

#endif // DRYAD_SEM_EVAL_H
