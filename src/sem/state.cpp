//===--- state.cpp - Concrete program states ------------------------------===//

#include "sem/state.h"

using namespace dryad;

std::set<int64_t>
ProgramState::reachset(int64_t Arg, const std::vector<std::string> &PtrFields,
                       const std::set<int64_t> &Stops, bool Global) const {
  std::set<int64_t> L;
  if (Arg == 0 || Stops.count(Arg))
    return L;
  std::vector<int64_t> Work = {Arg};
  L.insert(Arg);
  while (!Work.empty()) {
    int64_t C = Work.back();
    Work.pop_back();
    // Expansion happens only from locations the heaplet defines (c in R); in
    // global mode, from any location with a recorded field.
    if (!Global && !R.count(C))
      continue;
    for (const std::string &PF : PtrFields) {
      int64_t N = read(C, PF);
      if (N == 0 || Stops.count(N) || L.count(N))
        continue;
      L.insert(N);
      Work.push_back(N);
    }
  }
  return L;
}

std::string ProgramState::str() const {
  std::string Out = "R = {";
  bool First = true;
  for (int64_t L : R) {
    if (!First)
      Out += ", ";
    First = false;
    Out += std::to_string(L);
  }
  Out += "}\n";
  for (const auto &[Name, V] : Store)
    Out += Name + " = " + V.str() + "\n";
  for (const auto &[Key, V] : Heap) {
    if (!R.count(Key.first))
      continue;
    Out += std::to_string(Key.first) + "." + Key.second + " = " +
           std::to_string(V) + "\n";
  }
  return Out;
}
