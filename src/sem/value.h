//===--- value.h - Lattice values for Dryad semantics -----------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete values for the Dryad evaluator (paper §4.2). Recursive
/// definitions take values in complete lattices: Bool (false ⊑ true), IntL
/// (integers with ±∞ ordered by ≤), S(Loc)/S(Int) (by inclusion), and
/// MS(Int)L (multisets with an added top). Least fixed points are computed
/// by Kleene iteration from the bottom elements.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SEM_VALUE_H
#define DRYAD_SEM_VALUE_H

#include "dryad/sorts.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace dryad {

/// A concrete value of any Dryad sort. Locations are integers (nil = 0).
struct Value {
  enum IntKind : uint8_t { Fin, NegInf, PosInf };

  Sort S = Sort::Int;
  bool B = false;                     ///< Bool
  IntKind IK = Fin;                   ///< IntL tag
  int64_t I = 0;                      ///< IntL payload (when IK == Fin)
  std::set<int64_t> Set;              ///< LocSet / IntSet
  std::map<int64_t, int64_t> MSet;    ///< IntMSet element -> multiplicity
  bool MSTop = false;                 ///< IntMSet top element

  static Value mkBool(bool V) {
    Value R;
    R.S = Sort::Bool;
    R.B = V;
    return R;
  }
  static Value mkInt(int64_t V) {
    Value R;
    R.S = Sort::Int;
    R.I = V;
    return R;
  }
  static Value mkInf(bool Positive) {
    Value R;
    R.S = Sort::Int;
    R.IK = Positive ? PosInf : NegInf;
    return R;
  }
  static Value mkLoc(int64_t V) {
    Value R;
    R.S = Sort::Loc;
    R.I = V;
    return R;
  }
  static Value mkSet(Sort S, std::set<int64_t> Elems = {}) {
    Value R;
    R.S = S;
    R.Set = std::move(Elems);
    return R;
  }
  static Value mkMSet(std::map<int64_t, int64_t> Elems = {}) {
    Value R;
    R.S = Sort::IntMSet;
    R.MSet = std::move(Elems);
    return R;
  }

  /// The bottom element of the lattice for a sort (used to seed lfp
  /// iteration).
  static Value bottom(Sort S);

  bool isFiniteInt() const { return S == Sort::Int && IK == Fin; }

  bool operator==(const Value &O) const;
  bool operator!=(const Value &O) const { return !(*this == O); }

  /// Lattice join (least upper bound); both values must share the sort.
  static Value join(const Value &A, const Value &B);

  std::string str() const;
};

/// Integer lattice arithmetic with saturating infinities.
Value intAdd(const Value &A, const Value &B);
Value intSub(const Value &A, const Value &B);

/// Scalar comparison on IntL (-inf < any finite < +inf).
bool intLe(const Value &A, const Value &B);
bool intLt(const Value &A, const Value &B);

/// Set/multiset operations; operands must share the sort.
Value setUnion(const Value &A, const Value &B);
Value setInter(const Value &A, const Value &B);
Value setDiff(const Value &A, const Value &B);
bool setSubset(const Value &A, const Value &B);
bool setMember(const Value &Elem, const Value &SetV);

/// The paper's set inequalities: every element of A is <= / < every element
/// of B (vacuously true when either side is empty).
bool setAllLe(const Value &A, const Value &B);
bool setAllLt(const Value &A, const Value &B);

} // namespace dryad

#endif // DRYAD_SEM_VALUE_H
