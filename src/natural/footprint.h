//===--- footprint.h - Footprint and definition instances -------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The footprint of a basic path is the set of location variables the proof
/// instantiates unfoldings and frame assertions over (§6.2). We use every
/// SSA location variable plus nil — a sound superset of the paper's
/// dereferenced variables that needs no separate dereference analysis.
///
/// A definition *instance* is a recursive definition together with the
/// actual stop-location terms it is applied to (e.g. lseg with stop `v!0`);
/// each instance gets its own uninterpreted function per boundary timestamp
/// after formula abstraction.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_NATURAL_FOOTPRINT_H
#define DRYAD_NATURAL_FOOTPRINT_H

#include "dryad/ast.h"
#include "dryad/defs.h"

#include <map>
#include <string>
#include <vector>

namespace dryad {

struct RecInstance {
  const RecDef *Def = nullptr;
  std::vector<const Term *> Stops;
};

/// Canonical key for an instance (definition name + printed stop terms).
std::string instanceKey(const RecInstance &I);

/// Collects every recursive-definition instance (from RecPred, RecFunc, and
/// Reach nodes) appearing in a formula.
void collectInstances(const Formula *F,
                      std::map<std::string, RecInstance> &Out);
void collectInstances(const Term *T,
                      std::map<std::string, RecInstance> &Out);

} // namespace dryad

#endif // DRYAD_NATURAL_FOOTPRINT_H
