//===--- axioms.cpp - User-axiom instantiation ------------------------------===//

#include "natural/axioms.h"
#include "natural/footprint.h"

#include <set>
#include "translate/scope.h"
#include "translate/translate.h"

#include <functional>

using namespace dryad;

/// Enumerates all |Terms|^N tuples; calls Fn with each assignment.
static void forTuples(const std::vector<const Term *> &Terms, size_t N,
                      std::vector<const Term *> &Acc,
                      const std::function<void()> &Fn) {
  if (Acc.size() == N) {
    Fn();
    return;
  }
  for (const Term *T : Terms) {
    Acc.push_back(T);
    forTuples(Terms, N, Acc, Fn);
    Acc.pop_back();
  }
}

std::vector<const Formula *> dryad::axiomAssertions(Module &M,
                                                    const VCond &VC) {
  AstContext &Ctx = M.Ctx;
  std::vector<const Formula *> Out;

  // Definitions the VC actually mentions: axioms about other definitions
  // cannot help this proof and only blow up the query.
  std::map<std::string, RecInstance> VCInstances;
  for (const Formula *F : VC.Assumptions)
    collectInstances(F, VCInstances);
  if (VC.Goal)
    collectInstances(VC.Goal, VCInstances);
  for (const CallCheck &C : VC.CallChecks)
    collectInstances(C.Goal, VCInstances);
  std::set<const RecDef *> VCDefs;
  for (const auto &[Key, I] : VCInstances) {
    (void)Key;
    VCDefs.insert(I.Def);
  }

  // Instantiate over plain location variables (plus nil), not over derived
  // frontier terms: the footprint discipline of §6.3.
  std::vector<const Term *> Vars;
  for (const Term *T : VC.LocTerms)
    if (T->kind() == Term::TK_Var || T->kind() == Term::TK_Nil)
      Vars.push_back(T);

  for (const Axiom &Ax : M.Axioms) {
    // Only location parameters are instantiated over the footprint.
    bool AllLoc = true;
    for (const auto &[Name, S] : Ax.Params)
      AllLoc &= (S == Sort::Loc);
    if (!AllLoc || Ax.Params.size() > 3)
      continue;

    // Relevance: every definition on the axiom's left-hand side must occur
    // in the VC.
    std::map<std::string, RecInstance> LhsInstances;
    collectInstances(Ax.Lhs, LhsInstances);
    bool Relevant = true;
    for (const auto &[Key, I] : LhsInstances) {
      (void)Key;
      Relevant &= VCDefs.count(I.Def) > 0;
    }
    if (!Relevant)
      continue;

    std::vector<const Term *> Acc;
    forTuples(Vars, Ax.Params.size(), Acc, [&] {
      Subst Sigma;
      for (size_t I = 0; I != Ax.Params.size(); ++I)
        Sigma[Ax.Params[I].first] = Acc[I];
      const Formula *Lhs = substitute(Ctx, Ax.Lhs, Sigma);
      const Formula *Rhs = substitute(Ctx, Ax.Rhs, Sigma);

      // Both sides are evaluated on the heaplet the left-hand side
      // determines.
      std::vector<const Formula *> Disjuncts = liftDisjunction(Ctx, Lhs);
      SynScope S = scopeOfFormula(Ctx, Disjuncts.front());
      const Formula *LhsT = translateDryad(Ctx, M.Fields, Lhs, S.Scope);
      const Formula *RhsT = translateDryad(Ctx, M.Fields, Rhs, S.Scope);
      const Formula *Impl = Ctx.disj({Ctx.neg(LhsT), RhsT});

      for (const Boundary &B : VC.Boundaries) {
        StampMap SM;
        SM.FieldVersions = B.FieldVersions;
        SM.Time = B.Time;
        Out.push_back(stamp(Ctx, Impl, SM));
      }
    });
  }
  return Out;
}
