//===--- footprint.cpp - Footprint and definition instances ----------------===//

#include "natural/footprint.h"
#include "dryad/printer.h"

using namespace dryad;

std::string dryad::instanceKey(const RecInstance &I) {
  std::string Key = I.Def->Name;
  for (const Term *St : I.Stops) {
    Key += '|';
    Key += print(St);
  }
  return Key;
}

static void addInstance(const RecDef *Def,
                        const std::vector<const Term *> &Stops,
                        std::map<std::string, RecInstance> &Out) {
  RecInstance I{Def, Stops};
  Out.emplace(instanceKey(I), std::move(I));
}

void dryad::collectInstances(const Term *T,
                             std::map<std::string, RecInstance> &Out) {
  switch (T->kind()) {
  case Term::TK_IntBin:
    collectInstances(cast<IntBinTerm>(T)->lhs(), Out);
    collectInstances(cast<IntBinTerm>(T)->rhs(), Out);
    return;
  case Term::TK_Singleton:
    collectInstances(cast<SingletonTerm>(T)->element(), Out);
    return;
  case Term::TK_SetBin:
    collectInstances(cast<SetBinTerm>(T)->lhs(), Out);
    collectInstances(cast<SetBinTerm>(T)->rhs(), Out);
    return;
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    addInstance(X->def(), X->stopArgs(), Out);
    collectInstances(X->arg(), Out);
    for (const Term *St : X->stopArgs())
      collectInstances(St, Out);
    return;
  }
  case Term::TK_FieldRead:
    collectInstances(cast<FieldReadTerm>(T)->arg(), Out);
    return;
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(T);
    addInstance(X->def(), X->stopArgs(), Out);
    collectInstances(X->arg(), Out);
    for (const Term *St : X->stopArgs())
      collectInstances(St, Out);
    return;
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    collectInstances(X->cond(), Out);
    collectInstances(X->thenTerm(), Out);
    collectInstances(X->elseTerm(), Out);
    return;
  }
  default:
    return;
  }
}

void dryad::collectInstances(const Formula *F,
                             std::map<std::string, RecInstance> &Out) {
  switch (F->kind()) {
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    collectInstances(X->base(), Out);
    for (const auto &FB : X->fields())
      collectInstances(FB.Value, Out);
    return;
  }
  case Formula::FK_Cmp:
    collectInstances(cast<CmpFormula>(F)->lhs(), Out);
    collectInstances(cast<CmpFormula>(F)->rhs(), Out);
    return;
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    addInstance(X->def(), X->stopArgs(), Out);
    collectInstances(X->arg(), Out);
    for (const Term *St : X->stopArgs())
      collectInstances(St, Out);
    return;
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep:
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      collectInstances(Op, Out);
    return;
  case Formula::FK_Not:
    collectInstances(cast<NotFormula>(F)->operand(), Out);
    return;
  case Formula::FK_FieldUpdate:
    collectInstances(cast<FieldUpdateFormula>(F)->base(), Out);
    collectInstances(cast<FieldUpdateFormula>(F)->value(), Out);
    return;
  default:
    return;
  }
}
