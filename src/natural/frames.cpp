//===--- frames.cpp - Frame instantiation (UnfoldAndFrame) ------------------===//

#include "natural/frames.h"

using namespace dryad;

namespace {
/// rec@T1(U) == rec@T2(U) (an iff for predicates) together with the
/// corresponding reach-set preservation.
const Formula *recPreserved(AstContext &Ctx, const RecInstance &I,
                            const Term *U, int T1, int T2) {
  std::vector<const Formula *> Conj;
  if (I.Def->isPredicate()) {
    const Formula *A = Ctx.recPred(I.Def, U, I.Stops, T1);
    const Formula *B = Ctx.recPred(I.Def, U, I.Stops, T2);
    Conj.push_back(Ctx.disj({Ctx.conj2(A, B),
                             Ctx.conj2(Ctx.neg(A), Ctx.neg(B))}));
  } else {
    Conj.push_back(Ctx.eq(Ctx.recFunc(I.Def, U, I.Stops, T1),
                          Ctx.recFunc(I.Def, U, I.Stops, T2)));
  }
  Conj.push_back(Ctx.eq(Ctx.reach(I.Def, U, I.Stops, T1),
                        Ctx.reach(I.Def, U, I.Stops, T2)));
  return Ctx.conj(std::move(Conj));
}

const Formula *implies(AstContext &Ctx, const Formula *P, const Formula *Q) {
  return Ctx.disj({Ctx.neg(P), Q});
}
} // namespace

std::vector<const Formula *>
dryad::frameAssertions(Module &M, const VCond &VC,
                       const std::vector<RecInstance> &Instances) {
  AstContext &Ctx = M.Ctx;
  std::vector<const Formula *> Out;

  for (const Segment &Seg : VC.Segments) {
    const Boundary &From = VC.Boundaries[Seg.FromBoundary];
    const Boundary &To = VC.Boundaries[Seg.ToBoundary];

    // The region this segment may have modified.
    const Term *Modified = nullptr;
    if (Seg.IsCall) {
      Modified = Seg.CalleeHeaplet;
    } else {
      Modified = Ctx.emptySet(Sort::LocSet);
      for (const Term *W : Seg.WrittenLocs)
        Modified = Ctx.setUnion(Modified, Ctx.singleton(W, Sort::LocSet));
    }

    for (const RecInstance &I : Instances) {
      for (const Term *U : VC.termsAt(From.Time)) {
        const Term *ReachAtFrom = Ctx.reach(I.Def, U, I.Stops, From.Time);
        const Formula *Disjoint =
            Ctx.eq(Ctx.setBin(SetBinTerm::Inter, ReachAtFrom, Modified),
                   Ctx.emptySet(Sort::LocSet));
        const Formula *Preserved =
            recPreserved(Ctx, I, U, From.Time, To.Time);
        if (Seg.WrittenLocs.empty() && !Seg.IsCall)
          Out.push_back(Preserved); // nothing written: unconditional
        else
          Out.push_back(implies(Ctx, Disjoint, Preserved));
      }
    }

    // FieldUnchanged across calls: fields of locations outside the callee
    // heaplet are untouched. (Straight segments need no analogue: their
    // field arrays evolve by explicit store chains.)
    if (Seg.IsCall) {
      for (const Term *U : VC.termsAt(From.Time)) {
        std::vector<const Formula *> FieldsEq;
        for (const std::string &F : M.Fields.allFields()) {
          Sort S = M.Fields.fieldSort(F);
          FieldsEq.push_back(
              Ctx.eq(Ctx.fieldRead(F, U, S, From.FieldVersions.at(F)),
                     Ctx.fieldRead(F, U, S, To.FieldVersions.at(F))));
        }
        const Formula *Outside =
            Ctx.cmp(CmpFormula::NotIn, U, Seg.CalleeHeaplet);
        Out.push_back(implies(Ctx, Outside, Ctx.conj(std::move(FieldsEq))));
      }
    }
  }
  return Out;
}
