//===--- axioms.h - User-axiom instantiation --------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-provided axioms (§6.3) relate partial structures to complete ones
/// (e.g. `lseg(x, y) * list(y) => list(x)`). Following the natural-proof
/// philosophy they are instantiated over the footprint locations at every
/// boundary timestamp, yielding quantifier-free assertions.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_NATURAL_AXIOMS_H
#define DRYAD_NATURAL_AXIOMS_H

#include "lang/ast.h"
#include "vcgen/vc.h"

namespace dryad {

std::vector<const Formula *> axiomAssertions(Module &M, const VCond &VC);

} // namespace dryad

#endif // DRYAD_NATURAL_AXIOMS_H
