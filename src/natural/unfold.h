//===--- unfold.h - Unfolding across the footprint --------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first natural-proof tactic (§6.2): every recursive definition
/// instance is unfolded exactly one step at every footprint location and
/// every boundary timestamp, relating its value to the (otherwise
/// uninterpreted) values on the frontier.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_NATURAL_UNFOLD_H
#define DRYAD_NATURAL_UNFOLD_H

#include "lang/ast.h"
#include "natural/footprint.h"
#include "vcgen/vc.h"

namespace dryad {

/// Unfolding assertions for all instances x boundaries x footprint terms.
std::vector<const Formula *>
unfoldAssertions(Module &M, const VCond &VC,
                 const std::vector<RecInstance> &Instances);

} // namespace dryad

#endif // DRYAD_NATURAL_UNFOLD_H
