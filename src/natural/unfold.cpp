//===--- unfold.cpp - Unfolding across the footprint ------------------------===//

#include "natural/unfold.h"
#include "translate/delta_elim.h"

using namespace dryad;

std::vector<const Formula *>
dryad::unfoldAssertions(Module &M, const VCond &VC,
                        const std::vector<RecInstance> &Instances) {
  DefUnfolder Unfolder(M.Ctx, M.Fields);
  std::vector<const Formula *> Out;
  for (const Boundary &B : VC.Boundaries) {
    StampMap SM;
    SM.FieldVersions = B.FieldVersions;
    SM.Time = B.Time;
    for (const RecInstance &I : Instances) {
      for (const Term *U : VC.termsAt(B.Time)) {
        const Formula *Def = Unfolder.unfoldDef(I.Def, U, I.Stops);
        const Formula *Reach = Unfolder.unfoldReach(I.Def, U, I.Stops);
        Out.push_back(stamp(M.Ctx, Def, SM));
        Out.push_back(stamp(M.Ctx, Reach, SM));
      }
    }
  }
  return Out;
}
