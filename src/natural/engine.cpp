//===--- engine.cpp - Natural proof assembly --------------------------------===//

#include "natural/engine.h"
#include "dryad/printer.h"
#include "natural/axioms.h"
#include "natural/frames.h"
#include "natural/unfold.h"

#include <set>

using namespace dryad;

/// Appends \p In to \p Out, dropping assertions already present (e.g. the
/// reach unfolding is shared by every definition over the same pointer
/// fields and stop arguments).
static void appendUnique(std::vector<const Formula *> &Out,
                         const std::vector<const Formula *> &In,
                         std::set<std::string> &Seen) {
  for (const Formula *F : In)
    if (Seen.insert(print(F)).second)
      Out.push_back(F);
}

/// Extends the footprint with the one-step pointer successors of its
/// variables at every boundary: unfolding bst(x) speaks about
/// bst(left(x)), and frames must cover such frontier terms even when the
/// program never loads them (e.g. the untouched sibling subtree across a
/// recursive call).
static std::map<int, std::vector<const Term *>>
extendWithFrontier(Module &M, const VCond &VC,
                   const std::map<std::string, RecInstance> &Instances) {
  std::set<std::string> Fields;
  for (const auto &[Key, I] : Instances) {
    (void)Key;
    for (const std::string &PF : I.Def->PtrFields)
      Fields.insert(PF);
  }
  std::map<int, std::vector<const Term *>> Out;
  for (const Boundary &B : VC.Boundaries) {
    std::vector<const Term *> Terms = VC.LocTerms;
    std::set<std::string> Seen;
    for (const Term *T : Terms)
      Seen.insert(print(T));
    for (const Term *U : VC.LocTerms) {
      if (U->kind() != Term::TK_Var)
        continue;
      for (const std::string &PF : Fields) {
        const Term *Succ =
            M.Ctx.fieldRead(PF, U, Sort::Loc, B.FieldVersions.at(PF));
        if (Seen.insert(print(Succ)).second)
          Terms.push_back(Succ);
      }
    }
    Out[B.Time] = std::move(Terms);
  }
  return Out;
}

NaturalProof dryad::buildNaturalProof(Module &M, const VCond &VC,
                                      const NaturalOptions &Opts) {
  NaturalProof NP;

  // Axioms may mention definitions the contracts do not (e.g. lseg); they
  // are generated first so instance collection sees them.
  std::vector<const Formula *> AxiomFs;
  if (Opts.Axioms)
    AxiomFs = axiomAssertions(M, VC);

  std::map<std::string, RecInstance> Instances;
  for (const Formula *F : VC.Assumptions)
    collectInstances(F, Instances);
  if (VC.Goal)
    collectInstances(VC.Goal, Instances);
  for (const CallCheck &C : VC.CallChecks)
    collectInstances(C.Goal, Instances);
  for (const Formula *F : AxiomFs)
    collectInstances(F, Instances);

  // Unfolding can surface new instances when a definition shifts its stop
  // arguments across the recursion (e.g. the doubly-linked-list prev
  // anchor); close the instance set under one-step unfolding, bounded to
  // keep the query size under control.
  std::set<std::string> Seen;
  std::set<std::string> Processed;
  constexpr size_t MaxInstances = 48;
  bool Grew = true;
  while (Grew && Instances.size() <= MaxInstances) {
    Grew = false;
    std::vector<RecInstance> Fresh;
    for (auto &[Key, I] : Instances) {
      if (!Processed.insert(Key).second)
        continue;
      Fresh.push_back(I);
      NP.Instances.push_back(I);
    }
    if (Fresh.empty())
      break;
    if (Opts.Unfold) {
      VCond Extended = VC; // copy; only the instantiation terms differ
      Extended.BoundaryTerms = extendWithFrontier(M, VC, Instances);
      std::vector<const Formula *> Unfolds =
          unfoldAssertions(M, Extended, Fresh);
      for (const Formula *F : Unfolds)
        collectInstances(F, Instances);
      appendUnique(NP.Assertions, Unfolds, Seen);
      Grew = true;
    }
  }
  if (Opts.Frames) {
    VCond Extended = VC;
    Extended.BoundaryTerms = extendWithFrontier(M, VC, Instances);
    appendUnique(NP.Assertions, frameAssertions(M, Extended, NP.Instances),
                 Seen);
  }
  appendUnique(NP.Assertions, AxiomFs, Seen);
  return NP;
}

NaturalOptions dryad::degradeTactics(NaturalOptions O, unsigned Level) {
  while (Level--) {
    if (O.Axioms)
      O.Axioms = false;
    else if (O.Frames)
      O.Frames = false;
    else
      break;
  }
  return O;
}

unsigned dryad::maxDegradeLevels(const NaturalOptions &O) {
  return (O.Axioms ? 1u : 0u) + (O.Frames ? 1u : 0u);
}
