//===--- frames.h - Frame instantiation (UnfoldAndFrame) --------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing half of §6.2's UnfoldAndFrame, reconstructed from the main
/// text (the paper's Appendix C): across a straight segment a definition
/// instance is unchanged at any location whose reach set is disjoint from
/// the written locations (RecUnchanged); across a procedure call it is
/// unchanged when disjoint from the callee's heaplet, and individual fields
/// are unchanged at locations outside that heaplet (FieldUnchanged).
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_NATURAL_FRAMES_H
#define DRYAD_NATURAL_FRAMES_H

#include "lang/ast.h"
#include "natural/footprint.h"
#include "vcgen/vc.h"

namespace dryad {

std::vector<const Formula *>
frameAssertions(Module &M, const VCond &VC,
                const std::vector<RecInstance> &Instances);

} // namespace dryad

#endif // DRYAD_NATURAL_FRAMES_H
