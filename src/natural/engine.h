//===--- engine.h - Natural proof assembly ----------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the natural-proof strengthening ψ'VC = ψVC ∧ UnfoldAndFrame
/// (§6.2) plus user-axiom instantiations (§6.3). Formula abstraction —
/// treating recursive definitions and reach sets as uninterpreted — happens
/// structurally in the SMT lowering, which never interprets them; the
/// assertions produced here are the only constraints they get.
///
/// Each tactic can be disabled for the ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_NATURAL_ENGINE_H
#define DRYAD_NATURAL_ENGINE_H

#include "lang/ast.h"
#include "natural/footprint.h"
#include "vcgen/vc.h"

namespace dryad {

struct NaturalOptions {
  bool Unfold = true;
  bool Frames = true;
  bool Axioms = true;
};

/// Ablation-style tactic reduction for the resilient dispatch layer: each
/// level drops the next enabled tactic, axioms before frames (axioms are
/// load-bearing for fewer routines, §7). Unfolding is never dropped —
/// without it almost nothing proves (§6.2). Level 0 returns \p O unchanged.
NaturalOptions degradeTactics(NaturalOptions O, unsigned Level);

/// How many distinct reduced tactic sets degradeTactics can produce for
/// \p O (0 when there is nothing left to drop).
unsigned maxDegradeLevels(const NaturalOptions &O);

struct NaturalProof {
  /// All strengthening assertions (semantic consequences of the recursive
  /// definitions; sound to conjoin to ψVC).
  std::vector<const Formula *> Assertions;
  /// The definition instances that were considered.
  std::vector<RecInstance> Instances;
};

NaturalProof buildNaturalProof(Module &M, const VCond &VC,
                               const NaturalOptions &Opts = {});

} // namespace dryad

#endif // DRYAD_NATURAL_ENGINE_H
