//===--- remote.cpp - Thin client for the serve daemon ------------------------===//

#include "store/remote.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dryad;

namespace {

/// Non-blocking connect with a deadline: a daemon whose accept queue is
/// wedged must not hang the client past ConnectTimeoutMs. Returns the
/// connected fd or -1 with a reason in \p Err.
int connectWithTimeout(const std::string &Path, unsigned TimeoutMs,
                       std::string &Err) {
  struct sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());

  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int Flags = fcntl(Fd, F_GETFL, 0);
  fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);

  int CR = connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                   sizeof(Addr));
  if (CR < 0 && errno == EINPROGRESS) {
    struct pollfd Pfd = {Fd, POLLOUT, 0};
    int PR = poll(&Pfd, 1, static_cast<int>(TimeoutMs));
    if (PR <= 0) {
      Err = "connect to " + Path + ": timed out";
      close(Fd);
      return -1;
    }
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0) {
      Err = "connect to " + Path + ": " + std::strerror(SoErr);
      close(Fd);
      return -1;
    }
  } else if (CR < 0) {
    Err = "connect to " + Path + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  fcntl(Fd, F_SETFL, Flags); // back to blocking for the exchange
  return Fd;
}

} // namespace

RemoteStatus dryad::remoteVerify(const RemoteOptions &RO,
                                 const std::string &File,
                                 const std::string &Source,
                                 ServeResponse &Resp, std::string &Err) {
  // A daemon that dies mid-exchange turns our write into EPIPE, not a
  // process kill.
  signal(SIGPIPE, SIG_IGN);

  std::string Frame = frameServeRequest({File, Source});
  // Two separate budgets: Try counts infrastructure trouble (no daemon,
  // lost daemon), BusyTries counts explicit DRYE1 backpressure. A busy
  // daemon is HEALTHY — its replies must not erode the connect ladder, and
  // backing off must not be mistaken for the daemon being gone.
  unsigned BusyTries = 0;
  for (unsigned Try = 0; Try <= RO.Retries;) {
    int Fd = connectWithTimeout(RO.SocketPath, RO.ConnectTimeoutMs, Err);
    if (Fd < 0) {
      if (++Try <= RO.Retries)
        std::fprintf(stderr, "remote: retrying (%u/%u): %s\n", Try,
                     RO.Retries, Err.c_str());
      continue;
    }
    if (!writeFully(Fd, Frame)) {
      Err = std::string("send failed: ") + std::strerror(errno);
      close(Fd);
      if (++Try <= RO.Retries)
        std::fprintf(stderr, "remote: retrying (%u/%u): %s\n", Try,
                     RO.Retries, Err.c_str());
      continue;
    }
    const char *Magics[2] = {"DRYT1", "DRYE1"};
    size_t Which = 0;
    std::string Payload;
    if (!readFrameAnyOf(Fd, Magics, 2, Which, Payload, RO.RequestTimeoutMs,
                        Err)) {
      // Covers servedrop (daemon hung up after reading the request), a
      // killed daemon, and a wedged solve past the deadline alike.
      Err = "daemon lost mid-request: " + Err;
      close(Fd);
      if (++Try <= RO.Retries)
        std::fprintf(stderr, "remote: retrying (%u/%u): %s\n", Try,
                     RO.Retries, Err.c_str());
      continue;
    }
    close(Fd);
    if (Which == 1) {
      // DRYE1: the daemon is saturated (or draining) and told us when to
      // come back. Honor its hint on the busy budget.
      ServeBusy B;
      if (decodeServeBusy(Payload, B) && ++BusyTries <= RO.BusyRetries) {
        unsigned WaitMs = B.RetryAfterMs == 0 ? 100 : B.RetryAfterMs;
        std::fprintf(stderr,
                     "remote: daemon busy (%s); backing off %ums (%u/%u)\n",
                     B.Reason.c_str(), WaitMs, BusyTries, RO.BusyRetries);
        poll(nullptr, 0, static_cast<int>(WaitMs));
        continue;
      }
      Err = "daemon overloaded: backoff budget exhausted after " +
            std::to_string(BusyTries - 1) + " retries (" + B.Reason + ")";
      return RemoteStatus::Overloaded;
    }
    if (!decodeServeResponse(Payload, Resp)) {
      Err = "malformed response from daemon";
      if (++Try <= RO.Retries)
        std::fprintf(stderr, "remote: retrying (%u/%u): %s\n", Try,
                     RO.Retries, Err.c_str());
      continue;
    }
    return RemoteStatus::Ok;
  }
  return RemoteStatus::Error;
}

bool dryad::remotePing(const RemoteOptions &RO, ServeHealth &H,
                       std::string &Err) {
  signal(SIGPIPE, SIG_IGN);
  std::string Frame = framePingRequest();
  for (unsigned Try = 0; Try <= RO.Retries; ++Try) {
    if (Try != 0)
      std::fprintf(stderr, "remote: retrying ping (%u/%u): %s\n", Try,
                   RO.Retries, Err.c_str());
    int Fd = connectWithTimeout(RO.SocketPath, RO.ConnectTimeoutMs, Err);
    if (Fd < 0)
      continue;
    if (!writeFully(Fd, Frame)) {
      Err = std::string("send failed: ") + std::strerror(errno);
      close(Fd);
      continue;
    }
    std::string Payload;
    // A ping answers from memory; it should never take remotely as long as
    // a solve. Bound it independently of RequestTimeoutMs.
    if (!readFrame(Fd, "DRYH1", Payload, /*TimeoutMs=*/5000, Err)) {
      Err = "daemon lost mid-ping: " + Err;
      close(Fd);
      continue;
    }
    close(Fd);
    if (!decodeServeHealth(Payload, H)) {
      Err = "malformed health reply from daemon";
      continue;
    }
    return true;
  }
  return false;
}
