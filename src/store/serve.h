//===--- serve.h - Incremental verification daemon --------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dryadv --serve SOCK`: a unix-socket daemon holding a warm solver fleet
/// and an open proof store across requests, so an edit-verify loop pays
/// solver time only for the obligations the edit actually dirtied.
///
/// One connection = one request = one module (src/store/wire.h). Requests
/// are served concurrently: the main thread owns the listener and all
/// client reads; each fully-read request is handed to one of `ServeJobs`
/// session threads, which re-plans the module from the source text it was
/// sent, answers store hits instantly (the store index is thread-safe, see
/// store.h), schedules the misses through its own Scheduler backed by a
/// shared partitioned WarmFleet, and streams back the exact stdout report
/// a local run would have printed plus per-request store counters and a
/// ready-made `--json` report.
///
/// Robustness discipline:
///
///  * a stale socket file (no listener behind it) is detected by a probe
///    connect and replaced; a LIVE listener is an error — two daemons on
///    one socket would race the accept queue;
///  * admission control: with every session busy and `ServeQueue` requests
///    already waiting, a new request is answered with a retryable DRYE1
///    busy frame (carrying a retry-after hint) instead of being queued
///    without bound — the client backs off and retries, it never fails;
///  * slow or half-open clients cost one fd, never a thread: the main
///    thread reads request frames under a per-frame `ReadTimeoutMs`
///    deadline, and session threads write responses under the same budget;
///  * a client that disconnects mid-solve has its in-flight obligations
///    cancelled (its session's workers are SIGKILLed and recycled) without
///    disturbing the other sessions; per-request wall deadlines
///    (`DeadlineMs`) bound a pathological module the same way;
///  * SIGINT/SIGTERM drains gracefully: stop accepting, answer the queue
///    with retryable busy frames, give in-flight requests `DrainMs` to
///    finish (then abort them), fsync the store, reap the fleet, unlink
///    the socket, exit 0. A second signal runs the async-signal-safe hard
///    path (terminateNow): SIGKILL + reap every worker, _exit(130) — no
///    orphans, no torn store either way;
///  * `servedrop@N` drops the Nth connection after reading its request,
///    `servebusy@N` forces the busy reply to the Nth request, `serveslow@N`
///    stalls reading the Nth accepted connection until its read deadline
///    fires (smt/inject.h) — how the client's retry, backoff, and timeout
///    paths are exercised in tests.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_STORE_SERVE_H
#define DRYAD_STORE_SERVE_H

#include "verifier/verifier.h"

#include <string>
#include <utility>
#include <vector>

namespace dryad {

struct ServeDaemonOptions {
  std::string SocketPath;
  /// Per-request verification options. JournalPath/StorePath are not used
  /// directly — the daemon opens StorePath once and injects it into every
  /// request's verifier.
  VerifyOptions Verify;
  /// Stop after this many requests; 0 = run until signalled. Tests use it
  /// to get a daemon that exits on its own.
  unsigned MaxRequests = 0;
  /// Session threads serving requests concurrently; 0 = one per CPU.
  unsigned ServeJobs = 0;
  /// Admitted requests allowed to wait for a free session beyond the
  /// ServeJobs in flight; past this the daemon answers a retryable DRYE1
  /// busy frame instead of queueing without bound.
  unsigned ServeQueue = 16;
  /// Per-frame deadline for reading a request and writing a response, so a
  /// slow or half-open client costs one fd, never a thread.
  unsigned ReadTimeoutMs = 30000;
  /// Per-request wall deadline; 0 = none. An exceeded request is aborted
  /// (its workers SIGKILLed and recycled) and answered with exit 3.
  unsigned DeadlineMs = 0;
  /// Graceful-drain budget after SIGTERM/SIGINT: in-flight requests get
  /// this long to finish before being aborted.
  unsigned DrainMs = 30000;
  /// Active solver backends as (name, probed version) pairs, from the
  /// driver's startup probe; threaded into every response's `--json` report
  /// so clients see which fleet answered them.
  std::vector<std::pair<std::string, std::string>> BackendLabels;
};

/// Runs the daemon loop. Returns the process exit code (2 on setup errors:
/// bad socket path, live sibling daemon, store open failure).
int runServeDaemon(const ServeDaemonOptions &SO);

} // namespace dryad

#endif // DRYAD_STORE_SERVE_H
