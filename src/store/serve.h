//===--- serve.h - Incremental verification daemon --------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dryadv --serve SOCK`: a unix-socket daemon holding a warm solver fleet
/// and an open proof store across requests, so an edit-verify loop pays
/// solver time only for the obligations the edit actually dirtied.
///
/// One connection = one request = one module (src/store/wire.h). For each
/// request the daemon re-plans the module from the source text it was sent,
/// answers store hits instantly, schedules the misses through the shared
/// fleet, appends the fresh outcomes to the store, and streams back the
/// exact stdout report a local run would have printed plus per-request
/// store counters and a ready-made `--json` report.
///
/// Robustness discipline:
///
///  * a stale socket file (no listener behind it) is detected by a probe
///    connect and replaced; a LIVE listener is an error — two daemons on
///    one socket would race the accept queue;
///  * SIGINT/SIGTERM runs the async-signal-safe termination path: fsync the
///    store, SIGKILL + reap every fleet worker via the pid registry, unlink
///    the socket, _exit(130) — no orphans, no torn store;
///  * a client that disappears mid-request costs the daemon one EPIPE'd
///    write (SIGPIPE is ignored), never the process; a connection that
///    closes before delivering a full request frame (a readiness probe, a
///    port scan) is not counted as a request at all;
///  * `servedrop@N` (smt/inject.h) deterministically drops the Nth
///    connection after reading its request — how the client's retry and
///    fallback paths are exercised in tests.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_STORE_SERVE_H
#define DRYAD_STORE_SERVE_H

#include "verifier/verifier.h"

#include <string>
#include <utility>
#include <vector>

namespace dryad {

struct ServeDaemonOptions {
  std::string SocketPath;
  /// Per-request verification options. JournalPath/StorePath are not used
  /// directly — the daemon opens StorePath once and injects it into every
  /// request's verifier.
  VerifyOptions Verify;
  /// Stop after this many requests; 0 = run until signalled. Tests use it
  /// to get a daemon that exits on its own.
  unsigned MaxRequests = 0;
  /// Active solver backends as (name, probed version) pairs, from the
  /// driver's startup probe; threaded into every response's `--json` report
  /// so clients see which fleet answered them.
  std::vector<std::pair<std::string, std::string>> BackendLabels;
};

/// Runs the daemon loop. Returns the process exit code (2 on setup errors:
/// bad socket path, live sibling daemon, store open failure).
int runServeDaemon(const ServeDaemonOptions &SO);

} // namespace dryad

#endif // DRYAD_STORE_SERVE_H
