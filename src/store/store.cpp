//===--- store.cpp - Crash-safe persistent proof store ----------------------===//

#include "store/store.h"

#include "support/crc32.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <libgen.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace dryad;

// Bump history: v1/engine-1 — initial persistent store (PR 7). The content
// key already covers the smt2 text and tactic config; this covers silent
// semantic drift (a changed translation producing the same key).
// v1/engine-2 — backend-qualified keys (PR 8): records are filed under
// `<content-key>@<backend>` and the tactic config dropped its implicit
// `solver=z3` prefix, so engine-1 stores (whose keys carry no backend and
// hash a different config) are rebuilt, never misread.
const char *dryad::StoreEngineVersion = "2";

static const char *StoreMagic = "DRYADSTORE v1 engine=";

std::string ProofStore::headerLine() {
  return std::string(StoreMagic) + StoreEngineVersion + "\n";
}

std::string ProofStore::encodeRecord(const JournalRecord &R) {
  std::string Json = Journal::serialize(R);
  if (!Json.empty() && Json.back() == '\n')
    Json.pop_back();
  return crc32Hex(crc32(Json)) + " " + Json + "\n";
}

ProofStore::ProofStore() {
  static std::atomic<uint64_t> NextInstanceId{1};
  InstanceId = NextInstanceId.fetch_add(1, std::memory_order_relaxed);
}

ProofStore::~ProofStore() {
  int F = Fd.load(std::memory_order_relaxed);
  if (F >= 0)
    ::close(F);
}

/// Reads all of \p Fd (from offset 0) into \p Out. Returns false on error.
static bool readWhole(int Fd, std::string &Out) {
  Out.clear();
  if (lseek(Fd, 0, SEEK_SET) < 0)
    return false;
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return true;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

static bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Decodes one "<crc32> <json>" line. Returns the record, or nullopt for a
/// quarantined line (short, bad CRC, or unparseable payload).
static std::optional<JournalRecord> decodeLine(const std::string &Line) {
  if (Line.size() < 10 || Line[8] != ' ')
    return std::nullopt;
  std::string_view Json(Line.data() + 9, Line.size() - 9);
  if (crc32Hex(crc32(Json)) != Line.substr(0, 8))
    return std::nullopt;
  return Journal::parseLine(std::string(Json));
}

size_t ProofStore::loadSegment(const std::string &Bytes) {
  size_t Pos = 0, Durable = 0;
  while (Pos < Bytes.size()) {
    size_t Nl = Bytes.find('\n', Pos);
    if (Nl == std::string::npos)
      break; // unterminated tail — not durable, caller truncates it
    std::string Line = Bytes.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    Durable = Pos; // complete lines stay on disk even when quarantined
    if (std::optional<JournalRecord> R = decodeLine(Line))
      BaseIndex[R->Key] = *R; // later records win
    else
      ++Quarantined; // skipped, never trusted; compaction drops it
  }
  return Durable;
}

bool ProofStore::open(const std::string &P, std::string &Err) {
  // open() is single-threaded by contract: the daemon opens the store
  // before spawning any session thread, so plain writes to the atomics
  // here are published by thread creation.
  if (Fd.load(std::memory_order_relaxed) >= 0) {
    Err = "store already open";
    return false;
  }
  Path = P;
  for (int Attempt = 0; Attempt != 2; ++Attempt) {
    int F = ::open(P.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (F < 0) {
      Err = "cannot open proof store '" + P + "': " + std::strerror(errno);
      return false;
    }
    // The open-time scan (and any torn-tail truncation) happens under the
    // same lock appenders take, so a concurrent writer can never land a
    // record between "read EOF" and "truncate to EOF".
    bool Locked = flock(F, LOCK_EX) == 0;
    std::string Bytes;
    if (!readWhole(F, Bytes)) {
      Err = "cannot read proof store '" + P + "': " + std::strerror(errno);
      if (Locked)
        flock(F, LOCK_UN);
      ::close(F);
      return false;
    }

    if (Bytes.empty()) {
      // Fresh store: stamp the header so every later open can tell "ours"
      // from "stale schema".
      std::string H = headerLine();
      if (!writeAll(F, H.data(), H.size())) {
        Err = "cannot initialize proof store '" + P +
              "': " + std::strerror(errno);
        if (Locked)
          flock(F, LOCK_UN);
        ::close(F);
        return false;
      }
      fsync(F);
      if (Locked)
        flock(F, LOCK_UN);
      Fd.store(F, std::memory_order_relaxed);
      return true;
    }

    size_t Nl = Bytes.find('\n');
    std::string Header =
        Nl == std::string::npos ? Bytes : Bytes.substr(0, Nl + 1);
    if (Header != headerLine()) {
      // Stale schema or engine version (or a file that is not a store at
      // all): rebuild, never misread. The old bytes are rotated aside so a
      // human can still inspect them.
      if (Locked)
        flock(F, LOCK_UN);
      ::close(F);
      std::string Stale = P + ".stale";
      if (::rename(P.c_str(), Stale.c_str()) != 0) {
        Err = "stale proof store '" + P +
              "' could not be rotated aside: " + std::strerror(errno);
        return false;
      }
      continue; // second pass creates a fresh segment
    }

    size_t Durable = Nl + 1 + loadSegment(Bytes.substr(Nl + 1));
    if (Durable < Bytes.size()) {
      // Torn tail from a killed writer: truncate to the last durable
      // record. The torn obligation is simply re-solved; appending past
      // un-newlined garbage would corrupt the NEXT record too.
      if (ftruncate(F, static_cast<off_t>(Durable)) == 0)
        fsync(F);
    }
    if (Locked)
      flock(F, LOCK_UN);
    Fd.store(F, std::memory_order_relaxed);
    return true;
  }
  Err = "could not rebuild stale proof store '" + P + "'";
  return false;
}

namespace {
/// One thread's view of a store's post-open appends: the suffix of the
/// append log it has replayed so far, as a key -> record overlay.
struct ReaderOverlay {
  size_t Applied = 0;
  std::unordered_map<std::string, JournalRecord> Map;
};
} // namespace

const JournalRecord *ProofStore::lookup(const std::string &Key) const {
  // Readers resolve against the immutable base index plus a THREAD-LOCAL
  // overlay of this writer's appends, synced by copying only records this
  // thread has not yet seen. The sync takes LogMu briefly; the writer's
  // slow part (write + fsync under IoMu) is never behind that lock, so a
  // hit never blocks on an in-flight append. Overlays are keyed by
  // instance id, not address, so a recycled allocation cannot inherit a
  // dead store's overlay.
  thread_local std::unordered_map<uint64_t, ReaderOverlay> Overlays;
  ReaderOverlay &O = Overlays[InstanceId];
  if (O.Applied < AppendSeq.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> L(LogMu);
    for (; O.Applied != AppendLog.size(); ++O.Applied)
      O.Map[AppendLog[O.Applied].Key] = AppendLog[O.Applied];
  }
  // Appends are newer than anything in the base segment, so the overlay
  // wins — the same later-records-win rule the on-disk scan applies.
  auto It = O.Map.find(Key);
  if (It != O.Map.end())
    return &It->second;
  auto B = BaseIndex.find(Key);
  return B == BaseIndex.end() ? nullptr : &B->second;
}

size_t ProofStore::size() const {
  std::lock_guard<std::mutex> L(LogMu);
  return BaseIndex.size() + NewKeys;
}

void ProofStore::put(const JournalRecord &R) {
  if (Fd.load(std::memory_order_relaxed) < 0 ||
      Degraded.load(std::memory_order_relaxed))
    return;
  std::string Line = encodeRecord(R);

  {
    // IoMu serializes in-process appenders (session threads sharing the
    // daemon's store); the flock below still serializes against OTHER
    // processes sharing the segment. Readers never take IoMu.
    std::lock_guard<std::mutex> Io(IoMu);
    int F = Fd.load(std::memory_order_relaxed);
    if (F < 0 || Degraded.load(std::memory_order_relaxed))
      return; // a concurrent put degraded the writer while we queued
    ++Puts;

    if (Inject.infraFaultFor(InfraFaultKind::StoreTorn, Puts)) {
      // Emulate kill -9 mid-write: half the record lands, no newline, and
      // this writer never appends again. The next open must repair exactly
      // this tail and re-solve exactly this obligation.
      std::string Torn = Line.substr(0, Line.size() / 2);
      bool Locked = flock(F, LOCK_EX) == 0;
      writeAll(F, Torn.data(), Torn.size());
      fsync(F);
      if (Locked)
        flock(F, LOCK_UN);
      Fd.store(-1, std::memory_order_relaxed);
      Degraded.store(true, std::memory_order_relaxed);
      ::close(F);
      return;
    }
    if (Inject.infraFaultFor(InfraFaultKind::StoreCrc, Puts)) {
      // Silent corruption: a complete-looking record whose CRC lies. Not
      // indexed in memory either — the store must behave exactly as the
      // next load will see it (quarantined, re-solved).
      for (size_t I = 0; I != 8; ++I)
        Line[I] = Line[I] == 'f' ? '0' : 'f';
      bool Locked = flock(F, LOCK_EX) == 0;
      writeAll(F, Line.data(), Line.size());
      fsync(F);
      if (Locked)
        flock(F, LOCK_UN);
      return;
    }

    // The real append: flock so concurrent writers (daemon + a hand-run
    // client sharing one store) never interleave; O_APPEND puts the whole
    // line atomically at EOF; fsync makes it durable before the next
    // obligation starts — a power loss costs at most this one record.
    bool Locked = flock(F, LOCK_EX) == 0;
    bool Ok = writeAll(F, Line.data(), Line.size());
    if (Ok)
      fsync(F);
    if (Locked)
      flock(F, LOCK_UN);
    if (!Ok) {
      // A broken cache must never break the run: stop writing, keep
      // serving lookups from memory.
      Degraded.store(true, std::memory_order_relaxed);
      return;
    }
  }

  // Publish to readers only after the record is durable, outside IoMu so
  // the next appender can start its write while we update the log.
  std::lock_guard<std::mutex> L(LogMu);
  if (!BaseIndex.count(R.Key) && AppendedKeys.insert(R.Key).second)
    ++NewKeys;
  AppendLog.push_back(R);
  AppendSeq.store(AppendLog.size(), std::memory_order_release);
}

bool ProofStore::compact(const std::string &Path, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot read proof store '" + Path + "': " + std::strerror(errno);
    return false;
  }
  std::string Line;
  if (!std::getline(In, Line) || Line + "\n" != headerLine()) {
    Err = "'" + Path + "' is not a current-engine proof store; nothing to "
          "compact (a stale store is rebuilt on next open)";
    return false;
  }
  // Later records win, first-appearance order — the journal merge's policy.
  std::unordered_map<std::string, JournalRecord> Win;
  std::vector<std::string> Order;
  while (std::getline(In, Line)) {
    std::optional<JournalRecord> R = decodeLine(Line);
    if (!R)
      continue; // quarantined or torn: dropped by compaction
    if (!Win.count(R->Key))
      Order.push_back(R->Key);
    Win[R->Key] = *R;
  }

  // Write-then-fsync-then-rename: the new segment is durable before it
  // replaces the old one, so a crash at any instant leaves a valid store.
  std::string Tmp = Path + ".compact.tmp";
  int OutFd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (OutFd < 0) {
    Err = "cannot write '" + Tmp + "': " + std::strerror(errno);
    return false;
  }
  std::string Out = headerLine();
  for (const std::string &Key : Order)
    Out += encodeRecord(Win[Key]);
  if (!writeAll(OutFd, Out.data(), Out.size()) || fsync(OutFd) != 0) {
    Err = "short write compacting into '" + Tmp + "'";
    ::close(OutFd);
    ::unlink(Tmp.c_str());
    return false;
  }
  ::close(OutFd);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Err = "cannot rename '" + Tmp + "' over '" + Path +
          "': " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  // fsync the directory so the rename itself survives power loss.
  std::string Dir = Path;
  char *D = dirname(Dir.data());
  int DirFd = ::open(D, O_RDONLY);
  if (DirFd >= 0) {
    fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}

StoreFsck ProofStore::verifySegment(const std::string &Path) {
  StoreFsck F;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return F; // missing file: HeaderOk stays false
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  size_t Nl = Bytes.find('\n');
  if (Nl == std::string::npos) {
    F.TornTail = !Bytes.empty();
    F.TornTailBytes = Bytes.size();
    return F;
  }
  std::string Header = Bytes.substr(0, Nl + 1);
  std::string Expect(StoreMagic);
  if (Header.size() > Expect.size() &&
      Header.compare(0, Expect.size(), Expect) == 0) {
    F.HeaderOk = true;
    F.HeaderEngine = Header.substr(Expect.size(),
                                   Header.size() - Expect.size() - 1);
    F.EngineMatch = Header == headerLine();
  }

  // Verdict bits are tracked per *backend-stripped* key: one obligation's
  // records under different solvers (`v1-x@z3`, `v1-x@cvc5`) land in the
  // same bucket, so a cross-solver sat/unsat contradiction is surfaced
  // exactly like two contradictory records from one solver. The `:vacuity`
  // sub-key suffix survives the strip — probe verdicts (where sat is the
  // GOOD answer) never mix with main verdicts.
  auto StrippedKey = [](const std::string &Key) {
    size_t At = Key.find('@');
    if (At == std::string::npos)
      return Key;
    size_t Colon = Key.find(':', At);
    return Key.substr(0, At) +
           (Colon == std::string::npos ? std::string() : Key.substr(Colon));
  };
  std::unordered_map<std::string, unsigned> Verdicts; // 1 = unsat, 2 = sat
  std::unordered_map<std::string, bool> FullKeys;
  size_t Pos = Nl + 1;
  while (Pos < Bytes.size()) {
    size_t End = Bytes.find('\n', Pos);
    if (End == std::string::npos) {
      F.TornTail = true;
      F.TornTailBytes = Bytes.size() - Pos;
      break;
    }
    std::string Line = Bytes.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.size() < 10 || Line[8] != ' ') {
      ++F.BadCrc;
      continue;
    }
    std::string_view Json(Line.data() + 9, Line.size() - 9);
    if (crc32Hex(crc32(Json)) != Line.substr(0, 8)) {
      ++F.BadCrc;
      continue;
    }
    std::optional<JournalRecord> R = Journal::parseLine(std::string(Json));
    if (!R) {
      ++F.Malformed;
      continue;
    }
    ++F.ValidRecords;
    bool &SeenFull = FullKeys[R->Key];
    if (!SeenFull) {
      ++F.DistinctKeys;
      SeenFull = true;
    }
    // Bits: 1 = an unsat record seen, 2 = a sat record seen.
    const std::string Stripped = StrippedKey(R->Key);
    unsigned &V = Verdicts[Stripped];
    unsigned Bit = R->Status == SmtStatus::Unsat  ? 1u
                   : R->Status == SmtStatus::Sat ? 2u
                                                 : 0u;
    if (Bit && ((V & 3u) | Bit) == 3u && (V & 3u) != 3u)
      F.DivergentKeys.push_back(Stripped);
    V |= Bit;
  }
  return F;
}

std::string ProofStore::formatFsck(const StoreFsck &F) {
  char Buf[256];
  std::string Out;
  if (!F.HeaderOk) {
    Out += "store: MISSING OR UNRECOGNIZED header (not a proof store, or "
           "torn before the first record)\n";
  } else {
    std::snprintf(Buf, sizeof(Buf),
                  "store: header ok, engine %s%s, %zu valid record(s), "
                  "%zu key(s)\n",
                  F.HeaderEngine.c_str(),
                  F.EngineMatch ? "" : " (STALE: will be rebuilt on open)",
                  F.ValidRecords, F.DistinctKeys);
    Out += Buf;
  }
  if (F.BadCrc) {
    std::snprintf(Buf, sizeof(Buf),
                  "store: %zu corrupt line(s) (CRC mismatch) — quarantined, "
                  "their obligations will be re-solved\n",
                  F.BadCrc);
    Out += Buf;
  }
  if (F.Malformed) {
    std::snprintf(Buf, sizeof(Buf),
                  "store: %zu CRC-clean but unparseable line(s) — "
                  "quarantined\n",
                  F.Malformed);
    Out += Buf;
  }
  if (F.TornTail) {
    std::snprintf(Buf, sizeof(Buf),
                  "store: torn tail: %zu byte(s) past the last durable "
                  "record (killed writer; repaired on next open)\n",
                  F.TornTailBytes);
    Out += Buf;
  }
  for (const std::string &K : F.DivergentKeys)
    Out += "store: DIVERGENT key " + K +
           ": both sat and unsat recorded (same or different solver "
           "backends) — investigate before trusting either\n";
  if (F.clean())
    Out += "store: clean\n";
  return Out;
}
