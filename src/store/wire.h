//===--- wire.h - Serve-protocol framing ------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `dryadv --serve` / `dryadv --remote` wire protocol, in the style of
/// the warm-worker DRYQ1/DRYR1 frames (smt/sandbox.h): length-prefixed,
/// byte-counted, no quoting or escaping anywhere.
///
/// One request/response exchange per connection:
///
///   client -> daemon:  "DRYS1\n" <payload-bytes> "\n" <payload>   verify
///   daemon -> client:  "DRYT1\n" <payload-bytes> "\n" <payload>   verdict
///   client -> daemon:  "DRYP1\n" <payload-bytes> "\n" <payload>   ping
///   daemon -> client:  "DRYH1\n" <payload-bytes> "\n" <payload>   health
///   daemon -> client:  "DRYE1\n" <payload-bytes> "\n" <payload>   overloaded
///
/// DRYE1 is the admission controller saying "try again later": it carries a
/// suggested backoff and is RETRYABLE — the client backs off and re-sends,
/// and must never fall back to local solving (that would stampede an
/// already-loaded daemon) or report a failure exit for it. DRYP1/DRYH1 is
/// the health probe: daemon uptime, served counters, and store stats with
/// no verification planned — it makes a monitoring probe distinguishable
/// from a zero-byte aborted request.
///
/// The request payload carries the module *source text*, not a path: the
/// daemon never touches the client's filesystem, so client and daemon can
/// run in different directories (or different mount namespaces). Payload
/// fields are themselves byte-counted (`<name> <len>\n<bytes>\n`), so a
/// module containing any byte sequence round-trips.
///
/// The response carries the daemon's verdict for the module: the exit code
/// (the CLI's 0/1/3 taxonomy), the exact stdout report bytes the client
/// must replay (keeping remote and local runs byte-identical on stdout),
/// the per-request store counters, and a ready-made `--json` report.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_STORE_WIRE_H
#define DRYAD_STORE_WIRE_H

#include <string>

namespace dryad {

/// One verification request: a module to verify, identified by the name the
/// report should print (the client's path string).
struct ServeRequest {
  std::string File;   ///< display name for the report
  std::string Source; ///< full module text
};

/// The daemon's answer for one request.
struct ServeResponse {
  int Exit = 3; ///< the CLI exit taxonomy (0 verified / 1 genuine / 3 infra)
  unsigned StoreHits = 0;        ///< this request's store hits
  unsigned StoreMisses = 0;      ///< this request's store misses
  unsigned StoreQuarantined = 0; ///< records quarantined serving this request
  std::string Report; ///< stdout bytes, byte-identical to a local run
  std::string Json;   ///< the `--json` report for this request
  std::string Diag;   ///< stderr diagnostics (parse errors etc.), often empty
};

/// The daemon's retryable "overloaded" answer: every session slot is busy
/// and the admission queue is full (or the daemon is draining). The client
/// sleeps at least RetryAfterMs and re-sends the same request.
struct ServeBusy {
  unsigned RetryAfterMs = 100; ///< suggested backoff before the retry
  std::string Reason;          ///< "overloaded" / "draining" — diagnostics
};

/// The DRYH1 health payload: daemon-lifetime counters plus a live snapshot
/// of the store and session pool. No verification is planned to answer it.
struct ServeHealth {
  unsigned long long UptimeMs = 0; ///< since the daemon started listening
  unsigned Served = 0;             ///< requests answered (pings excluded)
  unsigned Active = 0;             ///< requests in flight on session threads
  unsigned Queued = 0;             ///< admitted requests awaiting a session
  unsigned long long StoreKeys = 0; ///< distinct keys in the proof store
  unsigned StoreHits = 0;           ///< lifetime store hits across requests
  unsigned StoreMisses = 0;         ///< lifetime store misses
  unsigned StoreQuarantined = 0;    ///< corrupt records skipped at load
};

/// "DRYS1\n<len>\n<payload>" around an encoded request.
std::string frameServeRequest(const ServeRequest &Q);
/// "DRYT1\n<len>\n<payload>" around an encoded response.
std::string frameServeResponse(const ServeResponse &R);
/// "DRYE1\n<len>\n<payload>" around an encoded busy reply.
std::string frameServeBusy(const ServeBusy &B);
/// "DRYP1\n<len>\n<payload>" — the ping request (empty payload).
std::string framePingRequest();
/// "DRYH1\n<len>\n<payload>" around an encoded health snapshot.
std::string frameServeHealth(const ServeHealth &H);

/// Incremental frame parser: returns 1 and fills \p Payload / \p Consumed
/// when \p Buf starts with one complete `<Magic>\n<len>\n<payload>` frame,
/// 0 when more bytes are needed, -1 when the buffer cannot be a frame.
int tryParseFrame(const std::string &Buf, const char *Magic,
                  std::string &Payload, size_t &Consumed);

/// Decoders for the byte-counted payloads. Return false on malformed input
/// (a truncated field, a wrong field name) — the caller treats that like a
/// dropped connection, never trusts a partial decode.
bool decodeServeRequest(const std::string &Payload, ServeRequest &Q);
bool decodeServeResponse(const std::string &Payload, ServeResponse &R);
bool decodeServeBusy(const std::string &Payload, ServeBusy &B);
bool decodeServeHealth(const std::string &Payload, ServeHealth &H);

/// Full write to \p Fd, retrying short writes and EINTR. Returns false on
/// any error (EPIPE included — callers must have SIGPIPE ignored).
bool writeFully(int Fd, const std::string &Data);

/// Full write to \p Fd under a total deadline of \p TimeoutMs: the fd is
/// flipped non-blocking and driven by poll(2), so a client that stops
/// reading costs the writer at most the deadline, never a wedged thread.
/// Returns false on timeout or error with a one-line reason in \p Err.
bool writeFullyTimed(int Fd, const std::string &Data, unsigned TimeoutMs,
                     std::string &Err);

/// Reads one `<Magic>\n<len>\n<payload>` frame from \p Fd under a total
/// deadline of \p TimeoutMs (poll(2)-driven). Returns false on timeout,
/// EOF, or a malformed frame, with a one-line reason in \p Err.
bool readFrame(int Fd, const char *Magic, std::string &Payload,
               unsigned TimeoutMs, std::string &Err);

/// Like readFrame, but accepts any of \p Magics[0..Count). On success fills
/// \p Which with the index of the magic that matched — how the client tells
/// a DRYT1 verdict from a DRYE1 busy reply on the same connection.
bool readFrameAnyOf(int Fd, const char *const *Magics, size_t Count,
                    size_t &Which, std::string &Payload, unsigned TimeoutMs,
                    std::string &Err);

} // namespace dryad

#endif // DRYAD_STORE_WIRE_H
