//===--- remote.h - Thin client for the serve daemon ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dryadv --remote SOCK file.dryad`: ship the module source to a
/// `--serve` daemon and replay its answer — stdout report verbatim, the
/// daemon's exit code as ours. The client holds no solver, no store, and
/// no fleet; an edit-verify loop pays only the dirtied obligations, solved
/// daemon-side.
///
/// Failure ladder (the taxonomy rule: infrastructure trouble must never
/// masquerade as a disproof):
///
///  1. connect or exchange fails -> retry, up to Retries times;
///  2. retries exhausted, fallback enabled (default) -> the caller solves
///     locally and the run's exit code is the local result;
///  3. retries exhausted, `--no-remote-fallback` -> exit 3 (infra), with
///     the last error on stderr. Never exit 1: an unreachable daemon is
///     not a counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_STORE_REMOTE_H
#define DRYAD_STORE_REMOTE_H

#include "store/wire.h"

#include <string>

namespace dryad {

struct RemoteOptions {
  std::string SocketPath;
  unsigned ConnectTimeoutMs = 2000;    ///< per connect() attempt
  unsigned RequestTimeoutMs = 600000;  ///< solve-and-respond deadline
  unsigned Retries = 2;                ///< re-attempts after the first try
  bool Fallback = true;                ///< solve locally when all tries fail
};

/// One request against the daemon, with the retry ladder applied. Returns
/// true and fills \p Resp on success; false with the last failure's reason
/// in \p Err (the caller decides between fallback and exit 3).
bool remoteVerify(const RemoteOptions &RO, const std::string &File,
                  const std::string &Source, ServeResponse &Resp,
                  std::string &Err);

} // namespace dryad

#endif // DRYAD_STORE_REMOTE_H
