//===--- remote.h - Thin client for the serve daemon ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dryadv --remote SOCK file.dryad`: ship the module source to a
/// `--serve` daemon and replay its answer — stdout report verbatim, the
/// daemon's exit code as ours. The client holds no solver, no store, and
/// no fleet; an edit-verify loop pays only the dirtied obligations, solved
/// daemon-side.
///
/// Failure ladder (the taxonomy rule: infrastructure trouble must never
/// masquerade as a disproof):
///
///  1. connect or exchange fails -> retry, up to Retries times;
///  2. retries exhausted, fallback enabled (default) -> the caller solves
///     locally and the run's exit code is the local result;
///  3. retries exhausted, `--no-remote-fallback` -> exit 3 (infra), with
///     the last error on stderr. Never exit 1: an unreachable daemon is
///     not a counterexample.
///
/// A retryable DRYE1 busy reply is NOT failure: the daemon is alive and
/// explicitly asking for patience, so the client backs off for the
/// daemon's own retry-after hint and tries again on a separate budget
/// (BusyRetries) that never consumes the connect-retry ladder and never
/// triggers fallback — an overloaded daemon owns the store; solving
/// locally behind its back would fork the cache. Exhausting the backoff
/// budget returns Overloaded, which the driver maps to exit 3, never 1.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_STORE_REMOTE_H
#define DRYAD_STORE_REMOTE_H

#include "store/wire.h"

#include <string>

namespace dryad {

struct RemoteOptions {
  std::string SocketPath;
  unsigned ConnectTimeoutMs = 2000;    ///< per connect() attempt
  unsigned RequestTimeoutMs = 600000;  ///< solve-and-respond deadline
  unsigned Retries = 2;                ///< re-attempts after the first try
  unsigned BusyRetries = 8;            ///< re-attempts after DRYE1 busy replies
  bool Fallback = true;                ///< solve locally when all tries fail
};

/// How one remote exchange ended.
enum class RemoteStatus {
  Ok,         ///< Resp holds the daemon's answer
  Error,      ///< daemon unreachable/lost; caller picks fallback or exit 3
  Overloaded, ///< daemon alive but saturated past the backoff budget; exit
              ///< 3 always — never fallback, never exit 1
};

/// One request against the daemon, with the retry ladder and busy backoff
/// applied. Fills \p Resp on Ok; leaves the last failure's reason in
/// \p Err otherwise.
RemoteStatus remoteVerify(const RemoteOptions &RO, const std::string &File,
                          const std::string &Source, ServeResponse &Resp,
                          std::string &Err);

/// `--remote SOCK --ping`: one DRYP1 exchange. Fills \p H with the
/// daemon's health snapshot without planning any verification. Uses the
/// same connect ladder as remoteVerify but never falls back (there is no
/// local equivalent of daemon health).
bool remotePing(const RemoteOptions &RO, ServeHealth &H, std::string &Err);

} // namespace dryad

#endif // DRYAD_STORE_REMOTE_H
