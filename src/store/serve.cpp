//===--- serve.cpp - Incremental verification daemon -------------------------===//

#include "store/serve.h"

#include "lang/parser.h"
#include "sched/dispatch.h"
#include "smt/sandbox.h"
#include "store/store.h"
#include "store/wire.h"
#include "verifier/report.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dryad;

namespace {

/// A client that connects but never sends its request must not wedge the
/// accept loop forever.
constexpr unsigned RequestReadTimeoutMs = 30000;

/// Binds a listening unix socket at \p Path. A live listener already there
/// is an error (two daemons would race the accept queue); a stale socket
/// file — connect refused — is unlinked and replaced. Returns -1 with a
/// message on \p Err.
int bindListener(const std::string &Path, std::string &Err) {
  struct sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long (max " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes): " + Path;
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());

  if (access(Path.c_str(), F_OK) == 0) {
    int Probe = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Probe >= 0) {
      int CR = connect(Probe, reinterpret_cast<struct sockaddr *>(&Addr),
                       sizeof(Addr));
      close(Probe);
      if (CR == 0) {
        Err = "a daemon is already serving " + Path;
        return -1;
      }
    }
    // Refused/failed connect: the last daemon died without unlinking
    // (kill -9). The socket file is a corpse; replace it.
    unlink(Path.c_str());
  }

  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Fd, 8) < 0) {
    Err = std::string("bind/listen ") + Path + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

int dryad::runServeDaemon(const ServeDaemonOptions &SO) {
  // A client that vanishes mid-response costs one failed write, never the
  // daemon.
  signal(SIGPIPE, SIG_IGN);

  ProofStore Store;
  std::string Err;
  if (!Store.open(SO.Verify.StorePath, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  Store.setInject(SO.Verify.Inject);

  int ListenFd = bindListener(SO.SocketPath, Err);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }

  // From here on SIGINT/SIGTERM flushes the store, SIGKILLs + reaps every
  // fleet worker via the pid registry, unlinks the socket, and _exit(130)s.
  registerUnlinkOnTermination(SO.SocketPath);
  installTerminationHandlers(/*JournalFd=*/-1, Store.writerFd());

  // The long-lived warm fleet: every request's misses are scheduled on it,
  // so solver init is paid once per worker for the daemon's lifetime.
  VerifyOptions Base = SO.Verify;
  Base.JournalPath.clear();
  Base.StorePath.clear(); // injected below; the verifier must not reopen it
  Base.Resume = false;
  WarmPoolOptions WPO;
  WPO.Warm = Base.WarmWorkers;
  WPO.RecycleAfter = Base.RecycleAfter;
  Scheduler Pool(std::max(1u, Base.Jobs), WPO);

  std::fprintf(stderr, "serve: listening on %s (store %s, %zu cached keys)\n",
               SO.SocketPath.c_str(), Store.path().c_str(), Store.size());

  unsigned Requests = 0;
  for (;;) {
    if (SO.MaxRequests != 0 && Requests >= SO.MaxRequests)
      break;
    int Client = accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: accept: %s\n", std::strerror(errno));
      break;
    }
    std::string Payload, ReadErr;
    if (!readFrame(Client, "DRYS1", Payload, RequestReadTimeoutMs, ReadErr)) {
      // Not counted as a request: a connect that hangs up without a full
      // frame is a readiness probe or a port scan, and must not consume
      // MaxRequests budget or a servedrop ordinal.
      std::fprintf(stderr, "serve: connection dropped before a full request: %s\n",
                   ReadErr.c_str());
      close(Client);
      continue;
    }
    ++Requests;
    ServeRequest Q;
    if (!decodeServeRequest(Payload, Q)) {
      std::fprintf(stderr, "serve: request %u malformed\n", Requests);
      close(Client);
      continue;
    }

    // servedrop@N: hang up after reading the Nth request, before answering
    // — the deterministic stand-in for a daemon crash mid-request, which
    // is what the client's retry/fallback ladder must absorb.
    if (SO.Verify.Inject.infraFaultFor(InfraFaultKind::ServeDrop, Requests)) {
      std::fprintf(stderr,
                   "serve: request %u dropped by injected fault servedrop\n",
                   Requests);
      close(Client);
      continue;
    }

    ServeResponse Resp;
    Module M;
    DiagEngine Diags;
    if (!parseModule(Q.Source, M, Diags)) {
      // Mirror the local driver: parse failure is a genuine failure (exit
      // 1) with the diagnostics on stderr — relayed via the diag field.
      Resp.Exit = 1;
      Resp.Diag = Q.File + ":\n" + Diags.str();
    } else {
      Verifier V(M, Base);
      V.setExternalStore(&Store);
      V.setExternalPool(&Pool);
      std::vector<ProcResult> Results = V.verifyAll(Diags);
      if (Diags.hasErrors())
        Resp.Diag = Diags.str();
      Resp.Report = formatResults(Q.File, Results);
      bool AllVerified = true, AnyGenuine = false;
      classifyResults(Results, AllVerified, AnyGenuine);
      Resp.Exit = AllVerified ? 0 : AnyGenuine ? 1 : 3;
      // A cross-backend divergence poisons the whole request: whatever the
      // per-routine verdicts say, two solvers contradicted each other, so
      // the only honest answer is infrastructure failure.
      if (!V.divergences().empty()) {
        Resp.Exit = 3;
        for (const DivergenceAlarm &A : V.divergences())
          Resp.Diag += "backend divergence on '" + A.Obligation +
                       "': " + A.Detail + "\n";
      }
      const PoolStats &S = V.poolStats();
      Resp.StoreHits = S.StoreHits;
      Resp.StoreMisses = S.StoreMisses;
      // Load-time quarantine belongs to the daemon, not any one request;
      // surfacing it on every response keeps corruption visible to the
      // clients whose cache it degraded.
      Resp.StoreQuarantined =
          S.StoreQuarantined + static_cast<unsigned>(Store.quarantinedOnLoad());
      std::vector<FileReport> Files;
      Files.push_back({Q.File, std::move(Results)});
      PoolStats WithQuarantine = S;
      WithQuarantine.StoreQuarantined = Resp.StoreQuarantined;
      Resp.Json = jsonReport(Files, WithQuarantine, Resp.Exit,
                             SO.BackendLabels);
      std::fprintf(stderr,
                   "serve: request %u %s exit=%d hits=%u misses=%u "
                   "solve_s=%.2f\n",
                   Requests, Q.File.c_str(), Resp.Exit, Resp.StoreHits,
                   Resp.StoreMisses, S.SolveSeconds);
    }

    if (!writeFully(Client, frameServeResponse(Resp)))
      std::fprintf(stderr, "serve: request %u client went away mid-response\n",
                   Requests);
    close(Client);
  }

  close(ListenFd);
  unlink(SO.SocketPath.c_str());
  return 0;
}
