//===--- serve.cpp - Concurrent incremental verification daemon --------------===//
//
// Threading model (see also serve.h):
//
//   main thread          owns the listener, every client READ, admission
//                        control, and the signal/drain state machine. It
//                        never parses or solves anything, so a slow client
//                        can only ever cost it one poll slot.
//   session threads      ServeJobs of them, each with a one-job mailbox.
//                        A session builds a fresh Verifier + Scheduler per
//                        request (leasing warm workers from its own
//                        WarmFleet partition), solves, writes the response
//                        under a write deadline, and signals the main
//                        thread over the wake pipe.
//
// The client fd is read by the main thread until a full frame arrives,
// then owned by the session until its response is written, then closed by
// the main thread when it collects the finished slot. Exactly one thread
// touches the fd at a time.
//
//===----------------------------------------------------------------------===//

#include "store/serve.h"

#include "lang/parser.h"
#include "sched/dispatch.h"
#include "smt/sandbox.h"
#include "store/store.h"
#include "store/wire.h"
#include "verifier/report.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dryad;

namespace {

using Clock = std::chrono::steady_clock;

// --- two-stage signal plumbing -------------------------------------------
//
// First SIGINT/SIGTERM: set the drain flag and wake the event loop — the
// daemon stops accepting, finishes (or deadline-aborts) in-flight work,
// fsyncs the store, and exits 0. Second signal: the operator is insisting;
// take the async-signal-safe hard path (fsync, SIGKILL + reap the fleet,
// unlink the socket, _exit(130)).
std::atomic<bool> DrainRequested{false};
int SignalPipeWr = -1;

void serveDrainHandler(int) {
  if (DrainRequested.exchange(true))
    terminateNow();
  if (SignalPipeWr >= 0) {
    char C = 1;
    [[maybe_unused]] ssize_t N = write(SignalPipeWr, &C, 1);
  }
}

/// Binds a listening unix socket at \p Path. A live listener already there
/// is an error (two daemons would race the accept queue); a stale socket
/// file — connect refused — is unlinked and replaced. Returns -1 with a
/// message on \p Err.
int bindListener(const std::string &Path, int Backlog, std::string &Err) {
  struct sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long (max " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes): " + Path;
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());

  if (access(Path.c_str(), F_OK) == 0) {
    int Probe = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Probe >= 0) {
      int CR = connect(Probe, reinterpret_cast<struct sockaddr *>(&Addr),
                       sizeof(Addr));
      close(Probe);
      if (CR == 0) {
        Err = "a daemon is already serving " + Path;
        return -1;
      }
    }
    // Refused/failed connect: the last daemon died without unlinking
    // (kill -9). The socket file is a corpse; replace it.
    unlink(Path.c_str());
  }

  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Fd, Backlog) < 0) {
    Err = std::string("bind/listen ") + Path + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  return Fd;
}

void setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// One accepted connection the main thread is still reading (or, under
/// serveslow@N, deliberately stalling until its read deadline fires).
struct Conn {
  int Fd = -1;
  unsigned ConnNo = 0;
  std::string Buf;
  Clock::time_point ReadDeadline;
  bool Stalled = false;
};

/// A fully-read, admitted request: waiting in the queue or running on a
/// session. Owns the client fd from admission to collection.
struct Job {
  int ClientFd = -1;
  unsigned RequestNo = 0;
  ServeRequest Q;
};

/// Daemon-lifetime counters for DRYH1 health replies, written by session
/// threads and read by the main thread.
struct DaemonTotals {
  std::mutex Mu;
  unsigned Served = 0;
  unsigned Hits = 0;
  unsigned Misses = 0;
};

struct ServeShared; // fwd

/// One session thread and its mailbox. The main thread hands it one Job at
/// a time (Mu/Cv); the session flips Done and pokes the wake pipe when the
/// response is written. ActivePool (under PoolMu) is the drain hook: the
/// main thread can requestAbort() a request that outlives the drain
/// budget without ever touching the session's other state.
struct SessionSlot {
  unsigned Index = 0;
  std::thread Th;

  std::mutex Mu;
  std::condition_variable Cv;
  bool HasJob = false;
  bool Shutdown = false;
  Job J;

  std::mutex PoolMu;
  Scheduler *ActivePool = nullptr;

  std::atomic<bool> Done{false};
};

/// Everything a session thread needs, owned by runServeDaemon's frame.
struct ServeShared {
  const ServeDaemonOptions *SO = nullptr;
  VerifyOptions Base;
  ProofStore *Store = nullptr;
  WarmFleet *Fleet = nullptr;
  DaemonTotals Totals;
  int WakeWr = -1;
};

void wakeMain(int Fd) {
  char C = 1;
  [[maybe_unused]] ssize_t N = write(Fd, &C, 1);
}

/// The per-request work a session thread does: parse, verify on a fresh
/// per-request Scheduler (client-watch + wall deadline armed), assemble
/// the exact response the old sequential daemon sent, write it under the
/// response deadline.
void handleRequest(ServeShared &Sh, SessionSlot &S, const Job &J) {
  const ServeDaemonOptions &SO = *Sh.SO;
  ServeResponse Resp;
  bool MustRespond = true;
  Module M;
  DiagEngine Diags;
  if (!parseModule(J.Q.Source, M, Diags)) {
    // Mirror the local driver: parse failure is a genuine failure (exit 1)
    // with the diagnostics on stderr — relayed via the diag field.
    Resp.Exit = 1;
    Resp.Diag = J.Q.File + ":\n" + Diags.str();
  } else {
    WarmPoolOptions WPO;
    WPO.Warm = Sh.Base.WarmWorkers;
    WPO.RecycleAfter = Sh.Base.RecycleAfter;
    Scheduler Pool(std::max(1u, Sh.Base.Jobs), WPO, Sh.Fleet, S.Index);
    Pool.watchClient(J.ClientFd);
    if (SO.DeadlineMs != 0)
      Pool.setAbortDeadline(Clock::now() +
                            std::chrono::milliseconds(SO.DeadlineMs));
    {
      std::lock_guard<std::mutex> L(S.PoolMu);
      S.ActivePool = &Pool;
    }
    Verifier V(M, Sh.Base);
    V.setExternalStore(Sh.Store);
    V.setExternalPool(&Pool);
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    {
      std::lock_guard<std::mutex> L(S.PoolMu);
      S.ActivePool = nullptr;
    }

    switch (Pool.abortCause()) {
    case Scheduler::AbortCause::ClientGone:
      // Nobody is listening for an answer; the abort already SIGKILLed the
      // session's in-flight rungs and recycled its workers.
      std::fprintf(stderr,
                   "serve: request %u client hung up mid-solve; cancelled\n",
                   J.RequestNo);
      MustRespond = false;
      break;
    case Scheduler::AbortCause::Deadline:
      Resp.Exit = 3;
      Resp.Diag = "request deadline exceeded (" +
                  std::to_string(SO.DeadlineMs) + "ms); obligations aborted\n";
      std::fprintf(stderr, "serve: request %u hit the %ums deadline\n",
                   J.RequestNo, SO.DeadlineMs);
      break;
    case Scheduler::AbortCause::External:
      Resp.Exit = 3;
      Resp.Diag = "daemon draining; request aborted\n";
      std::fprintf(stderr, "serve: request %u aborted by drain\n",
                   J.RequestNo);
      break;
    case Scheduler::AbortCause::None: {
      if (Diags.hasErrors())
        Resp.Diag = Diags.str();
      Resp.Report = formatResults(J.Q.File, Results);
      bool AllVerified = true, AnyGenuine = false;
      classifyResults(Results, AllVerified, AnyGenuine);
      Resp.Exit = AllVerified ? 0 : AnyGenuine ? 1 : 3;
      // A cross-backend divergence poisons the whole request: whatever the
      // per-routine verdicts say, two solvers contradicted each other, so
      // the only honest answer is infrastructure failure.
      if (!V.divergences().empty()) {
        Resp.Exit = 3;
        for (const DivergenceAlarm &A : V.divergences())
          Resp.Diag += "backend divergence on '" + A.Obligation +
                       "': " + A.Detail + "\n";
      }
      // A fresh Scheduler per request means poolStats() IS the per-request
      // slice — no since() bookkeeping against a shared pool.
      const PoolStats &St = V.poolStats();
      Resp.StoreHits = St.StoreHits;
      Resp.StoreMisses = St.StoreMisses;
      // Load-time quarantine belongs to the daemon, not any one request;
      // surfacing it on every response keeps corruption visible to the
      // clients whose cache it degraded.
      Resp.StoreQuarantined =
          St.StoreQuarantined +
          static_cast<unsigned>(Sh.Store->quarantinedOnLoad());
      std::vector<FileReport> Files;
      Files.push_back({J.Q.File, std::move(Results)});
      PoolStats WithQuarantine = St;
      WithQuarantine.StoreQuarantined = Resp.StoreQuarantined;
      Resp.Json =
          jsonReport(Files, WithQuarantine, Resp.Exit, SO.BackendLabels);
      std::fprintf(stderr,
                   "serve: request %u %s exit=%d hits=%u misses=%u "
                   "solve_s=%.2f\n",
                   J.RequestNo, J.Q.File.c_str(), Resp.Exit, Resp.StoreHits,
                   Resp.StoreMisses, St.SolveSeconds);
      break;
    }
    }
  }

  // Count BEFORE answering: a client that pings right after its response
  // arrives must see itself in the served total.
  {
    std::lock_guard<std::mutex> L(Sh.Totals.Mu);
    ++Sh.Totals.Served;
    Sh.Totals.Hits += Resp.StoreHits;
    Sh.Totals.Misses += Resp.StoreMisses;
  }

  if (MustRespond) {
    std::string WErr;
    if (!writeFullyTimed(J.ClientFd, frameServeResponse(Resp),
                         SO.ReadTimeoutMs, WErr))
      std::fprintf(stderr, "serve: request %u response not delivered: %s\n",
                   J.RequestNo, WErr.c_str());
  }
}

void sessionMain(ServeShared &Sh, SessionSlot &S) {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(S.Mu);
      S.Cv.wait(L, [&] { return S.HasJob || S.Shutdown; });
      if (!S.HasJob)
        return; // shutdown with an empty mailbox
      J = std::move(S.J);
      S.HasJob = false;
    }
    handleRequest(Sh, S, J);
    S.Done.store(true, std::memory_order_release);
    wakeMain(Sh.WakeWr);
  }
}

} // namespace

int dryad::runServeDaemon(const ServeDaemonOptions &SO) {
  // A client that vanishes mid-response costs one failed write, never the
  // daemon.
  signal(SIGPIPE, SIG_IGN);

  ProofStore Store;
  std::string Err;
  if (!Store.open(SO.Verify.StorePath, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  Store.setInject(SO.Verify.Inject);

  unsigned Jobs = SO.ServeJobs;
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 2;
  }

  // Satellite of the concurrency work: the backlog used to be a hard-coded
  // 8, disconnected from how many clients the daemon can actually absorb.
  // Size it to the whole admission capacity (sessions + queue), floored at
  // the historical value.
  int Backlog = static_cast<int>(Jobs + SO.ServeQueue);
  if (Backlog < 8)
    Backlog = 8;
  int ListenFd = bindListener(SO.SocketPath, Backlog, Err);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  // The accept burst drains until EAGAIN; the listener must not block.
  setNonBlocking(ListenFd);

  // Arm the hard termination path (terminateNow): fsync targets, the pid
  // registry, the socket to unlink. Then REPLACE the default one-shot
  // handlers with the two-stage drain handler — first signal drains
  // gracefully, second one escalates to terminateNow.
  registerUnlinkOnTermination(SO.SocketPath);
  installTerminationHandlers(/*JournalFd=*/-1, Store.writerFd());
  int SignalPipe[2];
  int WakePipe[2];
  if (pipe(SignalPipe) != 0 || pipe(WakePipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    close(ListenFd);
    unlink(SO.SocketPath.c_str());
    return 2;
  }
  setNonBlocking(SignalPipe[0]);
  setNonBlocking(SignalPipe[1]);
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);
  DrainRequested.store(false);
  SignalPipeWr = SignalPipe[1];
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = serveDrainHandler;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);

  VerifyOptions Base = SO.Verify;
  Base.JournalPath.clear();
  Base.StorePath.clear(); // injected below; the verifier must not reopen it
  Base.Resume = false;
  // Sessions are threads: every solve must stay in a forked worker so no
  // session thread ever runs a solver in-process.
  Base.Isolate = true;

  // The cross-request warm fleet, partitioned by session slot so two
  // sessions never share a worker process.
  WarmFleet Fleet(Jobs);

  ServeShared Sh;
  Sh.SO = &SO;
  Sh.Base = Base;
  Sh.Store = &Store;
  Sh.Fleet = &Fleet;
  Sh.WakeWr = WakePipe[1];

  std::vector<std::unique_ptr<SessionSlot>> Slots;
  for (unsigned I = 0; I != Jobs; ++I) {
    Slots.push_back(std::make_unique<SessionSlot>());
    Slots.back()->Index = I;
  }
  for (auto &S : Slots)
    S->Th = std::thread(sessionMain, std::ref(Sh), std::ref(*S));

  std::fprintf(stderr,
               "serve: listening on %s (store %s, %zu cached keys, "
               "%u sessions, queue %u)\n",
               SO.SocketPath.c_str(), Store.path().c_str(), Store.size(),
               Jobs, SO.ServeQueue);

  const auto StartTime = Clock::now();
  std::vector<Conn> Reading;
  std::deque<Job> Queue;
  // Main-thread-only view of which slots hold a job (the fd to close at
  // collection); Done is the only cross-thread flag.
  std::vector<int> SlotFd(Jobs, -1);
  unsigned Requests = 0;
  unsigned Conns = 0;
  bool Draining = false;
  bool AcceptOpen = true;
  bool DrainAborted = false;
  Clock::time_point DrainDeadline;

  auto busyCount = [&] {
    unsigned N = 0;
    for (int Fd : SlotFd)
      if (Fd >= 0)
        ++N;
    return N;
  };
  auto sendBusy = [&](int Fd, const std::string &Reason, unsigned RetryMs) {
    ServeBusy B;
    B.RetryAfterMs = RetryMs;
    B.Reason = Reason;
    std::string WErr;
    writeFullyTimed(Fd, frameServeBusy(B), /*TimeoutMs=*/1000, WErr);
    close(Fd);
  };
  auto dispatch = [&] {
    while (!Queue.empty()) {
      unsigned Slot = Jobs;
      for (unsigned I = 0; I != Jobs; ++I)
        if (SlotFd[I] < 0 && !Slots[I]->Done.load(std::memory_order_acquire)) {
          Slot = I;
          break;
        }
      if (Slot == Jobs)
        return;
      Job J = std::move(Queue.front());
      Queue.pop_front();
      SlotFd[Slot] = J.ClientFd;
      {
        std::lock_guard<std::mutex> L(Slots[Slot]->Mu);
        Slots[Slot]->J = std::move(J);
        Slots[Slot]->HasJob = true;
      }
      Slots[Slot]->Cv.notify_one();
    }
  };
  auto closeListener = [&] {
    if (AcceptOpen) {
      close(ListenFd);
      AcceptOpen = false;
    }
  };

  // The retry hint an overloaded reply carries: long enough that a backoff
  // loop converges, short enough that a drained slot is picked up fast.
  const unsigned BusyRetryHintMs = 200;

  for (;;) {
    // Collect finished sessions: close the client fd, free the slot.
    for (unsigned I = 0; I != Jobs; ++I)
      if (SlotFd[I] >= 0 && Slots[I]->Done.load(std::memory_order_acquire)) {
        Slots[I]->Done.store(false, std::memory_order_relaxed);
        close(SlotFd[I]);
        SlotFd[I] = -1;
      }

    if (!Draining)
      dispatch();

    bool Capped = SO.MaxRequests != 0 && Requests >= SO.MaxRequests;
    if (Capped)
      closeListener();
    if ((Draining || Capped) && Queue.empty() && busyCount() == 0)
      break;

    // --- build the poll set ---
    std::vector<struct pollfd> PFs;
    PFs.push_back({SignalPipe[0], POLLIN, 0});
    PFs.push_back({WakePipe[0], POLLIN, 0});
    size_t ListenIdx = SIZE_MAX;
    if (AcceptOpen && !Draining && !Capped) {
      ListenIdx = PFs.size();
      PFs.push_back({ListenFd, POLLIN, 0});
    }
    size_t ConnBase = PFs.size();
    for (const Conn &C : Reading)
      // A stalled (serveslow) connection is watched for nothing: only its
      // read deadline can end it, which is the point of the fault.
      PFs.push_back({C.Fd, static_cast<short>(C.Stalled ? 0 : POLLIN), 0});

    int PollMs = -1;
    auto fold = [&](Clock::time_point At) {
      auto Rem = std::chrono::duration_cast<std::chrono::milliseconds>(
                     At - Clock::now())
                     .count();
      int Ms = Rem < 0 ? 0 : (Rem > 60000 ? 60000 : static_cast<int>(Rem));
      if (PollMs < 0 || Ms < PollMs)
        PollMs = Ms;
    };
    for (const Conn &C : Reading)
      fold(C.ReadDeadline);
    if (Draining)
      fold(DrainDeadline);

    int PR = poll(PFs.data(), PFs.size(), PollMs);
    if (PR < 0 && errno != EINTR) {
      std::fprintf(stderr, "error: poll: %s\n", std::strerror(errno));
      break;
    }

    // --- signals: enter drain ---
    if (PFs[0].revents & POLLIN) {
      char Junk[64];
      while (read(SignalPipe[0], Junk, sizeof(Junk)) > 0)
        ;
    }
    if (DrainRequested.load(std::memory_order_acquire) && !Draining) {
      Draining = true;
      DrainDeadline = Clock::now() + std::chrono::milliseconds(SO.DrainMs);
      closeListener();
      std::fprintf(stderr,
                   "serve: drain requested (%u in flight, %zu queued)\n",
                   busyCount(), Queue.size());
      // Queued requests will not be served: answer them with a retryable
      // busy so their clients go elsewhere instead of timing out.
      for (Job &J : Queue)
        sendBusy(J.ClientFd, "draining", BusyRetryHintMs);
      Queue.clear();
      // Half-read requests get the same hangup a restart would give them.
      for (Conn &C : Reading)
        close(C.Fd);
      Reading.clear();
      continue;
    }

    if (PFs[1].revents & POLLIN) {
      char Junk[64];
      while (read(WakePipe[0], Junk, sizeof(Junk)) > 0)
        ;
    }

    // --- drain deadline: abort the stragglers, once ---
    if (Draining && !DrainAborted && Clock::now() >= DrainDeadline) {
      DrainAborted = true;
      for (unsigned I = 0; I != Jobs; ++I)
        if (SlotFd[I] >= 0) {
          std::lock_guard<std::mutex> L(Slots[I]->PoolMu);
          if (Slots[I]->ActivePool)
            Slots[I]->ActivePool->requestAbort();
        }
    }

    // Snapshot per-connection readiness before anything mutates Reading:
    // Revents[K] belongs to the K'th connection of THIS poll round, in
    // order, even as entries are erased or appended below.
    std::vector<short> Revents;
    for (size_t I = ConnBase; I < PFs.size(); ++I)
      Revents.push_back(PFs[I].revents);

    // --- new connections ---
    if (ListenIdx != SIZE_MAX && (PFs[ListenIdx].revents & POLLIN)) {
      for (;;) {
        int Client = accept(ListenFd, nullptr, nullptr);
        if (Client < 0)
          break; // EAGAIN/EINTR: back to poll
        setNonBlocking(Client);
        ++Conns;
        Conn C;
        C.Fd = Client;
        C.ConnNo = Conns;
        C.ReadDeadline =
            Clock::now() + std::chrono::milliseconds(SO.ReadTimeoutMs);
        // serveslow@N: never read the Nth accepted connection — the
        // deterministic slow-loris. It must cost one fd until its read
        // deadline, and nothing else.
        C.Stalled = SO.Verify.Inject
                        .infraFaultFor(InfraFaultKind::ServeSlow, Conns)
                        .has_value();
        if (C.Stalled)
          std::fprintf(stderr,
                       "serve: connection %u stalled by injected fault "
                       "serveslow\n",
                       Conns);
        Reading.push_back(std::move(C));
      }
    }

    // --- progress on reading connections ---
    // RI walks the readiness snapshot in the original order; connections
    // accepted this round sit past the snapshot and read on the next poll.
    size_t RI = 0;
    for (size_t I = 0; I < Reading.size(); ++RI) {
      Conn &C = Reading[I];
      short Rev = RI < Revents.size() ? Revents[RI] : 0;
      bool Drop = false;
      bool Admitted = false;
      if (!C.Stalled && (Rev & (POLLIN | POLLHUP | POLLERR))) {
        char Buf[65536];
        ssize_t N = read(C.Fd, Buf, sizeof(Buf));
        if (N > 0) {
          C.Buf.append(Buf, static_cast<size_t>(N));
          std::string Payload;
          size_t Consumed = 0;
          int RReq = tryParseFrame(C.Buf, "DRYS1", Payload, Consumed);
          int RPing =
              RReq == 1 ? -1 : tryParseFrame(C.Buf, "DRYP1", Payload, Consumed);
          if (RReq == 1) {
            // A complete request frame: this is the admission point.
            ++Requests;
            unsigned RequestNo = Requests;
            ServeRequest Q;
            if (!decodeServeRequest(Payload, Q)) {
              std::fprintf(stderr, "serve: request %u malformed\n", RequestNo);
              Drop = true;
            } else if (SO.Verify.Inject.infraFaultFor(InfraFaultKind::ServeDrop,
                                                      RequestNo)) {
              // servedrop@N: hang up after reading the Nth request, before
              // answering — the deterministic stand-in for a daemon crash
              // mid-request, which the client's retry ladder must absorb.
              std::fprintf(
                  stderr,
                  "serve: request %u dropped by injected fault servedrop\n",
                  RequestNo);
              Drop = true;
            } else if (SO.Verify.Inject.infraFaultFor(InfraFaultKind::ServeBusy,
                                                      RequestNo) ||
                       (busyCount() == Jobs &&
                        Queue.size() >= SO.ServeQueue)) {
              // Admission control: every session busy and the queue at
              // capacity (or servebusy@N forcing the path) — answer with
              // the retryable busy frame instead of queueing unboundedly.
              std::fprintf(stderr, "serve: request %u refused: overloaded "
                                   "(%u busy, %zu queued)\n",
                           RequestNo, busyCount(), Queue.size());
              sendBusy(C.Fd, "overloaded", BusyRetryHintMs);
              C.Fd = -1; // sendBusy closed it
              Admitted = true; // taken off Reading either way
            } else {
              Job J;
              J.ClientFd = C.Fd;
              J.RequestNo = RequestNo;
              J.Q = std::move(Q);
              Queue.push_back(std::move(J));
              Admitted = true;
            }
          } else if (RPing == 1) {
            // DRYP1: health snapshot, answered inline — a ping must never
            // plan a verification or consume a session.
            ServeHealth H;
            H.UptimeMs = static_cast<unsigned long long>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - StartTime)
                    .count());
            {
              std::lock_guard<std::mutex> L(Sh.Totals.Mu);
              H.Served = Sh.Totals.Served;
              H.StoreHits = Sh.Totals.Hits;
              H.StoreMisses = Sh.Totals.Misses;
            }
            H.Active = busyCount();
            H.Queued = static_cast<unsigned>(Queue.size());
            H.StoreKeys = Store.size();
            H.StoreQuarantined =
                static_cast<unsigned>(Store.quarantinedOnLoad());
            std::string WErr;
            writeFullyTimed(C.Fd, frameServeHealth(H), /*TimeoutMs=*/1000,
                            WErr);
            Drop = true; // one ping per connection; close it
          } else if (RReq < 0 && RPing < 0) {
            std::fprintf(stderr,
                         "serve: connection %u sent an unrecognized frame\n",
                         C.ConnNo);
            Drop = true;
          }
          // else: incomplete frame — keep reading.
        } else if (N == 0 || (N < 0 && errno != EAGAIN && errno != EINTR)) {
          // Not counted as a request: a connect that hangs up without a
          // full frame is a readiness probe or a port scan, and must not
          // consume MaxRequests budget or a servedrop ordinal.
          std::fprintf(
              stderr,
              "serve: connection dropped before a full request\n");
          Drop = true;
        }
      }
      if (!Drop && !Admitted && Clock::now() >= C.ReadDeadline) {
        std::fprintf(stderr,
                     "serve: connection %u timed out before a full request "
                     "(%ums)\n",
                     C.ConnNo, SO.ReadTimeoutMs);
        Drop = true;
      }
      if (Drop || Admitted) {
        if (Drop && C.Fd >= 0)
          close(C.Fd);
        Reading.erase(Reading.begin() + static_cast<long>(I));
      } else {
        ++I;
      }
    }

    dispatch();
  }

  // --- shutdown: sessions, fleet, store, socket ---
  for (Conn &C : Reading)
    close(C.Fd);
  for (Job &J : Queue) // MaxRequests exit path; drain already emptied it
    close(J.ClientFd);
  for (auto &S : Slots) {
    {
      std::lock_guard<std::mutex> L(S->Mu);
      S->Shutdown = true;
    }
    S->Cv.notify_one();
  }
  for (auto &S : Slots)
    S->Th.join();
  for (unsigned I = 0; I != Jobs; ++I)
    if (SlotFd[I] >= 0)
      close(SlotFd[I]);
  Fleet.retireAll();
  if (Store.writerFd() >= 0)
    fsync(Store.writerFd());

  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  SignalPipeWr = -1;
  close(SignalPipe[0]);
  close(SignalPipe[1]);
  close(WakePipe[0]);
  close(WakePipe[1]);
  closeListener();
  unlink(SO.SocketPath.c_str());
  std::fprintf(stderr, "serve: exiting after %u requests%s\n", Requests,
               Draining ? " (drained)" : "");
  return 0;
}
