//===--- store.h - Crash-safe persistent proof store ------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed proof store: the per-run journal's
/// "content key -> outcome" mapping promoted to a durable cross-run cache —
/// a ccache for proofs. An obligation whose key is in the store with a
/// proved (unsat) verdict is answered instantly; everything else is
/// re-solved and the fresh outcome appended. Vacuity probe verdicts ride
/// along under the journal's `<key>:vacuity` sub-key protocol, so a cached
/// proof can never mask a vacuous contract.
///
/// On-disk layout — one append-only segment file:
///
///   DRYADSTORE v1 engine=<version>\n        <- header, line 1
///   <crc32-8hex> <journal JSONL record>\n   <- one record per line
///   ...
///
/// The record payload is exactly the journal's serialization
/// (Journal::serialize / parseLine), checksummed with CRC-32 over the JSON
/// text. Durability and recovery discipline:
///
///  * every append is taken under flock(2) LOCK_EX and is
///    write-then-flush-then-fsync, so a kill -9 costs at most the one
///    in-flight record and concurrent writers can never interleave a line;
///  * a header whose schema or engine version does not match is a *stale
///    store*: it is rotated aside (renamed to `<path>.stale`) and rebuilt
///    empty — old bytes are never reinterpreted under a new schema;
///  * a torn tail (final line without a newline, or an incomplete record)
///    is repaired at writer-open by truncating to the last durable record:
///    the torn obligation is simply re-solved;
///  * a complete line whose CRC does not match its payload is QUARANTINED:
///    it is skipped (never indexed, never trusted), counted, and the
///    obligation it hid is re-solved; compaction drops it from disk;
///  * compaction (`dryadv --store-compact`) rewrites later-records-win into
///    a fresh segment with write-then-fsync-then-rename, so a crash during
///    compaction leaves the old segment intact;
///  * `dryadv --store-verify` is the fsck: it reports torn tails, CRC
///    failures, and *divergence* — one obligation with both sat and unsat
///    valid records, compared across backend-qualified keys (`v1-x@z3` vs
///    `v1-x@cvc5` is the cross-solver soundness alarm) — without modifying
///    anything.
///
/// The storetorn@N / storecrc@N fault injections (smt/inject.h) emulate a
/// mid-write crash and silent corruption deterministically so every one of
/// these recovery paths is exercised in tests and CI.
///
/// Threading (the concurrent serve daemon shares ONE open store across all
/// session threads): open() is single-threaded; afterwards `put` is
/// serialized through an in-process writer mutex (on top of the cross-
/// process flock) and `lookup` is safe from any thread. Lookups resolve
/// against the base index — immutable after open() — plus a per-thread
/// overlay of this writer's post-open appends, synced by copying only
/// not-yet-seen records under a brief log lock. The writer performs its
/// write+fsync outside that log lock, so a store hit never blocks on a
/// writer's in-flight fsync.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_STORE_STORE_H
#define DRYAD_STORE_STORE_H

#include "smt/inject.h"
#include "verifier/journal.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dryad {

/// Bump when a change anywhere in the pipeline (translation, strengthening,
/// lowering) can change what a cached verdict MEANS without changing the
/// obligation's content key. Stores written by another engine version are
/// rebuilt, not misread.
extern const char *StoreEngineVersion;

/// What ProofStore::open / verifySegment found on disk.
struct StoreFsck {
  bool HeaderOk = false;      ///< magic + schema line parsed
  bool EngineMatch = false;   ///< header's engine version is ours
  std::string HeaderEngine;   ///< engine version the header names
  size_t ValidRecords = 0;    ///< CRC-clean, parseable records
  size_t DistinctKeys = 0;    ///< distinct keys among valid records
  size_t BadCrc = 0;          ///< complete lines whose CRC failed (quarantined)
  size_t Malformed = 0;       ///< CRC-clean lines whose JSON failed to parse
  bool TornTail = false;      ///< file ends mid-record
  size_t TornTailBytes = 0;   ///< bytes past the last durable record
  /// Backend-stripped keys carrying both a sat and an unsat valid record —
  /// from one backend re-answering differently, or from two backends
  /// contradicting each other on the identical obligation. Later-records-
  /// win resolves the lookup, but fsck surfaces the divergence: a proof and
  /// a refutation of the same content key should never coexist, whichever
  /// solvers produced them.
  std::vector<std::string> DivergentKeys;

  bool clean() const {
    return HeaderOk && EngineMatch && BadCrc == 0 && Malformed == 0 &&
           !TornTail && DivergentKeys.empty();
  }
};

class ProofStore {
public:
  ProofStore();
  ~ProofStore();
  ProofStore(const ProofStore &) = delete;
  ProofStore &operator=(const ProofStore &) = delete;

  /// Opens \p Path for lookups and appends, creating it (with a fresh
  /// header) if missing. A stale-engine store is rotated to `<path>.stale`
  /// and rebuilt; a torn tail is truncated away. Returns false and fills
  /// \p Err only on I/O failure — corruption is quarantined, never fatal.
  bool open(const std::string &Path, std::string &Err);

  bool isOpen() const { return Fd.load(std::memory_order_relaxed) >= 0; }
  const std::string &path() const { return Path; }

  /// The most recent valid record for \p Key, or nullptr. Quarantined
  /// (CRC-failed) records are invisible here by construction. Safe to call
  /// from any thread; the returned pointer is stable until this same
  /// thread's next lookup on this store (callers copy immediately).
  const JournalRecord *lookup(const std::string &Key) const;

  /// Appends one record (flock + write + flush + fsync) and updates the
  /// index. Append failures flip the store to read-only lookups (Degraded)
  /// rather than failing the run: a broken cache must never fail a proof.
  /// Safe to call from any thread; appends are serialized.
  void put(const JournalRecord &R);

  /// Number of distinct keys indexed (base records plus live appends).
  size_t size() const;

  /// Records quarantined (bad CRC / unparseable payload) while loading.
  size_t quarantinedOnLoad() const { return Quarantined; }
  /// True when the writer died (append error or injected storetorn crash);
  /// lookups still work, puts are dropped.
  bool degraded() const { return Degraded.load(std::memory_order_relaxed); }

  /// Raw fd of the segment writer, or -1 — for the async-signal-safe
  /// termination handler (fsync only).
  int writerFd() const { return Fd.load(std::memory_order_relaxed); }

  /// Arms deterministic fault injection for this writer instance:
  /// storetorn@N tears the Nth put mid-record and kills the writer,
  /// storecrc@N corrupts the Nth put's CRC (see smt/inject.h).
  void setInject(const FaultPlan &Plan) { Inject = Plan; }

  /// Later-records-win compaction: rewrites \p Path's winning records into
  /// a fresh segment via write-then-fsync-then-rename. Quarantined and torn
  /// bytes are dropped; verdicts are otherwise identical before and after.
  /// Returns false and fills \p Err on I/O failure.
  static bool compact(const std::string &Path, std::string &Err);

  /// Read-only fsck of \p Path (no repair, no truncation). A missing file
  /// reports HeaderOk = false.
  static StoreFsck verifySegment(const std::string &Path);

  /// Human-readable fsck summary, one finding per line.
  static std::string formatFsck(const StoreFsck &F);

  /// One record line as stored on disk: "<crc32> <json>\n". Exposed for
  /// tests (and for handcrafting corrupt stores in them).
  static std::string encodeRecord(const JournalRecord &R);

  /// The header line for a fresh segment.
  static std::string headerLine();

private:
  /// Scans the segment, fills the index, counts quarantine, and returns the
  /// byte offset just past the last durable line (the truncation point for
  /// torn-tail repair).
  size_t loadSegment(const std::string &Bytes);

  std::string Path;
  std::atomic<int> Fd{-1};
  std::atomic<bool> Degraded{false};
  size_t Quarantined = 0; ///< written by open() only
  unsigned Puts = 0; ///< appends attempted by this writer (injection
                     ///< ordinal); guarded by IoMu
  FaultPlan Inject;

  /// Keys this instance under the thread-local reader overlays, so an
  /// overlay can never outlive its store into a same-address successor.
  uint64_t InstanceId;

  /// The on-disk records at load time. Immutable after open(): readers hit
  /// it lock-free from any thread.
  std::unordered_map<std::string, JournalRecord> BaseIndex;

  /// Serializes the disk append (write + fsync + injections). Held for the
  /// duration of the I/O, which is why readers must never need it.
  mutable std::mutex IoMu;
  /// Guards AppendLog growth and the key-count bookkeeping. Held only for
  /// in-memory copies — the brief lock reader syncs take.
  mutable std::mutex LogMu;
  /// Records appended by this writer since open, in append order. Readers
  /// replay a suffix of it into their thread-local overlay.
  std::vector<JournalRecord> AppendLog;
  /// Published size of AppendLog: readers check it without LogMu.
  std::atomic<size_t> AppendSeq{0};
  std::unordered_set<std::string> AppendedKeys; ///< guarded by LogMu
  size_t NewKeys = 0; ///< appended keys absent from BaseIndex; LogMu
};

} // namespace dryad

#endif // DRYAD_STORE_STORE_H
