//===--- wire.cpp - Serve-protocol framing -----------------------------------===//

#include "store/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <time.h>
#include <unistd.h>

using namespace dryad;

namespace {

/// `<name> <len>\n<bytes>\n` — the byte-counted field encoding. No quoting:
/// the length says exactly how many payload bytes follow.
void putField(std::string &Out, const char *Name, const std::string &Bytes) {
  Out += Name;
  Out += ' ';
  Out += std::to_string(Bytes.size());
  Out += '\n';
  Out += Bytes;
  Out += '\n';
}

/// Consumes one `<name> <len>\n<bytes>\n` field at \p Pos. Returns false
/// when the name does not match or the field is truncated/malformed.
bool getField(const std::string &In, size_t &Pos, const char *Name,
              std::string &Bytes) {
  size_t NameLen = std::strlen(Name);
  if (In.compare(Pos, NameLen, Name) != 0 || Pos + NameLen >= In.size() ||
      In[Pos + NameLen] != ' ')
    return false;
  size_t LenStart = Pos + NameLen + 1;
  size_t Nl = In.find('\n', LenStart);
  if (Nl == std::string::npos)
    return false;
  char *End = nullptr;
  unsigned long Len = std::strtoul(In.c_str() + LenStart, &End, 10);
  if (End != In.c_str() + Nl)
    return false;
  size_t DataStart = Nl + 1;
  if (DataStart + Len + 1 > In.size() || In[DataStart + Len] != '\n')
    return false;
  Bytes.assign(In, DataStart, Len);
  Pos = DataStart + Len + 1;
  return true;
}

std::string frame(const char *Magic, const std::string &Payload) {
  std::string Out = Magic;
  Out += '\n';
  Out += std::to_string(Payload.size());
  Out += '\n';
  Out += Payload;
  return Out;
}

double nowMs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return Ts.tv_sec * 1000.0 + Ts.tv_nsec / 1e6;
}

} // namespace

std::string dryad::frameServeRequest(const ServeRequest &Q) {
  std::string P;
  putField(P, "file", Q.File);
  putField(P, "source", Q.Source);
  return frame("DRYS1", P);
}

bool dryad::decodeServeRequest(const std::string &Payload, ServeRequest &Q) {
  size_t Pos = 0;
  return getField(Payload, Pos, "file", Q.File) &&
         getField(Payload, Pos, "source", Q.Source) && Pos == Payload.size();
}

std::string dryad::frameServeResponse(const ServeResponse &R) {
  std::string P;
  putField(P, "exit", std::to_string(R.Exit));
  putField(P, "hits", std::to_string(R.StoreHits));
  putField(P, "misses", std::to_string(R.StoreMisses));
  putField(P, "quarantined", std::to_string(R.StoreQuarantined));
  putField(P, "report", R.Report);
  putField(P, "json", R.Json);
  putField(P, "diag", R.Diag);
  return frame("DRYT1", P);
}

bool dryad::decodeServeResponse(const std::string &Payload, ServeResponse &R) {
  size_t Pos = 0;
  std::string Exit, Hits, Misses, Quar;
  if (!getField(Payload, Pos, "exit", Exit) ||
      !getField(Payload, Pos, "hits", Hits) ||
      !getField(Payload, Pos, "misses", Misses) ||
      !getField(Payload, Pos, "quarantined", Quar) ||
      !getField(Payload, Pos, "report", R.Report) ||
      !getField(Payload, Pos, "json", R.Json) ||
      !getField(Payload, Pos, "diag", R.Diag) || Pos != Payload.size())
    return false;
  R.Exit = std::atoi(Exit.c_str());
  R.StoreHits = static_cast<unsigned>(std::strtoul(Hits.c_str(), nullptr, 10));
  R.StoreMisses =
      static_cast<unsigned>(std::strtoul(Misses.c_str(), nullptr, 10));
  R.StoreQuarantined =
      static_cast<unsigned>(std::strtoul(Quar.c_str(), nullptr, 10));
  return true;
}

std::string dryad::frameServeBusy(const ServeBusy &B) {
  std::string P;
  putField(P, "retryms", std::to_string(B.RetryAfterMs));
  putField(P, "reason", B.Reason);
  return frame("DRYE1", P);
}

bool dryad::decodeServeBusy(const std::string &Payload, ServeBusy &B) {
  size_t Pos = 0;
  std::string Retry;
  if (!getField(Payload, Pos, "retryms", Retry) ||
      !getField(Payload, Pos, "reason", B.Reason) || Pos != Payload.size())
    return false;
  B.RetryAfterMs =
      static_cast<unsigned>(std::strtoul(Retry.c_str(), nullptr, 10));
  return true;
}

std::string dryad::framePingRequest() { return frame("DRYP1", ""); }

std::string dryad::frameServeHealth(const ServeHealth &H) {
  std::string P;
  putField(P, "uptimems", std::to_string(H.UptimeMs));
  putField(P, "served", std::to_string(H.Served));
  putField(P, "active", std::to_string(H.Active));
  putField(P, "queued", std::to_string(H.Queued));
  putField(P, "keys", std::to_string(H.StoreKeys));
  putField(P, "hits", std::to_string(H.StoreHits));
  putField(P, "misses", std::to_string(H.StoreMisses));
  putField(P, "quarantined", std::to_string(H.StoreQuarantined));
  return frame("DRYH1", P);
}

bool dryad::decodeServeHealth(const std::string &Payload, ServeHealth &H) {
  size_t Pos = 0;
  std::string Up, Served, Active, Queued, Keys, Hits, Misses, Quar;
  if (!getField(Payload, Pos, "uptimems", Up) ||
      !getField(Payload, Pos, "served", Served) ||
      !getField(Payload, Pos, "active", Active) ||
      !getField(Payload, Pos, "queued", Queued) ||
      !getField(Payload, Pos, "keys", Keys) ||
      !getField(Payload, Pos, "hits", Hits) ||
      !getField(Payload, Pos, "misses", Misses) ||
      !getField(Payload, Pos, "quarantined", Quar) || Pos != Payload.size())
    return false;
  H.UptimeMs = std::strtoull(Up.c_str(), nullptr, 10);
  H.Served = static_cast<unsigned>(std::strtoul(Served.c_str(), nullptr, 10));
  H.Active = static_cast<unsigned>(std::strtoul(Active.c_str(), nullptr, 10));
  H.Queued = static_cast<unsigned>(std::strtoul(Queued.c_str(), nullptr, 10));
  H.StoreKeys = std::strtoull(Keys.c_str(), nullptr, 10);
  H.StoreHits = static_cast<unsigned>(std::strtoul(Hits.c_str(), nullptr, 10));
  H.StoreMisses =
      static_cast<unsigned>(std::strtoul(Misses.c_str(), nullptr, 10));
  H.StoreQuarantined =
      static_cast<unsigned>(std::strtoul(Quar.c_str(), nullptr, 10));
  return true;
}

int dryad::tryParseFrame(const std::string &Buf, const char *Magic,
                         std::string &Payload, size_t &Consumed) {
  size_t MagicLen = std::strlen(Magic);
  // Reject as soon as the prefix can no longer become `<Magic>\n`.
  if (Buf.compare(0, std::min(Buf.size(), MagicLen), Magic,
                  std::min(Buf.size(), MagicLen)) != 0)
    return -1;
  if (Buf.size() <= MagicLen)
    return 0;
  if (Buf[MagicLen] != '\n')
    return -1;
  size_t LenStart = MagicLen + 1;
  size_t Nl = Buf.find('\n', LenStart);
  if (Nl == std::string::npos)
    return Buf.size() - LenStart > 20 ? -1 : 0; // length line is short
  char *End = nullptr;
  unsigned long Len = std::strtoul(Buf.c_str() + LenStart, &End, 10);
  if (End == Buf.c_str() + LenStart || End != Buf.c_str() + Nl)
    return -1;
  if (Buf.size() < Nl + 1 + Len)
    return 0;
  Payload.assign(Buf, Nl + 1, Len);
  Consumed = Nl + 1 + Len;
  return 1;
}

bool dryad::writeFully(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off != Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool dryad::writeFullyTimed(int Fd, const std::string &Data,
                            unsigned TimeoutMs, std::string &Err) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  double Deadline = nowMs() + TimeoutMs;
  size_t Off = 0;
  bool Ok = true;
  while (Off != Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      Err = std::string("write: ") + std::strerror(errno);
      Ok = false;
      break;
    }
    double Left = Deadline - nowMs();
    if (Left <= 0) {
      Err = "write timed out after " + std::to_string(TimeoutMs) + "ms";
      Ok = false;
      break;
    }
    struct pollfd Pfd = {Fd, POLLOUT, 0};
    int PR = poll(&Pfd, 1, static_cast<int>(Left) + 1);
    if (PR < 0 && errno != EINTR) {
      Err = std::string("poll: ") + std::strerror(errno);
      Ok = false;
      break;
    }
  }
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags);
  return Ok;
}

bool dryad::readFrameAnyOf(int Fd, const char *const *Magics, size_t Count,
                           size_t &Which, std::string &Payload,
                           unsigned TimeoutMs, std::string &Err) {
  std::string Buf;
  double Deadline = nowMs() + TimeoutMs;
  for (;;) {
    // Try every accepted magic against the buffered prefix: a match wins, a
    // uniform reject is malformed, and "need more bytes" on any keeps
    // reading (the magics differ within their first 5 bytes, so at most one
    // can ever reach a full parse).
    size_t Consumed = 0;
    bool AnyIncomplete = false;
    int Parsed = -1;
    for (size_t I = 0; I != Count; ++I) {
      Parsed = tryParseFrame(Buf, Magics[I], Payload, Consumed);
      if (Parsed == 1) {
        Which = I;
        return true;
      }
      if (Parsed == 0)
        AnyIncomplete = true;
    }
    if (!AnyIncomplete) {
      Err = "malformed frame (expected " + std::string(Magics[0]) + ")";
      return false;
    }
    double Left = Deadline - nowMs();
    if (Left <= 0) {
      Err = "timed out after " + std::to_string(TimeoutMs) + "ms";
      return false;
    }
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int PR = poll(&Pfd, 1, static_cast<int>(Left) + 1);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    if (PR == 0)
      continue; // deadline re-checked at loop top
    char Chunk[65536];
    ssize_t N = read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Err = "connection closed mid-frame";
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool dryad::readFrame(int Fd, const char *Magic, std::string &Payload,
                      unsigned TimeoutMs, std::string &Err) {
  const char *Magics[1] = {Magic};
  size_t Which = 0;
  return readFrameAnyOf(Fd, Magics, 1, Which, Payload, TimeoutMs, Err);
}
