//===--- wire.cpp - Serve-protocol framing -----------------------------------===//

#include "store/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <time.h>
#include <unistd.h>

using namespace dryad;

namespace {

/// `<name> <len>\n<bytes>\n` — the byte-counted field encoding. No quoting:
/// the length says exactly how many payload bytes follow.
void putField(std::string &Out, const char *Name, const std::string &Bytes) {
  Out += Name;
  Out += ' ';
  Out += std::to_string(Bytes.size());
  Out += '\n';
  Out += Bytes;
  Out += '\n';
}

/// Consumes one `<name> <len>\n<bytes>\n` field at \p Pos. Returns false
/// when the name does not match or the field is truncated/malformed.
bool getField(const std::string &In, size_t &Pos, const char *Name,
              std::string &Bytes) {
  size_t NameLen = std::strlen(Name);
  if (In.compare(Pos, NameLen, Name) != 0 || Pos + NameLen >= In.size() ||
      In[Pos + NameLen] != ' ')
    return false;
  size_t LenStart = Pos + NameLen + 1;
  size_t Nl = In.find('\n', LenStart);
  if (Nl == std::string::npos)
    return false;
  char *End = nullptr;
  unsigned long Len = std::strtoul(In.c_str() + LenStart, &End, 10);
  if (End != In.c_str() + Nl)
    return false;
  size_t DataStart = Nl + 1;
  if (DataStart + Len + 1 > In.size() || In[DataStart + Len] != '\n')
    return false;
  Bytes.assign(In, DataStart, Len);
  Pos = DataStart + Len + 1;
  return true;
}

std::string frame(const char *Magic, const std::string &Payload) {
  std::string Out = Magic;
  Out += '\n';
  Out += std::to_string(Payload.size());
  Out += '\n';
  Out += Payload;
  return Out;
}

double nowMs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return Ts.tv_sec * 1000.0 + Ts.tv_nsec / 1e6;
}

} // namespace

std::string dryad::frameServeRequest(const ServeRequest &Q) {
  std::string P;
  putField(P, "file", Q.File);
  putField(P, "source", Q.Source);
  return frame("DRYS1", P);
}

bool dryad::decodeServeRequest(const std::string &Payload, ServeRequest &Q) {
  size_t Pos = 0;
  return getField(Payload, Pos, "file", Q.File) &&
         getField(Payload, Pos, "source", Q.Source) && Pos == Payload.size();
}

std::string dryad::frameServeResponse(const ServeResponse &R) {
  std::string P;
  putField(P, "exit", std::to_string(R.Exit));
  putField(P, "hits", std::to_string(R.StoreHits));
  putField(P, "misses", std::to_string(R.StoreMisses));
  putField(P, "quarantined", std::to_string(R.StoreQuarantined));
  putField(P, "report", R.Report);
  putField(P, "json", R.Json);
  putField(P, "diag", R.Diag);
  return frame("DRYT1", P);
}

bool dryad::decodeServeResponse(const std::string &Payload, ServeResponse &R) {
  size_t Pos = 0;
  std::string Exit, Hits, Misses, Quar;
  if (!getField(Payload, Pos, "exit", Exit) ||
      !getField(Payload, Pos, "hits", Hits) ||
      !getField(Payload, Pos, "misses", Misses) ||
      !getField(Payload, Pos, "quarantined", Quar) ||
      !getField(Payload, Pos, "report", R.Report) ||
      !getField(Payload, Pos, "json", R.Json) ||
      !getField(Payload, Pos, "diag", R.Diag) || Pos != Payload.size())
    return false;
  R.Exit = std::atoi(Exit.c_str());
  R.StoreHits = static_cast<unsigned>(std::strtoul(Hits.c_str(), nullptr, 10));
  R.StoreMisses =
      static_cast<unsigned>(std::strtoul(Misses.c_str(), nullptr, 10));
  R.StoreQuarantined =
      static_cast<unsigned>(std::strtoul(Quar.c_str(), nullptr, 10));
  return true;
}

int dryad::tryParseFrame(const std::string &Buf, const char *Magic,
                         std::string &Payload, size_t &Consumed) {
  size_t MagicLen = std::strlen(Magic);
  // Reject as soon as the prefix can no longer become `<Magic>\n`.
  if (Buf.compare(0, std::min(Buf.size(), MagicLen), Magic,
                  std::min(Buf.size(), MagicLen)) != 0)
    return -1;
  if (Buf.size() <= MagicLen)
    return 0;
  if (Buf[MagicLen] != '\n')
    return -1;
  size_t LenStart = MagicLen + 1;
  size_t Nl = Buf.find('\n', LenStart);
  if (Nl == std::string::npos)
    return Buf.size() - LenStart > 20 ? -1 : 0; // length line is short
  char *End = nullptr;
  unsigned long Len = std::strtoul(Buf.c_str() + LenStart, &End, 10);
  if (End == Buf.c_str() + LenStart || End != Buf.c_str() + Nl)
    return -1;
  if (Buf.size() < Nl + 1 + Len)
    return 0;
  Payload.assign(Buf, Nl + 1, Len);
  Consumed = Nl + 1 + Len;
  return 1;
}

bool dryad::writeFully(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off != Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool dryad::readFrame(int Fd, const char *Magic, std::string &Payload,
                      unsigned TimeoutMs, std::string &Err) {
  std::string Buf;
  double Deadline = nowMs() + TimeoutMs;
  for (;;) {
    size_t Consumed = 0;
    int Parsed = tryParseFrame(Buf, Magic, Payload, Consumed);
    if (Parsed == 1)
      return true;
    if (Parsed == -1) {
      Err = "malformed frame (expected " + std::string(Magic) + ")";
      return false;
    }
    double Left = Deadline - nowMs();
    if (Left <= 0) {
      Err = "timed out after " + std::to_string(TimeoutMs) + "ms";
      return false;
    }
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int PR = poll(&Pfd, 1, static_cast<int>(Left) + 1);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    if (PR == 0)
      continue; // deadline re-checked at loop top
    char Chunk[65536];
    ssize_t N = read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Err = "connection closed mid-frame";
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}
