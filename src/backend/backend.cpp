//===--- backend.cpp - Pluggable solver backends ----------------------------===//

#include "backend/backend.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <new>

#include <fcntl.h>
#include <poll.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <z3++.h>

using namespace dryad;

//===----------------------------------------------------------------------===//
// BackendSpec parsing
//===----------------------------------------------------------------------===//

static bool validBackendName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '-' && C != '_' &&
        C != '.')
      return false;
  return true;
}

bool BackendSpec::parse(const std::string &Text, BackendSpec &Out,
                        std::string &Err) {
  size_t Colon = Text.find(':');
  Out.Name = Text.substr(0, Colon);
  Out.Path = Colon == std::string::npos ? "" : Text.substr(Colon + 1);
  if (!validBackendName(Out.Name)) {
    Err = "bad backend name '" + Out.Name +
          "' (expected NAME[:PATH], NAME from [A-Za-z0-9._-])";
    return false;
  }
  if (Colon != std::string::npos && Out.Path.empty()) {
    Err = "backend '" + Out.Name + ":' has an empty path";
    return false;
  }
  return true;
}

bool BackendSpec::parseList(const std::string &Text,
                            std::vector<BackendSpec> &Out, std::string &Err) {
  Out.clear();
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Item = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    BackendSpec S;
    if (!parse(Item, S, Err))
      return false;
    for (const BackendSpec &Prev : Out)
      if (Prev.Name == S.Name) {
        Err = "duplicate backend name '" + S.Name +
              "' (names identify cache entries and portfolio rungs)";
        return false;
      }
    Out.push_back(std::move(S));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  if (Out.empty()) {
    Err = "empty backend list";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Z3ApiBackend: the historical in-process path, verbatim
//===----------------------------------------------------------------------===//

namespace {

class Z3ApiBackend final : public Backend {
  BackendSpec Spec;

public:
  explicit Z3ApiBackend(BackendSpec S) : Spec(std::move(S)) {}
  const BackendSpec &spec() const override { return Spec; }
  BackendCaps caps() const override { return {true, true}; }
  SmtResult solve(const SandboxRequest &Req) override;
};

SmtResult Z3ApiBackend::solve(const SandboxRequest &Req) {
  SmtResult R;
  try {
    z3::context Ctx;
    z3::solver Solver(Ctx);
    Solver.from_string(Req.Smt2.c_str());
    z3::params P(Ctx);
    P.set("timeout", Req.TimeoutMs == 0 ? 4294967295u : Req.TimeoutMs);
    if (Req.HasSeed)
      P.set("random_seed", Req.Seed);
    Solver.set(P);
    z3::check_result CR = Solver.check();
    if (CR == z3::unsat) {
      R.Status = SmtStatus::Unsat;
    } else if (CR == z3::sat) {
      R.Status = SmtStatus::Sat;
      z3::model Mdl = Solver.get_model();
      std::string Text;
      for (unsigned J = 0; J != Mdl.num_consts(); ++J) {
        z3::func_decl D = Mdl.get_const_decl(J);
        std::string Name = D.name().str();
        // Same counterexample filter as the in-process path: scalar
        // program/spec constants only, no field arrays or quantifier
        // witnesses.
        if (Name.rfind("fld.", 0) == 0 || Name.rfind("qa!", 0) == 0 ||
            Name.rfind("qb!", 0) == 0 || Name.rfind("qs!", 0) == 0 ||
            Name.rfind("mi!", 0) == 0)
          continue;
        z3::expr Val = Mdl.get_const_interp(D);
        if (!Val.is_numeral() && !Val.is_bool())
          continue;
        Text += Name + " = " + Val.to_string() + "; ";
      }
      R.ModelText = Text;
    } else {
      R.Status = SmtStatus::Unknown;
      R.Detail = Solver.reason_unknown();
      R.ModelText = R.Detail;
      R.Failure = classifyUnknownReason(R.Detail);
    }
  } catch (const z3::exception &E) {
    R.Status = SmtStatus::Unknown;
    R.Detail = E.msg();
    R.ModelText = R.Detail;
    R.Failure = classifyUnknownReason(R.Detail);
    if (R.Failure == FailureKind::ResourceOut)
      _exit(WorkerExitOom); // don't trust allocation for the payload
  } catch (const std::bad_alloc &) {
    _exit(WorkerExitOom);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// PipeBackend: exec an external SMT-LIB2 solver
//===----------------------------------------------------------------------===//

/// Argument vector for one solve. Known solvers get their native timeout
/// and seed flags (so a healthy solver reports its own `unknown` before the
/// parent's wall-clock SIGKILL lands); anything else is a bare exec of a
/// benchmark-on-stdin solver.
std::vector<std::string> solverArgv(const BackendSpec &Spec,
                                    const SandboxRequest &Req) {
  std::string Bin = Spec.Path.empty() ? Spec.Name : Spec.Path;
  std::vector<std::string> Argv;
  if (Spec.Name == "cvc5" || Spec.Name == "cvc4") {
    Argv = {Bin, "--lang", "smt2", "--force-logic=ALL", "-q"};
    if (Req.TimeoutMs != 0)
      Argv.push_back("--tlimit=" + std::to_string(Req.TimeoutMs));
    if (Req.HasSeed)
      Argv.push_back("--seed=" + std::to_string(Req.Seed));
  } else if (Spec.Name == "z3" || Spec.Name.rfind("z3-", 0) == 0) {
    // A second z3 *binary* (e.g. a different release pinned via PATH).
    Argv = {Bin, "-in", "-smt2"};
    if (Req.TimeoutMs != 0)
      Argv.push_back("-T:" + std::to_string((Req.TimeoutMs + 999) / 1000));
    if (Req.HasSeed) {
      Argv.push_back("sat.random_seed=" + std::to_string(Req.Seed));
      Argv.push_back("smt.random_seed=" + std::to_string(Req.Seed));
    }
  } else {
    Argv = {Bin};
  }
  return Argv;
}

class PipeBackend final : public Backend {
  BackendSpec Spec;

public:
  explicit PipeBackend(BackendSpec S) : Spec(std::move(S)) {}
  const BackendSpec &spec() const override { return Spec; }
  BackendCaps caps() const override { return {false, false}; }
  SmtResult solve(const SandboxRequest &Req) override;
};

SmtResult crashResult(const std::string &Detail) {
  SmtResult R;
  R.Status = SmtStatus::Unknown;
  R.Failure = FailureKind::SolverCrash;
  R.Detail = Detail;
  R.ModelText = Detail;
  return R;
}

/// First whitespace-trimmed line of \p Text, bounded for failure reports.
std::string firstLine(const std::string &Text) {
  size_t B = Text.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = Text.find('\n', B);
  std::string Line = Text.substr(B, E == std::string::npos ? E : E - B);
  while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
    Line.pop_back();
  if (Line.size() > 200)
    Line.resize(200);
  return Line;
}

SmtResult PipeBackend::solve(const SandboxRequest &Req) {
  int In[2], Out[2];
  if (pipe(In) != 0)
    return crashResult(std::string("backend '") + Spec.str() +
                       "' pipe: " + std::strerror(errno));
  if (pipe(Out) != 0) {
    close(In[0]);
    close(In[1]);
    return crashResult(std::string("backend '") + Spec.str() +
                       "' pipe: " + std::strerror(errno));
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    close(In[0]);
    close(In[1]);
    close(Out[0]);
    close(Out[1]);
    return crashResult(std::string("backend '") + Spec.str() +
                       "' fork: " + std::strerror(errno));
  }
  if (Pid == 0) {
    // The external solver, a grandchild of the scheduler. Tied to this
    // worker's life: a portfolio-loser or deadline SIGKILL of the worker
    // must never leak a still-running solver.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() == 1)
      _exit(127); // the worker died before the prctl took
    dup2(In[0], 0);
    dup2(Out[1], 1);
    dup2(Out[1], 2); // merged: diagnostics land in the failure detail
    close(In[0]);
    close(In[1]);
    close(Out[0]);
    close(Out[1]);
    std::vector<std::string> Args = solverArgv(Spec, Req);
    std::vector<char *> Argv;
    for (std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    execvp(Argv[0], Argv.data());
    _exit(127);
  }
  close(In[0]);
  close(Out[1]);

  // Feed the benchmark, then close stdin so the solver sees EOF. The solver
  // may exit before reading everything (a parse error on line one): the
  // write then takes EPIPE, which is fine — the verdict scan below decides.
  // SIGPIPE is ignored around the write only; the worker's own response
  // writes keep their die-on-orphaned-pipe default.
  {
    struct sigaction Ign, Old;
    std::memset(&Ign, 0, sizeof(Ign));
    Ign.sa_handler = SIG_IGN;
    sigemptyset(&Ign.sa_mask);
    sigaction(SIGPIPE, &Ign, &Old);
    size_t Off = 0;
    std::string Query = Req.Smt2;
    if (Query.empty() || Query.back() != '\n')
      Query += '\n';
    // toSmt2() benchmarks already end in (check-sat); only bare assertion
    // scripts need one appended, and never a second (a duplicate would make
    // the solver check twice).
    if (Query.find("(check-sat)") == std::string::npos)
      Query += "(check-sat)\n";
    while (Off < Query.size()) {
      ssize_t N = write(In[1], Query.data() + Off, Query.size() - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      Off += static_cast<size_t>(N);
    }
    sigaction(SIGPIPE, &Old, nullptr);
  }
  close(In[1]);

  std::string Output;
  char Buf[4096];
  for (;;) {
    ssize_t N = read(Out[0], Buf, sizeof(Buf));
    if (N > 0) {
      Output.append(Buf, static_cast<size_t>(N));
    } else if (N == 0) {
      break;
    } else if (errno != EINTR) {
      break;
    }
  }
  close(Out[0]);
  int WStatus = 0;
  while (waitpid(Pid, &WStatus, 0) < 0 && errno == EINTR)
    ;

  // Scan for the verdict: the first line that is exactly sat/unsat/unknown.
  // Later lines are ignored — some solvers echo diagnostics after it.
  SmtResult R;
  size_t Pos = 0;
  std::string Verdict;
  while (Pos < Output.size()) {
    size_t Nl = Output.find('\n', Pos);
    std::string Line =
        Output.substr(Pos, Nl == std::string::npos ? Nl : Nl - Pos);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line == "sat" || Line == "unsat" || Line == "unknown") {
      Verdict = Line;
      break;
    }
    if (Nl == std::string::npos)
      break;
    Pos = Nl + 1;
  }

  if (Verdict == "unsat") {
    R.Status = SmtStatus::Unsat;
  } else if (Verdict == "sat") {
    R.Status = SmtStatus::Sat;
    // Pipe backends answer the decision problem only; counterexample
    // values stay a Z3-API capability.
    R.ModelText =
        "counterexample values unavailable over the '" + Spec.Name +
        "' pipe backend";
  } else if (Verdict == "unknown") {
    R.Status = SmtStatus::Unknown;
    R.Detail = firstLine(Output.substr(0, Output.find("unknown")));
    if (R.Detail.empty())
      R.Detail = firstLine(Output.substr(Output.find("unknown") + 7));
    if (R.Detail.empty())
      R.Detail = "backend '" + Spec.Name + "' answered unknown";
    // In-solver timeouts surface here ("cvc5 interrupted by timeout"),
    // keeping the richer classification the wall-clock kill would lose.
    R.Failure = classifyUnknownReason(R.Detail.empty() ? Output : R.Detail);
    R.ModelText = R.Detail;
  } else {
    std::string Why = firstLine(Output);
    R = crashResult("backend '" + Spec.str() + "' produced no verdict (" +
                    (WIFEXITED(WStatus)
                         ? "exit " + std::to_string(WEXITSTATUS(WStatus))
                         : WIFSIGNALED(WStatus)
                               ? "signal " + std::to_string(WTERMSIG(WStatus))
                               : "unknown fate") +
                    (Why.empty() ? "" : "; said: " + Why) + ")");
  }
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction and the worker-child entry point
//===----------------------------------------------------------------------===//

std::unique_ptr<Backend> dryad::makeBackend(const BackendSpec &Spec) {
  if (Spec.isZ3Api())
    return std::make_unique<Z3ApiBackend>(Spec);
  return std::make_unique<PipeBackend>(Spec);
}

SmtResult dryad::solveWithBackend(const std::string &Spec,
                                  const SandboxRequest &Req) {
  BackendSpec S;
  std::string Err;
  if (Spec.empty()) {
    S.Name = "z3";
  } else if (!BackendSpec::parse(Spec, S, Err)) {
    return crashResult("unparseable backend spec in request frame: " + Err);
  }
  return makeBackend(S)->solve(Req);
}

//===----------------------------------------------------------------------===//
// Version probe
//===----------------------------------------------------------------------===//

ProbedBackend dryad::probeBackend(const BackendSpec &Spec) {
  ProbedBackend P;
  P.Spec = Spec;
  if (Spec.isZ3Api()) {
    unsigned Major = 0, Minor = 0, Build = 0, Rev = 0;
    Z3_get_version(&Major, &Minor, &Build, &Rev);
    P.Available = true;
    P.Version = "Z3 " + std::to_string(Major) + "." + std::to_string(Minor) +
                "." + std::to_string(Build) + " (in-process API)";
    return P;
  }

  std::string Bin = Spec.Path.empty() ? Spec.Name : Spec.Path;
  int Fds[2];
  if (pipe(Fds) != 0) {
    P.Error = std::string("pipe: ") + std::strerror(errno);
    return P;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fds[0]);
    close(Fds[1]);
    P.Error = std::string("fork: ") + std::strerror(errno);
    return P;
  }
  if (Pid == 0) {
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    int Null = open("/dev/null", O_RDONLY);
    if (Null >= 0)
      dup2(Null, 0);
    dup2(Fds[1], 1);
    dup2(Fds[1], 2);
    close(Fds[0]);
    close(Fds[1]);
    execlp(Bin.c_str(), Bin.c_str(), "--version", (char *)nullptr);
    _exit(127);
  }
  close(Fds[1]);

  // Bounded read: a probe must never hang startup. 5 s is generous for
  // printing a version string.
  std::string Output;
  char Buf[1024];
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool TimedOut = false;
  for (;;) {
    auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
    if (Remain <= 0) {
      TimedOut = true;
      break;
    }
    pollfd PF;
    PF.fd = Fds[0];
    PF.events = POLLIN;
    PF.revents = 0;
    int PR = poll(&PF, 1, static_cast<int>(Remain));
    if (PR == 0) {
      TimedOut = true;
      break;
    }
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    ssize_t N = read(Fds[0], Buf, sizeof(Buf));
    if (N > 0)
      Output.append(Buf, static_cast<size_t>(N));
    else if (N == 0 || errno != EINTR)
      break;
  }
  close(Fds[0]);
  if (TimedOut)
    kill(Pid, SIGKILL);
  int WStatus = 0;
  while (waitpid(Pid, &WStatus, 0) < 0 && errno == EINTR)
    ;

  if (TimedOut) {
    P.Error = "version probe timed out after 5 s";
    return P;
  }
  if (!WIFEXITED(WStatus) || WEXITSTATUS(WStatus) != 0) {
    if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 127)
      P.Error = "'" + Bin + "' not found on $PATH";
    else
      P.Error = "version probe failed (" +
                (WIFEXITED(WStatus)
                     ? "exit " + std::to_string(WEXITSTATUS(WStatus))
                     : "signal " + std::to_string(WIFSIGNALED(WStatus)
                                                      ? WTERMSIG(WStatus)
                                                      : 0)) +
                ")";
    return P;
  }
  P.Available = true;
  P.Version = firstLine(Output);
  if (P.Version.empty())
    P.Version = "(no version string)";
  return P;
}
