//===--- backend.h - Pluggable solver backends ------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver-backend layer: one obligation, expressed as neutral SMT-LIB2
/// text, discharged by any of several interchangeable solvers.
///
/// A `Backend` answers exactly one request. Two implementations exist:
///
///  * `Z3ApiBackend` — the historical path: a fresh in-process z3::context
///    fed through `solver::from_string`. Always available (the library is
///    linked in) and the only backend that reports counterexample models.
///  * `PipeBackend` — execs an external SMT-LIB2 solver (`cvc5`, a second
///    `z3` binary, anything that reads a benchmark on stdin and prints
///    sat/unsat/unknown), with per-solver argument templates for the
///    binaries we know and a bare exec for the rest.
///
/// Backends run *inside* the sandboxed worker processes: the backend spec
/// travels in the DRYQ1 request frame, the worker child constructs the
/// backend on demand, and the existing deadline/rlimit/crash machinery
/// (`classifyDeadWorker`) applies unchanged to both kinds. A PipeBackend's
/// external solver is a grandchild wired with PR_SET_PDEATHSIG, so
/// SIGKILLing the worker (portfolio loser, deadline) can never leak it.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_BACKEND_BACKEND_H
#define DRYAD_BACKEND_BACKEND_H

#include "smt/sandbox.h"
#include "smt/solver.h"

#include <memory>
#include <string>
#include <vector>

namespace dryad {

/// Reserved exit codes for sandboxed solver workers, shared between the
/// worker mains in sandbox.cpp and the backends that run inside them.
enum WorkerExitCode {
  WorkerExitSetup = 96, ///< setrlimit failed; refusing to run unsandboxed
  WorkerExitOom = 97,   ///< allocation failure — classified as ResourceOut
  WorkerExitProto = 98, ///< response pipe write failed mid-frame
};

/// Parsed `NAME[:PATH]` backend designator. The name is the identity that
/// flows into journal/store keys and per-backend stats; the optional path
/// pins the binary (otherwise $PATH resolves the name).
struct BackendSpec {
  std::string Name;
  std::string Path;

  /// The default backend: the in-process Z3 API, no binary involved.
  bool isZ3Api() const { return Name == "z3" && Path.empty(); }

  /// Canonical `NAME[:PATH]` round-trip of this spec.
  std::string str() const { return Path.empty() ? Name : Name + ":" + Path; }

  /// Parses `NAME[:PATH]`. Names are restricted to [A-Za-z0-9._-] so they
  /// can be embedded in store keys (which use '@' and ':' as separators).
  static bool parse(const std::string &Text, BackendSpec &Out,
                    std::string &Err);

  /// Parses a comma-separated backend list; rejects duplicate names (two
  /// backends sharing a name would share cache keys).
  static bool parseList(const std::string &Text, std::vector<BackendSpec> &Out,
                        std::string &Err);
};

struct BackendCaps {
  bool Models = true;    ///< sat verdicts carry counterexample values
  bool InProcess = true; ///< solves in the worker itself, no exec
};

/// One solver backend. solve() runs inside a sandboxed worker process and
/// may _exit(WorkerExitOom) when allocation can no longer be trusted — the
/// parent classifies that exit, never the backend itself.
class Backend {
public:
  virtual ~Backend() = default;
  virtual const BackendSpec &spec() const = 0;
  virtual BackendCaps caps() const = 0;
  virtual SmtResult solve(const SandboxRequest &Req) = 0;
};

/// Constructs the backend for \p Spec (never fails: unknown names get the
/// generic pipe treatment; availability is the prober's problem).
std::unique_ptr<Backend> makeBackend(const BackendSpec &Spec);

/// Worker-child entry point: parse \p Spec (empty means the in-process Z3
/// API), construct, solve. Malformed specs — impossible through the CLI,
/// conceivable through a torn frame — answer SolverCrash rather than abort.
SmtResult solveWithBackend(const std::string &Spec, const SandboxRequest &Req);

/// Result of the startup availability/version probe for one backend.
struct ProbedBackend {
  BackendSpec Spec;
  bool Available = false;
  std::string Version; ///< first line of `binary --version` (or the library)
  std::string Error;   ///< why the probe failed, for the degradation warning
};

/// Probes one backend: the in-process Z3 API reports the linked library
/// version and is always available; pipe backends fork/exec
/// `binary --version` (no shell) with a short deadline and require exit 0.
ProbedBackend probeBackend(const BackendSpec &Spec);

} // namespace dryad

#endif // DRYAD_BACKEND_BACKEND_H
