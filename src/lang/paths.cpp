//===--- paths.cpp - Basic-path extraction ---------------------------------===//

#include "lang/paths.h"

#include <set>

using namespace dryad;

namespace {
struct PathBuilder {
  Module &M;
  const Procedure &P;
  DiagEngine &Diags;
  std::vector<BasicPath> Out;

  Stmt mkAssume(const Formula *Cond, SourceLoc Loc) {
    Stmt S;
    S.K = Stmt::Assume;
    S.Loc = Loc;
    S.Cond = Cond;
    return S;
  }

  Stmt mkRetAssign(const Stmt &Ret) {
    Stmt S;
    S.K = Stmt::Assign;
    S.Loc = Ret.Loc;
    S.Var = P.Ret.Name;
    S.Expr = Ret.Expr;
    return S;
  }

  void emit(std::string Desc, const Formula *Start, std::vector<Stmt> Acc,
            const Formula *End, bool IsPost) {
    BasicPath BP;
    BP.Desc = std::move(Desc);
    BP.Start = Start;
    BP.End = End;
    BP.EndIsPost = IsPost;
    BP.Stmts = std::move(Acc);
    Out.push_back(std::move(BP));
  }

  /// A position in a stack of statement sequences: (sequence, next index).
  struct Frame {
    const std::vector<Stmt> *Seq;
    size_t Idx;
  };

  static std::string locTag(const Stmt &S) {
    return "@" + std::to_string(S.Loc.Line);
  }

  /// Walks from the current continuation until the next cut point, starting
  /// from formula \p Start with description prefix \p From.
  void walk(std::vector<Frame> Stack, std::vector<Stmt> Acc,
            const Formula *Start, const std::string &From) {
    while (true) {
      // Pop exhausted frames.
      while (!Stack.empty() && Stack.back().Idx >= Stack.back().Seq->size())
        Stack.pop_back();
      if (Stack.empty()) {
        // Fell off the end of the body: the post must hold (void return).
        emit(From + " -> post", Start, std::move(Acc), P.Post,
             /*IsPost=*/true);
        return;
      }

      const Stmt &S = (*Stack.back().Seq)[Stack.back().Idx];
      ++Stack.back().Idx;

      switch (S.K) {
      case Stmt::Skip:
        continue;
      case Stmt::Assign:
      case Stmt::Load:
      case Stmt::Store:
      case Stmt::New:
      case Stmt::Free:
      case Stmt::Assume:
      case Stmt::Call:
        Acc.push_back(S);
        continue;
      case Stmt::Return: {
        if (P.HasRet && S.Expr)
          Acc.push_back(mkRetAssign(S));
        emit(From + " -> post", Start, std::move(Acc), P.Post,
             /*IsPost=*/true);
        return;
      }
      case Stmt::If: {
        // Then branch.
        {
          std::vector<Frame> ThenStack = Stack;
          std::vector<Stmt> ThenAcc = Acc;
          ThenAcc.push_back(mkAssume(S.Cond, S.Loc));
          ThenStack.push_back({&S.Then, 0});
          walk(std::move(ThenStack), std::move(ThenAcc), Start, From);
        }
        // Else branch (possibly empty).
        Acc.push_back(mkAssume(M.Ctx.neg(S.Cond), S.Loc));
        Stack.push_back({&S.Else, 0});
        continue;
      }
      case Stmt::While: {
        // Path reaching the loop header ends at the invariant.
        emit(From + " -> inv" + locTag(S), Start, std::move(Acc), S.Inv,
             /*IsPost=*/false);
        // Around-the-loop paths are generated once per loop statement.
        if (Visited.insert(&S).second) {
          // inv && cond { body } -> inv   (plus paths for nested cut points)
          std::vector<Stmt> BodyAcc = {mkAssume(S.Cond, S.Loc)};
          std::vector<Frame> BodyStack = {{&S.Body, 0}};
          walkLoopBody(std::move(BodyStack), std::move(BodyAcc), S, S.Inv,
                       "inv" + locTag(S));
          // inv && !cond -> continue after the loop.
          std::vector<Stmt> ExitAcc = {mkAssume(M.Ctx.neg(S.Cond), S.Loc)};
          walk(Stack, std::move(ExitAcc), S.Inv, "inv" + locTag(S));
        }
        return;
      }
      }
    }
  }

  /// Like walk(), but falling off the end of the loop body re-establishes
  /// the loop invariant of \p Loop. \p Start / \p From identify the cut
  /// point this segment begins at (the loop's own invariant, or a nested
  /// loop's invariant after exiting it).
  void walkLoopBody(std::vector<Frame> Stack, std::vector<Stmt> Acc,
                    const Stmt &Loop, const Formula *Start,
                    const std::string &From) {
    while (true) {
      while (!Stack.empty() && Stack.back().Idx >= Stack.back().Seq->size())
        Stack.pop_back();
      if (Stack.empty()) {
        emit(From + " -> inv" + locTag(Loop), Start, std::move(Acc),
             Loop.Inv, /*IsPost=*/false);
        return;
      }

      const Stmt &S = (*Stack.back().Seq)[Stack.back().Idx];
      ++Stack.back().Idx;

      switch (S.K) {
      case Stmt::Skip:
        continue;
      case Stmt::Assign:
      case Stmt::Load:
      case Stmt::Store:
      case Stmt::New:
      case Stmt::Free:
      case Stmt::Assume:
      case Stmt::Call:
        Acc.push_back(S);
        continue;
      case Stmt::Return: {
        if (P.HasRet && S.Expr)
          Acc.push_back(mkRetAssign(S));
        emit(From + " -> post", Start, std::move(Acc), P.Post,
             /*IsPost=*/true);
        return;
      }
      case Stmt::If: {
        {
          std::vector<Frame> ThenStack = Stack;
          std::vector<Stmt> ThenAcc = Acc;
          ThenAcc.push_back(mkAssume(S.Cond, S.Loc));
          ThenStack.push_back({&S.Then, 0});
          walkLoopBody(std::move(ThenStack), std::move(ThenAcc), Loop, Start,
                       From);
        }
        Acc.push_back(mkAssume(M.Ctx.neg(S.Cond), S.Loc));
        Stack.push_back({&S.Else, 0});
        continue;
      }
      case Stmt::While: {
        // Nested loop: the current segment ends at the inner invariant.
        emit(From + " -> inv" + locTag(S), Start, std::move(Acc), S.Inv,
             /*IsPost=*/false);
        if (Visited.insert(&S).second) {
          std::vector<Stmt> BodyAcc = {mkAssume(S.Cond, S.Loc)};
          std::vector<Frame> BodyStack = {{&S.Body, 0}};
          walkLoopBody(std::move(BodyStack), std::move(BodyAcc), S, S.Inv,
                       "inv" + locTag(S));
          // Exiting the inner loop continues within the outer body.
          std::vector<Stmt> ExitAcc = {mkAssume(M.Ctx.neg(S.Cond), S.Loc)};
          walkLoopBody(Stack, std::move(ExitAcc), Loop, S.Inv,
                       "inv" + locTag(S));
        }
        return;
      }
      }
    }
  }

  std::set<const Stmt *> Visited;
};
} // namespace

std::vector<BasicPath> dryad::extractPaths(Module &M, const Procedure &P,
                                           DiagEngine &Diags) {
  PathBuilder B{M, P, Diags, {}};
  B.walk({{&P.Body, 0}}, {}, P.Pre, "pre");
  return std::move(B.Out);
}
