//===--- ast.h - Imperative program AST (Fig. 5) ----------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap-manipulating language of Fig. 5 extended with the structured
/// control flow the paper's front end supported (if / while with loop
/// invariants); basic-path extraction (paths.h) reduces procedures back to
/// the paper's straight-line segments.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_LANG_AST_H
#define DRYAD_LANG_AST_H

#include "dryad/ast.h"
#include "dryad/defs.h"
#include "dryad/parser.h"

#include <string>
#include <vector>

namespace dryad {

struct VarDecl {
  std::string Name;
  Sort S = Sort::Loc;
};

/// One statement. A single tagged struct keeps basic-path construction
/// (which copies statements) simple.
struct Stmt {
  enum Kind {
    Assign, ///< Var := Expr (pure expression, incl. u := v and j := aexpr)
    Load,   ///< Var := Base.Field
    Store,  ///< Base.Field := Expr
    New,    ///< Var := new
    Free,   ///< free Base
    Assume, ///< assume Cond (also synthesized from branch conditions)
    Call,   ///< [Var :=] Callee(Args)
    Return, ///< return [Expr]
    If,     ///< if (Cond) Then else Else
    While,  ///< while (Cond) invariant Inv Body
    Skip
  };

  Kind K = Skip;
  SourceLoc Loc;
  std::string Var;           ///< destination variable
  std::string Field;         ///< Load/Store field
  const Term *Base = nullptr;    ///< Load/Store/Free base location
  const Term *Expr = nullptr;    ///< Assign/Store/Return expression
  const Formula *Cond = nullptr; ///< Assume/If/While condition
  const Formula *Inv = nullptr;  ///< While invariant
  std::vector<Stmt> Then;
  std::vector<Stmt> Else;
  std::vector<Stmt> Body;
  std::string Callee;
  std::vector<const Term *> Args;
};

struct Procedure {
  std::string Name;
  SourceLoc Loc;
  std::vector<VarDecl> Params;
  std::vector<VarDecl> Locals;
  std::vector<VarDecl> SpecVars; ///< implicitly existentially quantified
  bool HasRet = false;
  VarDecl Ret;
  const Formula *Pre = nullptr;  ///< Dryad
  const Formula *Post = nullptr; ///< Dryad; may mention `ret`
  /// False for contract-only declarations (`proc f(..) requires .. ensures ..;`).
  bool HasBody = false;
  std::vector<Stmt> Body;
};

/// A parsed module: field declarations, recursive definitions, axioms, and
/// annotated procedures. Owns every AST node through its AstContext.
struct Module {
  AstContext Ctx;
  FieldTable Fields;
  DefRegistry Defs;
  std::vector<Axiom> Axioms;
  std::vector<Procedure> Procs;

  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const Procedure *findProc(const std::string &Name) const {
    for (const Procedure &P : Procs)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }
};

} // namespace dryad

#endif // DRYAD_LANG_AST_H
