//===--- paths.h - Basic-path extraction ------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cuts a procedure body at loop headers (whose invariants become
/// intermediate assertions) and enumerates the straight-line basic paths
/// between cut points, turning branch and loop conditions into `assume`
/// statements — exactly the Hoare-triples-over-basic-blocks setting of §6.1.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_LANG_PATHS_H
#define DRYAD_LANG_PATHS_H

#include "lang/ast.h"

namespace dryad {

/// One straight-line verification obligation {Start} Stmts {End}.
struct BasicPath {
  std::string Desc;              ///< human-readable, e.g. "pre -> inv@12"
  const Formula *Start = nullptr; ///< Dryad formula
  const Formula *End = nullptr;   ///< Dryad formula (mentions `ret` if post)
  bool EndIsPost = false;
  std::vector<Stmt> Stmts;        ///< only simple statement kinds
};

/// Enumerates the basic paths of \p P. Reports through \p Diags (e.g. loops
/// without invariants have been rejected at parse time; here we reject
/// spatial formulas used as branch conditions).
std::vector<BasicPath> extractPaths(Module &M, const Procedure &P,
                                    DiagEngine &Diags);

} // namespace dryad

#endif // DRYAD_LANG_PATHS_H
