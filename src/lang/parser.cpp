//===--- parser.cpp - Module and program parser ----------------------------===//

#include "lang/parser.h"
#include "dryad/typecheck.h"

#include <fstream>
#include <sstream>

using namespace dryad;

namespace {
class ProgramParser {
public:
  ProgramParser(Module &M, DiagEngine &Diags, TokenCursor &Cur)
      : M(M), Diags(Diags), Cur(Cur), Spec(M.Ctx, M.Fields, M.Defs, Diags, Cur) {
  }

  bool run() {
    while (!Cur.atEnd()) {
      const Token &T = Cur.peek();
      if (T.isIdent("fields")) {
        Spec.parseFieldsDecl();
      } else if (T.isIdent("pred")) {
        Spec.parsePredDef();
      } else if (T.isIdent("func")) {
        Spec.parseFuncDef();
      } else if (T.isIdent("axiom")) {
        Spec.parseAxiom(M.Axioms);
      } else if (T.isIdent("proc")) {
        parseProc();
      } else {
        Diags.error(T.Loc, "expected a top-level declaration "
                           "(fields/pred/func/axiom/proc)");
        Cur.advance();
      }
    }
    if (!Diags.hasErrors())
      checkDefs(M.Defs, Diags);
    return !Diags.hasErrors();
  }

private:
  bool expect(Token::Kind K, const char *What) {
    if (Cur.match(K))
      return true;
    Diags.error(Cur.peek().Loc, std::string("expected ") + What);
    return false;
  }

  std::optional<VarDecl> parseTypedName() {
    const Token &Name = Cur.peek();
    if (!Name.is(Token::Ident)) {
      Diags.error(Name.Loc, "expected a name");
      return std::nullopt;
    }
    Cur.advance();
    if (!expect(Token::Colon, "':'"))
      return std::nullopt;
    std::optional<Sort> S = Spec.parseSort();
    if (!S) {
      Diags.error(Cur.peek().Loc, "expected a sort");
      return std::nullopt;
    }
    return VarDecl{Name.Text, *S};
  }

  void parseProc() {
    Cur.advance(); // 'proc'
    Procedure P;
    P.Loc = Cur.peek().Loc;
    const Token &Name = Cur.peek();
    if (!Name.is(Token::Ident)) {
      Diags.error(Name.Loc, "expected procedure name");
      Spec.synchronize();
      return;
    }
    Cur.advance();
    P.Name = Name.Text;

    if (!expect(Token::LParen, "'('")) {
      Spec.synchronize();
      return;
    }
    if (!Cur.peek().is(Token::RParen)) {
      do {
        std::optional<VarDecl> D = parseTypedName();
        if (!D) {
          Spec.synchronize();
          return;
        }
        P.Params.push_back(*D);
      } while (Cur.match(Token::Comma));
    }
    if (!expect(Token::RParen, "')'")) {
      Spec.synchronize();
      return;
    }

    if (Cur.matchIdent("returns")) {
      if (!expect(Token::LParen, "'('")) {
        Spec.synchronize();
        return;
      }
      std::optional<VarDecl> D = parseTypedName();
      if (!D || !expect(Token::RParen, "')'")) {
        Spec.synchronize();
        return;
      }
      P.HasRet = true;
      P.Ret = *D;
    }

    if (Cur.matchIdent("spec")) {
      if (!expect(Token::LParen, "'('")) {
        Spec.synchronize();
        return;
      }
      do {
        std::optional<VarDecl> D = parseTypedName();
        if (!D) {
          Spec.synchronize();
          return;
        }
        P.SpecVars.push_back(*D);
      } while (Cur.match(Token::Comma));
      if (!expect(Token::RParen, "')'")) {
        Spec.synchronize();
        return;
      }
    }

    VarEnv ContractEnv;
    for (const VarDecl &D : P.Params)
      ContractEnv[D.Name] = D.S;
    for (const VarDecl &D : P.SpecVars)
      ContractEnv[D.Name] = D.S;

    if (Cur.matchIdent("requires")) {
      P.Pre = Spec.parseFormula(ContractEnv);
      if (!P.Pre) {
        Spec.synchronize();
        return;
      }
    } else {
      Diags.error(Cur.peek().Loc, "procedure needs a 'requires' clause");
      Spec.synchronize();
      return;
    }

    if (P.HasRet)
      ContractEnv[P.Ret.Name] = P.Ret.S;
    if (Cur.matchIdent("ensures")) {
      P.Post = Spec.parseFormula(ContractEnv);
      if (!P.Post) {
        Spec.synchronize();
        return;
      }
    } else {
      Diags.error(Cur.peek().Loc, "procedure needs an 'ensures' clause");
      Spec.synchronize();
      return;
    }

    checkDryadFormula(P.Pre, Diags);
    checkDryadFormula(P.Post, Diags);

    // Body (optional: contract-only declarations end with ';').
    if (Cur.match(Token::Semi)) {
      M.Procs.push_back(std::move(P));
      return;
    }
    P.HasBody = true;

    VarEnv BodyEnv = ContractEnv;
    // `ret` is not a program variable inside the body; returns are explicit.
    if (P.HasRet)
      BodyEnv.erase(P.Ret.Name);
    if (!parseBlock(P, BodyEnv, P.Body))
      return;
    M.Procs.push_back(std::move(P));
  }

  bool parseBlock(Procedure &P, VarEnv &Env, std::vector<Stmt> &Out) {
    if (!expect(Token::LBrace, "'{'"))
      return false;
    while (!Cur.peek().is(Token::RBrace)) {
      if (Cur.atEnd()) {
        Diags.error(Cur.peek().Loc, "unterminated block");
        return false;
      }
      if (!parseStmt(P, Env, Out))
        return false;
    }
    Cur.advance(); // '}'
    return true;
  }

  bool parseStmt(Procedure &P, VarEnv &Env, std::vector<Stmt> &Out) {
    const Token &T = Cur.peek();
    Stmt S;
    S.Loc = T.Loc;

    if (T.isIdent("var")) {
      Cur.advance();
      std::optional<VarDecl> D = parseTypedName();
      if (!D || !expect(Token::Semi, "';'"))
        return false;
      P.Locals.push_back(*D);
      Env[D->Name] = D->S;
      return true;
    }
    if (T.isIdent("skip")) {
      Cur.advance();
      return expect(Token::Semi, "';'");
    }
    if (T.isIdent("free")) {
      Cur.advance();
      S.K = Stmt::Free;
      S.Base = Spec.parseTerm(Env, Sort::Loc);
      if (!S.Base || !expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }
    if (T.isIdent("assume")) {
      Cur.advance();
      S.K = Stmt::Assume;
      S.Cond = Spec.parseFormula(Env);
      if (!S.Cond || !expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }
    if (T.isIdent("return")) {
      Cur.advance();
      S.K = Stmt::Return;
      if (!Cur.peek().is(Token::Semi)) {
        S.Expr = Spec.parseTerm(Env, P.HasRet ? std::optional<Sort>(P.Ret.S)
                                              : std::nullopt);
        if (!S.Expr)
          return false;
      }
      if (!expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }
    if (T.isIdent("if")) {
      Cur.advance();
      S.K = Stmt::If;
      if (!expect(Token::LParen, "'('"))
        return false;
      S.Cond = Spec.parseFormula(Env);
      if (!S.Cond || !expect(Token::RParen, "')'"))
        return false;
      if (!parseBlock(P, Env, S.Then))
        return false;
      if (Cur.matchIdent("else")) {
        if (Cur.peek().isIdent("if")) {
          // else-if chain.
          if (!parseStmt(P, Env, S.Else))
            return false;
        } else if (!parseBlock(P, Env, S.Else)) {
          return false;
        }
      }
      Out.push_back(std::move(S));
      return true;
    }
    if (T.isIdent("while")) {
      Cur.advance();
      S.K = Stmt::While;
      if (!expect(Token::LParen, "'('"))
        return false;
      S.Cond = Spec.parseFormula(Env);
      if (!S.Cond || !expect(Token::RParen, "')'"))
        return false;
      std::vector<const Formula *> Invs;
      while (Cur.matchIdent("invariant")) {
        const Formula *Inv = Spec.parseFormula(Env);
        if (!Inv)
          return false;
        Invs.push_back(Inv);
      }
      if (Invs.empty()) {
        Diags.error(S.Loc, "while loop needs an 'invariant' clause");
        return false;
      }
      S.Inv = M.Ctx.conj(std::move(Invs));
      checkDryadFormula(S.Inv, Diags);
      if (!parseBlock(P, Env, S.Body))
        return false;
      Out.push_back(std::move(S));
      return true;
    }

    // Statements starting with an identifier.
    if (!T.is(Token::Ident)) {
      Diags.error(T.Loc, "expected a statement");
      return false;
    }
    const Token &Next = Cur.peek(1);

    // u.f := e;
    if (Next.is(Token::Dot)) {
      auto It = Env.find(T.Text);
      if (It == Env.end()) {
        Diags.error(T.Loc, "undeclared variable '" + T.Text + "'");
        return false;
      }
      S.Base = M.Ctx.var(T.Text, It->second, T.Loc);
      Cur.advance();
      Cur.advance(); // name '.'
      const Token &FieldTok = Cur.peek();
      if (!FieldTok.is(Token::Ident) || !M.Fields.isField(FieldTok.Text)) {
        Diags.error(FieldTok.Loc, "expected a field name");
        return false;
      }
      Cur.advance();
      S.K = Stmt::Store;
      S.Field = FieldTok.Text;
      if (!expect(Token::ColonEq, "':='"))
        return false;
      S.Expr = Spec.parseTerm(Env, M.Fields.fieldSort(S.Field));
      if (!S.Expr || !expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }

    // f(args);  (call without destination)
    if (Next.is(Token::LParen)) {
      S.K = Stmt::Call;
      S.Callee = T.Text;
      Cur.advance();
      Cur.advance();
      if (!parseCallArgs(Env, S.Args) || !expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }

    if (!Next.is(Token::ColonEq)) {
      Diags.error(Next.Loc, "expected ':=', '.' or '(' after identifier");
      return false;
    }
    S.Var = T.Text;
    auto DstIt = Env.find(S.Var);
    if (DstIt == Env.end()) {
      Diags.error(T.Loc, "undeclared variable '" + S.Var + "'");
      return false;
    }
    Sort DstSort = DstIt->second;
    Cur.advance();
    Cur.advance(); // name ':='

    if (Cur.peek().isIdent("new")) {
      Cur.advance();
      S.K = Stmt::New;
      if (!expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }

    // u := f(args);
    if (Cur.peek().is(Token::Ident) && Cur.peek(1).is(Token::LParen) &&
        !M.Defs.lookup(Cur.peek().Text)) {
      S.K = Stmt::Call;
      S.Callee = Cur.peek().Text;
      Cur.advance();
      Cur.advance();
      if (!parseCallArgs(Env, S.Args) || !expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }

    // u := v.f;
    if (Cur.peek().is(Token::Ident) && Cur.peek(1).is(Token::Dot)) {
      const Token &BaseTok = Cur.peek();
      auto It = Env.find(BaseTok.Text);
      if (It == Env.end()) {
        Diags.error(BaseTok.Loc, "undeclared variable '" + BaseTok.Text + "'");
        return false;
      }
      S.K = Stmt::Load;
      S.Base = M.Ctx.var(BaseTok.Text, It->second, BaseTok.Loc);
      Cur.advance();
      Cur.advance();
      const Token &FieldTok = Cur.peek();
      if (!FieldTok.is(Token::Ident) || !M.Fields.isField(FieldTok.Text)) {
        Diags.error(FieldTok.Loc, "expected a field name");
        return false;
      }
      Cur.advance();
      S.Field = FieldTok.Text;
      if (!expect(Token::Semi, "';'"))
        return false;
      Out.push_back(std::move(S));
      return true;
    }

    // u := term;
    S.K = Stmt::Assign;
    S.Expr = Spec.parseTerm(Env, DstSort);
    if (!S.Expr || !expect(Token::Semi, "';'"))
      return false;
    Out.push_back(std::move(S));
    return true;
  }

  bool parseCallArgs(VarEnv &Env, std::vector<const Term *> &Args) {
    if (Cur.match(Token::RParen))
      return true;
    do {
      const Term *A = Spec.parseTerm(Env);
      if (!A)
        return false;
      Args.push_back(A);
    } while (Cur.match(Token::Comma));
    return expect(Token::RParen, "')'");
  }

  Module &M;
  DiagEngine &Diags;
  TokenCursor &Cur;
  SpecParser Spec;
};
} // namespace

bool dryad::parseModule(const std::string &Input, Module &M,
                        DiagEngine &Diags) {
  std::vector<Token> Toks = tokenize(Input, Diags);
  if (Diags.hasErrors())
    return false;
  TokenCursor Cur;
  Cur.Toks = &Toks;
  return ProgramParser(M, Diags, Cur).run();
}

bool dryad::parseModuleFile(const std::string &Path, Module &M,
                            DiagEngine &Diags) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error({}, "cannot open file: " + Path);
    return false;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  return parseModule(SS.str(), M, Diags);
}
