//===--- parser.h - Module and program parser -------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses whole `.dryad` module files: field declarations, recursive
/// definitions, axioms (all via dryad/parser.h) and annotated procedures
/// with structured control flow.
///
/// \code
///   proc insert_front(x: loc, k: int) returns (ret: loc)
///     spec (K: intset)
///     requires list(x) && keys(x) == K
///     ensures  list(ret) && keys(ret) == union(K, {k})
///   {
///     var u: loc;
///     u := new;
///     u.next := x;
///     u.key := k;
///     return u;
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_LANG_PARSER_H
#define DRYAD_LANG_PARSER_H

#include "lang/ast.h"

namespace dryad {

/// Parses \p Input into \p M. Returns false if any error was diagnosed.
bool parseModule(const std::string &Input, Module &M, DiagEngine &Diags);

/// Convenience: reads a file and parses it. Returns false on I/O or parse
/// errors.
bool parseModuleFile(const std::string &Path, Module &M, DiagEngine &Diags);

} // namespace dryad

#endif // DRYAD_LANG_PARSER_H
