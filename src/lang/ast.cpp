//===--- ast.cpp - Imperative program AST utilities ------------------------===//

#include "lang/ast.h"

using namespace dryad;

// The program AST is header-only; this TU anchors the translation unit for
// the lang library.
