//===--- crc32.h - CRC-32 (IEEE 802.3) --------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven CRC-32 (the reflected IEEE polynomial, as used by zlib and
/// gzip) for the persistent proof store's per-record checksums. A content
/// hash (support/hash.h) answers "is this the same obligation?"; the CRC
/// answers "did these exact bytes survive the disk?" — torn tails and
/// bit rot must be *detected*, never silently trusted as verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SUPPORT_CRC32_H
#define DRYAD_SUPPORT_CRC32_H

#include <array>
#include <cstdint>
#include <string_view>

namespace dryad {

namespace detail {
inline const std::array<uint32_t, 256> &crc32Table() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C >> 1) ^ ((C & 1) ? 0xEDB88320u : 0);
      T[I] = C;
    }
    return T;
  }();
  return Table;
}
} // namespace detail

/// CRC-32 of \p Data (zlib-compatible: reflected, init/final XOR 0xFFFFFFFF).
inline uint32_t crc32(std::string_view Data) {
  const std::array<uint32_t, 256> &T = detail::crc32Table();
  uint32_t C = 0xFFFFFFFFu;
  for (unsigned char B : Data)
    C = T[(C ^ B) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

/// Fixed-width 8-digit lowercase hex rendering of a CRC.
inline std::string crc32Hex(uint32_t C) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(8, '0');
  for (unsigned I = 8; I-- > 0; C >>= 4)
    Out[I] = Hex[C & 0xF];
  return Out;
}

} // namespace dryad

#endif // DRYAD_SUPPORT_CRC32_H
