//===--- hash.h - Stable content hashing ------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a, the stable 64-bit content hash used for journal keys and
/// collision-free dump filenames. Deterministic across runs and platforms
/// (unlike std::hash, which libstdc++ seeds per-process for strings).
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SUPPORT_HASH_H
#define DRYAD_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace dryad {

inline uint64_t fnv1a64(std::string_view Data,
                        uint64_t Seed = 14695981039346656037ull) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Fixed-width lowercase hex rendering (16 digits for the full hash).
inline std::string hex64(uint64_t H, unsigned Digits = 16) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(Digits, '0');
  for (unsigned I = Digits; I-- > 0; H >>= 4)
    Out[I] = Hex[H & 0xF];
  return Out;
}

} // namespace dryad

#endif // DRYAD_SUPPORT_HASH_H
