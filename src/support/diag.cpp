//===--- diag.cpp - Diagnostics and source locations ----------------------===//

#include "support/diag.h"

using namespace dryad;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::str() const {
  const char *SevName = Sev == Error ? "error" : Sev == Warning ? "warning"
                                                                : "note";
  return Loc.str() + ": " + SevName + ": " + Message;
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
