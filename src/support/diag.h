//===--- diag.h - Diagnostics and source locations --------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal diagnostic engine shared by the Dryad spec parser and the
/// program-language parser. Collects errors with line/column positions; the
/// library never throws, callers check hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SUPPORT_DIAG_H
#define DRYAD_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace dryad {

/// A position in an input buffer, 1-based.
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

/// One diagnostic message.
struct Diagnostic {
  enum Severity { Error, Warning, Note };
  Severity Sev = Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics produced while processing one input.
class DiagEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Error, Loc, std::move(Msg)});
  }
  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Warning, Loc, std::move(Msg)});
  }
  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Note, Loc, std::move(Msg)});
  }

  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Sev == Diagnostic::Error)
        return true;
    return false;
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace dryad

#endif // DRYAD_SUPPORT_DIAG_H
