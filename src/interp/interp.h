//===--- interp.h - Concrete interpreter ------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete executor for the program language — the testing substrate
/// that closes the loop: routines the verifier proves are run on generated
/// inputs and their postconditions are checked with the Dryad evaluator
/// (end-to-end soundness property tests).
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_INTERP_INTERP_H
#define DRYAD_INTERP_INTERP_H

#include "lang/ast.h"
#include "sem/state.h"

#include <optional>

namespace dryad {

class Interpreter {
public:
  explicit Interpreter(Module &M) : M(M) {}

  struct ExecResult {
    bool Ok = false;
    std::optional<Value> Ret;
    std::string Error;
  };

  /// Runs \p ProcName on \p St with \p Args bound to its parameters.
  ExecResult call(const std::string &ProcName, const std::vector<Value> &Args,
                  ProgramState &St, int Depth = 0);

  /// Loop/recursion fuel; exceeding it reports an error (diverging input or
  /// a bug in the routine under test).
  int MaxSteps = 200000;
  int MaxDepth = 512;

private:
  struct Frame {
    std::map<std::string, Value> Vars;
  };

  bool execBlock(const Procedure &P, const std::vector<Stmt> &Stmts,
                 Frame &F, ProgramState &St, int Depth,
                 std::optional<Value> &Ret, std::string &Err);
  std::optional<Value> evalExpr(const Term *T, Frame &F,
                                const ProgramState &St, std::string &Err);
  std::optional<bool> evalCond(const Formula *C, Frame &F,
                               const ProgramState &St, std::string &Err);

  Module &M;
  int StepsLeft = 0;
};

} // namespace dryad

#endif // DRYAD_INTERP_INTERP_H
