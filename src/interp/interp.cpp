//===--- interp.cpp - Concrete interpreter -----------------------------------===//

#include "interp/interp.h"

using namespace dryad;

std::optional<Value> Interpreter::evalExpr(const Term *T, Frame &F,
                                           const ProgramState &St,
                                           std::string &Err) {
  switch (T->kind()) {
  case Term::TK_Nil:
    return Value::mkLoc(0);
  case Term::TK_IntConst:
    return Value::mkInt(cast<IntConstTerm>(T)->value());
  case Term::TK_Var: {
    auto It = F.Vars.find(cast<VarTerm>(T)->name());
    if (It == F.Vars.end()) {
      Err = "unbound variable " + cast<VarTerm>(T)->name();
      return std::nullopt;
    }
    return It->second;
  }
  case Term::TK_IntBin: {
    const auto *X = cast<IntBinTerm>(T);
    std::optional<Value> L = evalExpr(X->lhs(), F, St, Err);
    std::optional<Value> R = evalExpr(X->rhs(), F, St, Err);
    if (!L || !R)
      return std::nullopt;
    switch (X->op()) {
    case IntBinTerm::Add:
      return intAdd(*L, *R);
    case IntBinTerm::Sub:
      return intSub(*L, *R);
    case IntBinTerm::Max:
      return intLe(*L, *R) ? *R : *L;
    case IntBinTerm::Min:
      return intLe(*L, *R) ? *L : *R;
    }
    return std::nullopt;
  }
  default:
    Err = "expression kind not executable";
    return std::nullopt;
  }
}

std::optional<bool> Interpreter::evalCond(const Formula *C, Frame &F,
                                          const ProgramState &St,
                                          std::string &Err) {
  switch (C->kind()) {
  case Formula::FK_BoolConst:
    return cast<BoolConstFormula>(C)->value();
  case Formula::FK_Cmp: {
    const auto *X = cast<CmpFormula>(C);
    std::optional<Value> L = evalExpr(X->lhs(), F, St, Err);
    std::optional<Value> R = evalExpr(X->rhs(), F, St, Err);
    if (!L || !R)
      return std::nullopt;
    switch (X->op()) {
    case CmpFormula::Eq:
      return *L == *R;
    case CmpFormula::Ne:
      return !(*L == *R);
    case CmpFormula::Lt:
      return intLt(*L, *R);
    case CmpFormula::Le:
      return intLe(*L, *R);
    case CmpFormula::Gt:
      return intLt(*R, *L);
    case CmpFormula::Ge:
      return intLe(*R, *L);
    default:
      Err = "condition uses a non-executable relation";
      return std::nullopt;
    }
  }
  case Formula::FK_And: {
    for (const Formula *Op : cast<NaryFormula>(C)->operands()) {
      std::optional<bool> B = evalCond(Op, F, St, Err);
      if (!B)
        return std::nullopt;
      if (!*B)
        return false;
    }
    return true;
  }
  case Formula::FK_Or: {
    for (const Formula *Op : cast<NaryFormula>(C)->operands()) {
      std::optional<bool> B = evalCond(Op, F, St, Err);
      if (!B)
        return std::nullopt;
      if (*B)
        return true;
    }
    return false;
  }
  case Formula::FK_Not: {
    std::optional<bool> B =
        evalCond(cast<NotFormula>(C)->operand(), F, St, Err);
    if (!B)
      return std::nullopt;
    return !*B;
  }
  default:
    Err = "condition kind not executable";
    return std::nullopt;
  }
}

bool Interpreter::execBlock(const Procedure &P, const std::vector<Stmt> &Stmts,
                            Frame &F, ProgramState &St, int Depth,
                            std::optional<Value> &Ret, std::string &Err) {
  for (const Stmt &S : Stmts) {
    if (--StepsLeft <= 0) {
      Err = "step budget exhausted (diverging loop?)";
      return false;
    }
    switch (S.K) {
    case Stmt::Skip:
      break;
    case Stmt::Assign: {
      std::optional<Value> V = evalExpr(S.Expr, F, St, Err);
      if (!V)
        return false;
      F.Vars[S.Var] = *V;
      break;
    }
    case Stmt::Load: {
      std::optional<Value> B = evalExpr(S.Base, F, St, Err);
      if (!B)
        return false;
      if (B->I == 0 || !St.R.count(B->I)) {
        Err = "load through nil/unallocated location";
        return false;
      }
      int64_t Raw = St.read(B->I, S.Field);
      F.Vars[S.Var] = M.Fields.isPointerField(S.Field) ? Value::mkLoc(Raw)
                                                       : Value::mkInt(Raw);
      break;
    }
    case Stmt::Store: {
      std::optional<Value> B = evalExpr(S.Base, F, St, Err);
      std::optional<Value> V = evalExpr(S.Expr, F, St, Err);
      if (!B || !V)
        return false;
      if (B->I == 0 || !St.R.count(B->I)) {
        Err = "store through nil/unallocated location";
        return false;
      }
      St.write(B->I, S.Field, V->I);
      break;
    }
    case Stmt::New:
      F.Vars[S.Var] = Value::mkLoc(St.allocate());
      break;
    case Stmt::Free: {
      std::optional<Value> B = evalExpr(S.Base, F, St, Err);
      if (!B)
        return false;
      St.deallocate(B->I);
      break;
    }
    case Stmt::Assume: {
      std::optional<bool> C = evalCond(S.Cond, F, St, Err);
      if (!C)
        return false;
      if (!*C) {
        Err = "assume violated at runtime";
        return false;
      }
      break;
    }
    case Stmt::Return: {
      if (S.Expr) {
        std::optional<Value> V = evalExpr(S.Expr, F, St, Err);
        if (!V)
          return false;
        Ret = *V;
      } else {
        Ret = Value::mkInt(0);
      }
      return true;
    }
    case Stmt::If: {
      std::optional<bool> C = evalCond(S.Cond, F, St, Err);
      if (!C)
        return false;
      if (!execBlock(P, *C ? S.Then : S.Else, F, St, Depth, Ret, Err))
        return false;
      if (Ret)
        return true;
      break;
    }
    case Stmt::While: {
      while (true) {
        if (--StepsLeft <= 0) {
          Err = "step budget exhausted (diverging loop?)";
          return false;
        }
        std::optional<bool> C = evalCond(S.Cond, F, St, Err);
        if (!C)
          return false;
        if (!*C)
          break;
        if (!execBlock(P, S.Body, F, St, Depth, Ret, Err))
          return false;
        if (Ret)
          return true;
      }
      break;
    }
    case Stmt::Call: {
      std::vector<Value> Args;
      for (const Term *A : S.Args) {
        std::optional<Value> V = evalExpr(A, F, St, Err);
        if (!V)
          return false;
        Args.push_back(*V);
      }
      ExecResult R = call(S.Callee, Args, St, Depth + 1);
      if (!R.Ok) {
        Err = R.Error;
        return false;
      }
      if (!S.Var.empty()) {
        if (!R.Ret) {
          Err = "callee returned no value";
          return false;
        }
        F.Vars[S.Var] = *R.Ret;
      }
      break;
    }
    }
  }
  return true;
}

Interpreter::ExecResult Interpreter::call(const std::string &ProcName,
                                          const std::vector<Value> &Args,
                                          ProgramState &St, int Depth) {
  ExecResult R;
  if (Depth == 0)
    StepsLeft = MaxSteps;
  if (Depth > MaxDepth) {
    R.Error = "recursion depth exceeded";
    return R;
  }
  const Procedure *P = M.findProc(ProcName);
  if (!P || P->Body.empty()) {
    R.Error = "no executable body for " + ProcName;
    return R;
  }
  if (P->Params.size() != Args.size()) {
    R.Error = "argument count mismatch calling " + ProcName;
    return R;
  }
  Frame F;
  for (size_t I = 0; I != Args.size(); ++I)
    F.Vars[P->Params[I].Name] = Args[I];
  for (const VarDecl &D : P->Locals)
    F.Vars[D.Name] = D.S == Sort::Loc ? Value::mkLoc(0) : Value::mkInt(0);

  std::optional<Value> Ret;
  std::string Err;
  if (!execBlock(*P, P->Body, F, St, Depth, Ret, Err)) {
    R.Error = Err;
    return R;
  }
  R.Ok = true;
  R.Ret = Ret;
  return R;
}
