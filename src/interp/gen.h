//===--- gen.h - Random heap structure generators ---------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic (seeded) generators for the heap shapes the benchmark
/// corpus manipulates — used by the property tests (random states for the
/// Theorem 5.1 agreement test, valid inputs for end-to-end soundness runs).
///
/// Field-name conventions follow the specification library: `next`/`prev`
/// for lists, `left`/`right` for trees, `key` for data.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_INTERP_GEN_H
#define DRYAD_INTERP_GEN_H

#include "sem/state.h"

#include <cstdint>
#include <random>
#include <vector>

namespace dryad {

class HeapGen {
public:
  HeapGen(ProgramState &St, uint64_t Seed) : St(St), Rng(Seed) {}

  int64_t randKey(int64_t Lo = -50, int64_t Hi = 50) {
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
  }

  /// Singly-linked list of N nodes with the given keys (random if empty);
  /// returns the head (nil for N == 0).
  int64_t makeList(int N, std::vector<int64_t> Keys = {});
  /// Sorted singly-linked list.
  int64_t makeSortedList(int N);
  /// Doubly-linked list (next/prev).
  int64_t makeDll(int N);
  /// Cyclic list: head->next ... ->head; returns head (nil for N == 0).
  int64_t makeCyclic(int N);
  /// Random binary tree of N nodes (left/right), random keys.
  int64_t makeTree(int N);
  /// Binary search tree by repeated leaf insertion.
  int64_t makeBst(int N);
  /// Max-heap-shaped tree (every parent key >= children keys).
  int64_t makeMaxHeap(int N);
  /// A heap with garbage: extra unreachable allocated nodes with arbitrary
  /// pointers into earlier nodes (stress for heaplet semantics).
  void addGarbage(int N);

private:
  ProgramState &St;
  std::mt19937_64 Rng;
};

} // namespace dryad

#endif // DRYAD_INTERP_GEN_H
