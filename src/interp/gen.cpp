//===--- gen.cpp - Random heap structure generators --------------------------===//

#include "interp/gen.h"

#include <algorithm>
#include <set>

using namespace dryad;

int64_t HeapGen::makeList(int N, std::vector<int64_t> Keys) {
  int64_t Head = 0;
  for (int I = N - 1; I >= 0; --I) {
    int64_t Node = St.allocate();
    St.write(Node, "next", Head);
    St.write(Node, "key",
             I < static_cast<int>(Keys.size()) ? Keys[I] : randKey());
    Head = Node;
  }
  return Head;
}

int64_t HeapGen::makeSortedList(int N) {
  std::vector<int64_t> Keys;
  for (int I = 0; I != N; ++I)
    Keys.push_back(randKey());
  std::sort(Keys.begin(), Keys.end());
  return makeList(N, std::move(Keys));
}

int64_t HeapGen::makeDll(int N) {
  int64_t Head = 0, Prev = 0;
  for (int I = 0; I != N; ++I) {
    int64_t Node = St.allocate();
    St.write(Node, "key", randKey());
    St.write(Node, "next", 0);
    St.write(Node, "prev", Prev);
    if (Prev)
      St.write(Prev, "next", Node);
    else
      Head = Node;
    Prev = Node;
  }
  return Head;
}

int64_t HeapGen::makeCyclic(int N) {
  if (N == 0)
    return 0;
  int64_t Head = St.allocate();
  St.write(Head, "key", randKey());
  int64_t Prev = Head;
  for (int I = 1; I != N; ++I) {
    int64_t Node = St.allocate();
    St.write(Node, "key", randKey());
    St.write(Prev, "next", Node);
    Prev = Node;
  }
  St.write(Prev, "next", Head);
  return Head;
}

int64_t HeapGen::makeTree(int N) {
  if (N == 0)
    return 0;
  int64_t Root = St.allocate();
  St.write(Root, "key", randKey());
  St.write(Root, "left", 0);
  St.write(Root, "right", 0);
  std::vector<int64_t> Nodes = {Root};
  for (int I = 1; I != N; ++I) {
    int64_t Node = St.allocate();
    St.write(Node, "key", randKey());
    St.write(Node, "left", 0);
    St.write(Node, "right", 0);
    // Attach under a random node with a free slot.
    for (int Tries = 0; Tries != 64; ++Tries) {
      int64_t P = Nodes[std::uniform_int_distribution<size_t>(
          0, Nodes.size() - 1)(Rng)];
      bool Left = std::uniform_int_distribution<int>(0, 1)(Rng);
      const char *Slot = Left ? "left" : "right";
      if (St.read(P, Slot) == 0) {
        St.write(P, Slot, Node);
        break;
      }
    }
    Nodes.push_back(Node);
  }
  return Root;
}

static int64_t bstInsert(ProgramState &St, int64_t Root, int64_t Node) {
  if (Root == 0)
    return Node;
  int64_t Cur = Root;
  while (true) {
    const char *Slot =
        St.read(Node, "key") < St.read(Cur, "key") ? "left" : "right";
    int64_t Child = St.read(Cur, Slot);
    if (Child == 0) {
      St.write(Cur, Slot, Node);
      return Root;
    }
    Cur = Child;
  }
}

int64_t HeapGen::makeBst(int N) {
  int64_t Root = 0;
  std::set<int64_t> Used; // bst requires strictly ordered (distinct) keys
  for (int I = 0; I != N; ++I) {
    int64_t Key = randKey(-10 * N - 50, 10 * N + 50);
    while (Used.count(Key))
      Key = randKey(-10 * N - 50, 10 * N + 50);
    Used.insert(Key);
    int64_t Node = St.allocate();
    St.write(Node, "key", Key);
    St.write(Node, "left", 0);
    St.write(Node, "right", 0);
    Root = bstInsert(St, Root, Node);
  }
  return Root;
}

int64_t HeapGen::makeMaxHeap(int N) {
  int64_t Root = makeTree(N);
  // Fix keys bottom-up: each parent takes the max of its subtree.
  // Simple fixpoint: repeatedly push larger child keys up.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int64_t L : St.R) {
      for (const char *Slot : {"left", "right"}) {
        int64_t C = St.read(L, Slot);
        if (C && St.read(C, "key") > St.read(L, "key")) {
          int64_t Tmp = St.read(L, "key");
          St.write(L, "key", St.read(C, "key"));
          St.write(C, "key", Tmp);
          Changed = true;
        }
      }
    }
  }
  return Root;
}

void HeapGen::addGarbage(int N) {
  std::vector<int64_t> Existing(St.R.begin(), St.R.end());
  for (int I = 0; I != N; ++I) {
    int64_t Node = St.allocate();
    St.write(Node, "key", randKey());
    auto Pick = [&]() -> int64_t {
      if (Existing.empty() || std::uniform_int_distribution<int>(0, 2)(Rng) == 0)
        return 0;
      return Existing[std::uniform_int_distribution<size_t>(
          0, Existing.size() - 1)(Rng)];
    };
    St.write(Node, "next", Pick());
    St.write(Node, "left", Pick());
    St.write(Node, "right", Pick());
  }
}
