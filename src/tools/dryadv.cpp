//===--- dryadv.cpp - Command-line verifier ----------------------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// Usage: dryadv [options] file.dryad...
//   --timeout <ms>        per-obligation Z3 deadline ceiling (default 60000)
//   --attempts <n>        dispatch attempts per obligation with escalating
//                         deadlines and reseeding (default 3)
//   --proc-budget-ms <ms> wall-clock budget per procedure; 0 = unlimited
//   --no-degrade          don't retry with reduced tactic sets after the
//                         scheduled attempts are exhausted
//   --inject <plan>       deterministic fault injection, e.g. timeout@1,
//                         crash@1, oom@2 (see src/smt/inject.h)
//   --isolate             discharge each attempt in a forked, rlimited
//                         worker process: a solver segfault or runaway
//                         allocation fails (and retries) one attempt
//                         instead of killing the run
//   --jobs <n>            discharge up to <n> obligations concurrently in
//                         sandboxed workers (implies --isolate when > 1);
//                         0 = one per hardware thread. Verdicts, report
//                         ordering, and --dump-smt2 file sets are identical
//                         to --jobs 1
//   --portfolio           race the natural-proof tactic rungs per
//                         obligation and take the first definitive answer,
//                         killing the losers (implies --isolate)
//   --mem-limit-mb <mb>   RLIMIT_AS cap for isolated workers; 0 = no cap
//   --journal <file>      append every obligation outcome to a crash-safe
//                         JSONL journal (write-then-flush per record)
//   --resume              with --journal: skip obligations the journal
//                         already proves, replay everything else
//   --no-unfold           disable unfolding across the footprint (ablation)
//   --no-frames           disable frame instantiation (ablation)
//   --no-axioms           disable user-axiom instantiation (ablation)
//   --dump-smt2 <d>       write every dispatch attempt's SMT-LIB2 into <d>
//   --verbose             print every obligation, not just per-routine rows
//
// Exit codes:
//   0  every routine verified
//   1  a genuine proof failure: a counterexample, a vacuous contract, or an
//      obligation the solver answered but could not prove
//   2  usage error
//   3  verification incomplete for infrastructure reasons only (timeouts,
//      solver crashes, resource exhaustion, injected faults) — "the solver
//      flaked", not "a bug was found"; CI can retry on 3 and alarm on 1
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>

using namespace dryad;

int main(int Argc, char **Argv) {
  VerifyOptions Opts;
  bool Verbose = false;
  std::vector<std::string> Files;

  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--timeout") && I + 1 < Argc)
      Opts.TimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--attempts") && I + 1 < Argc)
      Opts.Attempts = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--proc-budget-ms") && I + 1 < Argc)
      Opts.ProcBudgetMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-degrade"))
      Opts.DegradeTactics = false;
    else if (!std::strcmp(Argv[I], "--inject") && I + 1 < Argc) {
      std::string Err;
      std::optional<FaultPlan> Plan = FaultPlan::parse(Argv[++I], Err);
      if (!Plan) {
        std::fprintf(stderr, "--inject: %s\n", Err.c_str());
        return 2;
      }
      Opts.Inject = *Plan;
    } else if (!std::strcmp(Argv[I], "--isolate"))
      Opts.Isolate = true;
    else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      Opts.Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
      if (Opts.Jobs == 0) {
        Opts.Jobs = std::thread::hardware_concurrency();
        if (Opts.Jobs == 0)
          Opts.Jobs = 1;
      }
    } else if (!std::strcmp(Argv[I], "--portfolio"))
      Opts.Portfolio = true;
    else if (!std::strcmp(Argv[I], "--mem-limit-mb") && I + 1 < Argc)
      Opts.MemLimitMb = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--journal") && I + 1 < Argc)
      Opts.JournalPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--resume"))
      Opts.Resume = true;
    else if (!std::strcmp(Argv[I], "--no-unfold"))
      Opts.Natural.Unfold = false;
    else if (!std::strcmp(Argv[I], "--no-frames"))
      Opts.Natural.Frames = false;
    else if (!std::strcmp(Argv[I], "--no-axioms"))
      Opts.Natural.Axioms = false;
    else if (!std::strcmp(Argv[I], "--dump-smt2") && I + 1 < Argc)
      Opts.DumpSmt2Dir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Argv[I]);
      return 2;
    } else {
      Files.push_back(Argv[I]);
    }
  }
  if (Files.empty()) {
    std::fprintf(stderr, "usage: dryadv [options] file.dryad...\n");
    return 2;
  }
  if (Opts.Resume && Opts.JournalPath.empty()) {
    std::fprintf(stderr, "--resume requires --journal <file>\n");
    return 2;
  }

  bool AllVerified = true;
  // Exit-code taxonomy: a genuine failure (counterexample, vacuous
  // contract, honestly-unproved obligation, unparseable input) beats an
  // infrastructure failure — a refutation stays a refutation even if other
  // obligations flaked.
  bool AnyGenuineFailure = false;
  for (const std::string &File : Files) {
    Module M;
    DiagEngine Diags;
    if (!parseModuleFile(File, M, Diags)) {
      std::fprintf(stderr, "%s:\n%s", File.c_str(), Diags.str().c_str());
      AllVerified = false;
      AnyGenuineFailure = true;
      continue;
    }
    Verifier V(M, Opts);
    if (!V.journalError().empty())
      std::fprintf(stderr, "warning: %s (continuing without a journal)\n",
                   V.journalError().c_str());
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    if (Diags.hasErrors())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    std::printf("%s", formatResults(File, Results).c_str());
    if (Verbose)
      for (const ProcResult &R : Results)
        for (const ObligationResult &O : R.Obligations)
          std::printf("  %-60s %s (%u attempt%s, %.2fs)%s\n", O.Name.c_str(),
                      O.Status == SmtStatus::Unsat  ? "proved"
                      : O.Status == SmtStatus::Sat ? "cex"
                      : O.Failure == FailureKind::None
                          ? "unknown"
                          : failureKindName(O.Failure),
                      O.Attempts, O.Attempts == 1 ? "" : "s", O.Seconds,
                      O.FromJournal ? " [journal]" : "");
    for (const ProcResult &R : Results) {
      AllVerified &= R.Verified;
      if (R.Verified)
        continue;
      bool ProcInfra = false, ProcGenuine = false;
      auto endsWith = [](const std::string &S, const char *Suffix) {
        size_t N = std::strlen(Suffix);
        return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
      };
      for (const ObligationResult &O : R.Obligations) {
        // Advisory records never fail a proc, so they must not color the
        // exit code of one that failed for another reason.
        if (endsWith(O.Name, "[vacuity skipped]"))
          continue;
        if (O.Status == SmtStatus::Sat)
          ProcGenuine = true; // counterexample
        else if (O.Status == SmtStatus::Unknown) {
          // SolverUnknown is the solver honestly answering "can't prove" —
          // an unproved obligation, not a flake. Same taxonomy split as
          // summarize() in report.cpp.
          bool Infra = O.Failure != FailureKind::None &&
                       O.Failure != FailureKind::SolverUnknown;
          (Infra ? ProcInfra : ProcGenuine) = true;
        } else if (endsWith(O.Name, "[vacuity]"))
          ProcGenuine = true; // vacuous contract: a spec bug, not a flake
      }
      // A proc can also fail with no failing obligation (VC generation
      // errors); that is a genuine failure, not a solver flake.
      AnyGenuineFailure |= ProcGenuine || !ProcInfra;
    }
  }
  if (AllVerified)
    return 0;
  return AnyGenuineFailure ? 1 : 3;
}
