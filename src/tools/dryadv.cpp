//===--- dryadv.cpp - Command-line verifier ----------------------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// Usage: dryadv [options] file.dryad...
//   --timeout <ms>        per-obligation Z3 deadline ceiling (default 60000)
//   --attempts <n>        dispatch attempts per obligation with escalating
//                         deadlines and reseeding (default 3)
//   --proc-budget-ms <ms> wall-clock budget per procedure; 0 = unlimited
//   --vacuity-timeout <ms> deadline for precondition-vacuity probes
//                         (default 2000, capped by --timeout). A probe that
//                         times out is advisory-unknown and re-probed on
//                         the next run, so generous values help --store and
//                         --serve runs converge to all-hits
//   --no-vacuity          skip precondition-vacuity probes entirely
//                         (ablation; a vacuous contract then reads as
//                         verified, as in the original tool)
//   --no-degrade          don't retry with reduced tactic sets after the
//                         scheduled attempts are exhausted
//   --inject <plan>       deterministic fault injection, e.g. timeout@1,
//                         crash@1, oom@2 (see src/smt/inject.h). Under
//                         --shards, crash@N is consumed by the supervisor:
//                         it SIGKILLs the Nth (1-based) shard once after its
//                         first journal record, exercising recovery; the
//                         rest of the plan is forwarded to the shard drivers
//   --isolate             discharge each attempt in a forked, rlimited
//                         worker process: a solver segfault or runaway
//                         allocation fails (and retries) one attempt
//                         instead of killing the run
//   --jobs <n>            discharge up to <n> obligations concurrently in
//                         sandboxed workers (implies --isolate when > 1);
//                         0 = one per hardware thread. Verdicts, report
//                         ordering, and --dump-smt2 file sets are identical
//                         to --jobs 1
//   --portfolio           race the natural-proof tactic rungs per
//                         obligation and take the first definitive answer,
//                         killing the losers (implies --isolate)
//   --backend NAME[:PATH] solver backend: "z3" (the in-process Z3 API, the
//                         default), or any SMT-LIB2 solver binary on $PATH
//                         ("cvc5", "cvc4", a second "z3"); :PATH pins the
//                         binary. Backend identity is baked into journal
//                         and store keys, so switching backends re-solves
//                         rather than replaying another solver's proofs
//   --backends a,b,c      several backends, primary first (implies
//                         --portfolio when more than one): every obligation
//                         races the primary's tactic rungs plus one
//                         full-tactics rung per secondary as a cross-check.
//                         A backend whose binary is missing or fails its
//                         version probe is dropped with a warning, never an
//                         error; if every backend is dropped the in-process
//                         Z3 API takes over. Two backends answering sat vs
//                         unsat on one obligation is a divergence: both
//                         answers are reported, a dump is written, and the
//                         run exits 3 — never a silent wrong verdict
//   --list-backends       probe the configured (or default) backends, print
//                         name/availability/version, and exit
//   --warm-workers        persistent solver workers (the default): each pool
//                         slot forks once and streams framed requests to it,
//                         amortizing fork + solver init across the queue.
//                         Verdicts and reports are byte-identical to --cold
//   --cold                fork one worker per obligation attempt (the
//                         historical sandbox); escape hatch for warm-worker
//                         trouble
//   --recycle-after <k>   retire a warm worker after <k> answers (default
//                         64; 0 = never on count). RSS pressure and any
//                         non-verdict answer recycle regardless
//   --json <file>         also write a machine-readable report: per-routine
//                         verdicts plus worker lifecycle stats (spawns,
//                         recycles and why, obligations served, solve time)
//   --mem-limit-mb <mb>   RLIMIT_AS cap for isolated workers; 0 = no cap
//   --journal <file>      append every obligation outcome to a crash-safe
//                         JSONL journal (write-then-flush per record, each
//                         append under flock(2))
//   --fsync-journal       fsync(2) the journal after every record: bounds a
//                         power loss, not just a process kill, to one torn
//                         tail record
//   --resume              with --journal: skip obligations the journal
//                         already proves, replay everything else
//   --shard <i>/<n>       discharge only the 1/nth slice of the planned
//                         obligations whose content key maps to shard <i>
//                         (0-based); requires --journal. Every shard plans
//                         the whole module, so the partition needs no
//                         coordination; the per-shard journals merge into a
//                         complete run (see --shards)
//   --shards <n>          supervise <n> forked shard drivers over this
//                         machine: monitor each by wait status and journal
//                         heartbeat, SIGKILL+retry a crashed or hung shard
//                         with its surviving journal (completed obligations
//                         are not redone), then merge the per-shard journals
//                         into --journal's path and assemble the report from
//                         it. Requires --journal. A shard still dead after
//                         --shard-retries relaunches degrades the run to a
//                         partial report and exit 3
//   --shard-retries <k>   relaunches per crashed/hung shard (default 2)
//   --shard-stall-ms <ms> declare a shard hung when its journal has not
//                         grown for <ms>; 0 (default) derives a ceiling from
//                         the retry ladder's worst case
//   --from-journal        dispatch nothing: plan every obligation and
//                         assemble the report from --journal's records (what
//                         the supervisor runs after the merge). An
//                         obligation without a record, or a journaled proof
//                         whose vacuity verdict is missing, is reported as
//                         an infrastructure failure, never trusted
//   --store <file>        persistent cross-run proof store (a ccache for
//                         proofs): obligations whose content key already
//                         carries a proved verdict are answered without
//                         solving, fresh outcomes are appended (CRC-checked,
//                         flock'd, fsync'd). Corruption is quarantined and
//                         re-solved, never trusted and never fatal
//   --store-compact <f>   rewrite <f> later-records-win (drops superseded,
//                         quarantined, and torn bytes) and exit
//   --store-verify <f>    fsck <f> without modifying it: report torn tails,
//                         CRC failures, and duplicate-key divergence; exit 0
//                         clean, 3 findings, 2 unreadable
//   --serve <sock>        daemon mode (requires --store): hold the warm
//                         fleet and the store open across requests on a
//                         unix socket; each connection ships a module and
//                         gets back verdicts, per-request store counters,
//                         and a --json report. Requests are served
//                         CONCURRENTLY by a pool of session threads, each
//                         with its own slice of the warm fleet; past
//                         capacity the daemon answers a retryable busy
//                         frame instead of queueing without bound. The
//                         first SIGINT/SIGTERM drains gracefully (stop
//                         accepting, finish in-flight work, fsync the
//                         store, reap the fleet, unlink the socket, exit
//                         0); a second one escalates to the hard kill path
//   --serve-max-requests <n>  exit the daemon after <n> requests (tests)
//   --serve-jobs <n>      concurrent session threads (default: one per CPU)
//   --serve-queue <n>     admitted requests that may wait for a session
//                         past --serve-jobs in flight; beyond this new
//                         requests get the retryable busy reply (default 16)
//   --serve-read-timeout-ms <ms>  per-frame read/write deadline per client:
//                         a slow or half-open client costs one fd, never a
//                         session thread (default 30000)
//   --serve-deadline-ms <ms>  per-request wall deadline; an overrunning
//                         request is aborted (workers SIGKILLed, recycled)
//                         and answered exit 3 (default 0 = none)
//   --serve-drain-ms <ms> graceful-drain budget before in-flight requests
//                         are aborted (default 30000)
//   --remote <sock>       thin-client mode: ship each file to the daemon at
//                         <sock> and replay its answer (stdout byte-
//                         identical to a local run). Connect/request
//                         timeouts and bounded retries below; when the
//                         daemon stays unreachable the client solves
//                         locally (or exits 3 under --no-remote-fallback).
//                         A busy reply from an overloaded daemon is honored
//                         with backoff on its own retry budget — it never
//                         triggers fallback and never becomes exit 1
//   --ping                with --remote: print the daemon's health snapshot
//                         (uptime, served/active/queued, store counters)
//                         without planning a verification; exit 0 on a
//                         healthy reply, 3 when the daemon is unreachable
//   --connect-timeout-ms <ms>  per-connect deadline (default 2000)
//   --request-timeout-ms <ms>  per-request solve deadline (default 600000)
//   --remote-retries <k>  re-attempts after the first failed try (default 2)
//   --no-remote-fallback  exit 3 instead of solving locally when the daemon
//                         cannot be reached or is lost mid-request
//   --no-unfold           disable unfolding across the footprint (ablation)
//   --no-frames           disable frame instantiation (ablation)
//   --no-axioms           disable user-axiom instantiation (ablation)
//   --dump-smt2 <d>       write every dispatch attempt's SMT-LIB2 into <d>
//   --verbose             print every obligation, not just per-routine rows
//
// Exit codes:
//   0  every routine verified
//   1  a genuine proof failure: a counterexample, a vacuous contract, or an
//      obligation the solver answered but could not prove
//   2  usage error
//   3  verification incomplete for infrastructure reasons only (timeouts,
//      solver crashes, resource exhaustion, injected faults, lost shards) —
//      "the solver flaked", not "a bug was found"; CI can retry on 3 and
//      alarm on 1
//   130  interrupted (SIGINT/SIGTERM); the journal is flushed and every
//        child — solver workers and shard drivers — is killed and reaped
//
//===----------------------------------------------------------------------===//

#include "backend/backend.h"
#include "lang/parser.h"
#include "sched/shard.h"
#include "smt/sandbox.h"
#include "store/remote.h"
#include "store/serve.h"
#include "store/store.h"
#include "verifier/journal.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace dryad;

namespace {

/// Parses "<i>/<n>" for --shard. Returns false on malformed input.
bool parseShardSpec(const char *Spec, unsigned &Index, unsigned &Count) {
  char *End = nullptr;
  long I = std::strtol(Spec, &End, 10);
  if (End == Spec || *End != '/' || I < 0)
    return false;
  const char *Rest = End + 1;
  long N = std::strtol(Rest, &End, 10);
  if (End == Rest || *End != '\0' || N < 1 || I >= N)
    return false;
  Index = static_cast<unsigned>(I);
  Count = static_cast<unsigned>(N);
  return true;
}

/// Parses, verifies, and reports every file under \p Opts; returns the
/// process exit code (0/1/3 taxonomy above). This is the whole single-
/// process verifier — the supervisor runs it once per shard driver (in a
/// fork, with the shard filter set) and once more in-process for report
/// assembly. When \p SliceCounts is non-null, each file's per-shard
/// obligation counts are accumulated into it.
int runFiles(const std::vector<std::string> &Files, const VerifyOptions &Opts,
             bool Verbose, std::vector<size_t> *SliceCounts = nullptr,
             const std::string &JsonPath = "",
             const std::vector<std::pair<std::string, std::string>>
                 &BackendLabels = {}) {
  bool AllVerified = true;
  PoolStats Workers;
  std::vector<FileReport> Reports;
  std::vector<DivergenceAlarm> Divergences;
  // Exit-code taxonomy: a genuine failure (counterexample, vacuous
  // contract, honestly-unproved obligation, unparseable input) beats an
  // infrastructure failure — a refutation stays a refutation even if other
  // obligations flaked.
  bool AnyGenuineFailure = false;
  for (const std::string &File : Files) {
    Module M;
    DiagEngine Diags;
    if (!parseModuleFile(File, M, Diags)) {
      std::fprintf(stderr, "%s:\n%s", File.c_str(), Diags.str().c_str());
      AllVerified = false;
      AnyGenuineFailure = true;
      continue;
    }
    Verifier V(M, Opts);
    if (!V.journalError().empty()) {
      if (Opts.ShardCount > 1 || Opts.AssembleFromJournal) {
        // Sharding without a journal is meaningless: the records ARE the
        // shard's output (and assembly's input). Fail loudly instead of
        // silently verifying the full module.
        std::fprintf(stderr, "error: %s\n", V.journalError().c_str());
        AllVerified = false;
        continue;
      }
      std::fprintf(stderr, "warning: %s (continuing without a journal)\n",
                   V.journalError().c_str());
    }
    if (!V.storeError().empty())
      std::fprintf(stderr, "warning: %s (continuing without a store)\n",
                   V.storeError().c_str());
    // From here on, SIGINT/SIGTERM flushes this journal and the proof
    // store, and kills every forked worker before exiting 130.
    installTerminationHandlers(V.journalFd(), V.storeFd());
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    Workers.accumulate(V.poolStats());
    Divergences.insert(Divergences.end(), V.divergences().begin(),
                       V.divergences().end());
    if (SliceCounts) {
      const std::vector<size_t> &S = V.shardSliceCounts();
      if (SliceCounts->size() < S.size())
        SliceCounts->resize(S.size(), 0);
      for (size_t I = 0; I != S.size(); ++I)
        (*SliceCounts)[I] += S[I];
    }
    if (Diags.hasErrors())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    std::printf("%s", formatResults(File, Results).c_str());
    if (Verbose)
      for (const ProcResult &R : Results)
        for (const ObligationResult &O : R.Obligations)
          std::printf("  %-60s %s (%u attempt%s, %.2fs)%s\n", O.Name.c_str(),
                      O.Status == SmtStatus::Unsat  ? "proved"
                      : O.Status == SmtStatus::Sat ? "cex"
                      : O.Failure == FailureKind::None
                          ? "unknown"
                          : failureKindName(O.Failure),
                      O.Attempts, O.Attempts == 1 ? "" : "s", O.Seconds,
                      O.FromJournal ? " [journal]"
                      : O.FromStore ? " [store]"
                                    : "");
    classifyResults(Results, AllVerified, AnyGenuineFailure);
    Reports.push_back({File, std::move(Results)});
  }
  int Exit = AllVerified ? 0 : AnyGenuineFailure ? 1 : 3;
  if (!Divergences.empty()) {
    // Two solvers contradicted each other on the same query, so one of
    // them (or our translation) is unsound and no verdict of this run can
    // be trusted — whatever the per-routine rows said, the only honest
    // exit is infrastructure failure. Both answers go to stderr and to a
    // quarantined dump, mirroring the store's divergence fsck.
    auto StatusWord = [](SmtStatus S) {
      return S == SmtStatus::Unsat ? "unsat"
             : S == SmtStatus::Sat ? "sat"
                                   : "unknown";
    };
    std::string DumpPath =
        (Opts.DumpSmt2Dir.empty() ? std::string()
                                  : Opts.DumpSmt2Dir + "/") +
        "dryadv-divergence.log";
    FILE *Dump = std::fopen(DumpPath.c_str(), "w");
    for (const DivergenceAlarm &A : Divergences) {
      std::fprintf(stderr,
                   "error: backend divergence on '%s': %s answered %s, %s "
                   "answered %s\n",
                   A.Obligation.c_str(), A.WinnerBackend.c_str(),
                   StatusWord(A.WinnerStatus), A.OtherBackend.c_str(),
                   StatusWord(A.OtherStatus));
      if (Dump)
        std::fprintf(Dump, "obligation: %s\nwinner: %s -> %s\ndissent: %s "
                           "-> %s\ndetail: %s\n\n",
                     A.Obligation.c_str(), A.WinnerBackend.c_str(),
                     StatusWord(A.WinnerStatus), A.OtherBackend.c_str(),
                     StatusWord(A.OtherStatus), A.Detail.c_str());
    }
    if (Dump) {
      std::fclose(Dump);
      std::fprintf(stderr, "error: %zu backend divergence(s); both answers "
                           "dumped to %s; exiting 3 (infrastructure), not "
                           "trusting either verdict\n",
                   Divergences.size(), DumpPath.c_str());
    } else {
      std::fprintf(stderr, "error: %zu backend divergence(s); cannot write "
                           "%s; exiting 3 (infrastructure)\n",
                   Divergences.size(), DumpPath.c_str());
    }
    Exit = 3;
  }
  // Worker lifecycle, on stderr so stdout stays the plain report (and warm
  // vs cold runs stay byte-identical on stdout). Store counters count too:
  // an all-hits run spawns no workers but its cache effectiveness is the
  // whole story.
  if (Workers.spawns() != 0 || Workers.Served != 0 || Workers.StoreHits != 0 ||
      Workers.StoreMisses != 0 || Workers.StoreQuarantined != 0)
    std::fprintf(stderr, "%s", formatWorkerStats(Workers).c_str());
  if (!JsonPath.empty()) {
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write --json report to %s\n",
                   JsonPath.c_str());
    } else {
      std::string J = jsonReport(Reports, Workers, Exit, BackendLabels);
      std::fwrite(J.data(), 1, J.size(), F);
      std::fclose(F);
    }
  }
  return Exit;
}

/// The `--shards n` supervisor: fork shard drivers, babysit them, merge
/// their journals into Opts.JournalPath, assemble the report from the
/// merge. Returns the process exit code.
int runSupervised(const std::vector<std::string> &Files,
                  const VerifyOptions &Opts, bool Verbose, unsigned Shards,
                  unsigned Retries, unsigned StallMs,
                  const std::string &JsonPath,
                  const std::vector<std::pair<std::string, std::string>>
                      &BackendLabels) {
  ShardSupervisorOptions SO;
  SO.Shards = Shards;
  SO.MaxRetries = Retries;
  // Auto stall ceiling: a live shard journals at least once per finished
  // obligation, and one obligation's worst case is the whole retry ladder —
  // every scheduled attempt at the full deadline — plus degraded redispatch
  // slack. Journal growth slower than that means a wedged driver.
  SO.StallMs = StallMs != 0
                   ? StallMs
                   : (Opts.Attempts + 2) * std::max(1u, Opts.TimeoutMs) + 30000;
  SO.Inject = Opts.Inject;
  for (unsigned I = 0; I != Shards; ++I) {
    SO.ShardJournals.push_back(Opts.JournalPath + ".shard" +
                               std::to_string(I));
    // Stale journals from an earlier supervised run would make the
    // heartbeat lie (pre-grown files) and the merge resurrect outdated
    // verdicts. Fresh launches start clean; only retries resume.
    unlink(SO.ShardJournals.back().c_str());
  }

  // Children inherit these handlers replaced by their own (spawnShard
  // resets to SIG_DFL); the supervisor itself holds no journal writer, so
  // there is nothing to fsync — just kill and reap the tree.
  installTerminationHandlers(-1);

  ShardSupervisor Sup(SO, [&](unsigned Shard, bool Resuming) {
    VerifyOptions Child = Opts;
    Child.ShardIndex = Shard;
    Child.ShardCount = Shards;
    Child.JournalPath = Opts.JournalPath + ".shard" + std::to_string(Shard);
    Child.Resume = Resuming;
    Child.Inject = Opts.Inject.withoutCrashes();
    return runFiles(Files, Child, /*Verbose=*/false);
  });
  bool AllCompleted = Sup.run();

  std::string MergeErr;
  if (!Journal::mergeFiles(SO.ShardJournals, Opts.JournalPath, MergeErr)) {
    std::fprintf(stderr, "error: journal merge failed: %s\n",
                 MergeErr.c_str());
    return 3;
  }

  // Assemble the final report by re-planning every obligation against the
  // merged journal. Verdict-wise this is byte-identical to an unsharded
  // run; a lost shard surfaces as per-obligation infrastructure failures.
  VerifyOptions Asm = Opts;
  Asm.ShardCount = Shards; // for the slice tally below
  Asm.AssembleFromJournal = true;
  Asm.Resume = false;
  Asm.Inject = FaultPlan();
  // The assembly dispatches nothing, so its --json worker stats honestly
  // report zero spawns; the shard drivers' own stats went to their stderr.
  std::vector<size_t> SliceCounts;
  int Exit = runFiles(Files, Asm, Verbose, &SliceCounts, JsonPath,
                      BackendLabels);

  // Recovery accounting, on stderr so stdout stays the plain report.
  size_t TotalRecovered = 0;
  unsigned TotalRetries = 0;
  for (unsigned I = 0; I != Shards; ++I) {
    const ShardStat &S = Sup.stats()[I];
    size_t Slice = I < SliceCounts.size() ? SliceCounts[I] : 0;
    TotalRecovered += S.RecoveredRecords;
    TotalRetries += S.Launches - 1;
    std::fprintf(stderr,
                 "shard %u/%u: %s, slice=%zu launches=%u crashes=%u "
                 "stalls=%u recovered=%zu\n",
                 I, Shards, S.Completed ? "completed" : "LOST", Slice,
                 S.Launches, S.Crashes, S.Stalls, S.RecoveredRecords);
    if (!S.Completed && Slice != 0 && Exit == 0)
      Exit = 3; // a lost shard with owned work can never be a clean pass
  }
  if (TotalRetries)
    std::fprintf(stderr,
                 "shard supervisor: %u retr%s, %zu journaled obligation%s "
                 "recovered without re-solving\n",
                 TotalRetries, TotalRetries == 1 ? "y" : "ies",
                 TotalRecovered, TotalRecovered == 1 ? "" : "s");
  if (!AllCompleted)
    std::fprintf(stderr,
                 "shard supervisor: partial report — at least one shard "
                 "exhausted its %u retries\n",
                 Retries);
  return Exit;
}

/// The `--remote` thin client: one daemon round-trip per file, replaying
/// the daemon's stdout bytes and exit taxonomy. A file whose round-trip
/// fails after the retry ladder is solved locally (per-file fallback) —
/// unless \p Fallback is off, in which case the run is an infrastructure
/// failure (exit 3), never a disproof. Returns the combined exit code.
int runRemote(const std::vector<std::string> &Files, const RemoteOptions &RO,
              const VerifyOptions &Opts, bool Verbose, bool Fallback,
              const std::string &JsonPath) {
  bool AllVerified = true, AnyGenuineFailure = false, AnyInfra = false;
  unsigned Hits = 0, Misses = 0, Quarantined = 0;
  std::string LastJson;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "%s: cannot read file\n", File.c_str());
      AllVerified = false;
      AnyGenuineFailure = true;
      continue;
    }
    std::ostringstream Ss;
    Ss << In.rdbuf();

    ServeResponse Resp;
    std::string Err;
    RemoteStatus Status = remoteVerify(RO, File, Ss.str(), Resp, Err);
    if (Status == RemoteStatus::Ok) {
      if (!Resp.Diag.empty())
        std::fprintf(stderr, "%s", Resp.Diag.c_str());
      std::fwrite(Resp.Report.data(), 1, Resp.Report.size(), stdout);
      Hits += Resp.StoreHits;
      Misses += Resp.StoreMisses;
      Quarantined = std::max(Quarantined, Resp.StoreQuarantined);
      LastJson = Resp.Json;
      AllVerified &= Resp.Exit == 0;
      AnyGenuineFailure |= Resp.Exit == 1;
      AnyInfra |= Resp.Exit == 3;
      continue;
    }
    if (Status == RemoteStatus::Overloaded) {
      // The daemon is alive, just saturated past the backoff budget. It
      // owns the store — solving locally behind its back would fork the
      // cache — so this is an infrastructure retry (exit 3), never a
      // fallback and never a disproof.
      std::fprintf(stderr, "error: %s; try again later\n", Err.c_str());
      AllVerified = false;
      AnyInfra = true;
      continue;
    }
    if (!Fallback) {
      std::fprintf(stderr,
                   "error: %s; daemon unreachable and --no-remote-fallback "
                   "is set\n",
                   Err.c_str());
      AllVerified = false;
      AnyInfra = true;
      continue;
    }
    std::fprintf(stderr, "remote: %s; solving %s locally\n", Err.c_str(),
                 File.c_str());
    int Local = runFiles({File}, Opts, Verbose, /*SliceCounts=*/nullptr,
                         /*JsonPath=*/"");
    AllVerified &= Local == 0;
    AnyGenuineFailure |= Local == 1;
    AnyInfra |= Local == 3;
  }
  if (Hits || Misses || Quarantined)
    std::fprintf(stderr, "remote: store hits=%u misses=%u quarantined=%u\n",
                 Hits, Misses, Quarantined);
  if (!JsonPath.empty() && !LastJson.empty()) {
    if (Files.size() > 1)
      std::fprintf(stderr, "warning: --json under --remote records the last "
                           "file's report only\n");
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write --json report to %s\n",
                   JsonPath.c_str());
    } else {
      std::fwrite(LastJson.data(), 1, LastJson.size(), F);
      std::fclose(F);
    }
  }
  (void)AnyInfra;
  return AllVerified ? 0 : AnyGenuineFailure ? 1 : 3;
}

} // namespace

int main(int Argc, char **Argv) {
  VerifyOptions Opts;
  bool Verbose = false;
  unsigned Shards = 0; // --shards n supervisor mode when > 1
  unsigned ShardRetries = 2;
  unsigned ShardStallMs = 0;
  std::string JsonPath;
  std::string CompactPath, FsckPath; // --store-compact / --store-verify
  std::string ServeSock, RemoteSock; // --serve / --remote
  unsigned ServeMaxRequests = 0;
  unsigned ServeJobs = 0;
  unsigned ServeQueue = 16;
  unsigned ServeReadTimeoutMs = 30000;
  unsigned ServeDeadlineMs = 0;
  unsigned ServeDrainMs = 30000;
  RemoteOptions Remote;
  bool RemoteFallback = true;
  bool Ping = false;
  std::vector<BackendSpec> BackendReqs; // --backend/--backends, in order
  bool ListBackends = false;
  std::vector<std::string> Files;

  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--timeout") && I + 1 < Argc)
      Opts.TimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--attempts") && I + 1 < Argc)
      Opts.Attempts = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--proc-budget-ms") && I + 1 < Argc)
      Opts.ProcBudgetMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--vacuity-timeout") && I + 1 < Argc)
      Opts.VacuityTimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-vacuity"))
      Opts.CheckVacuity = false;
    else if (!std::strcmp(Argv[I], "--no-degrade"))
      Opts.DegradeTactics = false;
    else if (!std::strcmp(Argv[I], "--inject") && I + 1 < Argc) {
      std::string Err;
      std::optional<FaultPlan> Plan = FaultPlan::parse(Argv[++I], Err);
      if (!Plan) {
        std::fprintf(stderr, "--inject: %s\n", Err.c_str());
        return 2;
      }
      Opts.Inject = *Plan;
    } else if (!std::strcmp(Argv[I], "--isolate"))
      Opts.Isolate = true;
    else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      Opts.Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
      if (Opts.Jobs == 0) {
        Opts.Jobs = std::thread::hardware_concurrency();
        if (Opts.Jobs == 0)
          Opts.Jobs = 1;
      }
    } else if (!std::strcmp(Argv[I], "--portfolio"))
      Opts.Portfolio = true;
    else if (!std::strcmp(Argv[I], "--backend") && I + 1 < Argc) {
      BackendSpec B;
      std::string Err;
      if (!BackendSpec::parse(Argv[++I], B, Err)) {
        std::fprintf(stderr, "--backend: %s\n", Err.c_str());
        return 2;
      }
      BackendReqs.push_back(B);
    } else if (!std::strcmp(Argv[I], "--backends") && I + 1 < Argc) {
      std::vector<BackendSpec> List;
      std::string Err;
      if (!BackendSpec::parseList(Argv[++I], List, Err)) {
        std::fprintf(stderr, "--backends: %s\n", Err.c_str());
        return 2;
      }
      BackendReqs.insert(BackendReqs.end(), List.begin(), List.end());
    } else if (!std::strcmp(Argv[I], "--list-backends"))
      ListBackends = true;
    else if (!std::strcmp(Argv[I], "--warm-workers"))
      Opts.WarmWorkers = true;
    else if (!std::strcmp(Argv[I], "--cold"))
      Opts.WarmWorkers = false;
    else if (!std::strcmp(Argv[I], "--recycle-after") && I + 1 < Argc)
      Opts.RecycleAfter = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--mem-limit-mb") && I + 1 < Argc)
      Opts.MemLimitMb = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--journal") && I + 1 < Argc)
      Opts.JournalPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--fsync-journal"))
      Opts.FsyncJournal = true;
    else if (!std::strcmp(Argv[I], "--resume"))
      Opts.Resume = true;
    else if (!std::strcmp(Argv[I], "--shard") && I + 1 < Argc) {
      if (!parseShardSpec(Argv[++I], Opts.ShardIndex, Opts.ShardCount)) {
        std::fprintf(stderr,
                     "--shard wants <i>/<n> with 0 <= i < n (got '%s')\n",
                     Argv[I]);
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--shards") && I + 1 < Argc) {
      int N = std::atoi(Argv[++I]);
      if (N < 1) {
        std::fprintf(stderr, "--shards wants a positive count\n");
        return 2;
      }
      Shards = static_cast<unsigned>(N);
    } else if (!std::strcmp(Argv[I], "--shard-retries") && I + 1 < Argc)
      ShardRetries = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--shard-stall-ms") && I + 1 < Argc)
      ShardStallMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--from-journal"))
      Opts.AssembleFromJournal = true;
    else if (!std::strcmp(Argv[I], "--store") && I + 1 < Argc)
      Opts.StorePath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--store-compact") && I + 1 < Argc)
      CompactPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--store-verify") && I + 1 < Argc)
      FsckPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--serve") && I + 1 < Argc)
      ServeSock = Argv[++I];
    else if (!std::strcmp(Argv[I], "--serve-max-requests") && I + 1 < Argc)
      ServeMaxRequests = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--serve-jobs") && I + 1 < Argc)
      ServeJobs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--serve-queue") && I + 1 < Argc)
      ServeQueue = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--serve-read-timeout-ms") && I + 1 < Argc)
      ServeReadTimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--serve-deadline-ms") && I + 1 < Argc)
      ServeDeadlineMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--serve-drain-ms") && I + 1 < Argc)
      ServeDrainMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--ping"))
      Ping = true;
    else if (!std::strcmp(Argv[I], "--remote") && I + 1 < Argc)
      RemoteSock = Argv[++I];
    else if (!std::strcmp(Argv[I], "--connect-timeout-ms") && I + 1 < Argc)
      Remote.ConnectTimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--request-timeout-ms") && I + 1 < Argc)
      Remote.RequestTimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--remote-retries") && I + 1 < Argc)
      Remote.Retries = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-remote-fallback"))
      RemoteFallback = false;
    else if (!std::strcmp(Argv[I], "--no-unfold"))
      Opts.Natural.Unfold = false;
    else if (!std::strcmp(Argv[I], "--no-frames"))
      Opts.Natural.Frames = false;
    else if (!std::strcmp(Argv[I], "--no-axioms"))
      Opts.Natural.Axioms = false;
    else if (!std::strcmp(Argv[I], "--dump-smt2") && I + 1 < Argc)
      Opts.DumpSmt2Dir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Argv[I]);
      return 2;
    } else {
      Files.push_back(Argv[I]);
    }
  }
  // Backend resolution: duplicate names would share cache keys (parseList
  // rejects them within one list; repeated flags are checked here), then
  // every requested backend is probed once. An unavailable backend — binary
  // missing, version probe failing — is dropped with one warning, never a
  // hard error: a host without cvc5 still verifies, it just races fewer
  // rungs. All dropped falls back to the in-process Z3 API.
  for (size_t I = 0; I != BackendReqs.size(); ++I)
    for (size_t J = I + 1; J != BackendReqs.size(); ++J)
      if (BackendReqs[I].Name == BackendReqs[J].Name) {
        std::fprintf(stderr,
                     "duplicate backend name '%s': two backends sharing a "
                     "name would share journal/store keys\n",
                     BackendReqs[I].Name.c_str());
        return 2;
      }
  std::vector<std::pair<std::string, std::string>> BackendLabels;
  {
    std::vector<BackendSpec> ToProbe = BackendReqs;
    if (ToProbe.empty())
      ToProbe.push_back(BackendSpec{"z3", ""}); // the default fleet
    std::vector<BackendSpec> Alive;
    for (const BackendSpec &B : ToProbe) {
      ProbedBackend P = probeBackend(B);
      if (ListBackends) {
        std::printf("%s\t%s\t%s\n", B.str().c_str(),
                    P.Available ? "available" : "unavailable",
                    P.Available ? P.Version.c_str() : P.Error.c_str());
        continue;
      }
      if (!P.Available) {
        std::fprintf(stderr,
                     "warning: backend '%s' unavailable (%s); dropping it "
                     "from the fleet\n",
                     B.str().c_str(), P.Error.c_str());
        continue;
      }
      Alive.push_back(B);
      BackendLabels.push_back({B.Name, P.Version});
    }
    if (ListBackends)
      return 0;
    if (Alive.empty() && !BackendReqs.empty()) {
      std::fprintf(stderr,
                   "warning: every requested backend is unavailable; "
                   "falling back to the in-process z3 API\n");
      ProbedBackend Z = probeBackend(BackendSpec{"z3", ""});
      BackendLabels.push_back({"z3", Z.Version});
    } else if (!BackendReqs.empty()) {
      Opts.Backends = Alive;
      // More than one live backend only makes sense racing: the
      // secondaries' cross-check rungs exist only under the portfolio.
      if (Alive.size() > 1)
        Opts.Portfolio = true;
    }
  }

  // Store maintenance modes need no input files; they act on the segment
  // and exit.
  if (!CompactPath.empty()) {
    std::string Err;
    if (!ProofStore::compact(CompactPath, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    StoreFsck F = ProofStore::verifySegment(CompactPath);
    std::printf("compacted %s: %zu record(s), %zu key(s)\n",
                CompactPath.c_str(), F.ValidRecords, F.DistinctKeys);
    return F.clean() ? 0 : 3;
  }
  if (!FsckPath.empty()) {
    StoreFsck F = ProofStore::verifySegment(FsckPath);
    std::printf("%s", ProofStore::formatFsck(F).c_str());
    if (!F.HeaderOk)
      return 2;
    return F.clean() ? 0 : 3;
  }

  if (!ServeSock.empty()) {
    if (Opts.StorePath.empty()) {
      std::fprintf(stderr, "--serve requires --store <file>: the store is "
                           "what makes the daemon incremental\n");
      return 2;
    }
    if (!RemoteSock.empty() || Shards > 0 || Opts.ShardCount > 1 ||
        Opts.AssembleFromJournal || !Opts.JournalPath.empty()) {
      std::fprintf(stderr, "--serve cannot be combined with --remote, "
                           "--journal, or shard modes\n");
      return 2;
    }
    ServeDaemonOptions SO;
    SO.SocketPath = ServeSock;
    SO.Verify = Opts;
    SO.MaxRequests = ServeMaxRequests;
    SO.ServeJobs = ServeJobs;
    SO.ServeQueue = ServeQueue;
    SO.ReadTimeoutMs = ServeReadTimeoutMs;
    SO.DeadlineMs = ServeDeadlineMs;
    SO.DrainMs = ServeDrainMs;
    SO.BackendLabels = BackendLabels;
    return runServeDaemon(SO);
  }

  if (Ping) {
    if (RemoteSock.empty()) {
      std::fprintf(stderr, "--ping requires --remote <sock>\n");
      return 2;
    }
    Remote.SocketPath = RemoteSock;
    ServeHealth H;
    std::string Err;
    if (!remotePing(Remote, H, Err)) {
      // An unreachable daemon is infrastructure trouble, not a disproof.
      std::fprintf(stderr, "error: ping failed: %s\n", Err.c_str());
      return 3;
    }
    std::string Out = formatServeHealth(H);
    std::fwrite(Out.data(), 1, Out.size(), stdout);
    return 0;
  }

  if (Files.empty()) {
    std::fprintf(stderr, "usage: dryadv [options] file.dryad...\n");
    return 2;
  }
  if (!RemoteSock.empty()) {
    if (Shards > 0 || Opts.ShardCount > 1 || Opts.AssembleFromJournal) {
      std::fprintf(stderr,
                   "--remote cannot be combined with shard modes\n");
      return 2;
    }
    Remote.SocketPath = RemoteSock;
    Remote.Fallback = RemoteFallback;
    return runRemote(Files, Remote, Opts, Verbose, RemoteFallback, JsonPath);
  }
  if (Opts.Resume && Opts.JournalPath.empty()) {
    std::fprintf(stderr, "--resume requires --journal <file>\n");
    return 2;
  }
  if ((Opts.ShardCount > 1 || Shards > 0 || Opts.AssembleFromJournal) &&
      Opts.JournalPath.empty()) {
    std::fprintf(stderr,
                 "--shard/--shards/--from-journal require --journal <file>: "
                 "the journal is the shard's output and the merge's input\n");
    return 2;
  }
  if (Shards > 0 && (Opts.ShardCount > 1 || Opts.AssembleFromJournal)) {
    std::fprintf(stderr,
                 "--shards supervises its own shard drivers; it cannot be "
                 "combined with --shard or --from-journal\n");
    return 2;
  }

  if (Shards > 1)
    return runSupervised(Files, Opts, Verbose, Shards, ShardRetries,
                         ShardStallMs, JsonPath, BackendLabels);
  // --shards 1 is a degenerate but valid request: run unsharded.
  return runFiles(Files, Opts, Verbose, /*SliceCounts=*/nullptr, JsonPath,
                  BackendLabels);
}
