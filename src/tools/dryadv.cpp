//===--- dryadv.cpp - Command-line verifier ----------------------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// Usage: dryadv [options] file.dryad...
//   --timeout <ms>        per-obligation Z3 deadline ceiling (default 60000)
//   --attempts <n>        dispatch attempts per obligation with escalating
//                         deadlines and reseeding (default 3)
//   --proc-budget-ms <ms> wall-clock budget per procedure; 0 = unlimited
//   --no-degrade          don't retry with reduced tactic sets after the
//                         scheduled attempts are exhausted
//   --inject <plan>       deterministic fault injection, e.g. timeout@1,
//                         crash@1, oom@2 (see src/smt/inject.h). Under
//                         --shards, crash@N is consumed by the supervisor:
//                         it SIGKILLs the Nth (1-based) shard once after its
//                         first journal record, exercising recovery; the
//                         rest of the plan is forwarded to the shard drivers
//   --isolate             discharge each attempt in a forked, rlimited
//                         worker process: a solver segfault or runaway
//                         allocation fails (and retries) one attempt
//                         instead of killing the run
//   --jobs <n>            discharge up to <n> obligations concurrently in
//                         sandboxed workers (implies --isolate when > 1);
//                         0 = one per hardware thread. Verdicts, report
//                         ordering, and --dump-smt2 file sets are identical
//                         to --jobs 1
//   --portfolio           race the natural-proof tactic rungs per
//                         obligation and take the first definitive answer,
//                         killing the losers (implies --isolate)
//   --warm-workers        persistent solver workers (the default): each pool
//                         slot forks once and streams framed requests to it,
//                         amortizing fork + solver init across the queue.
//                         Verdicts and reports are byte-identical to --cold
//   --cold                fork one worker per obligation attempt (the
//                         historical sandbox); escape hatch for warm-worker
//                         trouble
//   --recycle-after <k>   retire a warm worker after <k> answers (default
//                         64; 0 = never on count). RSS pressure and any
//                         non-verdict answer recycle regardless
//   --json <file>         also write a machine-readable report: per-routine
//                         verdicts plus worker lifecycle stats (spawns,
//                         recycles and why, obligations served, solve time)
//   --mem-limit-mb <mb>   RLIMIT_AS cap for isolated workers; 0 = no cap
//   --journal <file>      append every obligation outcome to a crash-safe
//                         JSONL journal (write-then-flush per record, each
//                         append under flock(2))
//   --fsync-journal       fsync(2) the journal after every record: bounds a
//                         power loss, not just a process kill, to one torn
//                         tail record
//   --resume              with --journal: skip obligations the journal
//                         already proves, replay everything else
//   --shard <i>/<n>       discharge only the 1/nth slice of the planned
//                         obligations whose content key maps to shard <i>
//                         (0-based); requires --journal. Every shard plans
//                         the whole module, so the partition needs no
//                         coordination; the per-shard journals merge into a
//                         complete run (see --shards)
//   --shards <n>          supervise <n> forked shard drivers over this
//                         machine: monitor each by wait status and journal
//                         heartbeat, SIGKILL+retry a crashed or hung shard
//                         with its surviving journal (completed obligations
//                         are not redone), then merge the per-shard journals
//                         into --journal's path and assemble the report from
//                         it. Requires --journal. A shard still dead after
//                         --shard-retries relaunches degrades the run to a
//                         partial report and exit 3
//   --shard-retries <k>   relaunches per crashed/hung shard (default 2)
//   --shard-stall-ms <ms> declare a shard hung when its journal has not
//                         grown for <ms>; 0 (default) derives a ceiling from
//                         the retry ladder's worst case
//   --from-journal        dispatch nothing: plan every obligation and
//                         assemble the report from --journal's records (what
//                         the supervisor runs after the merge). An
//                         obligation without a record, or a journaled proof
//                         whose vacuity verdict is missing, is reported as
//                         an infrastructure failure, never trusted
//   --no-unfold           disable unfolding across the footprint (ablation)
//   --no-frames           disable frame instantiation (ablation)
//   --no-axioms           disable user-axiom instantiation (ablation)
//   --dump-smt2 <d>       write every dispatch attempt's SMT-LIB2 into <d>
//   --verbose             print every obligation, not just per-routine rows
//
// Exit codes:
//   0  every routine verified
//   1  a genuine proof failure: a counterexample, a vacuous contract, or an
//      obligation the solver answered but could not prove
//   2  usage error
//   3  verification incomplete for infrastructure reasons only (timeouts,
//      solver crashes, resource exhaustion, injected faults, lost shards) —
//      "the solver flaked", not "a bug was found"; CI can retry on 3 and
//      alarm on 1
//   130  interrupted (SIGINT/SIGTERM); the journal is flushed and every
//        child — solver workers and shard drivers — is killed and reaped
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "sched/shard.h"
#include "smt/sandbox.h"
#include "verifier/journal.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>

#include <unistd.h>

using namespace dryad;

namespace {

/// Parses "<i>/<n>" for --shard. Returns false on malformed input.
bool parseShardSpec(const char *Spec, unsigned &Index, unsigned &Count) {
  char *End = nullptr;
  long I = std::strtol(Spec, &End, 10);
  if (End == Spec || *End != '/' || I < 0)
    return false;
  const char *Rest = End + 1;
  long N = std::strtol(Rest, &End, 10);
  if (End == Rest || *End != '\0' || N < 1 || I >= N)
    return false;
  Index = static_cast<unsigned>(I);
  Count = static_cast<unsigned>(N);
  return true;
}

/// Parses, verifies, and reports every file under \p Opts; returns the
/// process exit code (0/1/3 taxonomy above). This is the whole single-
/// process verifier — the supervisor runs it once per shard driver (in a
/// fork, with the shard filter set) and once more in-process for report
/// assembly. When \p SliceCounts is non-null, each file's per-shard
/// obligation counts are accumulated into it.
int runFiles(const std::vector<std::string> &Files, const VerifyOptions &Opts,
             bool Verbose, std::vector<size_t> *SliceCounts = nullptr,
             const std::string &JsonPath = "") {
  bool AllVerified = true;
  PoolStats Workers;
  std::vector<FileReport> Reports;
  // Exit-code taxonomy: a genuine failure (counterexample, vacuous
  // contract, honestly-unproved obligation, unparseable input) beats an
  // infrastructure failure — a refutation stays a refutation even if other
  // obligations flaked.
  bool AnyGenuineFailure = false;
  for (const std::string &File : Files) {
    Module M;
    DiagEngine Diags;
    if (!parseModuleFile(File, M, Diags)) {
      std::fprintf(stderr, "%s:\n%s", File.c_str(), Diags.str().c_str());
      AllVerified = false;
      AnyGenuineFailure = true;
      continue;
    }
    Verifier V(M, Opts);
    if (!V.journalError().empty()) {
      if (Opts.ShardCount > 1 || Opts.AssembleFromJournal) {
        // Sharding without a journal is meaningless: the records ARE the
        // shard's output (and assembly's input). Fail loudly instead of
        // silently verifying the full module.
        std::fprintf(stderr, "error: %s\n", V.journalError().c_str());
        AllVerified = false;
        continue;
      }
      std::fprintf(stderr, "warning: %s (continuing without a journal)\n",
                   V.journalError().c_str());
    }
    // From here on, SIGINT/SIGTERM flushes this journal and kills every
    // forked worker before exiting 130.
    installTerminationHandlers(V.journalFd());
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    Workers.accumulate(V.poolStats());
    if (SliceCounts) {
      const std::vector<size_t> &S = V.shardSliceCounts();
      if (SliceCounts->size() < S.size())
        SliceCounts->resize(S.size(), 0);
      for (size_t I = 0; I != S.size(); ++I)
        (*SliceCounts)[I] += S[I];
    }
    if (Diags.hasErrors())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    std::printf("%s", formatResults(File, Results).c_str());
    if (Verbose)
      for (const ProcResult &R : Results)
        for (const ObligationResult &O : R.Obligations)
          std::printf("  %-60s %s (%u attempt%s, %.2fs)%s\n", O.Name.c_str(),
                      O.Status == SmtStatus::Unsat  ? "proved"
                      : O.Status == SmtStatus::Sat ? "cex"
                      : O.Failure == FailureKind::None
                          ? "unknown"
                          : failureKindName(O.Failure),
                      O.Attempts, O.Attempts == 1 ? "" : "s", O.Seconds,
                      O.FromJournal ? " [journal]" : "");
    for (const ProcResult &R : Results) {
      AllVerified &= R.Verified;
      if (R.Verified)
        continue;
      bool ProcInfra = false, ProcGenuine = false;
      auto endsWith = [](const std::string &S, const char *Suffix) {
        size_t N = std::strlen(Suffix);
        return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
      };
      for (const ObligationResult &O : R.Obligations) {
        // Advisory records never fail a proc, so they must not color the
        // exit code of one that failed for another reason.
        if (endsWith(O.Name, "[vacuity skipped]"))
          continue;
        if (O.Status == SmtStatus::Sat)
          ProcGenuine = true; // counterexample
        else if (O.Status == SmtStatus::Unknown) {
          // SolverUnknown is the solver honestly answering "can't prove" —
          // an unproved obligation, not a flake. Same taxonomy split as
          // summarize() in report.cpp.
          bool Infra = O.Failure != FailureKind::None &&
                       O.Failure != FailureKind::SolverUnknown;
          (Infra ? ProcInfra : ProcGenuine) = true;
        } else if (endsWith(O.Name, "[vacuity]"))
          ProcGenuine = true; // vacuous contract: a spec bug, not a flake
      }
      // A proc can also fail with no failing obligation (VC generation
      // errors); that is a genuine failure, not a solver flake.
      AnyGenuineFailure |= ProcGenuine || !ProcInfra;
    }
    Reports.push_back({File, std::move(Results)});
  }
  int Exit = AllVerified ? 0 : AnyGenuineFailure ? 1 : 3;
  // Worker lifecycle, on stderr so stdout stays the plain report (and warm
  // vs cold runs stay byte-identical on stdout).
  if (Workers.spawns() != 0 || Workers.Served != 0)
    std::fprintf(stderr, "%s", formatWorkerStats(Workers).c_str());
  if (!JsonPath.empty()) {
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write --json report to %s\n",
                   JsonPath.c_str());
    } else {
      std::string J = jsonReport(Reports, Workers, Exit);
      std::fwrite(J.data(), 1, J.size(), F);
      std::fclose(F);
    }
  }
  return Exit;
}

/// The `--shards n` supervisor: fork shard drivers, babysit them, merge
/// their journals into Opts.JournalPath, assemble the report from the
/// merge. Returns the process exit code.
int runSupervised(const std::vector<std::string> &Files,
                  const VerifyOptions &Opts, bool Verbose, unsigned Shards,
                  unsigned Retries, unsigned StallMs,
                  const std::string &JsonPath) {
  ShardSupervisorOptions SO;
  SO.Shards = Shards;
  SO.MaxRetries = Retries;
  // Auto stall ceiling: a live shard journals at least once per finished
  // obligation, and one obligation's worst case is the whole retry ladder —
  // every scheduled attempt at the full deadline — plus degraded redispatch
  // slack. Journal growth slower than that means a wedged driver.
  SO.StallMs = StallMs != 0
                   ? StallMs
                   : (Opts.Attempts + 2) * std::max(1u, Opts.TimeoutMs) + 30000;
  SO.Inject = Opts.Inject;
  for (unsigned I = 0; I != Shards; ++I) {
    SO.ShardJournals.push_back(Opts.JournalPath + ".shard" +
                               std::to_string(I));
    // Stale journals from an earlier supervised run would make the
    // heartbeat lie (pre-grown files) and the merge resurrect outdated
    // verdicts. Fresh launches start clean; only retries resume.
    unlink(SO.ShardJournals.back().c_str());
  }

  // Children inherit these handlers replaced by their own (spawnShard
  // resets to SIG_DFL); the supervisor itself holds no journal writer, so
  // there is nothing to fsync — just kill and reap the tree.
  installTerminationHandlers(-1);

  ShardSupervisor Sup(SO, [&](unsigned Shard, bool Resuming) {
    VerifyOptions Child = Opts;
    Child.ShardIndex = Shard;
    Child.ShardCount = Shards;
    Child.JournalPath = Opts.JournalPath + ".shard" + std::to_string(Shard);
    Child.Resume = Resuming;
    Child.Inject = Opts.Inject.withoutCrashes();
    return runFiles(Files, Child, /*Verbose=*/false);
  });
  bool AllCompleted = Sup.run();

  std::string MergeErr;
  if (!Journal::mergeFiles(SO.ShardJournals, Opts.JournalPath, MergeErr)) {
    std::fprintf(stderr, "error: journal merge failed: %s\n",
                 MergeErr.c_str());
    return 3;
  }

  // Assemble the final report by re-planning every obligation against the
  // merged journal. Verdict-wise this is byte-identical to an unsharded
  // run; a lost shard surfaces as per-obligation infrastructure failures.
  VerifyOptions Asm = Opts;
  Asm.ShardCount = Shards; // for the slice tally below
  Asm.AssembleFromJournal = true;
  Asm.Resume = false;
  Asm.Inject = FaultPlan();
  // The assembly dispatches nothing, so its --json worker stats honestly
  // report zero spawns; the shard drivers' own stats went to their stderr.
  std::vector<size_t> SliceCounts;
  int Exit = runFiles(Files, Asm, Verbose, &SliceCounts, JsonPath);

  // Recovery accounting, on stderr so stdout stays the plain report.
  size_t TotalRecovered = 0;
  unsigned TotalRetries = 0;
  for (unsigned I = 0; I != Shards; ++I) {
    const ShardStat &S = Sup.stats()[I];
    size_t Slice = I < SliceCounts.size() ? SliceCounts[I] : 0;
    TotalRecovered += S.RecoveredRecords;
    TotalRetries += S.Launches - 1;
    std::fprintf(stderr,
                 "shard %u/%u: %s, slice=%zu launches=%u crashes=%u "
                 "stalls=%u recovered=%zu\n",
                 I, Shards, S.Completed ? "completed" : "LOST", Slice,
                 S.Launches, S.Crashes, S.Stalls, S.RecoveredRecords);
    if (!S.Completed && Slice != 0 && Exit == 0)
      Exit = 3; // a lost shard with owned work can never be a clean pass
  }
  if (TotalRetries)
    std::fprintf(stderr,
                 "shard supervisor: %u retr%s, %zu journaled obligation%s "
                 "recovered without re-solving\n",
                 TotalRetries, TotalRetries == 1 ? "y" : "ies",
                 TotalRecovered, TotalRecovered == 1 ? "" : "s");
  if (!AllCompleted)
    std::fprintf(stderr,
                 "shard supervisor: partial report — at least one shard "
                 "exhausted its %u retries\n",
                 Retries);
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  VerifyOptions Opts;
  bool Verbose = false;
  unsigned Shards = 0; // --shards n supervisor mode when > 1
  unsigned ShardRetries = 2;
  unsigned ShardStallMs = 0;
  std::string JsonPath;
  std::vector<std::string> Files;

  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--timeout") && I + 1 < Argc)
      Opts.TimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--attempts") && I + 1 < Argc)
      Opts.Attempts = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--proc-budget-ms") && I + 1 < Argc)
      Opts.ProcBudgetMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-degrade"))
      Opts.DegradeTactics = false;
    else if (!std::strcmp(Argv[I], "--inject") && I + 1 < Argc) {
      std::string Err;
      std::optional<FaultPlan> Plan = FaultPlan::parse(Argv[++I], Err);
      if (!Plan) {
        std::fprintf(stderr, "--inject: %s\n", Err.c_str());
        return 2;
      }
      Opts.Inject = *Plan;
    } else if (!std::strcmp(Argv[I], "--isolate"))
      Opts.Isolate = true;
    else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      Opts.Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
      if (Opts.Jobs == 0) {
        Opts.Jobs = std::thread::hardware_concurrency();
        if (Opts.Jobs == 0)
          Opts.Jobs = 1;
      }
    } else if (!std::strcmp(Argv[I], "--portfolio"))
      Opts.Portfolio = true;
    else if (!std::strcmp(Argv[I], "--warm-workers"))
      Opts.WarmWorkers = true;
    else if (!std::strcmp(Argv[I], "--cold"))
      Opts.WarmWorkers = false;
    else if (!std::strcmp(Argv[I], "--recycle-after") && I + 1 < Argc)
      Opts.RecycleAfter = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--mem-limit-mb") && I + 1 < Argc)
      Opts.MemLimitMb = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--journal") && I + 1 < Argc)
      Opts.JournalPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--fsync-journal"))
      Opts.FsyncJournal = true;
    else if (!std::strcmp(Argv[I], "--resume"))
      Opts.Resume = true;
    else if (!std::strcmp(Argv[I], "--shard") && I + 1 < Argc) {
      if (!parseShardSpec(Argv[++I], Opts.ShardIndex, Opts.ShardCount)) {
        std::fprintf(stderr,
                     "--shard wants <i>/<n> with 0 <= i < n (got '%s')\n",
                     Argv[I]);
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--shards") && I + 1 < Argc) {
      int N = std::atoi(Argv[++I]);
      if (N < 1) {
        std::fprintf(stderr, "--shards wants a positive count\n");
        return 2;
      }
      Shards = static_cast<unsigned>(N);
    } else if (!std::strcmp(Argv[I], "--shard-retries") && I + 1 < Argc)
      ShardRetries = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--shard-stall-ms") && I + 1 < Argc)
      ShardStallMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--from-journal"))
      Opts.AssembleFromJournal = true;
    else if (!std::strcmp(Argv[I], "--no-unfold"))
      Opts.Natural.Unfold = false;
    else if (!std::strcmp(Argv[I], "--no-frames"))
      Opts.Natural.Frames = false;
    else if (!std::strcmp(Argv[I], "--no-axioms"))
      Opts.Natural.Axioms = false;
    else if (!std::strcmp(Argv[I], "--dump-smt2") && I + 1 < Argc)
      Opts.DumpSmt2Dir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Argv[I]);
      return 2;
    } else {
      Files.push_back(Argv[I]);
    }
  }
  if (Files.empty()) {
    std::fprintf(stderr, "usage: dryadv [options] file.dryad...\n");
    return 2;
  }
  if (Opts.Resume && Opts.JournalPath.empty()) {
    std::fprintf(stderr, "--resume requires --journal <file>\n");
    return 2;
  }
  if ((Opts.ShardCount > 1 || Shards > 0 || Opts.AssembleFromJournal) &&
      Opts.JournalPath.empty()) {
    std::fprintf(stderr,
                 "--shard/--shards/--from-journal require --journal <file>: "
                 "the journal is the shard's output and the merge's input\n");
    return 2;
  }
  if (Shards > 0 && (Opts.ShardCount > 1 || Opts.AssembleFromJournal)) {
    std::fprintf(stderr,
                 "--shards supervises its own shard drivers; it cannot be "
                 "combined with --shard or --from-journal\n");
    return 2;
  }

  if (Shards > 1)
    return runSupervised(Files, Opts, Verbose, Shards, ShardRetries,
                         ShardStallMs, JsonPath);
  // --shards 1 is a degenerate but valid request: run unsharded.
  return runFiles(Files, Opts, Verbose, /*SliceCounts=*/nullptr, JsonPath);
}
