//===--- dryadv.cpp - Command-line verifier ----------------------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// Usage: dryadv [options] file.dryad...
//   --timeout <ms>        per-obligation Z3 deadline ceiling (default 60000)
//   --attempts <n>        dispatch attempts per obligation with escalating
//                         deadlines and reseeding (default 3)
//   --proc-budget-ms <ms> wall-clock budget per procedure; 0 = unlimited
//   --no-degrade          don't retry with reduced tactic sets after the
//                         scheduled attempts are exhausted
//   --inject <plan>       deterministic fault injection, e.g. timeout@1 or
//                         lowering@2,unknown@* (see src/smt/inject.h)
//   --no-unfold           disable unfolding across the footprint (ablation)
//   --no-frames           disable frame instantiation (ablation)
//   --no-axioms           disable user-axiom instantiation (ablation)
//   --dump-smt2 <d>       write each obligation's SMT-LIB2 into directory <d>
//   --verbose             print every obligation, not just per-routine rows
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <cstdio>
#include <cstring>
#include <optional>

using namespace dryad;

int main(int Argc, char **Argv) {
  VerifyOptions Opts;
  bool Verbose = false;
  std::vector<std::string> Files;

  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--timeout") && I + 1 < Argc)
      Opts.TimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--attempts") && I + 1 < Argc)
      Opts.Attempts = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--proc-budget-ms") && I + 1 < Argc)
      Opts.ProcBudgetMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-degrade"))
      Opts.DegradeTactics = false;
    else if (!std::strcmp(Argv[I], "--inject") && I + 1 < Argc) {
      std::string Err;
      std::optional<FaultPlan> Plan = FaultPlan::parse(Argv[++I], Err);
      if (!Plan) {
        std::fprintf(stderr, "--inject: %s\n", Err.c_str());
        return 2;
      }
      Opts.Inject = *Plan;
    } else if (!std::strcmp(Argv[I], "--no-unfold"))
      Opts.Natural.Unfold = false;
    else if (!std::strcmp(Argv[I], "--no-frames"))
      Opts.Natural.Frames = false;
    else if (!std::strcmp(Argv[I], "--no-axioms"))
      Opts.Natural.Axioms = false;
    else if (!std::strcmp(Argv[I], "--dump-smt2") && I + 1 < Argc)
      Opts.DumpSmt2Dir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Argv[I]);
      return 2;
    } else {
      Files.push_back(Argv[I]);
    }
  }
  if (Files.empty()) {
    std::fprintf(stderr, "usage: dryadv [options] file.dryad...\n");
    return 2;
  }

  bool AllVerified = true;
  for (const std::string &File : Files) {
    Module M;
    DiagEngine Diags;
    if (!parseModuleFile(File, M, Diags)) {
      std::fprintf(stderr, "%s:\n%s", File.c_str(), Diags.str().c_str());
      AllVerified = false;
      continue;
    }
    Verifier V(M, Opts);
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    if (Diags.hasErrors())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    std::printf("%s", formatResults(File, Results).c_str());
    if (Verbose)
      for (const ProcResult &R : Results)
        for (const ObligationResult &O : R.Obligations)
          std::printf("  %-60s %s (%u attempt%s, %.2fs)\n", O.Name.c_str(),
                      O.Status == SmtStatus::Unsat  ? "proved"
                      : O.Status == SmtStatus::Sat ? "cex"
                      : O.Failure == FailureKind::None
                          ? "unknown"
                          : failureKindName(O.Failure),
                      O.Attempts, O.Attempts == 1 ? "" : "s", O.Seconds);
    for (const ProcResult &R : Results)
      AllVerified &= R.Verified;
  }
  return AllVerified ? 0 : 1;
}
