//===--- dryadv.cpp - Command-line verifier ----------------------------------===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
// Usage: dryadv [options] file.dryad...
//   --timeout <ms>   per-obligation Z3 timeout (default 60000)
//   --no-unfold      disable unfolding across the footprint (ablation)
//   --no-frames      disable frame instantiation (ablation)
//   --no-axioms      disable user-axiom instantiation (ablation)
//   --dump-smt2 <d>  write each obligation's SMT-LIB2 into directory <d>
//   --verbose        print every obligation, not just per-routine rows
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "verifier/report.h"
#include "verifier/verifier.h"

#include <cstdio>
#include <cstring>

using namespace dryad;

int main(int Argc, char **Argv) {
  VerifyOptions Opts;
  bool Verbose = false;
  std::vector<std::string> Files;

  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--timeout") && I + 1 < Argc)
      Opts.TimeoutMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-unfold"))
      Opts.Natural.Unfold = false;
    else if (!std::strcmp(Argv[I], "--no-frames"))
      Opts.Natural.Frames = false;
    else if (!std::strcmp(Argv[I], "--no-axioms"))
      Opts.Natural.Axioms = false;
    else if (!std::strcmp(Argv[I], "--dump-smt2") && I + 1 < Argc)
      Opts.DumpSmt2Dir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Argv[I]);
      return 2;
    } else {
      Files.push_back(Argv[I]);
    }
  }
  if (Files.empty()) {
    std::fprintf(stderr, "usage: dryadv [options] file.dryad...\n");
    return 2;
  }

  bool AllVerified = true;
  for (const std::string &File : Files) {
    Module M;
    DiagEngine Diags;
    if (!parseModuleFile(File, M, Diags)) {
      std::fprintf(stderr, "%s:\n%s", File.c_str(), Diags.str().c_str());
      AllVerified = false;
      continue;
    }
    Verifier V(M, Opts);
    std::vector<ProcResult> Results = V.verifyAll(Diags);
    if (Diags.hasErrors())
      std::fprintf(stderr, "%s", Diags.str().c_str());
    std::printf("%s", formatResults(File, Results).c_str());
    if (Verbose)
      for (const ProcResult &R : Results)
        for (const ObligationResult &O : R.Obligations)
          std::printf("  %-60s %s (%.2fs)\n", O.Name.c_str(),
                      O.Status == SmtStatus::Unsat  ? "proved"
                      : O.Status == SmtStatus::Sat ? "cex"
                                                   : "unknown",
                      O.Seconds);
    for (const ProcResult &R : Results)
      AllVerified &= R.Verified;
  }
  return AllVerified ? 0 : 1;
}
