//===--- vcdebug.cpp - Natural-proof debugging aid -----------------------------===//
//
// For a failing obligation, re-checks it with the goal split into its
// top-level conjuncts: each conjunct is discharged separately so the
// developer sees exactly which fact the natural proof cannot derive.
//
// Usage: vcdebug file.dryad proc [pathIndex]
//
//===----------------------------------------------------------------------===//

#include "dryad/printer.h"
#include "lang/parser.h"
#include "lang/paths.h"
#include "natural/engine.h"
#include "smt/solver.h"
#include "vcgen/vc.h"

#include <cstdio>
#include <cstring>

using namespace dryad;

static void flatten(const Formula *F, std::vector<const Formula *> &Out) {
  if (F->kind() == Formula::FK_And) {
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      flatten(Op, Out);
    return;
  }
  Out.push_back(F);
}

int main(int Argc, char **Argv) {
  if (Argc < 3) {
    std::fprintf(stderr, "usage: vcdebug file.dryad proc [pathIndex]\n");
    return 2;
  }
  Module M;
  DiagEngine Diags;
  if (!parseModuleFile(Argv[1], M, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  const Procedure *P = M.findProc(Argv[2]);
  if (!P) {
    std::fprintf(stderr, "no procedure %s\n", Argv[2]);
    return 1;
  }
  int PathIdx = Argc > 3 ? std::atoi(Argv[3]) : -1;

  std::vector<BasicPath> Paths = extractPaths(M, *P, Diags);
  VCGen Gen(M);
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (PathIdx >= 0 && static_cast<size_t>(PathIdx) != I)
      continue;
    std::optional<VCond> VC = Gen.generate(*P, Paths[I], Diags);
    if (!VC)
      continue;
    NaturalProof NP = buildNaturalProof(M, *VC);
    std::printf("== path %zu: %s ==\n", I, VC->Name.c_str());
    std::printf("   footprint:");
    for (const Term *T : VC->LocTerms)
      std::printf(" %s", print(T).c_str());
    std::printf("\n   instances:");
    for (const RecInstance &Inst : NP.Instances)
      std::printf(" %s", instanceKey(Inst).c_str());
    std::printf("\n");

    std::vector<const Formula *> Conjuncts;
    flatten(VC->Goal, Conjuncts);
    for (const Formula *C : Conjuncts) {
      SmtSolver S;
      S.setTimeoutMs(10000);
      for (const Formula *F : VC->Assumptions)
        S.add(F);
      for (const Formula *F : NP.Assertions)
        S.add(F);
      S.addNegated(C);
      SmtResult R = S.check();
      const char *St = R.Status == SmtStatus::Unsat  ? "proved "
                       : R.Status == SmtStatus::Sat ? "CEX    "
                                                    : "unknown";
      std::string Txt = print(C);
      if (Txt.size() > 140)
        Txt = Txt.substr(0, 140) + "...";
      std::printf("  [%s] %s\n", St, Txt.c_str());
      if (R.Status == SmtStatus::Sat)
        std::printf("          model: %.300s\n", R.ModelText.c_str());
    }
  }
  return 0;
}
