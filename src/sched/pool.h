//===--- pool.h - Parallel proof scheduler worker pool ----------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A worker-pool scheduler over the solver sandbox: every submitted task is
/// one SMT-LIB2 benchmark discharged in its own forked, rlimited worker
/// (smt/sandbox.h), and up to `--jobs N` workers run concurrently under a
/// single poll(2)-based event loop in the parent.
///
/// The parent stays single-threaded. All concurrency is between worker
/// *processes*; completions, retries, journal appends, and report assembly
/// all run on the event-loop thread, so no locking is needed anywhere and a
/// worker's SIGSEGV can never take down its siblings (they are separate
/// processes) or the run (the parent only classifies wait statuses).
///
/// Scheduling discipline:
///
///  * `submit` queues FIFO — fresh obligations run in submission order, the
///    deterministic order the verifier plans them in;
///  * `submitFront` jumps the queue — retries of an in-flight obligation
///    and dependent follow-ups (vacuity probes) run before fresh work, so a
///    one-slot pool reproduces the classic sequential schedule exactly;
///  * per-worker wall-clock deadlines are enforced from the event loop with
///    SIGKILL, and the fate classification (crash / oom / timeout / payload
///    result) is the sandbox's own `finishWorker`, unchanged;
///  * `cancel` revokes a queued task or SIGKILLs a running one without
///    invoking its completion — how portfolio mode kills losing rungs.
///
/// Completions may submit new tasks and cancel others; the loop runs until
/// no queued or running work remains.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SCHED_POOL_H
#define DRYAD_SCHED_POOL_H

#include "smt/sandbox.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace dryad {

/// Identifies one submitted task for cancellation. Never reused within a
/// scheduler's lifetime.
using TaskId = uint64_t;

class Scheduler {
public:
  /// Runs on the event-loop thread once the task's worker fate has been
  /// classified. May submit further tasks and cancel others.
  using Completion = std::function<void(const SmtResult &)>;

  /// Runs on the event-loop thread immediately before the task's worker is
  /// spawned — the moment queued work becomes running work. The dispatch
  /// layer uses it to arm per-procedure deadline budgets so time spent
  /// queued behind other procedures is never billed.
  using OnStart = std::function<void()>;

  /// \p Jobs concurrent worker slots (clamped to at least 1).
  explicit Scheduler(unsigned Jobs);
  ~Scheduler();
  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  unsigned jobs() const { return Slots; }

  /// Queues one sandboxed solve behind all earlier submissions.
  TaskId submit(SandboxRequest Req, Completion Done, OnStart Start = {});

  /// Queues one sandboxed solve ahead of everything still pending: the next
  /// attempt of an obligation the pool already started, or a dependent
  /// follow-up that must not wait behind fresh work.
  TaskId submitFront(SandboxRequest Req, Completion Done, OnStart Start = {});

  /// Cancels a queued or running task; its completion will never run. A
  /// running worker is SIGKILLed and reaped. Returns false when the id is
  /// unknown or already finished.
  bool cancel(TaskId Id);

  /// Drives the poll(2) event loop until every task — including ones
  /// submitted from completions — has finished or been cancelled.
  void run();

  /// True when no task is queued or running.
  bool idle() const { return Pending.empty() && Active.empty(); }

private:
  struct PendingTask {
    TaskId Id;
    SandboxRequest Req;
    Completion Done;
    OnStart Start;
  };
  struct RunningTask {
    TaskId Id;
    WorkerHandle W;
    Completion Done;
  };

  /// Spawns workers for queued tasks while slots are free. Spawn failures
  /// complete immediately with the sandbox's infrastructure result.
  void fill();

  unsigned Slots;
  TaskId NextId = 1;
  std::deque<PendingTask> Pending;
  std::vector<RunningTask> Active;
};

} // namespace dryad

#endif // DRYAD_SCHED_POOL_H
