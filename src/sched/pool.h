//===--- pool.h - Parallel proof scheduler worker pool ----------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A worker-pool scheduler over the solver sandbox: every submitted task is
/// one SMT-LIB2 benchmark discharged in a forked, rlimited worker
/// (smt/sandbox.h), and up to `--jobs N` workers run concurrently under a
/// single poll(2)-based event loop in the parent.
///
/// By default the pool owns a fleet of WARM workers (spawned once, looping
/// over framed requests) so fork + solver-init cost is amortized across the
/// obligation queue; `WarmPoolOptions::Warm = false` (`dryadv --cold`)
/// restores the historical fork-per-obligation worker. A recycling policy
/// bounds state leakage: a warm worker is replaced after `RecycleAfter`
/// answers, when its RSS crosses the high-water mark, or after any answer
/// that was not a clean sat/unsat verdict.
///
/// The parent stays single-threaded. All concurrency is between worker
/// *processes*; completions, retries, journal appends, and report assembly
/// all run on the event-loop thread, so no locking is needed anywhere and a
/// worker's SIGSEGV can never take down its siblings (they are separate
/// processes) or the run (the parent only classifies wait statuses).
///
/// Scheduling discipline:
///
///  * `submit` queues FIFO — fresh obligations run in submission order, the
///    deterministic order the verifier plans them in;
///  * `submitFront` jumps the queue — retries of an in-flight obligation
///    and dependent follow-ups (vacuity probes) run before fresh work, so a
///    one-slot pool reproduces the classic sequential schedule exactly;
///  * per-worker wall-clock deadlines are enforced from the event loop with
///    SIGKILL, and the fate classification (crash / oom / timeout / payload
///    result) is the sandbox's own `finishWorker`, unchanged;
///  * `cancel` revokes a queued task or SIGKILLs a running one without
///    invoking its completion — how portfolio mode kills losing rungs.
///
/// Completions may submit new tasks and cancel others; the loop runs until
/// no queued or running work remains.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SCHED_POOL_H
#define DRYAD_SCHED_POOL_H

#include "smt/sandbox.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dryad {

/// Identifies one submitted task for cancellation. Never reused within a
/// scheduler's lifetime.
using TaskId = uint64_t;

/// Worker-lifecycle policy for a Scheduler.
struct WarmPoolOptions {
  /// Warm fleet (default): fork once per slot, loop over framed requests.
  /// False restores fork-per-obligation (`--cold`).
  bool Warm = true;
  /// Retire a warm worker after this many answers (`--recycle-after`);
  /// 0 = never recycle on count.
  unsigned RecycleAfter = 64;
  /// Retire a warm worker whose post-answer RSS exceeds this, in KiB.
  /// 0 = derive from the request's MemLimitMb (75% of the cap), or no RSS
  /// recycling when the request is uncapped.
  size_t RssHighWaterKb = 0;
};

/// Worker-lifecycle counters, accumulated over a Scheduler's lifetime. The
/// amortization claim (spawns << obligations) is read off these, not
/// assumed.
struct PoolStats {
  unsigned WarmSpawns = 0; ///< persistent workers forked
  unsigned ColdSpawns = 0; ///< one-shot workers forked (cold mode)
  unsigned Served = 0;     ///< obligations completed by pool workers
  unsigned RecycledCount = 0; ///< warm workers retired by RecycleAfter
  unsigned RecycledRss = 0;   ///< warm workers retired by RSS high-water
  unsigned RecycledCrash = 0; ///< warm workers lost to death/kill/non-verdict
  double SolveSeconds = 0;    ///< cumulative wall time inside workers

  // Persistent proof-store effectiveness (store/store.h). Counted by the
  // verifier, not the pool, but carried here so every surface that reports
  // worker lifecycle (stderr `workers:` line, `--json`, the daemon's
  // response frames) gets cache observability for free.
  unsigned StoreHits = 0;   ///< obligations answered from the store
  unsigned StoreMisses = 0; ///< store consulted, obligation solved fresh
  unsigned StoreQuarantined = 0; ///< corrupt records skipped at store load

  /// Per-backend slice of the lifecycle counters, keyed by backend name
  /// ("z3", "cvc5", ...). Populated for every request the pool runs; the
  /// report layer only surfaces it when the fleet was heterogeneous.
  struct BackendStat {
    unsigned Served = 0;  ///< requests this backend completed
    unsigned Crashes = 0; ///< of those, solver crash / resource-out answers
    unsigned Wins = 0;    ///< portfolio races this backend answered first
  };
  std::map<std::string, BackendStat> Backends;

  void accumulate(const PoolStats &O) {
    WarmSpawns += O.WarmSpawns;
    ColdSpawns += O.ColdSpawns;
    Served += O.Served;
    RecycledCount += O.RecycledCount;
    RecycledRss += O.RecycledRss;
    RecycledCrash += O.RecycledCrash;
    SolveSeconds += O.SolveSeconds;
    StoreHits += O.StoreHits;
    StoreMisses += O.StoreMisses;
    StoreQuarantined += O.StoreQuarantined;
    for (const auto &KV : O.Backends) {
      BackendStat &B = Backends[KV.first];
      B.Served += KV.second.Served;
      B.Crashes += KV.second.Crashes;
      B.Wins += KV.second.Wins;
    }
  }
  unsigned spawns() const { return WarmSpawns + ColdSpawns; }
  unsigned recycles() const {
    return RecycledCount + RecycledRss + RecycledCrash;
  }
  /// The delta `*this - Before`, where \p Before is an earlier snapshot of
  /// this same accumulating counter set. The serve daemon uses it to report
  /// per-request hit/miss/lifecycle numbers off its long-lived pool.
  PoolStats since(const PoolStats &Before) const {
    PoolStats D;
    D.WarmSpawns = WarmSpawns - Before.WarmSpawns;
    D.ColdSpawns = ColdSpawns - Before.ColdSpawns;
    D.Served = Served - Before.Served;
    D.RecycledCount = RecycledCount - Before.RecycledCount;
    D.RecycledRss = RecycledRss - Before.RecycledRss;
    D.RecycledCrash = RecycledCrash - Before.RecycledCrash;
    D.SolveSeconds = SolveSeconds - Before.SolveSeconds;
    D.StoreHits = StoreHits - Before.StoreHits;
    D.StoreMisses = StoreMisses - Before.StoreMisses;
    D.StoreQuarantined = StoreQuarantined - Before.StoreQuarantined;
    for (const auto &KV : Backends) {
      BackendStat B = KV.second;
      auto It = Before.Backends.find(KV.first);
      if (It != Before.Backends.end()) {
        B.Served -= It->second.Served;
        B.Crashes -= It->second.Crashes;
        B.Wins -= It->second.Wins;
      }
      if (B.Served || B.Crashes || B.Wins)
        D.Backends[KV.first] = B;
    }
    return D;
  }
};

/// A thread-safe, PARTITIONED parking lot for idle warm workers, shared by
/// schedulers that come and go — the serve daemon's bridge between its
/// long-lived fleet and the short-lived per-request Scheduler each session
/// builds. A scheduler leases workers from exactly one partition and
/// returns its survivors there at destruction, so two concurrent sessions
/// never touch the same worker process (a worker's pipes are single-owner
/// by construction) while workers still stay warm ACROSS requests on the
/// same session slot.
class WarmFleet {
public:
  explicit WarmFleet(unsigned Partitions) : Parts(Partitions ? Partitions : 1) {}
  ~WarmFleet() { retireAll(); }
  WarmFleet(const WarmFleet &) = delete;
  WarmFleet &operator=(const WarmFleet &) = delete;

  /// Pops an idle worker from \p Partition into \p Out. False when empty.
  bool take(unsigned Partition, WarmWorker &Out);
  /// Parks \p W in \p Partition for the slot's next scheduler.
  void put(unsigned Partition, WarmWorker &&W);
  /// SIGKILLs + reaps every parked worker (idempotent; also the dtor).
  void retireAll();
  /// Parked workers across all partitions — health reporting only.
  size_t idleCount() const;

private:
  mutable std::mutex Mu;
  std::vector<std::vector<WarmWorker>> Parts;
};

class Scheduler {
public:
  /// Runs on the event-loop thread once the task's worker fate has been
  /// classified. May submit further tasks and cancel others.
  using Completion = std::function<void(const SmtResult &)>;

  /// Runs on the event-loop thread immediately before the task's worker is
  /// spawned — the moment queued work becomes running work. The dispatch
  /// layer uses it to arm per-procedure deadline budgets so time spent
  /// queued behind other procedures is never billed.
  using OnStart = std::function<void()>;

  /// \p Jobs concurrent worker slots (clamped to at least 1); \p Warm
  /// selects the worker lifecycle (warm fleet by default). When \p Fleet is
  /// non-null, idle warm workers are leased from (and returned to) its
  /// \p Partition instead of being spawned and retired per scheduler — the
  /// serve daemon's cross-request warmth.
  explicit Scheduler(unsigned Jobs, WarmPoolOptions Warm = {},
                     WarmFleet *Fleet = nullptr, unsigned Partition = 0);
  ~Scheduler();
  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Why run() returned before the queue drained, if it did.
  enum class AbortCause {
    None,       ///< ran to completion
    External,   ///< requestAbort() from another thread (daemon drain)
    ClientGone, ///< the watched client fd reached EOF mid-run
    Deadline,   ///< the abort deadline expired (per-request wall budget)
  };

  /// Thread-safe: asks the event loop to stop. Running workers are
  /// SIGKILLed and reaped, queued tasks discarded, and NO further
  /// completion runs. The one cross-thread entry point — everything else
  /// on this class stays event-loop-thread only.
  void requestAbort();

  /// Watches \p Fd (the session's client socket) during run(): EOF or an
  /// error on it aborts the run with AbortCause::ClientGone. The fd is
  /// polled, never closed, by the scheduler. Event-loop thread only.
  void watchClient(int Fd) { WatchFd = Fd; }

  /// Aborts the run when the wall clock passes \p At (the per-request
  /// deadline). Event-loop thread only, set before run().
  void setAbortDeadline(std::chrono::steady_clock::time_point At) {
    AbortDeadline = At;
    HasAbortDeadline = true;
  }

  /// Why the last run() stopped early (None when it drained normally).
  AbortCause abortCause() const { return Cause; }

  unsigned jobs() const { return Slots; }

  /// Lifecycle counters accumulated since construction (idle fleet
  /// included: retiring it in the destructor does not change them).
  const PoolStats &stats() const { return Stats; }

  /// Credits \p Backend with winning a portfolio race. Called by the
  /// dispatch layer (the pool itself cannot tell a race winner from an
  /// ordinary completion).
  void noteBackendWin(const std::string &Backend) {
    ++Stats.Backends[Backend.empty() ? "z3" : Backend].Wins;
  }

  /// Queues one sandboxed solve behind all earlier submissions.
  TaskId submit(SandboxRequest Req, Completion Done, OnStart Start = {});

  /// Queues one sandboxed solve ahead of everything still pending: the next
  /// attempt of an obligation the pool already started, or a dependent
  /// follow-up that must not wait behind fresh work.
  TaskId submitFront(SandboxRequest Req, Completion Done, OnStart Start = {});

  /// Cancels a queued or running task; its completion will never run. A
  /// running worker is SIGKILLed and reaped. Returns false when the id is
  /// unknown or already finished.
  bool cancel(TaskId Id);

  /// Drives the poll(2) event loop until every task — including ones
  /// submitted from completions — has finished or been cancelled.
  void run();

  /// True when no task is queued or running.
  bool idle() const { return Pending.empty() && Active.empty(); }

private:
  struct PendingTask {
    TaskId Id;
    SandboxRequest Req;
    Completion Done;
    OnStart Start;
  };
  struct RunningTask {
    TaskId Id;
    bool Warm = false;
    WorkerHandle W;  ///< cold mode: the one-shot worker
    WarmWorker WW;   ///< warm mode: the leased fleet worker
    Completion Done;
    std::string Backend; ///< stats key: request's backend name, "z3" default
  };

  /// Spawns workers for queued tasks while slots are free. Spawn failures
  /// complete immediately with the sandbox's infrastructure result.
  void fill();

  /// Leases a warm worker: pops the idle fleet or forks a fresh one.
  WarmWorker acquireWarmWorker();

  /// Returns an answered worker to the idle fleet, or retires it per the
  /// recycling policy (count / RSS / any non-verdict answer), counting why.
  void recycleOrRetain(WarmWorker &&WW, const SmtResult &R);

  /// The abort path shared by every cause: SIGKILL + reap running workers
  /// (counted as crash recycles — their state is unusable), drop queued
  /// tasks, record \p C. No completion runs for any of them.
  void abortNow(AbortCause C);

  unsigned Slots;
  WarmPoolOptions Opts;
  PoolStats Stats;
  TaskId NextId = 1;
  std::deque<PendingTask> Pending;
  std::vector<RunningTask> Active;
  std::vector<WarmWorker> Idle; ///< answered warm workers awaiting reuse

  WarmFleet *Fleet = nullptr; ///< optional shared parking lot
  unsigned Partition = 0;     ///< our slice of the fleet

  // Abort machinery. AbortFlag + the self-pipe are the only cross-thread
  // state; the pipe's read end sits in run()'s poll set so a requestAbort
  // from another thread interrupts a sleeping event loop immediately.
  std::atomic<bool> AbortFlag{false};
  int AbortPipe[2] = {-1, -1};
  int WatchFd = -1;
  std::chrono::steady_clock::time_point AbortDeadline;
  bool HasAbortDeadline = false;
  AbortCause Cause = AbortCause::None;
};

} // namespace dryad

#endif // DRYAD_SCHED_POOL_H
