//===--- dispatch.cpp - Obligation-level parallel dispatch ------------------===//

#include "sched/dispatch.h"

#include <algorithm>

using namespace dryad;

/// Per-obligation dispatch state, shared by every pending pool completion
/// that refers to the obligation. `Finished` guards against late results: a
/// portfolio loser that classified in the same poll round as the winner
/// must be ignored, not double-reported.
struct DispatchEngine::ObState {
  ObligationSpec Spec;
  OnDone Done;
  DispatchResult Out;
  unsigned Scheduled = 1; ///< full-tactic attempts (ladder shape)
  unsigned MaxTotal = 1;  ///< scheduled + degraded attempts (ladder shape)
  bool Finished = false;

  // Portfolio bookkeeping.
  std::vector<TaskId> Racing; ///< pool ids of rungs still in flight
  unsigned RacersPending = 0;
  bool HaveRung0Failure = false;
  SmtResult Rung0Failure; ///< full-tactics rung's failure, preferred report
  SmtResult LastFailure;  ///< fallback when rung 0 never completed
  unsigned LastFailureLevel = 0;
  unsigned RungsRun = 0;
};

void DispatchEngine::submit(ObligationSpec Spec, OnDone Done) {
  auto St = std::make_shared<ObState>();
  St->Spec = std::move(Spec);
  St->Done = std::move(Done);
  const RetryPolicy &P = St->Spec.Policy;
  St->Scheduled = P.MaxAttempts == 0 ? 1 : P.MaxAttempts;
  St->MaxTotal = St->Scheduled + (P.DegradeTactics ? P.DegradeLevels : 0);
  if (St->Spec.Portfolio && St->Spec.Sandbox.Enabled)
    startPortfolio(St);
  else
    startAttempt(St, 1);
}

void DispatchEngine::finishBudgetExhausted(const StatePtr &St) {
  St->Out.Status = SmtStatus::Unknown;
  St->Out.Failure = FailureKind::Timeout;
  St->Out.Detail =
      "procedure deadline budget exhausted after " +
      std::to_string(St->Out.Attempts) + " attempt(s)" +
      (St->Out.Detail.empty() ? "" : "; last: " + St->Out.Detail);
  finish(St);
}

void DispatchEngine::finish(const StatePtr &St) {
  St->Finished = true;
  St->Done(St->Out);
}

//===----------------------------------------------------------------------===//
// Ladder shape: retry -> escalate -> degrade, one attempt in flight
//===----------------------------------------------------------------------===//

void DispatchEngine::startAttempt(const StatePtr &St, unsigned Attempt) {
  ObligationSpec &Spec = St->Spec;
  if (Spec.Budget->exhausted()) {
    finishBudgetExhausted(St);
    return;
  }

  AttemptInfo Info;
  Info.Index = Attempt;
  // Degraded attempts run after the scheduled ones, each with the full
  // remaining deadline: the point is a smaller problem, not a longer wait.
  Info.DegradeLevel = Attempt <= St->Scheduled ? 0 : Attempt - St->Scheduled;
  Info.TimeoutMs = Spec.Policy.timeoutForAttempt(
      Attempt <= St->Scheduled ? Attempt : St->Scheduled);
  if (!Spec.Budget->unlimited())
    Info.TimeoutMs = std::min(Info.TimeoutMs, Spec.Budget->remainingMs());
  if (Info.TimeoutMs == 0)
    Info.TimeoutMs = 1;
  Info.Seed = Spec.Policy.BaseSeed + 7919 * (Attempt - 1);

  std::optional<Fault> F = Spec.Inject.faultFor(Attempt);
  // Worker-realized faults (crash@N / oom@N) only short-circuit when there
  // is no sandbox to realize them in; under isolation they travel into the
  // forked worker so the parent-side classification is what gets exercised.
  if (F && !(Spec.Sandbox.Enabled && F->InWorker)) {
    Spec.Budget->arm(); // the injected fault stands in for real work
    SmtResult R = injectedResult(*F, Attempt);
    // An injected timeout stands in for a solver stalling until its
    // deadline; charge that stall so budget exhaustion is reachable.
    if (R.Failure == FailureKind::Timeout)
      Spec.Budget->charge(Info.TimeoutMs);
    handleResult(St, Info, R);
    return;
  }

  SmtSolver S;
  S.setTimeoutMs(Info.TimeoutMs);
  if (Spec.Policy.ReseedOnRetry && Attempt > 1)
    S.setRandomSeed(Info.Seed);
  Spec.Build(S, Info);
  if (Spec.Sandbox.Enabled && !S.hasLoweringError()) {
    SandboxRequest Req;
    Req.Smt2 = S.toSmt2();
    Req.TimeoutMs = Info.TimeoutMs;
    Req.MemLimitMb = Spec.Sandbox.MemLimitMb;
    Req.Seed = Info.Seed;
    Req.HasSeed = Spec.Policy.ReseedOnRetry && Attempt > 1;
    if (F)
      Req.Fault = F->Kind == FailureKind::SolverCrash ? SandboxFault::Crash
                                                      : SandboxFault::Oom;
    auto OnWorker = [this, St, Info](const SmtResult &R) {
      handleResult(St, Info, R);
    };
    // The budget arms when the worker actually spawns, not when the task
    // queues: under cross-procedure scheduling an obligation can sit
    // behind other procedures' work, and that wait is not this
    // procedure's time.
    auto ArmBudget = [Budget = Spec.Budget] { Budget->arm(); };
    // Retries jump the queue so an in-flight obligation finishes before
    // fresh ones start — at one slot this reproduces the sequential
    // schedule exactly. Urgent obligations (vacuity probes) jump too.
    if (Attempt > 1 || Spec.Urgent)
      Pool.submitFront(std::move(Req), std::move(OnWorker),
                       std::move(ArmBudget));
    else
      Pool.submit(std::move(Req), std::move(OnWorker), std::move(ArmBudget));
  } else {
    // In-process (no sandbox) or a deterministic lowering error: solve
    // synchronously on the event-loop thread, like the classic path.
    Spec.Budget->arm();
    handleResult(St, Info, S.check());
  }
}

void DispatchEngine::handleResult(const StatePtr &St, const AttemptInfo &Info,
                                  const SmtResult &R) {
  if (St->Finished)
    return;
  St->Out.Attempts = Info.Index;
  St->Out.DegradeLevel = Info.DegradeLevel;
  St->Out.Seconds += R.Seconds;
  St->Out.Status = R.Status;
  St->Out.Failure = R.Failure;
  St->Out.Detail = R.Detail;
  St->Out.ModelText = R.ModelText;

  if (R.Status != SmtStatus::Unknown) {
    finish(St); // definitive (proved or counterexample)
    return;
  }
  if (!ResilientSolver::retryable(R.Failure)) {
    finish(St); // e.g. lowering error: retrying cannot help
    return;
  }
  if (Info.Index >= St->MaxTotal) {
    finish(St); // ladder exhausted; report the last failure
    return;
  }
  startAttempt(St, Info.Index + 1);
}

//===----------------------------------------------------------------------===//
// Portfolio shape: race the tactic rungs, cancel the losers
//===----------------------------------------------------------------------===//

void DispatchEngine::startPortfolio(const StatePtr &St) {
  ObligationSpec &Spec = St->Spec;
  if (Spec.Budget->exhausted()) {
    finishBudgetExhausted(St);
    return;
  }

  const unsigned Rungs =
      1 + (Spec.Policy.DegradeTactics ? Spec.Policy.DegradeLevels : 0);
  // Guard racer so a rung that resolves *synchronously* during this loop
  // (short-circuited injection, lowering error) cannot see RacersPending
  // drop to zero and report "all rungs failed" before the later rungs were
  // even submitted.
  ++St->RacersPending;
  for (unsigned Rung = 0; Rung != Rungs && !St->Finished; ++Rung) {
    AttemptInfo Info;
    Info.Index = Rung + 1;
    Info.DegradeLevel = Rung;
    // Every rung gets the full per-obligation ceiling: the race replaces
    // deadline escalation, it does not stack on top of it.
    Info.TimeoutMs = Spec.Policy.MaxTimeoutMs;
    if (!Spec.Budget->unlimited())
      Info.TimeoutMs = std::min(Info.TimeoutMs, Spec.Budget->remainingMs());
    if (Info.TimeoutMs == 0)
      Info.TimeoutMs = 1;
    Info.Seed = Spec.Policy.BaseSeed + 7919 * Rung;

    std::optional<Fault> F = Spec.Inject.faultFor(Rung + 1);
    if (F && !F->InWorker) {
      Spec.Budget->arm();
      SmtResult R = injectedResult(*F, Rung + 1);
      if (R.Failure == FailureKind::Timeout)
        Spec.Budget->charge(Info.TimeoutMs);
      ++St->RacersPending;
      ++St->RungsRun;
      handleRungResult(St, Info, R);
      continue;
    }

    SmtSolver S;
    S.setTimeoutMs(Info.TimeoutMs);
    if (Spec.Policy.ReseedOnRetry && Rung > 0)
      S.setRandomSeed(Info.Seed);
    Spec.Build(S, Info);
    if (S.hasLoweringError()) {
      Spec.Budget->arm();
      ++St->RacersPending;
      ++St->RungsRun;
      handleRungResult(St, Info, S.check());
      continue;
    }

    SandboxRequest Req;
    Req.Smt2 = S.toSmt2();
    Req.TimeoutMs = Info.TimeoutMs;
    Req.MemLimitMb = Spec.Sandbox.MemLimitMb;
    Req.Seed = Info.Seed;
    Req.HasSeed = Spec.Policy.ReseedOnRetry && Rung > 0;
    if (F)
      Req.Fault = F->Kind == FailureKind::SolverCrash ? SandboxFault::Crash
                                                      : SandboxFault::Oom;
    ++St->RacersPending;
    ++St->RungsRun;
    auto OnWorker = [this, St, Info](const SmtResult &R) {
      handleRungResult(St, Info, R);
    };
    auto ArmBudget = [Budget = Spec.Budget] { Budget->arm(); };
    TaskId Id = Spec.Urgent
                    ? Pool.submitFront(std::move(Req), OnWorker, ArmBudget)
                    : Pool.submit(std::move(Req), OnWorker, ArmBudget);
    St->Racing.push_back(Id);
  }
  --St->RacersPending;
  // Every rung resolved synchronously (injection short-circuits, lowering
  // errors) and none decisively: report now — no worker will call back.
  if (!St->Finished && St->RacersPending == 0 && St->RungsRun > 0)
    finishAllRungsFailed(St);
}

void DispatchEngine::finishAllRungsFailed(const StatePtr &St) {
  // Report the full-tactics rung's failure (the one a sequential ladder
  // would have hit first); fall back to the last rung's otherwise.
  const SmtResult &Rep =
      St->HaveRung0Failure ? St->Rung0Failure : St->LastFailure;
  St->Out.Attempts = St->RungsRun;
  St->Out.DegradeLevel = St->HaveRung0Failure ? 0 : St->LastFailureLevel;
  St->Out.Status = Rep.Status;
  St->Out.Failure = Rep.Failure;
  St->Out.Detail = Rep.Detail;
  St->Out.ModelText = Rep.ModelText;
  finish(St);
}

void DispatchEngine::handleRungResult(const StatePtr &St,
                                      const AttemptInfo &Info,
                                      const SmtResult &R) {
  if (St->Finished)
    return; // a loser that classified in the same poll round as the winner
  --St->RacersPending;
  St->Out.Seconds += R.Seconds;

  const bool Decisive = R.Status != SmtStatus::Unknown ||
                        !ResilientSolver::retryable(R.Failure);
  if (Decisive) {
    St->Out.Attempts = St->RungsRun;
    St->Out.DegradeLevel = Info.DegradeLevel;
    St->Out.Status = R.Status;
    St->Out.Failure = R.Failure;
    St->Out.Detail = R.Detail;
    St->Out.ModelText = R.ModelText;
    // SIGKILL the losing rungs; their completions never run.
    for (TaskId Id : St->Racing)
      Pool.cancel(Id);
    St->Racing.clear();
    finish(St);
    return;
  }

  if (Info.DegradeLevel == 0) {
    St->HaveRung0Failure = true;
    St->Rung0Failure = R;
  }
  St->LastFailure = R;
  St->LastFailureLevel = Info.DegradeLevel;
  if (St->RacersPending == 0)
    finishAllRungsFailed(St); // every rung failed retryably
}
