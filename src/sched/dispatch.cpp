//===--- dispatch.cpp - Obligation-level parallel dispatch ------------------===//

#include "sched/dispatch.h"

#include <algorithm>

using namespace dryad;

/// Per-obligation dispatch state, shared by every pending pool completion
/// that refers to the obligation. `Finished` guards against late results: a
/// portfolio loser that classified in the same poll round as the winner
/// must be ignored, not double-reported.
struct DispatchEngine::ObState {
  ObligationSpec Spec;
  OnDone Done;
  DispatchResult Out;
  unsigned Scheduled = 1; ///< full-tactic attempts (ladder shape)
  unsigned MaxTotal = 1;  ///< scheduled + degraded attempts (ladder shape)
  bool Finished = false;

  // Portfolio bookkeeping.
  struct RacingRung {
    TaskId Id = 0;
    std::string Backend;
    unsigned DegradeLevel = 0;
  };
  std::vector<RacingRung> Racing; ///< rungs still in flight
  unsigned RacersPending = 0;
  bool HaveRung0Failure = false;
  SmtResult Rung0Failure; ///< full-tactics rung's failure, preferred report
  std::string Rung0Backend;
  SmtResult LastFailure; ///< fallback when rung 0 never completed
  unsigned LastFailureLevel = 0;
  std::string LastFailureBackend;
  unsigned RungsRun = 0;
};

namespace {
/// The spec's primary backend; the historical in-process Z3 API when the
/// caller configured none.
BackendSpec primaryBackend(const ObligationSpec &Spec) {
  return Spec.Backends.empty() ? BackendSpec{"z3", ""} : Spec.Backends.front();
}

/// The request-frame backend field: empty keeps the in-process default.
std::string wireBackend(const BackendSpec &B) {
  return B.isZ3Api() ? std::string() : B.str();
}

/// Maps a worker-realized fault kind onto what the worker should do.
SandboxFault workerFault(FailureKind K) {
  if (K == FailureKind::SolverCrash)
    return SandboxFault::Crash;
  if (K == FailureKind::Injected)
    return SandboxFault::Diverge;
  return SandboxFault::Oom;
}

const char *statusWord(SmtStatus S) {
  return S == SmtStatus::Unsat ? "unsat" : S == SmtStatus::Sat ? "sat"
                                                               : "unknown";
}
} // namespace

void DispatchEngine::submit(ObligationSpec Spec, OnDone Done) {
  auto St = std::make_shared<ObState>();
  St->Spec = std::move(Spec);
  St->Done = std::move(Done);
  const RetryPolicy &P = St->Spec.Policy;
  St->Scheduled = P.MaxAttempts == 0 ? 1 : P.MaxAttempts;
  St->MaxTotal = St->Scheduled + (P.DegradeTactics ? P.DegradeLevels : 0);
  if (St->Spec.Portfolio && St->Spec.Sandbox.Enabled)
    startPortfolio(St);
  else
    startAttempt(St, 1);
}

void DispatchEngine::finishBudgetExhausted(const StatePtr &St) {
  St->Out.Status = SmtStatus::Unknown;
  St->Out.Failure = FailureKind::Timeout;
  St->Out.Detail =
      "procedure deadline budget exhausted after " +
      std::to_string(St->Out.Attempts) + " attempt(s)" +
      (St->Out.Detail.empty() ? "" : "; last: " + St->Out.Detail);
  finish(St);
}

void DispatchEngine::finish(const StatePtr &St) {
  St->Finished = true;
  St->Done(St->Out);
}

//===----------------------------------------------------------------------===//
// Ladder shape: retry -> escalate -> degrade, one attempt in flight
//===----------------------------------------------------------------------===//

void DispatchEngine::startAttempt(const StatePtr &St, unsigned Attempt) {
  ObligationSpec &Spec = St->Spec;
  if (Spec.Budget->exhausted()) {
    finishBudgetExhausted(St);
    return;
  }

  const BackendSpec Primary = primaryBackend(Spec);
  AttemptInfo Info;
  Info.Index = Attempt;
  Info.Backend = Primary.Name;
  // Degraded attempts run after the scheduled ones, each with the full
  // remaining deadline: the point is a smaller problem, not a longer wait.
  Info.DegradeLevel = Attempt <= St->Scheduled ? 0 : Attempt - St->Scheduled;
  Info.TimeoutMs = Spec.Policy.timeoutForAttempt(
      Attempt <= St->Scheduled ? Attempt : St->Scheduled);
  if (!Spec.Budget->unlimited())
    Info.TimeoutMs = std::min(Info.TimeoutMs, Spec.Budget->remainingMs());
  if (Info.TimeoutMs == 0)
    Info.TimeoutMs = 1;
  Info.Seed = Spec.Policy.BaseSeed + 7919 * (Attempt - 1);

  std::optional<Fault> F = Spec.Inject.faultFor(Attempt);
  // Worker-realized faults (crash@N / oom@N) only short-circuit when there
  // is no sandbox to realize them in; under isolation they travel into the
  // forked worker so the parent-side classification is what gets exercised.
  if (F && !(Spec.Sandbox.Enabled && F->InWorker)) {
    Spec.Budget->arm(); // the injected fault stands in for real work
    SmtResult R = injectedResult(*F, Attempt);
    // An injected timeout stands in for a solver stalling until its
    // deadline; charge that stall so budget exhaustion is reachable.
    if (R.Failure == FailureKind::Timeout)
      Spec.Budget->charge(Info.TimeoutMs);
    handleResult(St, Info, R);
    return;
  }

  SmtSolver S;
  S.setTimeoutMs(Info.TimeoutMs);
  if (Spec.Policy.ReseedOnRetry && Attempt > 1)
    S.setRandomSeed(Info.Seed);
  Spec.Build(S, Info);
  if (Spec.Sandbox.Enabled && !S.hasLoweringError()) {
    SandboxRequest Req;
    Req.Smt2 = S.toSmt2();
    Req.TimeoutMs = Info.TimeoutMs;
    Req.MemLimitMb = Spec.Sandbox.MemLimitMb;
    Req.Seed = Info.Seed;
    Req.HasSeed = Spec.Policy.ReseedOnRetry && Attempt > 1;
    Req.Backend = wireBackend(Primary);
    if (F)
      Req.Fault = workerFault(F->Kind);
    auto OnWorker = [this, St, Info](const SmtResult &R) {
      handleResult(St, Info, R);
    };
    // The budget arms when the worker actually spawns, not when the task
    // queues: under cross-procedure scheduling an obligation can sit
    // behind other procedures' work, and that wait is not this
    // procedure's time.
    auto ArmBudget = [Budget = Spec.Budget] { Budget->arm(); };
    // Retries jump the queue so an in-flight obligation finishes before
    // fresh ones start — at one slot this reproduces the sequential
    // schedule exactly. Urgent obligations (vacuity probes) jump too.
    if (Attempt > 1 || Spec.Urgent)
      Pool.submitFront(std::move(Req), std::move(OnWorker),
                       std::move(ArmBudget));
    else
      Pool.submit(std::move(Req), std::move(OnWorker), std::move(ArmBudget));
  } else {
    // In-process (no sandbox) or a deterministic lowering error: solve
    // synchronously on the event-loop thread, like the classic path.
    Spec.Budget->arm();
    handleResult(St, Info, S.check());
  }
}

void DispatchEngine::handleResult(const StatePtr &St, const AttemptInfo &Info,
                                  const SmtResult &R) {
  if (St->Finished)
    return;
  St->Out.Attempts = Info.Index;
  St->Out.DegradeLevel = Info.DegradeLevel;
  St->Out.Backend = Info.Backend;
  St->Out.Seconds += R.Seconds;
  St->Out.Status = R.Status;
  St->Out.Failure = R.Failure;
  St->Out.Detail = R.Detail;
  St->Out.ModelText = R.ModelText;

  if (R.Status != SmtStatus::Unknown) {
    finish(St); // definitive (proved or counterexample)
    return;
  }
  if (!ResilientSolver::retryable(R.Failure)) {
    finish(St); // e.g. lowering error: retrying cannot help
    return;
  }
  if (Info.Index >= St->MaxTotal) {
    finish(St); // ladder exhausted; report the last failure
    return;
  }
  startAttempt(St, Info.Index + 1);
}

//===----------------------------------------------------------------------===//
// Portfolio shape: race the tactic rungs, cancel the losers
//===----------------------------------------------------------------------===//

void DispatchEngine::startPortfolio(const StatePtr &St) {
  ObligationSpec &Spec = St->Spec;
  if (Spec.Budget->exhausted()) {
    finishBudgetExhausted(St);
    return;
  }

  // The rung plan: the primary backend's full-tactics rung and its
  // degradation levels (the historical race), then one full-tactics rung
  // per secondary backend — a heterogeneous cross-check on the identical
  // formula.
  struct RungPlan {
    BackendSpec B;
    unsigned Level = 0;
  };
  std::vector<RungPlan> Plan;
  const BackendSpec Primary = primaryBackend(Spec);
  const unsigned DegradedRungs =
      Spec.Policy.DegradeTactics ? Spec.Policy.DegradeLevels : 0;
  for (unsigned L = 0; L <= DegradedRungs; ++L)
    Plan.push_back({Primary, L});
  for (size_t I = 1; I < Spec.Backends.size(); ++I)
    Plan.push_back({Spec.Backends[I], 0});

  const unsigned Rungs = static_cast<unsigned>(Plan.size());
  // Guard racer so a rung that resolves *synchronously* during this loop
  // (short-circuited injection, lowering error) cannot see RacersPending
  // drop to zero and report "all rungs failed" before the later rungs were
  // even submitted.
  ++St->RacersPending;
  for (unsigned Rung = 0; Rung != Rungs && !St->Finished; ++Rung) {
    AttemptInfo Info;
    Info.Index = Rung + 1;
    Info.DegradeLevel = Plan[Rung].Level;
    Info.Backend = Plan[Rung].B.Name;
    // Every rung gets the full per-obligation ceiling: the race replaces
    // deadline escalation, it does not stack on top of it.
    Info.TimeoutMs = Spec.Policy.MaxTimeoutMs;
    if (!Spec.Budget->unlimited())
      Info.TimeoutMs = std::min(Info.TimeoutMs, Spec.Budget->remainingMs());
    if (Info.TimeoutMs == 0)
      Info.TimeoutMs = 1;
    Info.Seed = Spec.Policy.BaseSeed + 7919 * Rung;

    std::optional<Fault> F = Spec.Inject.faultFor(Rung + 1);
    if (F && !F->InWorker) {
      Spec.Budget->arm();
      SmtResult R = injectedResult(*F, Rung + 1);
      if (R.Failure == FailureKind::Timeout)
        Spec.Budget->charge(Info.TimeoutMs);
      ++St->RacersPending;
      ++St->RungsRun;
      handleRungResult(St, Info, R);
      continue;
    }

    SmtSolver S;
    S.setTimeoutMs(Info.TimeoutMs);
    if (Spec.Policy.ReseedOnRetry && Rung > 0)
      S.setRandomSeed(Info.Seed);
    Spec.Build(S, Info);
    if (S.hasLoweringError()) {
      Spec.Budget->arm();
      ++St->RacersPending;
      ++St->RungsRun;
      handleRungResult(St, Info, S.check());
      continue;
    }

    SandboxRequest Req;
    Req.Smt2 = S.toSmt2();
    Req.TimeoutMs = Info.TimeoutMs;
    Req.MemLimitMb = Spec.Sandbox.MemLimitMb;
    Req.Seed = Info.Seed;
    Req.HasSeed = Spec.Policy.ReseedOnRetry && Rung > 0;
    Req.Backend = wireBackend(Plan[Rung].B);
    if (F)
      Req.Fault = workerFault(F->Kind);
    ++St->RacersPending;
    ++St->RungsRun;
    auto OnWorker = [this, St, Info](const SmtResult &R) {
      handleRungResult(St, Info, R);
    };
    auto ArmBudget = [Budget = Spec.Budget] { Budget->arm(); };
    TaskId Id = Spec.Urgent
                    ? Pool.submitFront(std::move(Req), OnWorker, ArmBudget)
                    : Pool.submit(std::move(Req), OnWorker, ArmBudget);
    St->Racing.push_back({Id, Info.Backend, Info.DegradeLevel});
  }
  --St->RacersPending;
  // Every rung resolved synchronously (injection short-circuits, lowering
  // errors) and none decisively: report now — no worker will call back.
  if (!St->Finished && St->RacersPending == 0 && St->RungsRun > 0)
    finishAllRungsFailed(St);
}

void DispatchEngine::finishAllRungsFailed(const StatePtr &St) {
  // Report the full-tactics rung's failure (the one a sequential ladder
  // would have hit first); fall back to the last rung's otherwise.
  const SmtResult &Rep =
      St->HaveRung0Failure ? St->Rung0Failure : St->LastFailure;
  St->Out.Attempts = St->RungsRun;
  St->Out.DegradeLevel = St->HaveRung0Failure ? 0 : St->LastFailureLevel;
  St->Out.Backend =
      St->HaveRung0Failure ? St->Rung0Backend : St->LastFailureBackend;
  if (St->Out.Backend.empty())
    St->Out.Backend = primaryBackend(St->Spec).Name;
  St->Out.Status = Rep.Status;
  St->Out.Failure = Rep.Failure;
  St->Out.Detail = Rep.Detail;
  St->Out.ModelText = Rep.ModelText;
  finish(St);
}

void DispatchEngine::handleRungResult(const StatePtr &St,
                                      const AttemptInfo &Info,
                                      const SmtResult &R) {
  if (St->Finished) {
    // A loser that classified in the same poll round as the winner — or a
    // cross-checking backend's full-tactics rung, deliberately left racing
    // after the winner finished. The cross-check's one job: a decisive
    // answer that contradicts the reported one on the identical formula
    // (same tactic level, different backend) is a divergence alarm.
    if (R.Status != SmtStatus::Unknown &&
        St->Out.Status != SmtStatus::Unknown &&
        R.Status != St->Out.Status && Info.Backend != St->Out.Backend &&
        Info.DegradeLevel == St->Out.DegradeLevel) {
      DivergenceAlarm A;
      A.Obligation = St->Spec.Name;
      A.WinnerBackend = St->Out.Backend;
      A.WinnerStatus = St->Out.Status;
      A.OtherBackend = Info.Backend;
      A.OtherStatus = R.Status;
      A.Detail = std::string("backend '") + A.WinnerBackend + "' answered " +
                 statusWord(A.WinnerStatus) + " but backend '" +
                 A.OtherBackend + "' answered " + statusWord(A.OtherStatus) +
                 " on the same query (tactic level " +
                 std::to_string(Info.DegradeLevel) + ")";
      if (!St->Out.ModelText.empty())
        A.Detail += "; winner's model/detail: " + St->Out.ModelText;
      if (!R.ModelText.empty())
        A.Detail += "; dissenter's model/detail: " + R.ModelText;
      Divergences.push_back(std::move(A));
    }
    return;
  }
  --St->RacersPending;
  St->Out.Seconds += R.Seconds;

  const bool Decisive = R.Status != SmtStatus::Unknown ||
                        !ResilientSolver::retryable(R.Failure);
  if (Decisive) {
    St->Out.Attempts = St->RungsRun;
    St->Out.DegradeLevel = Info.DegradeLevel;
    St->Out.Backend = Info.Backend;
    St->Out.Status = R.Status;
    St->Out.Failure = R.Failure;
    St->Out.Detail = R.Detail;
    St->Out.ModelText = R.ModelText;
    if (R.Status != SmtStatus::Unknown)
      Pool.noteBackendWin(Info.Backend);
    // SIGKILL the losing rungs — except other backends' same-level rungs,
    // which keep racing as soundness cross-checks; their late answers land
    // in the Finished branch above.
    St->Racing.erase(
        std::remove_if(St->Racing.begin(), St->Racing.end(),
                       [&](const ObState::RacingRung &RR) {
                         bool CrossCheck =
                             RR.Backend != Info.Backend &&
                             RR.DegradeLevel == Info.DegradeLevel &&
                             R.Status != SmtStatus::Unknown;
                         if (!CrossCheck)
                           Pool.cancel(RR.Id);
                         return !CrossCheck;
                       }),
        St->Racing.end());
    finish(St);
    return;
  }

  // Prefer the primary backend's full-tactics failure for the report — the
  // one a sequential ladder would have hit first.
  if (Info.DegradeLevel == 0 &&
      (!St->HaveRung0Failure ||
       Info.Backend == primaryBackend(St->Spec).Name)) {
    St->HaveRung0Failure = true;
    St->Rung0Failure = R;
    St->Rung0Backend = Info.Backend;
  }
  St->LastFailure = R;
  St->LastFailureLevel = Info.DegradeLevel;
  St->LastFailureBackend = Info.Backend;
  if (St->RacersPending == 0)
    finishAllRungsFailed(St); // every rung failed retryably
}
