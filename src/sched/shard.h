//===--- shard.h - Sharded verification supervisor --------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-tolerant sharded verification. Two pieces:
///
///  * `shardOf` — the partition function. A shard owns an obligation iff
///    the FNV-1a hash of the obligation's plan-time content key maps to its
///    index. Every shard plans the *whole* module (planning is cheap; only
///    discharge is expensive), so the partition needs no coordination and
///    is stable across runs, machines, and `--jobs` values.
///
///  * `ShardSupervisor` — the `--shards n` driver. It forks one shard
///    driver per index, monitors them with the same poll(2)-style
///    primitives the worker pool uses (wait status for crash/exit,
///    per-shard journal growth as a heartbeat for hangs), and retries a
///    crashed or hung shard with its surviving journal so completed
///    obligations are never redone. A shard that stays unrecoverable after
///    the retry cap is reported as lost; the caller then assembles a
///    partial report from the journals that do exist and exits with the
///    infrastructure code instead of wedging the whole run.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SCHED_SHARD_H
#define DRYAD_SCHED_SHARD_H

#include "smt/inject.h"
#include "support/hash.h"

#include <functional>
#include <string>
#include <vector>

namespace dryad {

/// Which shard owns the obligation with journal content key \p Key when the
/// run is split \p ShardCount ways. Deterministic in the key alone.
inline unsigned shardOf(const std::string &Key, unsigned ShardCount) {
  if (ShardCount <= 1)
    return 0;
  return static_cast<unsigned>(fnv1a64(Key) % ShardCount);
}

struct ShardSupervisorOptions {
  unsigned Shards = 2;
  /// Retries per shard after a crash or stall before declaring it lost.
  unsigned MaxRetries = 2;
  /// A shard with live (in-flight) work whose journal has not grown for
  /// this long is declared hung and SIGKILLed for a retry. 0 = pick a
  /// ceiling from the solver deadlines (callers pass one derived from the
  /// retry ladder's worst case).
  unsigned StallMs = 60000;
  /// Per-shard journal paths, indexed by shard (JournalBase + ".shard<i>").
  std::vector<std::string> ShardJournals;
  /// Supervisor-consumed fault plan: a `crash@N` whose attempt number is a
  /// 1-based shard index SIGKILLs that shard once after its first journal
  /// record appears — the recovery path's deterministic test hook. All
  /// other plans are forwarded to the shard drivers by the caller.
  FaultPlan Inject;
};

/// Per-shard outcome bookkeeping, reported to stderr by the caller.
struct ShardStat {
  int ExitCode = -1;      ///< last wait status mapped to an exit code, or -1
  unsigned Launches = 0;  ///< 1 + retries actually spent
  unsigned Crashes = 0;   ///< abnormal deaths observed (incl. injected)
  unsigned Stalls = 0;    ///< heartbeat expiries that forced a kill
  bool Completed = false; ///< reached a clean exit (verified/failed/infra)
  /// Journal records that survived into the shard's final journal before
  /// its last (re)launch — the work recovery did NOT redo.
  size_t RecoveredRecords = 0;
};

class ShardSupervisor {
public:
  /// Runs one shard driver's whole verification slice in a forked child;
  /// returns the child's exit code. \p Resuming is true on retry launches,
  /// where the surviving journal must be replayed instead of truncated.
  using ShardFn = std::function<int(unsigned Shard, bool Resuming)>;

  ShardSupervisor(ShardSupervisorOptions Opts, ShardFn Fn)
      : Opts(std::move(Opts)), Fn(std::move(Fn)), Stats(this->Opts.Shards) {}

  /// Forks every shard driver and supervises until each either completes
  /// (exit 0, 1, or 3) or exhausts its retries. Returns true when every
  /// shard completed; false means at least one shard is lost and the report
  /// assembled from the journals will be partial.
  bool run();

  const std::vector<ShardStat> &stats() const { return Stats; }

private:
  struct Child;

  ShardSupervisorOptions Opts;
  ShardFn Fn;
  std::vector<ShardStat> Stats;
};

} // namespace dryad

#endif // DRYAD_SCHED_SHARD_H
