//===--- shard.cpp - Sharded verification supervisor ------------------------===//

#include "sched/shard.h"

#include "smt/sandbox.h"
#include "verifier/journal.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_set>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dryad;

namespace {

/// How often the supervisor samples wait statuses and journal heartbeats.
constexpr unsigned TickMs = 50;

/// Forks one shard driver. The child's stdout is pointed at /dev/null —
/// only the supervisor's final assembly pass prints the report, so a
/// shard's own report text must never reach the user — and the parent's
/// termination handlers are reset so a group-wide SIGINT cannot make the
/// shard kill its siblings' registry entries.
pid_t spawnShard(unsigned Shard, bool Resuming,
                 const ShardSupervisor::ShardFn &Fn) {
  pid_t Pid = fork();
  if (Pid != 0) {
    if (Pid > 0)
      registerChildPid(Pid);
    return Pid;
  }
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  int Null = open("/dev/null", O_WRONLY);
  if (Null >= 0) {
    dup2(Null, STDOUT_FILENO);
    close(Null);
  }
  _exit(Fn(Shard, Resuming));
}

/// Size of \p Path in bytes; 0 when it does not exist yet. The journal is
/// append-only, so growth is a faithful liveness signal: a shard with work
/// left makes progress iff its journal grows within the solver-deadline
/// ceiling.
size_t fileSize(const std::string &Path) {
  struct stat St;
  if (stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<size_t>(St.st_size);
}

/// Distinct completed obligations (probe records excluded) in a shard's
/// surviving journal — the work a retry will NOT redo.
size_t survivingRecords(const std::string &Path) {
  std::ifstream In(Path);
  std::unordered_set<std::string> Keys;
  std::string Line;
  while (std::getline(In, Line)) {
    auto R = Journal::parseLine(Line);
    if (!R)
      continue; // torn tail of the crashed run
    if (R->Key.size() >= 8 && R->Key.compare(R->Key.size() - 8, 8,
                                             ":vacuity") == 0)
      continue;
    Keys.insert(R->Key);
  }
  return Keys.size();
}

} // namespace

struct ShardSupervisor::Child {
  pid_t Pid = -1;
  unsigned Shard = 0;
  bool Live = false;
  bool Done = false; ///< completed or declared lost
  /// crash@<shard+1> armed: SIGKILL this shard once its first journal
  /// record lands, so the retry provably has completed work to recover.
  bool InjectArmed = false;
  size_t LastSize = 0;
  std::chrono::steady_clock::time_point LastGrowth;
};

bool ShardSupervisor::run() {
  std::vector<Child> Children(Opts.Shards);
  auto Now = std::chrono::steady_clock::now();

  auto launch = [&](unsigned I, bool Resuming) {
    Child &C = Children[I];
    C.Shard = I;
    C.Pid = spawnShard(I, Resuming, Fn);
    ++Stats[I].Launches;
    if (C.Pid < 0) {
      // fork failure: treat like an instant crash; the retry loop below
      // decides whether launches remain.
      C.Live = false;
      ++Stats[I].Crashes;
      return;
    }
    C.Live = true;
    C.LastSize = fileSize(Opts.ShardJournals[I]);
    C.LastGrowth = std::chrono::steady_clock::now();
  };

  for (unsigned I = 0; I != Opts.Shards; ++I) {
    // A crash@N plan whose attempt number names this 1-based shard index is
    // consumed here, not forwarded: the supervisor itself is the component
    // under test.
    auto F = Opts.Inject.faultFor(I + 1);
    Children[I].InjectArmed = F && F->Kind == FailureKind::SolverCrash;
    launch(I, /*Resuming=*/false);
  }

  auto retryOrLose = [&](unsigned I) {
    Child &C = Children[I];
    C.Live = false;
    // Loop so a fork failure during relaunch burns a retry and tries again
    // instead of silently abandoning the shard below its retry cap.
    while (!C.Live && !C.Done) {
      if (Stats[I].Launches > Opts.MaxRetries) {
        C.Done = true; // lost: retries exhausted, assembly will be partial
        break;
      }
      Stats[I].RecoveredRecords = survivingRecords(Opts.ShardJournals[I]);
      launch(I, /*Resuming=*/true);
    }
  };

  for (;;) {
    bool AnyLive = false;
    for (unsigned I = 0; I != Opts.Shards; ++I) {
      Child &C = Children[I];
      if (C.Done)
        continue;
      if (!C.Live) {
        // fork failed on the last (re)launch attempt
        retryOrLose(I);
        if (!C.Live && C.Done)
          continue;
      }
      if (!C.Live)
        continue;
      AnyLive = true;

      // Wait status first: a reaped shard needs no heartbeat.
      int WStatus = 0;
      pid_t W = waitpid(C.Pid, &WStatus, WNOHANG);
      if (W == C.Pid) {
        unregisterChildPid(C.Pid);
        C.Pid = -1;
        if (WIFEXITED(WStatus) && (WEXITSTATUS(WStatus) == 0 ||
                                   WEXITSTATUS(WStatus) == 1 ||
                                   WEXITSTATUS(WStatus) == 3)) {
          // Verified, genuine failures, or infra failures — all are *the
          // shard driver completing*; the verdicts live in its journal.
          Stats[I].ExitCode = WEXITSTATUS(WStatus);
          Stats[I].Completed = true;
          C.Live = false;
          C.Done = true;
        } else {
          // Signal death (real crash, injected SIGKILL, stall kill) or a
          // usage-level exit the driver should never produce: retry with
          // the surviving journal.
          Stats[I].ExitCode =
              WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1;
          ++Stats[I].Crashes;
          retryOrLose(I);
        }
        continue;
      }

      // Heartbeat: the journal grows once per completed obligation. No
      // growth inside the stall window while the shard still runs means a
      // wedged driver (not a wedged *worker* — those die at their own
      // wall-clock deadline well inside this window).
      Now = std::chrono::steady_clock::now();
      size_t Size = fileSize(Opts.ShardJournals[I]);
      if (Size > C.LastSize) {
        C.LastSize = Size;
        C.LastGrowth = Now;
        if (C.InjectArmed) {
          C.InjectArmed = false; // once per shard, never re-armed on retry
          kill(C.Pid, SIGKILL);
        }
      } else if (Opts.StallMs != 0 &&
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     Now - C.LastGrowth)
                         .count() > static_cast<long>(Opts.StallMs)) {
        ++Stats[I].Stalls;
        kill(C.Pid, SIGKILL);
        C.LastGrowth = Now; // the kill lands; next tick reaps and retries
      }
    }
    if (!AnyLive)
      break;
    usleep(TickMs * 1000);
  }

  bool AllCompleted = true;
  for (const ShardStat &S : Stats)
    AllCompleted &= S.Completed;
  return AllCompleted;
}
